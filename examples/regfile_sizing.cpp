/**
 * @file
 * Register-file sizing study: the paper's central design question,
 * as a downstream user would run it on their own machine parameters.
 *
 *   ./regfile_sizing [width] [dq] [scale]
 *
 * Sweeps the register file size for the chosen issue width, reporting
 * commit IPC, register-pressure stall time, the register-file cycle
 * time from the 0.5 um timing model, and the resulting BIPS estimate —
 * then names the sweet spot, reproducing the paper's conclusion that
 * performance peaks at a moderate register count (~80 for 4-way, ~128
 * for 8-way).
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "timing/regfile_timing.hh"

int
main(int argc, char **argv)
{
    using namespace drsim;

    const int width = argc > 1 ? std::atoi(argv[1]) : 4;
    const int dq = argc > 2 ? std::atoi(argv[2]) : (width == 4 ? 32
                                                               : 64);
    const int scale = argc > 3 ? std::atoi(argv[3]) : 8;

    std::printf("register-file sizing for a %d-way machine "
                "(DQ=%d, suite scale %d)\n\n",
                width, dq, scale);
    const auto suite = buildSpec92Suite(scale);

    std::printf("%5s | %7s %8s | %9s | %6s\n", "regs", "cmtIPC",
                "no-free", "cycle(ns)", "BIPS");
    double best_bips = 0.0;
    int best_regs = 0;
    for (const int regs : {32, 48, 64, 80, 96, 128, 160, 256}) {
        CoreConfig cfg;
        cfg.issueWidth = width;
        cfg.dqSize = dq;
        cfg.numPhysRegs = regs;
        const SuiteResult res = runSuite(cfg, suite);
        const double cycle =
            regFileTiming(intRegFileGeometry(width, regs)).cycleNs;
        const double bips = bipsEstimate(res.avgCommitIpc(), cycle);
        std::printf("%5d | %7.2f %7.1f%% | %9.3f | %6.2f%s\n", regs,
                    res.avgCommitIpc(), res.avgNoFreeRegPct(), cycle,
                    bips, bips > best_bips ? "  <-" : "");
        if (bips > best_bips) {
            best_bips = bips;
            best_regs = regs;
        }
    }
    std::printf("\nsweet spot: %d registers per file (%.2f BIPS) — "
                "IPC saturates while the register\nfile keeps getting "
                "slower, so bigger is not better (paper Section "
                "3.4).\n",
                best_regs, best_bips);
    return 0;
}
