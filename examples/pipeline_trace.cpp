/**
 * @file
 * Pipeline-trace walkthrough: watch individual instructions move
 * through the machine — insert (I@), issue/execute (X@), complete
 * (C@), and retire (R@) or be squashed — around a cache miss and a
 * branch misprediction.
 *
 *   ./pipeline_trace [lines]
 *
 * A tiny loop loads from a table far larger than the cache and
 * branches on the loaded bit, so the trace shows MISS-tagged loads,
 * MISPRED branches, and SQUASHED wrong-path work.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/random.hh"
#include "core/processor.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"

int
main(int argc, char **argv)
{
    using namespace drsim;

    const int max_lines = argc > 1 ? std::atoi(argv[1]) : 60;

    ProgramBuilder b("traced");
    Rng rng(2026);
    const Addr tab = b.allocWords(32768); // 256 KB
    for (int i = 0; i < 32768; i += 5)
        b.initWord(tab + Addr(i) * 8, rng.next());
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), 40);
    b.li(intReg(6), 0);
    const auto top = b.here();
    const auto skip = b.newLabel();
    b.slli(intReg(3), intReg(2), 10);
    b.xor_(intReg(3), intReg(3), intReg(2));
    b.andi(intReg(3), intReg(3), 32767);
    b.slli(intReg(3), intReg(3), 3);
    b.add(intReg(3), intReg(3), intReg(1));
    b.ldq(intReg(4), intReg(3), 0);      // usually a miss
    b.andi(intReg(5), intReg(4), 1);
    b.beq(intReg(5), skip);              // data-dependent branch
    b.addi(intReg(6), intReg(6), 1);
    b.bind(skip);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();

    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.perfectICache = true;

    std::ostringstream trace;
    const Program prog = b.build();
    verifyProgram(prog);
    Processor proc(cfg, prog);
    proc.setTrace(&trace);
    proc.run();

    std::printf("legend: I@insert X@issue C@complete R@retire; "
                "MISS = primary cache miss,\nMISPRED = mispredicted "
                "branch, SQUASHED@ = removed on recovery, FWD = "
                "store->load forward\n\n");
    const std::string text = trace.str();
    std::istringstream lines(text);
    std::string line;
    int shown = 0;
    while (shown < max_lines && std::getline(lines, line)) {
        std::printf("%s\n", line.c_str());
        ++shown;
    }

    std::printf("\n(%d of %zu trace lines; %llu cycles, %llu "
                "committed, %llu squashed, %llu recoveries)\n",
                shown,
                std::size_t(
                    std::count(text.begin(), text.end(), '\n')),
                (unsigned long long)proc.stats().cycles,
                (unsigned long long)proc.stats().committed,
                (unsigned long long)proc.stats().squashedInsts,
                (unsigned long long)proc.stats().recoveries);
    return 0;
}
