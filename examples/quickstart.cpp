/**
 * @file
 * Quickstart: simulate one SPEC92-like workload on the paper's
 * baseline 4-way machine and print the headline statistics.
 *
 *   ./quickstart [workload] [scale]
 *
 * Defaults to compress at a small scale.  This is the minimal tour of
 * the public API: build a workload, configure the machine, run, read
 * the results.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.hh"
#include "timing/regfile_timing.hh"

int
main(int argc, char **argv)
{
    using namespace drsim;

    const std::string name = argc > 1 ? argv[1] : "compress";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 10;

    // The paper's baseline 4-way machine: 32-entry dispatch queue,
    // lockup-free 64 KB 2-way data cache, precise exceptions, and a
    // large register file (so nothing stalls for registers).
    CoreConfig config;
    config.issueWidth = 4;
    config.dqSize = 32;
    config.numPhysRegs = 256;
    config.exceptionModel = ExceptionModel::Precise;
    config.cacheKind = CacheKind::LockupFree;

    const Workload workload = buildWorkload(name, scale);
    std::printf("simulating '%s' (scale %d, %zu static insts)...\n",
                name.c_str(), scale, workload.program.numInsts());

    const SimResult res = simulate(config, workload);

    std::printf("\n=== %s on a 4-way, DQ=32, %d-register machine ===\n",
                name.c_str(), config.numPhysRegs);
    std::printf("cycles            %12llu\n",
                (unsigned long long)res.proc.cycles);
    std::printf("committed insts   %12llu\n",
                (unsigned long long)res.proc.committed);
    std::printf("executed insts    %12llu\n",
                (unsigned long long)res.proc.executed);
    std::printf("issue IPC         %12.2f\n", res.issueIpc());
    std::printf("commit IPC        %12.2f\n", res.commitIpc());
    std::printf("load miss rate    %11.1f%%\n",
                100.0 * res.loadMissRate);
    std::printf("cbr mispredict    %11.1f%%\n",
                100.0 * res.mispredictRate());
    std::printf("no-free-reg time  %11.1f%%\n", res.noFreeRegPct());

    // Live-register picture (90th percentile, paper Section 3.1).
    const auto &live = res.proc.live;
    std::printf("90th-pct live int regs  %6llu\n",
                (unsigned long long)live[0][3].percentile(0.9));
    std::printf("90th-pct live fp regs   %6llu\n",
                (unsigned long long)live[1][3].percentile(0.9));

    // Register-file timing for this configuration (paper Section 3.4).
    const auto geom =
        intRegFileGeometry(config.issueWidth, config.numPhysRegs);
    const auto timing = regFileTiming(geom);
    std::printf("int RF cycle time %11.3f ns -> %.2f BIPS estimate\n",
                timing.cycleNs,
                bipsEstimate(res.commitIpc(), timing.cycleNs));
    return 0;
}
