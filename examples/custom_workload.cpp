/**
 * @file
 * Writing your own workload: build a program with ProgramBuilder,
 * check it functionally with the Emulator, then put it through the
 * timing simulator under both exception models.
 *
 * The kernel is a little histogram builder: stream a buffer of
 * pseudo-random bytes, bump per-bucket counters, and branch on a
 * data-dependent "rare value" test — enough structure to exercise
 * loads, stores, renaming pressure, and the branch predictor.
 */

#include <cstdio>

#include "common/random.hh"
#include "core/processor.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"
#include "workloads/emulator.hh"

namespace {

using namespace drsim;

Program
makeHistogram(int items)
{
    ProgramBuilder b("histogram");
    Rng rng(42);

    const Addr data = b.allocWords(4096);   // 32 KB of input
    const Addr buckets = b.allocWords(256); // 2 KB of counters
    for (int i = 0; i < 4096; ++i)
        b.initWord(data + Addr(i) * 8, rng.next());

    const RegId pd = intReg(1);
    const RegId nb = intReg(2);
    const RegId count = intReg(3);
    const RegId v = intReg(4);
    const RegId idx = intReg(5);
    const RegId baddr = intReg(6);
    const RegId c = intReg(7);
    const RegId rare = intReg(8);
    const RegId t0 = intReg(9);

    b.li(pd, std::int64_t(data));
    b.li(nb, std::int64_t(buckets));
    b.li(count, items);
    b.li(rare, 0);

    const auto top = b.here();
    const auto notRare = b.newLabel();
    b.andi(t0, count, 4095);
    b.slli(t0, t0, 3);
    b.add(t0, t0, pd);
    b.ldq(v, t0, 0);
    b.andi(idx, v, 255);
    b.slli(baddr, idx, 3);
    b.add(baddr, baddr, nb);
    b.ldq(c, baddr, 0);
    b.addi(c, c, 1);
    b.stq(c, baddr, 0);
    // Rare-value test: bucket index < 8 (~3% taken).
    b.cmplti(t0, idx, 8);
    b.beq(t0, notRare);
    b.addi(rare, rare, 1);
    b.bind(notRare);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    using namespace drsim;

    const int items = 20000;
    const Program prog = makeHistogram(items);
    std::printf("built '%s': %zu static instructions\n",
                prog.name().c_str(), prog.numInsts());

    // 1. Static verification (same gate every harness runs).
    verifyProgram(prog);

    // 2. Functional check with the architectural emulator.
    Emulator emu(prog);
    while (!emu.fetchBlocked())
        emu.stepArch();
    std::printf("functional run: %llu instructions, rare count = "
                "%llu\n",
                (unsigned long long)emu.stepsExecuted(),
                (unsigned long long)emu.intRegBits(8));

    // 3. Timing simulation under both exception models.
    for (const auto model :
         {ExceptionModel::Precise, ExceptionModel::Imprecise}) {
        CoreConfig cfg;
        cfg.issueWidth = 4;
        cfg.dqSize = 32;
        cfg.numPhysRegs = 48; // tight: the models will differ
        cfg.exceptionModel = model;
        Processor proc(cfg, prog);
        proc.run();
        std::printf("%-9s: %8llu cycles, IPC %.2f, no-free-reg "
                    "%4.1f%%, p90 live int regs %llu\n",
                    exceptionModelName(model),
                    (unsigned long long)proc.stats().cycles,
                    proc.stats().commitIpc(),
                    100.0 * double(proc.stats().noFreeRegCycles) /
                        double(proc.stats().cycles),
                    (unsigned long long)
                        proc.stats().live[0][3].percentile(0.9));
        if (proc.stats().committed != emu.stepsExecuted()) {
            std::printf("MISMATCH vs functional run!\n");
            return 1;
        }
    }
    std::printf("\nboth timing runs committed exactly the functional "
                "instruction stream.\n");
    return 0;
}
