/**
 * @file
 * Memory-system study on one benchmark: how much does non-blocking
 * load support matter, and what does it cost in registers?
 *
 *   ./cache_study [workload] [scale]
 *
 * Runs the chosen SPEC92-like kernel (default: compress, the paper's
 * miss-heavy integer benchmark) under the three cache organizations
 * and prints performance plus the live-register footprint of each —
 * the Figure 7/8 story in one screen.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace drsim;

    const std::string name = argc > 1 ? argv[1] : "compress";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 10;
    const Workload w = buildWorkload(name, scale);

    std::printf("memory-system study: %s (4-way, DQ=32, 2048 regs, "
                "precise)\n\n",
                name.c_str());
    std::printf("%-12s %9s %7s %7s %8s %9s %10s\n", "cache", "cycles",
                "cmtIPC", "miss%", "merges", "p90 live", "max live");

    Cycle lockup_free_cycles = 0, perfect_cycles = 0;
    for (const CacheKind kind : {CacheKind::Perfect,
                                 CacheKind::LockupFree,
                                 CacheKind::Lockup}) {
        CoreConfig cfg;
        cfg.issueWidth = 4;
        cfg.dqSize = 32;
        cfg.numPhysRegs = 2048;
        cfg.cacheKind = kind;
        const SimResult res = simulate(cfg, w);
        const auto &live =
            res.proc.live[int(RegClass::Int)][int(
                LiveLevel::PreciseLive)];
        std::printf("%-12s %9llu %7.2f %6.1f%% %8llu %9llu %10llu\n",
                    cacheKindName(kind),
                    (unsigned long long)res.proc.cycles,
                    res.commitIpc(), 100.0 * res.loadMissRate,
                    (unsigned long long)res.dcache.loadMerges,
                    (unsigned long long)live.percentile(0.9),
                    (unsigned long long)live.maxValue());
        if (kind == CacheKind::LockupFree)
            lockup_free_cycles = res.proc.cycles;
        if (kind == CacheKind::Perfect)
            perfect_cycles = res.proc.cycles;
    }

    if (lockup_free_cycles > 0) {
        std::printf("\nnon-blocking loads recover %.0f%% of the "
                    "perfect-memory performance (paper: 'quite\n"
                    "close'), paid for with a larger live-register "
                    "footprint (paper Section 3.3).\n",
                    100.0 * double(perfect_cycles) /
                        double(lockup_free_cycles));
    }
    return 0;
}
