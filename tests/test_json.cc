/**
 * @file
 * Tests for the strict JSON parser and escaper (common/json.hh).
 *
 * The parser guards the results pipeline: stall_report and the
 * exporter round-trip tests consume artifacts through it, so it has
 * to accept exactly RFC 8259 — anything looser would let an emitter
 * bug ship silently.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"
#include "common/logging.hh"

namespace drsim {
namespace {

using json::Value;

// ------------------------------------------------------------- accepts

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_EQ(json::parse("true").asBool(), true);
    EXPECT_EQ(json::parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(json::parse("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(json::parse("-0.5e2").asNumber(), -50.0);
    EXPECT_EQ(json::parse("18446744073709551615").asNumber(),
              18446744073709551615.0);
    EXPECT_EQ(json::parse("\"hi\"").asString(), "hi");
    EXPECT_EQ(json::parse("  42  ").asU64(), 42u);
}

TEST(Json, ParsesNestedStructures)
{
    const Value v = json::parse(
        R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members().size(), 2u);
    const Value &a = v.at("a");
    ASSERT_TRUE(a.isArray());
    EXPECT_EQ(a.items().size(), 3u);
    EXPECT_EQ(a.at(std::size_t(0)).asU64(), 1u);
    EXPECT_TRUE(a.at(std::size_t(2)).at("b").isNull());
    EXPECT_EQ(v.at("c").at("d").asString(), "e");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrder)
{
    const Value v = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, DecodesEscapesAndSurrogatePairs)
{
    EXPECT_EQ(json::parse(R"("a\"b\\c\/d\n\t\r\b\f")").asString(),
              "a\"b\\c/d\n\t\r\b\f");
    EXPECT_EQ(json::parse(R"("\u0041\u00e9")").asString(),
              "A\xc3\xa9");
    // U+1F600 as a surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(json::parse(R"("\ud83d\ude00")").asString(),
              "\xf0\x9f\x98\x80");
}

// ------------------------------------------------------------- rejects

void
expectRejected(const std::string &text)
{
    EXPECT_THROW(json::parse(text), FatalError) << text;
}

TEST(Json, RejectsNonJson)
{
    expectRejected("");
    expectRejected("nul");
    expectRejected("truefalse");
    expectRejected("{\"a\": 1,}");     // trailing comma
    expectRejected("[1 2]");           // missing comma
    expectRejected("{'a': 1}");        // single quotes
    expectRejected("{\"a\" 1}");       // missing colon
    expectRejected("[1, 2] trailing"); // content after the document
    expectRejected("{\"a\": 01}");     // leading zero
    expectRejected("[+1]");            // leading plus
    expectRejected("[1.]");            // bare fraction
    expectRejected("\"unterminated");
    expectRejected("\"ctl \x01 char\""); // raw control character
    expectRejected("\"\\q\"");           // unknown escape
    expectRejected("\"\\u12\"");         // short unicode escape
    expectRejected("\"\\ud83d\"");       // lone high surrogate
    expectRejected("[");
}

TEST(Json, AccessorsCheckKinds)
{
    const Value v = json::parse("[1, \"s\"]");
    EXPECT_THROW(v.asNumber(), FatalError);
    EXPECT_THROW(v.at("key"), FatalError);       // not an object
    EXPECT_THROW(v.at(std::size_t(2)), FatalError); // out of range
    EXPECT_THROW(v.at(std::size_t(1)).asU64(), FatalError);
    EXPECT_THROW(json::parse("-3").asU64(), FatalError);
    EXPECT_THROW(json::parse("1.5").asU64(), FatalError);
    const Value obj = json::parse(R"({"a": 1})");
    EXPECT_THROW(obj.at("b"), FatalError); // absent member
}

TEST(Json, ErrorsCarryLocation)
{
    try {
        json::parse("{\n  \"a\": nope\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

// -------------------------------------------------------------- escape

TEST(Json, EscapeRoundTripsThroughParse)
{
    const std::string hostile =
        "plain \"quoted\" back\\slash\nnl\ttab\rcr\bbs\fff "
        "\x01\x1f high\xc3\xa9";
    const std::string doc = "\"" + json::escape(hostile) + "\"";
    EXPECT_EQ(json::parse(doc).asString(), hostile);
}

TEST(Json, EscapeLeavesPlainTextAlone)
{
    EXPECT_EQ(json::escape("abc 123 ~"), "abc 123 ~");
    EXPECT_EQ(json::escape("q\"q"), "q\\\"q");
    EXPECT_EQ(json::escape(std::string(1, '\x02')), "\\u0002");
}

} // namespace
} // namespace drsim
