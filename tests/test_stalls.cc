/**
 * @file
 * Tests for the exclusive stall-cause attribution and the structure
 * occupancy histograms (core/processor.hh, CycleCause).
 *
 * The load-bearing property is *exhaustiveness*: every cycle lands in
 * exactly one CycleCause bucket, so the buckets sum to cycles on any
 * workload under any configuration.  The targeted tests then pin each
 * bucket with a microbenchmark built to hit that bottleneck and
 * nothing else.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "core/processor.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

std::uint64_t
causeSum(const ProcStats &s)
{
    std::uint64_t sum = 0;
    for (int c = 0; c < kNumCycleCauses; ++c)
        sum += s.causeCycles[c];
    return sum;
}

void
expectExhaustive(const ProcStats &s, const std::string &label)
{
    EXPECT_GT(s.cycles, 0u) << label;
    EXPECT_EQ(causeSum(s), s.cycles) << label;
    // Productive cycles are exactly the Busy + IssueWidthBound pair.
    EXPECT_LE(s.busyCycles(), s.cycles) << label;
}

CoreConfig
baseConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 64;
    cfg.maxCommitted = 4000;
    return cfg;
}

// ----------------------------------------------------- exhaustiveness

/** Buckets sum to cycles on every tier-1 workload under stress
 *  configurations that exercise different bottlenecks. */
TEST(StallAttribution, BucketsSumToCyclesAcrossSuiteAndConfigs)
{
    const auto suite = buildSpec92Suite(1);

    std::vector<std::pair<std::string, CoreConfig>> configs;
    configs.push_back({"base", baseConfig()});

    CoreConfig tight = baseConfig();
    tight.numPhysRegs = 34; // barely above the architectural minimum
    configs.push_back({"tight-regs", tight});

    CoreConfig tiny_dq = baseConfig();
    tiny_dq.dqSize = 8;
    configs.push_back({"tiny-dq", tiny_dq});

    CoreConfig split = baseConfig();
    split.splitDispatchQueues = true;
    configs.push_back({"split-dq", split});

    CoreConfig lockup = baseConfig();
    lockup.cacheKind = CacheKind::Lockup;
    configs.push_back({"lockup", lockup});

    CoreConfig wb = baseConfig();
    wb.dcache.writeBufferEntries = 2;
    wb.dcache.writeBufferDrainCycles = 16;
    configs.push_back({"small-wb", wb});

    CoreConfig wide = baseConfig();
    wide.issueWidth = 8;
    wide.dqSize = 64;
    configs.push_back({"8-wide", wide});

    for (const auto &[name, cfg] : configs) {
        for (const auto &w : suite) {
            const SimResult r = simulate(cfg, w);
            expectExhaustive(r.proc,
                             name + "/" + w.spec->name);
        }
    }
}

TEST(StallAttribution, SimResultPercentagesAreConsistent)
{
    const auto suite = buildSpec92Suite(1);
    const SimResult r = simulate(baseConfig(), suite.front());
    double pct_sum = 0.0;
    for (int c = 0; c < kNumCycleCauses; ++c)
        pct_sum += r.causePct(CycleCause(c));
    EXPECT_NEAR(pct_sum, 100.0, 1e-9);
    EXPECT_NEAR(r.stallPct() + r.causePct(CycleCause::Busy) +
                    r.causePct(CycleCause::IssueWidthBound),
                100.0, 1e-9);
}

TEST(StallAttribution, CauseNamesAreStableAndDistinct)
{
    std::set<std::string> names;
    for (int c = 0; c < kNumCycleCauses; ++c)
        names.insert(cycleCauseName(CycleCause(c)));
    EXPECT_EQ(names.size(), std::size_t(kNumCycleCauses));
    EXPECT_EQ(std::string(cycleCauseName(CycleCause::Busy)), "busy");
    EXPECT_EQ(std::string(cycleCauseName(CycleCause::OperandWait)),
              "operand_wait");
    EXPECT_EQ(std::string(cycleCauseName(CycleCause::DqFullMem)),
              "dq_full_mem");
}

// -------------------------------------------------- targeted buckets

/** A register-starved machine attributes cycles to no_free_reg_int. */
TEST(StallAttribution, NoFreeRegBucketFires)
{
    ProgramBuilder b("reg-starved");
    b.li(intReg(1), 1);
    const auto top = b.here();
    // A long chain of integer writers keeps mappings live while the
    // chain drains, starving the 34-entry file.
    for (int i = 2; i <= 30; ++i)
        b.addi(intReg(i), intReg(i - 1), 1);
    b.subi(intReg(1), intReg(30), 29);
    b.bne(intReg(1), top);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.numPhysRegs = 34;
    cfg.perfectICache = true;
    cfg.maxCommitted = 2000;
    const SimResult r = simulateProgram(cfg, b.build());
    expectExhaustive(r.proc, "reg-starved");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::NoFreeRegInt), 0u);
}

/** A tiny dispatch queue behind a long-latency chain fills up. */
TEST(StallAttribution, DqFullBucketFires)
{
    ProgramBuilder b("dq-full");
    b.li(intReg(1), 50);
    b.li(intReg(2), 1);
    const auto top = b.here();
    // A serial multiply chain: every instruction waits in the queue
    // on its predecessor, so an 8-entry queue backs up into insert.
    for (int i = 0; i < 12; ++i)
        b.mul(intReg(2), intReg(2), intReg(2));
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.dqSize = 8;
    cfg.perfectICache = true;
    const SimResult r = simulateProgram(cfg, b.build());
    expectExhaustive(r.proc, "dq-full");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::DqFullInt), 0u);
    EXPECT_GT(r.proc.insertStallDqFullCycles, 0u);
}

/** Back-to-back dependent divides serialize on the lone divider. */
TEST(StallAttribution, DividerBusyBucketFires)
{
    ProgramBuilder b("div-bound");
    b.li(intReg(1), 40);
    b.li(intReg(2), 7);
    b.itof(fpReg(1), intReg(2));
    b.itof(fpReg(2), intReg(2));
    const auto top = b.here();
    // Independent divides: at width 4 there is a single unpipelined
    // divider, so the second divide of each group waits for the unit,
    // not for operands.
    b.fdivd(fpReg(3), fpReg(1), fpReg(2));
    b.fdivd(fpReg(4), fpReg(1), fpReg(2));
    b.fdivd(fpReg(5), fpReg(1), fpReg(2));
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.perfectICache = true;
    const SimResult r = simulateProgram(cfg, b.build(), true);
    expectExhaustive(r.proc, "div-bound");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::DividerBusy), 0u);
}

/** A tiny, slow write buffer stalls commit on stores. */
TEST(StallAttribution, WriteBufferFullBucketFires)
{
    ProgramBuilder b("store-bound");
    const Addr buf = b.allocWords(64);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 200);
    const auto top = b.here();
    for (int i = 0; i < 8; ++i)
        b.stq(intReg(2), intReg(1), i * 8);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.perfectICache = true;
    cfg.dcache.writeBufferEntries = 1;
    cfg.dcache.writeBufferDrainCycles = 32;
    const SimResult r = simulateProgram(cfg, b.build());
    expectExhaustive(r.proc, "store-bound");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::WriteBufferFull), 0u);
    EXPECT_GT(r.proc.writeBufferStallCycles, 0u);
}

/** Independent missing loads under a lockup cache: while one miss is
 *  outstanding the cache refuses every later (ready) load, so the
 *  stall is charged to the memory ports, not to operands. */
TEST(StallAttribution, MemPortSaturatedBucketFires)
{
    ProgramBuilder b("stream");
    constexpr int kWords = 16384; // 128 KiB, bigger than the cache
    const Addr tab = b.allocWords(kWords);
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), 200);
    const auto top = b.here();
    // Four independent loads per iteration, one cache line apart:
    // every one misses, and the lockup cache services them serially.
    for (int i = 0; i < 4; ++i)
        b.ldq(intReg(4 + i), intReg(1), i * 32);
    b.addi(intReg(1), intReg(1), 128);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.perfectICache = true;
    cfg.cacheKind = CacheKind::Lockup;
    const SimResult r = simulateProgram(cfg, b.build());
    expectExhaustive(r.proc, "stream");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::MemPortSaturated),
              0u);
}

/** Cold straight-line code stalls on instruction fetch. */
TEST(StallAttribution, ICacheStallBucketFires)
{
    ProgramBuilder b("cold-code");
    b.li(intReg(1), 0);
    for (int i = 0; i < 4000; ++i)
        b.addi(intReg(1), intReg(1), 1);
    b.halt();

    CoreConfig cfg = baseConfig();
    cfg.perfectICache = false;
    const SimResult r = simulateProgram(cfg, b.build());
    expectExhaustive(r.proc, "cold-code");
    EXPECT_GT(r.proc.cycleCauseCount(CycleCause::ICacheStall), 0u);
}

// ---------------------------------------------------------- occupancy

TEST(StallAttribution, OccupancyHistogramsSampleEveryCycle)
{
    const auto suite = buildSpec92Suite(1);
    const SimResult r = simulate(baseConfig(), suite.front());
    EXPECT_EQ(r.proc.dqDepth.totalSamples(), r.proc.cycles);
    EXPECT_EQ(r.proc.windowDepth.totalSamples(), r.proc.cycles);
    EXPECT_EQ(r.proc.storeQueueDepth.totalSamples(), r.proc.cycles);
    // Depths are bounded by the corresponding structure sizes.
    EXPECT_LE(r.proc.dqDepth.maxValue(),
              std::uint64_t(baseConfig().dqSize));
    EXPECT_GT(r.proc.windowDepth.maxValue(), 0u);
}

TEST(StallAttribution, OccupancyCollectionCanBeDisabled)
{
    const auto suite = buildSpec92Suite(1);
    CoreConfig cfg = baseConfig();
    cfg.collectOccupancyHistograms = false;
    const SimResult r = simulate(cfg, suite.front());
    EXPECT_EQ(r.proc.dqDepth.totalSamples(), 0u);
    EXPECT_EQ(r.proc.windowDepth.totalSamples(), 0u);
    EXPECT_EQ(r.proc.storeQueueDepth.totalSamples(), 0u);
    // Attribution is always on and still exhaustive.
    expectExhaustive(r.proc, "occupancy-off");
}

/** The exclusive buckets never disagree with the per-event legacy
 *  counters in direction: a run with zero legacy write-buffer stalls
 *  cannot attribute cycles to write_buffer_full, and vice versa. */
TEST(StallAttribution, ConsistentWithLegacyCounters)
{
    const auto suite = buildSpec92Suite(1);
    for (const auto &w : suite) {
        const SimResult r = simulate(baseConfig(), w);
        if (r.proc.cycleCauseCount(CycleCause::WriteBufferFull) > 0) {
            EXPECT_GT(r.proc.writeBufferStallCycles, 0u)
                << w.spec->name;
        }
        const std::uint64_t no_free =
            r.proc.cycleCauseCount(CycleCause::NoFreeRegInt) +
            r.proc.cycleCauseCount(CycleCause::NoFreeRegFp);
        if (no_free > 0) {
            EXPECT_GT(r.proc.noFreeRegCycles, 0u) << w.spec->name;
        }
        // The exclusive bucket is a subset of the (overlapping)
        // legacy observation counter.
        EXPECT_LE(no_free, r.proc.noFreeRegCycles) << w.spec->name;
    }
}

} // namespace
} // namespace drsim
