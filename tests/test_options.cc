/**
 * @file
 * Unit tests for the command-line option parser behind tools/drsim.
 */

#include <gtest/gtest.h>

#include "sim/options.hh"

namespace drsim {
namespace {

struct Opts
{
    std::int64_t regs = 128;
    std::int64_t width = 4;
    std::string model = "precise";
    bool split = false;

    OptionParser
    parser()
    {
        OptionParser p;
        p.addInt("regs", &regs, "registers");
        p.addInt("width", &width, "issue width");
        p.addString("model", &model, "exception model");
        p.addFlag("split-queues", &split, "split queues");
        return p;
    }
};

bool
parse(OptionParser &p, std::initializer_list<const char *> args)
{
    std::vector<const char *> v(args);
    return p.parse(int(v.size()), v.data());
}

TEST(Options, DefaultsSurviveEmptyParse)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {}));
    EXPECT_EQ(o.regs, 128);
    EXPECT_EQ(o.model, "precise");
    EXPECT_FALSE(o.split);
}

TEST(Options, SpaceSeparatedValues)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--regs", "80", "--model", "imprecise"}));
    EXPECT_EQ(o.regs, 80);
    EXPECT_EQ(o.model, "imprecise");
}

TEST(Options, EqualsSeparatedValues)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--regs=96", "--width=8"}));
    EXPECT_EQ(o.regs, 96);
    EXPECT_EQ(o.width, 8);
}

TEST(Options, BareFlagSetsTrue)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--split-queues"}));
    EXPECT_TRUE(o.split);
}

TEST(Options, FlagWithExplicitValue)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--split-queues=true"}));
    EXPECT_TRUE(o.split);
    Opts o2;
    auto p2 = o2.parser();
    EXPECT_TRUE(parse(p2, {"--split-queues=false"}));
    EXPECT_FALSE(o2.split);
}

TEST(Options, UnknownOptionRejected)
{
    Opts o;
    auto p = o.parser();
    EXPECT_FALSE(parse(p, {"--bogus", "1"}));
    EXPECT_NE(p.error().find("unknown option"), std::string::npos);
}

TEST(Options, NonIntegerRejected)
{
    Opts o;
    auto p = o.parser();
    EXPECT_FALSE(parse(p, {"--regs", "many"}));
    EXPECT_NE(p.error().find("integer"), std::string::npos);
}

TEST(Options, MissingValueRejected)
{
    Opts o;
    auto p = o.parser();
    EXPECT_FALSE(parse(p, {"--regs"}));
    EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(Options, PositionalArgumentRejected)
{
    Opts o;
    auto p = o.parser();
    EXPECT_FALSE(parse(p, {"compress"}));
    EXPECT_NE(p.error().find("unexpected argument"),
              std::string::npos);
}

TEST(Options, HelpShortCircuits)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--help", "--regs", "banana"}));
    EXPECT_TRUE(p.helpRequested());
    EXPECT_EQ(o.regs, 128); // nothing after --help is parsed
}

TEST(Options, HelpTextListsEveryOption)
{
    Opts o;
    auto p = o.parser();
    const std::string help = p.helpText("drsim");
    EXPECT_NE(help.find("--regs"), std::string::npos);
    EXPECT_NE(help.find("--model"), std::string::npos);
    EXPECT_NE(help.find("--split-queues"), std::string::npos);
    EXPECT_NE(help.find("default: 128"), std::string::npos);
    EXPECT_NE(help.find("default: precise"), std::string::npos);
}

TEST(Options, HexIntegersAccepted)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--regs", "0x40"}));
    EXPECT_EQ(o.regs, 64);
}

TEST(Options, NegativeIntegersAccepted)
{
    Opts o;
    auto p = o.parser();
    EXPECT_TRUE(parse(p, {"--regs", "-1"}));
    EXPECT_EQ(o.regs, -1);
}

} // namespace
} // namespace drsim
