/**
 * @file
 * Tests for SMARTS-style sampled simulation: the sampling-spec parser,
 * SamplingConfig validation, the fast-forward/warm-up/measure driver
 * in runOneSampled(), its instruction-budget semantics, and the
 * invariant that full-detail runs are untouched by the feature.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exp/registry.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

using exp::parseSamplingSpec;
using exp::RunContext;

CoreConfig
baseConfig()
{
    CoreConfig cfg = exp::paperConfig(4, 96);
    return cfg;
}

TEST(SamplingSpec, FullTripleParses)
{
    const SamplingConfig sc = parseSamplingSpec("40000:1000:4000");
    EXPECT_EQ(sc.interval, 40000u);
    EXPECT_EQ(sc.window, 1000u);
    EXPECT_EQ(sc.warmup, 4000u);
    EXPECT_TRUE(sc.enabled());
}

TEST(SamplingSpec, DefaultsDeriveFromInterval)
{
    // window defaults to max(interval/20, 1); warmup defaults to
    // window.
    const SamplingConfig sc = parseSamplingSpec("40000");
    EXPECT_EQ(sc.interval, 40000u);
    EXPECT_EQ(sc.window, 2000u);
    EXPECT_EQ(sc.warmup, 2000u);

    const SamplingConfig sw = parseSamplingSpec("40000:500");
    EXPECT_EQ(sw.window, 500u);
    EXPECT_EQ(sw.warmup, 500u);
    // warmff defaults to 0: functionally warm across the whole gap.
    EXPECT_EQ(sw.warmff, 0u);
}

TEST(SamplingSpec, WarmffFieldParses)
{
    const SamplingConfig sc =
        parseSamplingSpec("120000:500:500:4000");
    EXPECT_EQ(sc.interval, 120000u);
    EXPECT_EQ(sc.window, 500u);
    EXPECT_EQ(sc.warmup, 500u);
    EXPECT_EQ(sc.warmff, 4000u);
}

TEST(SamplingSpec, RejectsGarbageAndInfeasible)
{
    EXPECT_THROW(parseSamplingSpec(""), FatalError);
    EXPECT_THROW(parseSamplingSpec("abc"), FatalError);
    EXPECT_THROW(parseSamplingSpec("1000:x"), FatalError);
    EXPECT_THROW(parseSamplingSpec("1000:2:3:4:5"), FatalError);
    EXPECT_THROW(parseSamplingSpec("0"), FatalError);
    // interval must exceed warmup + window
    EXPECT_THROW(parseSamplingSpec("1000:600:400"), FatalError);
}

TEST(SamplingSpec, ConfigValidateRejectsInfeasible)
{
    CoreConfig cfg = baseConfig();
    cfg.sampling.interval = 1000;
    cfg.sampling.window = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.sampling.window = 600;
    cfg.sampling.warmup = 500;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.sampling.warmup = 100;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SamplingSpec, RunContextReadsEnvironment)
{
    ::setenv("DRSIM_SAMPLE", "20000:500:1500", 1);
    const RunContext ctx = RunContext::fromEnv();
    ::unsetenv("DRSIM_SAMPLE");
    EXPECT_EQ(ctx.sampling.interval, 20000u);
    EXPECT_EQ(ctx.sampling.window, 500u);
    EXPECT_EQ(ctx.sampling.warmup, 1500u);
    EXPECT_FALSE(RunContext::fromEnv().sampling.enabled());
}

TEST(SampledRun, DisabledByDefault)
{
    const Workload w = buildWorkload("compress", 1);
    const SimResult r = simulate(baseConfig(), w);
    EXPECT_FALSE(r.sampled.enabled);
    EXPECT_EQ(r.sampled.windows, 0u);
    EXPECT_EQ(r.stopReason, StopReason::Halted);
}

TEST(SampledRun, AlternatesPhasesAndEstimates)
{
    const Workload w = buildWorkload("compress", 2);
    CoreConfig full_cfg = baseConfig();
    const SimResult full = simulate(full_cfg, w);

    CoreConfig cfg = full_cfg;
    cfg.sampling = parseSamplingSpec("8000:400:1600");
    const SimResult r = simulate(cfg, w);

    EXPECT_TRUE(r.sampled.enabled);
    EXPECT_EQ(r.stopReason, StopReason::Halted);
    EXPECT_GE(r.sampled.windows, 2u);
    EXPECT_GT(r.sampled.fastForwarded, 0u);
    EXPECT_GT(r.sampled.warmupInsts, 0u);
    EXPECT_GT(r.sampled.measuredInsts, 0u);
    EXPECT_GT(r.sampled.measuredCycles, 0u);
    // Every committed instruction is either detailed or
    // fast-forwarded; together they cover the whole program.
    EXPECT_EQ(r.proc.committed + r.sampled.fastForwarded,
              full.proc.committed);
    // The sampled run must be much shorter in detailed cycles.
    EXPECT_LT(r.proc.cycles, full.proc.cycles / 2);
    // The estimate is in the right ballpark of the true IPC (the CI
    // coverage contract itself is enforced by sampling_validate and
    // the simspeed benchmark on the full-size workloads).
    EXPECT_NEAR(r.sampled.ipcEstimate, full.commitIpc(),
                0.5 * full.commitIpc());
    EXPECT_GT(r.sampled.ci95, 0.0);
}

TEST(SampledRun, Deterministic)
{
    const Workload w = buildWorkload("espresso", 1);
    CoreConfig cfg = baseConfig();
    cfg.sampling = parseSamplingSpec("8000:400:1600");
    const SimResult a = simulate(cfg, w);
    const SimResult b = simulate(cfg, w);
    EXPECT_EQ(a.sampled.windows, b.sampled.windows);
    EXPECT_EQ(a.sampled.fastForwarded, b.sampled.fastForwarded);
    EXPECT_EQ(a.sampled.measuredCycles, b.sampled.measuredCycles);
    EXPECT_EQ(a.sampled.ipcEstimate, b.sampled.ipcEstimate);
    EXPECT_EQ(a.sampled.ci95, b.sampled.ci95);
    EXPECT_EQ(a.proc.cycles, b.proc.cycles);
}

TEST(SampledRun, BudgetCountsFastForwardedInstructions)
{
    const Workload w = buildWorkload("gcc1", 2);
    CoreConfig cfg = baseConfig();
    cfg.sampling = parseSamplingSpec("8000:400:1600");

    const SimResult unlimited = simulate(cfg, w);
    const std::uint64_t total =
        unlimited.proc.committed + unlimited.sampled.fastForwarded;

    cfg.maxCommitted = total / 2;
    const SimResult r = simulate(cfg, w);
    EXPECT_EQ(r.stopReason, StopReason::InstLimit);
    const std::uint64_t advanced =
        r.proc.committed + r.sampled.fastForwarded;
    EXPECT_GE(advanced, cfg.maxCommitted);
    // The driver stops at phase granularity, never more than one
    // phase past the budget.
    EXPECT_LE(advanced, cfg.maxCommitted + cfg.sampling.interval);
}

TEST(SampledRun, ShortProgramDegradesToDetailed)
{
    // A program shorter than one sampling period runs fully detailed
    // and reports the plain IPC as its estimate.
    const Workload w = buildWorkload("ora", 1);
    CoreConfig full_cfg = baseConfig();
    const SimResult full = simulate(full_cfg, w);

    CoreConfig cfg = full_cfg;
    cfg.sampling.interval = 10 * full.proc.committed;
    cfg.sampling.window = full.proc.committed;
    cfg.sampling.warmup = full.proc.committed;
    const SimResult r = simulate(cfg, w);
    EXPECT_EQ(r.stopReason, StopReason::Halted);
    EXPECT_EQ(r.proc.committed, full.proc.committed);
    EXPECT_EQ(r.sampled.fastForwarded, 0u);
    EXPECT_GT(r.sampled.ipcEstimate, 0.0);
}

TEST(SampledRun, FullDetailRunsAreUnaffected)
{
    // Bit-identical statistics with the feature compiled in but
    // disabled: the sampled machinery must be invisible to normal
    // runs.
    const Workload w = buildWorkload("tomcatv", 1);
    const CoreConfig cfg = baseConfig();
    const SimResult a = simulate(cfg, w);
    const SimResult b = simulate(cfg, w);
    EXPECT_EQ(a.proc.cycles, b.proc.cycles);
    EXPECT_EQ(a.proc.committed, b.proc.committed);
    for (int c = 0; c < kNumCycleCauses; ++c)
        EXPECT_EQ(a.proc.causeCycles[c], b.proc.causeCycles[c]);
    EXPECT_FALSE(a.sampled.enabled);
}

TEST(SampledRun, CauseCyclesStillSumToCycles)
{
    // Stat gating suppresses only the distribution histograms; the
    // per-cycle cause accounting must stay exhaustive even across
    // warm-up and fast-forward boundaries.
    const Workload w = buildWorkload("su2cor", 1);
    CoreConfig cfg = baseConfig();
    cfg.sampling = parseSamplingSpec("8000:400:1600");
    const SimResult r = simulate(cfg, w);
    std::uint64_t sum = 0;
    for (int c = 0; c < kNumCycleCauses; ++c)
        sum += r.proc.causeCycles[c];
    EXPECT_EQ(sum, std::uint64_t(r.proc.cycles));
}

} // namespace
} // namespace drsim
