/**
 * @file
 * Tests of the experiment-registry layer (src/exp): grid expansion
 * must reproduce the exact spec vectors the legacy bench/ harness
 * mains built by hand (counts, names, configurations, and ordering),
 * the hardened environment parsing must reject what the old strtoull
 * path silently accepted, sweep-spec files must round-trip, and the
 * registry-driven results JSON for the exporting experiments must be
 * byte-identical to the legacy construction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "exp/registry.hh"
#include "exp/spec_file.hh"
#include "workloads/kernels.hh"

using namespace drsim;
using namespace drsim::exp;

namespace {

/** Scoped environment-variable override (nullptr = unset). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_;
    std::string old_;
};

std::vector<ExperimentSpec>
expand(const char *name)
{
    const ExperimentDef *def = findExperiment(name);
    EXPECT_NE(def, nullptr) << name;
    return expandExperiment(*def, RunContext{});
}

// ------------------------------------------------------------ registry

TEST(ExpRegistry, EveryLegacyHarnessIsRegistered)
{
    const char *expected[] = {
        "table1",      "fig3",          "fig4",
        "fig5",        "fig6",          "fig7",
        "fig8",        "fig10",         "ablations",
        "ext_classic", "ext_mshr",      "ext_writebuffer",
        "ext_variance", "ext_bounds",   "ext_predictors",
        "ext_critical_paths",
        "simspeed",    "sampling_validate", "micro",
    };
    for (const char *name : expected)
        EXPECT_NE(findExperiment(name), nullptr) << name;
    EXPECT_EQ(experimentRegistry().size(), std::size(expected));
}

TEST(ExpRegistry, NamesAreUnique)
{
    std::vector<std::string> names;
    for (const ExperimentDef &def : experimentRegistry())
        names.push_back(def.name);
    auto sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ExpRegistry, UnknownNameIsNull)
{
    EXPECT_EQ(findExperiment("no_such_experiment"), nullptr);
}

TEST(ExpRegistry, CustomExperimentsHaveNoGrid)
{
    for (const char *name :
         {"ext_critical_paths", "simspeed", "micro"}) {
        const ExperimentDef *def = findExperiment(name);
        ASSERT_NE(def, nullptr);
        EXPECT_NE(def->run, nullptr) << name;
        EXPECT_THROW(expandExperiment(*def, RunContext{}), FatalError)
            << name;
    }
}

// ------------------------------------------------- cross-product counts

TEST(ExpGrid, CrossProductCountsMatchLegacyHarnesses)
{
    const struct { const char *name; std::size_t count; } expected[] = {
        {"table1", 2},        {"fig3", 12},
        {"fig4", 4},          {"fig5", 2},
        {"fig6", 32},         {"fig7", 96},
        {"fig8", 3},          {"fig10", 32},
        {"ablations", 7},     {"ext_classic", 9},
        {"ext_mshr", 14},     {"ext_writebuffer", 12},
        {"ext_variance", 1},  {"ext_bounds", 16},
    };
    for (const auto &[name, count] : expected)
        EXPECT_EQ(expand(name).size(), count) << name;
}

// --------------------------------------- names and deterministic order

TEST(ExpGrid, Table1NamesMatchLegacy)
{
    const auto specs = expand("table1");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "w4-r2048");
    EXPECT_EQ(specs[1].name, "w8-r2048");
    EXPECT_EQ(specs[0].config.issueWidth, 4);
    EXPECT_EQ(specs[0].config.dqSize, 32);
    EXPECT_EQ(specs[1].config.issueWidth, 8);
    EXPECT_EQ(specs[1].config.dqSize, 64);
    EXPECT_EQ(specs[0].config.numPhysRegs, 2048);
}

TEST(ExpGrid, Fig6SpecsMatchLegacyLoopExactly)
{
    // The loop from the legacy bench/fig6.cc main, verbatim.
    std::vector<ExperimentSpec> legacy;
    for (const int width : {4, 8}) {
        for (const int regs : {32, 48, 64, 80, 96, 128, 160, 256}) {
            for (const auto model : {ExceptionModel::Precise,
                                     ExceptionModel::Imprecise}) {
                CoreConfig cfg = paperConfig(width, regs, model);
                legacy.push_back(
                    {"w" + std::to_string(width) + "-" +
                         exceptionModelName(model) + "-r" +
                         std::to_string(regs),
                     cfg});
            }
        }
    }
    const auto specs = expand("fig6");
    ASSERT_EQ(specs.size(), legacy.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(specs[i].name, legacy[i].name) << i;
        EXPECT_TRUE(specs[i].config == legacy[i].config) << i;
    }
}

TEST(ExpGrid, Fig7SpecsMatchLegacyLoopExactly)
{
    // The loop from the legacy bench/fig7.cc main, verbatim: note the
    // nesting (model outermost) differs from the name order (width
    // first) — the expansion must reproduce both.
    const CacheKind kinds[3] = {CacheKind::Perfect,
                                CacheKind::LockupFree,
                                CacheKind::Lockup};
    std::vector<ExperimentSpec> legacy;
    for (const auto model :
         {ExceptionModel::Imprecise, ExceptionModel::Precise}) {
        for (const int width : {4, 8}) {
            for (const int regs :
                 {32, 48, 64, 80, 96, 128, 160, 256}) {
                for (const CacheKind kind : kinds) {
                    legacy.push_back(
                        {"w" + std::to_string(width) + "-" +
                             exceptionModelName(model) + "-r" +
                             std::to_string(regs) + "-" +
                             cacheKindName(kind),
                         paperConfig(width, regs, model, kind)});
                }
            }
        }
    }
    const auto specs = expand("fig7");
    ASSERT_EQ(specs.size(), legacy.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(specs[i].name, legacy[i].name) << i;
        EXPECT_TRUE(specs[i].config == legacy[i].config) << i;
    }
}

TEST(ExpGrid, AblationsNamesMatchLegacy)
{
    const auto specs = expand("ablations");
    ASSERT_EQ(specs.size(), 7u);
    EXPECT_EQ(specs[0].name, "baseline (paper model)");
    EXPECT_EQ(specs[1].name, "in-order branches");
    EXPECT_EQ(specs[2].name, "execute-time bpred history");
    EXPECT_EQ(specs[3].name, "no store->load forwarding");
    EXPECT_EQ(specs[4].name, "split dispatch queues");
    EXPECT_EQ(specs[5].name, "lifetime-precise-r80");
    EXPECT_EQ(specs[6].name, "lifetime-imprecise-r80");
    EXPECT_TRUE(specs[1].config.inOrderBranches);
    EXPECT_FALSE(specs[2].config.speculativeHistoryUpdate);
    EXPECT_FALSE(specs[3].config.storeToLoadForwarding);
    EXPECT_TRUE(specs[4].config.splitDispatchQueues);
    EXPECT_EQ(specs[5].config.numPhysRegs, 80);
    EXPECT_EQ(specs[6].config.exceptionModel,
              ExceptionModel::Imprecise);
}

TEST(ExpGrid, Fig8NamesCarryThePrefix)
{
    const auto specs = expand("fig8");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].name, "compress-perfect");
    EXPECT_EQ(specs[1].name, "compress-lockup-free");
    EXPECT_EQ(specs[2].name, "compress-lockup");
}

TEST(ExpGrid, ExpansionIsDeterministic)
{
    for (const char *name : {"fig6", "fig7", "ext_mshr"}) {
        const auto a = expand(name);
        const auto b = expand(name);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].name, b[i].name);
            EXPECT_TRUE(a[i].config == b[i].config);
        }
    }
}

TEST(ExpGrid, ContextCapIsAppliedToEverySpec)
{
    const ExperimentDef *def = findExperiment("fig6");
    ASSERT_NE(def, nullptr);
    RunContext ctx;
    ctx.maxCommitted = 12345;
    for (const ExperimentSpec &spec : expandExperiment(*def, ctx))
        EXPECT_EQ(spec.config.maxCommitted, 12345u);
}

// -------------------------------------------------------- env hardening

TEST(ExpEnv, ParseRejectsWhatStrtoullAccepted)
{
    const char *var = "DRSIM_TEST_ENV";
    std::uint64_t out = 99;

    // The old strtoull path silently accepted every one of these.
    for (const char *bad :
         {"7seven", "", " 7", "-3", "+3", "0x10", "7 "}) {
        EnvGuard guard(var, bad);
        EXPECT_EQ(envParseU64(var, out), EnvStatus::Malformed) << bad;
        EXPECT_EQ(out, 99u) << bad; // untouched on failure
    }
    {
        EnvGuard guard(var, nullptr);
        EXPECT_EQ(envParseU64(var, out), EnvStatus::Unset);
        EXPECT_EQ(out, 99u);
    }
    {
        EnvGuard guard(var, "0");
        EXPECT_EQ(envParseU64(var, out), EnvStatus::Ok);
        EXPECT_EQ(out, 0u);
    }
    {
        EnvGuard guard(var, "123456789");
        EXPECT_EQ(envParseU64(var, out), EnvStatus::Ok);
        EXPECT_EQ(out, 123456789u);
    }
    {
        // Overflow saturates rather than wrapping.
        EnvGuard guard(var, "99999999999999999999999");
        EXPECT_EQ(envParseU64(var, out), EnvStatus::Ok);
        EXPECT_EQ(out, UINT64_MAX);
    }
}

TEST(ExpEnv, U64FallsBackOnMalformedValues)
{
    {
        EnvGuard guard("DRSIM_TEST_ENV", "30x");
        EXPECT_EQ(envU64("DRSIM_TEST_ENV", 7), 7u);
    }
    {
        EnvGuard guard("DRSIM_TEST_ENV", "30");
        EXPECT_EQ(envU64("DRSIM_TEST_ENV", 7), 30u);
    }
    {
        EnvGuard guard("DRSIM_TEST_ENV", nullptr);
        EXPECT_EQ(envU64("DRSIM_TEST_ENV", 7), 7u);
    }
}

TEST(ExpEnv, IntClampsToRange)
{
    {
        EnvGuard guard("DRSIM_TEST_ENV", "100");
        EXPECT_EQ(envInt("DRSIM_TEST_ENV", 1, 0, 50), 50);
        EXPECT_EQ(envInt("DRSIM_TEST_ENV", 1, 0, 1000), 100);
    }
    {
        EnvGuard guard("DRSIM_TEST_ENV", "bogus");
        EXPECT_EQ(envInt("DRSIM_TEST_ENV", 1, 0, 50), 1);
    }
}

TEST(ExpEnv, RunContextFromEnvIgnoresGarbageScale)
{
    EnvGuard scale("DRSIM_SCALE", "5x");
    EnvGuard cap("DRSIM_MAX_COMMITTED", "oops");
    EnvGuard dir("DRSIM_RESULTS_DIR", nullptr);
    const RunContext ctx = RunContext::fromEnv();
    EXPECT_EQ(ctx.scale, kDefaultSuiteScale);
    EXPECT_EQ(ctx.maxCommitted, 0u);
    EXPECT_EQ(ctx.resultsDir, ".");
}

// ---------------------------------------------------------- spec files

const char kSweepDoc[] = R"json({
  "name": "demo",
  "description": "two-axis demo",
  "suite": "spec92",
  "export": true,
  "axes": {
    "regs": [48, 96],
    "model": ["precise", "imprecise"]
  }
})json";

TEST(ExpSpecFile, ParsesAndExpands)
{
    const SweepSpec spec = parseSweepSpec(kSweepDoc);
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.suite, "spec92");
    EXPECT_TRUE(spec.exportResults);
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[0].key, "regs");
    EXPECT_EQ(spec.axes[1].key, "model");

    const auto specs = expandGrid(toGrid(spec));
    ASSERT_EQ(specs.size(), 4u);
    // Nesting follows declaration order (regs outermost); the name
    // uses the canonical fragment order (model before regs).
    EXPECT_EQ(specs[0].name, "precise-r48");
    EXPECT_EQ(specs[1].name, "imprecise-r48");
    EXPECT_EQ(specs[2].name, "precise-r96");
    EXPECT_EQ(specs[3].name, "imprecise-r96");
    EXPECT_EQ(specs[0].config.numPhysRegs, 48);
    EXPECT_EQ(specs[3].config.exceptionModel,
              ExceptionModel::Imprecise);
}

TEST(ExpSpecFile, RoundTripsThroughItsJsonForm)
{
    const SweepSpec spec = parseSweepSpec(kSweepDoc);
    const SweepSpec again = parseSweepSpec(sweepSpecJson(spec));
    EXPECT_EQ(again.name, spec.name);
    EXPECT_EQ(again.description, spec.description);
    EXPECT_EQ(again.suite, spec.suite);
    EXPECT_EQ(again.exportResults, spec.exportResults);
    ASSERT_EQ(again.axes.size(), spec.axes.size());
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        EXPECT_EQ(again.axes[a].key, spec.axes[a].key);
        EXPECT_EQ(again.axes[a].nums, spec.axes[a].nums);
        EXPECT_EQ(again.axes[a].strs, spec.axes[a].strs);
    }
    // The serializer is canonical: serializing twice is a fixpoint.
    EXPECT_EQ(sweepSpecJson(again), sweepSpecJson(spec));
}

TEST(ExpSpecFile, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseSweepSpec("not json"), FatalError);
    EXPECT_THROW(parseSweepSpec(R"({"name": "x"})"), FatalError);
    EXPECT_THROW(
        parseSweepSpec(
            R"({"name": "x", "axes": {"bogus": [1]}})"),
        FatalError);
    EXPECT_THROW(
        parseSweepSpec(
            R"({"name": "x", "axes": {"regs": []}})"),
        FatalError);
    EXPECT_THROW(
        parseSweepSpec(
            R"({"name": "x", "suite": "spec95", "axes": {"regs": [8]}})"),
        FatalError);
    // Axis *values* are validated when the spec is lowered to a grid
    // (which every --spec path does before any simulation starts).
    EXPECT_THROW(
        toGrid(parseSweepSpec(
            R"({"name": "x", "axes": {"model": ["sloppy"]}})")),
        FatalError);
    EXPECT_THROW(
        toGrid(parseSweepSpec(
            R"({"name": "x", "axes": {"cache": ["direct-mapped"]}})")),
        FatalError);
}

// --------------------------------------- results-JSON byte identity

/** Registry-driven results JSON for @p name at scale 1. */
std::string
registryJson(const char *name, int scale)
{
    const ExperimentDef *def = findExperiment(name);
    EXPECT_NE(def, nullptr);
    RunContext ctx;
    ctx.scale = scale;
    const auto results = runExperiments(expandExperiment(*def, ctx),
                                        buildSuite(*def, ctx));
    RunInfo info;
    info.runId = name;
    info.scale = ctx.scale;
    info.maxCommitted = ctx.maxCommitted;
    return resultsJson(info, results);
}

TEST(ExpByteIdentity, Table1MatchesLegacyConstruction)
{
    const int scale = 1;
    // The legacy bench/table1.cc main's spec construction, verbatim.
    const auto suite = buildSpec92Suite(scale);
    std::vector<ExperimentSpec> specs;
    for (const int width : {4, 8}) {
        CoreConfig cfg = paperConfig(width, 2048);
        specs.push_back({"w" + std::to_string(width) + "-r2048", cfg});
    }
    const auto results = runExperiments(specs, suite);
    RunInfo info;
    info.runId = "table1";
    info.scale = scale;
    info.maxCommitted = 0;
    EXPECT_EQ(registryJson("table1", scale),
              resultsJson(info, results));
}

TEST(ExpByteIdentity, Fig7MatchesLegacyConstruction)
{
    const int scale = 1;
    // The legacy bench/fig7.cc main's spec construction, verbatim.
    const auto suite = buildSpec92Suite(scale);
    const CacheKind kinds[3] = {CacheKind::Perfect,
                                CacheKind::LockupFree,
                                CacheKind::Lockup};
    std::vector<ExperimentSpec> specs;
    for (const auto model :
         {ExceptionModel::Imprecise, ExceptionModel::Precise}) {
        for (const int width : {4, 8}) {
            for (const int regs :
                 {32, 48, 64, 80, 96, 128, 160, 256}) {
                for (const CacheKind kind : kinds) {
                    specs.push_back(
                        {"w" + std::to_string(width) + "-" +
                             exceptionModelName(model) + "-r" +
                             std::to_string(regs) + "-" +
                             cacheKindName(kind),
                         paperConfig(width, regs, model, kind)});
                }
            }
        }
    }
    const auto results = runExperiments(specs, suite);
    RunInfo info;
    info.runId = "fig7";
    info.scale = scale;
    info.maxCommitted = 0;
    EXPECT_EQ(registryJson("fig7", scale),
              resultsJson(info, results));
}

} // namespace
