/**
 * @file
 * Unit tests for the register-file cycle-time model: the structural
 * dependences the paper's Section 3.4 conclusions rest on.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "timing/regfile_timing.hh"

namespace drsim {
namespace {

TEST(RegFileTiming, MonotoneInRegisters)
{
    double prev = 0.0;
    for (int regs : {32, 48, 64, 80, 96, 128, 160, 256}) {
        const auto t = regFileTiming({regs, 8, 4, 64});
        EXPECT_GT(t.cycleNs, prev);
        prev = t.cycleNs;
    }
}

TEST(RegFileTiming, MonotoneInPorts)
{
    const auto t1 = regFileTiming({128, 4, 2, 64});
    const auto t2 = regFileTiming({128, 8, 4, 64});
    const auto t3 = regFileTiming({128, 16, 8, 64});
    EXPECT_LT(t1.cycleNs, t2.cycleNs);
    EXPECT_LT(t2.cycleNs, t3.cycleNs);
}

TEST(RegFileTiming, PortsCostMoreThanRegisters)
{
    // The paper's key asymmetry: doubling the ports slows the file
    // more than doubling the register count (Section 3.4).
    const auto base = regFileTiming({128, 8, 4, 64});
    const auto regs2x = regFileTiming({256, 8, 4, 64});
    const auto ports2x = regFileTiming({128, 16, 8, 64});
    EXPECT_GT(ports2x.cycleNs - base.cycleNs,
              regs2x.cycleNs - base.cycleNs);
}

TEST(RegFileTiming, PortsQuadrupleAreaInTheLimit)
{
    // Doubling ports doubles both wordlines and bitlines; for a
    // wire-dominated cell the area ratio approaches 4x.
    const auto a = regFileTiming({128, 8, 4, 64});
    const auto b = regFileTiming({128, 16, 8, 64});
    EXPECT_GT(b.areaMm2 / a.areaMm2, 2.0);
    EXPECT_LT(b.areaMm2 / a.areaMm2, 4.0);

    // Doubling registers only doubles the array height.
    const auto c = regFileTiming({256, 8, 4, 64});
    EXPECT_NEAR(c.areaMm2 / a.areaMm2, 2.0, 0.01);
}

TEST(RegFileTiming, InPaperBand)
{
    // Figure 10 plots 0.1-1 ns for 0.5 um register files in the
    // 32-256 entry range.
    for (int regs : {32, 64, 128, 256}) {
        for (int w : {4, 8}) {
            const auto t =
                regFileTiming(intRegFileGeometry(w, regs));
            EXPECT_GT(t.cycleNs, 0.1) << regs << "x" << w;
            EXPECT_LT(t.cycleNs, 1.6) << regs << "x" << w;
        }
    }
}

TEST(RegFileTiming, FpFileFasterThanInt)
{
    // Half the ports -> always faster (paper Figure 10 note).
    for (int regs : {32, 64, 128, 256}) {
        for (int w : {4, 8}) {
            const auto ti = regFileTiming(intRegFileGeometry(w, regs));
            const auto tf = regFileTiming(fpRegFileGeometry(w, regs));
            EXPECT_LT(tf.cycleNs, ti.cycleNs);
        }
    }
}

TEST(RegFileTiming, GeometryHelpers)
{
    const auto g4 = intRegFileGeometry(4, 80);
    EXPECT_EQ(g4.readPorts, 8);
    EXPECT_EQ(g4.writePorts, 4);
    const auto g8 = intRegFileGeometry(8, 80);
    EXPECT_EQ(g8.readPorts, 16);
    EXPECT_EQ(g8.writePorts, 8);
    const auto f4 = fpRegFileGeometry(4, 80);
    EXPECT_EQ(f4.readPorts, 4);
    EXPECT_EQ(f4.writePorts, 2);
}

TEST(RegFileTiming, AccessDecomposition)
{
    const auto t = regFileTiming({64, 8, 4, 64});
    EXPECT_NEAR(t.accessNs,
                t.decoderNs + t.wordlineNs + t.bitlineNs + t.senseNs,
                1e-12);
    EXPECT_GT(t.cycleNs, t.accessNs);
}

TEST(RegFileTiming, RejectsBadGeometry)
{
    EXPECT_THROW(regFileTiming({1, 8, 4, 64}), FatalError);
    EXPECT_THROW(regFileTiming({64, 0, 4, 64}), FatalError);
    EXPECT_THROW(regFileTiming({64, 8, 0, 64}), FatalError);
}

TEST(RegFileTiming, BipsEstimate)
{
    EXPECT_DOUBLE_EQ(bipsEstimate(2.5, 0.5), 5.0);
}

TEST(RegFileTiming, BipsHasInteriorMaximumForSaturatingIpc)
{
    // With an IPC curve that saturates (as in Figure 6), BIPS must
    // peak at a moderate register count: cycle time keeps growing
    // after IPC flattens (paper Figure 10 discussion).
    const int sizes[] = {32, 48, 64, 80, 96, 128, 160, 256};
    double best = 0.0;
    int best_size = 0;
    for (const int regs : sizes) {
        // Saturating-IPC toy curve resembling Figure 6(a).
        const double ipc = 2.5 - 1.5 / (1.0 + (regs - 30) / 25.0);
        const auto t = regFileTiming(intRegFileGeometry(4, regs));
        const double bips = bipsEstimate(ipc, t.cycleNs);
        if (bips > best) {
            best = bips;
            best_size = regs;
        }
    }
    EXPECT_GT(best_size, 32);
    EXPECT_LT(best_size, 256);
}

} // namespace
} // namespace drsim
