/**
 * @file
 * Tests for the dispatch-queue and rename-unit timing models
 * (the Section 3.4 companion structures).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "timing/regfile_timing.hh"
#include "timing/structures.hh"

namespace drsim {
namespace {

TEST(DispatchQueueTiming, MonotoneInEntries)
{
    double prev = 0.0;
    for (const int entries : {8, 16, 32, 64, 128, 256}) {
        const auto t = dispatchQueueTiming({entries, 4, 8});
        EXPECT_GT(t.cycleNs, prev) << entries;
        prev = t.cycleNs;
    }
}

TEST(DispatchQueueTiming, MonotoneInIssueWidth)
{
    const auto t4 = dispatchQueueTiming({32, 4, 8});
    const auto t8 = dispatchQueueTiming({32, 8, 8});
    EXPECT_GT(t8.cycleNs, t4.cycleNs);
    // Wakeup grows (taller CAM entries) and select grows (one more
    // arbitration level).
    EXPECT_GT(t8.wakeupNs, t4.wakeupNs);
    EXPECT_GT(t8.selectNs, t4.selectNs);
}

TEST(DispatchQueueTiming, Decomposition)
{
    const auto t = dispatchQueueTiming({64, 8, 8});
    EXPECT_NEAR(t.cycleNs, t.wakeupNs + t.selectNs + 0.12, 1e-9);
    EXPECT_GT(t.wakeupNs, 0.0);
    EXPECT_GT(t.selectNs, 0.0);
}

TEST(DispatchQueueTiming, RejectsBadGeometry)
{
    EXPECT_THROW(dispatchQueueTiming({0, 4, 8}), FatalError);
    EXPECT_THROW(dispatchQueueTiming({32, 0, 8}), FatalError);
}

TEST(RenameTiming, WeaklySensitiveToPhysRegCount)
{
    // Only the map-entry width (log2 physRegs) grows: the effect must
    // be tiny compared to a port doubling.
    const auto r64 = renameTiming({64, 4, 32});
    const auto r2048 = renameTiming({2048, 4, 32});
    const auto w8 = renameTiming({64, 8, 32});
    EXPECT_GE(r2048.cycleNs, r64.cycleNs);
    EXPECT_GT(w8.cycleNs - r64.cycleNs,
              5.0 * (r2048.cycleNs - r64.cycleNs));
}

TEST(RenameTiming, CheckDepthGrowsWithWidth)
{
    const auto r4 = renameTiming({128, 4, 32});
    const auto r8 = renameTiming({128, 8, 32});
    EXPECT_GT(r8.checkNs, r4.checkNs);
    EXPECT_GT(r8.mapReadNs, r4.mapReadNs);
}

TEST(RenameTiming, RejectsBadGeometry)
{
    EXPECT_THROW(renameTiming({1, 4, 32}), FatalError);
    EXPECT_THROW(renameTiming({128, 0, 32}), FatalError);
}

TEST(CriticalPaths, StructuresScaleTogether)
{
    // The paper's Section 3.4 assumption: moving from the 4-way
    // design point (DQ 32) to the 8-way one (DQ 64) slows all three
    // structures by comparable factors.
    const double rf4 = regFileTiming(intRegFileGeometry(4, 80)).cycleNs;
    const double rf8 =
        regFileTiming(intRegFileGeometry(8, 128)).cycleNs;
    const double dq4 = dispatchQueueTiming({32, 4, 8}).cycleNs;
    const double dq8 = dispatchQueueTiming({64, 8, 8}).cycleNs;
    const double rn4 = renameTiming({80, 4, 32}).cycleNs;
    const double rn8 = renameTiming({128, 8, 32}).cycleNs;

    const double rf_scale = rf8 / rf4;
    const double dq_scale = dq8 / dq4;
    const double rn_scale = rn8 / rn4;
    EXPECT_GT(rf_scale, 1.0);
    EXPECT_GT(dq_scale, 1.0);
    EXPECT_GT(rn_scale, 1.0);
    // All scaling factors within ~25% of the register file's.
    EXPECT_NEAR(dq_scale, rf_scale, 0.25 * rf_scale);
    EXPECT_NEAR(rn_scale, rf_scale, 0.25 * rf_scale);
}

TEST(CriticalPaths, NoStructureDwarfsTheRegisterFile)
{
    // At the paper's design points every structure is within ~2x of
    // the register file — none of them invalidates using the register
    // file as the machine-cycle proxy.
    for (const int width : {4, 8}) {
        const int dq = width == 4 ? 32 : 64;
        for (const int regs : {48, 128, 256}) {
            const double rf =
                regFileTiming(intRegFileGeometry(width, regs)).cycleNs;
            const double dqt =
                dispatchQueueTiming({dq, width, 8}).cycleNs;
            const double rnt = renameTiming({regs, width, 32}).cycleNs;
            EXPECT_LT(dqt, 2.0 * rf);
            EXPECT_GT(dqt, 0.5 * rf);
            EXPECT_LT(rnt, 2.0 * rf);
            EXPECT_GT(rnt, 0.3 * rf);
        }
    }
}

} // namespace
} // namespace drsim
