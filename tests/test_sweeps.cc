/**
 * @file
 * Property sweeps: one mid-sized, branchy, miss-heavy program run
 * under a grid of machine configurations; machine-wide invariants
 * must hold at every point, and the architectural outcome must be
 * identical everywhere.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/processor.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

/** A torture loop: data-dependent branches, random loads from a table
 *  larger than the cache, stores, an FP chain, and a call. */
const Program &
tortureProgram()
{
    static const Program prog = [] {
        ProgramBuilder b("torture");
        Rng rng(0xabcdef);
        constexpr int kWords = 16384; // 128 KB
        const Addr tab = b.allocWords(kWords);
        for (int i = 0; i < kWords; i += 3)
            b.initWord(tab + Addr(i) * 8, rng.next());

        const auto fn = b.newLabel();
        const auto start = b.newLabel();
        b.br(start);
        b.bind(fn);
        b.muli(intReg(10), intReg(9), 3);
        b.ret(intReg(26));
        b.bind(start);
        b.li(intReg(1), std::int64_t(tab));
        b.li(intReg(2), 4000);
        b.li(intReg(3), 0x1357'9bdf);
        b.li(intReg(9), 7);
        const auto top = b.here();
        const auto skip = b.newLabel();
        const auto nocall = b.newLabel();
        // xorshift
        b.slli(intReg(4), intReg(3), 13);
        b.xor_(intReg(3), intReg(3), intReg(4));
        b.srli(intReg(4), intReg(3), 7);
        b.xor_(intReg(3), intReg(3), intReg(4));
        // random load
        b.andi(intReg(5), intReg(3), kWords - 1);
        b.slli(intReg(5), intReg(5), 3);
        b.add(intReg(5), intReg(5), intReg(1));
        b.ldq(intReg(6), intReg(5), 0);
        // data-dependent branch
        b.andi(intReg(7), intReg(6), 1);
        b.beq(intReg(7), skip);
        b.stq(intReg(3), intReg(5), 0);
        b.itof(fpReg(1), intReg(6));
        b.fadd(fpReg(2), fpReg(2), fpReg(1));
        b.bind(skip);
        // occasional call
        b.andi(intReg(7), intReg(3), 15);
        b.bne(intReg(7), nocall);
        b.jsr(intReg(26), fn);
        b.add(intReg(9), intReg(10), intReg(9));
        b.bind(nocall);
        // occasional divide
        b.andi(intReg(7), intReg(3), 31);
        b.bne(intReg(7), top);
        b.fdivd(fpReg(3), fpReg(2), fpReg(1));
        b.fadd(fpReg(2), fpReg(3), fpReg(2));
        b.subi(intReg(2), intReg(2), 1);
        b.bne(intReg(2), top);
        b.halt();
        return b.build();
    }();
    return prog;
}

struct SweepPoint
{
    int width;
    int dq;
    int regs;
    ExceptionModel model;
    CacheKind cache;
};

std::vector<SweepPoint>
sweepGrid()
{
    std::vector<SweepPoint> grid;
    for (const int width : {4, 8})
        for (const int dq : {8, 32, 128})
            for (const int regs : {32, 48, 96, 512})
                for (const auto model : {ExceptionModel::Precise,
                                         ExceptionModel::Imprecise})
                    grid.push_back({width, dq, regs, model,
                                    CacheKind::LockupFree});
    // A few cache-organization corners on top.
    grid.push_back({4, 32, 64, ExceptionModel::Precise,
                    CacheKind::Lockup});
    grid.push_back({4, 32, 64, ExceptionModel::Imprecise,
                    CacheKind::Perfect});
    grid.push_back({8, 64, 128, ExceptionModel::Precise,
                    CacheKind::Perfect});
    grid.push_back({8, 64, 128, ExceptionModel::Imprecise,
                    CacheKind::Lockup});
    return grid;
}

struct Reference
{
    std::uint64_t steps;
    std::uint64_t hash;
};

const Reference &
reference()
{
    static const Reference ref = [] {
        Emulator emu(tortureProgram());
        while (!emu.fetchBlocked())
            emu.stepArch();
        return Reference{emu.stepsExecuted(), emu.stateHash()};
    }();
    return ref;
}

class MachineSweep : public ::testing::TestWithParam<SweepPoint>
{};

TEST_P(MachineSweep, InvariantsHoldEverywhere)
{
    const SweepPoint &p = GetParam();
    CoreConfig cfg;
    cfg.issueWidth = p.width;
    cfg.dqSize = p.dq;
    cfg.numPhysRegs = p.regs;
    cfg.exceptionModel = p.model;
    cfg.cacheKind = p.cache;
    cfg.auditInterval = 257; // aggressive self-checking

    Processor proc(cfg, tortureProgram());
    std::size_t max_dq = 0;
    while (!proc.done()) {
        proc.tick();
        max_dq = std::max(max_dq, proc.dqOccupancy());
    }
    const ProcStats &s = proc.stats();

    // Architectural equivalence: exactly the functional execution.
    EXPECT_EQ(s.committed, reference().steps);
    EXPECT_EQ(proc.emulator().stateHash(), reference().hash);

    // Machine-wide invariants.
    EXPECT_LE(max_dq, std::size_t(p.dq));
    EXPECT_GE(s.executed, s.committed);
    EXPECT_LE(s.committed, Cycle(2 * p.width) * s.cycles);
    EXPECT_LE(s.executed, Cycle(p.width) * s.cycles);
    EXPECT_LE(s.mispredictedBranches, s.executedCondBranches);
    EXPECT_GE(s.executedCondBranches, s.committedCondBranches);
    EXPECT_LE(s.noFreeRegCycles, s.cycles);
    EXPECT_EQ(proc.windowSize(), 0u); // fully drained at halt

    // Live-register histograms: bounded by the file and nested.
    for (int c = 0; c < kNumRegClasses; ++c) {
        EXPECT_LE(s.live[c][3].maxValue(), std::uint64_t(p.regs));
        for (int lvl = 1; lvl < 4; ++lvl)
            EXPECT_GE(s.live[c][lvl].mean(), s.live[c][lvl - 1].mean());
        EXPECT_EQ(s.live[c][0].totalSamples(), s.cycles);
    }

    // Under the imprecise model nothing ever waits for the precise
    // conditions: the top two nested levels coincide.
    if (p.model == ExceptionModel::Imprecise) {
        EXPECT_EQ(s.live[0][3].mean(), s.live[0][2].mean());
        EXPECT_EQ(s.live[1][3].mean(), s.live[1][2].mean());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MachineSweep, ::testing::ValuesIn(sweepGrid()),
    [](const ::testing::TestParamInfo<SweepPoint> &pinfo) {
        const SweepPoint &p = pinfo.param;
        std::string s = "w" + std::to_string(p.width) + "_dq" +
                        std::to_string(p.dq) + "_r" +
                        std::to_string(p.regs) + "_";
        s += p.model == ExceptionModel::Precise ? "prec" : "impr";
        s += "_";
        s += p.cache == CacheKind::Perfect
                 ? "perfect"
                 : (p.cache == CacheKind::Lockup ? "lockup" : "lf");
        return s;
    });

} // namespace
} // namespace drsim
