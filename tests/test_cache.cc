/**
 * @file
 * Unit tests for the data-cache organizations (perfect, lockup,
 * lockup-free) and the instruction cache.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "memory/cache.hh"

namespace drsim {
namespace {

CacheConfig
smallConfig()
{
    CacheConfig c;
    c.sizeBytes = 1024; // 16 sets x 2 ways x 32 B
    c.assoc = 2;
    c.lineBytes = 32;
    c.hitLatency = 1;
    c.missPenalty = 16;
    return c;
}

TEST(CacheConfig, Validation)
{
    CacheConfig c = smallConfig();
    EXPECT_NO_THROW(c.validate());
    c.lineBytes = 33;
    EXPECT_THROW(c.validate(), FatalError);
    c = smallConfig();
    c.assoc = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = smallConfig();
    c.sizeBytes = 1000;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(PerfectCache, AlwaysHits)
{
    DataCache cache(CacheKind::Perfect, smallConfig());
    for (Addr a = 0; a < 100 * 4096; a += 4096) {
        const LoadResult r = cache.load(a, 10, a);
        EXPECT_TRUE(r.hit);
        EXPECT_EQ(r.readyCycle, 10u + cache.hitUseLatency());
    }
    EXPECT_EQ(cache.stats().loadMisses, 0u);
}

TEST(LockupFree, MissThenHitTiming)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    // First access misses: ready = now + hit + penalty + 1.
    const LoadResult m = cache.load(0x100, 100, 1);
    EXPECT_FALSE(m.hit);
    EXPECT_EQ(m.readyCycle, 100u + 1 + 16 + 1);
    EXPECT_GE(m.fetchId, 0);

    // Same line after the fill: a plain hit.
    const LoadResult h = cache.load(0x108, 200, 2);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyCycle, 200u + cache.hitUseLatency());
    EXPECT_EQ(cache.stats().loadMisses, 1u);
}

TEST(LockupFree, SameLineMissesMerge)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    const LoadResult merged = cache.load(0x110, 105, 2);
    EXPECT_FALSE(merged.hit);
    EXPECT_TRUE(merged.merged);
    EXPECT_EQ(merged.fetchId, m.fetchId);
    // The merged load completes when the fill does.
    EXPECT_EQ(merged.readyCycle, m.readyCycle);
    EXPECT_EQ(cache.stats().loadMisses, 1u);
    EXPECT_EQ(cache.stats().loadMerges, 1u);
}

TEST(LockupFree, ManyOutstandingMisses)
{
    // Inverted MSHR: an unbounded number of distinct-line misses may
    // be outstanding simultaneously.
    DataCache cache(CacheKind::LockupFree, smallConfig());
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(cache.loadCanIssue(100));
        const LoadResult r =
            cache.load(Addr(i) * 4096, 100, InstUid(i));
        EXPECT_FALSE(r.hit);
    }
    EXPECT_EQ(cache.stats().loadMisses, 64u);
}

TEST(Lockup, BlocksDuringMiss)
{
    DataCache cache(CacheKind::Lockup, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    EXPECT_FALSE(m.hit);
    // Blocked until the fill completes at now + 1 + 16.
    EXPECT_FALSE(cache.loadCanIssue(101));
    EXPECT_FALSE(cache.loadCanIssue(116));
    EXPECT_TRUE(cache.loadCanIssue(117));
    // And then the line hits.
    const LoadResult h = cache.load(0x100, 117, 2);
    EXPECT_TRUE(h.hit);
}

TEST(Lockup, HitsDoNotBlock)
{
    DataCache cache(CacheKind::Lockup, smallConfig());
    cache.load(0x100, 100, 1);            // miss; fill at 117
    const LoadResult h = cache.load(0x100, 200, 2);
    EXPECT_TRUE(h.hit);
    EXPECT_TRUE(cache.loadCanIssue(201)); // hits never block
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // Three lines mapping to the same set of a 2-way cache.
    const CacheConfig cfg = smallConfig(); // 16 sets
    DataCache cache(CacheKind::LockupFree, cfg);
    const Addr a = 0;
    const Addr b = 16 * 32;     // same set, next tag
    const Addr c = 2 * 16 * 32; // same set, next tag

    cache.load(a, 100, 1); // miss
    cache.load(b, 200, 2); // miss -> set full
    cache.load(a, 300, 3); // hit, touches a
    cache.load(c, 400, 4); // miss, evicts b (LRU)
    EXPECT_TRUE(cache.load(a, 500, 5).hit);
    EXPECT_FALSE(cache.load(b, 600, 6).hit); // b was evicted
    EXPECT_EQ(cache.stats().loadMisses, 4u);
}

TEST(Cache, StoresWriteAroundWithoutAllocating)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    cache.storeCommit(0x100, 100);
    // The store must not have allocated the line.
    EXPECT_FALSE(cache.load(0x100, 200, 1).hit);
    EXPECT_EQ(cache.stats().storesBuffered, 1u);
    EXPECT_EQ(cache.stats().storeHits, 0u);
    // After the line is resident, a store hit updates it.
    cache.storeCommit(0x100, 300);
    EXPECT_EQ(cache.stats().storeHits, 1u);
}

TEST(Cache, StoreHitRefreshesLru)
{
    const CacheConfig cfg = smallConfig();
    DataCache cache(CacheKind::LockupFree, cfg);
    const Addr a = 0;
    const Addr b = 16 * 32;
    const Addr c = 2 * 16 * 32;
    cache.load(a, 100, 1);
    cache.load(b, 200, 2);
    cache.storeCommit(a, 300);  // store hit keeps a young
    cache.load(c, 400, 3);      // evicts b
    EXPECT_TRUE(cache.load(a, 500, 4).hit);
}

TEST(LockupFree, SquashedSoloFetchIsCancelled)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    cache.squashLoad(m.fetchId, 1, 105); // before fill completes
    EXPECT_EQ(cache.stats().fetchesCancelled, 1u);
    // The block was not written into the cache.
    EXPECT_FALSE(cache.load(0x100, 300, 2).hit);
}

TEST(LockupFree, SurvivingMergeKeepsFetchAlive)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    const LoadResult merged = cache.load(0x108, 101, 2);
    ASSERT_TRUE(merged.merged);
    // The initiating load is squashed, but a correct-path load still
    // waits on the fill: the fetch continues and the block is written.
    cache.squashLoad(m.fetchId, 1, 102);
    EXPECT_EQ(cache.stats().fetchesCancelled, 0u);
    EXPECT_TRUE(cache.load(0x100, 300, 3).hit);
}

TEST(LockupFree, SquashAfterFillKeepsBlock)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    // The fill completed long ago; squashing must not invalidate.
    cache.squashLoad(m.fetchId, 1, 500);
    EXPECT_TRUE(cache.load(0x100, 600, 2).hit);
}

TEST(Lockup, SquashUnblocksCache)
{
    DataCache cache(CacheKind::Lockup, smallConfig());
    const LoadResult m = cache.load(0x100, 100, 1);
    EXPECT_FALSE(cache.loadCanIssue(105));
    cache.squashLoad(m.fetchId, 1, 105);
    EXPECT_TRUE(cache.loadCanIssue(106));
}

TEST(LockupFree, InFlightLineNotEvicted)
{
    // Two in-flight fills occupy both ways of a set; a third miss to
    // the same set must not evict either (it fetches without
    // allocating), and both earlier fills must still complete.
    const CacheConfig cfg = smallConfig();
    DataCache cache(CacheKind::LockupFree, cfg);
    const Addr a = 0;
    const Addr b = 16 * 32;
    const Addr c = 2 * 16 * 32;
    cache.load(a, 100, 1);
    cache.load(b, 100, 2);
    const LoadResult r3 = cache.load(c, 101, 3);
    EXPECT_FALSE(r3.hit);
    EXPECT_GE(r3.readyCycle, 101u + 17);
    // After all fills: a and b are resident, c was not allocated.
    EXPECT_TRUE(cache.load(a, 300, 4).hit);
    EXPECT_TRUE(cache.load(b, 301, 5).hit);
    EXPECT_FALSE(cache.load(c, 302, 6).hit);
}

TEST(Cache, MissRateAccounting)
{
    DataCache cache(CacheKind::LockupFree, smallConfig());
    cache.load(0x100, 100, 1);  // primary miss
    cache.load(0x110, 101, 2);  // merge (secondary miss)
    cache.load(0x100, 300, 3);  // hit
    cache.load(0x100, 301, 4);  // hit
    // The paper-style rate counts only primary misses.
    EXPECT_DOUBLE_EQ(cache.stats().loadMissRate(), 0.25);
    EXPECT_EQ(cache.stats().loadMerges, 1u);
}

TEST(ICache, HitAndMissTiming)
{
    InstCache icache(smallConfig());
    EXPECT_EQ(icache.fetch(0x1000, 50), 50u + 16); // cold miss
    EXPECT_EQ(icache.fetch(0x1004, 70), 70u);      // same line: hit
    EXPECT_EQ(icache.misses(), 1u);
    EXPECT_EQ(icache.accesses(), 2u);
}

TEST(ICache, SmallLoopStaysResident)
{
    InstCache icache(smallConfig());
    // Touch a 4-line loop repeatedly: only 4 cold misses.
    for (int rep = 0; rep < 100; ++rep)
        for (Addr line = 0; line < 4; ++line)
            icache.fetch(0x1000 + line * 32, 1000 + rep);
    EXPECT_EQ(icache.misses(), 4u);
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CacheGeometryTest, FillsToCapacityWithoutConflicts)
{
    // Property: touching exactly `lines` distinct, set-balanced lines
    // of an S-set, A-way cache produces only cold misses on re-sweep.
    const auto [size_kb, assoc] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size_kb * 1024;
    cfg.assoc = assoc;
    cfg.lineBytes = 32;
    DataCache cache(CacheKind::LockupFree, cfg);

    const int lines = int(cfg.sizeBytes / cfg.lineBytes);
    Cycle now = 100;
    for (int i = 0; i < lines; ++i)
        cache.load(Addr(i) * 32, now++, InstUid(i));
    EXPECT_EQ(cache.stats().loadMisses, std::uint64_t(lines));
    // Sweep again far in the future: everything is resident.
    now += 1000;
    for (int i = 0; i < lines; ++i)
        cache.load(Addr(i) * 32, now++, InstUid(1000 + i));
    EXPECT_EQ(cache.stats().loadMisses, std::uint64_t(lines));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 2),
                      std::make_tuple(4, 2), std::make_tuple(4, 4),
                      std::make_tuple(64, 2), std::make_tuple(16, 8)));

} // namespace
} // namespace drsim
