/**
 * @file
 * Differential fuzzing: randomly generated (but always-terminating)
 * programs are run through the full timing simulator under differing
 * machine configurations; every run must commit exactly the
 * architectural instruction stream of the functional emulator and
 * reach the same final state.
 *
 * The generator emits a counted outer loop whose body is a random mix
 * of ALU ops, FP ops, loads/stores with random (but in-bounds) base
 * offsets, data-dependent forward branches, and occasional calls —
 * biased toward the constructs that stress renaming, memory ordering
 * and recovery.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/processor.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz");

    constexpr int kWords = 2048;
    const Addr data = b.allocWords(kWords);
    for (int i = 0; i < kWords; i += 2)
        b.initWord(data + Addr(i) * 8, rng.next());

    // Register pools (avoid the loop-control registers).
    const auto ir = [&](int i) { return intReg(3 + (i % 20)); };
    const auto fr = [&](int i) { return fpReg(1 + (i % 20)); };

    // Optional helper function.
    const bool has_helper = rng.chance(0.6);
    const auto helper = b.newLabel();
    const auto start = b.newLabel();
    b.br(start);
    if (has_helper) {
        b.bind(helper);
        b.slli(intReg(24), intReg(23), 2);
        b.xor_(intReg(24), intReg(24), intReg(23));
        b.ret(intReg(26));
    }
    b.bind(start);

    b.li(intReg(1), std::int64_t(data));       // data base
    b.li(intReg(2), 150 + std::int64_t(rng.below(200))); // trips
    b.li(intReg(25), 0x517'0000 + std::int64_t(seed)); // entropy

    const auto top = b.here();
    // xorshift entropy for data-dependent control.
    b.slli(intReg(24), intReg(25), 13);
    b.xor_(intReg(25), intReg(25), intReg(24));
    b.srli(intReg(24), intReg(25), 7);
    b.xor_(intReg(25), intReg(25), intReg(24));

    const int body = 8 + int(rng.below(24));
    int pending_label = -1; // at most one open forward branch
    for (int i = 0; i < body; ++i) {
        if (pending_label >= 0 && rng.chance(0.4)) {
            b.bind(pending_label);
            pending_label = -1;
        }
        switch (rng.below(10)) {
          case 0:
          case 1:
            b.add(ir(i), ir(i + 1), ir(i + 3));
            break;
          case 2:
            b.muli(ir(i), ir(i + 2), 3);
            break;
          case 3: {
            // In-bounds load: index = entropy & (kWords/2 - 1).
            b.andi(intReg(24), intReg(25), kWords / 2 - 1);
            b.slli(intReg(24), intReg(24), 3);
            b.add(intReg(24), intReg(24), intReg(1));
            b.ldq(ir(i), intReg(24), 8 * std::int64_t(rng.below(4)));
            break;
          }
          case 4: {
            b.andi(intReg(24), intReg(25), kWords / 2 - 1);
            b.slli(intReg(24), intReg(24), 3);
            b.add(intReg(24), intReg(24), intReg(1));
            b.stq(ir(i), intReg(24), 8 * std::int64_t(rng.below(4)));
            break;
          }
          case 5:
            b.fadd(fr(i), fr(i + 1), fr(i + 2));
            break;
          case 6:
            b.fmul(fr(i), fr(i + 2), fr(i + 5));
            break;
          case 7:
            if (rng.chance(0.3))
                b.fdivd(fr(i), fr(i + 1), fr(i + 3));
            else
                b.itof(fr(i), ir(i));
            break;
          case 8: {
            // Data-dependent forward branch over part of the body.
            if (pending_label < 0) {
                pending_label = b.newLabel();
                b.andi(intReg(24), intReg(25), 1 + rng.below(7));
                b.beq(intReg(24), pending_label);
            } else {
                b.sub(ir(i), ir(i + 4), ir(i + 1));
            }
            break;
          }
          case 9:
            if (has_helper && rng.chance(0.5)) {
                b.mov(intReg(23), ir(i));
                b.jsr(intReg(26), helper);
                b.add(ir(i), ir(i), intReg(24));
            } else {
                b.xori(ir(i), ir(i + 2), 0x55);
            }
            break;
        }
    }
    if (pending_label >= 0)
        b.bind(pending_label);

    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    return b.build();
}

struct FuzzRef
{
    std::uint64_t steps;
    std::uint64_t hash;
};

FuzzRef
reference(const Program &prog)
{
    Emulator emu(prog);
    while (!emu.fetchBlocked()) {
        emu.stepArch();
        if (emu.stepsExecuted() > 2000000)
            ADD_FAILURE() << "fuzz program did not terminate";
    }
    return {emu.stepsExecuted(), emu.stateHash()};
}

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzEquivalence, AllConfigsCommitTheArchitecturalStream)
{
    const Program prog = randomProgram(GetParam());
    const FuzzRef ref = reference(prog);
    ASSERT_GT(ref.steps, 500u);

    struct Cfg
    {
        int width, dq, regs;
        ExceptionModel model;
        CacheKind cache;
        bool split;
    };
    const Cfg cfgs[] = {
        {4, 32, 64, ExceptionModel::Precise, CacheKind::LockupFree,
         false},
        {8, 64, 128, ExceptionModel::Imprecise, CacheKind::LockupFree,
         false},
        {4, 16, 40, ExceptionModel::Imprecise, CacheKind::Lockup,
         false},
        {8, 32, 512, ExceptionModel::Precise, CacheKind::Perfect,
         true},
    };
    for (const Cfg &c : cfgs) {
        CoreConfig cfg;
        cfg.issueWidth = c.width;
        cfg.dqSize = c.dq;
        cfg.numPhysRegs = c.regs;
        cfg.exceptionModel = c.model;
        cfg.cacheKind = c.cache;
        cfg.splitDispatchQueues = c.split;
        cfg.auditInterval = 509;
        Processor proc(cfg, prog);
        proc.run();
        EXPECT_EQ(proc.stats().committed, ref.steps)
            << "width=" << c.width << " regs=" << c.regs;
        EXPECT_EQ(proc.emulator().stateHash(), ref.hash)
            << "width=" << c.width << " regs=" << c.regs;
        EXPECT_EQ(proc.windowSize(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{25}));

} // namespace
} // namespace drsim
