/**
 * @file
 * Unit tests for the architectural emulator: per-opcode semantics,
 * control flow, and the checkpoint/rollback machinery used for
 * wrong-path execution.
 */

#include <bit>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/builder.hh"
#include "workloads/emulator.hh"

namespace drsim {
namespace {

/** Run a straight-line program to its halt, architecturally. */
void
runToHalt(Emulator &emu, std::uint64_t max_steps = 100000)
{
    while (!emu.fetchBlocked()) {
        emu.stepArch();
        ASSERT_LT(emu.stepsExecuted(), max_steps) << "runaway program";
    }
}

TEST(Emulator, IntegerAluSemantics)
{
    ProgramBuilder b("alu");
    b.li(intReg(1), 6);
    b.li(intReg(2), 10);
    b.add(intReg(3), intReg(1), intReg(2));   // 16
    b.sub(intReg(4), intReg(1), intReg(2));   // -4
    b.and_(intReg(5), intReg(1), intReg(2));  // 2
    b.or_(intReg(6), intReg(1), intReg(2));   // 14
    b.xor_(intReg(7), intReg(1), intReg(2));  // 12
    b.slli(intReg(8), intReg(1), 4);          // 96
    b.srli(intReg(9), intReg(2), 1);          // 5
    b.cmplt(intReg(10), intReg(1), intReg(2)); // 1
    b.cmple(intReg(11), intReg(2), intReg(2)); // 1
    b.cmpeq(intReg(12), intReg(1), intReg(2)); // 0
    b.mul(intReg(13), intReg(1), intReg(2));  // 60
    b.cmplti(intReg(14), intReg(4), 0);       // -4 < 0 -> 1
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);

    EXPECT_EQ(emu.intRegBits(3), 16u);
    EXPECT_EQ(std::int64_t(emu.intRegBits(4)), -4);
    EXPECT_EQ(emu.intRegBits(5), 2u);
    EXPECT_EQ(emu.intRegBits(6), 14u);
    EXPECT_EQ(emu.intRegBits(7), 12u);
    EXPECT_EQ(emu.intRegBits(8), 96u);
    EXPECT_EQ(emu.intRegBits(9), 5u);
    EXPECT_EQ(emu.intRegBits(10), 1u);
    EXPECT_EQ(emu.intRegBits(11), 1u);
    EXPECT_EQ(emu.intRegBits(12), 0u);
    EXPECT_EQ(emu.intRegBits(13), 60u);
    EXPECT_EQ(emu.intRegBits(14), 1u);
}

TEST(Emulator, ZeroRegisterReadsZeroAndDropsWrites)
{
    ProgramBuilder b("zero");
    b.li(intReg(kZeroReg), 99);             // write discarded
    b.add(intReg(1), intReg(kZeroReg), intReg(kZeroReg));
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(1), 0u);
}

TEST(Emulator, FloatingPointSemantics)
{
    ProgramBuilder b("fp");
    const Addr c = b.allocWords(2);
    b.initDouble(c, 2.0);
    b.initDouble(c + 8, 8.0);
    b.li(intReg(1), std::int64_t(c));
    b.ldt(fpReg(1), intReg(1), 0);           // 2.0
    b.ldt(fpReg(2), intReg(1), 8);           // 8.0
    b.fadd(fpReg(3), fpReg(1), fpReg(2));    // 10
    b.fsub(fpReg(4), fpReg(2), fpReg(1));    // 6
    b.fmul(fpReg(5), fpReg(1), fpReg(2));    // 16
    b.fdivd(fpReg(6), fpReg(2), fpReg(1));   // 4
    b.fsqrt(fpReg(7), fpReg(2));             // ~2.828
    b.fcmplt(fpReg(8), fpReg(1), fpReg(2));  // 1.0
    b.itof(fpReg(9), intReg(1));
    b.ftoi(intReg(2), fpReg(2));             // 8
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);

    EXPECT_DOUBLE_EQ(emu.fpRegValue(3), 10.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(4), 6.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(5), 16.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(6), 4.0);
    EXPECT_NEAR(emu.fpRegValue(7), 2.8284271, 1e-6);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(8), 1.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(9), double(c));
    EXPECT_EQ(emu.intRegBits(2), 8u);
}

TEST(Emulator, GuardedArithmeticNeverTraps)
{
    // Arithmetic exceptions are not modeled (paper Section 2): divide
    // by zero and sqrt of a negative produce 0 instead of trapping.
    ProgramBuilder b("guard");
    b.li(intReg(1), -4);
    b.itof(fpReg(1), intReg(1));             // -4.0
    b.fdivd(fpReg(2), fpReg(1), fpReg(31));  // /0 -> 0
    b.fsqrt(fpReg(3), fpReg(1));             // sqrt(-4) -> 0
    b.fdivs(fpReg(4), fpReg(1), fpReg(31));  // /0 -> 0
    b.ftoi(intReg(2), fpReg(2));
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(2), 0.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(3), 0.0);
    EXPECT_DOUBLE_EQ(emu.fpRegValue(4), 0.0);
}

TEST(Emulator, LoadsAndStores)
{
    ProgramBuilder b("mem");
    const Addr buf = b.allocWords(4);
    b.initWord(buf, 111);
    b.li(intReg(1), std::int64_t(buf));
    b.ldq(intReg(2), intReg(1), 0);          // 111
    b.addi(intReg(3), intReg(2), 1);
    b.stq(intReg(3), intReg(1), 8);          // buf[1] = 112
    b.ldq(intReg(4), intReg(1), 8);          // 112
    b.ldq(intReg(5), intReg(1), 24);         // uninitialized -> 0
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(2), 111u);
    EXPECT_EQ(emu.intRegBits(4), 112u);
    EXPECT_EQ(emu.intRegBits(5), 0u);
    EXPECT_EQ(emu.memWord(buf + 8), 112u);
}

TEST(Emulator, LoopExecutesExactTripCount)
{
    ProgramBuilder b("loop");
    b.li(intReg(1), 10);
    b.li(intReg(2), 0);
    const auto top = b.here();
    b.addi(intReg(2), intReg(2), 3);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(2), 30u);
    // 2 setup + 10 iterations x 3 + halt.
    EXPECT_EQ(emu.stepsExecuted(), 33u);
}

TEST(Emulator, JsrRetRoundTrip)
{
    ProgramBuilder b("call");
    const auto fn = b.newLabel();
    const auto after = b.newLabel();
    b.li(intReg(1), 5);
    b.jsr(intReg(26), fn);
    b.addi(intReg(3), intReg(2), 100);       // executes after return
    b.br(after);
    b.bind(fn);
    b.addi(intReg(2), intReg(1), 10);        // 15
    b.ret(intReg(26));
    b.bind(after);
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(2), 15u);
    EXPECT_EQ(emu.intRegBits(3), 115u);
}

TEST(Emulator, StepReportsBranchInfo)
{
    ProgramBuilder b("brinfo");
    const auto target = b.newLabel();
    b.li(intReg(1), 0);
    b.beq(intReg(1), target);                // taken
    b.li(intReg(2), 1);                      // skipped
    b.bind(target);
    b.halt();
    const Program p = b.build();
    Emulator emu(p);

    emu.stepArch(); // li
    const Addr branch_pc = emu.pc();
    const StepInfo info = emu.stepArch();
    EXPECT_TRUE(info.inst->isCondBranch());
    EXPECT_EQ(info.pc, branch_pc);
    EXPECT_TRUE(info.actualTaken);
    EXPECT_NE(info.actualNextPc, branch_pc + 4);
    EXPECT_TRUE(p.instAt(p.locOf(info.actualNextPc)).isHalt());
}

TEST(Emulator, WrongPathThenRollback)
{
    ProgramBuilder b("wrongpath");
    const auto target = b.newLabel();
    const Addr buf = b.allocWords(2);
    b.initWord(buf, 7);
    b.li(intReg(1), 0);
    b.li(intReg(9), std::int64_t(buf));
    b.beq(intReg(1), target);                // actually taken
    // Wrong path: clobber registers and memory.
    b.li(intReg(2), 99);
    b.stq(intReg(2), intReg(9), 0);
    b.bind(target);
    b.li(intReg(3), 1);
    b.halt();
    const Program p = b.build();
    Emulator emu(p);

    emu.stepArch(); // li r1
    emu.stepArch(); // li r9
    const EmuCheckpoint cp = emu.takeCheckpoint();
    const StepInfo branch = emu.step(false); // follow NOT-taken (wrong)
    EXPECT_TRUE(branch.actualTaken);

    // Execute the wrong path.
    emu.stepArch(); // li r2, 99
    emu.stepArch(); // stq
    EXPECT_EQ(emu.intRegBits(2), 99u);
    EXPECT_EQ(emu.memWord(buf), 99u);

    // Recover: state must be exactly as before the branch.
    emu.rollbackTo(cp, branch.actualNextPc);
    emu.releaseCheckpoint(cp);
    EXPECT_EQ(emu.intRegBits(2), 0u);
    EXPECT_EQ(emu.memWord(buf), 7u);

    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(3), 1u);
}

TEST(Emulator, NestedCheckpointsRollbackInOrder)
{
    ProgramBuilder b("nested");
    b.li(intReg(1), 1);
    b.li(intReg(1), 2);
    b.li(intReg(1), 3);
    b.halt();
    const Program p = b.build();
    Emulator emu(p);
    const Addr pc0 = emu.pc();

    const EmuCheckpoint c1 = emu.takeCheckpoint();
    emu.stepArch();                          // r1 = 1
    const EmuCheckpoint c2 = emu.takeCheckpoint();
    emu.stepArch();                          // r1 = 2
    EXPECT_EQ(emu.intRegBits(1), 2u);

    // Roll back the younger first, then the older.
    emu.rollbackTo(c2, pc0 + 4);
    emu.releaseCheckpoint(c2);
    EXPECT_EQ(emu.intRegBits(1), 1u);
    emu.rollbackTo(c1, pc0);
    emu.releaseCheckpoint(c1);
    EXPECT_EQ(emu.intRegBits(1), 0u);
    EXPECT_EQ(emu.pc(), pc0);
}

TEST(Emulator, UndoLogPrunedWhenCheckpointsRelease)
{
    ProgramBuilder b("prune");
    for (int i = 0; i < 50; ++i)
        b.li(intReg(1), i);
    b.halt();
    Emulator emu(b.build());

    // With no checkpoints, no undo state is retained at all.
    for (int i = 0; i < 10; ++i)
        emu.stepArch();
    EXPECT_EQ(emu.undoLogSize(), 0u);

    const EmuCheckpoint cp = emu.takeCheckpoint();
    for (int i = 0; i < 10; ++i)
        emu.stepArch();
    EXPECT_GT(emu.undoLogSize(), 0u);
    emu.releaseCheckpoint(cp);
    EXPECT_EQ(emu.undoLogSize(), 0u);
    EXPECT_EQ(emu.liveCheckpoints(), 0u);
}

TEST(Emulator, UndoLogPrunesToOldestLiveCheckpoint)
{
    ProgramBuilder b("prune2");
    for (int i = 0; i < 50; ++i)
        b.li(intReg(1), i);
    b.halt();
    Emulator emu(b.build());

    const EmuCheckpoint c1 = emu.takeCheckpoint();
    for (int i = 0; i < 5; ++i)
        emu.stepArch();
    const EmuCheckpoint c2 = emu.takeCheckpoint();
    for (int i = 0; i < 5; ++i)
        emu.stepArch();
    // Releasing the older checkpoint prunes entries before the newer.
    emu.releaseCheckpoint(c1);
    EXPECT_EQ(emu.undoLogSize(), 5u);
    emu.releaseCheckpoint(c2);
    EXPECT_EQ(emu.undoLogSize(), 0u);
}

TEST(Emulator, FetchBlockedOnGarbageReturn)
{
    ProgramBuilder b("garbage");
    b.li(intReg(1), 0x123456);               // not a code address
    b.ret(intReg(1));
    b.halt();
    Emulator emu(b.build());
    emu.stepArch();
    emu.stepArch();
    EXPECT_TRUE(emu.fetchBlocked());
    EXPECT_EQ(emu.peek(), nullptr);
}

TEST(Emulator, HaltBlocksFetch)
{
    ProgramBuilder b("halt");
    b.halt();
    Emulator emu(b.build());
    const StepInfo info = emu.stepArch();
    EXPECT_TRUE(info.isHalt);
    EXPECT_TRUE(emu.fetchBlocked());
}

TEST(Emulator, StateHashDetectsDifferences)
{
    ProgramBuilder b1("h1");
    b1.li(intReg(1), 1);
    b1.halt();
    ProgramBuilder b2("h2");
    b2.li(intReg(1), 2);
    b2.halt();

    Emulator e1(b1.build());
    Emulator e2(b2.build());
    runToHalt(e1);
    runToHalt(e2);
    EXPECT_NE(e1.stateHash(), e2.stateHash());
}

TEST(Emulator, WrongPathLoadOfWildAddressIsSafe)
{
    ProgramBuilder b("wild");
    b.li(intReg(1), std::int64_t(0x7fff'ffff'fff0ull));
    b.ldq(intReg(2), intReg(1), 0);          // wrapped, reads 0
    b.halt();
    Emulator emu(b.build());
    runToHalt(emu);
    EXPECT_EQ(emu.intRegBits(2), 0u);
}

} // namespace
} // namespace drsim
