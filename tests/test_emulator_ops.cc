/**
 * @file
 * Property tests of the emulator's operator semantics: each ALU/FP
 * opcode is swept over pseudo-random operands and checked against the
 * host's arithmetic.
 */

#include <bit>
#include <cmath>
#include <gtest/gtest.h>

#include "common/random.hh"
#include "workloads/builder.hh"
#include "workloads/emulator.hh"

namespace drsim {
namespace {

/** Run `op r3 = r1 op r2` once with the given operand bits. */
std::uint64_t
evalInt(Opcode op, std::uint64_t a, std::uint64_t b)
{
    ProgramBuilder bld("evalint");
    const Addr buf = bld.allocWords(2);
    bld.initWord(buf, a);
    bld.initWord(buf + 8, b);
    bld.li(intReg(10), std::int64_t(buf));
    bld.ldq(intReg(1), intReg(10), 0);
    bld.ldq(intReg(2), intReg(10), 8);
    switch (op) {
      case Opcode::Add: bld.add(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Sub: bld.sub(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::And: bld.and_(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Or: bld.or_(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Xor: bld.xor_(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Sll: bld.sll(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Srl: bld.srl(intReg(3), intReg(1), intReg(2)); break;
      case Opcode::Cmplt:
        bld.cmplt(intReg(3), intReg(1), intReg(2));
        break;
      case Opcode::Cmple:
        bld.cmple(intReg(3), intReg(1), intReg(2));
        break;
      case Opcode::Cmpeq:
        bld.cmpeq(intReg(3), intReg(1), intReg(2));
        break;
      case Opcode::Mul: bld.mul(intReg(3), intReg(1), intReg(2)); break;
      default:
        ADD_FAILURE() << "unsupported int opcode";
    }
    bld.halt();
    Emulator emu(bld.build());
    while (!emu.fetchBlocked())
        emu.stepArch();
    return emu.intRegBits(3);
}

std::uint64_t
hostInt(Opcode op, std::uint64_t a, std::uint64_t b)
{
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Sll: return a << (b & 63);
      case Opcode::Srl: return a >> (b & 63);
      case Opcode::Cmplt:
        return std::uint64_t(std::int64_t(a) < std::int64_t(b));
      case Opcode::Cmple:
        return std::uint64_t(std::int64_t(a) <= std::int64_t(b));
      case Opcode::Cmpeq: return std::uint64_t(a == b);
      case Opcode::Mul: return a * b;
      default: return 0;
    }
}

class IntOpSweep : public ::testing::TestWithParam<Opcode>
{};

TEST_P(IntOpSweep, MatchesHostSemantics)
{
    const Opcode op = GetParam();
    Rng rng(0xb0b + int(op));
    // Edge operands plus random sweeps.
    const std::uint64_t edges[] = {0, 1, ~0ull, 0x8000000000000000ull,
                                   0x7fffffffffffffffull, 63, 64};
    for (const std::uint64_t a : edges)
        for (const std::uint64_t b : edges)
            EXPECT_EQ(evalInt(op, a, b), hostInt(op, a, b))
                << "a=" << a << " b=" << b;
    for (int i = 0; i < 12; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        EXPECT_EQ(evalInt(op, a, b), hostInt(op, a, b))
            << "a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, IntOpSweep,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::And,
                      Opcode::Or, Opcode::Xor, Opcode::Sll,
                      Opcode::Srl, Opcode::Cmplt, Opcode::Cmple,
                      Opcode::Cmpeq, Opcode::Mul),
    [](const ::testing::TestParamInfo<Opcode> &pinfo) {
        return std::string(opTraits(pinfo.param).name);
    });

double
evalFp(Opcode op, double a, double b)
{
    ProgramBuilder bld("evalfp");
    const Addr buf = bld.allocWords(2);
    bld.initDouble(buf, a);
    bld.initDouble(buf + 8, b);
    bld.li(intReg(10), std::int64_t(buf));
    bld.ldt(fpReg(1), intReg(10), 0);
    bld.ldt(fpReg(2), intReg(10), 8);
    switch (op) {
      case Opcode::Fadd: bld.fadd(fpReg(3), fpReg(1), fpReg(2)); break;
      case Opcode::Fsub: bld.fsub(fpReg(3), fpReg(1), fpReg(2)); break;
      case Opcode::Fmul: bld.fmul(fpReg(3), fpReg(1), fpReg(2)); break;
      case Opcode::Fdivd:
        bld.fdivd(fpReg(3), fpReg(1), fpReg(2));
        break;
      case Opcode::Fcmplt:
        bld.fcmplt(fpReg(3), fpReg(1), fpReg(2));
        break;
      case Opcode::Fsqrt: bld.fsqrt(fpReg(3), fpReg(1)); break;
      default:
        ADD_FAILURE() << "unsupported fp opcode";
    }
    bld.halt();
    Emulator emu(bld.build());
    while (!emu.fetchBlocked())
        emu.stepArch();
    return emu.fpRegValue(3);
}

double
hostFp(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::Fadd: return a + b;
      case Opcode::Fsub: return a - b;
      case Opcode::Fmul: return a * b;
      case Opcode::Fdivd: return b == 0.0 ? 0.0 : a / b;
      case Opcode::Fcmplt: return a < b ? 1.0 : 0.0;
      case Opcode::Fsqrt: return a < 0.0 ? 0.0 : std::sqrt(a);
      default: return 0.0;
    }
}

class FpOpSweep : public ::testing::TestWithParam<Opcode>
{};

TEST_P(FpOpSweep, MatchesHostSemantics)
{
    const Opcode op = GetParam();
    Rng rng(0xf0f + int(op));
    const double edges[] = {0.0, 1.0, -1.0, 0.5, -1e300, 1e300,
                            3.25e-5};
    for (const double a : edges) {
        for (const double b : edges) {
            const double got = evalFp(op, a, b);
            const double want = hostFp(op, a, b);
            EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                      std::bit_cast<std::uint64_t>(want))
                << "a=" << a << " b=" << b;
        }
    }
    for (int i = 0; i < 10; ++i) {
        const double a = (rng.uniform() - 0.5) * 2.0e6;
        const double b = (rng.uniform() - 0.5) * 2.0e6;
        EXPECT_DOUBLE_EQ(evalFp(op, a, b), hostFp(op, a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFpOps, FpOpSweep,
    ::testing::Values(Opcode::Fadd, Opcode::Fsub, Opcode::Fmul,
                      Opcode::Fdivd, Opcode::Fcmplt, Opcode::Fsqrt),
    [](const ::testing::TestParamInfo<Opcode> &pinfo) {
        return std::string(opTraits(pinfo.param).name);
    });

TEST(ImmediateForms, MatchRegisterForms)
{
    Rng rng(0x111);
    for (int i = 0; i < 10; ++i) {
        const std::int64_t a = std::int64_t(rng.next());
        const std::int64_t imm = std::int64_t(rng.below(4096)) - 2048;
        ProgramBuilder b("immediate");
        b.li(intReg(1), a);
        b.li(intReg(2), imm);
        b.addi(intReg(3), intReg(1), imm);
        b.add(intReg(4), intReg(1), intReg(2));
        b.subi(intReg(5), intReg(1), imm);
        b.sub(intReg(6), intReg(1), intReg(2));
        b.andi(intReg(7), intReg(1), imm);
        b.and_(intReg(8), intReg(1), intReg(2));
        b.halt();
        Emulator emu(b.build());
        while (!emu.fetchBlocked())
            emu.stepArch();
        EXPECT_EQ(emu.intRegBits(3), emu.intRegBits(4));
        EXPECT_EQ(emu.intRegBits(5), emu.intRegBits(6));
        EXPECT_EQ(emu.intRegBits(7), emu.intRegBits(8));
    }
}

TEST(ConversionRoundTrip, ItofFtoiPreservesSmallIntegers)
{
    Rng rng(0x222);
    for (int i = 0; i < 20; ++i) {
        const std::int64_t v =
            std::int64_t(rng.below(1u << 30)) - (1 << 29);
        ProgramBuilder b("conv");
        b.li(intReg(1), v);
        b.itof(fpReg(1), intReg(1));
        b.ftoi(intReg(2), fpReg(1));
        b.halt();
        Emulator emu(b.build());
        while (!emu.fetchBlocked())
            emu.stepArch();
        EXPECT_EQ(std::int64_t(emu.intRegBits(2)), v);
    }
}

} // namespace
} // namespace drsim
