/**
 * @file
 * Unit tests for the branch-predictor backends (DESIGN.md §5k): the
 * McFarling combined predictor's speculative-history-update-and-repair
 * discipline, plus the factory and the properties every backend must
 * share — learning biased branches, opaque-history round-trips, and
 * checkpointable saveState()/restoreState().
 */

#include <gtest/gtest.h>

#include "bpred/mcfarling.hh"
#include "bpred/predictor.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace drsim {
namespace {

constexpr Addr kPc = 0x1000;

/** Architecture-style harness: predict+update history at "insert",
 *  train counters at "issue", repair on mispredict. */
bool
predictTrainRepair(CombinedPredictor &p, Addr pc, bool actual)
{
    const std::uint32_t before = p.history();
    const bool pred = p.predictAndUpdateHistory(pc);
    p.update(pc, before, actual);
    if (pred != actual)
        p.repairHistory(before, actual);
    return pred == actual;
}

TEST(Predictor, LearnsAlwaysTaken)
{
    CombinedPredictor p;
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += predictTrainRepair(p, kPc, true);
    // After warmup, every prediction is right.
    EXPECT_GE(correct, 97);
    EXPECT_TRUE(p.predict(kPc));
}

TEST(Predictor, LearnsAlwaysNotTaken)
{
    CombinedPredictor p;
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, false);
    EXPECT_FALSE(p.predict(kPc));
}

TEST(Predictor, BimodalHysteresis)
{
    CombinedPredictor p;
    for (int i = 0; i < 16; ++i)
        predictTrainRepair(p, kPc, true);
    // One not-taken blip must not flip a saturated taken counter.
    predictTrainRepair(p, kPc, false);
    EXPECT_TRUE(p.predict(kPc));
}

TEST(Predictor, GlobalHistoryLearnsAlternation)
{
    // A strict alternation is invisible to the bimodal predictor but
    // trivial for the gshare component; the selector must route to it.
    CombinedPredictor p;
    int correct_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        const bool ok = predictTrainRepair(p, kPc, actual);
        if (i >= 200)
            correct_late += ok;
    }
    EXPECT_GE(correct_late, 195);
}

TEST(Predictor, GlobalHistoryLearnsShortPattern)
{
    // Period-4 pattern TTTN, as in loop nests of 4.
    CombinedPredictor p;
    int correct_late = 0;
    for (int i = 0; i < 800; ++i) {
        const bool actual = (i % 4) != 3;
        const bool ok = predictTrainRepair(p, kPc, actual);
        if (i >= 400)
            correct_late += ok;
    }
    EXPECT_GE(correct_late, 390);
}

TEST(Predictor, RandomBranchesMispredictOften)
{
    CombinedPredictor p;
    Rng rng(17);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += !predictTrainRepair(p, kPc, rng.chance(0.5));
    // An unpredictable branch should hover near 50% mispredicts.
    EXPECT_GT(wrong, n / 3);
}

TEST(Predictor, BiasedRandomMispredictsNearMinority)
{
    CombinedPredictor p;
    Rng rng(23);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += !predictTrainRepair(p, kPc, rng.chance(0.2));
    const double rate = double(wrong) / n;
    EXPECT_GT(rate, 0.10);
    EXPECT_LT(rate, 0.40);
}

TEST(Predictor, HistoryShiftsOnPredict)
{
    CombinedPredictor p;
    // Train taken so the prediction is 1, then watch it shift in.
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, true);
    const std::uint32_t before = p.history();
    p.predictAndUpdateHistory(kPc);
    EXPECT_EQ(p.history(), ((before << 1) | 1u) &
                               CombinedPredictor::kHistoryMask);
}

TEST(Predictor, RepairRestoresPreBranchHistory)
{
    CombinedPredictor p;
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, true);
    const std::uint32_t before = p.history();
    p.predictAndUpdateHistory(kPc); // speculative: shifts in "taken"
    // Mispredict: actual direction was not-taken.
    p.repairHistory(before, false);
    EXPECT_EQ(p.history(),
              (before << 1) & CombinedPredictor::kHistoryMask);
}

TEST(Predictor, PredictIsStateless)
{
    CombinedPredictor p;
    const std::uint32_t before = p.history();
    (void)p.predict(kPc);
    (void)p.predict(kPc);
    EXPECT_EQ(p.history(), before);
}

TEST(Predictor, DistinctPcsTrainIndependently)
{
    CombinedPredictor p;
    const Addr pc_a = 0x1000;
    const Addr pc_b = 0x2000; // different bimodal index
    for (int i = 0; i < 16; ++i) {
        predictTrainRepair(p, pc_a, true);
        predictTrainRepair(p, pc_b, false);
    }
    EXPECT_TRUE(p.predict(pc_a));
    EXPECT_FALSE(p.predict(pc_b));
}

TEST(Predictor, SelectorPrefersBetterComponent)
{
    // Alternating pattern: gshare wins; after training, a fresh
    // mispredict-free stretch implies the selector routed to gshare.
    CombinedPredictor p;
    for (int i = 0; i < 600; ++i)
        predictTrainRepair(p, kPc, (i % 2) == 0);
    int correct = 0;
    for (int i = 600; i < 700; ++i)
        correct += predictTrainRepair(p, kPc, (i % 2) == 0);
    EXPECT_GE(correct, 98);
}

// ------------------------------------------------- backend interface

/** Same harness as predictTrainRepair, over the opaque interface. */
bool
drive(BranchPredictor &p, Addr pc, bool actual)
{
    const std::uint64_t before = p.history();
    const bool pred = p.predictAndUpdateHistory(pc);
    p.update(pc, before, actual);
    if (pred != actual)
        p.repairHistory(before, actual);
    return pred == actual;
}

TEST(PredictorFactory, BuildsEveryRegisteredBackend)
{
    ASSERT_EQ(predictorSpecs().size(), 4u);
    for (const std::string &spec : predictorSpecs()) {
        EXPECT_TRUE(knownPredictor(spec));
        EXPECT_NE(predictorSpecList().find(spec), std::string::npos);
        const auto p = makeBranchPredictor(spec);
        ASSERT_NE(p, nullptr) << spec;
        EXPECT_EQ(p->name(), spec);
    }
    EXPECT_FALSE(knownPredictor("perceptron"));
    EXPECT_FALSE(knownPredictor(""));
    EXPECT_THROW(makeBranchPredictor("perceptron"), FatalError);
    EXPECT_THROW(makeBranchPredictor(""), FatalError);
}

TEST(PredictorBackends, AllLearnBiasedBranches)
{
    for (const std::string &spec : predictorSpecs()) {
        // Warmup varies by backend (gshare touches a fresh counter
        // for every new history value), so score steady state only.
        const auto p = makeBranchPredictor(spec);
        int correct_late = 0;
        for (int i = 0; i < 200; ++i) {
            const bool ok = drive(*p, kPc, true);
            if (i >= 100)
                correct_late += ok;
        }
        EXPECT_GE(correct_late, 99) << spec;
        EXPECT_TRUE(p->predict(kPc)) << spec;

        const auto q = makeBranchPredictor(spec);
        for (int i = 0; i < 16; ++i)
            drive(*q, 0x2000, false);
        EXPECT_FALSE(q->predict(0x2000)) << spec;
    }
}

TEST(PredictorBackends, HistoryBackendsLearnAlternation)
{
    // Strict alternation is invisible to a per-PC counter but trivial
    // with global history; every history-carrying backend nails it.
    for (const char *spec : {"mcfarling", "gshare", "tage"}) {
        const auto p = makeBranchPredictor(spec);
        int correct_late = 0;
        for (int i = 0; i < 600; ++i) {
            const bool ok = drive(*p, kPc, (i % 2) == 0);
            if (i >= 500)
                correct_late += ok;
        }
        EXPECT_GE(correct_late, 95) << spec;
    }

    // Bimodal has no history register: the token stays 0 and the
    // alternation stays unlearnable.
    const auto bim = makeBranchPredictor("bimodal");
    EXPECT_EQ(bim->history(), 0u);
    bim->shiftHistory(true);
    bim->predictAndUpdateHistory(kPc);
    EXPECT_EQ(bim->history(), 0u);
    int correct_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool ok = drive(*bim, kPc, (i % 2) == 0);
        if (i >= 400)
            correct_late += ok;
    }
    EXPECT_LE(correct_late, 150); // of 200 — no better than chance-ish
}

TEST(PredictorBackends, SaveRestoreRoundTripsEveryBackend)
{
    for (const std::string &spec : predictorSpecs()) {
        // Train over a spread of PCs with a biased-random stream so
        // tables, (tage) tags, and the history register all carry
        // non-trivial state.
        const auto p = makeBranchPredictor(spec);
        Rng train(41);
        for (int i = 0; i < 3000; ++i)
            drive(*p, 0x1000 + Addr(i % 37) * 4, train.chance(0.7));
        const std::vector<std::uint8_t> image = p->saveState();
        EXPECT_FALSE(image.empty()) << spec;

        // A second instance, deliberately diverged, must become an
        // exact clone after restore…
        const auto q = makeBranchPredictor(spec);
        Rng diverge(99);
        for (int i = 0; i < 500; ++i)
            drive(*q, 0x5000 + Addr(i % 11) * 4, diverge.chance(0.5));
        q->restoreState(image);
        EXPECT_EQ(q->history(), p->history()) << spec;
        EXPECT_EQ(q->saveState(), image) << spec;

        // …including identical *future* behavior under a shared
        // stream (the sampling path's warm-state contract).
        Rng a(7), b(7);
        for (int i = 0; i < 500; ++i) {
            const Addr pc = 0x1000 + Addr(i % 53) * 4;
            const bool taken_a = a.chance(0.6);
            const bool taken_b = b.chance(0.6);
            ASSERT_EQ(taken_a, taken_b);
            EXPECT_EQ(p->predict(pc), q->predict(pc)) << spec;
            drive(*p, pc, taken_a);
            drive(*q, pc, taken_b);
        }
        EXPECT_EQ(q->saveState(), p->saveState()) << spec;
    }
}

TEST(PredictorBackends, RestoreRejectsWrongSizedImages)
{
    for (const std::string &spec : predictorSpecs()) {
        const auto p = makeBranchPredictor(spec);
        std::vector<std::uint8_t> image = p->saveState();
        image.pop_back();
        EXPECT_THROW(p->restoreState(image), FatalError) << spec;
        EXPECT_THROW(p->restoreState({}), FatalError) << spec;
    }
    // A bimodal image (no history word) can never restore a gshare.
    const auto bim = makeBranchPredictor("bimodal");
    const auto gsh = makeBranchPredictor("gshare");
    EXPECT_THROW(gsh->restoreState(bim->saveState()), FatalError);
}

} // namespace
} // namespace drsim
