/**
 * @file
 * Unit tests for the McFarling combined predictor, including the
 * paper's speculative-history-update-and-repair discipline.
 */

#include <gtest/gtest.h>

#include "bpred/mcfarling.hh"
#include "common/random.hh"

namespace drsim {
namespace {

constexpr Addr kPc = 0x1000;

/** Architecture-style harness: predict+update history at "insert",
 *  train counters at "issue", repair on mispredict. */
bool
predictTrainRepair(CombinedPredictor &p, Addr pc, bool actual)
{
    const std::uint32_t before = p.history();
    const bool pred = p.predictAndUpdateHistory(pc);
    p.update(pc, before, actual);
    if (pred != actual)
        p.repairHistory(before, actual);
    return pred == actual;
}

TEST(Predictor, LearnsAlwaysTaken)
{
    CombinedPredictor p;
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += predictTrainRepair(p, kPc, true);
    // After warmup, every prediction is right.
    EXPECT_GE(correct, 97);
    EXPECT_TRUE(p.predict(kPc));
}

TEST(Predictor, LearnsAlwaysNotTaken)
{
    CombinedPredictor p;
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, false);
    EXPECT_FALSE(p.predict(kPc));
}

TEST(Predictor, BimodalHysteresis)
{
    CombinedPredictor p;
    for (int i = 0; i < 16; ++i)
        predictTrainRepair(p, kPc, true);
    // One not-taken blip must not flip a saturated taken counter.
    predictTrainRepair(p, kPc, false);
    EXPECT_TRUE(p.predict(kPc));
}

TEST(Predictor, GlobalHistoryLearnsAlternation)
{
    // A strict alternation is invisible to the bimodal predictor but
    // trivial for the gshare component; the selector must route to it.
    CombinedPredictor p;
    int correct_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 2) == 0;
        const bool ok = predictTrainRepair(p, kPc, actual);
        if (i >= 200)
            correct_late += ok;
    }
    EXPECT_GE(correct_late, 195);
}

TEST(Predictor, GlobalHistoryLearnsShortPattern)
{
    // Period-4 pattern TTTN, as in loop nests of 4.
    CombinedPredictor p;
    int correct_late = 0;
    for (int i = 0; i < 800; ++i) {
        const bool actual = (i % 4) != 3;
        const bool ok = predictTrainRepair(p, kPc, actual);
        if (i >= 400)
            correct_late += ok;
    }
    EXPECT_GE(correct_late, 390);
}

TEST(Predictor, RandomBranchesMispredictOften)
{
    CombinedPredictor p;
    Rng rng(17);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += !predictTrainRepair(p, kPc, rng.chance(0.5));
    // An unpredictable branch should hover near 50% mispredicts.
    EXPECT_GT(wrong, n / 3);
}

TEST(Predictor, BiasedRandomMispredictsNearMinority)
{
    CombinedPredictor p;
    Rng rng(23);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += !predictTrainRepair(p, kPc, rng.chance(0.2));
    const double rate = double(wrong) / n;
    EXPECT_GT(rate, 0.10);
    EXPECT_LT(rate, 0.40);
}

TEST(Predictor, HistoryShiftsOnPredict)
{
    CombinedPredictor p;
    // Train taken so the prediction is 1, then watch it shift in.
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, true);
    const std::uint32_t before = p.history();
    p.predictAndUpdateHistory(kPc);
    EXPECT_EQ(p.history(), ((before << 1) | 1u) &
                               CombinedPredictor::kHistoryMask);
}

TEST(Predictor, RepairRestoresPreBranchHistory)
{
    CombinedPredictor p;
    for (int i = 0; i < 8; ++i)
        predictTrainRepair(p, kPc, true);
    const std::uint32_t before = p.history();
    p.predictAndUpdateHistory(kPc); // speculative: shifts in "taken"
    // Mispredict: actual direction was not-taken.
    p.repairHistory(before, false);
    EXPECT_EQ(p.history(),
              (before << 1) & CombinedPredictor::kHistoryMask);
}

TEST(Predictor, PredictIsStateless)
{
    CombinedPredictor p;
    const std::uint32_t before = p.history();
    (void)p.predict(kPc);
    (void)p.predict(kPc);
    EXPECT_EQ(p.history(), before);
}

TEST(Predictor, DistinctPcsTrainIndependently)
{
    CombinedPredictor p;
    const Addr pc_a = 0x1000;
    const Addr pc_b = 0x2000; // different bimodal index
    for (int i = 0; i < 16; ++i) {
        predictTrainRepair(p, pc_a, true);
        predictTrainRepair(p, pc_b, false);
    }
    EXPECT_TRUE(p.predict(pc_a));
    EXPECT_FALSE(p.predict(pc_b));
}

TEST(Predictor, SelectorPrefersBetterComponent)
{
    // Alternating pattern: gshare wins; after training, a fresh
    // mispredict-free stretch implies the selector routed to gshare.
    CombinedPredictor p;
    for (int i = 0; i < 600; ++i)
        predictTrainRepair(p, kPc, (i % 2) == 0);
    int correct = 0;
    for (int i = 600; i < 700; ++i)
        correct += predictTrainRepair(p, kPc, (i % 2) == 0);
    EXPECT_GE(correct, 98);
}

} // namespace
} // namespace drsim
