/**
 * @file
 * Bit-equality of the event-driven wakeup scheduler against the
 * retained scan-based reference path.
 *
 * The event-driven core (per-physical-register wakeup lists, ready
 * queues, stall skip-ahead) is purely a performance rework: for any
 * configuration it must produce *identical* statistics to the
 * exhaustive per-cycle scan it replaced — not merely the same IPC,
 * but every counter, every stall-cause bucket, and every histogram
 * bin.  These tests enforce that across the full Table-1 suite under
 * both exception models, plus a grid of configurations chosen to
 * exercise the scheduler's corner cases (split queues, in-order
 * branches, blocking caches, finite write buffers, register and
 * queue starvation, instruction-cache misses).
 */

#include <gtest/gtest.h>

#include "bpred/predictor.hh"
#include "core/processor.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

void
expectHistogramEq(const Histogram &a, const Histogram &b,
                  const std::string &label)
{
    EXPECT_EQ(a.totalSamples(), b.totalSamples()) << label;
    ASSERT_EQ(a.counts().size(), b.counts().size()) << label;
    for (std::size_t i = 0; i < a.counts().size(); ++i)
        EXPECT_EQ(a.counts()[i], b.counts()[i]) << label << "[" << i
                                                << "]";
}

void
expectProcStatsEq(const ProcStats &a, const ProcStats &b,
                  const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.committed, b.committed) << label;
    EXPECT_EQ(a.committedLoads, b.committedLoads) << label;
    EXPECT_EQ(a.committedStores, b.committedStores) << label;
    EXPECT_EQ(a.committedCondBranches, b.committedCondBranches)
        << label;
    EXPECT_EQ(a.executed, b.executed) << label;
    EXPECT_EQ(a.executedLoads, b.executedLoads) << label;
    EXPECT_EQ(a.executedStores, b.executedStores) << label;
    EXPECT_EQ(a.executedCondBranches, b.executedCondBranches) << label;
    EXPECT_EQ(a.mispredictedBranches, b.mispredictedBranches) << label;
    EXPECT_EQ(a.recoveries, b.recoveries) << label;
    EXPECT_EQ(a.squashedInsts, b.squashedInsts) << label;
    EXPECT_EQ(a.forwardedLoads, b.forwardedLoads) << label;
    EXPECT_EQ(a.insertStallNoRegCycles, b.insertStallNoRegCycles)
        << label;
    EXPECT_EQ(a.insertStallDqFullCycles, b.insertStallDqFullCycles)
        << label;
    EXPECT_EQ(a.noFreeRegCycles, b.noFreeRegCycles) << label;
    EXPECT_EQ(a.fetchBlockedCycles, b.fetchBlockedCycles) << label;
    EXPECT_EQ(a.writeBufferStallCycles, b.writeBufferStallCycles)
        << label;
    for (int c = 0; c < kNumCycleCauses; ++c) {
        EXPECT_EQ(a.causeCycles[c], b.causeCycles[c])
            << label << " cause " << cycleCauseName(CycleCause(c));
    }
    expectHistogramEq(a.dqDepth, b.dqDepth, label + " dqDepth");
    expectHistogramEq(a.windowDepth, b.windowDepth,
                      label + " windowDepth");
    expectHistogramEq(a.storeQueueDepth, b.storeQueueDepth,
                      label + " storeQueueDepth");
    for (int c = 0; c < kNumRegClasses; ++c) {
        for (int k = 0; k < 4; ++k) {
            expectHistogramEq(a.live[c][k], b.live[c][k],
                              label + " live[" + std::to_string(c) +
                                  "][" + std::to_string(k) + "]");
        }
    }
}

void
expectResultsEq(const SimResult &a, const SimResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.stopReason, b.stopReason) << label;
    expectProcStatsEq(a.proc, b.proc, label);
    EXPECT_EQ(a.dcache.loads, b.dcache.loads) << label;
    EXPECT_EQ(a.dcache.loadMisses, b.dcache.loadMisses) << label;
    EXPECT_EQ(a.dcache.loadMerges, b.dcache.loadMerges) << label;
    EXPECT_EQ(a.dcache.storesBuffered, b.dcache.storesBuffered)
        << label;
    EXPECT_EQ(a.dcache.storeHits, b.dcache.storeHits) << label;
    EXPECT_EQ(a.dcache.fetchesCancelled, b.dcache.fetchesCancelled)
        << label;
    EXPECT_EQ(a.dcache.mshrRejections, b.dcache.mshrRejections)
        << label;
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses) << label;
    EXPECT_EQ(a.icacheMisses, b.icacheMisses) << label;
    EXPECT_EQ(a.loadMissRate, b.loadMissRate) << label;
    for (int c = 0; c < kNumRegClasses; ++c) {
        expectHistogramEq(a.lifetime[c], b.lifetime[c],
                          label + " lifetime[" + std::to_string(c) +
                              "]");
    }
}

/** Run @p cfg under both schedulers and require identical results. */
void
expectSchedulersAgree(CoreConfig cfg, const Workload &w,
                      const std::string &label)
{
    CoreConfig event_cfg = cfg;
    event_cfg.scanScheduler = false;
    CoreConfig scan_cfg = cfg;
    scan_cfg.scanScheduler = true;
    const SimResult ev = simulate(event_cfg, w);
    const SimResult sc = simulate(scan_cfg, w);
    EXPECT_GT(ev.proc.committed, 0u) << label;
    expectResultsEq(sc, ev, label);
}

/** The paper's 4-wide machine at a register count in the knee of the
 *  Figure-7 curves (enough stalls and enough issue traffic to
 *  exercise both the wakeup lists and the skip-ahead). */
CoreConfig
paperCfg()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 96;
    return cfg;
}

TEST(EventCoreEquality, AllWorkloadsBothExceptionModels)
{
    const auto suite = buildSpec92Suite(3);
    for (const Workload &w : suite) {
        for (const ExceptionModel model :
             {ExceptionModel::Precise, ExceptionModel::Imprecise}) {
            CoreConfig cfg = paperCfg();
            cfg.exceptionModel = model;
            expectSchedulersAgree(cfg, w,
                                  w.spec->name + "/" +
                                      exceptionModelName(model));
        }
    }
}

TEST(EventCoreEquality, SplitDispatchQueues)
{
    const Workload w = buildWorkload("espresso", 4);
    CoreConfig cfg = paperCfg();
    cfg.splitDispatchQueues = true;
    expectSchedulersAgree(cfg, w, "split-queues");
}

TEST(EventCoreEquality, InOrderBranches)
{
    const Workload w = buildWorkload("gcc1", 4);
    CoreConfig cfg = paperCfg();
    cfg.inOrderBranches = true;
    expectSchedulersAgree(cfg, w, "inorder-branches");
}

TEST(EventCoreEquality, BlockingCache)
{
    const Workload w = buildWorkload("compress", 4);
    CoreConfig cfg = paperCfg();
    cfg.cacheKind = CacheKind::Lockup;
    expectSchedulersAgree(cfg, w, "lockup-cache");
}

TEST(EventCoreEquality, BoundedMshrsAndWriteBuffer)
{
    const Workload w = buildWorkload("su2cor", 4);
    CoreConfig cfg = paperCfg();
    cfg.dcache.maxOutstandingMisses = 2;
    cfg.dcache.writeBufferEntries = 4;
    cfg.dcache.writeBufferDrainCycles = 8;
    expectSchedulersAgree(cfg, w, "mshr+write-buffer");
}

TEST(EventCoreEquality, StarvedRegistersAndQueue)
{
    // Tiny register files and dispatch queue: the machine lives in
    // insert-stall territory, where skip-ahead fires constantly and
    // register frees gate everything.
    const Workload w = buildWorkload("tomcatv", 3);
    CoreConfig cfg = paperCfg();
    cfg.numPhysRegs = 40;
    cfg.dqSize = 8;
    expectSchedulersAgree(cfg, w, "starved");
    cfg.exceptionModel = ExceptionModel::Imprecise;
    expectSchedulersAgree(cfg, w, "starved/imprecise");
}

TEST(EventCoreEquality, EightWideWithImperfectICache)
{
    const Workload w = buildWorkload("doduc", 3);
    CoreConfig cfg;
    cfg.issueWidth = 8;
    cfg.dqSize = 64;
    cfg.numPhysRegs = 96;
    cfg.perfectICache = false;
    cfg.icache.sizeBytes = 2 * 1024; // force real I-cache misses
    expectSchedulersAgree(cfg, w, "8-wide/small-icache");
}

TEST(EventCoreEquality, TwoWideMachine)
{
    // The narrowest supported machine: width/4-derived issue limits
    // floor at 1 (fp-divide, control), so an fp-heavy workload with
    // branches must still retire instructions — and both schedulers
    // must agree about every cycle of it.
    const Workload w = buildWorkload("doduc", 3);
    CoreConfig cfg;
    cfg.issueWidth = 2;
    cfg.dqSize = 16;
    cfg.numPhysRegs = 64;
    expectSchedulersAgree(cfg, w, "2-wide");
}

TEST(EventCoreEquality, EveryPredictorBackend)
{
    // The wakeup rework must be invariant to which predictor drives
    // speculation: each backend changes *what* is fetched down the
    // wrong path, never how the two schedulers see it.
    const Workload w = buildWorkload("gcc1", 3);
    for (const std::string &spec : predictorSpecs()) {
        CoreConfig cfg = paperCfg();
        cfg.predictor = spec;
        expectSchedulersAgree(cfg, w, "bpred/" + spec);
    }
}

TEST(EventCoreEquality, ResultBusArbitration)
{
    // Writeback-bus arbitration defers completions, which reshapes
    // the event ring; the scan path must replay the same grants.
    // 0 = unlimited (the untouched fast path).
    const Workload w = buildWorkload("espresso", 3);
    for (const int buses : {1, 2, 0}) {
        CoreConfig cfg = paperCfg();
        cfg.resultBuses = buses;
        expectSchedulersAgree(cfg, w,
                              "buses=" + std::to_string(buses));
    }

    // The squeeze: one bus, starved registers, a weaker predictor —
    // deferred completions, register frees, and squashes interleave.
    CoreConfig cfg = paperCfg();
    cfg.resultBuses = 1;
    cfg.numPhysRegs = 48;
    cfg.predictor = "bimodal";
    expectSchedulersAgree(cfg, w, "bus1/starved/bimodal");
}

TEST(EventCoreEquality, SkipAheadIsPureOptimization)
{
    // Skip-ahead must be invisible in the statistics: the event
    // scheduler with and without it agrees bin-for-bin, in a
    // configuration with long stalls to actually skip.
    const Workload w = buildWorkload("compress", 4);
    CoreConfig on = paperCfg();
    on.numPhysRegs = 48;
    on.cacheKind = CacheKind::Lockup;
    on.stallSkipAhead = true;
    CoreConfig off = on;
    off.stallSkipAhead = false;
    const SimResult r_on = simulate(on, w);
    const SimResult r_off = simulate(off, w);
    EXPECT_GT(r_on.proc.committed, 0u);
    expectResultsEq(r_off, r_on, "skip-ahead on/off");
}

TEST(EventCoreEquality, TickSteppingMatchesRun)
{
    // run() uses the skip-ahead fast loop; manual tick() stepping
    // never skips.  Both must land on the same statistics.
    const Workload w = buildWorkload("ora", 3);
    CoreConfig cfg = paperCfg();
    cfg.numPhysRegs = 64;
    verifyProgram(w.program);

    Processor run_proc(cfg, w.program);
    run_proc.run();
    Processor tick_proc(cfg, w.program);
    while (!tick_proc.done())
        tick_proc.tick();

    expectProcStatsEq(tick_proc.stats(), run_proc.stats(),
                      "tick vs run");
}

} // namespace
} // namespace drsim
