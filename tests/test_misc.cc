/**
 * @file
 * Assorted coverage: emulator misuse guards, disassembly of control
 * flow, stats-collection toggles, and suite aggregation corners.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"
#include "workloads/emulator.hh"

namespace drsim {
namespace {

TEST(EmulatorGuards, SteppingPastHaltPanics)
{
    ProgramBuilder b("p");
    b.halt();
    Emulator emu(b.build());
    emu.stepArch();
    ASSERT_TRUE(emu.fetchBlocked());
    EXPECT_DEATH(emu.stepArch(), "blocked");
    EXPECT_DEATH((void)emu.pc(), "blocked");
}

TEST(EmulatorGuards, ReleaseOfUnknownCheckpointPanics)
{
    ProgramBuilder b("p");
    b.halt();
    Emulator emu(b.build());
    EXPECT_DEATH(emu.releaseCheckpoint(42), "unknown checkpoint");
}

TEST(Disassemble, ControlFlowFormats)
{
    Instruction jsr;
    jsr.op = Opcode::Jsr;
    jsr.dest = intReg(26);
    jsr.target = 7;
    EXPECT_EQ(disassemble(jsr), "jsr r26, B7");

    Instruction ret;
    ret.op = Opcode::Ret;
    ret.src1 = intReg(26);
    EXPECT_EQ(disassemble(ret), "ret r26");

    Instruction br;
    br.op = Opcode::Br;
    br.target = 2;
    EXPECT_EQ(disassemble(br), "br B2");

    Instruction fbne;
    fbne.op = Opcode::Fbne;
    fbne.src1 = fpReg(4);
    fbne.target = 1;
    EXPECT_EQ(disassemble(fbne), "fbne f4, B1");

    Instruction fsqrt;
    fsqrt.op = Opcode::Fsqrt;
    fsqrt.dest = fpReg(1);
    fsqrt.src1 = fpReg(2);
    EXPECT_EQ(disassemble(fsqrt), "fsqrt f1, f2");
}

TEST(StatsToggle, HistogramsCanBeDisabled)
{
    ProgramBuilder b("nohist");
    for (int i = 0; i < 50; ++i)
        b.addi(intReg(1 + (i % 20)), intReg(25), i);
    b.halt();
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.collectLiveHistograms = false;
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.stats().committed, 51u);
    EXPECT_EQ(proc.stats().live[0][3].totalSamples(), 0u);
    // The no-free-register stat still works without histograms.
    EXPECT_EQ(proc.stats().noFreeRegCycles, 0u);
}

TEST(SuiteAggregation, FpDensityWithoutFpBenchmarksIsFatal)
{
    ProgramBuilder b("int-only");
    b.li(intReg(1), 10);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 64;
    SimResult r = simulateProgram(cfg, b.build());
    r.fpIntensive = false;
    SuiteResult suite({r});
    // Integer curves work; FP curves have no contributors.
    EXPECT_NO_THROW(
        suite.avgDensity(RegClass::Int, LiveLevel::PreciseLive));
    EXPECT_THROW(
        suite.avgDensity(RegClass::Fp, LiveLevel::PreciseLive),
        FatalError);
}

TEST(SuiteAggregation, NoFreeRegPctAveraged)
{
    ProgramBuilder b("p");
    b.li(intReg(1), 200);
    const auto top = b.here();
    b.addi(intReg(2), intReg(1), 1);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 33; // heavy pressure
    const SimResult r = simulateProgram(cfg, b.build());
    EXPECT_GT(r.noFreeRegPct(), 10.0);
    EXPECT_LE(r.noFreeRegPct(), 100.0);
}

TEST(CacheStats, EmptyRatesAreZero)
{
    DCacheStats s;
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.0);
}

TEST(ProgramIntrospection, NumInstsMatchesBlocks)
{
    ProgramBuilder b("count");
    b.li(intReg(1), 1);
    const auto skip = b.newLabel();
    b.beq(intReg(1), skip);
    b.li(intReg(2), 2);
    b.bind(skip);
    b.halt();
    const Program p = b.build();
    std::size_t total = 0;
    for (const auto &bb : p.blocks())
        total += bb.insts.size();
    EXPECT_EQ(total, p.numInsts());
    EXPECT_EQ(total, 4u);
}

} // namespace
} // namespace drsim
