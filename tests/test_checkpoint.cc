/**
 * @file
 * Tests for the emulator's architectural snapshots (EmuArchState) and
 * functional fast-forward: save/restore round-trips at arbitrary step
 * counts on every tier-1 kernel, equivalence of fastForward() with
 * step-by-step architectural execution, and snapshot fidelity in the
 * presence of wrong-path residue in the overflow memory map.
 */

#include <gtest/gtest.h>

#include "workloads/builder.hh"
#include "workloads/emulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

/** Architecturally run @p emu to its halt and return its hash. */
std::uint64_t
runToHalt(Emulator &emu)
{
    while (!emu.fetchBlocked())
        emu.stepArch();
    return emu.stateHash();
}

TEST(Checkpoint, FastForwardMatchesStepByStep)
{
    for (const Workload &w : buildSpec92Suite(1)) {
        Emulator stepped(w.program);
        Emulator forwarded(w.program);
        for (int i = 0; i < 500 && !stepped.fetchBlocked(); ++i)
            stepped.stepArch();
        const std::uint64_t n = stepped.stepsExecuted();
        EXPECT_EQ(forwarded.fastForward(n), n) << w.spec->name;
        EXPECT_EQ(forwarded.stateHash(), stepped.stateHash())
            << w.spec->name;
        EXPECT_EQ(forwarded.stepsExecuted(), n) << w.spec->name;
    }
}

TEST(Checkpoint, FastForwardStopsBeforeHalt)
{
    ProgramBuilder b("tiny");
    b.li(intReg(1), 7);
    b.add(intReg(2), intReg(1), intReg(1));
    b.halt();
    Emulator emu(b.build());
    // Asking for far more than the program has leaves the Halt
    // unexecuted, so a detailed run can still fetch and commit it.
    EXPECT_EQ(emu.fastForward(1000), 2u);
    EXPECT_FALSE(emu.fetchBlocked());
    ASSERT_NE(emu.peek(), nullptr);
    EXPECT_EQ(emu.peek()->op, Opcode::Halt);
    EXPECT_EQ(emu.intRegBits(2), 14u);
}

TEST(Checkpoint, SaveRestoreRoundTripEveryKernel)
{
    for (const Workload &w : buildSpec92Suite(1)) {
        // Reference: uninterrupted architectural run.
        Emulator ref(w.program);
        const std::uint64_t final_hash = runToHalt(ref);
        const std::uint64_t total = ref.stepsExecuted();

        // Save at several arbitrary points, restore into a *fresh*
        // emulator, finish, and demand the identical final state.
        for (const std::uint64_t at :
             {std::uint64_t{1}, total / 3, total / 2, total - 1}) {
            Emulator src(w.program);
            ASSERT_EQ(src.fastForward(at), at) << w.spec->name;
            const EmuArchState snap = src.saveArchState();
            EXPECT_EQ(snap.steps, at);

            Emulator dst(w.program);
            dst.restoreArchState(snap);
            EXPECT_EQ(dst.stepsExecuted(), at) << w.spec->name;
            EXPECT_EQ(dst.stateHash(), src.stateHash())
                << w.spec->name << " at step " << at;
            EXPECT_EQ(runToHalt(dst), final_hash)
                << w.spec->name << " restored at step " << at;
            EXPECT_EQ(dst.stepsExecuted(), total) << w.spec->name;
        }
    }
}

TEST(Checkpoint, SaveIsolatesFromDonorMutation)
{
    const Workload w = buildWorkload("compress", 1);
    Emulator src(w.program);
    src.fastForward(200);
    const EmuArchState snap = src.saveArchState();
    const std::uint64_t hash_at_save = src.stateHash();
    runToHalt(src); // mutate the donor past the snapshot

    Emulator dst(w.program);
    dst.restoreArchState(snap);
    EXPECT_EQ(dst.stateHash(), hash_at_save);
}

TEST(Checkpoint, RoundTripWithWrongPathMemGarbage)
{
    // A store to an address far outside the bump-allocated data
    // segment lands in the overflow map (mem_) — exactly what a
    // wrong-path store through a garbage register does during
    // speculative fetch.  The snapshot must carry that residue so the
    // restored emulator hashes identically.
    ProgramBuilder b("garbage");
    const Addr cell = b.allocWords(1);
    b.initWord(cell, 5);
    b.li(intReg(1), std::int64_t(cell));
    b.li(intReg(2), 0x7f000000);              // far outside the segment
    b.li(intReg(3), 0xabcd);
    b.stq(intReg(3), intReg(2), 0);           // overflow-map store
    b.ldq(intReg(4), intReg(1), 0);
    b.add(intReg(5), intReg(4), intReg(3));
    b.halt();
    const Program prog = b.build();

    Emulator src(prog);
    ASSERT_EQ(src.fastForward(1000), 6u);
    EXPECT_EQ(src.memWord(0x7f000000), 0xabcdu);
    const EmuArchState snap = src.saveArchState();
    EXPECT_FALSE(snap.mem.empty());

    Emulator dst(prog);
    dst.restoreArchState(snap);
    EXPECT_EQ(dst.memWord(0x7f000000), 0xabcdu);
    EXPECT_EQ(dst.stateHash(), src.stateHash());
}

TEST(Checkpoint, RoundTripAfterSpeculativeRollback)
{
    // Exercise the interaction with the undo-log machinery: run a
    // wrong path under a checkpoint, roll back, *then* snapshot.  The
    // snapshot must capture the post-rollback architectural state and
    // restoring it must clear any stale undo bookkeeping.
    for (const Workload &w : buildSpec92Suite(1)) {
        Emulator emu(w.program);
        emu.fastForward(50);
        const std::uint64_t clean_hash = emu.stateHash();

        const EmuCheckpoint cp = emu.takeCheckpoint();
        const Addr resume = emu.pc();
        for (int i = 0; i < 20 && !emu.fetchBlocked(); ++i)
            emu.stepArch(); // pretend wrong path
        emu.rollbackTo(cp, resume);
        emu.releaseCheckpoint(cp);
        ASSERT_EQ(emu.stateHash(), clean_hash) << w.spec->name;
        ASSERT_EQ(emu.liveCheckpoints(), 0u) << w.spec->name;

        const EmuArchState snap = emu.saveArchState();
        Emulator fresh(w.program);
        fresh.restoreArchState(snap);
        EXPECT_EQ(fresh.stateHash(), clean_hash) << w.spec->name;
        EXPECT_EQ(runToHalt(fresh), runToHalt(emu)) << w.spec->name;
    }
}

} // namespace
} // namespace drsim
