/**
 * @file
 * Tests for the content-addressed checkpoint library (DESIGN.md §5j)
 * and the window-parallel sampling driver built on it: bit-identical
 * sampled statistics across execution policies (serial, 2-way, 8-way
 * windows) and across cold/warm library states, corrupt-entry and
 * rev-bump recompute, config-independent keys shared across a sweep,
 * and the DRSIM_CKPT_MAX_BYTES eviction policy.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>

#include "bpred/predictor.hh"
#include "exp/registry.hh"
#include "serve/result_io.hh"
#include "sim/ckpt_store.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

using exp::parseSamplingSpec;

/** Self-deleting scratch directory for library tests. */
class TmpDir
{
  public:
    explicit TmpDir(const char *tag)
    {
        path_ = std::filesystem::temp_directory_path() /
                ("drsim_ckpt_test_" + std::string(tag) + "_" +
                 std::to_string(::getpid()));
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TmpDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

/** Scoped environment-variable override (nullptr = unset). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_;
    std::string old_;
};

/** Restore the process-global execution policy on scope exit. */
class PolicyGuard
{
  public:
    PolicyGuard() : saved_(samplingExecPolicy()) {}
    ~PolicyGuard() { setSamplingExecPolicy(saved_); }

  private:
    SamplingExecPolicy saved_;
};

/** A sampled configuration small enough for a unit test but with
 *  several measured windows, warming replay, and a detailed tail. */
CoreConfig
sampledConfig(int regs = 96)
{
    CoreConfig cfg = exp::paperConfig(4, regs);
    cfg.sampling = parseSamplingSpec("3000:200:400:500");
    return cfg;
}

TEST(CkptSampling, WindowPolicyAndThreadCountAreByteIdentical)
{
    // No disk tier: this isolates the window-task decomposition.
    EnvGuard dir("DRSIM_CKPT_DIR", nullptr);
    PolicyGuard restore;
    const Workload w = buildWorkload("espresso", 2);
    const CoreConfig cfg = sampledConfig();

    SamplingExecPolicy serial;
    serial.useCkptLibrary = false;
    serial.windowJobs = 1;
    setSamplingExecPolicy(serial);
    const SimResult base = simulate(cfg, w);
    ASSERT_TRUE(base.sampled.enabled);
    ASSERT_GE(base.sampled.windows, 3u);
    const std::string want = serve::pointRecordJson(base);

    for (int jobs : {1, 2, 8}) {
        SamplingExecPolicy pooled;
        pooled.useCkptLibrary = true;
        pooled.windowJobs = jobs;
        setSamplingExecPolicy(pooled);
        const SimResult got = simulate(cfg, w);
        EXPECT_EQ(serve::pointRecordJson(got), want)
            << "windowJobs=" << jobs;
    }
}

TEST(CkptSampling, EveryPredictorBackendRoundTripsThroughWindows)
{
    // The checkpoint restore path rebuilds predictor warmth by
    // replaying the architectural branch stream (shiftHistory), so
    // every backend — whatever its table shape — must come out of a
    // window-parallel run byte-identical to the serial driver.
    EnvGuard dir("DRSIM_CKPT_DIR", nullptr);
    PolicyGuard restore;
    const Workload w = buildWorkload("espresso", 2);

    for (const std::string &spec : predictorSpecs()) {
        CoreConfig cfg = sampledConfig();
        cfg.predictor = spec;

        SamplingExecPolicy serial;
        serial.useCkptLibrary = false;
        serial.windowJobs = 1;
        setSamplingExecPolicy(serial);
        const SimResult base = simulate(cfg, w);
        ASSERT_TRUE(base.sampled.enabled) << spec;

        SamplingExecPolicy pooled;
        pooled.useCkptLibrary = true;
        pooled.windowJobs = 4;
        setSamplingExecPolicy(pooled);
        const SimResult got = simulate(cfg, w);
        EXPECT_EQ(serve::pointRecordJson(got),
                  serve::pointRecordJson(base))
            << spec;
    }
}

TEST(CkptSampling, ColdAndWarmDiskRunsAreByteIdentical)
{
    TmpDir dir("coldwarm");
    PolicyGuard restore;
    setSamplingExecPolicy(SamplingExecPolicy{});
    const Workload w = buildWorkload("gcc1", 2);
    const CoreConfig cfg = sampledConfig();

    EnvGuard rev("DRSIM_CKPT_REV", nullptr);
    EnvGuard cap("DRSIM_CKPT_MAX_BYTES", nullptr);
    EnvGuard on("DRSIM_CKPT_DIR", dir.str().c_str());
    const SimResult cold = simulate(cfg, w);
    ASSERT_TRUE(cold.sampled.enabled);
    EXPECT_GT(cold.profile.ckptGenerated, 0u);

    // Changing any library environment variable rebuilds the global
    // instance and drops its memory tier, so the next run must load
    // every snapshot from disk — the cross-process warm path.  (A
    // huge cap is behaviorally identical to the unbounded default but
    // changes the instance signature.)
    EnvGuard recap("DRSIM_CKPT_MAX_BYTES", "1000000000000");
    const SimResult warm = simulate(cfg, w);
    EXPECT_GT(warm.profile.ckptHits, 0u);
    EXPECT_EQ(warm.profile.ckptGenerated, 0u);
    EXPECT_EQ(serve::pointRecordJson(warm),
              serve::pointRecordJson(cold));
}

TEST(CkptSampling, KeyIsConfigIndependentAndSharedAcrossSweep)
{
    EnvGuard dir("DRSIM_CKPT_DIR", nullptr);
    EnvGuard rev("DRSIM_CKPT_REV", nullptr);
    PolicyGuard restore;
    setSamplingExecPolicy(SamplingExecPolicy{});
    const Workload w = buildWorkload("doduc", 2);

    // The key covers workload, program and sampling spec...
    const CkptKey a =
        ckptKeyFor("doduc", w.program, sampledConfig().sampling);
    CoreConfig other = sampledConfig(48);
    other.dcache.sizeBytes = 16 * 1024;
    const CkptKey b = ckptKeyFor("doduc", w.program, other.sampling);
    EXPECT_EQ(ckptKeyText(a, "r"), ckptKeyText(b, "r"));

    // ...but not the sampling spec's fields.
    SamplingConfig bumped = other.sampling;
    bumped.warmff = other.sampling.warmff + 1;
    const CkptKey c = ckptKeyFor("doduc", w.program, bumped);
    EXPECT_NE(ckptKeyText(a, "r"), ckptKeyText(c, "r"));

    // Two different machine configurations of one workload share one
    // entry: the second sweep point never regenerates.
    const SimResult first = simulate(sampledConfig(), w);
    const SimResult second = simulate(other, w);
    EXPECT_TRUE(second.profile.ckptFromMemory);
    EXPECT_EQ(second.profile.ckptGenerated, 0u);
    // Different configs time differently (and overshoot commit
    // groups differently), but the architectural sampling plan is
    // shared, so both see the same window placement.
    EXPECT_EQ(first.sampled.windows, second.sampled.windows);
}

TEST(CkptStore, CorruptSnapshotRecomputesAndRestores)
{
    TmpDir dir("corrupt");
    const Workload w = buildWorkload("compress", 2);
    const CkptKey key =
        ckptKeyFor("compress", w.program, sampledConfig().sampling);

    CkptStore first(dir.str());
    const CkptStore::AcquireOutcome gen = first.acquire(key, w.program);
    ASSERT_GT(gen.generated, 0u);
    ASSERT_GE(gen.plan->positions.size(), 2u);

    // Flip bytes in the middle of one snapshot file.
    const std::uint64_t pos = gen.plan->positions[0];
    const std::string victim = first.statePath(key, pos);
    ASSERT_TRUE(std::filesystem::exists(victim));
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(std::streamoff(
            std::filesystem::file_size(victim) / 2));
        f.write("\xde\xad\xbe\xef", 4);
    }

    // A fresh store (cold memory tier) must detect the damage,
    // regenerate the snapshot, and serve a plan identical to the
    // original — corruption costs time, never correctness.
    CkptStore second(dir.str());
    const CkptStore::AcquireOutcome redo =
        second.acquire(key, w.program);
    EXPECT_GE(second.stats().corrupt, 1u);
    EXPECT_GT(redo.generated, 0u);
    ASSERT_EQ(redo.plan->positions, gen.plan->positions);
    ASSERT_EQ(redo.plan->detailStarts, gen.plan->detailStarts);
    for (std::size_t i = 0; i < gen.plan->states.size(); ++i) {
        EXPECT_EQ(archStateHash(redo.plan->states[i]),
                  archStateHash(gen.plan->states[i]))
            << "snapshot " << i;
    }

    // The regenerated snapshot was re-stored: a third store loads
    // everything from disk with no corruption and no generation.
    CkptStore third(dir.str());
    const CkptStore::AcquireOutcome clean =
        third.acquire(key, w.program);
    EXPECT_EQ(third.stats().corrupt, 0u);
    EXPECT_EQ(clean.generated, 0u);
    EXPECT_EQ(clean.diskHits, gen.plan->states.size());
}

TEST(CkptStore, RevBumpRegeneratesInsteadOfServingStaleEntries)
{
    TmpDir dir("rev");
    const Workload w = buildWorkload("ora", 2);
    const CkptKey key =
        ckptKeyFor("ora", w.program, sampledConfig().sampling);

    CkptStore a(dir.str(), "ckpt-test-rev-a");
    const CkptStore::AcquireOutcome first = a.acquire(key, w.program);
    ASSERT_GT(first.generated, 0u);

    // Same directory, bumped revision: the key hash changes, so the
    // old entries are dead weight and the plan regenerates.
    CkptStore b(dir.str(), "ckpt-test-rev-b");
    const CkptStore::AcquireOutcome second = b.acquire(key, w.program);
    EXPECT_EQ(second.diskHits, 0u);
    EXPECT_GT(second.generated, 0u);
    for (std::size_t i = 0; i < first.plan->states.size(); ++i) {
        EXPECT_EQ(archStateHash(second.plan->states[i]),
                  archStateHash(first.plan->states[i]));
    }
}

TEST(CkptStore, ByteCapEvictsOldSnapshots)
{
    TmpDir dir("cap");
    const Workload w = buildWorkload("tomcatv", 2);
    const CkptKey key =
        ckptKeyFor("tomcatv", w.program, sampledConfig().sampling);

    // A cap far below one snapshot's size forces eviction right after
    // every store; the library still works (memory tier serves the
    // plan), it just cannot keep the disk entries.
    CkptStore store(dir.str(), ckptRev(), 1024);
    const CkptStore::AcquireOutcome got = store.acquire(key, w.program);
    ASSERT_GT(got.generated, 0u);
    EXPECT_GT(store.stats().evicted, 0u);

    std::uintmax_t bytes = 0;
    for (const auto &e :
         std::filesystem::recursive_directory_iterator(dir.str())) {
        if (e.is_regular_file())
            bytes += e.file_size();
    }
    EXPECT_LE(bytes, 1024u);
}

TEST(CkptSampling, BudgetedRunsShareUnbudgetedCheckpoints)
{
    // Budget truncation happens at plan time, not generation time, so
    // a capped sweep point reuses the library entry of the uncapped
    // run — positions are budget-independent by construction.
    EnvGuard dir("DRSIM_CKPT_DIR", nullptr);
    EnvGuard rev("DRSIM_CKPT_REV", nullptr);
    PolicyGuard restore;
    setSamplingExecPolicy(SamplingExecPolicy{});
    const Workload w = buildWorkload("mdljsp2", 2);

    const SimResult full = simulate(sampledConfig(), w);
    CoreConfig capped = sampledConfig();
    capped.maxCommitted = 5000;
    const SimResult part = simulate(capped, w);
    EXPECT_TRUE(part.profile.ckptFromMemory);
    EXPECT_EQ(part.profile.ckptGenerated, 0u);
    EXPECT_LE(part.sampled.windows, full.sampled.windows);
    EXPECT_EQ(part.stopReason, StopReason::InstLimit);
}

} // namespace
} // namespace drsim
