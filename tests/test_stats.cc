/**
 * @file
 * Unit tests for the statistics containers, including the paper's
 * footnote-2 averaging procedure.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace drsim {
namespace {

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.percentile(0.9), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.normalized().empty());
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.addSample(42);
    EXPECT_EQ(h.totalSamples(), 10u);
    EXPECT_EQ(h.maxValue(), 42u);
    EXPECT_EQ(h.percentile(0.5), 42u);
    EXPECT_EQ(h.percentile(1.0), 42u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, PercentileBoundaries)
{
    Histogram h;
    // 90 samples at value 1, 10 samples at value 100.
    for (int i = 0; i < 90; ++i)
        h.addSample(1);
    for (int i = 0; i < 10; ++i)
        h.addSample(100);
    EXPECT_EQ(h.percentile(0.90), 1u);
    EXPECT_EQ(h.percentile(0.91), 100u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

/**
 * percentile() must agree with densityPercentile() over the same
 * distribution for every fraction: both accumulate the cumulative
 * fraction with the same rounding epsilon.  The [9, 1] case at 0.9 is
 * the historical regression: comparing a raw running count against
 * fraction * total skidded to bucket 1 because 0.9 * 10 > 9 in
 * floating point.
 */
TEST(Histogram, PercentileMatchesDensityPercentile)
{
    {
        Histogram h;
        for (int i = 0; i < 9; ++i)
            h.addSample(0);
        h.addSample(1);
        EXPECT_EQ(h.percentile(0.9), 0u);
        EXPECT_EQ(densityPercentile(h.normalized(), 0.9), 0u);
    }

    Histogram h;
    Rng rng(13);
    for (int i = 0; i < 5000; ++i)
        h.addSample(rng.below(40));
    const auto density = h.normalized();
    for (const double f :
         {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.percentile(f), densityPercentile(density, f))
            << "fraction " << f;

    // Exact bucket-boundary fractions, where the rounding of
    // fraction * total is most likely to disagree between paths.
    const auto &counts = h.counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        const double f = double(cum) / double(h.totalSamples());
        EXPECT_EQ(h.percentile(f), densityPercentile(density, f))
            << "boundary fraction " << f << " at bucket " << i;
    }
}

TEST(Histogram, PercentileRejectsBadFraction)
{
    Histogram h;
    h.addSample(1);
    EXPECT_THROW(h.percentile(0.0), FatalError);
    EXPECT_THROW(h.percentile(1.5), FatalError);
}

TEST(Histogram, NormalizedSumsToOne)
{
    Histogram h;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        h.addSample(rng.below(50));
    const auto d = h.normalized();
    double sum = 0.0;
    for (double v : d)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a, b;
    a.addSample(3);
    a.addSample(3);
    b.addSample(5);
    a.merge(b);
    EXPECT_EQ(a.totalSamples(), 3u);
    EXPECT_EQ(a.counts()[3], 2u);
    EXPECT_EQ(a.counts()[5], 1u);
}

TEST(Histogram, MeanWeighted)
{
    Histogram h;
    h.addSample(0);
    h.addSample(10);
    h.addSample(10);
    h.addSample(20);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(AverageDensities, EqualWeightPerBenchmark)
{
    // Benchmark A: all mass at 0.  Benchmark B: all mass at 2.
    // The average must weight them equally regardless of how many
    // cycles each ran (footnote 2 of the paper).
    Histogram a, b;
    for (int i = 0; i < 1000000; ++i)
        a.addSample(0);
    b.addSample(2); // one cycle only
    const auto avg =
        averageDensities({a.normalized(), b.normalized()});
    ASSERT_EQ(avg.size(), 3u);
    EXPECT_NEAR(avg[0], 0.5, 1e-9);
    EXPECT_NEAR(avg[2], 0.5, 1e-9);
}

TEST(AverageDensities, DifferentLengths)
{
    const auto avg = averageDensities({{1.0}, {0.0, 0.0, 1.0}});
    ASSERT_EQ(avg.size(), 3u);
    EXPECT_NEAR(avg[0], 0.5, 1e-9);
    EXPECT_NEAR(avg[2], 0.5, 1e-9);
}

TEST(DensityPercentile, ReadsCumulative)
{
    const std::vector<double> d = {0.5, 0.25, 0.25};
    EXPECT_EQ(densityPercentile(d, 0.5), 0u);
    EXPECT_EQ(densityPercentile(d, 0.6), 1u);
    EXPECT_EQ(densityPercentile(d, 0.75), 1u);
    EXPECT_EQ(densityPercentile(d, 0.9), 2u);
    EXPECT_EQ(densityPercentile(d, 1.0), 2u);
}

TEST(DensityPercentile, ShortMassClampsToEnd)
{
    // Density that sums to 0.8: asking for 0.95 clamps to the last
    // index instead of running off the end.
    const std::vector<double> d = {0.4, 0.4};
    EXPECT_EQ(densityPercentile(d, 0.95), 1u);
}

TEST(CoverageCurve, MonotoneAndCapped)
{
    const std::vector<double> d = {0.25, 0.25, 0.5};
    const auto c = coverageCurve(d);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 0.25, 1e-9);
    EXPECT_NEAR(c[1], 0.5, 1e-9);
    EXPECT_NEAR(c[2], 1.0, 1e-9);
    for (std::size_t i = 1; i < c.size(); ++i)
        EXPECT_GE(c[i], c[i - 1]);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace drsim
