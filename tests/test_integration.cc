/**
 * @file
 * Integration and property tests: every synthetic kernel, run through
 * the full timing simulator under many machine configurations, must
 * (a) produce exactly the architectural execution (same committed
 * instruction count and final state as the pure functional emulator),
 * (b) satisfy the machine invariants (liveness audit on), and
 * (c) behave identically at the architectural level regardless of the
 * timing configuration.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

struct ArchRef
{
    std::uint64_t steps;
    std::uint64_t hash;
};

ArchRef
archReference(const Program &prog)
{
    Emulator emu(prog);
    while (!emu.fetchBlocked())
        emu.stepArch();
    return {emu.stepsExecuted(), emu.stateHash()};
}

/** Every kernel terminates and matches its functional execution. */
class KernelEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(KernelEquivalence, TimingRunMatchesFunctionalRun)
{
    const Workload w = buildWorkload(GetParam(), 1);
    const ArchRef ref = archReference(w.program);
    ASSERT_GT(ref.steps, 100u);

    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.auditInterval = 997;

    Processor proc(cfg, w.program);
    proc.run();
    EXPECT_EQ(int(proc.stopReason()), int(StopReason::Halted));
    EXPECT_EQ(proc.stats().committed, ref.steps);
    EXPECT_EQ(proc.emulator().stateHash(), ref.hash);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelEquivalence,
    ::testing::Values("compress", "doduc", "espresso", "gcc1",
                      "mdljdp2", "mdljsp2", "ora", "su2cor",
                      "tomcatv"));

/** Architectural results are independent of the timing configuration. */
struct TimingConfig
{
    int issueWidth;
    int dqSize;
    int numPhysRegs;
    ExceptionModel model;
    CacheKind cache;
};

class TimingIndependence
    : public ::testing::TestWithParam<TimingConfig>
{};

TEST_P(TimingIndependence, ArchitecturalResultUnchanged)
{
    const TimingConfig &tc = GetParam();
    const Workload w = buildWorkload("gcc1", 1); // branchiest kernel
    const ArchRef ref = archReference(w.program);

    CoreConfig cfg;
    cfg.issueWidth = tc.issueWidth;
    cfg.dqSize = tc.dqSize;
    cfg.numPhysRegs = tc.numPhysRegs;
    cfg.exceptionModel = tc.model;
    cfg.cacheKind = tc.cache;
    cfg.auditInterval = 1009;

    Processor proc(cfg, w.program);
    proc.run();
    EXPECT_EQ(proc.stats().committed, ref.steps);
    EXPECT_EQ(proc.emulator().stateHash(), ref.hash);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TimingIndependence,
    ::testing::Values(
        TimingConfig{4, 8, 64, ExceptionModel::Precise,
                     CacheKind::LockupFree},
        TimingConfig{4, 32, 32, ExceptionModel::Precise,
                     CacheKind::LockupFree},
        TimingConfig{4, 32, 33, ExceptionModel::Imprecise,
                     CacheKind::LockupFree},
        TimingConfig{4, 32, 128, ExceptionModel::Imprecise,
                     CacheKind::Lockup},
        TimingConfig{4, 64, 96, ExceptionModel::Precise,
                     CacheKind::Perfect},
        TimingConfig{8, 64, 128, ExceptionModel::Precise,
                     CacheKind::LockupFree},
        TimingConfig{8, 64, 64, ExceptionModel::Imprecise,
                     CacheKind::LockupFree},
        TimingConfig{8, 16, 256, ExceptionModel::Imprecise,
                     CacheKind::Lockup},
        TimingConfig{8, 128, 512, ExceptionModel::Precise,
                     CacheKind::Perfect}));

TEST(Integration, ImpreciseNeverSlowerAcrossKernels)
{
    // Under tight register files the imprecise model frees registers
    // earlier, so it can only help (paper Section 3.2).
    for (const char *name : {"compress", "espresso", "su2cor"}) {
        const Workload w = buildWorkload(name, 1);
        CoreConfig precise;
        precise.issueWidth = 4;
        precise.dqSize = 32;
        precise.numPhysRegs = 40;
        precise.exceptionModel = ExceptionModel::Precise;
        CoreConfig imprecise = precise;
        imprecise.exceptionModel = ExceptionModel::Imprecise;

        Processor pp(precise, w.program);
        pp.run();
        Processor pi(imprecise, w.program);
        pi.run();
        EXPECT_LE(pi.stats().cycles, pp.stats().cycles)
            << name << ": imprecise must not be slower";
    }
}

TEST(Integration, WiderMachineNeverSlower)
{
    for (const char *name : {"doduc", "tomcatv"}) {
        const Workload w = buildWorkload(name, 1);
        CoreConfig four;
        four.issueWidth = 4;
        four.dqSize = 32;
        four.numPhysRegs = 2048;
        CoreConfig eight = four;
        eight.issueWidth = 8;
        eight.dqSize = 64;

        Processor p4(four, w.program);
        p4.run();
        Processor p8(eight, w.program);
        p8.run();
        EXPECT_LE(p8.stats().cycles, p4.stats().cycles) << name;
        EXPECT_GT(p8.stats().commitIpc(),
                  p4.stats().commitIpc() * 0.99)
            << name;
    }
}

TEST(Integration, LargerDqNeverHurtsIpcMuch)
{
    const Workload w = buildWorkload("espresso", 1);
    double prev_ipc = 0.0;
    for (const int dq : {8, 16, 32, 64}) {
        CoreConfig cfg;
        cfg.issueWidth = 4;
        cfg.dqSize = dq;
        cfg.numPhysRegs = 2048;
        Processor proc(cfg, w.program);
        proc.run();
        const double ipc = proc.stats().commitIpc();
        EXPECT_GT(ipc, prev_ipc * 0.98)
            << "dq=" << dq << " should not regress";
        prev_ipc = ipc;
    }
}

TEST(Integration, LiveRegistersGrowWithDispatchQueue)
{
    // The Figure-3 trend: a larger queue keeps more registers live.
    const Workload w = buildWorkload("su2cor", 1);
    std::uint64_t prev = 0;
    for (const int dq : {8, 64}) {
        CoreConfig cfg;
        cfg.issueWidth = 4;
        cfg.dqSize = dq;
        cfg.numPhysRegs = 2048;
        Processor proc(cfg, w.program);
        proc.run();
        const std::uint64_t p90 =
            proc.stats().live[0][3].percentile(0.9);
        EXPECT_GT(p90, prev);
        prev = p90;
    }
}

TEST(Integration, SuiteRunProducesCompleteResults)
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 256;
    cfg.maxCommitted = 3000;
    const auto suite = buildSpec92Suite(1);
    const SuiteResult res = runSuite(cfg, suite);
    ASSERT_EQ(res.runs().size(), 9u);
    for (const auto &r : res.runs()) {
        EXPECT_GT(r.proc.committed, 0u) << r.workload;
        EXPECT_GT(r.commitIpc(), 0.1) << r.workload;
        EXPECT_LE(r.commitIpc(), 4.0) << r.workload;
    }
    EXPECT_GT(res.avgCommitIpc(), 0.5);
    EXPECT_GE(res.livePercentile(RegClass::Int,
                                 LiveLevel::PreciseLive, 0.9),
              31u);
}

TEST(Integration, InstructionCacheNearlyAlwaysHits)
{
    // The paper reports <1% I-cache miss rates; our kernels are small
    // loops, so the modeled I-cache must be nearly invisible.
    for (const char *name : {"compress", "tomcatv"}) {
        const Workload w = buildWorkload(name, 1);
        CoreConfig cfg;
        cfg.issueWidth = 4;
        cfg.dqSize = 32;
        cfg.numPhysRegs = 256;
        Processor proc(cfg, w.program);
        proc.run();
        const double rate =
            double(proc.icache().misses()) /
            double(std::max<std::uint64_t>(1, proc.icache().accesses()));
        EXPECT_LT(rate, 0.01) << name;
    }
}

TEST(Integration, ExecutedAtLeastCommitted)
{
    const auto suite = buildSpec92Suite(1);
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.maxCommitted = 4000;
    for (const auto &w : suite) {
        Processor proc(cfg, w.program);
        proc.run();
        EXPECT_GE(proc.stats().executed, proc.stats().committed)
            << w.spec->name;
        EXPECT_GE(proc.stats().executedLoads,
                  proc.stats().committedLoads)
            << w.spec->name;
    }
}

} // namespace
} // namespace drsim
