/**
 * @file
 * Unit tests for ProgramBuilder and the Program code layout.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/builder.hh"
#include "workloads/program.hh"

namespace drsim {
namespace {

TEST(Builder, StraightLineLayout)
{
    ProgramBuilder b("straight");
    b.li(intReg(1), 5);
    b.addi(intReg(2), intReg(1), 1);
    b.halt();
    const Program p = b.build();

    EXPECT_EQ(p.name(), "straight");
    EXPECT_EQ(p.numInsts(), 3u);
    const CodeLoc entry = p.entry();
    ASSERT_TRUE(entry.valid());
    EXPECT_EQ(p.pcOf(entry), kCodeBase);
    EXPECT_EQ(p.instAt(entry).op, Opcode::Add);

    const CodeLoc second = p.nextLoc(entry);
    EXPECT_EQ(p.pcOf(second), kCodeBase + 4);
    const CodeLoc third = p.nextLoc(second);
    EXPECT_TRUE(p.instAt(third).isHalt());
    EXPECT_FALSE(p.nextLoc(third).valid());
}

TEST(Builder, LocOfRoundTrips)
{
    ProgramBuilder b("roundtrip");
    for (int i = 0; i < 10; ++i)
        b.addi(intReg(1), intReg(1), i);
    b.halt();
    const Program p = b.build();

    CodeLoc loc = p.entry();
    while (loc.valid()) {
        EXPECT_EQ(p.locOf(p.pcOf(loc)), loc);
        loc = p.nextLoc(loc);
    }
}

TEST(Builder, LocOfRejectsNonCode)
{
    ProgramBuilder b("bad-pc");
    b.halt();
    const Program p = b.build();
    EXPECT_FALSE(p.locOf(0).valid());
    EXPECT_FALSE(p.locOf(kCodeBase + 2).valid()); // misaligned
    EXPECT_FALSE(p.locOf(kCodeBase + 400).valid()); // past the end
    EXPECT_FALSE(p.locOf(kDataBase).valid());
}

TEST(Builder, BackwardBranchTarget)
{
    ProgramBuilder b("loop");
    b.li(intReg(1), 3);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    const Program p = b.build();

    // Find the bne and check its target block starts at the subi.
    CodeLoc loc = p.entry();
    while (p.instAt(loc).op != Opcode::Bne)
        loc = p.nextLoc(loc);
    const Instruction &bne = p.instAt(loc);
    const CodeLoc target = p.blockEntryResolved(bne.target);
    ASSERT_TRUE(target.valid());
    EXPECT_EQ(p.instAt(target).op, Opcode::Sub);
}

TEST(Builder, ForwardBranchTarget)
{
    ProgramBuilder b("fwd");
    const auto skip = b.newLabel();
    b.beq(intReg(1), skip);
    b.li(intReg(2), 1);
    b.bind(skip);
    b.li(intReg(3), 2);
    b.halt();
    const Program p = b.build();

    const Instruction &beq = p.instAt(p.entry());
    ASSERT_EQ(beq.op, Opcode::Beq);
    const CodeLoc target = p.blockEntryResolved(beq.target);
    const Instruction &at_target = p.instAt(target);
    EXPECT_EQ(at_target.op, Opcode::Add);
    EXPECT_EQ(at_target.dest, intReg(3));
}

TEST(Builder, ConsecutiveLabelsShareBlock)
{
    ProgramBuilder b("labels");
    const auto l1 = b.newLabel();
    const auto l2 = b.newLabel();
    b.br(l2);
    b.bind(l1);
    b.bind(l2);
    b.li(intReg(1), 7);
    b.halt();
    const Program p = b.build();

    const Instruction &br = p.instAt(p.entry());
    const CodeLoc target = p.blockEntryResolved(br.target);
    ASSERT_TRUE(target.valid());
    EXPECT_EQ(p.instAt(target).dest, intReg(1));
}

TEST(Builder, DataAllocationIsAlignedAndDisjoint)
{
    ProgramBuilder b("data");
    const Addr a = b.allocWords(3);
    const Addr c = b.allocWords(10);
    EXPECT_GE(c, a + 3 * 8);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(c % 8, 0u);
    EXPECT_GE(a, kDataBase);
    b.initWord(a, 123);
    b.initDouble(c, 2.5);
    b.halt();
    const Program p = b.build();
    EXPECT_EQ(p.initialWords().at(a), 123u);
    EXPECT_EQ(p.initialWords().at(c),
              std::bit_cast<std::uint64_t>(2.5));
}

TEST(Builder, OperandClassValidation)
{
    ProgramBuilder b("bad");
    EXPECT_DEATH(b.ldt(intReg(1), intReg(2), 0), "ldt");
}

TEST(Builder, FallthroughAcrossBlocks)
{
    // A branch ends a block; the next instruction starts a new one and
    // nextLoc must fall through to it.
    ProgramBuilder b("fall");
    const auto skip = b.newLabel();
    b.beq(intReg(1), skip);
    b.li(intReg(2), 1);
    b.bind(skip);
    b.halt();
    const Program p = b.build();

    const CodeLoc after_branch = p.nextLoc(p.entry());
    ASSERT_TRUE(after_branch.valid());
    EXPECT_EQ(p.instAt(after_branch).dest, intReg(2));
    EXPECT_NE(after_branch.block, p.entry().block);
}

TEST(Builder, JsrAndRetShape)
{
    ProgramBuilder b("call");
    const auto fn = b.newLabel();
    b.jsr(intReg(26), fn);
    b.halt();
    b.bind(fn);
    b.ret(intReg(26));
    const Program p = b.build();

    const Instruction &jsr = p.instAt(p.entry());
    EXPECT_EQ(jsr.op, Opcode::Jsr);
    EXPECT_EQ(jsr.dest, intReg(26));
    const CodeLoc fn_loc = p.blockEntryResolved(jsr.target);
    EXPECT_EQ(p.instAt(fn_loc).op, Opcode::Ret);
}

TEST(Builder, BranchToUnboundLabelThrows)
{
    ProgramBuilder b("unbound");
    const auto l = b.newLabel();
    b.br(l);
    b.halt();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, BranchToUnknownLabelThrows)
{
    ProgramBuilder b("unknown-label");
    b.br(99);
    b.halt();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, BuildTwiceThrows)
{
    ProgramBuilder b("twice");
    b.halt();
    (void)b.build();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, EmitAfterBuildThrows)
{
    ProgramBuilder b("post-emit");
    b.halt();
    (void)b.build();
    EXPECT_THROW(b.halt(), FatalError);
}

TEST(Builder, BindErrorsThrow)
{
    ProgramBuilder b("bad-bind");
    EXPECT_THROW(b.bind(5), FatalError);
    const auto l = b.newLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), FatalError);
}

TEST(Builder, FinalizeTwiceThrows)
{
    ProgramBuilder b("refinalize");
    b.halt();
    Program p = b.build(); // build() already finalized the program
    EXPECT_THROW(p.finalize(), FatalError);
}

TEST(Builder, DefaultProgramFinalizesOnceOnly)
{
    Program p;
    EXPECT_NO_THROW(p.finalize()); // empty program lays out fine
    EXPECT_THROW(p.finalize(), FatalError);
}

TEST(Builder, BuildRecordsDataSegmentExtent)
{
    ProgramBuilder b("extent");
    const Addr base = b.allocWords(4);
    b.initWord(base + 64, 7); // init beyond the brk widens the limit
    b.halt();
    const Program p = b.build();
    EXPECT_EQ(p.dataBase(), kDataBase);
    EXPECT_GE(p.dataLimit(), base + 64 + 8);
}

} // namespace
} // namespace drsim
