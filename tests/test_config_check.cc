/**
 * @file
 * Unit tests for the static CoreConfig feasibility screen
 * (src/core/config_check): one test per rule id, the register-file
 * port arithmetic, requireFeasibleConfig()'s collect-all behavior,
 * and the spec-parse-time wiring through exp::expandExperiment.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/config_check.hh"
#include "exp/registry.hh"

namespace drsim {
namespace {

bool
hasRule(const std::vector<ConfigFinding> &findings, const char *rule)
{
    for (const ConfigFinding &f : findings) {
        if (std::string(f.rule) == rule)
            return true;
    }
    return false;
}

const ConfigFinding *
findRule(const std::vector<ConfigFinding> &findings, const char *rule)
{
    for (const ConfigFinding &f : findings) {
        if (std::string(f.rule) == rule)
            return &f;
    }
    return nullptr;
}

TEST(ConfigCheck, DefaultAndPaperConfigsAreClean)
{
    EXPECT_TRUE(checkCoreConfig(CoreConfig{}).empty());
    EXPECT_TRUE(checkCoreConfig(exp::paperConfig(4, 128)).empty());
    EXPECT_TRUE(checkCoreConfig(exp::paperConfig(8, 256)).empty());
}

TEST(ConfigCheck, RejectsUnsupportedIssueWidth)
{
    CoreConfig cfg;
    cfg.issueWidth = 5;
    const auto findings = checkCoreConfig(cfg);
    EXPECT_TRUE(hasRule(findings, "issue-width"));
    // Derived-limit rules are suppressed while the width is bogus.
    EXPECT_FALSE(hasRule(findings, "window-lt-issue-width"));
}

TEST(ConfigCheck, NarrowWidthKeepsPerClassIssueLimitsAlive)
{
    // issueWidth = 2 divides down to width/4 = 0 for the fp-divide
    // and control classes; the derived getters floor at 1, so the
    // config is both clean and deadlock-free.
    CoreConfig cfg;
    cfg.issueWidth = 2;
    cfg.dqSize = 16;
    EXPECT_GE(cfg.fpDivIssueLimit(), 1);
    EXPECT_GE(cfg.ctrlIssueLimit(), 1);
    EXPECT_GE(cfg.fpIssueLimit(), 1);
    EXPECT_GE(cfg.memIssueLimit(), 1);
    EXPECT_GE(cfg.numFpDividers(), 1);
    const auto findings = checkCoreConfig(cfg);
    EXPECT_FALSE(hasRule(findings, "issue-width"));
    EXPECT_FALSE(hasRule(findings, "issue-class-starved"));
}

TEST(ConfigCheck, RejectsUnknownPredictor)
{
    CoreConfig cfg;
    cfg.predictor = "perceptron";
    const auto findings = checkCoreConfig(cfg);
    const ConfigFinding *f = findRule(findings, "unknown-predictor");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->error);
    // The message teaches the valid spellings.
    EXPECT_NE(f->message.find("mcfarling"), std::string::npos);
    EXPECT_NE(f->message.find("tage"), std::string::npos);

    cfg.predictor = "gshare";
    EXPECT_FALSE(hasRule(checkCoreConfig(cfg), "unknown-predictor"));
}

TEST(ConfigCheck, ResultBusRules)
{
    CoreConfig cfg;
    cfg.resultBuses = -1;
    EXPECT_TRUE(
        hasRule(checkCoreConfig(cfg), "negative-result-buses"));

    // Fewer buses than half the issue width is legal but suspicious.
    cfg.resultBuses = 1; // issueWidth 4
    const ConfigFinding *f =
        findRule(checkCoreConfig(cfg), "result-buses-lt-half-width");
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->error);

    cfg.resultBuses = 2;
    EXPECT_FALSE(hasRule(checkCoreConfig(cfg),
                         "result-buses-lt-half-width"));
    cfg.resultBuses = 0; // unlimited: clean
    EXPECT_TRUE(checkCoreConfig(cfg).empty());
}

TEST(ConfigCheck, RejectsWindowSmallerThanIssueWidth)
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 3;
    EXPECT_TRUE(
        hasRule(checkCoreConfig(cfg), "window-lt-issue-width"));
    cfg.dqSize = 4;
    EXPECT_FALSE(
        hasRule(checkCoreConfig(cfg), "window-lt-issue-width"));
}

TEST(ConfigCheck, RejectsStarvedSplitMemoryQueue)
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.splitDispatchQueues = true;
    cfg.dqSize = 5; // 2:1:1 split leaves the memory queue empty
    ASSERT_LT(cfg.memQueueSize(), 1);
    EXPECT_TRUE(hasRule(checkCoreConfig(cfg), "split-queue-starved"));
    cfg.dqSize = 8;
    EXPECT_FALSE(
        hasRule(checkCoreConfig(cfg), "split-queue-starved"));
}

TEST(ConfigCheck, RejectsTooFewPhysicalRegisters)
{
    CoreConfig cfg;
    cfg.numPhysRegs = kNumVirtualRegs - 1;
    EXPECT_TRUE(hasRule(checkCoreConfig(cfg), "phys-regs-lt-virtual"));
    cfg.numPhysRegs = kNumVirtualRegs;
    EXPECT_FALSE(
        hasRule(checkCoreConfig(cfg), "phys-regs-lt-virtual"));
}

TEST(ConfigCheck, RejectsZeroSamplingWindow)
{
    CoreConfig cfg;
    cfg.sampling.interval = 1000;
    cfg.sampling.window = 0;
    cfg.sampling.warmup = 10;
    EXPECT_TRUE(hasRule(checkCoreConfig(cfg), "sampling-zero-window"));
}

TEST(ConfigCheck, RejectsWarmupNotShorterThanInterval)
{
    CoreConfig cfg;
    cfg.sampling.interval = 100;
    cfg.sampling.window = 10;
    cfg.sampling.warmup = 100;
    EXPECT_TRUE(
        hasRule(checkCoreConfig(cfg), "sampling-warmup-ge-interval"));
}

TEST(ConfigCheck, RejectsSamplingWithNoFastForwardPhase)
{
    CoreConfig cfg;
    cfg.sampling.interval = 100;
    cfg.sampling.window = 60;
    cfg.sampling.warmup = 50;
    const auto findings = checkCoreConfig(cfg);
    EXPECT_TRUE(hasRule(findings, "sampling-no-fast-forward"));
    EXPECT_FALSE(hasRule(findings, "sampling-warmup-ge-interval"));
}

TEST(ConfigCheck, WarnsWhenBudgetBelowOneInterval)
{
    CoreConfig cfg;
    cfg.sampling.interval = 1000;
    cfg.sampling.window = 100;
    cfg.sampling.warmup = 10;
    cfg.maxCommitted = 500;
    const auto findings = checkCoreConfig(cfg);
    const ConfigFinding *f =
        findRule(findings, "sampling-budget-lt-interval");
    ASSERT_NE(f, nullptr);
    EXPECT_FALSE(f->error); // a warning, not a blocker
    // The config is otherwise clean, so it must still be feasible.
    requireFeasibleConfig(cfg, "budget-warning");
}

TEST(ConfigCheck, StockLatencyTableHasNoZeroLatencyOps)
{
    // This rule exists to catch future edits to kOpTraits; it must
    // not fire on the shipped table.
    EXPECT_FALSE(
        hasRule(checkCoreConfig(CoreConfig{}), "zero-latency-op"));
}

TEST(ConfigCheck, RegFilePortArithmetic)
{
    EXPECT_TRUE(checkRegFilePorts(8, 4, 4, false).empty());
    EXPECT_TRUE(
        hasRule(checkRegFilePorts(6, 4, 4, false),
                "read-ports-lt-demand"));
    EXPECT_TRUE(
        hasRule(checkRegFilePorts(8, 3, 4, false),
                "write-ports-lt-demand"));
    EXPECT_TRUE(checkRegFilePorts(16, 8, 8, false).empty());
    // A port sharing/stall scheme models the contention instead.
    EXPECT_TRUE(checkRegFilePorts(2, 1, 8, true).empty());
}

TEST(ConfigCheck, RequireFeasibleListsEveryError)
{
    CoreConfig cfg;
    cfg.issueWidth = 5;
    cfg.numPhysRegs = 8;
    try {
        requireFeasibleConfig(cfg, "unit-test");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unit-test"), std::string::npos);
        EXPECT_NE(msg.find("issue-width"), std::string::npos);
        EXPECT_NE(msg.find("phys-regs-lt-virtual"), std::string::npos);
        EXPECT_NE(msg.find("2 errors"), std::string::npos);
    }
}

TEST(ConfigCheck, RequireFeasiblePassesSaneConfigs)
{
    requireFeasibleConfig(CoreConfig{}, "default");
    requireFeasibleConfig(exp::paperConfig(4, 128), "paper");
}

TEST(ConfigCheck, ExperimentExpansionScreensSamplingUpFront)
{
    const exp::ExperimentDef *def = exp::findExperiment("table1");
    ASSERT_NE(def, nullptr);

    exp::RunContext ctx;
    ctx.sampling.interval = 100; // zero window: infeasible
    EXPECT_THROW(exp::expandExperiment(*def, ctx), FatalError);

    ctx.sampling.window = 10;
    ctx.sampling.warmup = 10;
    EXPECT_FALSE(exp::expandExperiment(*def, ctx).empty());
}

} // namespace
} // namespace drsim
