/**
 * @file
 * Tests for the classic-kernel workload family.  These kernels
 * compute known answers (queens counts, prime counts, zero
 * mismatches), which makes them end-to-end validation of the ISA,
 * the emulator, and — run through the timing core — the whole
 * machine.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/processor.hh"
#include "workloads/classic.hh"
#include "workloads/emulator.hh"

namespace drsim {
namespace {

std::uint64_t
runArchR20(const Program &prog)
{
    Emulator emu(prog);
    while (!emu.fetchBlocked()) {
        emu.stepArch();
        EXPECT_LT(emu.stepsExecuted(), 5000000u) << "runaway";
    }
    return emu.intRegBits(20);
}

struct QueensCase
{
    int n;
    std::uint64_t solutions;
};

class Queens : public ::testing::TestWithParam<QueensCase>
{};

TEST_P(Queens, CountsAllSolutions)
{
    const auto [n, solutions] = GetParam();
    EXPECT_EQ(runArchR20(makeQueens(n)), solutions);
}

INSTANTIATE_TEST_SUITE_P(
    KnownCounts, Queens,
    ::testing::Values(QueensCase{4, 2}, QueensCase{5, 10},
                      QueensCase{6, 4}, QueensCase{7, 40},
                      QueensCase{8, 92}, QueensCase{9, 352},
                      QueensCase{10, 724}),
    [](const ::testing::TestParamInfo<QueensCase> &pinfo) {
        return "n" + std::to_string(pinfo.param.n);
    });

struct SieveCase
{
    int limit;
    std::uint64_t primes;
};

class Sieve : public ::testing::TestWithParam<SieveCase>
{};

TEST_P(Sieve, CountsPrimesBelowLimit)
{
    const auto [limit, primes] = GetParam();
    EXPECT_EQ(runArchR20(makeSieve(limit)), primes);
}

INSTANTIATE_TEST_SUITE_P(
    KnownCounts, Sieve,
    ::testing::Values(SieveCase{10, 4}, SieveCase{100, 25},
                      SieveCase{1000, 168}, SieveCase{4000, 550}),
    [](const ::testing::TestParamInfo<SieveCase> &pinfo) {
        return "limit" + std::to_string(pinfo.param.limit);
    });

TEST(WordCopy, NoMismatches)
{
    EXPECT_EQ(runArchR20(makeWordCopy(512, 3)), 0u);
}

TEST(Daxpy, AccumulatesIntoY)
{
    const Program prog = makeDaxpy(64, 2);
    Emulator emu(prog);
    while (!emu.fetchBlocked())
        emu.stepArch();
    // After two passes y > 0 everywhere (inputs are uniform [0,1)).
    // Sample the final y element through the emulator's memory.
    // (The exact address is internal; just check the run was long
    //  enough to have done 2*64 updates.)
    EXPECT_GE(emu.stepsExecuted(), 2u * 64u * 9u);
}

TEST(Whet, StaysFiniteAndTerminates)
{
    const Program prog = makeWhet(500);
    Emulator emu(prog);
    while (!emu.fetchBlocked())
        emu.stepArch();
    const double x = emu.fpRegValue(5);
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 100.0);
}

TEST(ClassicSuite, BuildsFiveKernels)
{
    const auto suite = buildClassicSuite();
    ASSERT_EQ(suite.size(), 5u);
    for (const auto &[name, prog] : suite) {
        EXPECT_FALSE(name.empty());
        EXPECT_GT(prog.numInsts(), 10u) << name;
    }
}

TEST(ClassicSuite, BadParametersRejected)
{
    EXPECT_THROW(makeQueens(3), FatalError);
    EXPECT_THROW(makeQueens(17), FatalError);
    EXPECT_THROW(makeSieve(2), FatalError);
    EXPECT_THROW(makeDaxpy(0, 1), FatalError);
    EXPECT_THROW(makeWordCopy(1, 0), FatalError);
    EXPECT_THROW(makeWhet(0), FatalError);
}

/** The whole family through the timing core: results must match the
 *  functional run at every configuration. */
class ClassicThroughPipeline
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ClassicThroughPipeline, MatchesFunctionalExecution)
{
    Program prog = [&]() -> Program {
        const std::string &name = GetParam();
        if (name == "daxpy")
            return makeDaxpy(512, 2);
        if (name == "sieve")
            return makeSieve(1500);
        if (name == "queens")
            return makeQueens(8);
        if (name == "wordcopy")
            return makeWordCopy(512, 2);
        return makeWhet(400);
    }();

    Emulator ref(prog);
    while (!ref.fetchBlocked())
        ref.stepArch();

    for (const int width : {4, 8}) {
        CoreConfig cfg;
        cfg.issueWidth = width;
        cfg.dqSize = width == 4 ? 32 : 64;
        cfg.numPhysRegs = 96;
        cfg.auditInterval = 499;
        Processor proc(cfg, prog);
        proc.run();
        EXPECT_EQ(proc.stats().committed, ref.stepsExecuted());
        EXPECT_EQ(proc.emulator().stateHash(), ref.stateHash());
        EXPECT_EQ(proc.emulator().intRegBits(20), ref.intRegBits(20));
    }
}

INSTANTIATE_TEST_SUITE_P(AllClassic, ClassicThroughPipeline,
                         ::testing::Values("daxpy", "sieve", "queens",
                                           "wordcopy", "whet"));

} // namespace
} // namespace drsim
