/**
 * @file
 * Tests for the parallel experiment runner (sim/runner.hh) and the
 * thread pool underneath it (common/thread_pool.hh).
 *
 * The load-bearing property is *bit-identical determinism*: a suite
 * run fanned out over N workers must reproduce the serial path's
 * SimResults exactly — cycles, instruction counts, every histogram
 * bucket — and therefore identical SuiteResult aggregates and JSON.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/runner.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, WaitOnEmptyBatchReturnsImmediately)
{
    ThreadPool pool(4);
    pool.wait(); // nothing submitted; must not block
    pool.wait(); // and must stay reusable
    EXPECT_EQ(pool.numThreads(), 4);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(8);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RunsManyTasksAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++sum; });
        pool.wait();
        EXPECT_EQ(sum.load(), 50 * (batch + 1));
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable)
{
    ThreadPool pool(4);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error must be cleared: the next healthy batch succeeds.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, FirstExceptionWinsOthersDropped)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    pool.wait(); // cleared; no tasks pending
}

TEST(ThreadPool, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1);
}

// ------------------------------------------------------ job resolution

class JobsEnvGuard
{
  public:
    explicit JobsEnvGuard(const char *value)
    {
        const char *old = std::getenv("DRSIM_JOBS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv("DRSIM_JOBS", value, 1);
        else
            unsetenv("DRSIM_JOBS");
    }
    ~JobsEnvGuard()
    {
        if (had_)
            setenv("DRSIM_JOBS", old_.c_str(), 1);
        else
            unsetenv("DRSIM_JOBS");
    }

  private:
    bool had_;
    std::string old_;
};

TEST(ResolveJobs, ExplicitRequestWins)
{
    JobsEnvGuard guard("7");
    EXPECT_EQ(resolveJobs(3), 3);
}

TEST(ResolveJobs, EnvVariableUsedWhenUnspecified)
{
    JobsEnvGuard guard("7");
    EXPECT_EQ(resolveJobs(0), 7);
    EXPECT_EQ(resolveJobs(-1), 7);
}

TEST(ResolveJobs, FallsBackToHardwareOnUnsetOrInvalid)
{
    {
        JobsEnvGuard guard(nullptr);
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
    {
        JobsEnvGuard guard("zero");
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
    {
        JobsEnvGuard guard("-3");
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
    {
        JobsEnvGuard guard("7seven");
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
}

TEST(ResolveJobs, ZeroMeansExplicitAutoDetect)
{
    JobsEnvGuard guard("0");
    EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
}

TEST(ResolveJobs, ClampsOutOfRangeValues)
{
    {
        JobsEnvGuard guard("2000"); // over kMaxJobs but fits an int
        EXPECT_EQ(resolveJobs(0), kMaxJobs);
    }
    {
        // Would overflow int (and long long, saturating via ERANGE);
        // previously this silently truncated through int().
        JobsEnvGuard guard("99999999999999999999999");
        EXPECT_EQ(resolveJobs(0), kMaxJobs);
    }
    {
        JobsEnvGuard guard("1024"); // exactly kMaxJobs is accepted
        EXPECT_EQ(resolveJobs(0), 1024);
    }
}

// -------------------------------------------------------- determinism

CoreConfig
smallConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 64;
    cfg.maxCommitted = 4000;
    return cfg;
}

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.totalSamples(), b.totalSamples());
    EXPECT_EQ(a.counts(), b.counts());
}

/** Field-by-field, bucket-by-bucket equality of two runs. */
void
expectRunsIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.fpIntensive, b.fpIntensive);
    EXPECT_EQ(int(a.stopReason), int(b.stopReason));
    EXPECT_EQ(a.proc.cycles, b.proc.cycles);
    EXPECT_EQ(a.proc.committed, b.proc.committed);
    EXPECT_EQ(a.proc.executed, b.proc.executed);
    EXPECT_EQ(a.proc.executedLoads, b.proc.executedLoads);
    EXPECT_EQ(a.proc.executedStores, b.proc.executedStores);
    EXPECT_EQ(a.proc.executedCondBranches,
              b.proc.executedCondBranches);
    EXPECT_EQ(a.proc.mispredictedBranches,
              b.proc.mispredictedBranches);
    EXPECT_EQ(a.proc.noFreeRegCycles, b.proc.noFreeRegCycles);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_DOUBLE_EQ(a.loadMissRate, b.loadMissRate);
    for (int c = 0; c < kNumRegClasses; ++c) {
        for (int l = 0; l < 4; ++l)
            expectHistogramsEqual(a.proc.live[c][l],
                                  b.proc.live[c][l]);
        expectHistogramsEqual(a.lifetime[c], b.lifetime[c]);
    }
}

TEST(Runner, ParallelSuiteBitIdenticalToSerial)
{
    const auto suite = buildSpec92Suite(1);
    const CoreConfig cfg = smallConfig();

    const SuiteResult serial = runSuite(cfg, suite);
    const SuiteResult parallel = runSuite(cfg, suite, 4);

    ASSERT_EQ(serial.runs().size(), parallel.runs().size());
    for (std::size_t i = 0; i < serial.runs().size(); ++i)
        expectRunsIdentical(serial.runs()[i], parallel.runs()[i]);

    // Aggregates and the paper's percentile metric follow exactly.
    EXPECT_DOUBLE_EQ(serial.avgIssueIpc(), parallel.avgIssueIpc());
    EXPECT_DOUBLE_EQ(serial.avgCommitIpc(), parallel.avgCommitIpc());
    EXPECT_DOUBLE_EQ(serial.avgNoFreeRegPct(),
                     parallel.avgNoFreeRegPct());
    for (const auto cls : {RegClass::Int, RegClass::Fp})
        for (int l = 0; l < 4; ++l)
            EXPECT_EQ(
                serial.livePercentile(cls, LiveLevel(l), 0.90),
                parallel.livePercentile(cls, LiveLevel(l), 0.90));
}

TEST(Runner, SingleJobTakesSerialPath)
{
    const auto suite = buildSpec92Suite(1);
    const CoreConfig cfg = smallConfig();
    const SuiteResult serial = runSuite(cfg, suite);
    const SuiteResult one_job = runSuite(cfg, suite, 1);
    ASSERT_EQ(serial.runs().size(), one_job.runs().size());
    for (std::size_t i = 0; i < serial.runs().size(); ++i)
        expectRunsIdentical(serial.runs()[i], one_job.runs()[i]);
}

TEST(Runner, ExperimentsMatchSerialLoopAndKeepSpecOrder)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    for (const int regs : {48, 64, 96}) {
        CoreConfig cfg = smallConfig();
        cfg.numPhysRegs = regs;
        specs.push_back({"r" + std::to_string(regs), cfg});
    }

    const auto batch = runExperiments(specs, suite, 4);
    ASSERT_EQ(batch.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
        EXPECT_EQ(batch[s].spec.name, specs[s].name);
        const SuiteResult serial = runSuite(specs[s].config, suite);
        ASSERT_EQ(batch[s].suite.runs().size(),
                  serial.runs().size());
        for (std::size_t i = 0; i < serial.runs().size(); ++i)
            expectRunsIdentical(serial.runs()[i],
                                batch[s].suite.runs()[i]);
    }
}

TEST(Runner, InvalidConfigErrorPropagatesFromWorkers)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    CoreConfig bad = smallConfig();
    bad.issueWidth = 6; // validate() rejects anything but 2 / 4 / 8
    specs.push_back({"bad", bad});
    EXPECT_THROW(runExperiments(specs, suite, 4), FatalError);
    EXPECT_THROW(runSuite(bad, suite, 4), FatalError);
}

TEST(Runner, EmptySpecBatchIsRejected)
{
    const auto suite = buildSpec92Suite(1);
    EXPECT_THROW(runExperiments({}, suite, 2), FatalError);
}

// --------------------------------------------------------- JSON export

TEST(Runner, ResultsJsonIndependentOfJobCount)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "test";
    info.scale = 1;
    info.maxCommitted = smallConfig().maxCommitted;

    const std::string serial =
        resultsJson(info, runExperiments(specs, suite, 1));
    const std::string parallel =
        resultsJson(info, runExperiments(specs, suite, 4));
    EXPECT_EQ(serial, parallel); // byte-identical artifact
}

TEST(Runner, ResultsJsonCarriesSchemaFields)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "schema-check";
    info.scale = 1;

    const std::string json =
        resultsJson(info, runExperiments(specs, suite, 2));
    for (const char *needle :
         {"\"schema_version\": 2", "\"run_id\": \"schema-check\"",
          "\"suite\"", "\"experiments\"", "\"config\"",
          "\"issue_width\"", "\"exception_model\"", "\"cache_kind\"",
          "\"workloads\"", "\"commit_ipc\"", "\"summary\"",
          "\"avg_commit_ipc\"", "\"avg_stall_pct\"", "\"live_p90\"",
          "\"busy_cycles\"", "\"issue_width_bound_cycles\"",
          "\"stall_cycles\"", "\"operand_wait\"", "\"occupancy\"",
          "\"dispatch_queue\"", "\"store_queue\"", "\"compress\""})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
}

/**
 * The exporter's output must survive the strict in-repo parser, and
 * the parsed document must uphold the attribution invariant: for every
 * workload, busy + issue_width_bound + sum(stall_cycles.*) == cycles.
 */
TEST(Runner, ResultsJsonRoundTripsThroughStrictParser)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    CoreConfig tight = smallConfig();
    tight.numPhysRegs = 40;
    specs.push_back({"tight", tight});
    RunInfo info;
    info.runId = "roundtrip";
    info.scale = 1;

    const json::Value doc = json::parse(
        resultsJson(info, runExperiments(specs, suite, 2)));
    EXPECT_EQ(doc.at("schema_version").asU64(), 2u);
    EXPECT_EQ(doc.at("run_id").asString(), "roundtrip");

    const auto &experiments = doc.at("experiments").items();
    ASSERT_EQ(experiments.size(), specs.size());
    for (const auto &exp : experiments) {
        for (const auto &wl : exp.at("workloads").items()) {
            const std::uint64_t cycles = wl.at("cycles").asU64();
            std::uint64_t attributed =
                wl.at("busy_cycles").asU64() +
                wl.at("issue_width_bound_cycles").asU64();
            for (const auto &[name, v] :
                 wl.at("stall_cycles").members())
                attributed += v.asU64();
            EXPECT_EQ(attributed, cycles)
                << exp.at("name").asString() << "/"
                << wl.at("name").asString();

            // A run that executed loads/branches reports numbers.
            if (wl.at("executed_loads").asU64() > 0) {
                EXPECT_TRUE(wl.at("load_miss_rate").isNumber());
            }
            if (wl.at("executed_cond_branches").asU64() > 0) {
                EXPECT_TRUE(wl.at("mispredict_rate").isNumber());
            }

            // Occupancy summaries ride along by default.
            const json::Value &occ = wl.at("occupancy");
            for (const char *s :
                 {"dispatch_queue", "window", "store_queue"}) {
                EXPECT_GE(occ.at(s).at("max").asNumber(),
                          occ.at(s).at("p90").asNumber());
            }
        }
    }
}

/**
 * The result_bus stall bucket is additive: a run with unlimited
 * writeback buses (the default) must emit byte-identical JSON to the
 * pre-bucket exporter — no "result_bus" key, no "result_buses" config
 * key, no "predictor" config key — while a bus-constrained run carries
 * all of them and still satisfies the attribution invariant.
 */
TEST(Runner, ResultBusBucketEmittedOnlyWhenConstrained)
{
    const auto suite = buildSpec92Suite(1);
    RunInfo info;
    info.runId = "bus-check";
    info.scale = 1;

    // Default config: unlimited buses, mcfarling predictor.  The new
    // knobs must leave the artifact untouched (the byte-identity
    // guard behind the fig7/table1 golden hashes).
    std::vector<ExperimentSpec> plain;
    plain.push_back({"base", smallConfig()});
    const std::string base_json =
        resultsJson(info, runExperiments(plain, suite, 2));
    EXPECT_EQ(base_json.find("\"result_bus\""), std::string::npos);
    EXPECT_EQ(base_json.find("\"result_buses\""), std::string::npos);
    EXPECT_EQ(base_json.find("\"predictor\""), std::string::npos);

    // One writeback bus on a 4-wide machine: contention is certain,
    // so the bucket must appear, the config must record the knob, and
    // every workload must still attribute each cycle exactly once.
    CoreConfig starved = smallConfig();
    starved.resultBuses = 1;
    std::vector<ExperimentSpec> specs;
    specs.push_back({"bus1", starved});
    const std::string text =
        resultsJson(info, runExperiments(specs, suite, 2));
    EXPECT_NE(text.find("\"result_buses\": 1"), std::string::npos);

    const json::Value doc = json::parse(text);
    const json::Value &exp = doc.at("experiments").at(std::size_t(0));
    std::uint64_t bus_stalls = 0;
    for (const auto &wl : exp.at("workloads").items()) {
        const std::uint64_t cycles = wl.at("cycles").asU64();
        std::uint64_t attributed =
            wl.at("busy_cycles").asU64() +
            wl.at("issue_width_bound_cycles").asU64();
        for (const auto &[name, v] : wl.at("stall_cycles").members()) {
            attributed += v.asU64();
            if (name == "result_bus")
                bus_stalls += v.asU64();
        }
        EXPECT_EQ(attributed, cycles) << wl.at("name").asString();
    }
    EXPECT_GT(bus_stalls, 0u);
}

/** A non-default predictor spec rides along in the config block. */
TEST(Runner, NonDefaultPredictorRecordedInConfig)
{
    const auto suite = buildSpec92Suite(1);
    CoreConfig cfg = smallConfig();
    cfg.predictor = "gshare";
    std::vector<ExperimentSpec> specs;
    specs.push_back({"gshare", cfg});
    RunInfo info;
    info.runId = "pred-check";
    info.scale = 1;

    const json::Value doc = json::parse(
        resultsJson(info, runExperiments(specs, suite, 1)));
    const json::Value &conf =
        doc.at("experiments").at(std::size_t(0)).at("config");
    EXPECT_EQ(conf.at("predictor").asString(), "gshare");
    EXPECT_EQ(conf.find("result_buses"), nullptr); // still default
}

/**
 * Zero-denominator ratios must be null, not 0: a workload with no
 * loads and no conditional branches has no miss or mispredict rate.
 */
TEST(Runner, ZeroDenominatorRatiosEmitNull)
{
    ProgramBuilder b("noload");
    const RegId r1 = intReg(1);
    b.li(r1, 5);
    b.addi(r1, r1, 1);
    b.halt();
    static const WorkloadSpec spec{"noload", "", false, nullptr};
    std::vector<Workload> suite;
    suite.push_back({&spec, b.build()});

    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "null-check";
    info.scale = 1;

    const json::Value doc = json::parse(
        resultsJson(info, runExperiments(specs, suite, 1)));
    const json::Value &wl =
        doc.at("experiments").at(std::size_t(0)).at("workloads")
            .at(std::size_t(0));
    EXPECT_EQ(wl.at("executed_loads").asU64(), 0u);
    EXPECT_EQ(wl.at("executed_cond_branches").asU64(), 0u);
    EXPECT_TRUE(wl.at("load_miss_rate").isNull());
    EXPECT_TRUE(wl.at("mispredict_rate").isNull());
    // The run did cycle, so the IPC ratios are real numbers.
    EXPECT_TRUE(wl.at("issue_ipc").isNumber());
    EXPECT_TRUE(wl.at("commit_ipc").isNumber());
}

/** Hostile characters in run_id must round-trip through escaping. */
TEST(Runner, RunIdWithSpecialCharactersRoundTrips)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "quote\"back\\slash\nnewline\ttab\x01ctl";
    info.scale = 1;

    const json::Value doc = json::parse(
        resultsJson(info, runExperiments(specs, suite, 1)));
    EXPECT_EQ(doc.at("run_id").asString(), info.runId);
}

TEST(Runner, WriteResultsFileRoundTripsAndRejectsBadPath)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    const auto results = runExperiments(specs, suite, 2);
    RunInfo info;
    info.runId = "roundtrip";
    info.scale = 1;

    const std::string path =
        testing::TempDir() + "drsim_runner_roundtrip.json";
    writeResultsFile(path, info, results);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(contents, resultsJson(info, results));

    EXPECT_THROW(writeResultsFile("/nonexistent-dir/x.json", info,
                                  results),
                 FatalError);
}

} // namespace
} // namespace drsim
