/**
 * @file
 * Tests for the parallel experiment runner (sim/runner.hh) and the
 * thread pool underneath it (common/thread_pool.hh).
 *
 * The load-bearing property is *bit-identical determinism*: a suite
 * run fanned out over N workers must reproduce the serial path's
 * SimResults exactly — cycles, instruction counts, every histogram
 * bucket — and therefore identical SuiteResult aggregates and JSON.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/runner.hh"

namespace drsim {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, WaitOnEmptyBatchReturnsImmediately)
{
    ThreadPool pool(4);
    pool.wait(); // nothing submitted; must not block
    pool.wait(); // and must stay reusable
    EXPECT_EQ(pool.numThreads(), 4);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(8);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RunsManyTasksAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++sum; });
        pool.wait();
        EXPECT_EQ(sum.load(), 50 * (batch + 1));
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable)
{
    ThreadPool pool(4);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error must be cleared: the next healthy batch succeeds.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, FirstExceptionWinsOthersDropped)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    pool.wait(); // cleared; no tasks pending
}

TEST(ThreadPool, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1);
}

// ------------------------------------------------------ job resolution

class JobsEnvGuard
{
  public:
    explicit JobsEnvGuard(const char *value)
    {
        const char *old = std::getenv("DRSIM_JOBS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv("DRSIM_JOBS", value, 1);
        else
            unsetenv("DRSIM_JOBS");
    }
    ~JobsEnvGuard()
    {
        if (had_)
            setenv("DRSIM_JOBS", old_.c_str(), 1);
        else
            unsetenv("DRSIM_JOBS");
    }

  private:
    bool had_;
    std::string old_;
};

TEST(ResolveJobs, ExplicitRequestWins)
{
    JobsEnvGuard guard("7");
    EXPECT_EQ(resolveJobs(3), 3);
}

TEST(ResolveJobs, EnvVariableUsedWhenUnspecified)
{
    JobsEnvGuard guard("7");
    EXPECT_EQ(resolveJobs(0), 7);
    EXPECT_EQ(resolveJobs(-1), 7);
}

TEST(ResolveJobs, FallsBackToHardwareOnUnsetOrInvalid)
{
    {
        JobsEnvGuard guard(nullptr);
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
    {
        JobsEnvGuard guard("zero");
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
    {
        JobsEnvGuard guard("0");
        EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    }
}

// -------------------------------------------------------- determinism

CoreConfig
smallConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 64;
    cfg.maxCommitted = 4000;
    return cfg;
}

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.totalSamples(), b.totalSamples());
    EXPECT_EQ(a.counts(), b.counts());
}

/** Field-by-field, bucket-by-bucket equality of two runs. */
void
expectRunsIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.fpIntensive, b.fpIntensive);
    EXPECT_EQ(int(a.stopReason), int(b.stopReason));
    EXPECT_EQ(a.proc.cycles, b.proc.cycles);
    EXPECT_EQ(a.proc.committed, b.proc.committed);
    EXPECT_EQ(a.proc.executed, b.proc.executed);
    EXPECT_EQ(a.proc.executedLoads, b.proc.executedLoads);
    EXPECT_EQ(a.proc.executedStores, b.proc.executedStores);
    EXPECT_EQ(a.proc.executedCondBranches,
              b.proc.executedCondBranches);
    EXPECT_EQ(a.proc.mispredictedBranches,
              b.proc.mispredictedBranches);
    EXPECT_EQ(a.proc.noFreeRegCycles, b.proc.noFreeRegCycles);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_DOUBLE_EQ(a.loadMissRate, b.loadMissRate);
    for (int c = 0; c < kNumRegClasses; ++c) {
        for (int l = 0; l < 4; ++l)
            expectHistogramsEqual(a.proc.live[c][l],
                                  b.proc.live[c][l]);
        expectHistogramsEqual(a.lifetime[c], b.lifetime[c]);
    }
}

TEST(Runner, ParallelSuiteBitIdenticalToSerial)
{
    const auto suite = buildSpec92Suite(1);
    const CoreConfig cfg = smallConfig();

    const SuiteResult serial = runSuite(cfg, suite);
    const SuiteResult parallel = runSuite(cfg, suite, 4);

    ASSERT_EQ(serial.runs().size(), parallel.runs().size());
    for (std::size_t i = 0; i < serial.runs().size(); ++i)
        expectRunsIdentical(serial.runs()[i], parallel.runs()[i]);

    // Aggregates and the paper's percentile metric follow exactly.
    EXPECT_DOUBLE_EQ(serial.avgIssueIpc(), parallel.avgIssueIpc());
    EXPECT_DOUBLE_EQ(serial.avgCommitIpc(), parallel.avgCommitIpc());
    EXPECT_DOUBLE_EQ(serial.avgNoFreeRegPct(),
                     parallel.avgNoFreeRegPct());
    for (const auto cls : {RegClass::Int, RegClass::Fp})
        for (int l = 0; l < 4; ++l)
            EXPECT_EQ(
                serial.livePercentile(cls, LiveLevel(l), 0.90),
                parallel.livePercentile(cls, LiveLevel(l), 0.90));
}

TEST(Runner, SingleJobTakesSerialPath)
{
    const auto suite = buildSpec92Suite(1);
    const CoreConfig cfg = smallConfig();
    const SuiteResult serial = runSuite(cfg, suite);
    const SuiteResult one_job = runSuite(cfg, suite, 1);
    ASSERT_EQ(serial.runs().size(), one_job.runs().size());
    for (std::size_t i = 0; i < serial.runs().size(); ++i)
        expectRunsIdentical(serial.runs()[i], one_job.runs()[i]);
}

TEST(Runner, ExperimentsMatchSerialLoopAndKeepSpecOrder)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    for (const int regs : {48, 64, 96}) {
        CoreConfig cfg = smallConfig();
        cfg.numPhysRegs = regs;
        specs.push_back({"r" + std::to_string(regs), cfg});
    }

    const auto batch = runExperiments(specs, suite, 4);
    ASSERT_EQ(batch.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
        EXPECT_EQ(batch[s].spec.name, specs[s].name);
        const SuiteResult serial = runSuite(specs[s].config, suite);
        ASSERT_EQ(batch[s].suite.runs().size(),
                  serial.runs().size());
        for (std::size_t i = 0; i < serial.runs().size(); ++i)
            expectRunsIdentical(serial.runs()[i],
                                batch[s].suite.runs()[i]);
    }
}

TEST(Runner, InvalidConfigErrorPropagatesFromWorkers)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    CoreConfig bad = smallConfig();
    bad.issueWidth = 6; // validate() rejects anything but 4 / 8
    specs.push_back({"bad", bad});
    EXPECT_THROW(runExperiments(specs, suite, 4), FatalError);
    EXPECT_THROW(runSuite(bad, suite, 4), FatalError);
}

TEST(Runner, EmptySpecBatchIsRejected)
{
    const auto suite = buildSpec92Suite(1);
    EXPECT_THROW(runExperiments({}, suite, 2), FatalError);
}

// --------------------------------------------------------- JSON export

TEST(Runner, ResultsJsonIndependentOfJobCount)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "test";
    info.scale = 1;
    info.maxCommitted = smallConfig().maxCommitted;

    const std::string serial =
        resultsJson(info, runExperiments(specs, suite, 1));
    const std::string parallel =
        resultsJson(info, runExperiments(specs, suite, 4));
    EXPECT_EQ(serial, parallel); // byte-identical artifact
}

TEST(Runner, ResultsJsonCarriesSchemaFields)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    RunInfo info;
    info.runId = "schema-check";
    info.scale = 1;

    const std::string json =
        resultsJson(info, runExperiments(specs, suite, 2));
    for (const char *needle :
         {"\"schema_version\": 1", "\"run_id\": \"schema-check\"",
          "\"suite\"", "\"experiments\"", "\"config\"",
          "\"issue_width\"", "\"exception_model\"", "\"cache_kind\"",
          "\"workloads\"", "\"commit_ipc\"", "\"summary\"",
          "\"avg_commit_ipc\"", "\"live_p90\"", "\"compress\""})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
}

TEST(Runner, WriteResultsFileRoundTripsAndRejectsBadPath)
{
    const auto suite = buildSpec92Suite(1);
    std::vector<ExperimentSpec> specs;
    specs.push_back({"base", smallConfig()});
    const auto results = runExperiments(specs, suite, 2);
    RunInfo info;
    info.runId = "roundtrip";
    info.scale = 1;

    const std::string path =
        testing::TempDir() + "drsim_runner_roundtrip.json";
    writeResultsFile(path, info, results);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(contents, resultsJson(info, results));

    EXPECT_THROW(writeResultsFile("/nonexistent-dir/x.json", info,
                                  results),
                 FatalError);
}

} // namespace
} // namespace drsim
