/**
 * @file
 * Unit tests for the simulation driver and the paper's cross-benchmark
 * averaging rules (Section 3.1, footnote 2).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

CoreConfig
quickConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.maxCommitted = 5000;
    return cfg;
}

Program
tinyLoop(const std::string &name, int trips)
{
    ProgramBuilder b(name);
    b.li(intReg(1), trips);
    b.li(intReg(2), 0);
    const auto top = b.here();
    b.addi(intReg(2), intReg(2), 1);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    return b.build();
}

TEST(Simulator, RunsProgramToHalt)
{
    CoreConfig cfg = quickConfig();
    cfg.maxCommitted = 0;
    const Program p = tinyLoop("t", 100);
    const SimResult res = simulateProgram(cfg, p);
    EXPECT_EQ(int(res.stopReason), int(StopReason::Halted));
    EXPECT_EQ(res.proc.committed, 303u);
    EXPECT_GT(res.commitIpc(), 0.0);
}

TEST(Simulator, WorkloadByName)
{
    CoreConfig cfg = quickConfig();
    cfg.maxCommitted = 2000;
    const Workload w = buildWorkload("espresso", 2);
    const SimResult res = simulate(cfg, w);
    EXPECT_EQ(res.workload, "espresso");
    EXPECT_FALSE(res.fpIntensive);
    EXPECT_GT(res.proc.committed, 0u);
}

TEST(Simulator, UnknownWorkloadFatal)
{
    EXPECT_THROW(buildWorkload("nope", 1), FatalError);
}

TEST(Simulator, SuiteHasNineBenchmarksInTableOrder)
{
    const auto &specs = spec92Specs();
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs[0].name, "compress");
    EXPECT_EQ(specs[1].name, "doduc");
    EXPECT_EQ(specs[2].name, "espresso");
    EXPECT_EQ(specs[3].name, "gcc1");
    EXPECT_EQ(specs[4].name, "mdljdp2");
    EXPECT_EQ(specs[5].name, "mdljsp2");
    EXPECT_EQ(specs[6].name, "ora");
    EXPECT_EQ(specs[7].name, "su2cor");
    EXPECT_EQ(specs[8].name, "tomcatv");
    // FP-intensive flags (the FP-register averaging set).
    int fp_count = 0;
    for (const auto &s : specs)
        fp_count += s.fpIntensive;
    EXPECT_EQ(fp_count, 6);
    EXPECT_FALSE(specs[0].fpIntensive); // compress
    EXPECT_FALSE(specs[2].fpIntensive); // espresso
    EXPECT_FALSE(specs[3].fpIntensive); // gcc1
}

TEST(Simulator, SuiteAveragesAreMeans)
{
    // Two synthetic runs with known IPCs: the suite averages must be
    // their arithmetic means.
    CoreConfig cfg = quickConfig();
    cfg.maxCommitted = 0;
    std::vector<SimResult> runs;
    runs.push_back(simulateProgram(cfg, tinyLoop("a", 50)));
    runs.push_back(simulateProgram(cfg, tinyLoop("b", 500)));
    const double mean =
        (runs[0].commitIpc() + runs[1].commitIpc()) / 2.0;
    SuiteResult suite({runs[0], runs[1]});
    EXPECT_NEAR(suite.avgCommitIpc(), mean, 1e-12);
}

TEST(Simulator, FpCurvesUseOnlyFpBenchmarks)
{
    CoreConfig cfg = quickConfig();
    cfg.maxCommitted = 0;
    SimResult int_run = simulateProgram(cfg, tinyLoop("int", 50));
    int_run.fpIntensive = false;
    SimResult fp_run = simulateProgram(cfg, tinyLoop("fp", 50));
    fp_run.fpIntensive = true;
    // Tag the FP run with a distinctive fake FP histogram.
    fp_run.proc.live[int(RegClass::Fp)][3] = Histogram();
    for (int i = 0; i < 100; ++i)
        fp_run.proc.live[int(RegClass::Fp)][3].addSample(77);
    // And the int run with a different one that must be ignored.
    int_run.proc.live[int(RegClass::Fp)][3] = Histogram();
    for (int i = 0; i < 100; ++i)
        int_run.proc.live[int(RegClass::Fp)][3].addSample(5);

    SuiteResult suite({int_run, fp_run});
    EXPECT_EQ(suite.livePercentile(RegClass::Fp,
                                   LiveLevel::PreciseLive, 0.9),
              77u);
    // Integer curves average across all benchmarks.
    const auto int_density =
        suite.avgDensity(RegClass::Int, LiveLevel::PreciseLive);
    EXPECT_FALSE(int_density.empty());
}

TEST(Simulator, RuntimeNormalizationEqualizesBenchmarks)
{
    // A benchmark running 100x longer must not dominate the averaged
    // distribution (footnote 2 of the paper).
    CoreConfig cfg = quickConfig();
    cfg.maxCommitted = 0;
    SimResult small = simulateProgram(cfg, tinyLoop("s", 20));
    SimResult large = simulateProgram(cfg, tinyLoop("l", 5000));
    small.proc.live[0][3] = Histogram();
    small.proc.live[0][3].addSample(10); // 1 cycle at 10 live
    large.proc.live[0][3] = Histogram();
    for (int i = 0; i < 100000; ++i)
        large.proc.live[0][3].addSample(50);

    SuiteResult suite({small, large});
    const auto d =
        suite.avgDensity(RegClass::Int, LiveLevel::PreciseLive);
    EXPECT_NEAR(d[10], 0.5, 1e-9);
    EXPECT_NEAR(d[50], 0.5, 1e-9);
}

TEST(Simulator, CoverageCurveReachesOne)
{
    CoreConfig cfg = quickConfig();
    const Workload w = buildWorkload("doduc", 1);
    const SimResult res = simulate(cfg, w);
    SuiteResult suite({res});
    const auto cov =
        suite.avgCoverage(RegClass::Int, LiveLevel::PreciseLive);
    ASSERT_FALSE(cov.empty());
    EXPECT_NEAR(cov.back(), 1.0, 1e-9);
    for (std::size_t i = 1; i < cov.size(); ++i)
        EXPECT_GE(cov[i] + 1e-12, cov[i - 1]);
}

TEST(Simulator, NestedLevelsOrdered)
{
    CoreConfig cfg = quickConfig();
    const Workload w = buildWorkload("compress", 2);
    const SimResult res = simulate(cfg, w);
    SuiteResult suite({res});
    const auto p_inflight = suite.livePercentile(
        RegClass::Int, LiveLevel::InFlight, 0.9);
    const auto p_queue = suite.livePercentile(
        RegClass::Int, LiveLevel::PlusQueue, 0.9);
    const auto p_imprecise = suite.livePercentile(
        RegClass::Int, LiveLevel::ImpreciseLive, 0.9);
    const auto p_precise = suite.livePercentile(
        RegClass::Int, LiveLevel::PreciseLive, 0.9);
    EXPECT_LE(p_inflight, p_queue);
    EXPECT_LE(p_queue, p_imprecise);
    EXPECT_LE(p_imprecise, p_precise);
}

TEST(Simulator, EmptySuiteRejected)
{
    EXPECT_THROW(SuiteResult(std::vector<SimResult>{}), FatalError);
}

} // namespace
} // namespace drsim
