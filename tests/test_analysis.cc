/**
 * @file
 * Unit tests for the static verifier (src/analysis): every rule fires
 * on a crafted malformed program, the shipped kernel suites pass
 * clean, and the JSON output round-trips through the strict parser.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"
#include "workloads/classic.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

using analysis::Finding;
using analysis::Report;
using analysis::Severity;
namespace rules = analysis::rules;

bool
hasRule(const Report &r, const char *rule)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

const Finding &
findRule(const Report &r, const char *rule)
{
    for (const Finding &f : r.findings)
        if (f.rule == rule)
            return f;
    throw std::logic_error(std::string("rule not found: ") + rule);
}

// ------------------------------------------------------------ rules

TEST(Analysis, EmptyProgramIsAnError)
{
    ProgramBuilder b("empty");
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kEmptyProgram));
    EXPECT_TRUE(r.hasErrors());
}

TEST(Analysis, UninitializedReadFires)
{
    ProgramBuilder b("uninit");
    b.addi(intReg(2), intReg(7), 1); // r7 never written
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kUninitRead);
    EXPECT_EQ(int(f.severity), int(Severity::Error));
    EXPECT_EQ(f.block, 0);
    EXPECT_EQ(f.offset, 0);
    EXPECT_EQ(f.pc, kCodeBase);
    EXPECT_NE(f.message.find("r7"), std::string::npos);
}

TEST(Analysis, ZeroRegReadsAreAlwaysInitialized)
{
    ProgramBuilder b("zero-read");
    b.li(intReg(1), 5);            // li reads r31
    b.add(intReg(2), intReg(1), intReg(kZeroReg));
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_FALSE(hasRule(r, rules::kUninitRead));
}

TEST(Analysis, AbiInitializedRegsSuppressUninitRead)
{
    ProgramBuilder b("abi");
    b.addi(intReg(2), intReg(7), 1);
    b.halt();
    analysis::Options opts;
    opts.abiInitializedRegs = {intReg(7)};
    const Report r = analysis::analyzeProgram(b.build(), opts);
    EXPECT_FALSE(hasRule(r, rules::kUninitRead));
}

TEST(Analysis, WriteOnOnlyOneArmIsStillUninit)
{
    // r2 is written on the taken arm only; the join reads it.
    ProgramBuilder b("one-arm");
    b.li(intReg(1), 1);
    const auto skip = b.newLabel();
    b.beq(intReg(1), skip);
    b.li(intReg(2), 9);
    b.bind(skip);
    b.addi(intReg(3), intReg(2), 1); // may read uninitialized r2
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kUninitRead));
}

TEST(Analysis, UnreachableBlockWarns)
{
    ProgramBuilder b("island");
    const auto end = b.newLabel();
    b.li(intReg(1), 1);
    b.br(end);
    b.here();                       // never targeted
    b.addi(intReg(1), intReg(1), 1);
    b.bind(end);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kUnreachable);
    EXPECT_EQ(int(f.severity), int(Severity::Warning));
    EXPECT_FALSE(r.hasErrors());
}

TEST(Analysis, NoHaltLoopIsAnError)
{
    ProgramBuilder b("spin");
    b.li(intReg(1), 1);
    const auto top = b.here();
    b.addi(intReg(1), intReg(1), 1);
    b.br(top);                      // no path reaches Halt
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kNoHalt);
    EXPECT_EQ(int(f.severity), int(Severity::Error));
}

TEST(Analysis, CountedLoopWithExitIsNotFlaggedNoHalt)
{
    ProgramBuilder b("counted");
    b.li(intReg(1), 10);
    b.li(intReg(2), 0);
    const auto top = b.here();
    b.addi(intReg(2), intReg(2), 1);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_FALSE(hasRule(r, rules::kNoHalt));
    EXPECT_FALSE(r.hasErrors());
}

TEST(Analysis, FallOffEndIsAnError)
{
    ProgramBuilder b("no-halt-at-end");
    b.li(intReg(1), 1);
    b.addi(intReg(1), intReg(1), 1); // last block has no terminator
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kFallOffEnd));
    EXPECT_TRUE(r.hasErrors());
}

TEST(Analysis, BranchToTrailingEmptyBlockIsInvalidTarget)
{
    ProgramBuilder b("dangling");
    const auto l = b.newLabel();
    b.li(intReg(1), 1);
    b.bne(intReg(1), l);
    b.halt();
    b.bind(l); // bound, but no instruction ever follows
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kInvalidTarget));
    EXPECT_TRUE(r.hasErrors());
}

TEST(Analysis, DeadWriteWarns)
{
    ProgramBuilder b("dead");
    b.li(intReg(1), 5);
    b.li(intReg(1), 6); // first write is dead
    b.stq(intReg(1), intReg(kZeroReg), std::int64_t(kDataBase));
    b.halt();
    // Give the store a data word so mem-oob stays quiet.
    // (allocWords must come before build(); emit order is fine.)
    b.allocWords(1);
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kDeadWrite);
    EXPECT_EQ(int(f.severity), int(Severity::Warning));
    EXPECT_EQ(f.block, 0);
    EXPECT_EQ(f.offset, 0);
}

TEST(Analysis, ZeroRegWriteWarns)
{
    ProgramBuilder b("zwrite");
    b.li(intReg(kZeroReg), 42); // discarded
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kZeroRegWrite));
    EXPECT_FALSE(r.hasErrors());
}

TEST(Analysis, SelfBranchWarns)
{
    ProgramBuilder b("selfspin");
    b.li(intReg(1), 0);
    const auto top = b.here();
    b.bne(intReg(1), top); // branch is its own target
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kSelfBranch));
}

TEST(Analysis, BodyLoopIsNotASelfBranch)
{
    // The canonical counted loop branches to its own *block* (the
    // label is bound at the block start) but not to itself.
    ProgramBuilder b("bodyloop");
    b.li(intReg(1), 10);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_FALSE(hasRule(r, rules::kSelfBranch));
}

TEST(Analysis, OutOfBoundsStoreIsAnError)
{
    ProgramBuilder b("oob");
    const Addr base = b.allocWords(4); // data = [base, base+32)
    b.li(intReg(1), std::int64_t(base));
    b.li(intReg(2), 7);
    b.stq(intReg(2), intReg(1), 64); // 32 bytes past the image
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kOobAccess);
    EXPECT_EQ(int(f.severity), int(Severity::Error));
    EXPECT_NE(f.message.find("store"), std::string::npos);
}

TEST(Analysis, LoadBelowDataBaseIsAnError)
{
    ProgramBuilder b("oob-low");
    b.allocWords(4);
    b.ldq(intReg(1), intReg(kZeroReg), 8); // address 8: not data
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(hasRule(r, rules::kOobAccess));
}

TEST(Analysis, InBoundsWindowPatternIsClean)
{
    // The andi/slli/add/ldq window idiom the kernels use: the index
    // interval must stay bounded through the address computation.
    ProgramBuilder b("window");
    const Addr base = b.allocWords(1024);
    b.li(intReg(1), std::int64_t(base));
    b.li(intReg(2), 100000);
    const auto top = b.here();
    b.andi(intReg(3), intReg(2), 1023);
    b.slli(intReg(3), intReg(3), 3);
    b.add(intReg(3), intReg(3), intReg(1));
    b.ldq(intReg(4), intReg(3), 0);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_FALSE(hasRule(r, rules::kOobAccess));
    EXPECT_FALSE(r.hasErrors());
}

TEST(Analysis, MisalignedConstantAddressWarns)
{
    ProgramBuilder b("misaligned");
    const Addr base = b.allocWords(4);
    b.li(intReg(1), std::int64_t(base));
    b.ldq(intReg(2), intReg(1), 4); // straddles the 8-byte grid
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kMisaligned);
    EXPECT_EQ(int(f.severity), int(Severity::Warning));
}

TEST(Analysis, MixDriftFiresOnAMisshapedKernel)
{
    // A program *named* like a suite kernel is held to that kernel's
    // registered mix signature; a branch-free FP-less loop is far
    // from compress's table entry.
    ProgramBuilder b("compress");
    b.li(intReg(1), 100);
    const auto top = b.here();
    b.addi(intReg(2), intReg(1), 1);
    b.addi(intReg(3), intReg(2), 1);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const Finding &f = findRule(r, rules::kMixDrift);
    EXPECT_EQ(int(f.severity), int(Severity::Error));
    EXPECT_EQ(f.block, -1); // whole-program finding
}

TEST(Analysis, MixRuleCanBeDisabled)
{
    ProgramBuilder b("compress");
    b.li(intReg(1), 100);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    analysis::Options opts;
    opts.checkMix = false;
    const Report r = analysis::analyzeProgram(b.build(), opts);
    EXPECT_FALSE(hasRule(r, rules::kMixDrift));
}

TEST(Analysis, UnnamedProgramHasNoMixTarget)
{
    EXPECT_EQ(analysis::mixTargetFor("not-a-kernel"), nullptr);
    EXPECT_NE(analysis::mixTargetFor("tomcatv"), nullptr);
}

// ------------------------------------------------- mix estimation

TEST(Analysis, LoopBodiesDominateTheMixEstimate)
{
    // One load in a loop vs. 20 straight-line ALU ops: the loop body
    // must dominate the weighted estimate.
    ProgramBuilder b("weighted");
    const Addr base = b.allocWords(8);
    for (int i = 0; i < 20; ++i)
        b.li(intReg(3), i);
    b.li(intReg(1), std::int64_t(base));
    b.li(intReg(2), 100);
    const auto top = b.here();
    b.ldq(intReg(4), intReg(1), 0);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    const analysis::MixEstimate est = analysis::estimateMix(b.build());
    // Unweighted, loads would be 1/27 = 3.7%; weighted, 1/3 of the
    // dominant block.
    EXPECT_GT(est.loadPct, 25.0);
    EXPECT_GT(est.condBranchPct, 25.0);
}

// ------------------------------------------------- suites are clean

TEST(Analysis, AllNineKernelsHaveZeroErrors)
{
    for (const auto &w : buildSpec92Suite(2)) {
        const Report r = analysis::analyzeProgram(w.program);
        EXPECT_FALSE(r.hasErrors())
            << w.spec->name << ": " << r.summary()
            << (r.findings.empty()
                    ? ""
                    : "\n  first: " +
                          analysis::formatFinding(r.findings.front()));
    }
}

TEST(Analysis, ClassicSuiteHasZeroErrors)
{
    for (const auto &[name, prog] : buildClassicSuite()) {
        const Report r = analysis::analyzeProgram(prog);
        EXPECT_FALSE(r.hasErrors()) << name << ": " << r.summary();
    }
}

// ------------------------------------------------------- reporting

TEST(Analysis, FindingsAreSortedAndSummaryCounts)
{
    ProgramBuilder b("multi");
    b.li(intReg(kZeroReg), 1);        // warning at block 0
    b.addi(intReg(1), intReg(9), 1);  // error at block 0
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    EXPECT_TRUE(std::is_sorted(
        r.findings.begin(), r.findings.end(),
        [](const Finding &a, const Finding &c) {
            return std::make_tuple(a.block, a.offset, a.rule) <
                   std::make_tuple(c.block, c.offset, c.rule);
        }));
    EXPECT_EQ(r.count(Severity::Error), r.errorCount());
    EXPECT_NE(r.summary().find("error"), std::string::npos);
    EXPECT_NE(r.summary().find("warning"), std::string::npos);
}

TEST(Analysis, FormatFindingMentionsRuleAndLocation)
{
    ProgramBuilder b("fmt");
    b.addi(intReg(1), intReg(9), 1);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const std::string line =
        analysis::formatFinding(findRule(r, rules::kUninitRead));
    EXPECT_NE(line.find("error[dataflow-uninit-read]"),
              std::string::npos);
    EXPECT_NE(line.find("block 0"), std::string::npos);
    EXPECT_NE(line.find("pc 0x1000"), std::string::npos);
}

TEST(Analysis, JsonReportRoundTripsThroughStrictParser)
{
    ProgramBuilder b("json \"quoted\" name");
    b.addi(intReg(1), intReg(9), 1);
    b.halt();
    const Report r = analysis::analyzeProgram(b.build());
    const json::Value v = json::parse(analysis::reportToJson(r));
    EXPECT_EQ(v.at("schema").asString(), "drsim-lint-v1");
    EXPECT_EQ(v.at("program").asString(), "json \"quoted\" name");
    EXPECT_EQ(std::size_t(v.at("errors").asNumber()), r.errorCount());
    const auto &findings = v.at("findings").items();
    ASSERT_EQ(findings.size(), r.findings.size());
    EXPECT_EQ(findings.at(0).at("rule").asString(),
              r.findings.at(0).rule);
    EXPECT_EQ(std::int64_t(findings.at(0).at("block").asNumber()),
              std::int64_t(r.findings.at(0).block));
}

// --------------------------------------------------- verifyProgram

TEST(Analysis, VerifyProgramThrowsOnErrors)
{
    ProgramBuilder b("broken");
    b.addi(intReg(1), intReg(9), 1); // uninit read
    b.halt();
    const Program p = b.build();
    try {
        verifyProgram(p);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("dataflow-uninit-read"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("refusing to simulate"),
                  std::string::npos);
    }
}

TEST(Analysis, VerifyProgramAcceptsWarningsOnly)
{
    ProgramBuilder b("warn-only");
    b.li(intReg(kZeroReg), 1); // zero-reg write: warning
    b.halt();
    EXPECT_NO_THROW(verifyProgram(b.build()));
}

TEST(Analysis, SimulateRefusesBrokenPrograms)
{
    ProgramBuilder b("sim-broken");
    b.li(intReg(1), 1);
    const auto top = b.here();
    b.addi(intReg(1), intReg(1), 1);
    b.br(top); // guaranteed infinite loop
    CoreConfig cfg;
    cfg.maxCommitted = 100;
    EXPECT_THROW(simulateProgram(cfg, b.build()), FatalError);
}

} // namespace
} // namespace drsim
