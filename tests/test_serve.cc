/**
 * @file
 * Tests of the simulation-as-a-service layer (src/serve): the
 * lossless point-record round trip, the content-addressed on-disk
 * cache (persistence across a simulated daemon restart, key
 * sensitivity, corruption recovery, code-version invalidation), the
 * coalescing sweep service (identical concurrent requests cost one
 * simulation), byte-identity of served artifacts against the direct
 * runner for the table1 and fig7 reproductions, and a live-socket
 * exercise of the NDJSON wire protocol (docs/SERVER.md) including
 * malformed requests and the per-request jobs rejection.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "exp/registry.hh"
#include "exp/spec_file.hh"
#include "serve/client.hh"
#include "serve/point_cache.hh"
#include "serve/result_io.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sim/runner.hh"
#include "workloads/kernels.hh"

using namespace drsim;
using namespace drsim::exp;
using namespace drsim::serve;

namespace {

/** Self-deleting scratch directory for cache tests. */
class TmpDir
{
  public:
    explicit TmpDir(const char *tag)
    {
        path_ = std::filesystem::temp_directory_path() /
                ("drsim_serve_test_" + std::string(tag) + "_" +
                 std::to_string(::getpid()));
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TmpDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

/** A small, fast point: one suite benchmark at scale 1, capped. */
PointKey
smallKey(const Workload &w, int regs = 64)
{
    PointKey key;
    key.config = paperConfig(4, regs);
    key.config.maxCommitted = 2000;
    key.workload = w.spec->name;
    key.digest = programDigest(w.program);
    return key;
}

/**
 * Run a grid experiment entirely through a SweepService (fan out all
 * points, reassemble in grid order) and return the schema-v2 JSON —
 * the served counterpart of runExperiments() + resultsJson().
 */
std::string
servedResultsJson(SweepService &service, const ExperimentDef &def,
                  const RunContext &ctx)
{
    const std::vector<ExperimentSpec> specs =
        expandExperiment(def, ctx);
    auto suite = std::make_shared<std::vector<Workload>>(
        buildSuite(def, ctx));

    std::vector<std::string> digests;
    for (const Workload &w : *suite)
        digests.push_back(programDigest(w.program));

    std::vector<std::vector<SimResult>> grid(specs.size());
    for (auto &row : grid)
        row.resize(suite->size());
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = specs.size() * suite->size();
    for (std::size_t si = 0; si < specs.size(); ++si) {
        for (std::size_t wi = 0; wi < suite->size(); ++wi) {
            PointKey key;
            key.config = specs[si].config;
            key.workload = (*suite)[wi].spec->name;
            key.digest = digests[wi];
            std::shared_ptr<const Workload> wl(suite, &(*suite)[wi]);
            service.requestPoint(
                key, wl, [&, si, wi](const PointOutcome &outcome) {
                    EXPECT_TRUE(outcome.ok()) << outcome.error;
                    grid[si][wi] = outcome.result;
                    std::lock_guard<std::mutex> lock(m);
                    --remaining;
                    cv.notify_one();
                });
        }
    }
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return remaining == 0; });
    }

    std::vector<ExperimentResult> results;
    for (std::size_t si = 0; si < specs.size(); ++si) {
        results.push_back(ExperimentResult{
            specs[si], SuiteResult(std::move(grid[si]))});
    }
    const RunInfo info{def.name, ctx.scale, ctx.maxCommitted};
    return resultsJson(info, results);
}

std::string
directResultsJson(const ExperimentDef &def, const RunContext &ctx)
{
    const std::vector<ExperimentSpec> specs =
        expandExperiment(def, ctx);
    const std::vector<Workload> suite = buildSuite(def, ctx);
    const std::vector<ExperimentResult> results =
        runExperiments(specs, suite, 4);
    const RunInfo info{def.name, ctx.scale, ctx.maxCommitted};
    return resultsJson(info, results);
}

TEST(PointRecord, RoundTripsEveryField)
{
    const Workload w = buildWorkload("tomcatv", 1);
    PointKey key = smallKey(w);
    const SimResult direct = simulate(key.config, w);

    const std::string text = pointRecordJson(direct);
    const SimResult parsed = parsePointRecord(text);

    // The serialization is deterministic, so equal records mean
    // equal serializations — and it covers every field.
    EXPECT_EQ(pointRecordJson(parsed), text);
    EXPECT_EQ(parsed.workload, direct.workload);
    EXPECT_EQ(parsed.fpIntensive, direct.fpIntensive);
    EXPECT_EQ(parsed.stopReason, direct.stopReason);
    EXPECT_EQ(parsed.proc.cycles, direct.proc.cycles);
    EXPECT_EQ(parsed.proc.committed, direct.proc.committed);
    EXPECT_EQ(parsed.proc.dqDepth.counts(),
              direct.proc.dqDepth.counts());
    EXPECT_EQ(parsed.lifetime[0].counts(),
              direct.lifetime[0].counts());
    EXPECT_EQ(parsed.dcache.loads, direct.dcache.loads);
    EXPECT_EQ(parsed.loadMissRate, direct.loadMissRate);
}

TEST(PointRecord, RejectsVersionSkewAndCorruption)
{
    const Workload w = buildWorkload("compress", 1);
    const SimResult r = simulate(smallKey(w).config, w);
    std::string text = pointRecordJson(r);

    EXPECT_THROW(parsePointRecord("{\"record\":\"drsim-point-v999\"}"),
                 FatalError);
    EXPECT_THROW(parsePointRecord("[1,2,3]"), FatalError);
    // Truncation cannot parse.
    EXPECT_THROW(parsePointRecord(text.substr(0, text.size() / 2)),
                 FatalError);
}

TEST(JsonSerialize, RoundTripsCompactDocuments)
{
    const std::string doc =
        "{\"name\":\"x\",\"axes\":{\"width\":[4,8],\"model\":"
        "[\"precise\"]},\"export\":false,\"pi\":3.25,\"neg\":-7,"
        "\"big\":9007199254740992,\"null\":null}";
    EXPECT_EQ(json::serialize(json::parse(doc)), doc);
}

TEST(PointCache, PersistsAcrossReopen)
{
    TmpDir dir("persist");
    const Workload w = buildWorkload("espresso", 1);
    const PointKey key = smallKey(w);
    const SimResult r = simulate(key.config, w);

    {
        PointCache cache(dir.str(), "test-rev");
        EXPECT_FALSE(cache.load(key).has_value());
        cache.store(key, r);
        EXPECT_EQ(cache.stats().stores, 1u);
    }
    // A fresh instance over the same directory — the daemon-restart
    // case — must serve the stored result.
    PointCache reopened(dir.str(), "test-rev");
    const auto hit = reopened.load(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(pointRecordJson(*hit), pointRecordJson(r));
    EXPECT_EQ(reopened.stats().hits, 1u);
    EXPECT_EQ(reopened.stats().misses, 0u);
}

TEST(PointCache, KeyCoversEveryResultAffectingInput)
{
    const Workload w = buildWorkload("compress", 1);
    const PointKey base = smallKey(w);
    const std::string baseText = pointKeyText(base, "r");

    PointKey regs = base;
    regs.config.numPhysRegs = 128;
    EXPECT_NE(pointKeyText(regs, "r"), baseText);

    PointKey model = base;
    model.config.exceptionModel = ExceptionModel::Imprecise;
    EXPECT_NE(pointKeyText(model, "r"), baseText);

    PointKey digest = base;
    digest.digest = "0000000000000000";
    EXPECT_NE(pointKeyText(digest, "r"), baseText);

    PointKey pred = base;
    pred.config.predictor = "gshare";
    EXPECT_NE(pointKeyText(pred, "r"), baseText);

    PointKey buses = base;
    buses.config.resultBuses = 2;
    EXPECT_NE(pointKeyText(buses, "r"), baseText);

    // Different workload *programs* (not just names) get different
    // digests, so a generator change silently invalidates.
    EXPECT_NE(programDigest(buildWorkload("compress", 1).program),
              programDigest(buildWorkload("compress", 2).program));

    // The code version is part of the key.
    EXPECT_NE(pointKeyText(base, "r2"), baseText);

    // The two scheduler-implementation knobs are excluded: they are
    // proven bit-identical, so both share cache entries.
    PointKey sched = base;
    sched.config.scanScheduler = !sched.config.scanScheduler;
    sched.config.stallSkipAhead = !sched.config.stallSkipAhead;
    EXPECT_EQ(pointKeyText(sched, "r"), baseText);

    // Tripwire: growing CoreConfig without revisiting pointKeyText()
    // would silently serve stale cache entries for the new knob.  If
    // this fails, add the field to the key text (or document why it
    // cannot affect results, like the scheduler knobs above) and then
    // update the expected size.  x86-64 / libstdc++, matching CI.
    EXPECT_EQ(sizeof(CoreConfig), 224u)
        << "CoreConfig changed — audit pointKeyText() key coverage";
}

TEST(PointCache, KeyCoversSamplingParameters)
{
    // Sampled results are statistical estimates, never interchangeable
    // with full-detail records — every sampling parameter must be
    // key-affecting, and each parameter independently so.
    const Workload w = buildWorkload("compress", 1);
    const PointKey base = smallKey(w);
    const std::string baseText = pointKeyText(base, "r");

    PointKey sampled = base;
    sampled.config.sampling.interval = 40000;
    sampled.config.sampling.window = 1000;
    sampled.config.sampling.warmup = 4000;
    const std::string sampledText = pointKeyText(sampled, "r");
    EXPECT_NE(sampledText, baseText);

    PointKey interval = sampled;
    interval.config.sampling.interval = 50000;
    EXPECT_NE(pointKeyText(interval, "r"), sampledText);

    PointKey window = sampled;
    window.config.sampling.window = 2000;
    EXPECT_NE(pointKeyText(window, "r"), sampledText);

    PointKey warmup = sampled;
    warmup.config.sampling.warmup = 3000;
    EXPECT_NE(pointKeyText(warmup, "r"), sampledText);
}

TEST(PointRecord, RoundTripsSampledBlock)
{
    const Workload w = buildWorkload("compress", 2);
    PointKey key = smallKey(w);
    key.config.maxCommitted = 0;
    key.config.sampling.interval = 2000;
    key.config.sampling.window = 200;
    key.config.sampling.warmup = 400;
    const SimResult direct = simulate(key.config, w);
    ASSERT_TRUE(direct.sampled.enabled);
    ASSERT_GT(direct.sampled.windows, 0u);

    const std::string text = pointRecordJson(direct);
    const SimResult parsed = parsePointRecord(text);
    EXPECT_EQ(pointRecordJson(parsed), text);
    EXPECT_TRUE(parsed.sampled.enabled);
    EXPECT_EQ(parsed.sampled.windows, direct.sampled.windows);
    EXPECT_EQ(parsed.sampled.fastForwarded,
              direct.sampled.fastForwarded);
    EXPECT_EQ(parsed.sampled.warmupInsts, direct.sampled.warmupInsts);
    EXPECT_EQ(parsed.sampled.measuredInsts,
              direct.sampled.measuredInsts);
    EXPECT_EQ(parsed.sampled.measuredCycles,
              direct.sampled.measuredCycles);
    EXPECT_EQ(parsed.sampled.ipcEstimate, direct.sampled.ipcEstimate);
    EXPECT_EQ(parsed.sampled.ci95, direct.sampled.ci95);
}

TEST(PointCache, CorruptEntryRecomputesInsteadOfCrashing)
{
    TmpDir dir("corrupt");
    const Workload w = buildWorkload("compress", 1);
    const PointKey key = smallKey(w);
    const SimResult r = simulate(key.config, w);

    PointCache cache(dir.str(), "test-rev");
    cache.store(key, r);
    const std::string path = cache.entryPath(key);

    // Truncate the envelope mid-file.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"drsim_cache\":1,\"key\":\"tru";
    }
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // The bad entry was unlinked so it cannot poison the next load.
    EXPECT_FALSE(std::filesystem::exists(path));

    // Recompute-and-store works again.
    cache.store(key, r);
    EXPECT_TRUE(cache.load(key).has_value());

    // Arbitrary garbage is handled the same way.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "not json at all";
    }
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(PointCache, RevBumpRetiresOldEntries)
{
    TmpDir dir("rev");
    const Workload w = buildWorkload("compress", 1);
    const PointKey key = smallKey(w);
    const SimResult r = simulate(key.config, w);

    PointCache v1(dir.str(), "sim-v1");
    v1.store(key, r);
    ASSERT_TRUE(v1.load(key).has_value());

    // Same directory, bumped code version: miss, not a wrong hit.
    PointCache v2(dir.str(), "sim-v2");
    EXPECT_FALSE(v2.load(key).has_value());
}

TEST(SweepService, IdenticalConcurrentRequestsCoalesce)
{
    TmpDir dir("coalesce");
    // One worker, and a plug point whose completion callback blocks
    // until every coalescing request has been submitted: the worker
    // cannot reach the shared point's compute task early, so all
    // five requests deterministically find the in-flight entry.
    SweepService service(dir.str(), 1);

    const Workload w = buildWorkload("tomcatv", 2);
    const PointKey key = smallKey(w);
    auto wl = std::make_shared<const Workload>(w);

    std::mutex m;
    std::condition_variable cv;
    bool submitted = false;
    std::size_t remaining = 5;
    std::size_t coalesced = 0;
    std::vector<std::string> records;
    service.requestPoint(smallKey(w, 128), wl,
                         [&](const PointOutcome &out) {
                             EXPECT_TRUE(out.ok()) << out.error;
                             std::unique_lock<std::mutex> lock(m);
                             cv.wait(lock, [&] { return submitted; });
                         });
    for (std::size_t i = 0; i < 5; ++i) {
        service.requestPoint(key, wl, [&](const PointOutcome &out) {
            EXPECT_TRUE(out.ok()) << out.error;
            std::lock_guard<std::mutex> lock(m);
            records.push_back(pointRecordJson(out.result));
            if (out.coalesced)
                ++coalesced;
            --remaining;
            cv.notify_one();
        });
    }
    {
        std::lock_guard<std::mutex> lock(m);
        submitted = true;
        cv.notify_all();
    }
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return remaining == 0; });
    }

    const SweepService::Stats stats = service.stats();
    EXPECT_EQ(stats.points, 6u);          // plug + 5 shared
    EXPECT_EQ(stats.computed, 2u);        // one simulation per key
    EXPECT_EQ(stats.coalesced, 4u);
    EXPECT_EQ(stats.inFlight, 0u);
    EXPECT_EQ(service.cache().stats().stores, 2u);
    EXPECT_EQ(coalesced, 4u);
    for (const std::string &rec : records)
        EXPECT_EQ(rec, records.front());

    // A later identical request is a memory hit, still no simulation.
    const PointOutcome again = service.runPoint(key, w);
    EXPECT_TRUE(again.cacheHit);
    EXPECT_EQ(service.stats().computed, 2u);
    EXPECT_EQ(service.stats().memoryHits, 1u);
}

TEST(SweepService, ServedTable1IsByteIdenticalToDirect)
{
    TmpDir dir("table1");
    const ExperimentDef *def = findExperiment("table1");
    ASSERT_NE(def, nullptr);
    RunContext ctx;
    ctx.scale = 1;
    ctx.maxCommitted = 2000;
    ctx.jobs = 4;

    const std::string direct = directResultsJson(*def, ctx);
    std::string cold, warm, reopened;
    {
        SweepService service(dir.str(), 4);
        cold = servedResultsJson(service, *def, ctx);
        warm = servedResultsJson(service, *def, ctx);
        const SweepService::Stats stats = service.stats();
        EXPECT_EQ(stats.computed, stats.points / 2);
        EXPECT_EQ(stats.memoryHits + stats.coalesced,
                  stats.points / 2);
    }
    {
        // Fresh service over the same cache directory: the simulated
        // daemon restart.  Everything must come from disk.
        SweepService service(dir.str(), 4);
        reopened = servedResultsJson(service, *def, ctx);
        EXPECT_EQ(service.stats().computed, 0u);
        EXPECT_EQ(service.cache().stats().hits,
                  service.stats().points);
    }
    EXPECT_EQ(cold, direct);
    EXPECT_EQ(warm, direct);
    EXPECT_EQ(reopened, direct);
}

TEST(SweepService, ServedFig7IsByteIdenticalToDirect)
{
    TmpDir dir("fig7");
    const ExperimentDef *def = findExperiment("fig7");
    ASSERT_NE(def, nullptr);
    RunContext ctx;
    ctx.scale = 1;
    ctx.maxCommitted = 1000;
    ctx.jobs = 4;

    const std::string direct = directResultsJson(*def, ctx);
    SweepService service(dir.str(), 4);
    EXPECT_EQ(servedResultsJson(service, *def, ctx), direct);
    EXPECT_EQ(servedResultsJson(service, *def, ctx), direct);
    EXPECT_EQ(service.stats().computed, service.stats().points / 2);
}

/** Everything the protocol promises, over a real loopback socket. */
TEST(Protocol, EndToEndOverLoopback)
{
    TmpDir dir("socket");
    ServerOptions opts;
    opts.port = 0;
    opts.cacheDir = dir.str();
    opts.jobs = 4;
    opts.scale = 1;
    opts.maxCommitted = 2000;
    Server server(std::move(opts));
    const int port = server.start();
    std::thread serving([&server] { server.serve(); });
    const std::string hostPort =
        "127.0.0.1:" + std::to_string(port);

    {
        ServeClient client(hostPort);

        client.sendLine("{\"verb\":\"ping\",\"id\":\"t1\"}");
        json::Value reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "pong");
        EXPECT_EQ(reply.at("id").asString(), "t1");

        // Malformed JSON gets an error reply, not a disconnect.
        client.sendLine("this is not json {");
        reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "error");
        EXPECT_EQ(reply.at("code").asString(), "bad-json");

        // The connection is still usable afterwards.
        client.sendLine("{\"verb\":\"ping\"}");
        EXPECT_EQ(client.readReply().at("reply").asString(), "pong");

        // Per-request job counts are rejected by design.
        client.sendLine("{\"verb\":\"run\",\"experiment\":\"table1\","
                        "\"jobs\":8}");
        reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "error");
        EXPECT_EQ(reply.at("code").asString(), "jobs-not-allowed");

        client.sendLine("{\"verb\":\"run\",\"experiment\":\"nope\"}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "unknown-experiment");
        client.sendLine("{\"verb\":\"run\",\"experiment\":\"micro\"}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "custom-experiment");
        client.sendLine("{\"verb\":\"frobnicate\"}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "unknown-verb");
        client.sendLine("{\"verb\":\"run\",\"experiment\":\"table1\","
                        "\"typo\":1}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "bad-request");

        // A one-spec sweep over the full suite, with the document.
        const std::string run =
            "{\"verb\":\"run\",\"id\":\"r1\",\"spec\":"
            "{\"name\":\"tiny\",\"axes\":{\"width\":[4],"
            "\"regs\":[64]}},\"scale\":1,\"max_committed\":2000,"
            "\"document\":true}";
        client.sendLine(run);
        reply = client.readReply();
        ASSERT_EQ(reply.at("reply").asString(), "ack");
        const std::uint64_t points = reply.at("points").asU64();
        EXPECT_EQ(points, buildSpec92Suite(1).size());

        std::uint64_t got = 0, coldHits = 0;
        std::string document;
        for (;;) {
            reply = client.readReply();
            const std::string &kind = reply.at("reply").asString();
            if (kind == "point") {
                ++got;
                if (reply.at("cache_hit").asBool())
                    ++coldHits;
                EXPECT_EQ(reply.at("computed_at_rev").asString(),
                          pointCacheRev());
                // Each record must parse back losslessly.
                const SimResult r =
                    parsePointRecord(reply.at("result"));
                EXPECT_EQ(r.workload,
                          reply.at("workload").asString());
            } else if (kind == "document") {
                document = reply.at("json").asString();
            } else {
                ASSERT_EQ(kind, "done");
                break;
            }
        }
        EXPECT_EQ(got, points);
        EXPECT_EQ(coldHits, 0u);
        EXPECT_EQ(reply.at("cache_hits").asU64(), 0u);
        EXPECT_EQ(reply.at("computed").asU64(), points);

        // The served document is the direct runner's, byte for byte.
        SweepSpec spec;
        spec.name = "tiny";
        spec.axes.push_back({"width", {4}, {}});
        spec.axes.push_back({"regs", {64}, {}});
        std::vector<ExperimentSpec> specs = expandGrid(toGrid(spec));
        for (ExperimentSpec &s : specs)
            s.config.maxCommitted = 2000;
        const std::vector<ExperimentResult> results =
            runExperiments(specs, buildSpec92Suite(1), 4);
        EXPECT_EQ(document,
                  resultsJson(RunInfo{"tiny", 1, 2000}, results));

        // Rerun: every point served from cache, same records.
        client.sendLine(run);
        ASSERT_EQ(client.readReply().at("reply").asString(), "ack");
        std::uint64_t warmHits = 0;
        for (;;) {
            reply = client.readReply();
            const std::string &kind = reply.at("reply").asString();
            if (kind == "point") {
                if (reply.at("cache_hit").asBool())
                    ++warmHits;
            } else if (kind == "done") {
                EXPECT_EQ(reply.at("cache_hits").asU64(), points);
                EXPECT_EQ(reply.at("computed").asU64(), 0u);
                break;
            } else {
                ASSERT_EQ(kind, "document");
                EXPECT_EQ(reply.at("json").asString(), document);
            }
        }
        EXPECT_EQ(warmHits, points);

        // Stats reflect all of the above.
        client.sendLine("{\"verb\":\"stats\"}");
        reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "stats");
        EXPECT_EQ(reply.at("jobs").asU64(), 4u);
        EXPECT_EQ(reply.at("computed").asU64(), points);
        EXPECT_EQ(reply.at("memory_hits").asU64(), points);
        EXPECT_EQ(reply.at("in_flight").asU64(), 0u);
    }

    server.requestStop();
    serving.join();
}

TEST(Protocol, SamplingKeyValidatedAndApplied)
{
    TmpDir dir("sampling");
    ServerOptions opts;
    opts.port = 0;
    opts.cacheDir = dir.str();
    opts.jobs = 2;
    opts.scale = 1;
    opts.maxCommitted = 4000;
    Server server(std::move(opts));
    const int port = server.start();
    std::thread serving([&server] { server.serve(); });

    {
        ServeClient client("127.0.0.1:" + std::to_string(port));
        const std::string spec =
            "\"spec\":{\"name\":\"tiny\",\"axes\":{\"width\":[4],"
            "\"regs\":[64]}}";

        // Not an object.
        client.sendLine("{\"verb\":\"run\"," + spec +
                        ",\"sampling\":5}");
        json::Value reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "error");
        EXPECT_EQ(reply.at("code").asString(), "bad-request");

        // Unknown key inside the sampling object.
        client.sendLine("{\"verb\":\"run\"," + spec +
                        ",\"sampling\":{\"interval\":600,"
                        "\"window\":100,\"warmup\":100,\"x\":1}}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "bad-request");

        // Infeasible: interval must exceed warmup + window.
        client.sendLine("{\"verb\":\"run\"," + spec +
                        ",\"sampling\":{\"interval\":200,"
                        "\"window\":100,\"warmup\":100}}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "bad-request");

        // Missing field.
        client.sendLine("{\"verb\":\"run\"," + spec +
                        ",\"sampling\":{\"interval\":600}}");
        EXPECT_EQ(client.readReply().at("code").asString(),
                  "bad-request");

        // A valid sampled run: every point record carries the
        // sampled block.
        client.sendLine("{\"verb\":\"run\",\"id\":\"s1\"," + spec +
                        ",\"sampling\":{\"interval\":600,"
                        "\"window\":100,\"warmup\":100}}");
        reply = client.readReply();
        ASSERT_EQ(reply.at("reply").asString(), "ack");
        const std::uint64_t points = reply.at("points").asU64();
        std::uint64_t sampledPoints = 0;
        for (;;) {
            reply = client.readReply();
            if (reply.at("reply").asString() == "done")
                break;
            ASSERT_EQ(reply.at("reply").asString(), "point");
            const SimResult r = parsePointRecord(reply.at("result"));
            if (r.sampled.enabled)
                ++sampledPoints;
        }
        EXPECT_EQ(sampledPoints, points);

        // The identical request *without* sampling must not reuse
        // the sampled cache entries: all points recompute, and the
        // records are full-detail.
        client.sendLine("{\"verb\":\"run\",\"id\":\"s2\"," + spec +
                        "}");
        reply = client.readReply();
        ASSERT_EQ(reply.at("reply").asString(), "ack");
        std::uint64_t cacheHits = 0, fullPoints = 0;
        for (;;) {
            reply = client.readReply();
            if (reply.at("reply").asString() == "done")
                break;
            if (reply.at("cache_hit").asBool())
                ++cacheHits;
            const SimResult r = parsePointRecord(reply.at("result"));
            if (!r.sampled.enabled)
                ++fullPoints;
        }
        EXPECT_EQ(cacheHits, 0u);
        EXPECT_EQ(fullPoints, points);
    }

    server.requestStop();
    serving.join();
}

TEST(Protocol, StatsReportsCheckpointLibraryCounters)
{
    TmpDir dir("ckptstats");
    ServerOptions opts;
    opts.port = 0;
    opts.cacheDir = dir.str();
    opts.jobs = 2;
    opts.scale = 1;
    opts.maxCommitted = 4000;
    Server server(std::move(opts));
    const int port = server.start();
    std::thread serving([&server] { server.serve(); });

    {
        ServeClient client("127.0.0.1:" + std::to_string(port));

        client.sendLine("{\"verb\":\"stats\"}");
        json::Value before = client.readReply();
        ASSERT_EQ(before.at("reply").asString(), "stats");
        const std::uint64_t gen0 =
            before.at("ckpt_generated").asU64();

        // A sampled sweep with two register points per workload
        // exercises the library: the first point of each workload
        // generates its plan, the second reuses it from memory.
        client.sendLine(
            "{\"verb\":\"run\",\"spec\":{\"name\":\"tiny\","
            "\"axes\":{\"width\":[4],\"regs\":[64,80]}},"
            "\"sampling\":{\"interval\":600,\"window\":100,"
            "\"warmup\":100,\"warmff\":200}}");
        json::Value reply = client.readReply();
        ASSERT_EQ(reply.at("reply").asString(), "ack");
        for (;;) {
            reply = client.readReply();
            if (reply.at("reply").asString() == "done")
                break;
        }

        client.sendLine("{\"verb\":\"stats\"}");
        json::Value after = client.readReply();
        ASSERT_EQ(after.at("reply").asString(), "stats");
        EXPECT_GT(after.at("ckpt_generated").asU64(), gen0);
        EXPECT_GT(after.at("ckpt_memory_hits").asU64(), 0u);
        // The remaining counters are present and parse as numbers.
        for (const char *key :
             {"ckpt_hits", "ckpt_misses", "ckpt_corrupt",
              "ckpt_stores", "ckpt_evicted", "ckpt_coalesced"}) {
            EXPECT_NO_THROW(after.at(key).asU64()) << key;
        }
    }

    server.requestStop();
    serving.join();
}

TEST(Protocol, RecvEintrRetriesInsteadOfDisconnecting)
{
    // Regression test: a signal delivered to a connection thread
    // parked in recv() used to be treated as a disconnect (recv
    // returns -1/EINTR, and the old loop broke on any n <= 0).
    // Install a no-op handler *without* SA_RESTART so the syscall
    // genuinely returns EINTR rather than restarting transparently.
    struct sigaction sa = {};
    sa.sa_handler = +[](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    TmpDir dir("eintr");
    ServerOptions opts;
    opts.port = 0;
    opts.cacheDir = dir.str();
    opts.jobs = 1;
    opts.scale = 1;
    opts.maxCommitted = 500;
    Server server(std::move(opts));
    const int port = server.start();
    std::thread serving([&server] { server.serve(); });

    {
        ServeClient client("127.0.0.1:" + std::to_string(port));
        client.sendLine("{\"verb\":\"ping\",\"id\":\"before\"}");
        EXPECT_EQ(client.readReply().at("reply").asString(), "pong");

        // The connection thread is now parked in recv(); interrupt
        // it repeatedly, then prove the connection survived.
        for (int i = 0; i < 5; ++i) {
            server.interruptConnectionsForTest(SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        client.sendLine("{\"verb\":\"ping\",\"id\":\"after\"}");
        const json::Value reply = client.readReply();
        EXPECT_EQ(reply.at("reply").asString(), "pong");
        EXPECT_EQ(reply.at("id").asString(), "after");
    }

    server.requestStop();
    serving.join();
    ::sigaction(SIGUSR1, &old, nullptr);
}

} // namespace
