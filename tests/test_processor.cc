/**
 * @file
 * Behavioral tests for the out-of-order core: latencies, issue
 * limits, memory ordering, misprediction recovery, register-pressure
 * stalls, and the exception models — on small handcrafted programs
 * where the expected machine behaviour can be reasoned out exactly.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/processor.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

CoreConfig
baseConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 256;
    cfg.exceptionModel = ExceptionModel::Precise;
    cfg.cacheKind = CacheKind::LockupFree;
    cfg.auditInterval = 64; // heavy self-checking in tests
    cfg.deadlockCycles = 50000;
    // Microbenchmarks here are mostly straight-line code; cold
    // I-misses would swamp the latencies under test.
    cfg.perfectICache = true;
    return cfg;
}

/** N instructions, each dependent on the previous one. */
Program
dependentChain(int n)
{
    ProgramBuilder b("chain");
    for (int i = 0; i < n; ++i)
        b.addi(intReg(1), intReg(1), 1);
    b.halt();
    return b.build();
}

/** N independent single-cycle instructions. */
Program
independentOps(int n)
{
    ProgramBuilder b("indep");
    for (int i = 0; i < n; ++i)
        b.addi(intReg(1 + (i % 24)), intReg(28), i);
    b.halt();
    return b.build();
}

TEST(Processor, DependentChainIssuesOnePerCycle)
{
    const int n = 64;
    CoreConfig cfg = baseConfig();
    Program prog = dependentChain(n);
    Processor proc(cfg, prog);
    proc.run();
    // One issue per cycle plus a small pipeline prologue/epilogue.
    EXPECT_GE(proc.stats().cycles, Cycle(n));
    EXPECT_LE(proc.stats().cycles, Cycle(n + 8));
    EXPECT_EQ(proc.stats().committed, std::uint64_t(n + 1));
    // Nothing speculative here: executed == committed.
    EXPECT_EQ(proc.stats().executed, proc.stats().committed);
    EXPECT_EQ(proc.emulator().intRegBits(1), std::uint64_t(n));
}

TEST(Processor, IndependentOpsApproachIssueWidth)
{
    const int n = 256;
    CoreConfig cfg = baseConfig();
    Program prog = independentOps(n);
    Processor proc(cfg, prog);
    proc.run();
    const double ipc = proc.stats().commitIpc();
    EXPECT_GT(ipc, 3.4); // bounded by the 4-wide issue stage
    EXPECT_LE(ipc, 4.0);
}

TEST(Processor, EightWideDoublesIndependentThroughput)
{
    const int n = 512;
    CoreConfig cfg = baseConfig();
    cfg.issueWidth = 8;
    cfg.dqSize = 64;
    Program prog = independentOps(n);
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_GT(proc.stats().commitIpc(), 6.5);
    EXPECT_LE(proc.stats().commitIpc(), 8.0);
}

TEST(Processor, IntMultiplyLatencySix)
{
    // A chain of K dependent multiplies costs ~6K cycles.
    const int k = 20;
    ProgramBuilder b("mulchain");
    b.li(intReg(1), 1);
    for (int i = 0; i < k; ++i)
        b.muli(intReg(1), intReg(1), 1);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(6 * k));
    EXPECT_LE(proc.stats().cycles, Cycle(6 * k + 10));
}

TEST(Processor, FpAddLatencyThreePipelined)
{
    // Dependent fadd chain: ~3 cycles per link.
    const int k = 20;
    ProgramBuilder b("faddchain");
    for (int i = 0; i < k; ++i)
        b.fadd(fpReg(1), fpReg(1), fpReg(2));
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(3 * k));
    EXPECT_LE(proc.stats().cycles, Cycle(3 * k + 10));
}

TEST(Processor, UnpipelinedDividerSerializes)
{
    // Independent double divides on a 4-way machine (one divider):
    // each occupies the unit for 16 cycles.
    const int k = 8;
    ProgramBuilder b("divs");
    for (int i = 0; i < k; ++i)
        b.fdivd(fpReg(1 + i), fpReg(20), fpReg(21));
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(16 * k));

    // The 8-way machine has two dividers: roughly half the time.
    CoreConfig cfg8 = baseConfig();
    cfg8.issueWidth = 8;
    cfg8.dqSize = 64;
    ProgramBuilder b8("divs8");
    for (int i = 0; i < k; ++i)
        b8.fdivd(fpReg(1 + i), fpReg(20), fpReg(21));
    b8.halt();
    Processor proc8(cfg8, b8.build());
    proc8.run();
    EXPECT_LE(proc8.stats().cycles, Cycle(16 * k / 2 + 24));
}

TEST(Processor, PipelinedFpSustainsThroughput)
{
    // Independent fadds: fully pipelined, limited only by the 2-per-
    // cycle FP issue limit of the 4-way machine.
    const int k = 128;
    ProgramBuilder b("fps");
    for (int i = 0; i < k; ++i)
        b.fadd(fpReg(1 + (i % 24)), fpReg(25), fpReg(26));
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    // ~2 FP issues per cycle.
    EXPECT_LE(proc.stats().cycles, Cycle(k / 2 + 16));
    EXPECT_GE(proc.stats().cycles, Cycle(k / 2));
}

TEST(Processor, LoadHitUseLatency)
{
    // chain: load (hit after warmup) -> dependent add, repeated.
    // First touch misses; afterwards, each load-use link costs
    // hit(1) + load-delay slot(1) + add(1) = 3 cycles.
    const int k = 30;
    ProgramBuilder b("ldchain");
    const Addr buf = b.allocWords(1);
    b.initWord(buf, std::int64_t(buf)); // points to itself
    b.li(intReg(1), std::int64_t(buf));
    for (int i = 0; i < k; ++i) {
        b.ldq(intReg(1), intReg(1), 0);
        b.andi(intReg(1), intReg(1), ~0ll);
    }
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(3 * k));
    EXPECT_LE(proc.stats().cycles, Cycle(3 * k + 30));
    EXPECT_EQ(proc.dcache().stats().loadMisses, 1u);
}

TEST(Processor, ColdMissCostsFetchLatency)
{
    // A single dependent cold load adds ~hit+miss+delay cycles.
    ProgramBuilder b("coldmiss");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.ldq(intReg(2), intReg(1), 0);
    b.addi(intReg(3), intReg(2), 1);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    // issue(ld)=c2 -> value ready c2+18; add issues then; +complete,
    // +commit: ~24 cycles total.
    EXPECT_GE(proc.stats().cycles, Cycle(20));
    EXPECT_LE(proc.stats().cycles, Cycle(28));
    EXPECT_EQ(proc.dcache().stats().loadMisses, 1u);
}

TEST(Processor, StoreToLoadForwarding)
{
    ProgramBuilder b("fwd");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 77);
    b.stq(intReg(2), intReg(1), 0);
    b.ldq(intReg(3), intReg(1), 0); // must forward from the store
    b.addi(intReg(4), intReg(3), 1);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.stats().forwardedLoads, 1u);
    // The forwarded load never touched the cache: no miss.
    EXPECT_EQ(proc.dcache().stats().loadMisses, 0u);
    EXPECT_EQ(proc.emulator().intRegBits(4), 78u);
}

TEST(Processor, LoadBypassesSlowUnrelatedStore)
{
    // The store's data depends on a long multiply chain; the load is
    // to a different address and must not wait for it.
    ProgramBuilder b("bypass");
    const Addr a = b.allocWords(1);
    const Addr c = b.allocWords(8);
    b.initWord(c, 5);
    b.li(intReg(1), std::int64_t(a));
    b.li(intReg(2), std::int64_t(c));
    b.li(intReg(3), 3);
    for (int i = 0; i < 10; ++i)
        b.muli(intReg(3), intReg(3), 1);  // 60-cycle chain
    b.stq(intReg(3), intReg(1), 0);       // waits for the chain
    b.ldq(intReg(4), intReg(2), 0);       // independent load
    b.addi(intReg(5), intReg(4), 1);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    // Serialized execution would be ~60 (chain) + ~20 (cold miss);
    // with bypassing, the load overlaps the chain.
    EXPECT_LE(proc.stats().cycles, Cycle(75));
    EXPECT_EQ(proc.emulator().intRegBits(5), 6u);
}

TEST(Processor, LoadWaitsForMatchingStore)
{
    // Same-address load must wait for (and forward from) the slow
    // store rather than reading stale memory.
    ProgramBuilder b("order");
    const Addr a = b.allocWords(1);
    b.initWord(a, 1);
    b.li(intReg(1), std::int64_t(a));
    b.li(intReg(3), 7);
    for (int i = 0; i < 6; ++i)
        b.muli(intReg(3), intReg(3), 1);
    b.stq(intReg(3), intReg(1), 0);
    b.ldq(intReg(4), intReg(1), 0);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.stats().forwardedLoads, 1u);
    EXPECT_EQ(proc.emulator().intRegBits(4), 7u);
    EXPECT_GE(proc.stats().cycles, Cycle(36)); // waited for the chain
}

TEST(Processor, MispredictRecoveryExecutesCorrectly)
{
    // Data-dependent branches from a table: heavy misprediction, but
    // the committed results must equal the architectural execution.
    ProgramBuilder b("mispred");
    Rng rng(3);
    const Addr tab = b.allocWords(256);
    for (int i = 0; i < 256; ++i)
        b.initWord(tab + i * 8, rng.next());
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), 200);          // trip count
    b.li(intReg(3), 0);            // accumulator
    b.li(intReg(6), 0);            // index
    const auto top = b.here();
    const auto skip = b.newLabel();
    b.andi(intReg(4), intReg(6), 255);
    b.slli(intReg(4), intReg(4), 3);
    b.add(intReg(4), intReg(4), intReg(1));
    b.ldq(intReg(5), intReg(4), 0);
    b.andi(intReg(5), intReg(5), 1);   // random bit
    b.beq(intReg(5), skip);
    b.addi(intReg(3), intReg(3), 1);
    b.bind(skip);
    b.addi(intReg(6), intReg(6), 1);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    const Program prog = b.build();

    // Architectural reference.
    Emulator ref(prog);
    while (!ref.fetchBlocked())
        ref.stepArch();

    CoreConfig cfg = baseConfig();
    Processor proc(cfg, Program(prog));
    proc.run();

    EXPECT_GT(proc.stats().recoveries, 20u);
    EXPECT_GT(proc.stats().squashedInsts, 0u);
    EXPECT_GT(proc.stats().executed, proc.stats().committed);
    EXPECT_EQ(proc.stats().committed, ref.stepsExecuted());
    EXPECT_EQ(proc.emulator().stateHash(), ref.stateHash());
    EXPECT_EQ(proc.emulator().intRegBits(3), ref.intRegBits(3));
}

TEST(Processor, PredictableLoopRarelyMispredicts)
{
    ProgramBuilder b("loop");
    b.li(intReg(1), 500);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_LT(proc.stats().mispredictRate(), 0.05);
}

TEST(Processor, DispatchQueueBoundRespected)
{
    // With a tiny dispatch queue the window of *unissued* work is
    // capped; the run still completes correctly.
    CoreConfig cfg = baseConfig();
    cfg.dqSize = 4;
    Program prog = independentOps(200);
    Processor proc(cfg, prog);
    while (!proc.done()) {
        proc.tick();
        EXPECT_LE(proc.dqOccupancy(), 4u);
    }
    EXPECT_EQ(proc.stats().committed, 201u);
    EXPECT_GT(proc.stats().insertStallDqFullCycles, 0u);
}

TEST(Processor, WindowExceedsDispatchQueue)
{
    // Entries leave the queue at issue, so the in-flight window can
    // grow far beyond the queue size when a long miss blocks commit
    // (the paper's tomcatv/Figure-5 effect).
    ProgramBuilder b("window");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.ldq(intReg(2), intReg(1), 0);       // cold miss
    b.addi(intReg(3), intReg(2), 1);      // depends on the miss
    for (int i = 0; i < 40; ++i)          // independent work
        b.addi(intReg(4 + (i % 20)), intReg(28), i);
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.dqSize = 8;
    Processor proc(cfg, b.build());
    std::size_t max_window = 0;
    while (!proc.done()) {
        proc.tick();
        max_window = std::max(max_window, proc.windowSize());
    }
    EXPECT_GT(max_window, 16u); // far beyond the 8-entry queue
}

TEST(Processor, MinimumRegisterFileMakesProgress)
{
    // 32 physical registers is the paper's minimum viable size; the
    // machine crawls but must not deadlock.
    CoreConfig cfg = baseConfig();
    cfg.numPhysRegs = 32;
    Program prog = dependentChain(100);
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_EQ(proc.stats().committed, 101u);
    EXPECT_GT(proc.stats().insertStallNoRegCycles, 0u);
    EXPECT_GT(proc.stats().noFreeRegCycles, 0u);
}

TEST(Processor, MoreRegistersNeverHurtIpc)
{
    Program p64 = independentOps(400);
    CoreConfig small = baseConfig();
    small.numPhysRegs = 36;
    CoreConfig big = baseConfig();
    big.numPhysRegs = 256;
    Processor ps(small, p64);
    ps.run();
    Program p64b = independentOps(400);
    Processor pb(big, p64b);
    pb.run();
    EXPECT_LE(ps.stats().commitIpc(), pb.stats().commitIpc() + 1e-9);
}

TEST(Processor, ImpreciseModelFreesFaster)
{
    // Under register pressure the imprecise model frees registers
    // earlier and must not be slower.
    ProgramBuilder bp("press");
    Rng rng(9);
    const Addr tab = bp.allocWords(4096);
    for (int i = 0; i < 4096; ++i)
        bp.initWord(tab + i * 8, rng.next());
    bp.li(intReg(1), std::int64_t(tab));
    bp.li(intReg(2), 300);
    const auto top = bp.here();
    bp.andi(intReg(3), intReg(2), 4095);
    bp.slli(intReg(3), intReg(3), 3);
    bp.add(intReg(3), intReg(3), intReg(1));
    bp.ldq(intReg(4), intReg(3), 0);
    bp.add(intReg(5), intReg(4), intReg(2));
    bp.muli(intReg(6), intReg(5), 3);
    bp.subi(intReg(2), intReg(2), 1);
    bp.bne(intReg(2), top);
    bp.halt();
    const Program prog = bp.build();

    CoreConfig precise = baseConfig();
    precise.numPhysRegs = 34;
    CoreConfig imprecise = precise;
    imprecise.exceptionModel = ExceptionModel::Imprecise;

    Processor pp(precise, Program(prog));
    pp.run();
    Processor pi(imprecise, Program(prog));
    pi.run();

    EXPECT_EQ(pp.stats().committed, pi.stats().committed);
    EXPECT_LE(pi.stats().cycles, pp.stats().cycles);
    // And the imprecise run keeps fewer registers live.
    const auto p90p = pp.stats().live[0][3].percentile(0.9);
    const auto p90i = pi.stats().live[0][3].percentile(0.9);
    EXPECT_LE(p90i, p90p);
}

TEST(Processor, ShadowAccountingNestingInvariant)
{
    // In a precise run, the four nested liveness sums are sampled per
    // cycle; each level's histogram must dominate the previous one.
    CoreConfig cfg = baseConfig();
    Program prog = independentOps(300);
    Processor proc(cfg, prog);
    proc.run();
    for (int c = 0; c < kNumRegClasses; ++c) {
        for (int level = 1; level < 4; ++level) {
            EXPECT_GE(proc.stats().live[c][level].mean(),
                      proc.stats().live[c][level - 1].mean());
        }
        // Total live can never exceed the physical file size.
        EXPECT_LE(proc.stats().live[c][3].maxValue(),
                  std::uint64_t(cfg.numPhysRegs));
        // At least the 31 architectural mappings are always live.
        EXPECT_GE(proc.stats().live[c][3].percentile(0.0001), 31u);
    }
}

TEST(Processor, MaxCommittedStopsEarly)
{
    CoreConfig cfg = baseConfig();
    cfg.maxCommitted = 50;
    Program prog = independentOps(10000);
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_EQ(int(proc.stopReason()), int(StopReason::InstLimit));
    EXPECT_GE(proc.stats().committed, 50u);
    EXPECT_LE(proc.stats().committed, 50u + 8u);
}

TEST(Processor, CommitBandwidthBound)
{
    CoreConfig cfg = baseConfig();
    Program prog = independentOps(400);
    Processor proc(cfg, prog);
    proc.run();
    // cycles * 2W >= committed
    EXPECT_GE(proc.stats().cycles * 8, proc.stats().committed);
}

TEST(Processor, CacheKindPerformanceOrdering)
{
    // Independent pseudo-random probes into a 1 MB table: nearly every
    // probe misses, so miss handling dominates and the organizations
    // order as perfect < lockup-free < lockup (paper Figure 7).
    auto make = [] {
        ProgramBuilder b("probes");
        const Addr arr = b.allocWords(131072); // 1 MB
        b.li(intReg(1), std::int64_t(arr));
        b.li(intReg(2), 400);
        b.li(intReg(3), 0x9e3779b9);
        const auto top = b.here();
        // xorshift-ish index; two independent probes per iteration.
        b.slli(intReg(4), intReg(3), 13);
        b.xor_(intReg(3), intReg(3), intReg(4));
        b.srli(intReg(4), intReg(3), 7);
        b.xor_(intReg(3), intReg(3), intReg(4));
        b.andi(intReg(5), intReg(3), 131071);
        b.slli(intReg(5), intReg(5), 3);
        b.add(intReg(5), intReg(5), intReg(1));
        b.ldq(intReg(6), intReg(5), 0);
        b.srli(intReg(7), intReg(3), 17);
        b.andi(intReg(7), intReg(7), 131071);
        b.slli(intReg(7), intReg(7), 3);
        b.add(intReg(7), intReg(7), intReg(1));
        b.ldq(intReg(8), intReg(7), 0);
        b.add(intReg(9), intReg(6), intReg(8));
        b.subi(intReg(2), intReg(2), 1);
        b.bne(intReg(2), top);
        b.halt();
        return b.build();
    };
    Cycle cycles[3];
    const CacheKind kinds[3] = {CacheKind::Perfect,
                                CacheKind::LockupFree,
                                CacheKind::Lockup};
    for (int i = 0; i < 3; ++i) {
        CoreConfig cfg = baseConfig();
        cfg.cacheKind = kinds[i];
        Processor proc(cfg, make());
        proc.run();
        cycles[i] = proc.stats().cycles;
    }
    EXPECT_LE(cycles[0], cycles[1]);
    EXPECT_LT(cycles[1], cycles[2]);
}

TEST(Processor, JsrRetFlowsThroughPipeline)
{
    ProgramBuilder b("callpipe");
    const auto fn = b.newLabel();
    const auto after = b.newLabel();
    b.li(intReg(1), 20);
    b.li(intReg(3), 0);
    const auto top = b.here();
    b.jsr(intReg(26), fn);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.br(after);
    b.bind(fn);
    b.addi(intReg(3), intReg(3), 2);
    b.ret(intReg(26));
    b.bind(after);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.emulator().intRegBits(3), 40u);
    // Unconditional control flow is 100% predicted: the only possible
    // mispredicts come from the loop branch.
    EXPECT_LE(proc.stats().recoveries, 3u);
}

TEST(Processor, HaltDrainsCleanly)
{
    CoreConfig cfg = baseConfig();
    Program prog = dependentChain(5);
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_EQ(proc.stats().committed, 6u);
    EXPECT_EQ(proc.windowSize(), 0u);
}

} // namespace
} // namespace drsim
