/**
 * @file
 * Tests for the beyond-the-paper extension knobs: bounded MSHRs,
 * the finite write buffer, in-order branch execution, execute-time
 * predictor history, forwarding off, and register-lifetime statistics.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/processor.hh"
#include "memory/cache.hh"
#include "workloads/builder.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

CoreConfig
baseConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 256;
    cfg.perfectICache = true;
    cfg.auditInterval = 128;
    return cfg;
}

TEST(BoundedMshr, CacheRejectsBeyondTheBound)
{
    CacheConfig cfg;
    cfg.maxOutstandingMisses = 2;
    DataCache cache(CacheKind::LockupFree, cfg);
    EXPECT_TRUE(cache.load(0 * 4096, 100, 1).accepted);
    EXPECT_TRUE(cache.load(1 * 4096, 100, 2).accepted);
    const LoadResult r3 = cache.load(2 * 4096, 100, 3);
    EXPECT_FALSE(r3.accepted);
    EXPECT_EQ(cache.stats().mshrRejections, 1u);
    // A merge onto an existing fetch is still accepted at the bound.
    const LoadResult merge = cache.load(0 * 4096 + 8, 101, 4);
    EXPECT_TRUE(merge.accepted);
    EXPECT_TRUE(merge.merged);
    // Once a fill completes, a new miss is accepted again.
    EXPECT_TRUE(cache.load(2 * 4096, 200, 5).accepted);
    // Rejected loads do not count toward the miss rate.
    EXPECT_EQ(cache.stats().loadMisses, 3u);
    EXPECT_EQ(cache.stats().loads, 4u);
}

TEST(BoundedMshr, OneMshrStillBeatsLockupAndLosesToUnlimited)
{
    // Random probes into a big table.
    auto make = [] {
        ProgramBuilder b("probes");
        const Addr arr = b.allocWords(65536);
        b.li(intReg(1), std::int64_t(arr));
        b.li(intReg(2), 400);
        b.li(intReg(3), 0x777);
        const auto top = b.here();
        b.slli(intReg(4), intReg(3), 13);
        b.xor_(intReg(3), intReg(3), intReg(4));
        b.srli(intReg(4), intReg(3), 7);
        b.xor_(intReg(3), intReg(3), intReg(4));
        b.andi(intReg(5), intReg(3), 65535);
        b.slli(intReg(5), intReg(5), 3);
        b.add(intReg(5), intReg(5), intReg(1));
        b.ldq(intReg(6), intReg(5), 0);
        b.srli(intReg(7), intReg(3), 20);
        b.andi(intReg(7), intReg(7), 65535);
        b.slli(intReg(7), intReg(7), 3);
        b.add(intReg(7), intReg(7), intReg(1));
        b.ldq(intReg(8), intReg(7), 0);
        // Cache-resident loads: with one MSHR they proceed while a
        // miss is outstanding; the lockup cache blocks them too.
        b.ldq(intReg(9), intReg(1), 0);
        b.ldq(intReg(10), intReg(1), 8);
        b.add(intReg(11), intReg(9), intReg(10));
        b.subi(intReg(2), intReg(2), 1);
        b.bne(intReg(2), top);
        b.halt();
        return b.build();
    };
    Cycle cycles[3];
    int i = 0;
    for (const std::uint32_t mshrs : {1u, 4u, 0u}) {
        CoreConfig cfg = baseConfig();
        cfg.dcache.maxOutstandingMisses = mshrs;
        Processor proc(cfg, make());
        proc.run();
        cycles[i++] = proc.stats().cycles;
    }
    EXPECT_GT(cycles[0], cycles[1]); // 1 MSHR slower than 4
    EXPECT_GE(cycles[1], cycles[2]); // 4 no faster than unlimited

    CoreConfig lockup = baseConfig();
    lockup.cacheKind = CacheKind::Lockup;
    Processor pl(lockup, make());
    pl.run();
    // Even one MSHR beats the blocking cache: hits under miss proceed.
    EXPECT_LT(cycles[0], pl.stats().cycles);
}

TEST(WriteBuffer, DrainRateModel)
{
    CacheConfig cfg;
    cfg.writeBufferEntries = 2;
    cfg.writeBufferDrainCycles = 10;
    DataCache cache(CacheKind::LockupFree, cfg);
    ASSERT_TRUE(cache.storeCanCommit(100));
    cache.storeCommit(0x100, 100);
    ASSERT_TRUE(cache.storeCanCommit(100));
    cache.storeCommit(0x200, 100);
    // Full now; one entry drains at 110.
    EXPECT_FALSE(cache.storeCanCommit(105));
    EXPECT_TRUE(cache.storeCanCommit(110));
    cache.storeCommit(0x300, 110);
    EXPECT_FALSE(cache.storeCanCommit(115));
    // Two more drain by 130.
    EXPECT_TRUE(cache.storeCanCommit(130));
}

TEST(WriteBuffer, UnlimitedNeverStalls)
{
    CacheConfig cfg; // writeBufferEntries = 0
    DataCache cache(CacheKind::LockupFree, cfg);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(cache.storeCanCommit(100));
        cache.storeCommit(Addr(i) * 8, 100);
    }
}

TEST(WriteBuffer, TinyBufferStallsCommitButStaysCorrect)
{
    // A store burst against a 1-entry, slow-drain buffer.
    ProgramBuilder b("storeburst");
    const Addr buf = b.allocWords(256);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 100);
    const auto top = b.here();
    b.stq(intReg(2), intReg(1), 0);
    b.stq(intReg(2), intReg(1), 8);
    b.addi(intReg(1), intReg(1), 16);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    const Program prog = b.build();

    CoreConfig free_cfg = baseConfig();
    Processor pf(free_cfg, prog);
    pf.run();

    CoreConfig tiny = baseConfig();
    tiny.dcache.writeBufferEntries = 1;
    tiny.dcache.writeBufferDrainCycles = 8;
    Processor pt(tiny, prog);
    pt.run();

    EXPECT_EQ(pf.stats().committed, pt.stats().committed);
    EXPECT_GT(pt.stats().writeBufferStallCycles, 0u);
    // ~200 stores x 8-cycle drain dominates the runtime.
    EXPECT_GT(pt.stats().cycles, pf.stats().cycles + 1000);
    EXPECT_EQ(pt.emulator().stateHash(), pf.emulator().stateHash());
}

Program
branchyProgram()
{
    ProgramBuilder b("branchy");
    Rng rng(11);
    const Addr tab = b.allocWords(512);
    for (int i = 0; i < 512; ++i)
        b.initWord(tab + Addr(i) * 8, rng.next());
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), 800);
    const auto top = b.here();
    const auto skip = b.newLabel();
    b.andi(intReg(3), intReg(2), 511);
    b.slli(intReg(3), intReg(3), 3);
    b.add(intReg(3), intReg(3), intReg(1));
    b.ldq(intReg(4), intReg(3), 0);
    b.andi(intReg(4), intReg(4), 1);
    b.beq(intReg(4), skip);
    b.addi(intReg(5), intReg(5), 1);
    b.bind(skip);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    return b.build();
}

TEST(InOrderBranches, ArchitecturallyIdenticalAndNotFaster)
{
    const Program prog = branchyProgram();
    CoreConfig ooo = baseConfig();
    CoreConfig ino = baseConfig();
    ino.inOrderBranches = true;
    Processor po(ooo, prog);
    po.run();
    Processor pi(ino, prog);
    pi.run();
    EXPECT_EQ(po.stats().committed, pi.stats().committed);
    EXPECT_EQ(po.emulator().stateHash(), pi.emulator().stateHash());
    // The paper's observation: constraining branch issue costs IPC.
    EXPECT_GE(pi.stats().cycles, po.stats().cycles);
}

TEST(ExecuteTimeHistory, ArchitecturallyIdentical)
{
    const Program prog = branchyProgram();
    CoreConfig spec = baseConfig();
    CoreConfig exec = baseConfig();
    exec.speculativeHistoryUpdate = false;
    Processor ps(spec, prog);
    ps.run();
    Processor pe(exec, prog);
    pe.run();
    EXPECT_EQ(ps.stats().committed, pe.stats().committed);
    EXPECT_EQ(ps.emulator().stateHash(), pe.emulator().stateHash());
    EXPECT_GT(pe.stats().executedCondBranches, 0u);
}

TEST(ForwardingOff, LoadWaitsForStoreCommit)
{
    ProgramBuilder b("fwdoff");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 77);
    b.stq(intReg(2), intReg(1), 0);
    b.ldq(intReg(3), intReg(1), 0);
    b.halt();
    const Program prog = b.build();

    CoreConfig off = baseConfig();
    off.storeToLoadForwarding = false;
    Processor po(off, prog);
    po.run();
    EXPECT_EQ(po.stats().forwardedLoads, 0u);
    EXPECT_EQ(po.emulator().intRegBits(3), 77u);

    CoreConfig on = baseConfig();
    Processor pn(on, prog);
    pn.run();
    EXPECT_EQ(pn.stats().forwardedLoads, 1u);
    // Without forwarding the load waits for the store's commit and
    // then accesses the cache.
    EXPECT_GT(po.stats().cycles, pn.stats().cycles);
}

TEST(Lifetimes, TrackedFromAllocationToFree)
{
    // A single renamed register freed at the retiring writer's commit.
    ProgramBuilder b("life");
    b.li(intReg(1), 1);       // writer I1 (allocates)
    b.li(intReg(1), 2);       // retiring writer I2
    b.li(intReg(2), 3);       // filler
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    const Histogram &life =
        proc.rename().lifetimeHistogram(RegClass::Int);
    // Three frees: I2's commit retires I1's register, and the first
    // writers of r1 and r2 retire two initial architectural mappings.
    EXPECT_EQ(life.totalSamples(), 3u);
    EXPECT_GE(life.mean(), 2.0);
    EXPECT_LE(life.mean(), 10.0);
}

TEST(Lifetimes, ImpreciseShorterUnderPressure)
{
    const Workload w = buildWorkload("mdljsp2", 2);
    double mean[2];
    int m = 0;
    for (const auto model :
         {ExceptionModel::Precise, ExceptionModel::Imprecise}) {
        CoreConfig cfg = baseConfig();
        cfg.numPhysRegs = 80;
        cfg.exceptionModel = model;
        Processor proc(cfg, w.program);
        proc.run();
        mean[m++] =
            proc.rename().lifetimeHistogram(RegClass::Fp).mean();
    }
    // Paper Section 3.2: registers live shorter under imprecise.
    EXPECT_LT(mean[1], mean[0]);
}

TEST(Lifetimes, SquashedRegistersHaveShortLives)
{
    const Program prog = branchyProgram();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, prog);
    proc.run();
    const Histogram &life =
        proc.rename().lifetimeHistogram(RegClass::Int);
    EXPECT_GT(life.totalSamples(), 100u);
    // Every lifetime is bounded by the run length.
    EXPECT_LE(life.maxValue(), proc.stats().cycles);
}

TEST(SplitQueues, ArchitecturallyIdenticalToUnified)
{
    const Program prog = branchyProgram();
    CoreConfig uni = baseConfig();
    CoreConfig split = baseConfig();
    split.splitDispatchQueues = true;
    Processor pu(uni, prog);
    pu.run();
    Processor ps(split, prog);
    ps.run();
    EXPECT_EQ(pu.stats().committed, ps.stats().committed);
    EXPECT_EQ(pu.emulator().stateHash(), ps.emulator().stateHash());
}

TEST(SplitQueues, PerQueueCapacitiesPartitionDqSize)
{
    CoreConfig cfg;
    cfg.dqSize = 32;
    EXPECT_EQ(cfg.intQueueSize(), 16);
    EXPECT_EQ(cfg.fpQueueSize(), 8);
    EXPECT_EQ(cfg.memQueueSize(), 8);
    EXPECT_EQ(cfg.intQueueSize() + cfg.fpQueueSize() +
                  cfg.memQueueSize(),
              cfg.dqSize);
    cfg.dqSize = 3;
    cfg.splitDispatchQueues = true;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SplitQueues, MemHeavyMixSuffersHeadOfLineBlocking)
{
    // A stream of loads: the unified queue gives memory instructions
    // all 32 entries; the split queue caps them at 8.
    ProgramBuilder b("memheavy");
    const Addr arr = b.allocWords(8192);
    b.li(intReg(1), std::int64_t(arr));
    b.li(intReg(2), 300);
    const auto top = b.here();
    for (int i = 0; i < 6; ++i)
        b.ldq(intReg(3 + i), intReg(1), i * 2048);
    b.addi(intReg(1), intReg(1), 8);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();
    const Program prog = b.build();

    CoreConfig uni = baseConfig();
    Processor pu(uni, prog);
    pu.run();
    CoreConfig split = baseConfig();
    split.splitDispatchQueues = true;
    Processor ps(split, prog);
    ps.run();
    EXPECT_EQ(pu.stats().committed, ps.stats().committed);
    // The split machine cannot be faster and the memory-queue bound
    // shows up as insert stalls.
    EXPECT_GE(ps.stats().cycles, pu.stats().cycles);
    EXPECT_GT(ps.stats().insertStallDqFullCycles, 0u);
}

TEST(SplitQueues, OccupancyRespectsPartitions)
{
    const Program prog = branchyProgram();
    CoreConfig split = baseConfig();
    split.splitDispatchQueues = true;
    split.dqSize = 16;
    Processor proc(split, prog);
    while (!proc.done()) {
        proc.tick();
        EXPECT_LE(proc.dqOccupancy(), 16u);
    }
}

TEST(SplitQueues, SuiteRunsCleanly)
{
    // Every kernel under split queues, with auditing on.
    for (const auto &w : buildSpec92Suite(1)) {
        CoreConfig cfg = baseConfig();
        cfg.splitDispatchQueues = true;
        cfg.maxCommitted = 4000;
        Processor proc(cfg, w.program);
        proc.run();
        EXPECT_GT(proc.stats().committed, 0u) << w.spec->name;
    }
}

} // namespace
} // namespace drsim
