/**
 * @file
 * Unit tests for the ISA definitions: register ids, opcode traits
 * (classes and latencies per paper Section 2.1), and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/reg.hh"

namespace drsim {
namespace {

TEST(RegId, ValidityAndZero)
{
    EXPECT_FALSE(noReg().valid());
    EXPECT_FALSE(noReg().renamed());
    EXPECT_TRUE(intReg(0).valid());
    EXPECT_TRUE(intReg(0).renamed());
    EXPECT_TRUE(intReg(kZeroReg).valid());
    EXPECT_TRUE(intReg(kZeroReg).isZero());
    EXPECT_FALSE(intReg(kZeroReg).renamed());
    EXPECT_TRUE(fpReg(kZeroReg).isZero());
}

TEST(RegId, Equality)
{
    EXPECT_EQ(intReg(5), intReg(5));
    EXPECT_FALSE(intReg(5) == fpReg(5));
    EXPECT_FALSE(intReg(5) == intReg(6));
}

TEST(OpTraits, PaperLatencies)
{
    // Integer units are single cycle, except the 6-cycle multiplier.
    EXPECT_EQ(opTraits(Opcode::Add).latency, 1);
    EXPECT_EQ(opTraits(Opcode::Cmplt).latency, 1);
    EXPECT_EQ(opTraits(Opcode::Mul).latency, 6);
    // FP units are 3 cycles...
    EXPECT_EQ(opTraits(Opcode::Fadd).latency, 3);
    EXPECT_EQ(opTraits(Opcode::Fmul).latency, 3);
    EXPECT_EQ(opTraits(Opcode::Itof).latency, 3);
    // ...except divides: 8 cycles single, 16 double (unpipelined).
    EXPECT_EQ(opTraits(Opcode::Fdivs).latency, 8);
    EXPECT_EQ(opTraits(Opcode::Fdivd).latency, 16);
    EXPECT_EQ(opTraits(Opcode::Fsqrt).latency, 16);
    // Stores resolve in one cycle.
    EXPECT_EQ(opTraits(Opcode::Stq).latency, 1);
}

TEST(OpTraits, Classes)
{
    EXPECT_EQ(opClassOf(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::Mul), OpClass::IntMult);
    EXPECT_EQ(opClassOf(Opcode::Fadd), OpClass::FpAdd);
    EXPECT_EQ(opClassOf(Opcode::Fdivd), OpClass::FpDiv);
    EXPECT_EQ(opClassOf(Opcode::Fsqrt), OpClass::FpDiv);
    EXPECT_EQ(opClassOf(Opcode::Ldq), OpClass::MemLoad);
    EXPECT_EQ(opClassOf(Opcode::Stt), OpClass::MemStore);
    EXPECT_EQ(opClassOf(Opcode::Beq), OpClass::CtrlCond);
    EXPECT_EQ(opClassOf(Opcode::Fbne), OpClass::CtrlCond);
    EXPECT_EQ(opClassOf(Opcode::Br), OpClass::CtrlUncond);
    EXPECT_EQ(opClassOf(Opcode::Jsr), OpClass::CtrlUncond);
    EXPECT_EQ(opClassOf(Opcode::Ret), OpClass::CtrlUncond);
    EXPECT_EQ(opClassOf(Opcode::Halt), OpClass::IntAlu);
}

TEST(Instruction, Predicates)
{
    Instruction ld;
    ld.op = Opcode::Ldt;
    ld.dest = fpReg(1);
    ld.src1 = intReg(2);
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_FALSE(ld.isStore());
    EXPECT_TRUE(ld.writesReg());

    Instruction st;
    st.op = Opcode::Stq;
    st.src1 = intReg(2);
    st.src2 = intReg(3);
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.writesReg());

    Instruction br;
    br.op = Opcode::Beq;
    br.src1 = intReg(1);
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(br.isControl());
    EXPECT_FALSE(br.writesReg());

    Instruction jsr;
    jsr.op = Opcode::Jsr;
    jsr.dest = intReg(26);
    EXPECT_TRUE(jsr.isControl());
    EXPECT_FALSE(jsr.isCondBranch());
    EXPECT_TRUE(jsr.writesReg());

    Instruction halt;
    halt.op = Opcode::Halt;
    EXPECT_TRUE(halt.isHalt());
    EXPECT_FALSE(halt.writesReg());
}

TEST(Instruction, ZeroDestDoesNotAllocate)
{
    Instruction add;
    add.op = Opcode::Add;
    add.dest = intReg(kZeroReg);
    add.src1 = intReg(1);
    EXPECT_FALSE(add.writesReg());
}

TEST(Disassemble, Formats)
{
    Instruction add;
    add.op = Opcode::Add;
    add.dest = intReg(1);
    add.src1 = intReg(2);
    add.src2 = intReg(3);
    EXPECT_EQ(disassemble(add), "add r1, r2, r3");

    Instruction addi;
    addi.op = Opcode::Add;
    addi.dest = intReg(1);
    addi.src1 = intReg(31);
    addi.imm = 42;
    EXPECT_EQ(disassemble(addi), "add r1, r31, #42");

    Instruction ld;
    ld.op = Opcode::Ldq;
    ld.dest = intReg(4);
    ld.src1 = intReg(5);
    ld.imm = 16;
    EXPECT_EQ(disassemble(ld), "ldq r4, 16(r5)");

    Instruction st;
    st.op = Opcode::Stt;
    st.src1 = intReg(5);
    st.src2 = fpReg(7);
    st.imm = -8;
    EXPECT_EQ(disassemble(st), "stt f7, -8(r5)");

    Instruction br;
    br.op = Opcode::Bne;
    br.src1 = intReg(9);
    br.target = 3;
    EXPECT_EQ(disassemble(br), "bne r9, B3");

    Instruction halt;
    halt.op = Opcode::Halt;
    EXPECT_EQ(disassemble(halt), "halt");
}

} // namespace
} // namespace drsim
