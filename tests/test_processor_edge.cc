/**
 * @file
 * Edge-case behavioral tests for the core: issue-class limits per
 * functional-unit class, insert/commit bandwidth, I-cache stalls,
 * memory-ordering corners, squash cancellation of cache fills, and
 * configuration validation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/processor.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

CoreConfig
baseConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 256;
    cfg.perfectICache = true;
    cfg.auditInterval = 64;
    cfg.deadlockCycles = 50000;
    return cfg;
}

/** Per-class issue limits (paper Section 2.1). */
struct ClassLimitCase
{
    const char *name;
    Opcode op;
    int limit4; ///< per-cycle limit at 4-way issue
};

class IssueClassLimit
    : public ::testing::TestWithParam<ClassLimitCase>
{};

TEST_P(IssueClassLimit, BoundsThroughput)
{
    const ClassLimitCase &c = GetParam();
    const int n = 96;
    ProgramBuilder b(c.name);
    const Addr buf = b.allocWords(4096);
    b.li(intReg(28), std::int64_t(buf));
    for (int i = 0; i < n; ++i) {
        switch (opClassOf(c.op)) {
          case OpClass::MemLoad:
            b.ldq(intReg(1 + (i % 24)), intReg(28),
                  (i % 128) * 8);
            break;
          case OpClass::MemStore:
            b.stq(intReg(27), intReg(28), (i % 128) * 8);
            break;
          case OpClass::FpAdd:
            b.fadd(fpReg(1 + (i % 24)), fpReg(26), fpReg(27));
            break;
          default:
            b.addi(intReg(1 + (i % 24)), intReg(27), i);
            break;
        }
    }
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.cacheKind = CacheKind::Perfect;
    Processor proc(cfg, b.build());
    proc.run();
    // n independent ops of one class cannot beat the class limit.
    EXPECT_GE(proc.stats().cycles, Cycle(n / c.limit4));
    // ...and with a full queue they get close to it.
    EXPECT_LE(proc.stats().cycles, Cycle(n / c.limit4 + 24));
}

INSTANTIATE_TEST_SUITE_P(
    Classes, IssueClassLimit,
    ::testing::Values(ClassLimitCase{"int", Opcode::Add, 4},
                      ClassLimitCase{"fp", Opcode::Fadd, 2},
                      ClassLimitCase{"load", Opcode::Ldq, 2},
                      ClassLimitCase{"store", Opcode::Stq, 2}),
    [](const ::testing::TestParamInfo<ClassLimitCase> &pinfo) {
        return std::string(pinfo.param.name);
    });

TEST(ProcessorEdge, ControlFlowLimitOnePerCycleAt4Way)
{
    // A chain of unconditional branches: at most 1 control op issues
    // per cycle on the 4-way machine.
    const int n = 40;
    ProgramBuilder b("brchain");
    std::vector<ProgramBuilder::Label> labels;
    for (int i = 0; i < n; ++i)
        labels.push_back(b.newLabel());
    b.br(labels[0]);
    for (int i = 0; i < n; ++i) {
        b.bind(labels[i]);
        if (i + 1 < n)
            b.br(labels[i + 1]);
    }
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(n - 1));
}

TEST(ProcessorEdge, InsertBandwidthIsOneAndAHalfTimesWidth)
{
    // With issue gated off (every op depends on a long chain), insert
    // still proceeds at 1.5x width until the queue fills.
    ProgramBuilder b("insert");
    b.li(intReg(1), 1);
    for (int i = 0; i < 12; ++i)
        b.muli(intReg(1), intReg(1), 1); // 72-cycle head chain
    for (int i = 0; i < 60; ++i)
        b.add(intReg(2 + (i % 20)), intReg(1), intReg(1));
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.dqSize = 256;
    Processor proc(cfg, b.build());
    // After k ticks the window holds at most 6k instructions.
    proc.tick();
    EXPECT_LE(proc.windowSize(), 6u);
    proc.tick();
    EXPECT_LE(proc.windowSize(), 12u);
    proc.tick();
    EXPECT_GE(proc.windowSize(), 13u); // and it does keep inserting
    proc.run();
    EXPECT_EQ(proc.stats().committed, 74u);
}

TEST(ProcessorEdge, CommitBurstsUpToTwiceWidth)
{
    // A long multiply feeding many dependents completes late; when it
    // does, the backlog commits at up to 2W = 8 per cycle.
    ProgramBuilder b("burst");
    b.li(intReg(1), 3);
    b.muli(intReg(1), intReg(1), 5);
    for (int i = 0; i < 24; ++i)
        b.add(intReg(2 + (i % 20)), intReg(1), intReg(1));
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    std::uint64_t prev = 0;
    std::uint64_t max_burst = 0;
    while (!proc.done()) {
        proc.tick();
        max_burst =
            std::max(max_burst, proc.stats().committed - prev);
        prev = proc.stats().committed;
    }
    EXPECT_LE(max_burst, 8u);
    EXPECT_GE(max_burst, 5u); // the backlog did drain in bursts
}

TEST(ProcessorEdge, IcacheMissesStallStraightLineFetch)
{
    ProgramBuilder b("icache");
    for (int i = 0; i < 64; ++i)
        b.addi(intReg(1 + (i % 24)), intReg(28), i);
    b.halt();
    const Program prog = b.build();

    CoreConfig with = baseConfig();
    with.perfectICache = false;
    CoreConfig without = baseConfig();

    Processor pw(with, prog);
    pw.run();
    Processor po(without, prog);
    po.run();
    // 65 instructions span ~9 lines: ~8 cold misses x 16 cycles.
    EXPECT_GT(pw.stats().cycles, po.stats().cycles + 100);
    EXPECT_GE(pw.icache().misses(), 8u);
}

TEST(ProcessorEdge, LoopRunsFromIcacheAfterWarmup)
{
    ProgramBuilder b("iloop");
    b.li(intReg(1), 400);
    const auto top = b.here();
    b.addi(intReg(2), intReg(2), 1);
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.perfectICache = false;
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_LE(proc.icache().misses(), 3u);
}

TEST(ProcessorEdge, SquashCancelsWrongPathFills)
{
    // A mispredicted branch guards a load from a huge table; the
    // wrong-path miss must be cancelled when the branch resolves.
    ProgramBuilder b("cancel");
    Rng rng(5);
    const Addr tab = b.allocWords(32768); // 256 KB
    const Addr small = b.allocWords(64);
    for (int i = 0; i < 64; ++i)
        b.initWord(small + Addr(i) * 8, rng.next());
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), std::int64_t(small));
    b.li(intReg(3), 600);
    const auto top = b.here();
    const auto wild = b.newLabel();
    const auto join = b.newLabel();
    // Pseudo-random, poorly-predicted branch.
    b.andi(intReg(4), intReg(3), 63);
    b.slli(intReg(4), intReg(4), 3);
    b.add(intReg(4), intReg(4), intReg(2));
    b.ldq(intReg(5), intReg(4), 0);
    b.andi(intReg(5), intReg(5), 1);
    b.bne(intReg(5), wild);
    b.addi(intReg(6), intReg(6), 1);
    b.br(join);
    b.bind(wild);
    // This path's load misses in the big table.
    b.andi(intReg(7), intReg(3), 32767);
    b.slli(intReg(7), intReg(7), 3);
    b.add(intReg(7), intReg(7), intReg(1));
    b.ldq(intReg(8), intReg(7), 0);
    b.add(intReg(6), intReg(6), intReg(8));
    b.bind(join);
    b.subi(intReg(3), intReg(3), 1);
    b.bne(intReg(3), top);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GT(proc.stats().recoveries, 50u);
    EXPECT_GT(proc.dcache().stats().fetchesCancelled, 0u);
}

TEST(ProcessorEdge, StoreToLoadForwardingPicksYoungestOlderStore)
{
    ProgramBuilder b("youngest");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 10);
    b.li(intReg(3), 20);
    b.stq(intReg(2), intReg(1), 0);
    b.stq(intReg(3), intReg(1), 0);
    b.ldq(intReg(4), intReg(1), 0); // must see 20
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.emulator().intRegBits(4), 20u);
    EXPECT_EQ(proc.stats().forwardedLoads, 1u);
}

TEST(ProcessorEdge, LoadBeforeYoungerStoreUnaffected)
{
    // A load followed (in program order) by a store to the same
    // address must not forward from it.
    ProgramBuilder b("younger");
    const Addr buf = b.allocWords(1);
    b.initWord(buf, 5);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 99);
    b.ldq(intReg(3), intReg(1), 0); // reads 5
    b.stq(intReg(2), intReg(1), 0);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_EQ(proc.emulator().intRegBits(3), 5u);
    EXPECT_EQ(proc.stats().forwardedLoads, 0u);
}

TEST(ProcessorEdge, DivsAndDivdLatenciesDiffer)
{
    const int k = 10;
    Cycle cycles[2];
    int idx = 0;
    for (const Opcode op : {Opcode::Fdivs, Opcode::Fdivd}) {
        ProgramBuilder b("div");
        for (int i = 0; i < k; ++i) {
            // chain through fpReg(1)
            if (op == Opcode::Fdivs)
                b.fdivs(fpReg(1), fpReg(1), fpReg(2));
            else
                b.fdivd(fpReg(1), fpReg(1), fpReg(2));
        }
        b.halt();
        CoreConfig cfg = baseConfig();
        Processor proc(cfg, b.build());
        proc.run();
        cycles[idx++] = proc.stats().cycles;
    }
    // 8-cycle single vs 16-cycle double precision divides.
    EXPECT_GE(cycles[0], Cycle(8 * k));
    EXPECT_GE(cycles[1], Cycle(16 * k));
    EXPECT_GT(cycles[1], cycles[0] + 7 * k);
}

TEST(ProcessorEdge, ZeroDestinationAllocatesNothing)
{
    ProgramBuilder b("zerodest");
    for (int i = 0; i < 50; ++i)
        b.addi(intReg(kZeroReg), intReg(1), i);
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    const std::size_t free0 = proc.rename().freeCount(RegClass::Int);
    proc.run();
    EXPECT_EQ(proc.rename().freeCount(RegClass::Int), free0);
    EXPECT_EQ(proc.stats().committed, 51u);
}

TEST(ProcessorEdge, LargeMissPenaltySupported)
{
    // The completion ring must size itself to the fetch latency.
    ProgramBuilder b("slowmem");
    const Addr buf = b.allocWords(64);
    b.li(intReg(1), std::int64_t(buf));
    for (int i = 0; i < 8; ++i)
        b.ldq(intReg(2 + i), intReg(1), i * 256);
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.dcache.missPenalty = 200;
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(200));
    EXPECT_EQ(proc.stats().committed, 10u);
}

TEST(ProcessorEdge, ConfigValidationRejectsBadMachines)
{
    const Program prog = [] {
        ProgramBuilder b("p");
        b.halt();
        return b.build();
    }();
    CoreConfig cfg;
    cfg.issueWidth = 6;
    EXPECT_THROW(Processor(cfg, prog), FatalError);
    cfg = CoreConfig{};
    cfg.dqSize = 0;
    EXPECT_THROW(Processor(cfg, prog), FatalError);
    cfg = CoreConfig{};
    cfg.numPhysRegs = 16;
    EXPECT_THROW(Processor(cfg, prog), FatalError);
    cfg = CoreConfig{};
    cfg.dcache.lineBytes = 48;
    EXPECT_THROW(Processor(cfg, prog), FatalError);
}

TEST(ProcessorEdge, TickAfterDoneIsHarmless)
{
    ProgramBuilder b("p");
    b.halt();
    CoreConfig cfg = baseConfig();
    Processor proc(cfg, b.build());
    proc.run();
    const Cycle end = proc.stats().cycles;
    proc.tick();
    proc.tick();
    EXPECT_TRUE(proc.done());
    EXPECT_EQ(proc.stats().committed, 1u);
    EXPECT_GE(proc.stats().cycles, end);
}

TEST(ProcessorEdge, EightWayClassLimitsDouble)
{
    // 8 independent fp adds per cycle limit is 4 at 8-way.
    const int n = 96;
    ProgramBuilder b("fp8");
    for (int i = 0; i < n; ++i)
        b.fadd(fpReg(1 + (i % 24)), fpReg(26), fpReg(27));
    b.halt();
    CoreConfig cfg = baseConfig();
    cfg.issueWidth = 8;
    cfg.dqSize = 64;
    Processor proc(cfg, b.build());
    proc.run();
    EXPECT_GE(proc.stats().cycles, Cycle(n / 4));
    EXPECT_LE(proc.stats().cycles, Cycle(n / 4 + 24));
}

} // namespace
} // namespace drsim
