/**
 * @file
 * Tests for the SPEC92-like kernel suite: every kernel must build,
 * terminate, be deterministic, scale with the scale parameter, and
 * exhibit the instruction-mix character its SPEC92 counterpart is
 * documented to have (Table 1 of the paper).
 */

#include <gtest/gtest.h>

#include "workloads/emulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

struct MixExpectation
{
    const char *name;
    bool fpIntensive;
    /** Architectural load fraction bounds (of executed instructions). */
    double loadLo, loadHi;
    /** Conditional-branch fraction bounds. */
    double cbrLo, cbrHi;
    /** Fraction of FP-arithmetic operations (FpAdd+FpDiv classes). */
    double fpLo, fpHi;
};

const MixExpectation kMix[] = {
    // name       fp     loads        cbr          fp ops
    {"compress", false, 0.10, 0.30, 0.05, 0.20, 0.00, 0.001},
    {"doduc",    true,  0.05, 0.20, 0.05, 0.20, 0.15, 0.50},
    {"espresso", false, 0.08, 0.20, 0.10, 0.25, 0.00, 0.001},
    {"gcc1",     false, 0.12, 0.35, 0.05, 0.20, 0.00, 0.001},
    {"mdljdp2",  true,  0.05, 0.20, 0.03, 0.15, 0.30, 0.65},
    {"mdljsp2",  true,  0.05, 0.20, 0.03, 0.15, 0.30, 0.65},
    {"ora",      true,  0.05, 0.20, 0.02, 0.12, 0.25, 0.60},
    {"su2cor",   true,  0.10, 0.30, 0.03, 0.15, 0.15, 0.50},
    {"tomcatv",  true,  0.20, 0.35, 0.02, 0.10, 0.20, 0.55},
};

struct MixCount
{
    std::uint64_t total = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t cbr = 0;
    std::uint64_t fp = 0;
};

MixCount
runArchMix(const Program &prog, std::uint64_t max_steps = 3000000)
{
    Emulator emu(prog);
    MixCount mix;
    while (!emu.fetchBlocked() && mix.total < max_steps) {
        const StepInfo info = emu.stepArch();
        ++mix.total;
        switch (info.inst->cls()) {
          case OpClass::MemLoad:
            ++mix.loads;
            break;
          case OpClass::MemStore:
            ++mix.stores;
            break;
          case OpClass::CtrlCond:
            ++mix.cbr;
            break;
          case OpClass::FpAdd:
          case OpClass::FpDiv:
            ++mix.fp;
            break;
          default:
            break;
        }
    }
    return mix;
}

class KernelMix : public ::testing::TestWithParam<MixExpectation>
{};

TEST_P(KernelMix, TerminatesWithDocumentedInstructionMix)
{
    const MixExpectation &e = GetParam();
    const Workload w = buildWorkload(e.name, 2);
    const MixCount mix = runArchMix(w.program);
    ASSERT_GT(mix.total, 5000u) << "kernel suspiciously short";
    ASSERT_LT(mix.total, 3000000u) << "kernel did not terminate";

    const double loads = double(mix.loads) / double(mix.total);
    const double cbr = double(mix.cbr) / double(mix.total);
    const double fp = double(mix.fp) / double(mix.total);
    EXPECT_GE(loads, e.loadLo) << "load fraction";
    EXPECT_LE(loads, e.loadHi) << "load fraction";
    EXPECT_GE(cbr, e.cbrLo) << "branch fraction";
    EXPECT_LE(cbr, e.cbrHi) << "branch fraction";
    EXPECT_GE(fp, e.fpLo) << "fp fraction";
    EXPECT_LE(fp, e.fpHi) << "fp fraction";
    EXPECT_EQ(w.spec->fpIntensive, e.fpIntensive);
    // Every kernel stores something (write-buffer path exercised).
    EXPECT_GT(mix.stores, 0u);
}

TEST_P(KernelMix, DeterministicAcrossBuilds)
{
    const MixExpectation &e = GetParam();
    const Workload a = buildWorkload(e.name, 1);
    const Workload b = buildWorkload(e.name, 1);
    Emulator ea(a.program), eb(b.program);
    while (!ea.fetchBlocked())
        ea.stepArch();
    while (!eb.fetchBlocked())
        eb.stepArch();
    EXPECT_EQ(ea.stepsExecuted(), eb.stepsExecuted());
    EXPECT_EQ(ea.stateHash(), eb.stateHash());
}

TEST_P(KernelMix, ScaleGrowsDynamicLength)
{
    // Scales far enough apart that even tomcatv (whose natural unit
    // of work is several scale units) must grow.
    const MixExpectation &e = GetParam();
    const Workload s1 = buildWorkload(e.name, 1);
    const Workload s18 = buildWorkload(e.name, 18);
    Emulator e1(s1.program), e18(s18.program);
    while (!e1.fetchBlocked())
        e1.stepArch();
    while (!e18.fetchBlocked())
        e18.stepArch();
    EXPECT_GT(e18.stepsExecuted(), 2 * e1.stepsExecuted());
}

INSTANTIATE_TEST_SUITE_P(
    Spec92, KernelMix, ::testing::ValuesIn(kMix),
    [](const ::testing::TestParamInfo<MixExpectation> &pinfo) {
        return std::string(pinfo.param.name);
    });

TEST(KernelSuite, ProgramsAreModest)
{
    // Kernels are loops, not unrolled blobs: static size stays small
    // so the modeled I-cache behaves like the paper's (<1% misses).
    for (const auto &w : buildSpec92Suite(1)) {
        EXPECT_LT(w.program.numInsts(), 400u) << w.spec->name;
        EXPECT_GT(w.program.numInsts(), 20u) << w.spec->name;
    }
}

TEST(KernelSuite, IntKernelsTouchNoFpRegisters)
{
    for (const char *name : {"compress", "espresso", "gcc1"}) {
        const Workload w = buildWorkload(name, 1);
        for (const auto &bb : w.program.blocks()) {
            for (const auto &inst : bb.insts) {
                EXPECT_FALSE(inst.dest.valid() &&
                             inst.dest.cls == RegClass::Fp)
                    << name;
            }
        }
    }
}

TEST(KernelSuite, DataFootprintsDiffer)
{
    // compress's working set must dwarf espresso's (that is where the
    // 15% vs 1% miss-rate difference comes from).
    const Workload c = buildWorkload("compress", 1);
    const Workload e = buildWorkload("espresso", 1);
    EXPECT_GT(c.program.initialWords().size(),
              4 * e.program.initialWords().size());
}

} // namespace
} // namespace drsim
