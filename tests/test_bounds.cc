/**
 * @file
 * Unit tests for the static dataflow oracle (src/analysis/dataflow,
 * src/analysis/bounds) and the runtime cross-check gates: liveness
 * order-independence, dominators, natural-loop discovery on the CFG
 * edge cases (irreducible regions, unreachable blocks, single-block
 * self-loops), recurrence/critical-path arithmetic on programs with
 * known answers, finite bounds for every shipped kernel, and the
 * gate's panic/warn/off behavior.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "analysis/bounds.hh"
#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workloads/builder.hh"
#include "workloads/classic.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace {

using analysis::BoundsReport;
using analysis::IterOrder;
using analysis::LivenessResult;
using analysis::MachineLimits;
using analysis::NaturalLoop;
using analysis::ProgramCfg;

/** Scoped environment override (restores the prior value). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv(name, value, 1);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_;
    std::string old_;
};

Program
straightChain()
{
    ProgramBuilder b("chain");
    b.li(intReg(1), 3);
    b.addi(intReg(2), intReg(1), 1);
    b.mul(intReg(3), intReg(2), intReg(2));
    b.addi(intReg(4), intReg(3), 1);
    b.halt();
    return b.build();
}

Program
countedLoop(bool mulRecurrence)
{
    ProgramBuilder b(mulRecurrence ? "mul-loop" : "add-loop");
    b.li(intReg(1), 100);
    b.li(intReg(2), 1);
    const auto top = b.here();
    if (mulRecurrence)
        b.mul(intReg(2), intReg(2), intReg(2));
    else
        b.addi(intReg(2), intReg(2), 1);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), top);
    b.halt();
    return b.build();
}

// ------------------------------------------------------------ liveness

TEST(Dataflow, LivenessFixpointIsIterationOrderIndependent)
{
    // The property must hold on every shipped program, not just on
    // crafted ones: sweep the nine-kernel suite, the classic
    // mini-suite, and the crafted loops.
    std::vector<Program> programs;
    for (auto &w : buildSpec92Suite(1))
        programs.push_back(std::move(w.program));
    for (auto &[name, prog] : buildClassicSuite())
        programs.push_back(std::move(prog));
    programs.push_back(countedLoop(false));
    programs.push_back(straightChain());

    for (const Program &prog : programs) {
        const ProgramCfg cfg(prog);
        ASSERT_TRUE(cfg.valid()) << prog.name();
        const LivenessResult fwd =
            analysis::computeLiveness(cfg, IterOrder::Forward);
        const LivenessResult rev =
            analysis::computeLiveness(cfg, IterOrder::Reversed);
        EXPECT_EQ(fwd.liveIn, rev.liveIn) << prog.name();
        EXPECT_EQ(fwd.liveOut, rev.liveOut) << prog.name();
        EXPECT_GE(fwd.rounds, 1);
    }
}

TEST(Dataflow, MaxLiveCountsSimultaneousValues)
{
    ProgramBuilder b("maxlive");
    b.li(intReg(1), 1);
    b.li(intReg(2), 2);
    b.li(intReg(3), 3);                         // r1,r2,r3 live here
    b.add(intReg(4), intReg(1), intReg(2));     // r3,r4 live after
    b.add(intReg(5), intReg(4), intReg(3));
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    const LivenessResult live = analysis::computeLiveness(cfg);
    const analysis::MaxLiveResult ml =
        analysis::computeMaxLive(cfg, live);
    EXPECT_EQ(ml.perClass[int(RegClass::Int)], 3);
    EXPECT_EQ(ml.perClass[int(RegClass::Fp)], 0);
    EXPECT_EQ(ml.block[int(RegClass::Int)], 0);
}

TEST(Dataflow, UnreachableBlocksDoNotFeedLiveness)
{
    // The dead block reads r8 (never written anywhere); its uses
    // must not leak into the reachable fixpoint.
    ProgramBuilder b("unreachable");
    const auto skip = b.newLabel();
    b.li(intReg(1), 1);
    b.br(skip);
    b.here(); // dead block
    b.addi(intReg(9), intReg(8), 1);
    b.bind(skip);
    b.addi(intReg(2), intReg(1), 1);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    ASSERT_TRUE(cfg.valid());
    const LivenessResult live = analysis::computeLiveness(cfg);
    const analysis::RegSet r8 = analysis::regSetBit(intReg(8));
    for (const int blk : cfg.rpo())
        EXPECT_EQ(live.liveIn[std::size_t(blk)] & r8, 0u) << blk;
}

// ----------------------------------------------------------- dominators

TEST(Dataflow, DiamondDominators)
{
    ProgramBuilder b("diamond");
    const auto els = b.newLabel();
    const auto join = b.newLabel();
    b.li(intReg(1), 1);
    b.beq(intReg(1), els);        // block 0
    b.addi(intReg(2), intReg(1), 1);
    b.br(join);                   // then block
    b.bind(els);
    b.addi(intReg(2), intReg(1), 2);
    b.bind(join);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    const std::vector<int> idom = analysis::computeIdoms(cfg);
    const int entry = cfg.entry();
    ASSERT_EQ(idom[std::size_t(entry)], entry);
    int join_blk = -1;
    for (const int blk : cfg.rpo()) {
        EXPECT_TRUE(analysis::dominates(idom, entry, blk));
        if (cfg.node(blk).preds.size() == 2)
            join_blk = blk;
    }
    ASSERT_GE(join_blk, 0);
    // The join is dominated only by itself and the entry.
    EXPECT_EQ(idom[std::size_t(join_blk)], entry);
    for (const int blk : cfg.rpo()) {
        if (blk != entry && blk != join_blk) {
            EXPECT_FALSE(analysis::dominates(idom, blk, join_blk));
        }
    }
}

// -------------------------------------------------------- natural loops

TEST(Dataflow, SingleBlockSelfLoop)
{
    ProgramBuilder b("selfloop");
    b.li(intReg(1), 10);
    const auto top = b.here();
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), top);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    const std::vector<int> idom = analysis::computeIdoms(cfg);
    const std::vector<NaturalLoop> loops =
        analysis::findNaturalLoops(cfg, idom);
    ASSERT_EQ(loops.size(), 1u);
    const NaturalLoop &loop = loops[0];
    EXPECT_TRUE(loop.reducible);
    EXPECT_TRUE(loop.innermost);
    EXPECT_EQ(loop.depth, 1);
    EXPECT_EQ(loop.body, std::vector<int>{loop.header});
    EXPECT_EQ(loop.mustBody, std::vector<int>{loop.header});
    EXPECT_EQ(loop.tails, std::vector<int>{loop.header});

    // The r1 -= 1 recurrence: one cycle of latency per iteration.
    const analysis::LoopDepGraph graph =
        analysis::buildLoopDepGraph(cfg, loop);
    ASSERT_EQ(graph.nodes.size(), 2u);
    bool carried = false;
    for (const analysis::DepEdge &e : graph.edges)
        carried = carried || e.distance == 1;
    EXPECT_TRUE(carried);
    EXPECT_NEAR(analysis::maxCycleRatio(graph), 1.0, 0.01);
}

TEST(Dataflow, NestedLoopsReportDepthAndInnermost)
{
    ProgramBuilder b("nested");
    b.li(intReg(1), 10);
    const auto outer = b.here();
    b.li(intReg(2), 10);
    const auto inner = b.here();
    b.addi(intReg(2), intReg(2), -1);
    b.bne(intReg(2), inner);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), outer);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    const std::vector<NaturalLoop> loops =
        analysis::findNaturalLoops(cfg, analysis::computeIdoms(cfg));
    ASSERT_EQ(loops.size(), 2u);
    int inner_count = 0;
    for (const NaturalLoop &loop : loops) {
        EXPECT_TRUE(loop.reducible);
        if (loop.innermost) {
            ++inner_count;
            EXPECT_EQ(loop.depth, 2);
        } else {
            EXPECT_EQ(loop.depth, 1);
        }
    }
    EXPECT_EQ(inner_count, 1);
}

TEST(Dataflow, IrreducibleLoopIsFlaggedNotGuessed)
{
    // Two-entry cycle A <-> B: the entry branches into B directly,
    // so neither block dominates the other and no natural-loop
    // header exists in the reducible sense.
    ProgramBuilder b("irreducible");
    const auto a = b.newLabel();
    const auto bb = b.newLabel();
    b.li(intReg(1), 3);
    b.bne(intReg(1), bb);        // second entry into the cycle
    b.bind(a);
    b.addi(intReg(2), intReg(1), 1);
    b.bind(bb);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), a);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    ASSERT_TRUE(cfg.valid());
    const std::vector<NaturalLoop> loops =
        analysis::findNaturalLoops(cfg, analysis::computeIdoms(cfg));
    ASSERT_FALSE(loops.empty());
    bool any_irreducible = false;
    for (const NaturalLoop &loop : loops) {
        if (!loop.reducible) {
            any_irreducible = true;
            EXPECT_TRUE(loop.mustBody.empty());
            EXPECT_TRUE(
                analysis::buildLoopDepGraph(cfg, loop).nodes.empty());
        }
    }
    EXPECT_TRUE(any_irreducible);

    // And the full bounds pipeline degrades gracefully: valid
    // report, bound falls back to the issue width.
    const BoundsReport rep = analysis::computeBounds(
        prog, MachineLimits::forIssueWidth(4));
    EXPECT_TRUE(rep.valid);
    EXPECT_DOUBLE_EQ(rep.ipcBound, 4.0);
}

// ------------------------------------------------- recurrences & paths

TEST(Dataflow, MulRecurrenceDominatesTheCycleRatio)
{
    const Program prog = countedLoop(true);
    const ProgramCfg cfg(prog);
    const std::vector<NaturalLoop> loops =
        analysis::findNaturalLoops(cfg, analysis::computeIdoms(cfg));
    ASSERT_EQ(loops.size(), 1u);
    const analysis::LoopDepGraph graph =
        analysis::buildLoopDepGraph(cfg, loops[0]);
    // r2 = r2 * r2 carries a 6-cycle latency across one iteration.
    EXPECT_NEAR(analysis::maxCycleRatio(graph), 6.0, 0.01);
}

TEST(Dataflow, ConditionalWritersContributeNoRecurrenceEdges)
{
    // The skipped block writes r2 with a 6-cycle multiply; since it
    // does not execute every iteration, the r2 self-dependence must
    // not be treated as a 6-cycle recurrence.
    ProgramBuilder b("condwrite");
    b.li(intReg(1), 10);
    b.li(intReg(2), 1);
    const auto top = b.here();
    const auto skip = b.newLabel();
    b.beq(intReg(1), skip);
    b.mul(intReg(2), intReg(2), intReg(2)); // conditional writer
    b.bind(skip);
    b.addi(intReg(3), intReg(2), 1);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), top);
    b.halt();
    const Program prog = b.build();
    const ProgramCfg cfg(prog);
    const std::vector<NaturalLoop> loops =
        analysis::findNaturalLoops(cfg, analysis::computeIdoms(cfg));
    ASSERT_EQ(loops.size(), 1u);
    const double rec = analysis::maxCycleRatio(
        analysis::buildLoopDepGraph(cfg, loops[0]));
    // Only the r1 counter recurrence remains (1 cycle/iteration).
    EXPECT_LT(rec, 2.0);
    EXPECT_NEAR(rec, 1.0, 0.01);
}

TEST(Dataflow, CriticalPathFollowsTheLatencyChain)
{
    // li(1) -> addi(1) -> mul(6) -> addi(1): 9 cycles end to end.
    EXPECT_DOUBLE_EQ(
        analysis::dataflowCriticalPath(ProgramCfg(straightChain())),
        9.0);
}

TEST(Dataflow, BoundLatencyFloorsLoadsAtOneCycle)
{
    EXPECT_EQ(analysis::boundLatency(Opcode::Ldq), 1);
    EXPECT_EQ(analysis::boundLatency(Opcode::Fdivd), 16);
    EXPECT_EQ(analysis::boundLatency(Opcode::Add), 1);
}

// --------------------------------------------------------------- bounds

TEST(Bounds, MachineLimitsMirrorCoreConfig)
{
    const CoreConfig cfg = [] {
        CoreConfig c;
        c.issueWidth = 8;
        return c;
    }();
    const MachineLimits lim = MachineLimits::forIssueWidth(8);
    EXPECT_EQ(lim.intIssue, cfg.intIssueLimit());
    EXPECT_EQ(lim.fpIssue, cfg.fpIssueLimit());
    EXPECT_EQ(lim.fpDivIssue, cfg.fpDivIssueLimit());
    EXPECT_EQ(lim.memIssue, cfg.memIssueLimit());
    EXPECT_EQ(lim.ctrlIssue, cfg.ctrlIssueLimit());
    EXPECT_EQ(lim.fpDividers, cfg.numFpDividers());
}

TEST(Bounds, EveryKernelHasFiniteBoundsAndJsonRoundTrips)
{
    const MachineLimits lim = MachineLimits::forIssueWidth(4);
    for (const auto &w : buildSpec92Suite(1)) {
        const BoundsReport rep = analysis::computeBounds(w.program, lim);
        ASSERT_TRUE(rep.valid) << w.spec->name;
        EXPECT_GT(rep.ipcBound, 0.0) << w.spec->name;
        EXPECT_LE(rep.ipcBound, 4.0) << w.spec->name;
        EXPECT_GT(rep.steadyIpcBound, 0.0) << w.spec->name;
        EXPECT_GE(rep.maxLive[int(RegClass::Int)], 1) << w.spec->name;
        EXPECT_GT(rep.criticalPathCycles, 0.0) << w.spec->name;
        EXPECT_FALSE(rep.loops.empty()) << w.spec->name;
        EXPECT_GE(rep.minRegsEstimate[0], kNumVirtualRegs);
        EXPECT_GE(rep.minRegsEstimate[1], kNumVirtualRegs);

        // Loop MaxLive can never exceed the whole-program MaxLive.
        for (const analysis::LoopBound &lb : rep.loops) {
            for (int c = 0; c < kNumRegClasses; ++c)
                EXPECT_LE(lb.maxLive[c], rep.maxLive[c]);
        }

        const json::Value v = json::parse(analysis::boundsToJson(rep));
        EXPECT_EQ(v.at("schema").asString(), "drsim-bounds-v1");
        EXPECT_EQ(v.at("program").asString(), w.spec->name);
        EXPECT_EQ(int(v.at("maxLive").at("int").asNumber()),
                  rep.maxLive[0]);
        EXPECT_EQ(v.at("loops").items().size(), rep.loops.size());

        const std::string text = analysis::formatBounds(rep);
        EXPECT_NE(text.find(w.spec->name), std::string::npos);
        EXPECT_NE(text.find("ipc bound"), std::string::npos);
    }
}

TEST(Bounds, DividerBoundLoopIsTighterThanIssueWidth)
{
    // One fdivd per iteration against one unpipelined divider: the
    // recurrence-free resource bound is 16 cycles/iteration.
    ProgramBuilder b("divloop");
    b.li(intReg(1), 10);
    const double val = 2.0;
    const Addr addr = b.allocWords(1);
    b.initDouble(addr, val);
    b.li(intReg(2), std::int64_t(addr));
    b.ldt(fpReg(1), intReg(2), 0);
    const auto top = b.here();
    b.fdivd(fpReg(2), fpReg(1), fpReg(1));
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), top);
    b.halt();
    const BoundsReport rep = analysis::computeBounds(
        b.build(), MachineLimits::forIssueWidth(4));
    ASSERT_TRUE(rep.valid);
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_GE(rep.loops[0].resII, 16.0);
    // 3 body instructions / 16-cycle II.
    EXPECT_NEAR(rep.loops[0].ipcBound, 3.0 / 16.0, 0.01);
    EXPECT_NEAR(rep.steadyIpcBound, 3.0 / 16.0, 0.01);
}

TEST(Bounds, InvalidCfgYieldsInvalidReport)
{
    ProgramBuilder b("empty");
    const BoundsReport rep = analysis::computeBounds(
        b.build(), MachineLimits::forIssueWidth(4));
    EXPECT_FALSE(rep.valid);
    const json::Value v = json::parse(analysis::boundsToJson(rep));
    EXPECT_FALSE(v.at("valid").asBool());
}

// ----------------------------------------------------------------- gate

TEST(BoundsGate, ModeParsesEnvironment)
{
    {
        EnvGuard g("DRSIM_BOUNDS_GATE", "off");
        EXPECT_EQ(boundsGateMode(), BoundsGateMode::Off);
    }
    {
        EnvGuard g("DRSIM_BOUNDS_GATE", "warn");
        EXPECT_EQ(boundsGateMode(), BoundsGateMode::Warn);
    }
    {
        EnvGuard g("DRSIM_BOUNDS_GATE", "panic");
        EXPECT_EQ(boundsGateMode(), BoundsGateMode::Panic);
    }
}

TEST(BoundsGate, CleanRunPassesInPanicMode)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "panic");
    const Workload w = buildWorkload("compress", 1);
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.numPhysRegs = 128;
    // simulate() runs checkStaticBounds internally; no panic/throw.
    const SimResult res = simulate(cfg, w);
    EXPECT_GT(res.commitIpc(), 0.0);
}

TEST(BoundsGateDeathTest, ImpossibleIpcPanics)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "panic");
    const Program prog = straightChain();
    CoreConfig cfg;
    SimResult res;
    res.workload = "doctored";
    res.proc.cycles = 1;
    res.proc.committed = 100; // IPC 100 on a 4-wide machine
    EXPECT_DEATH(checkStaticBounds(cfg, prog, res),
                 "exceeds the static bound");
}

TEST(BoundsGateDeathTest, UndercountedLiveRegistersPanic)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "panic");
    ProgramBuilder b("maxlive");
    b.li(intReg(1), 1);
    b.li(intReg(2), 2);
    b.li(intReg(3), 3);
    b.add(intReg(4), intReg(1), intReg(2));
    b.add(intReg(5), intReg(4), intReg(3));
    b.halt();
    const Program prog = b.build(); // static MaxLive = 3 int
    CoreConfig cfg;
    SimResult res;
    res.workload = "doctored";
    res.proc.cycles = 10;
    res.proc.committed = 10;
    res.proc.live[int(RegClass::Int)][3].addSample(1); // peak 1 < 3
    EXPECT_DEATH(checkStaticBounds(cfg, prog, res),
                 "below static MaxLive");
}

TEST(BoundsGate, ViolationsIgnoredWhenOff)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "off");
    const Program prog = straightChain();
    CoreConfig cfg;
    SimResult res;
    res.workload = "doctored";
    res.proc.cycles = 1;
    res.proc.committed = 100;
    checkStaticBounds(cfg, prog, res); // no abort, no throw
}

TEST(BoundsGate, ViolationsOnlyWarnInWarnMode)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "warn");
    const Program prog = straightChain();
    CoreConfig cfg;
    SimResult res;
    res.workload = "doctored";
    res.proc.cycles = 1;
    res.proc.committed = 100;
    checkStaticBounds(cfg, prog, res); // warns on stderr, returns
}

TEST(BoundsGate, SampledRunsAreExempt)
{
    EnvGuard g("DRSIM_BOUNDS_GATE", "panic");
    const Program prog = straightChain();
    CoreConfig cfg;
    SimResult res;
    res.workload = "doctored";
    res.sampled.enabled = true;
    res.proc.cycles = 1;
    res.proc.committed = 100;
    checkStaticBounds(cfg, prog, res); // composite timeline: skipped
}

} // namespace
} // namespace drsim
