/**
 * @file
 * Unit tests for the rename unit: allocation, the four liveness
 * categories, the imprecise kill engine, shadow accounting, squash
 * restoration, and the next-cycle reuse rule.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/regfile.hh"

namespace drsim {
namespace {

constexpr RegClass kInt = RegClass::Int;
constexpr RegClass kFp = RegClass::Fp;

TEST(RenameUnit, InitialState)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    // 31 initial architectural mappings per file, all WaitImprecise.
    for (const RegClass cls : {kInt, kFp}) {
        const LiveCounts lc = ru.liveCounts(cls);
        EXPECT_EQ(lc.waitImprecise, 31u);
        EXPECT_EQ(lc.inQueue, 0u);
        EXPECT_EQ(lc.inFlight, 0u);
        EXPECT_EQ(lc.waitPrecise, 0u);
        EXPECT_EQ(ru.freeCount(cls), 64u - 31u);
        for (int v = 0; v < kNumVirtualRegs; ++v) {
            if (v != kZeroReg) {
                EXPECT_NE(ru.mapOf(cls, v), kInvalidPhysReg);
            }
        }
    }
    ru.audit();
}

TEST(RenameUnit, MinimumFileSizeEnforced)
{
    CoreConfig cfg;
    cfg.numPhysRegs = 31;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.numPhysRegs = 32;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(RenameUnit, SourceRenameTracksUsers)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const PhysRegIndex p = ru.renameSrc(intReg(5));
    ASSERT_NE(p, kInvalidPhysReg);
    EXPECT_EQ(ru.info(kInt, p).pendingUsers, 1u);
    ru.renameSrc(intReg(5));
    EXPECT_EQ(ru.info(kInt, p).pendingUsers, 2u);
    ru.onUserDone(kInt, p);
    ru.onUserDone(kInt, p);
    EXPECT_EQ(ru.info(kInt, p).pendingUsers, 0u);
    ru.audit();
}

TEST(RenameUnit, ZeroAndInvalidSourcesAreFree)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    EXPECT_EQ(ru.renameSrc(intReg(kZeroReg)), kInvalidPhysReg);
    EXPECT_EQ(ru.renameSrc(noReg()), kInvalidPhysReg);
    EXPECT_TRUE(ru.isReady(kInt, kInvalidPhysReg, 0));
}

TEST(RenameUnit, DestAllocationRetiresPrevMapping)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const PhysRegIndex old_map = ru.mapOf(kInt, 3);
    const auto alloc = ru.renameDest(intReg(3), 1);
    EXPECT_EQ(alloc.prev, old_map);
    EXPECT_EQ(ru.mapOf(kInt, 3), alloc.dest);
    EXPECT_EQ(int(ru.info(kInt, alloc.dest).cat),
              int(LiveCat::InQueue));
    EXPECT_EQ(ru.liveCounts(kInt).inQueue, 1u);
    ru.audit();
}

TEST(RenameUnit, CategoryLifecyclePrecise)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const auto a = ru.renameDest(intReg(3), 1);

    ru.onIssueWriter(kInt, a.dest);
    EXPECT_EQ(ru.liveCounts(kInt).inFlight, 1u);

    ru.onWriterComplete(kInt, a.dest);
    EXPECT_EQ(ru.liveCounts(kInt).inFlight, 0u);
    EXPECT_EQ(ru.liveCounts(kInt).waitImprecise, 32u);

    // The writer completing with no branches outstanding kills the
    // previous mapping of r3: it moves to the shadow WaitPrecise
    // category (writer done, no users, killed).
    ru.kill(kInt, 3, 1);
    EXPECT_EQ(ru.liveCounts(kInt).waitPrecise, 1u);
    EXPECT_EQ(int(ru.info(kInt, a.prev).cat), int(LiveCat::WaitPrecise));

    // Precise free happens at the retiring writer's commit.
    const std::size_t free_before = ru.freeCount(kInt);
    ru.onCommitWriter(kInt, a.prev);
    EXPECT_EQ(ru.liveCounts(kInt).waitPrecise, 0u);
    // Freed registers only become allocatable next cycle.
    EXPECT_EQ(ru.freeCount(kInt), free_before);
    ru.beginCycle();
    EXPECT_EQ(ru.freeCount(kInt), free_before + 1);
    ru.audit();
}

TEST(RenameUnit, ImpreciseFreesWithoutCommit)
{
    RenameUnit ru(64, ExceptionModel::Imprecise);
    const auto a = ru.renameDest(intReg(3), 1);
    ru.onIssueWriter(kInt, a.dest);
    ru.onWriterComplete(kInt, a.dest);

    const std::size_t free_before = ru.freeCount(kInt);
    // Kill: the old mapping frees immediately (writer completed at
    // init, no users) — no commit required.
    ru.kill(kInt, 3, 1);
    ru.beginCycle();
    EXPECT_EQ(ru.freeCount(kInt), free_before + 1);
    EXPECT_EQ(int(ru.info(kInt, a.prev).cat), int(LiveCat::Free));
    ru.audit();
}

TEST(RenameUnit, ImpreciseWaitsForUsers)
{
    RenameUnit ru(64, ExceptionModel::Imprecise);
    // A reader of the architectural value of r3...
    const PhysRegIndex old_map = ru.renameSrc(intReg(3));
    // ...then a writer of r3 completes and kills the old mapping.
    const auto a = ru.renameDest(intReg(3), 2);
    ru.onIssueWriter(kInt, a.dest);
    ru.onWriterComplete(kInt, a.dest);
    ru.kill(kInt, 3, 2);

    // Not free yet: the reader has not completed.
    EXPECT_NE(int(ru.info(kInt, old_map).cat), int(LiveCat::Free));
    ru.onUserDone(kInt, old_map);
    EXPECT_EQ(int(ru.info(kInt, old_map).cat), int(LiveCat::Free));
    ru.audit();
}

TEST(RenameUnit, ImpreciseWaitsForWriterCompletion)
{
    RenameUnit ru(64, ExceptionModel::Imprecise);
    // Writer W1 of r3 (not yet completed), then W2 completes & kills.
    const auto w1 = ru.renameDest(intReg(3), 1);
    const auto w2 = ru.renameDest(intReg(3), 2);
    ru.onIssueWriter(kInt, w2.dest);
    ru.onWriterComplete(kInt, w2.dest);
    ru.kill(kInt, 3, 2); // kills initial mapping AND w1's mapping

    // w1's register is killed but its writer hasn't completed.
    EXPECT_TRUE(ru.info(kInt, w1.dest).killed);
    EXPECT_NE(int(ru.info(kInt, w1.dest).cat), int(LiveCat::Free));

    ru.onIssueWriter(kInt, w1.dest);
    ru.onWriterComplete(kInt, w1.dest);
    EXPECT_EQ(int(ru.info(kInt, w1.dest).cat), int(LiveCat::Free));
    ru.audit();
}

TEST(RenameUnit, KillOnlyAffectsOlderMappings)
{
    RenameUnit ru(64, ExceptionModel::Imprecise);
    const auto w1 = ru.renameDest(intReg(3), 5);
    const auto w2 = ru.renameDest(intReg(3), 9);
    // Kill with w1's seq: only mappings older than 5 die.  The
    // initial mapping (w1.prev) had a completed writer and no users,
    // so the kill frees it outright.
    ru.kill(kInt, 3, 5);
    EXPECT_FALSE(ru.info(kInt, w1.dest).killed);
    EXPECT_FALSE(ru.info(kInt, w2.dest).killed);
    EXPECT_EQ(int(ru.info(kInt, w1.prev).cat), int(LiveCat::Free));
    ru.audit();
}

TEST(RenameUnit, SquashRestoresMapAndFrees)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const PhysRegIndex orig = ru.mapOf(kInt, 7);
    const auto a = ru.renameDest(intReg(7), 1);
    const auto b = ru.renameDest(intReg(7), 2);
    // Squash youngest-first.
    ru.squashWriter(kInt, 7, b.dest, b.prev, 2);
    EXPECT_EQ(ru.mapOf(kInt, 7), a.dest);
    ru.squashWriter(kInt, 7, a.dest, a.prev, 1);
    EXPECT_EQ(ru.mapOf(kInt, 7), orig);
    EXPECT_EQ(int(ru.info(kInt, a.dest).cat), int(LiveCat::Free));
    EXPECT_EQ(int(ru.info(kInt, b.dest).cat), int(LiveCat::Free));
    ru.beginCycle();
    EXPECT_EQ(ru.freeCount(kInt), 64u - 31u);
    ru.audit();
}

TEST(RenameUnit, AllocationExhaustion)
{
    RenameUnit ru(33, ExceptionModel::Precise);
    EXPECT_TRUE(ru.canAllocate(kInt));
    ru.renameDest(intReg(1), 1);
    ru.renameDest(intReg(2), 2);
    EXPECT_FALSE(ru.canAllocate(kInt));
    // The FP file is independent.
    EXPECT_TRUE(ru.canAllocate(kFp));
}

TEST(RenameUnit, ReadyCycleTracking)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const auto a = ru.renameDest(intReg(1), 1);
    EXPECT_FALSE(ru.isReady(kInt, a.dest, 1000));
    ru.setReady(kInt, a.dest, 50);
    EXPECT_FALSE(ru.isReady(kInt, a.dest, 49));
    EXPECT_TRUE(ru.isReady(kInt, a.dest, 50));
    // Initial mappings are ready from cycle 0.
    EXPECT_TRUE(ru.isReady(kInt, ru.mapOf(kInt, 2), 0));
}

TEST(RenameUnit, FpAndIntFilesIndependent)
{
    RenameUnit ru(40, ExceptionModel::Precise);
    const auto fa = ru.renameDest(fpReg(4), 1);
    EXPECT_EQ(ru.liveCounts(kFp).inQueue, 1u);
    EXPECT_EQ(ru.liveCounts(kInt).inQueue, 0u);
    EXPECT_EQ(ru.mapOf(kFp, 4), fa.dest);
    EXPECT_EQ(ru.freeCount(kFp), 40u - 31u - 1u);
    EXPECT_EQ(ru.freeCount(kInt), 40u - 31u);
    ru.audit();
}

TEST(RenameUnit, TotalLiveConservation)
{
    // live + free == numPhysRegs at every step of a random workout.
    RenameUnit ru(48, ExceptionModel::Precise);
    struct Pending
    {
        RenameUnit::Alloc alloc;
        int vreg;
        InstSeqNum seq;
    };
    std::vector<Pending> allocs;
    InstSeqNum seq = 1;
    for (int round = 0; round < 200; ++round) {
        ru.beginCycle();
        // After beginCycle every freed register is back on the free
        // list, so live + free must equal the file size.
        EXPECT_EQ(ru.liveCounts(kInt).total() + ru.freeCount(kInt),
                  48u);
        if (ru.canAllocate(kInt)) {
            const int vreg = 1 + (round % 15);
            allocs.push_back({ru.renameDest(intReg(vreg), seq), vreg,
                              seq});
            ++seq;
        } else if (!allocs.empty()) {
            // Retire in FIFO order like commits would: the writer
            // completes, kills older mappings of its virtual register,
            // then commits and precise-frees the retired mapping.
            const Pending p = allocs.front();
            allocs.erase(allocs.begin());
            ru.onIssueWriter(kInt, p.alloc.dest);
            ru.onWriterComplete(kInt, p.alloc.dest);
            ru.kill(kInt, p.vreg, p.seq);
            ru.onCommitWriter(kInt, p.alloc.prev);
        }
        ru.audit();
    }
}

TEST(RenameUnit, DoubleFreePanics)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const auto a = ru.renameDest(intReg(1), 1);
    ru.onIssueWriter(kInt, a.dest);
    ru.onWriterComplete(kInt, a.dest);
    ru.onCommitWriter(kInt, a.prev);
    EXPECT_DEATH(ru.onCommitWriter(kInt, a.prev), "double free");
}

TEST(RenameUnit, UserUnderflowPanics)
{
    RenameUnit ru(64, ExceptionModel::Precise);
    const PhysRegIndex p = ru.mapOf(kInt, 2);
    EXPECT_DEATH(ru.onUserDone(kInt, p), "underflow");
}

} // namespace
} // namespace drsim
