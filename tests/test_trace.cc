/**
 * @file
 * Tests for the pipeline trace facility.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/random.hh"
#include "core/processor.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace {

CoreConfig
traceConfig()
{
    CoreConfig cfg;
    cfg.issueWidth = 4;
    cfg.dqSize = 32;
    cfg.numPhysRegs = 128;
    cfg.perfectICache = true;
    return cfg;
}

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s)
        n += c == '\n';
    return n;
}

TEST(PipeTrace, OneLinePerCommittedInstruction)
{
    ProgramBuilder b("traced");
    b.li(intReg(1), 3);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os);
    proc.run();

    const std::string out = os.str();
    // 1 + 3*2 + 1 committed instructions; loop branches predict well
    // enough here that squashes may add a few more lines.
    EXPECT_GE(countLines(out), proc.stats().committed);
    EXPECT_NE(out.find("'bne r1, B"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    EXPECT_NE(out.find(" I@"), std::string::npos);
    EXPECT_NE(out.find(" X@"), std::string::npos);
    EXPECT_NE(out.find(" R@"), std::string::npos);
}

TEST(PipeTrace, MarksSquashesAndMisses)
{
    ProgramBuilder b("squashy");
    Rng rng(3);
    const Addr tab = b.allocWords(16384); // bigger than the cache
    for (int i = 0; i < 16384; i += 7)
        b.initWord(tab + Addr(i) * 8, rng.next());
    b.li(intReg(1), std::int64_t(tab));
    b.li(intReg(2), 120);
    const auto top = b.here();
    const auto skip = b.newLabel();
    b.slli(intReg(3), intReg(2), 9);
    b.xor_(intReg(3), intReg(3), intReg(2));
    b.andi(intReg(3), intReg(3), 16383);
    b.slli(intReg(3), intReg(3), 3);
    b.add(intReg(3), intReg(3), intReg(1));
    b.ldq(intReg(4), intReg(3), 0);      // often a miss
    b.andi(intReg(4), intReg(4), 1);
    b.beq(intReg(4), skip);              // data-dependent
    b.addi(intReg(5), intReg(5), 1);
    b.bind(skip);
    b.subi(intReg(2), intReg(2), 1);
    b.bne(intReg(2), top);
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os);
    proc.run();

    const std::string out = os.str();
    EXPECT_NE(out.find("MISS"), std::string::npos);
    ASSERT_GT(proc.stats().recoveries, 0u);
    EXPECT_NE(out.find("SQUASHED@"), std::string::npos);
    EXPECT_NE(out.find("MISPRED"), std::string::npos);
}

TEST(PipeTrace, MarksForwardedLoads)
{
    ProgramBuilder b("fwd");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 5);
    b.stq(intReg(2), intReg(1), 0);
    b.ldq(intReg(3), intReg(1), 0);
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os);
    proc.run();
    EXPECT_NE(os.str().find("FWD"), std::string::npos);
}

TEST(PipeTrace, DisabledByDefaultAndDetachable)
{
    ProgramBuilder b("quiet");
    b.li(intReg(1), 1);
    b.halt();
    const Program prog = b.build();

    Processor p1(traceConfig(), prog);
    p1.run(); // no trace attached: must not crash

    std::ostringstream os;
    Processor p2(traceConfig(), prog);
    p2.setTrace(&os);
    p2.tick();
    p2.setTrace(nullptr); // detach mid-run
    p2.run();
    // Only events from the traced window appear.
    EXPECT_LE(countLines(os.str()), 2u);
}

// --------------------------------------------------------------- JSONL

/** Split a JSONL blob into parsed per-line documents. */
std::vector<json::Value>
parseJsonl(const std::string &blob)
{
    std::vector<json::Value> docs;
    std::istringstream in(blob);
    std::string line;
    while (std::getline(in, line)) {
        EXPECT_FALSE(line.empty());
        docs.push_back(json::parse(line)); // strict: fatal on error
    }
    return docs;
}

TEST(PipeTrace, JsonlEveryLineParsesAndCarriesStages)
{
    ProgramBuilder b("jsonl");
    b.li(intReg(1), 3);
    const auto top = b.here();
    b.subi(intReg(1), intReg(1), 1);
    b.bne(intReg(1), top);
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os, TraceFormat::Jsonl);
    proc.run();

    const auto docs = parseJsonl(os.str());
    ASSERT_GE(docs.size(), proc.stats().committed);
    std::size_t retired = 0;
    for (const auto &doc : docs) {
        ASSERT_TRUE(doc.isObject());
        EXPECT_TRUE(doc.at("op").isString());
        const std::uint64_t insert = doc.at("insert").asU64();
        const bool squashed = doc.find("squash") != nullptr;
        EXPECT_NE(squashed, doc.find("retire") != nullptr);
        if (squashed)
            continue;
        ++retired;
        // A retired instruction went through every stage, in order.
        const std::uint64_t issue = doc.at("issue").asU64();
        const std::uint64_t complete = doc.at("complete").asU64();
        const std::uint64_t retire = doc.at("retire").asU64();
        EXPECT_GE(issue, insert);
        EXPECT_GE(complete, issue);
        EXPECT_GE(retire, complete);
    }
    EXPECT_EQ(retired, proc.stats().committed);
}

TEST(PipeTrace, JsonlMarksMissForwardAndMispredict)
{
    ProgramBuilder b("jsonl-events");
    const Addr buf = b.allocWords(1);
    b.li(intReg(1), std::int64_t(buf));
    b.li(intReg(2), 5);
    b.stq(intReg(2), intReg(1), 0);
    b.ldq(intReg(3), intReg(1), 0); // forwarded from the store
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os, TraceFormat::Jsonl);
    proc.run();

    bool saw_forwarded = false;
    for (const auto &doc : parseJsonl(os.str())) {
        if (const json::Value *fwd = doc.find("forwarded"))
            saw_forwarded = saw_forwarded || fwd->asBool();
    }
    EXPECT_TRUE(saw_forwarded);
}

TEST(PipeTrace, CyclesAreOrdered)
{
    ProgramBuilder b("order");
    for (int i = 0; i < 10; ++i)
        b.addi(intReg(1), intReg(1), 1);
    b.halt();

    std::ostringstream os;
    Processor proc(traceConfig(), b.build());
    proc.setTrace(&os);
    proc.run();

    // Parse each line's I@/X@/C@/R@ and check monotonicity.
    std::istringstream in(os.str());
    std::string line;
    int checked = 0;
    while (std::getline(in, line)) {
        const auto grab = [&](const char *tag) -> long {
            const auto p = line.find(tag);
            if (p == std::string::npos)
                return -1;
            return std::strtol(line.c_str() + p + 2, nullptr, 10);
        };
        const long i = grab("I@");
        const long x = grab("X@");
        const long c = grab("C@");
        const long r = grab("R@");
        ASSERT_GE(i, 0);
        ASSERT_GE(x, i);
        ASSERT_GE(c, x);
        ASSERT_GE(r, c);
        ++checked;
    }
    EXPECT_EQ(checked, 11);
}

} // namespace
} // namespace drsim
