/**
 * @file
 * Statistics containers used by the live-register accounting.
 *
 * The paper's headline metric is the "90th percentile number of live
 * registers", computed by (footnote 2 of the paper):
 *   1. recording, per benchmark, how many cycles each live-register
 *      count was observed;
 *   2. normalizing each benchmark's distribution by its own run time;
 *   3. averaging the normalized distributions of all benchmarks;
 *   4. reading the register count that covers 90% of the average.
 * Histogram implements step 1-2 and the free functions implement 3-4.
 */

#ifndef DRSIM_COMMON_STATS_HH
#define DRSIM_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace drsim {

/**
 * Dense histogram over small non-negative integer values (e.g. the
 * number of live registers in a cycle).
 */
class Histogram
{
  public:
    /** Record one observation of @p value (one cycle at that count). */
    void
    addSample(std::uint64_t value)
    {
        if (value >= counts_.size())
            counts_.resize(value + 1, 0);
        ++counts_[value];
        ++total_;
    }

    /** Record @p n observations of @p value at once — equivalent to
     *  calling addSample(value) @p n times.  The stall skip-ahead path
     *  uses this to account for a whole run of identical cycles with
     *  one bucket update. */
    void
    addSamples(std::uint64_t value, std::uint64_t n)
    {
        if (n == 0)
            return;
        if (value >= counts_.size())
            counts_.resize(value + 1, 0);
        counts_[value] += n;
        total_ += n;
    }

    /** Total number of recorded samples. */
    std::uint64_t totalSamples() const { return total_; }

    /** Largest value observed (0 if empty). */
    std::uint64_t
    maxValue() const
    {
        return counts_.empty() ? 0 : counts_.size() - 1;
    }

    /** Raw per-value sample counts. */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /**
     * Distribution normalized by the total sample count so it sums
     * to 1 (empty histogram yields an empty density).
     */
    std::vector<double> normalized() const;

    /**
     * Smallest value v such that at least @p fraction of the samples
     * are <= v.  @p fraction must be in (0, 1].
     */
    std::uint64_t percentile(double fraction) const;

    /** Mean of the recorded samples (0 if empty). */
    double mean() const;

    void
    merge(const Histogram &other)
    {
        if (other.counts_.size() > counts_.size())
            counts_.resize(other.counts_.size(), 0);
        for (std::size_t i = 0; i < other.counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Average several normalized distributions point-wise (the paper's
 * cross-benchmark averaging step).  Inputs may have different lengths.
 */
std::vector<double>
averageDensities(const std::vector<std::vector<double>> &densities);

/**
 * Smallest index v such that the cumulative density through v is at
 * least @p fraction.  Returns the last index if the density mass is
 * short of @p fraction (within rounding).
 */
std::uint64_t
densityPercentile(const std::vector<double> &density, double fraction);

/**
 * Cumulative run-time-coverage curve: element v is the fraction of
 * run time with at most v live registers (the y-axis of the paper's
 * Figures 4, 5 and 8).
 */
std::vector<double> coverageCurve(const std::vector<double> &density);

/**
 * Two-sided 95% Student-t critical value for @p dof degrees of
 * freedom (tabulated through 30, the normal quantile 1.96 beyond).
 * The sampling driver uses it for per-window IPC confidence
 * intervals; @p dof must be >= 1.
 */
double tCritical95(std::size_t dof);

/**
 * Half-width of the 95% confidence interval of the mean of
 * @p samples (t-distribution, sample standard deviation).  Returns
 * 0 for fewer than two samples — one window gives no variance
 * estimate, and reporting 0 keeps the field well-defined.
 */
double ci95HalfWidth(const std::vector<double> &samples);

} // namespace drsim

#endif // DRSIM_COMMON_STATS_HH
