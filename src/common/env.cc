#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace drsim {

EnvStatus
envParseU64(const char *name, std::uint64_t &out)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return EnvStatus::Unset;
    // strtoull quietly skips whitespace, accepts a sign (including
    // '-', wrapping the value), and stops at the first non-digit; all
    // three would let a typo'd knob parse as something plausible.
    if (*v == '\0' || !std::isdigit(static_cast<unsigned char>(*v)))
        return EnvStatus::Malformed;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return EnvStatus::Malformed;
    out = errno == ERANGE ? std::numeric_limits<std::uint64_t>::max()
                          : parsed;
    return EnvStatus::Ok;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    std::uint64_t v = 0;
    switch (envParseU64(name, v)) {
      case EnvStatus::Unset:
        return fallback;
      case EnvStatus::Ok:
        return v;
      case EnvStatus::Malformed:
        warn("ignoring malformed ", name, "='", std::getenv(name),
             "' (want a non-negative integer); using ", fallback);
        return fallback;
    }
    return fallback; // unreachable
}

int
envInt(const char *name, int fallback, int lo, int hi)
{
    std::uint64_t v = 0;
    switch (envParseU64(name, v)) {
      case EnvStatus::Unset:
        return fallback;
      case EnvStatus::Malformed:
        warn("ignoring malformed ", name, "='", std::getenv(name),
             "' (want a non-negative integer); using ", fallback);
        return fallback;
      case EnvStatus::Ok:
        break;
    }
    if (v > std::uint64_t(hi)) {
        warn(name, "='", std::getenv(name), "' above ", hi,
             "; clamping");
        return hi;
    }
    if (int(v) < lo) {
        warn(name, "='", std::getenv(name), "' below ", lo,
             "; clamping");
        return lo;
    }
    return int(v);
}

} // namespace drsim
