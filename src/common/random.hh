/**
 * @file
 * Deterministic pseudo-random number generation for workload data.
 *
 * Every source of randomness in drsim flows through this generator with
 * an explicit seed, so each simulation is exactly reproducible.
 */

#ifndef DRSIM_COMMON_RANDOM_HH
#define DRSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace drsim {

/**
 * xorshift64* generator.  Small, fast, and good enough for driving
 * synthetic workload data (branch-outcome words, hash keys, etc.).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). Requires bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial that succeeds with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace drsim

#endif // DRSIM_COMMON_RANDOM_HH
