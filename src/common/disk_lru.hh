/**
 * @file
 * Byte-budgeted LRU eviction for on-disk content-addressed caches.
 *
 * Both disk caches (the sweep-point cache and the checkpoint library)
 * are directories of immutable, atomically-renamed files whose names
 * are content hashes.  Deleting any file is always safe — a reader
 * that loses the race simply misses and recomputes — so an LRU policy
 * reduces to "delete oldest files until the directory fits the
 * budget".  Recency is the file's mtime: stores create files with a
 * fresh mtime, and loaders call touchFile() on a hit, which is the
 * entire LRU bookkeeping.
 *
 * Eviction runs under whatever lock the owning cache holds for its
 * statistics, but the filesystem operations themselves are safe
 * against concurrent processes: a file deleted under a racing reader
 * turns into an ordinary cache miss.
 */

#ifndef DRSIM_COMMON_DISK_LRU_HH
#define DRSIM_COMMON_DISK_LRU_HH

#include <cstdint>
#include <string>

namespace drsim {

/**
 * If the regular files under @p dir (recursively) total more than
 * @p max_bytes, delete them oldest-mtime-first until the total fits
 * (ties broken by path so the scan is deterministic).  @p max_bytes
 * of 0 means unbounded and is a no-op.  In-flight temp files (any
 * path containing ".tmp.") are skipped — their writers hold them for
 * only an instant, and deleting one mid-write would turn an atomic
 * publish into an error.  Returns the number of files evicted;
 * filesystem errors are warned about, never fatal (a cache that
 * cannot evict still works, it just overshoots its budget).
 */
std::uint64_t enforceDirByteCap(const std::string &dir,
                                std::uint64_t max_bytes);

/**
 * Mark @p path recently-used by bumping its mtime to now.  Best
 * effort: failure (e.g. the file was just evicted by another process)
 * is silently ignored.
 */
void touchFile(const std::string &path);

} // namespace drsim

#endif // DRSIM_COMMON_DISK_LRU_HH
