#include "stats.hh"

#include <algorithm>

#include "logging.hh"

namespace drsim {

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> density(counts_.size(), 0.0);
    if (total_ == 0)
        return density;
    const double inv = 1.0 / static_cast<double>(total_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
        density[i] = static_cast<double>(counts_[i]) * inv;
    return density;
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("percentile fraction ", fraction, " outside (0, 1]");
    if (total_ == 0)
        return 0;
    // Accumulate the cumulative *fraction* and compare with the same
    // rounding epsilon densityPercentile() uses, so the two paths
    // agree bucket-for-bucket.  Comparing a raw running count against
    // fraction * total skids to a later bucket whenever the product
    // rounds up (e.g. 0.9 * 10 > 9) or, on large-total histograms,
    // when the accumulation rounds below the target at fraction 1.0.
    const double inv = 1.0 / static_cast<double>(total_);
    double running = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]) * inv;
        if (running + 1e-12 >= fraction)
            return i;
    }
    return counts_.empty() ? 0 : counts_.size() - 1;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        sum += static_cast<double>(i) * static_cast<double>(counts_[i]);
    return sum / static_cast<double>(total_);
}

std::vector<double>
averageDensities(const std::vector<std::vector<double>> &densities)
{
    std::size_t len = 0;
    for (const auto &d : densities)
        len = std::max(len, d.size());
    std::vector<double> avg(len, 0.0);
    if (densities.empty())
        return avg;
    for (const auto &d : densities)
        for (std::size_t i = 0; i < d.size(); ++i)
            avg[i] += d[i];
    const double inv = 1.0 / static_cast<double>(densities.size());
    for (double &v : avg)
        v *= inv;
    return avg;
}

std::uint64_t
densityPercentile(const std::vector<double> &density, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("percentile fraction ", fraction, " outside (0, 1]");
    double running = 0.0;
    for (std::size_t i = 0; i < density.size(); ++i) {
        running += density[i];
        // Tiny epsilon absorbs float rounding when fraction == 1.0.
        if (running + 1e-12 >= fraction)
            return i;
    }
    return density.empty() ? 0 : density.size() - 1;
}

std::vector<double>
coverageCurve(const std::vector<double> &density)
{
    std::vector<double> curve(density.size(), 0.0);
    double running = 0.0;
    for (std::size_t i = 0; i < density.size(); ++i) {
        running += density[i];
        curve[i] = std::min(running, 1.0);
    }
    return curve;
}

} // namespace drsim
