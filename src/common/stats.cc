#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace drsim {

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> density(counts_.size(), 0.0);
    if (total_ == 0)
        return density;
    const double inv = 1.0 / static_cast<double>(total_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
        density[i] = static_cast<double>(counts_[i]) * inv;
    return density;
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("percentile fraction ", fraction, " outside (0, 1]");
    if (total_ == 0)
        return 0;
    // Accumulate the cumulative *fraction* and compare with the same
    // rounding epsilon densityPercentile() uses, so the two paths
    // agree bucket-for-bucket.  Comparing a raw running count against
    // fraction * total skids to a later bucket whenever the product
    // rounds up (e.g. 0.9 * 10 > 9) or, on large-total histograms,
    // when the accumulation rounds below the target at fraction 1.0.
    const double inv = 1.0 / static_cast<double>(total_);
    double running = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]) * inv;
        if (running + 1e-12 >= fraction)
            return i;
    }
    return counts_.empty() ? 0 : counts_.size() - 1;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        sum += static_cast<double>(i) * static_cast<double>(counts_[i]);
    return sum / static_cast<double>(total_);
}

std::vector<double>
averageDensities(const std::vector<std::vector<double>> &densities)
{
    std::size_t len = 0;
    for (const auto &d : densities)
        len = std::max(len, d.size());
    std::vector<double> avg(len, 0.0);
    if (densities.empty())
        return avg;
    for (const auto &d : densities)
        for (std::size_t i = 0; i < d.size(); ++i)
            avg[i] += d[i];
    const double inv = 1.0 / static_cast<double>(densities.size());
    for (double &v : avg)
        v *= inv;
    return avg;
}

std::uint64_t
densityPercentile(const std::vector<double> &density, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("percentile fraction ", fraction, " outside (0, 1]");
    double running = 0.0;
    for (std::size_t i = 0; i < density.size(); ++i) {
        running += density[i];
        // Tiny epsilon absorbs float rounding when fraction == 1.0.
        if (running + 1e-12 >= fraction)
            return i;
    }
    return density.empty() ? 0 : density.size() - 1;
}

double
tCritical95(std::size_t dof)
{
    // Two-sided 95% quantiles of the t distribution, dof 1..30.
    static constexpr double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (dof < 1)
        fatal("t distribution needs at least one degree of freedom");
    if (dof <= 30)
        return kTable[dof - 1];
    return 1.96;
}

double
ci95HalfWidth(const std::vector<double> &samples)
{
    const std::size_t n = samples.size();
    if (n < 2)
        return 0.0;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    const double mean = sum / double(n);
    double ss = 0.0;
    for (double s : samples)
        ss += (s - mean) * (s - mean);
    const double variance = ss / double(n - 1);
    return tCritical95(n - 1) * std::sqrt(variance / double(n));
}

std::vector<double>
coverageCurve(const std::vector<double> &density)
{
    std::vector<double> curve(density.size(), 0.0);
    double running = 0.0;
    for (std::size_t i = 0; i < density.size(); ++i) {
        running += density[i];
        curve[i] = std::min(running, 1.0);
    }
    return curve;
}

} // namespace drsim
