#include "common/disk_lru.hh"

#include <algorithm>
#include <filesystem>
#include <ranges>
#include <vector>

#include "common/logging.hh"

namespace drsim {

namespace fs = std::filesystem;

std::uint64_t
enforceDirByteCap(const std::string &dir, std::uint64_t max_bytes)
{
    if (max_bytes == 0)
        return 0;

    struct Entry
    {
        std::string path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;

    std::error_code ec;
    fs::recursive_directory_iterator it(
        dir, fs::directory_options::skip_permission_denied, ec);
    if (ec)
        return 0; // directory absent: nothing to evict
    for (const fs::directory_entry &de :
         std::ranges::subrange(it, fs::recursive_directory_iterator{})) {
        std::error_code fec;
        if (!de.is_regular_file(fec) || fec)
            continue;
        const std::string path = de.path().string();
        if (path.find(".tmp.") != std::string::npos)
            continue; // a writer is about to rename this into place
        const std::uint64_t bytes = de.file_size(fec);
        if (fec)
            continue;
        const fs::file_time_type mtime = de.last_write_time(fec);
        if (fec)
            continue;
        total += bytes;
        entries.push_back({path, bytes, mtime});
    }
    if (total <= max_bytes)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    std::uint64_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= max_bytes)
            break;
        std::error_code rec;
        if (!fs::remove(e.path, rec) || rec) {
            if (rec) {
                warn("cache eviction could not remove '", e.path,
                     "': ", rec.message());
            }
            continue;
        }
        total -= std::min(total, e.bytes);
        ++evicted;
    }
    return evicted;
}

void
touchFile(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

} // namespace drsim
