/**
 * @file
 * Minimal strict JSON support: a recursive-descent parser producing an
 * immutable value tree, and the string escaper shared by every JSON
 * emitter in the tree (the results exporter and the JSONL pipeline
 * trace).
 *
 * The parser exists so the repo can *consume* its own artifacts — the
 * `stall_report` tool renders stall-breakdown tables from any results
 * file, and the exporter tests round-trip every emitted document —
 * without an external dependency.  It is deliberately strict (RFC 8259
 * grammar, no trailing commas, no comments, single top-level value,
 * nothing after it) so an escaping bug in the emitter cannot ship
 * silently: the round-trip test fails instead.
 *
 * Errors are reported via fatal() (a catchable FatalError), consistent
 * with the rest of the tree.
 */

#ifndef DRSIM_COMMON_JSON_HH
#define DRSIM_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace drsim {
namespace json {

/** One parsed JSON value (object members keep document order). */
class Value
{
  public:
    enum class Kind : std::uint8_t {
        Null, Bool, Number, String, Array, Object
    };

    using Member = std::pair<std::string, Value>;

    Value() : kind_(Kind::Null) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() when the kind does not match. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() checked to be an exact non-negative integer. */
    std::uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<Value> &items() const;
    const std::vector<Member> &members() const;

    /** Object member lookup; nullptr when absent (fatal if not an
     *  object). */
    const Value *find(const std::string &key) const;
    /** Object member lookup; fatal() when absent. */
    const Value &at(const std::string &key) const;
    /** Array element; fatal() when out of range. */
    const Value &at(std::size_t index) const;

    /// @name Construction (used by the parser and tests)
    /// @{
    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::vector<Member> members);
    /// @}

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    std::vector<Member> members_;
};

/**
 * Parse exactly one JSON document from @p text; fatal() (with a
 * line/column location) on any deviation from the RFC 8259 grammar,
 * including trailing content after the top-level value.
 */
Value parse(const std::string &text);

/**
 * Escape @p s for inclusion inside a JSON string literal (quotes not
 * included).  Escapes the two mandatory characters, the common C
 * escapes, and all other control characters as \u00XX.
 */
std::string escape(const std::string &s);

/**
 * Serialize @p v back to a compact (no-whitespace) JSON document.
 * Deterministic: object members keep their stored order, numbers that
 * are exact integers within the 64-bit range are emitted without a
 * fraction, and other numbers use the shortest string that round-trips
 * (std::to_chars).  parse(serialize(v)) reproduces @p v exactly.
 *
 * The serve layer uses this to embed request sub-documents (sweep
 * specs) and to re-emit cached result records; nothing here is meant
 * for human eyes — the pretty emitters in sim/runner.cc stay the
 * source of the documented artifacts.
 */
std::string serialize(const Value &v);

} // namespace json
} // namespace drsim

#endif // DRSIM_COMMON_JSON_HH
