/**
 * @file
 * A flat circular double-ended queue.
 *
 * std::deque allocates and frees fixed-size node blocks as its ends
 * move; on the simulator hot path (the instruction window and the
 * dispatch/ready/store queues, which push and pop every cycle) that
 * node churn dominates the container cost.  RingDeque stores elements
 * in one power-of-two array indexed modulo the capacity, so steady-
 * state push/pop never allocates and operator[] is a mask and an add.
 *
 * Only the operations the simulator needs are provided: both-end push
 * and pop, random access from the front, front/back, size, clear and
 * swap.  Elements are contiguous *logically*, not physically; no
 * iterators are exposed.  Growing doubles the capacity and moves the
 * live elements to the base of the new array (amortized O(1) push).
 */

#ifndef DRSIM_COMMON_RING_DEQUE_HH
#define DRSIM_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace drsim {

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Grow the backing array to hold @p n elements without further
     *  allocation (rounded up to a power of two). */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            regrow(n);
    }

    T &
    operator[](std::size_t i)
    {
        return buf_[(head_ + i) & mask_];
    }
    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[(head_ + count_ - 1) & mask_]; }
    const T &back() const { return buf_[(head_ + count_ - 1) & mask_]; }

    void
    push_back(const T &value)
    {
        if (count_ == buf_.size())
            regrow(count_ + 1);
        buf_[(head_ + count_) & mask_] = value;
        ++count_;
    }
    void
    push_back(T &&value)
    {
        if (count_ == buf_.size())
            regrow(count_ + 1);
        buf_[(head_ + count_) & mask_] = std::move(value);
        ++count_;
    }

    /**
     * Value-initialize a new back element in place and return it, so
     * large elements (the instruction window's DynInsts) are built in
     * their final slot instead of copied in.  The reference is valid
     * until the next push/pop/reserve.
     */
    T &
    emplace_back()
    {
        if (count_ == buf_.size())
            regrow(count_ + 1);
        T &slot = buf_[(head_ + count_) & mask_];
        slot = T{};
        ++count_;
        return slot;
    }

    void
    pop_front()
    {
        if (count_ == 0)
            DRSIM_PANIC("pop_front on empty RingDeque");
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    pop_back()
    {
        if (count_ == 0)
            DRSIM_PANIC("pop_back on empty RingDeque");
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    void
    swap(RingDeque &other) noexcept
    {
        buf_.swap(other.buf_);
        std::swap(head_, other.head_);
        std::swap(count_, other.count_);
        std::swap(mask_, other.mask_);
    }

  private:
    void
    regrow(std::size_t need)
    {
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < need)
            cap <<= 1;
        std::vector<T> grown(cap);
        for (std::size_t i = 0; i < count_; ++i)
            grown[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_.swap(grown);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;
};

} // namespace drsim

#endif // DRSIM_COMMON_RING_DEQUE_HH
