/**
 * @file
 * Fundamental scalar type aliases shared by every drsim module.
 */

#ifndef DRSIM_COMMON_TYPES_HH
#define DRSIM_COMMON_TYPES_HH

#include <cstdint>

namespace drsim {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/**
 * Program-order sequence number of a dynamic instruction.
 *
 * Sequence numbers are contiguous within the in-flight window; numbers
 * belonging to squashed wrong-path instructions are reused by the
 * instructions fetched down the correct path, so comparisons between
 * live sequence numbers always reflect program order.
 */
using InstSeqNum = std::uint64_t;

/**
 * Globally unique dynamic-instruction identifier.  Unlike InstSeqNum,
 * a Uid is never reused, which lets deferred events detect that the
 * instruction they referenced has been squashed and replaced.
 */
using InstUid = std::uint64_t;

/** Index of a physical register within one register file. */
using PhysRegIndex = std::uint16_t;

/** Sentinel for "no physical register". */
constexpr PhysRegIndex kInvalidPhysReg = 0xffff;

/** Sentinel for "no cycle scheduled yet". */
constexpr Cycle kInvalidCycle = ~Cycle{0};

} // namespace drsim

#endif // DRSIM_COMMON_TYPES_HH
