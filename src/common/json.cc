#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace drsim {
namespace json {

// --------------------------------------------------------------- Value

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    return num_;
}

std::uint64_t
Value::asU64() const
{
    const double v = asNumber();
    if (v < 0.0 || v != std::floor(v) || v > 1.8446744073709552e19)
        fatal("JSON number ", v, " is not an unsigned integer");
    return static_cast<std::uint64_t>(v);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return str_;
}

const std::vector<Value> &
Value::items() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is not an array");
    return items_;
}

const std::vector<Value::Member> &
Value::members() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is not an object");
    return members_;
}

const Value *
Value::find(const std::string &key) const
{
    for (const Member &m : members())
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (v == nullptr)
        fatal("JSON object has no member '", key, "'");
    return *v;
}

const Value &
Value::at(std::size_t index) const
{
    const auto &a = items();
    if (index >= a.size())
        fatal("JSON array index ", index, " out of range (size ",
              a.size(), ")");
    return a[index];
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double n)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::vector<Member> members)
{
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

// -------------------------------------------------------------- Parser

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            err("trailing content after the top-level value");
        return v;
    }

  private:
    [[noreturn]] void
    err(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("JSON parse error at line ", line, ", column ", col,
              ": ", what);
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            err("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (next() != c)
            err(std::string("expected '") + c + "'");
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p)
            if (atEnd() || text_[pos_++] != *p)
                err(std::string("invalid literal (expected '") + word +
                    "')");
    }

    Value
    parseValue()
    {
        if (atEnd())
            err("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value::makeString(parseString());
          case 't': literal("true"); return Value::makeBool(true);
          case 'f': literal("false"); return Value::makeBool(false);
          case 'n': literal("null"); return Value::makeNull();
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        std::vector<Value::Member> members;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value::makeObject(std::move(members));
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                err("object key must be a string");
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            members.emplace_back(std::move(key), parseValue());
            skipWs();
            const char c = next();
            if (c == '}')
                break;
            if (c != ',')
                err("expected ',' or '}' in object");
        }
        return Value::makeObject(std::move(members));
    }

    Value
    parseArray()
    {
        expect('[');
        std::vector<Value> items;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value::makeArray(std::move(items));
        }
        while (true) {
            skipWs();
            items.push_back(parseValue());
            skipWs();
            const char c = next();
            if (c == ']')
                break;
            if (c != ',')
                err("expected ',' or ']' in array");
        }
        return Value::makeArray(std::move(items));
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= unsigned(c - 'A' + 10);
            else
                err("invalid \\u escape digit");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xf0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3f));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                err("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char e = next();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = hex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    expect('\\');
                    expect('u');
                    const unsigned lo = hex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        err("unpaired UTF-16 surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    err("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: err("invalid escape sequence");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (atEnd())
            err("truncated number");
        // Integer part: one digit, or a nonzero digit followed by more.
        if (peek() == '0') {
            ++pos_;
        } else if (peek() >= '1' && peek() <= '9') {
            while (!atEnd() && text_[pos_] >= '0' && text_[pos_] <= '9')
                ++pos_;
        } else {
            err("invalid number");
        }
        if (!atEnd() && text_[pos_] == '.') {
            ++pos_;
            if (atEnd() || text_[pos_] < '0' || text_[pos_] > '9')
                err("digits required after decimal point");
            while (!atEnd() && text_[pos_] >= '0' && text_[pos_] <= '9')
                ++pos_;
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (atEnd() || text_[pos_] < '0' || text_[pos_] > '9')
                err("digits required in exponent");
            while (!atEnd() && text_[pos_] >= '0' && text_[pos_] <= '9')
                ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        return Value::makeNumber(std::strtod(tok.c_str(), nullptr));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
serializeNumber(std::string &out, double v)
{
    // Exact integers in the 64-bit range print without a fraction so
    // counters survive a parse/serialize round trip byte-for-byte;
    // everything else uses the shortest round-tripping form.
    if (v == std::floor(v) && !std::signbit(v) &&
        v <= 18446744073709549568.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out += buf;
        return;
    }
    if (v == std::floor(v) && v < 0.0 &&
        v >= -9223372036854774784.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void
serializeValue(std::string &out, const Value &v)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Number:
        serializeNumber(out, v.asNumber());
        return;
      case Value::Kind::String:
        out += '"';
        out += escape(v.asString());
        out += '"';
        return;
      case Value::Kind::Array: {
        out += '[';
        const auto &items = v.items();
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i > 0)
                out += ',';
            serializeValue(out, items[i]);
        }
        out += ']';
        return;
      }
      case Value::Kind::Object: {
        out += '{';
        const auto &members = v.members();
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i > 0)
                out += ',';
            out += '"';
            out += escape(members[i].first);
            out += "\":";
            serializeValue(out, members[i].second);
        }
        out += '}';
        return;
      }
    }
    DRSIM_PANIC("invalid json::Value kind ", int(v.kind()));
}

} // namespace

std::string
serialize(const Value &v)
{
    std::string out;
    serializeValue(out, v);
    return out;
}

} // namespace json
} // namespace drsim
