/**
 * @file
 * A fixed-size worker pool for fanning out independent simulations.
 *
 * The pool is deliberately minimal — no futures, no work stealing, no
 * dynamic sizing: callers submit plain closures, then block in wait()
 * until every submitted task has finished.  Results travel through
 * whatever storage the closures capture (the experiment runner
 * pre-sizes a result vector and has task i write slot i, so the
 * completion *order* of tasks can never affect the assembled output).
 *
 * Exceptions thrown by a task are captured; wait() rethrows the first
 * one after the batch has drained, leaving the pool reusable.  This is
 * how fatal() configuration errors raised inside a worker reach the
 * submitting thread (see logging.hh).
 *
 * TaskGroup adds one level of *nested* parallelism for the sampling
 * driver (DESIGN.md §5j): a task already running on a pool worker can
 * fan its measured windows out over the same pool without
 * oversubscribing it.  The owning thread's TaskGroup::wait() first
 * *helps* — it claims and runs its own group's still-queued tasks
 * inline — and only blocks once every remaining group task is in the
 * hands of another worker.  Group tasks must therefore never block on
 * the pool themselves (they may not create sub-groups); under that
 * rule the helping owner guarantees forward progress even on a
 * single-worker pool, so the construction is deadlock-free.
 */

#ifndef DRSIM_COMMON_THREAD_POOL_HH
#define DRSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace drsim {

class ThreadPool
{
  public:
    class TaskGroup;

    /** Spawn @p num_threads workers (values < 1 are clamped to 1). */
    explicit ThreadPool(int num_threads)
    {
        if (num_threads < 1)
            num_threads = 1;
        workers_.reserve(std::size_t(num_threads));
        for (int i = 0; i < num_threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        workAvailable_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return int(workers_.size()); }

    /**
     * The pool whose worker the calling thread is, or nullptr when
     * called from any other thread.  Lets nested code (the sampling
     * driver) discover that it is already running on a pool and join
     * it via a TaskGroup instead of spawning a second pool.
     */
    static ThreadPool *current() { return tlsCurrent_; }

    /** Enqueue @p task; it may start running immediately. */
    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back({std::move(task), nullptr});
            ++unfinished_;
        }
        workAvailable_.notify_one();
    }

    /**
     * Block until every task submitted so far has finished.  If any
     * ungrouped task threw, rethrows the first captured exception
     * (later ones are dropped) and clears it, so the pool stays usable
     * for the next batch.  Waiting on an empty pool returns
     * immediately.  (Grouped tasks deliver their exceptions through
     * TaskGroup::wait() instead.)
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batchDone_.wait(lock, [this] { return unfinished_ == 0; });
        if (firstError_) {
            std::exception_ptr err = firstError_;
            firstError_ = nullptr;
            std::rethrow_exception(err);
        }
    }

    /**
     * Convenience: run fn(0) .. fn(count - 1) on the pool and wait.
     * @p fn must be safe to invoke concurrently for distinct indices.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t count, Fn &&fn)
    {
        for (std::size_t i = 0; i < count; ++i)
            submit([&fn, i] { fn(i); });
        wait();
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int
    hardwareJobs()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : int(hw);
    }

  private:
    struct Task
    {
        std::function<void()> body;
        TaskGroup *group;
    };

    void submitGrouped(TaskGroup *group, std::function<void()> task);
    bool runOneGroupTask(TaskGroup *group);
    void runTask(Task &&task);

    void
    workerLoop()
    {
        tlsCurrent_ = this;
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                workAvailable_.wait(lock, [this] {
                    return stopping_ || !tasks_.empty();
                });
                if (tasks_.empty())
                    return; // stopping, queue drained
                task = std::move(tasks_.front());
                tasks_.pop_front();
            }
            runTask(std::move(task));
        }
    }

    inline static thread_local ThreadPool *tlsCurrent_ = nullptr;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable batchDone_;
    std::deque<Task> tasks_;
    std::vector<std::thread> workers_;
    std::size_t unfinished_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * A batch of tasks fanned out on an existing pool by one *owning*
 * thread (typically itself a pool worker).  The owner submits, then
 * wait()s; no other thread may touch the group.  Group tasks must not
 * block on the pool (no nested groups) — see the file comment for the
 * deadlock-freedom argument.
 */
class ThreadPool::TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** Drains remaining tasks; any pending exception is dropped (call
     *  wait() yourself to observe it). */
    ~TaskGroup()
    {
        try {
            wait();
        } catch (...) {
        }
    }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue @p task on the underlying pool under this group. */
    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++unfinished_;
        }
        pool_.submitGrouped(this, std::move(task));
    }

    /**
     * Run this group's still-queued tasks inline, then block until the
     * ones other workers claimed have finished.  Rethrows the first
     * captured task exception (and clears it, leaving the group
     * reusable).
     */
    void
    wait()
    {
        while (pool_.runOneGroupTask(this)) {
        }
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return unfinished_ == 0; });
        if (firstError_) {
            std::exception_ptr err = firstError_;
            firstError_ = nullptr;
            std::rethrow_exception(err);
        }
    }

  private:
    friend class ThreadPool;

    void
    finish(std::exception_ptr err)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (err && !firstError_)
            firstError_ = err;
        if (--unfinished_ == 0)
            done_.notify_all();
    }

    ThreadPool &pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t unfinished_ = 0;
    std::exception_ptr firstError_;
};

inline void
ThreadPool::submitGrouped(TaskGroup *group, std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back({std::move(task), group});
        ++unfinished_;
    }
    workAvailable_.notify_one();
}

inline bool
ThreadPool::runOneGroupTask(TaskGroup *group)
{
    Task task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = tasks_.begin();
        while (it != tasks_.end() && it->group != group)
            ++it;
        if (it == tasks_.end())
            return false;
        task = std::move(*it);
        tasks_.erase(it);
    }
    runTask(std::move(task));
    return true;
}

inline void
ThreadPool::runTask(Task &&task)
{
    std::exception_ptr err;
    try {
        task.body();
    } catch (...) {
        err = std::current_exception();
    }
    if (task.group != nullptr)
        task.group->finish(err);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (err && task.group == nullptr && !firstError_)
            firstError_ = err;
        --unfinished_;
        if (unfinished_ == 0)
            batchDone_.notify_all();
    }
}

} // namespace drsim

#endif // DRSIM_COMMON_THREAD_POOL_HH
