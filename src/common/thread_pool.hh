/**
 * @file
 * A fixed-size worker pool for fanning out independent simulations.
 *
 * The pool is deliberately minimal — no futures, no work stealing, no
 * dynamic sizing: callers submit plain closures, then block in wait()
 * until every submitted task has finished.  Results travel through
 * whatever storage the closures capture (the experiment runner
 * pre-sizes a result vector and has task i write slot i, so the
 * completion *order* of tasks can never affect the assembled output).
 *
 * Exceptions thrown by a task are captured; wait() rethrows the first
 * one after the batch has drained, leaving the pool reusable.  This is
 * how fatal() configuration errors raised inside a worker reach the
 * submitting thread (see logging.hh).
 */

#ifndef DRSIM_COMMON_THREAD_POOL_HH
#define DRSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace drsim {

class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (values < 1 are clamped to 1). */
    explicit ThreadPool(int num_threads)
    {
        if (num_threads < 1)
            num_threads = 1;
        workers_.reserve(std::size_t(num_threads));
        for (int i = 0; i < num_threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        workAvailable_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return int(workers_.size()); }

    /** Enqueue @p task; it may start running immediately. */
    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back(std::move(task));
            ++unfinished_;
        }
        workAvailable_.notify_one();
    }

    /**
     * Block until every task submitted so far has finished.  If any
     * task threw, rethrows the first captured exception (later ones
     * are dropped) and clears it, so the pool stays usable for the
     * next batch.  Waiting on an empty pool returns immediately.
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batchDone_.wait(lock, [this] { return unfinished_ == 0; });
        if (firstError_) {
            std::exception_ptr err = firstError_;
            firstError_ = nullptr;
            std::rethrow_exception(err);
        }
    }

    /**
     * Convenience: run fn(0) .. fn(count - 1) on the pool and wait.
     * @p fn must be safe to invoke concurrently for distinct indices.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t count, Fn &&fn)
    {
        for (std::size_t i = 0; i < count; ++i)
            submit([&fn, i] { fn(i); });
        wait();
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int
    hardwareJobs()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : int(hw);
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                workAvailable_.wait(lock, [this] {
                    return stopping_ || !tasks_.empty();
                });
                if (tasks_.empty())
                    return; // stopping, queue drained
                task = std::move(tasks_.front());
                tasks_.pop_front();
            }
            std::exception_ptr err;
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (err && !firstError_)
                    firstError_ = err;
                --unfinished_;
                if (unfinished_ == 0)
                    batchDone_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable batchDone_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    std::size_t unfinished_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace drsim

#endif // DRSIM_COMMON_THREAD_POOL_HH
