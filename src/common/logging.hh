/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal simulator invariant was violated; aborts so the
 *            failure can be debugged.
 * fatal()  — the user asked for something the simulator cannot do (bad
 *            configuration, inconsistent parameters); exits cleanly.
 * warn()   — something works but deserves the user's attention.
 * inform() — plain status output.
 */

#ifndef DRSIM_COMMON_LOGGING_HH
#define DRSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace drsim {

/** Thrown by fatal() so callers (and tests) can intercept user errors. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string what) : what_(std::move(what)) {}
    const char *what() const noexcept override { return what_.c_str(); }

  private:
    std::string what_;
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal ostream-based message formatter. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort on a violated internal invariant.  Usage: panic("x=", x). */
#define DRSIM_PANIC(...) \
    ::drsim::detail::panicImpl(__FILE__, __LINE__, \
                               ::drsim::detail::format(__VA_ARGS__))

/** Abort (by exception) on a user configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::format(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::format(std::forward<Args>(args)...));
}

} // namespace drsim

#endif // DRSIM_COMMON_LOGGING_HH
