/**
 * @file
 * Hardened environment-variable parsing shared by the runner, the
 * experiment registry, and the benchmark harnesses.
 *
 * The old bench-local helper passed getenv() output straight to
 * strtoull with no end-pointer check, so `DRSIM_SCALE=2x` silently ran
 * at scale 2 and `DRSIM_SCALE=fast` silently ran at scale 0.  Here a
 * value is accepted only if the *entire* string parses as a
 * non-negative decimal integer; anything else is rejected with a
 * warning and the caller's fallback is used instead.
 */

#ifndef DRSIM_COMMON_ENV_HH
#define DRSIM_COMMON_ENV_HH

#include <cstdint>

namespace drsim {

/** Outcome of looking up and parsing one environment variable. */
enum class EnvStatus : std::uint8_t {
    Unset,     ///< variable not present in the environment
    Ok,        ///< parsed cleanly (saturated to UINT64_MAX on overflow)
    Malformed, ///< present but not a non-negative decimal integer
};

/**
 * Look up @p name and parse it as a non-negative decimal u64 into
 * @p out.  Rejects empty values, signs, and trailing garbage
 * (Malformed; @p out untouched).  Values beyond UINT64_MAX saturate
 * and still count as Ok — the callers that care (resolveJobs) clamp
 * loudly themselves.  Never warns; use envU64() for the
 * warn-and-fall-back behaviour.
 */
EnvStatus envParseU64(const char *name, std::uint64_t &out);

/**
 * envParseU64() with the common policy applied: Unset returns
 * @p fallback silently, Malformed warns and returns @p fallback.
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/**
 * envU64() narrowed to int with clamping: values outside
 * [@p lo, @p hi] are clamped with a warning (the fallback itself is
 * returned unclamped, so a caller's default is always honoured).
 */
int envInt(const char *name, int fallback, int lo, int hi);

} // namespace drsim

#endif // DRSIM_COMMON_ENV_HH
