#include "sim/runner.hh"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace drsim {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    std::uint64_t v = 0;
    switch (envParseU64("DRSIM_JOBS", v)) {
      case EnvStatus::Unset:
        break;
      case EnvStatus::Malformed:
        warn("ignoring invalid DRSIM_JOBS='",
             std::getenv("DRSIM_JOBS"), "'");
        break;
      case EnvStatus::Ok:
        if (v > std::uint64_t(kMaxJobs)) {
            // Beyond any sane pool size (envParseU64 saturates on
            // overflow); clamp loudly instead of silently truncating.
            warn("DRSIM_JOBS='", std::getenv("DRSIM_JOBS"),
                 "' out of range; clamping to ", kMaxJobs);
            return kMaxJobs;
        }
        if (v == 0)
            return ThreadPool::hardwareJobs(); // explicit auto-detect
        return int(v);
    }
    return ThreadPool::hardwareJobs();
}

SuiteResult
runSuite(const CoreConfig &config, const std::vector<Workload> &suite,
         int jobs)
{
    jobs = resolveJobs(jobs);
    if (jobs == 1 || suite.size() <= 1)
        return runSuite(config, suite); // legacy serial path

    std::vector<SimResult> runs(suite.size());
    ThreadPool pool(jobs);
    pool.parallelFor(suite.size(), [&](std::size_t i) {
        runs[i] = simulate(config, suite[i]);
    });
    return SuiteResult(std::move(runs));
}

std::vector<ExperimentResult>
runExperiments(const std::vector<ExperimentSpec> &specs,
               const std::vector<Workload> &suite, int jobs)
{
    if (specs.empty())
        fatal("runExperiments needs at least one spec");
    jobs = resolveJobs(jobs);

    // One flat (spec, workload) task grid so small sweeps still fill
    // every worker; slot (s, w) is written by exactly one task.
    std::vector<std::vector<SimResult>> grid(
        specs.size(), std::vector<SimResult>(suite.size()));
    const std::size_t total = specs.size() * suite.size();
    const auto runCell = [&](std::size_t flat) {
        const std::size_t s = flat / suite.size();
        const std::size_t w = flat % suite.size();
        grid[s][w] = simulate(specs[s].config, suite[w]);
    };
    if (jobs == 1 || total <= 1) {
        for (std::size_t flat = 0; flat < total; ++flat)
            runCell(flat);
    } else {
        ThreadPool pool(jobs);
        pool.parallelFor(total, runCell);
    }

    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s)
        results.push_back({specs[s], SuiteResult(std::move(grid[s]))});
    return results;
}

namespace {

/** Minimal JSON emitter: deterministic, shortest-round-trip doubles. */
class JsonOut
{
  public:
    explicit JsonOut(std::ostream &os) : os_(os) {}

    void
    string(const std::string &s)
    {
        os_ << '"' << json::escape(s) << '"';
    }

    void
    number(double v)
    {
        // std::to_chars emits the shortest string that round-trips,
        // locale-independent — the determinism the schema promises.
        char buf[64];
        const auto res = std::to_chars(buf, buf + sizeof(buf), v);
        os_.write(buf, res.ptr - buf);
    }

    void number(std::uint64_t v) { os_ << v; }
    void number(int v) { os_ << v; }
    void boolean(bool v) { os_ << (v ? "true" : "false"); }
    void null() { os_ << "null"; }

    /** A ratio whose denominator may be zero: null when undefined,
     *  so downstream tooling cannot mistake "no samples" for 0.0. */
    void
    ratio(double v, bool defined)
    {
        if (defined)
            number(v);
        else
            null();
    }

    void raw(const char *s) { os_ << s; }

    /** "key": prefix at the current indent. */
    void
    key(int indent, const char *name)
    {
        pad(indent);
        os_ << '"' << name << "\": ";
    }

    void
    pad(int indent)
    {
        for (int i = 0; i < indent; ++i)
            os_ << ' ';
    }

  private:
    std::ostream &os_;
};

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::Running: return "running";
      case StopReason::Halted: return "halted";
      case StopReason::InstLimit: return "inst-limit";
    }
    DRSIM_PANIC("invalid StopReason ", int(r));
}

/** {"mean": .., "p90": .., "max": ..} for one occupancy histogram. */
void
emitOccupancy(JsonOut &j, const Histogram &h, int in)
{
    j.raw("{\n");
    j.key(in + 2, "mean"); j.number(h.mean()); j.raw(",\n");
    j.key(in + 2, "p90"); j.number(h.percentile(0.90)); j.raw(",\n");
    j.key(in + 2, "max"); j.number(h.maxValue()); j.raw("\n");
    j.pad(in); j.raw("}");
}

void
emitWorkload(JsonOut &j, const SimResult &r, int in)
{
    const bool ran = r.proc.cycles > 0;
    j.pad(in); j.raw("{\n");
    j.key(in + 2, "name"); j.string(r.workload); j.raw(",\n");
    j.key(in + 2, "fp_intensive"); j.boolean(r.fpIntensive);
    j.raw(",\n");
    j.key(in + 2, "stop_reason");
    j.string(stopReasonName(r.stopReason)); j.raw(",\n");
    j.key(in + 2, "cycles"); j.number(std::uint64_t(r.proc.cycles));
    j.raw(",\n");
    j.key(in + 2, "committed"); j.number(r.proc.committed);
    j.raw(",\n");
    j.key(in + 2, "executed"); j.number(r.proc.executed); j.raw(",\n");
    j.key(in + 2, "executed_loads"); j.number(r.proc.executedLoads);
    j.raw(",\n");
    j.key(in + 2, "executed_cond_branches");
    j.number(r.proc.executedCondBranches); j.raw(",\n");
    j.key(in + 2, "issue_ipc"); j.ratio(r.issueIpc(), ran);
    j.raw(",\n");
    j.key(in + 2, "commit_ipc"); j.ratio(r.commitIpc(), ran);
    j.raw(",\n");
    // Sampled-mode estimate (schema v2, additive: only present when
    // the run used interval sampling, so full-detail artifacts stay
    // byte-identical).
    if (r.sampled.enabled) {
        j.key(in + 2, "ipc_estimate");
        j.number(r.sampled.ipcEstimate); j.raw(",\n");
        j.key(in + 2, "ci95"); j.number(r.sampled.ci95); j.raw(",\n");
        j.key(in + 2, "windows"); j.number(r.sampled.windows);
        j.raw(",\n");
        j.key(in + 2, "fast_forwarded");
        j.number(r.sampled.fastForwarded); j.raw(",\n");
    }
    j.key(in + 2, "load_miss_rate");
    j.ratio(r.loadMissRate, r.proc.executedLoads > 0); j.raw(",\n");
    j.key(in + 2, "mispredict_rate");
    j.ratio(r.mispredictRate(), r.proc.executedCondBranches > 0);
    j.raw(",\n");
    j.key(in + 2, "no_free_reg_pct"); j.ratio(r.noFreeRegPct(), ran);
    j.raw(",\n");

    // Exclusive per-cycle attribution (schema v2): busy_cycles +
    // issue_width_bound_cycles + sum(stall_cycles.*) == cycles.
    j.key(in + 2, "busy_cycles");
    j.number(r.proc.cycleCauseCount(CycleCause::Busy)); j.raw(",\n");
    j.key(in + 2, "issue_width_bound_cycles");
    j.number(r.proc.cycleCauseCount(CycleCause::IssueWidthBound));
    j.raw(",\n");
    j.key(in + 2, "stall_cycles"); j.raw("{\n");
    // The result_bus bucket (schema v2, additive) is omitted when no
    // cycle was attributed to it, keeping unlimited-bus artifacts
    // byte-identical to the pre-bucket schema.
    std::vector<int> emitted;
    for (int c = int(CycleCause::WriteBufferFull);
         c < kNumCycleCauses; ++c) {
        if (CycleCause(c) == CycleCause::ResultBus &&
            r.proc.causeCycles[c] == 0) {
            continue;
        }
        emitted.push_back(c);
    }
    for (std::size_t i = 0; i < emitted.size(); ++i) {
        const int c = emitted[i];
        j.key(in + 4, cycleCauseName(CycleCause(c)));
        j.number(r.proc.causeCycles[c]);
        j.raw(i + 1 < emitted.size() ? ",\n" : "\n");
    }
    j.pad(in + 2); j.raw("}");

    // Structure-occupancy summaries; present only when the run sampled
    // them (collectOccupancyHistograms).
    if (r.proc.dqDepth.totalSamples() > 0) {
        j.raw(",\n");
        j.key(in + 2, "occupancy"); j.raw("{\n");
        j.key(in + 4, "dispatch_queue");
        emitOccupancy(j, r.proc.dqDepth, in + 4); j.raw(",\n");
        j.key(in + 4, "window");
        emitOccupancy(j, r.proc.windowDepth, in + 4); j.raw(",\n");
        j.key(in + 4, "store_queue");
        emitOccupancy(j, r.proc.storeQueueDepth, in + 4); j.raw("\n");
        j.pad(in + 2); j.raw("}");
    }
    j.raw("\n");
    j.pad(in); j.raw("}");
}

void
emitLivePercentiles(JsonOut &j, const SuiteResult &suite, RegClass cls,
                    int in)
{
    static const struct { const char *name; LiveLevel level; } kLevels[] = {
        {"in_flight", LiveLevel::InFlight},
        {"plus_queue", LiveLevel::PlusQueue},
        {"imprecise", LiveLevel::ImpreciseLive},
        {"precise", LiveLevel::PreciseLive},
    };
    j.raw("{\n");
    for (std::size_t i = 0; i < 4; ++i) {
        j.key(in + 2, kLevels[i].name);
        j.number(suite.livePercentile(cls, kLevels[i].level, 0.90));
        j.raw(i + 1 < 4 ? ",\n" : "\n");
    }
    j.pad(in); j.raw("}");
}

void
emitExperiment(JsonOut &j, const ExperimentResult &res, int in)
{
    const CoreConfig &cfg = res.spec.config;
    j.pad(in); j.raw("{\n");
    j.key(in + 2, "name"); j.string(res.spec.name); j.raw(",\n");

    j.key(in + 2, "config"); j.raw("{\n");
    j.key(in + 4, "issue_width"); j.number(cfg.issueWidth); j.raw(",\n");
    j.key(in + 4, "dq_size"); j.number(cfg.dqSize); j.raw(",\n");
    j.key(in + 4, "num_phys_regs"); j.number(cfg.numPhysRegs);
    j.raw(",\n");
    j.key(in + 4, "exception_model");
    j.string(exceptionModelName(cfg.exceptionModel)); j.raw(",\n");
    j.key(in + 4, "cache_kind"); j.string(cacheKindName(cfg.cacheKind));
    j.raw(",\n");
    j.key(in + 4, "max_committed"); j.number(cfg.maxCommitted);
    // Non-default predictor / result-bus settings only (schema v2,
    // additive: default-config artifacts stay byte-identical).
    if (cfg.predictor != "mcfarling") {
        j.raw(",\n");
        j.key(in + 4, "predictor"); j.string(cfg.predictor);
    }
    if (cfg.resultBuses != 0) {
        j.raw(",\n");
        j.key(in + 4, "result_buses"); j.number(cfg.resultBuses);
    }
    if (cfg.sampling.enabled()) {
        j.raw(",\n");
        j.key(in + 4, "sampling"); j.raw("{\n");
        j.key(in + 6, "interval"); j.number(cfg.sampling.interval);
        j.raw(",\n");
        j.key(in + 6, "window"); j.number(cfg.sampling.window);
        j.raw(",\n");
        j.key(in + 6, "warmup"); j.number(cfg.sampling.warmup);
        j.raw(",\n");
        j.key(in + 6, "warmff"); j.number(cfg.sampling.warmff);
        j.raw("\n");
        j.pad(in + 4); j.raw("}");
    }
    j.raw("\n");
    j.pad(in + 2); j.raw("},\n");

    j.key(in + 2, "workloads"); j.raw("[\n");
    const auto &runs = res.suite.runs();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        emitWorkload(j, runs[i], in + 4);
        j.raw(i + 1 < runs.size() ? ",\n" : "\n");
    }
    j.pad(in + 2); j.raw("],\n");

    bool any_fp = false;
    bool any_live = false;
    for (const auto &r : runs) {
        any_fp = any_fp || r.fpIntensive;
        any_live = any_live ||
                   r.proc.live[int(RegClass::Int)]
                             [int(LiveLevel::PreciseLive)]
                                 .totalSamples() > 0;
    }

    j.key(in + 2, "summary"); j.raw("{\n");
    j.key(in + 4, "avg_issue_ipc"); j.number(res.suite.avgIssueIpc());
    j.raw(",\n");
    j.key(in + 4, "avg_commit_ipc"); j.number(res.suite.avgCommitIpc());
    j.raw(",\n");
    j.key(in + 4, "avg_no_free_reg_pct");
    j.number(res.suite.avgNoFreeRegPct()); j.raw(",\n");
    j.key(in + 4, "avg_stall_pct");
    j.number(res.suite.avgStallPct());
    if (any_live) {
        j.raw(",\n");
        j.key(in + 4, "live_p90"); j.raw("{\n");
        j.key(in + 6, "int");
        emitLivePercentiles(j, res.suite, RegClass::Int, in + 6);
        if (any_fp) {
            j.raw(",\n");
            j.key(in + 6, "fp");
            emitLivePercentiles(j, res.suite, RegClass::Fp, in + 6);
        }
        j.raw("\n");
        j.pad(in + 4); j.raw("}");
    }
    j.raw("\n");
    j.pad(in + 2); j.raw("}\n");
    j.pad(in); j.raw("}");
}

} // namespace

std::string
resultsJson(const RunInfo &info,
            const std::vector<ExperimentResult> &results)
{
    if (results.empty())
        fatal("resultsJson needs at least one experiment");
    std::ostringstream os;
    JsonOut j(os);

    j.raw("{\n");
    j.key(2, "schema_version"); j.number(2); j.raw(",\n");
    j.key(2, "run_id"); j.string(info.runId); j.raw(",\n");

    j.key(2, "suite"); j.raw("{\n");
    j.key(4, "scale"); j.number(info.scale); j.raw(",\n");
    j.key(4, "max_committed"); j.number(info.maxCommitted); j.raw(",\n");
    j.key(4, "workloads"); j.raw("[");
    const auto &runs = results.front().suite.runs();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        j.string(runs[i].workload);
        if (i + 1 < runs.size())
            j.raw(", ");
    }
    j.raw("]\n");
    j.pad(2); j.raw("},\n");

    j.key(2, "experiments"); j.raw("[\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        emitExperiment(j, results[i], 4);
        j.raw(i + 1 < results.size() ? ",\n" : "\n");
    }
    j.pad(2); j.raw("]\n");
    j.raw("}\n");
    return os.str();
}

void
writeResultsFile(const std::string &path, const RunInfo &info,
                 const std::vector<ExperimentResult> &results)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open results file '", path, "' for writing");
    out << resultsJson(info, results);
    out.flush();
    if (!out)
        fatal("failed writing results file '", path, "'");
}

namespace {

/** Wall-clock divisions never see a zero denominator. */
double
clampSeconds(double s)
{
    return s > 1e-9 ? s : 1e-9;
}

double
mips(std::uint64_t committed, double seconds)
{
    return double(committed) / clampSeconds(seconds) / 1e6;
}

void
emitSpeedLeg(JsonOut &j, std::uint64_t committed, double seconds,
             int in)
{
    j.raw("{\n");
    j.key(in + 2, "seconds"); j.number(seconds); j.raw(",\n");
    j.key(in + 2, "mips"); j.number(mips(committed, seconds));
    j.raw("\n");
    j.pad(in); j.raw("}");
}

void
emitPhaseSeconds(JsonOut &j, const SampledPhaseSeconds &p, int in)
{
    j.raw("{\n");
    j.key(in + 2, "seconds"); j.number(p.total); j.raw(",\n");
    j.key(in + 2, "acquire_seconds"); j.number(p.acquire);
    j.raw(",\n");
    j.key(in + 2, "warmup_seconds"); j.number(p.warmup); j.raw(",\n");
    j.key(in + 2, "window_seconds"); j.number(p.window); j.raw("\n");
    j.pad(in); j.raw("}");
}

} // namespace

std::string
simspeedJson(const SpeedRunInfo &info,
             const std::vector<SpeedSample> &samples)
{
    if (samples.empty())
        fatal("simspeedJson needs at least one sample");
    std::ostringstream os;
    JsonOut j(os);

    j.raw("{\n");
    j.key(2, "schema"); j.string("simspeed-v1"); j.raw(",\n");
    j.key(2, "scale"); j.number(info.scale); j.raw(",\n");
    j.key(2, "max_committed"); j.number(info.maxCommitted);
    j.raw(",\n");
    j.key(2, "reps"); j.number(info.reps); j.raw(",\n");
    j.key(2, "issue_width"); j.number(info.issueWidth); j.raw(",\n");
    j.key(2, "num_phys_regs"); j.number(info.numPhysRegs);
    j.raw(",\n");

    std::uint64_t committed = 0;
    double scan_s = 0.0;
    double event_s = 0.0;
    j.key(2, "workloads"); j.raw("[\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const SpeedSample &s = samples[i];
        committed += s.committed;
        scan_s += s.scanSeconds;
        event_s += s.eventSeconds;
        j.pad(4); j.raw("{\n");
        j.key(6, "name"); j.string(s.workload); j.raw(",\n");
        j.key(6, "committed"); j.number(s.committed); j.raw(",\n");
        j.key(6, "cycles"); j.number(s.cycles); j.raw(",\n");
        j.key(6, "scan");
        emitSpeedLeg(j, s.committed, s.scanSeconds, 6); j.raw(",\n");
        j.key(6, "event");
        emitSpeedLeg(j, s.committed, s.eventSeconds, 6); j.raw(",\n");
        j.key(6, "speedup");
        j.number(clampSeconds(s.scanSeconds) /
                 clampSeconds(s.eventSeconds));
        j.raw("\n");
        j.pad(4); j.raw("}");
        j.raw(i + 1 < samples.size() ? ",\n" : "\n");
    }
    j.pad(2); j.raw("],\n");

    // Aggregate = one virtual run of the whole suite back to back, so
    // long workloads weigh more than short ones (this is the number
    // the CI regression gate and the issue's 2x target refer to).
    j.key(2, "aggregate"); j.raw("{\n");
    j.key(4, "committed"); j.number(committed); j.raw(",\n");
    j.key(4, "scan_mips"); j.number(mips(committed, scan_s));
    j.raw(",\n");
    j.key(4, "event_mips"); j.number(mips(committed, event_s));
    j.raw(",\n");
    j.key(4, "speedup");
    j.number(clampSeconds(scan_s) / clampSeconds(event_s));
    j.raw("\n");
    j.pad(2); j.raw("}");

    if (info.endToEnd.present) {
        const SpeedEndToEnd &e = info.endToEnd;
        j.raw(",\n");
        j.key(2, "end_to_end"); j.raw("{\n");
        j.key(4, "baseline_rev"); j.string(e.baselineRev); j.raw(",\n");
        j.key(4, "sweep_scale"); j.number(e.sweepScale); j.raw(",\n");
        j.key(4, "baseline_seconds"); j.number(e.baselineSeconds);
        j.raw(",\n");
        j.key(4, "current_seconds"); j.number(e.currentSeconds);
        j.raw(",\n");
        j.key(4, "speedup");
        j.number(clampSeconds(e.baselineSeconds) /
                 clampSeconds(e.currentSeconds));
        j.raw("\n");
        j.pad(2); j.raw("}");
    }

    if (info.sampled.present) {
        const SampledSpeed &sp = info.sampled;
        double full_s = 0.0;
        double sampled_s = 0.0;
        bool all_cover = true;
        j.raw(",\n");
        j.key(2, "sampled"); j.raw("{\n");
        j.key(4, "interval"); j.number(sp.interval); j.raw(",\n");
        j.key(4, "window"); j.number(sp.window); j.raw(",\n");
        j.key(4, "warmup"); j.number(sp.warmup); j.raw(",\n");
        j.key(4, "warmff"); j.number(sp.warmff); j.raw(",\n");
        j.key(4, "workloads"); j.raw("[\n");
        for (std::size_t i = 0; i < sp.samples.size(); ++i) {
            const SampledSpeedSample &s = sp.samples[i];
            full_s += s.fullSeconds;
            sampled_s += s.sampledSeconds;
            all_cover = all_cover && s.ciCovers;
            j.pad(6); j.raw("{\n");
            j.key(8, "name"); j.string(s.workload); j.raw(",\n");
            j.key(8, "committed"); j.number(s.committed); j.raw(",\n");
            j.key(8, "full_seconds"); j.number(s.fullSeconds);
            j.raw(",\n");
            j.key(8, "sampled_seconds"); j.number(s.sampledSeconds);
            j.raw(",\n");
            j.key(8, "full_ipc"); j.number(s.fullIpc); j.raw(",\n");
            j.key(8, "ipc_estimate"); j.number(s.ipcEstimate);
            j.raw(",\n");
            j.key(8, "ci95"); j.number(s.ci95); j.raw(",\n");
            j.key(8, "windows"); j.number(s.windows); j.raw(",\n");
            j.key(8, "ci_covers_full_ipc"); j.boolean(s.ciCovers);
            j.raw(",\n");
            j.key(8, "speedup");
            j.number(clampSeconds(s.fullSeconds) /
                     clampSeconds(s.sampledSeconds));
            j.raw("\n");
            j.pad(6); j.raw("}");
            j.raw(i + 1 < sp.samples.size() ? ",\n" : "\n");
        }
        j.pad(4); j.raw("],\n");
        j.key(4, "aggregate"); j.raw("{\n");
        j.key(6, "full_seconds"); j.number(full_s); j.raw(",\n");
        j.key(6, "sampled_seconds"); j.number(sampled_s); j.raw(",\n");
        j.key(6, "speedup");
        j.number(clampSeconds(full_s) / clampSeconds(sampled_s));
        j.raw(",\n");
        j.key(6, "all_ci_cover"); j.boolean(all_cover); j.raw("\n");
        j.pad(4); j.raw("}\n");
        j.pad(2); j.raw("}");
    }

    if (info.parallelSampled.present) {
        const ParallelSampled &ps = info.parallelSampled;
        double base_s = 0.0;
        double warm_s = 0.0;
        j.raw(",\n");
        j.key(2, "parallel_sampled"); j.raw("{\n");
        j.key(4, "scale"); j.number(std::uint64_t(ps.scale));
        j.raw(",\n");
        j.key(4, "interval"); j.number(ps.interval); j.raw(",\n");
        j.key(4, "window"); j.number(ps.window); j.raw(",\n");
        j.key(4, "warmup"); j.number(ps.warmup); j.raw(",\n");
        j.key(4, "warmff"); j.number(ps.warmff); j.raw(",\n");
        j.key(4, "workloads"); j.raw("[\n");
        for (std::size_t i = 0; i < ps.samples.size(); ++i) {
            const ParallelSampledSample &s = ps.samples[i];
            base_s += s.baseline.total;
            warm_s += s.warm.total;
            j.pad(6); j.raw("{\n");
            j.key(8, "name"); j.string(s.workload); j.raw(",\n");
            j.key(8, "baseline");
            emitPhaseSeconds(j, s.baseline, 8); j.raw(",\n");
            j.key(8, "warm");
            emitPhaseSeconds(j, s.warm, 8); j.raw(",\n");
            j.key(8, "ckpt_hits"); j.number(s.ckptHits); j.raw(",\n");
            j.key(8, "ckpt_generated"); j.number(s.ckptGenerated);
            j.raw(",\n");
            j.key(8, "window_jobs"); j.number(s.windowJobs);
            j.raw(",\n");
            j.key(8, "speedup");
            j.number(clampSeconds(s.baseline.total) /
                     clampSeconds(s.warm.total));
            j.raw("\n");
            j.pad(6); j.raw("}");
            j.raw(i + 1 < ps.samples.size() ? ",\n" : "\n");
        }
        j.pad(4); j.raw("],\n");
        j.key(4, "aggregate"); j.raw("{\n");
        j.key(6, "baseline_seconds"); j.number(base_s); j.raw(",\n");
        j.key(6, "warm_seconds"); j.number(warm_s); j.raw(",\n");
        j.key(6, "speedup");
        j.number(clampSeconds(base_s) / clampSeconds(warm_s));
        j.raw("\n");
        j.pad(4); j.raw("}\n");
        j.pad(2); j.raw("}");
    }
    j.raw("\n");
    j.raw("}\n");
    return os.str();
}

void
writeSimspeedFile(const std::string &path, const SpeedRunInfo &info,
                  const std::vector<SpeedSample> &samples)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open simspeed file '", path, "' for writing");
    out << simspeedJson(info, samples);
    out.flush();
    if (!out)
        fatal("failed writing simspeed file '", path, "'");
}

} // namespace drsim
