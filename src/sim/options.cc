#include "sim/options.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace drsim {

void
OptionParser::addInt(const std::string &name, std::int64_t *value,
                     const std::string &help)
{
    if (find(name) != nullptr)
        DRSIM_PANIC("duplicate option --", name);
    options_.push_back({name, Kind::Int, value, help,
                        std::to_string(*value)});
}

void
OptionParser::addString(const std::string &name, std::string *value,
                        const std::string &help)
{
    if (find(name) != nullptr)
        DRSIM_PANIC("duplicate option --", name);
    options_.push_back({name, Kind::String, value, help, *value});
}

void
OptionParser::addFlag(const std::string &name, bool *value,
                      const std::string &help)
{
    if (find(name) != nullptr)
        DRSIM_PANIC("duplicate option --", name);
    options_.push_back({name, Kind::Flag, value, help,
                        *value ? "true" : "false"});
}

const OptionParser::Option *
OptionParser::find(const std::string &name) const
{
    for (const Option &o : options_)
        if (o.name == name)
            return &o;
    return nullptr;
}

bool
OptionParser::assign(const Option &opt, const std::string &value)
{
    switch (opt.kind) {
      case Kind::Int: {
        char *end = nullptr;
        const long long v = std::strtoll(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            error_ = "--" + opt.name + " expects an integer, got '" +
                     value + "'";
            return false;
        }
        *static_cast<std::int64_t *>(opt.target) = v;
        return true;
      }
      case Kind::String:
        *static_cast<std::string *>(opt.target) = value;
        return true;
      case Kind::Flag:
        if (value == "true" || value == "1") {
            *static_cast<bool *>(opt.target) = true;
        } else if (value == "false" || value == "0") {
            *static_cast<bool *>(opt.target) = false;
        } else {
            error_ = "--" + opt.name + " expects true/false, got '" +
                     value + "'";
            return false;
        }
        return true;
    }
    return false;
}

bool
OptionParser::parse(int argc, const char *const *argv)
{
    error_.clear();
    helpRequested_ = false;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            return true;
        }
        if (arg.rfind("--", 0) != 0) {
            error_ = "unexpected argument '" + arg + "'";
            return false;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        const Option *opt = find(arg);
        if (opt == nullptr) {
            error_ = "unknown option '--" + arg + "'";
            return false;
        }
        if (opt->kind == Kind::Flag && !has_value) {
            *static_cast<bool *>(opt->target) = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                error_ = "--" + arg + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        if (!assign(*opt, value))
            return false;
    }
    return true;
}

std::string
OptionParser::helpText(const std::string &program) const
{
    std::ostringstream os;
    os << "usage: " << program << " [options]\n\noptions:\n";
    for (const Option &o : options_) {
        os << "  --" << o.name;
        if (o.kind != Kind::Flag)
            os << " <value>";
        os << "\n      " << o.help << " (default: " << o.defaultRepr
           << ")\n";
    }
    return os.str();
}

} // namespace drsim
