#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/ckpt_store.hh"
#include "sim/runner.hh"

namespace drsim {

namespace {

std::mutex &
execPolicyMutex()
{
    static std::mutex m;
    return m;
}

SamplingExecPolicy &
execPolicyValue()
{
    static SamplingExecPolicy policy;
    return policy;
}

} // namespace

void
setSamplingExecPolicy(const SamplingExecPolicy &policy)
{
    std::lock_guard<std::mutex> lock(execPolicyMutex());
    execPolicyValue() = policy;
}

SamplingExecPolicy
samplingExecPolicy()
{
    std::lock_guard<std::mutex> lock(execPolicyMutex());
    return execPolicyValue();
}

namespace {

/** Successful default-option verification verdicts by program content
 *  digest.  A sweep calls verifyProgram() once per configuration point
 *  on the *same* program; the verdict is a pure function of the
 *  program text, so re-analysis is pure overhead.  Failures are never
 *  cached — they fatal() out of the process anyway. */
std::mutex verifiedMutex;
std::unordered_set<std::string> verifiedDigests;

bool
cacheableOptions(const analysis::Options &opts)
{
    static const analysis::Options defaults;
    return opts.abiInitializedRegs.empty() &&
           opts.checkMix == defaults.checkMix &&
           opts.mixTolerancePct == defaults.mixTolerancePct;
}

} // namespace

void
verifyProgram(const Program &program, const analysis::Options &opts)
{
    const bool cacheable =
        cacheableOptions(opts) && !program.contentDigest().empty();
    if (cacheable) {
        std::lock_guard<std::mutex> lock(verifiedMutex);
        if (verifiedDigests.count(program.contentDigest()) != 0)
            return;
    }
    const analysis::Report report =
        analysis::analyzeProgram(program, opts);
    if (!report.hasErrors()) {
        if (cacheable) {
            std::lock_guard<std::mutex> lock(verifiedMutex);
            verifiedDigests.insert(program.contentDigest());
        }
        return;
    }
    std::ostringstream os;
    for (const analysis::Finding &f : report.findings) {
        if (f.severity == analysis::Severity::Error)
            os << "\n  " << analysis::formatFinding(f);
    }
    fatal("program '", program.name(),
          "' failed static verification (", report.summary(),
          "); refusing to simulate:", os.str());
}

namespace {

SimResult
collect(Processor &proc, const std::string &name, bool fp_intensive)
{
    SimResult res;
    res.workload = name;
    res.fpIntensive = fp_intensive;
    res.stopReason = proc.stopReason();
    res.proc = proc.stats();
    res.dcache = proc.dcache().stats();
    res.icacheAccesses = proc.icache().accesses();
    res.icacheMisses = proc.icache().misses();
    res.loadMissRate = proc.loadMissRate();
    for (int c = 0; c < kNumRegClasses; ++c)
        res.lifetime[c] = proc.rename().lifetimeHistogram(RegClass(c));
    return res;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * One independent detailed phase of a sampled run (DESIGN.md §5j):
 * restore the checkpoint at @ref start, run a histogram-gated warm-up
 * of @ref warmTarget, then measure @ref winTarget committed
 * instructions.  The non-measured variant is the detailed tail that
 * commits the Halt.
 */
struct WindowTask
{
    /** Checkpoint position restored into the fresh machine
     *  (0 = reset state, no snapshot needed). */
    std::uint64_t restore = 0;
    /** Functional-warming replay (DESIGN.md §5j) between the restore
     *  point and the detail start: architecturally executed into the
     *  config's caches and branch predictor before timing begins. */
    std::uint64_t replay = 0;
    std::uint64_t warmTarget = 0;
    std::uint64_t winTarget = 0;
    /** Contributes one window-IPC sample to the estimate. */
    bool measured = true;
};

/**
 * The detailed phases of one sampled run, derived from the
 * checkpoint plan and the instruction budget.  Every budget
 * truncation is terminal (the plan ends at it), so detailed phases
 * only ever start at budget-independent checkpoint positions — the
 * property that lets a whole sweep share one checkpoint set.
 */
struct SamplePlan
{
    std::vector<WindowTask> tasks;
    /** Architectural instructions the plan advances over (functional
     *  gaps + detailed targets); the budget is enforced against it. */
    std::uint64_t advanced = 0;
    bool limitHit = false;
};

SamplePlan
planWindows(const SamplingConfig &sc, const SampleCkpts &ckpts,
            std::uint64_t budget)
{
    SamplePlan plan;
    const std::uint64_t n = ckpts.archLength;
    std::uint64_t a = 0;
    std::uint64_t pos = 0;      // detail start of the next phase
    std::uint64_t restore = 0;  // checkpoint it restores from
    std::size_t k = 0;
    const auto rem = [&] {
        return budget == 0 ? ~std::uint64_t{0}
                           : budget - std::min(budget, a);
    };
    while (true) {
        if (rem() == 0) {
            plan.limitHit = true;
            break;
        }
        // Detailed phase.  Each period runs warm-up -> measurement ->
        // gap, so the first measured window observes the program's
        // initialization phase instead of fast-forwarding past it.
        const std::uint64_t warm = std::min(sc.warmup, rem());
        const std::uint64_t win = std::min(sc.window, rem() - warm);
        plan.tasks.push_back({restore, pos - restore, warm, win,
                              true});
        const std::uint64_t d = std::min(warm + win, n + 1 - pos);
        a += d;
        pos += d;
        if (pos >= n + 1)
            break; // the Halt commits inside this detailed phase
        if (rem() == 0) {
            plan.limitHit = true;
            break;
        }

        // Functional gap to the next checkpointed detail start.  The
        // stored plan is the single source of truth for window
        // placement (the jitter sequence lives in the checkpoint
        // generator), so serial, window-parallel, and
        // checkpoint-warm runs share identical plans by construction.
        // The gap's tail — detail start minus warm start — is not
        // skipped but replayed by the window task as functional
        // warming; either way it advances the same instructions, so
        // the budget accounting does not care about the split.
        const bool have = k < ckpts.detailStarts.size();
        const std::uint64_t next = have ? ckpts.detailStarts[k] : n;
        if (next >= n) {
            const std::uint64_t gap = n - pos;
            if (rem() < gap) {
                a += rem();
                plan.limitHit = true;
                break;
            }
            a += gap;
            pos = n;
            if (rem() == 0) {
                plan.limitHit = true;
                break;
            }
            // Detailed tail: restore at the architectural end and
            // commit the Halt (ungated, not a measured window).
            plan.tasks.push_back({n, 0, 0, 1, false});
            a += 1;
            break;
        }
        const std::uint64_t gap = next - pos;
        if (rem() < gap) {
            a += rem();
            plan.limitHit = true;
            break;
        }
        a += gap;
        pos = next;
        restore = ckpts.positions[k];
        ++k;
    }
    plan.advanced = a;
    return plan;
}

/** Everything one window task measures, merged in plan order. */
struct WindowOutcome
{
    ProcStats proc;
    DCacheStats dcache;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    Histogram lifetime[kNumRegClasses];
    std::uint64_t warmCommitted = 0;
    std::uint64_t windowCommitted = 0;
    Cycle windowCycles = 0;
    StopReason stop = StopReason::Running;
    double warmSeconds = 0.0;
    double windowSeconds = 0.0;
};

WindowOutcome
runWindowTask(const CoreConfig &detail, const Program &program,
              const SampleCkpts &ckpts, const WindowTask &task)
{
    WindowOutcome out;
    // Construct directly in the snapshot state: the restore-at-
    // construction overload skips the initial-image build, so a window
    // task's setup cost is one bulk snapshot copy rather than three
    // passes over the data segment (zero-fill, image build, restore).
    const EmuArchState *state = nullptr;
    if (task.restore != 0) {
        state = ckpts.stateAt(task.restore);
        if (state == nullptr) {
            fatal("sampling plan references position ", task.restore,
                  " with no checkpoint");
        }
    }
    Processor proc = state != nullptr
                         ? Processor(detail, program, *state)
                         : Processor(detail, program);

    const auto warm0 = std::chrono::steady_clock::now();
    if (task.replay > 0 &&
        proc.warmFastForward(task.replay) != task.replay) {
        fatal("functional warming ended early: plan expected ",
              task.replay, " instructions after position ",
              task.restore);
    }
    if (task.warmTarget > 0) {
        proc.setStatsGate(true);
        proc.runDetailed(task.warmTarget);
        proc.setStatsGate(false);
    }
    out.warmCommitted = proc.stats().committed;
    out.warmSeconds = secondsSince(warm0);

    const auto win0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = proc.stats().committed;
    const Cycle y0 = proc.stats().cycles;
    if (task.winTarget > 0)
        proc.runDetailed(c0 + task.winTarget);
    out.windowCommitted = proc.stats().committed - c0;
    out.windowCycles = proc.stats().cycles - y0;
    out.windowSeconds = secondsSince(win0);

    out.stop = proc.stopReason();
    out.proc = proc.stats();
    out.dcache = proc.dcache().stats();
    out.icacheAccesses = proc.icache().accesses();
    out.icacheMisses = proc.icache().misses();
    for (int c = 0; c < kNumRegClasses; ++c)
        out.lifetime[c] =
            proc.rename().lifetimeHistogram(RegClass(c));
    return out;
}

/**
 * SMARTS-style systematic sampling, checkpoint-restored and
 * window-parallel (DESIGN.md §5j).  The run decomposes into three
 * phases: acquire the checkpointed interval plan from the library
 * (generated once per (workload, sampling spec), shared across a
 * sweep), derive the detailed window tasks from it under the
 * instruction budget, and run every task on an independent Processor.
 * Tasks write indexed outcome slots that are merged in plan order, so
 * the combined SampledStats is bit-identical whether the tasks ran
 * serially, on a private pool, or as a TaskGroup of the caller's pool
 * — and whether the checkpoints were cold or warm.
 */
SimResult
runOneSampled(const CoreConfig &config, const Program &program,
              const std::string &name, bool fp_intensive)
{
    const SamplingConfig &sc = config.sampling;
    CoreConfig detail = config;
    // The commit-count limit is enforced by the plan against *total*
    // instructions advanced (fast-forwarded + detailed); the core's
    // detailed-only counter would run far past the budget.
    detail.maxCommitted = 0;
    const std::uint64_t budget = config.maxCommitted;
    const SamplingExecPolicy policy = samplingExecPolicy();

    SampleProfile prof;

    // Phase 1: acquire the checkpoint plan.
    const auto acq0 = std::chrono::steady_clock::now();
    std::shared_ptr<const SampleCkpts> ckpts;
    if (policy.useCkptLibrary) {
        CkptStore::AcquireOutcome got = ckptLibrary().acquire(
            ckptKeyFor(name, program, sc), program);
        ckpts = got.plan;
        prof.ckptHits = got.diskHits;
        prof.ckptGenerated = got.generated;
        prof.ckptFromMemory = got.fromMemory;
    } else {
        // Library disabled (bench baseline): private cold plan.
        ckpts = std::make_shared<SampleCkpts>(generateSampleCkpts(
            ckptKeyFor(name, program, sc), program));
        prof.ckptGenerated = ckpts->states.size();
    }
    prof.acquireSeconds = secondsSince(acq0);

    // Phase 2: derive the window tasks.
    const SamplePlan plan = planWindows(sc, *ckpts, budget);

    // Phase 3: run the tasks.  Results land in indexed slots, so the
    // execution policy can never affect the merged statistics.
    std::vector<WindowOutcome> outs(plan.tasks.size());
    const auto runTask = [&](std::size_t i) {
        outs[i] =
            runWindowTask(detail, program, *ckpts, plan.tasks[i]);
    };
    ThreadPool *pool = ThreadPool::current();
    if (policy.windowJobs == 1 || plan.tasks.size() <= 1) {
        for (std::size_t i = 0; i < plan.tasks.size(); ++i)
            runTask(i);
    } else if (pool != nullptr) {
        // Already on a pool worker (parallel runner, serve daemon):
        // fan the windows out as a TaskGroup of the same pool instead
        // of oversubscribing with a second one.
        prof.windowJobs = pool->numThreads();
        ThreadPool::TaskGroup group(*pool);
        for (std::size_t i = 0; i < plan.tasks.size(); ++i)
            group.submit([&runTask, i] { runTask(i); });
        group.wait();
    } else {
        const int want =
            policy.windowJobs > 0 ? policy.windowJobs : resolveJobs();
        const int jobs = int(std::min<std::size_t>(
            std::size_t(want), plan.tasks.size()));
        if (jobs <= 1) {
            for (std::size_t i = 0; i < plan.tasks.size(); ++i)
                runTask(i);
        } else {
            prof.windowJobs = jobs;
            ThreadPool local(jobs);
            local.parallelFor(plan.tasks.size(), runTask);
        }
    }

    // Phase 4: merge in plan order.
    SimResult res;
    res.workload = name;
    res.fpIntensive = fp_intensive;

    SampledStats samp;
    samp.enabled = true;
    std::vector<double> window_cpi;
    StopReason anomaly = StopReason::Running;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const WindowOutcome &o = outs[i];
        res.proc.merge(o.proc);
        res.dcache.loads += o.dcache.loads;
        res.dcache.loadMisses += o.dcache.loadMisses;
        res.dcache.loadMerges += o.dcache.loadMerges;
        res.dcache.storesBuffered += o.dcache.storesBuffered;
        res.dcache.storeHits += o.dcache.storeHits;
        res.dcache.fetchesCancelled += o.dcache.fetchesCancelled;
        res.dcache.mshrRejections += o.dcache.mshrRejections;
        res.icacheAccesses += o.icacheAccesses;
        res.icacheMisses += o.icacheMisses;
        for (int c = 0; c < kNumRegClasses; ++c)
            res.lifetime[c].merge(o.lifetime[c]);
        samp.warmupInsts += o.warmCommitted;
        if (plan.tasks[i].measured) {
            samp.measuredInsts += o.windowCommitted;
            samp.measuredCycles += o.windowCycles;
            if (o.windowCommitted > 0 && o.windowCycles > 0)
                window_cpi.push_back(double(o.windowCycles) /
                                     double(o.windowCommitted));
        }
        if (anomaly == StopReason::Running &&
            o.stop != StopReason::Running &&
            o.stop != StopReason::Halted)
            anomaly = o.stop;
        prof.warmupSeconds += o.warmSeconds;
        prof.windowSeconds += o.windowSeconds;
    }

    samp.windows = window_cpi.size();
    if (!window_cpi.empty()) {
        // Windows hold (nearly) equal instruction counts, so the
        // unbiased population estimate is the mean per-window *CPI*
        // (arithmetic-averaging IPC would Jensen-bias the estimate
        // high); the interval maps through the reciprocal by the
        // delta method.
        double sum = 0.0;
        for (double cpi : window_cpi)
            sum += cpi;
        const double mean_cpi = sum / double(window_cpi.size());
        samp.ipcEstimate = 1.0 / mean_cpi;
        samp.ci95 = ci95HalfWidth(window_cpi) * samp.ipcEstimate *
                    samp.ipcEstimate;
    } else {
        // Degenerate run (shorter than one period): everything that
        // ran detailed is the best available estimate.
        samp.ipcEstimate = res.proc.commitIpc();
        samp.ci95 = 0.0;
    }
    // Detailed phases can overshoot their targets by up to
    // commitWidth - 1; attribute the overlap to the detailed side so
    // fastForwarded + committed still equals the instructions the
    // plan advanced over (the full-run committed count on a
    // run-to-halt, the budget on a truncated one).
    samp.fastForwarded = plan.advanced > res.proc.committed
                             ? plan.advanced - res.proc.committed
                             : 0;

    res.loadMissRate =
        res.proc.executedLoads == 0
            ? 0.0
            : double(res.dcache.loadMisses) /
                  double(res.proc.executedLoads);
    res.sampled = samp;
    res.profile = prof;
    res.stopReason = anomaly != StopReason::Running
                         ? anomaly
                         : (plan.limitHit ? StopReason::InstLimit
                                          : StopReason::Halted);
    return res;
}

SimResult
runOne(const CoreConfig &config, const Program &program,
       const std::string &name, bool fp_intensive)
{
    verifyProgram(program);
    if (config.sampling.enabled())
        return runOneSampled(config, program, name, fp_intensive);
    Processor proc(config, program);
    proc.run();
    SimResult res = collect(proc, name, fp_intensive);
    checkStaticBounds(config, program, res);
    return res;
}

} // namespace

SimResult
simulate(const CoreConfig &config, const Workload &workload)
{
    return runOne(config, workload.program, workload.spec->name,
                  workload.spec->fpIntensive);
}

SimResult
simulateProgram(const CoreConfig &config, const Program &program,
                bool fp_intensive)
{
    return runOne(config, program, program.name(), fp_intensive);
}

SuiteResult::SuiteResult(std::vector<SimResult> runs)
    : runs_(std::move(runs))
{
    if (runs_.empty())
        fatal("suite result needs at least one run");
}

double
SuiteResult::avgIssueIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.issueIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCommitIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.commitIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgNoFreeRegPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.noFreeRegPct();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCausePct(CycleCause cause) const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.causePct(cause);
    return sum / double(runs_.size());
}

double
SuiteResult::avgStallPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.stallPct();
    return sum / double(runs_.size());
}

std::vector<double>
SuiteResult::avgDensity(RegClass cls, LiveLevel level) const
{
    std::vector<std::vector<double>> densities;
    for (const auto &r : runs_) {
        if (cls == RegClass::Fp && !r.fpIntensive)
            continue; // FP curves use FP-intensive benchmarks only
        densities.push_back(
            r.proc.live[int(cls)][int(level)].normalized());
    }
    if (densities.empty())
        fatal("no benchmarks contribute to this density");
    return averageDensities(densities);
}

std::uint64_t
SuiteResult::livePercentile(RegClass cls, LiveLevel level,
                            double fraction) const
{
    return densityPercentile(avgDensity(cls, level), fraction);
}

std::vector<double>
SuiteResult::avgCoverage(RegClass cls, LiveLevel level) const
{
    return coverageCurve(avgDensity(cls, level));
}

SuiteResult
runSuite(const CoreConfig &config, const std::vector<Workload> &suite)
{
    std::vector<SimResult> runs;
    runs.reserve(suite.size());
    for (const auto &w : suite)
        runs.push_back(simulate(config, w));
    return SuiteResult(std::move(runs));
}

} // namespace drsim
