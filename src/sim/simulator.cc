#include "sim/simulator.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace drsim {

void
verifyProgram(const Program &program, const analysis::Options &opts)
{
    const analysis::Report report =
        analysis::analyzeProgram(program, opts);
    if (!report.hasErrors())
        return;
    std::ostringstream os;
    for (const analysis::Finding &f : report.findings) {
        if (f.severity == analysis::Severity::Error)
            os << "\n  " << analysis::formatFinding(f);
    }
    fatal("program '", program.name(),
          "' failed static verification (", report.summary(),
          "); refusing to simulate:", os.str());
}

namespace {

SimResult
collect(Processor &proc, const std::string &name, bool fp_intensive)
{
    SimResult res;
    res.workload = name;
    res.fpIntensive = fp_intensive;
    res.stopReason = proc.stopReason();
    res.proc = proc.stats();
    res.dcache = proc.dcache().stats();
    res.icacheAccesses = proc.icache().accesses();
    res.icacheMisses = proc.icache().misses();
    res.loadMissRate = proc.loadMissRate();
    for (int c = 0; c < kNumRegClasses; ++c)
        res.lifetime[c] = proc.rename().lifetimeHistogram(RegClass(c));
    return res;
}

/**
 * SMARTS-style systematic sampling (DESIGN.md §5h): per period of
 * `interval` instructions, fast-forward functionally, warm the
 * machine detailed-but-gated, then measure one window's commit IPC.
 * One Processor persists across periods so caches, predictor tables,
 * and the register file carry their state through the fast-forwards;
 * the warm-up only has to re-fill the pipeline-adjacent state the
 * drain perturbed.
 */
SimResult
runOneSampled(const CoreConfig &config, const Program &program,
              const std::string &name, bool fp_intensive)
{
    const SamplingConfig &sc = config.sampling;
    CoreConfig detail = config;
    // The commit-count limit is enforced here against *total*
    // instructions advanced (fast-forwarded + detailed); the core's
    // detailed-only counter would run far past the budget.
    detail.maxCommitted = 0;
    Processor proc(detail, program);
    const std::uint64_t budget = config.maxCommitted;

    SampledStats samp;
    samp.enabled = true;
    std::vector<double> window_ipc;
    bool limit_hit = false;

    const auto advanced = [&]() {
        return samp.fastForwarded + proc.stats().committed;
    };
    const auto remaining = [&]() {
        return budget == 0 ? ~std::uint64_t{0}
                           : budget - std::min(budget, advanced());
    };

    // Fixed-stride window placement aliases with periodic kernels:
    // when the program's loop period divides the sampling interval,
    // every window lands at the same phase offset, the window IPCs
    // are identical, and the confidence interval collapses to a
    // width of zero around a biased estimate.  Jittering each
    // fast-forward length uniformly over [ff_len/2, 3*ff_len/2)
    // breaks the alignment while preserving the mean sampling rate;
    // the LCG is seeded with a constant so a given (config, program)
    // pair still simulates deterministically.
    const std::uint64_t ff_len = sc.interval - sc.warmup - sc.window;
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    const auto jittered_ff = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t span = std::max<std::uint64_t>(ff_len, 1);
        return ff_len / 2 + (lcg >> 33) % span;
    };
    while (!proc.done()) {
        if (remaining() == 0) {
            limit_hit = true;
            break;
        }

        // Detailed warm-up, distribution histograms gated.  Each
        // period runs warm-up -> measurement -> fast-forward, so the
        // first measured window observes the program's initialization
        // phase instead of silently fast-forwarding past it — without
        // that window, perfectly periodic kernels produce identical
        // window IPCs and a degenerate zero-width confidence interval
        // that can never cover the full-run IPC.
        proc.setStatsGate(true);
        const std::uint64_t warm_base = proc.stats().committed;
        proc.runDetailed(warm_base +
                         std::min(sc.warmup, remaining()));
        proc.setStatsGate(false);
        samp.warmupInsts += proc.stats().committed - warm_base;
        if (proc.done() || remaining() == 0) {
            limit_hit = !proc.done();
            break;
        }

        // Measured window.
        const std::uint64_t c0 = proc.stats().committed;
        const Cycle y0 = proc.stats().cycles;
        proc.runDetailed(c0 + std::min(sc.window, remaining()));
        const std::uint64_t dc = proc.stats().committed - c0;
        const Cycle dy = proc.stats().cycles - y0;
        samp.measuredInsts += dc;
        samp.measuredCycles += dy;
        if (dc > 0 && dy > 0)
            window_ipc.push_back(double(dc) / double(dy));
        if (proc.done())
            break;
        if (remaining() == 0) {
            limit_hit = true;
            break;
        }

        // Functional phase.
        const std::uint64_t want = std::min(jittered_ff(), remaining());
        const std::uint64_t stepped = proc.fastForward(want);
        samp.fastForwarded += stepped;
        if (proc.done())
            break;
        if (stepped < want) {
            // The program's halt is nearer than the period: finish
            // detailed (the tail is at most a drain away).  Saturate
            // the target — an unlimited budget's remaining() is the
            // full uint64 range.
            const std::uint64_t c = proc.stats().committed;
            const std::uint64_t rem = remaining();
            proc.runDetailed(rem > ~std::uint64_t{0} - c
                                 ? ~std::uint64_t{0}
                                 : c + rem);
            limit_hit = !proc.done();
            break;
        }
    }

    samp.windows = window_ipc.size();
    if (!window_ipc.empty()) {
        double sum = 0.0;
        for (double ipc : window_ipc)
            sum += ipc;
        samp.ipcEstimate = sum / double(window_ipc.size());
        samp.ci95 = ci95HalfWidth(window_ipc);
    } else {
        // Degenerate run (shorter than one period): everything that
        // ran detailed is the best available estimate.
        samp.ipcEstimate = proc.stats().commitIpc();
        samp.ci95 = 0.0;
    }

    SimResult res = collect(proc, name, fp_intensive);
    res.sampled = samp;
    if (limit_hit)
        res.stopReason = StopReason::InstLimit;
    return res;
}

SimResult
runOne(const CoreConfig &config, const Program &program,
       const std::string &name, bool fp_intensive)
{
    verifyProgram(program);
    if (config.sampling.enabled())
        return runOneSampled(config, program, name, fp_intensive);
    Processor proc(config, program);
    proc.run();
    SimResult res = collect(proc, name, fp_intensive);
    checkStaticBounds(config, program, res);
    return res;
}

} // namespace

SimResult
simulate(const CoreConfig &config, const Workload &workload)
{
    return runOne(config, workload.program, workload.spec->name,
                  workload.spec->fpIntensive);
}

SimResult
simulateProgram(const CoreConfig &config, const Program &program,
                bool fp_intensive)
{
    return runOne(config, program, program.name(), fp_intensive);
}

SuiteResult::SuiteResult(std::vector<SimResult> runs)
    : runs_(std::move(runs))
{
    if (runs_.empty())
        fatal("suite result needs at least one run");
}

double
SuiteResult::avgIssueIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.issueIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCommitIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.commitIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgNoFreeRegPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.noFreeRegPct();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCausePct(CycleCause cause) const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.causePct(cause);
    return sum / double(runs_.size());
}

double
SuiteResult::avgStallPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.stallPct();
    return sum / double(runs_.size());
}

std::vector<double>
SuiteResult::avgDensity(RegClass cls, LiveLevel level) const
{
    std::vector<std::vector<double>> densities;
    for (const auto &r : runs_) {
        if (cls == RegClass::Fp && !r.fpIntensive)
            continue; // FP curves use FP-intensive benchmarks only
        densities.push_back(
            r.proc.live[int(cls)][int(level)].normalized());
    }
    if (densities.empty())
        fatal("no benchmarks contribute to this density");
    return averageDensities(densities);
}

std::uint64_t
SuiteResult::livePercentile(RegClass cls, LiveLevel level,
                            double fraction) const
{
    return densityPercentile(avgDensity(cls, level), fraction);
}

std::vector<double>
SuiteResult::avgCoverage(RegClass cls, LiveLevel level) const
{
    return coverageCurve(avgDensity(cls, level));
}

SuiteResult
runSuite(const CoreConfig &config, const std::vector<Workload> &suite)
{
    std::vector<SimResult> runs;
    runs.reserve(suite.size());
    for (const auto &w : suite)
        runs.push_back(simulate(config, w));
    return SuiteResult(std::move(runs));
}

} // namespace drsim
