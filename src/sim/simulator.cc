#include "sim/simulator.hh"

#include <sstream>

#include "common/logging.hh"

namespace drsim {

void
verifyProgram(const Program &program, const analysis::Options &opts)
{
    const analysis::Report report =
        analysis::analyzeProgram(program, opts);
    if (!report.hasErrors())
        return;
    std::ostringstream os;
    for (const analysis::Finding &f : report.findings) {
        if (f.severity == analysis::Severity::Error)
            os << "\n  " << analysis::formatFinding(f);
    }
    fatal("program '", program.name(),
          "' failed static verification (", report.summary(),
          "); refusing to simulate:", os.str());
}

namespace {

SimResult
runOne(const CoreConfig &config, const Program &program,
       const std::string &name, bool fp_intensive)
{
    verifyProgram(program);
    Processor proc(config, program);
    proc.run();

    SimResult res;
    res.workload = name;
    res.fpIntensive = fp_intensive;
    res.stopReason = proc.stopReason();
    res.proc = proc.stats();
    res.dcache = proc.dcache().stats();
    res.icacheAccesses = proc.icache().accesses();
    res.icacheMisses = proc.icache().misses();
    res.loadMissRate = proc.loadMissRate();
    for (int c = 0; c < kNumRegClasses; ++c)
        res.lifetime[c] = proc.rename().lifetimeHistogram(RegClass(c));
    return res;
}

} // namespace

SimResult
simulate(const CoreConfig &config, const Workload &workload)
{
    return runOne(config, workload.program, workload.spec->name,
                  workload.spec->fpIntensive);
}

SimResult
simulateProgram(const CoreConfig &config, const Program &program,
                bool fp_intensive)
{
    return runOne(config, program, program.name(), fp_intensive);
}

SuiteResult::SuiteResult(std::vector<SimResult> runs)
    : runs_(std::move(runs))
{
    if (runs_.empty())
        fatal("suite result needs at least one run");
}

double
SuiteResult::avgIssueIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.issueIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCommitIpc() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.commitIpc();
    return sum / double(runs_.size());
}

double
SuiteResult::avgNoFreeRegPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.noFreeRegPct();
    return sum / double(runs_.size());
}

double
SuiteResult::avgCausePct(CycleCause cause) const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.causePct(cause);
    return sum / double(runs_.size());
}

double
SuiteResult::avgStallPct() const
{
    double sum = 0.0;
    for (const auto &r : runs_)
        sum += r.stallPct();
    return sum / double(runs_.size());
}

std::vector<double>
SuiteResult::avgDensity(RegClass cls, LiveLevel level) const
{
    std::vector<std::vector<double>> densities;
    for (const auto &r : runs_) {
        if (cls == RegClass::Fp && !r.fpIntensive)
            continue; // FP curves use FP-intensive benchmarks only
        densities.push_back(
            r.proc.live[int(cls)][int(level)].normalized());
    }
    if (densities.empty())
        fatal("no benchmarks contribute to this density");
    return averageDensities(densities);
}

std::uint64_t
SuiteResult::livePercentile(RegClass cls, LiveLevel level,
                            double fraction) const
{
    return densityPercentile(avgDensity(cls, level), fraction);
}

std::vector<double>
SuiteResult::avgCoverage(RegClass cls, LiveLevel level) const
{
    return coverageCurve(avgDensity(cls, level));
}

SuiteResult
runSuite(const CoreConfig &config, const std::vector<Workload> &suite)
{
    std::vector<SimResult> runs;
    runs.reserve(suite.size());
    for (const auto &w : suite)
        runs.push_back(simulate(config, w));
    return SuiteResult(std::move(runs));
}

} // namespace drsim
