/**
 * @file
 * Top-level simulation driver and cross-benchmark aggregation.
 *
 * runSuite() applies the paper's averaging rules (Section 3.1,
 * footnote 2): per-benchmark live-register distributions are
 * normalized by each benchmark's own run time, the normalized
 * distributions are averaged, and percentiles/coverage are read off
 * the average.  Integer-register curves average all benchmarks;
 * FP-register curves average only the FP-intensive benchmarks.
 */

#ifndef DRSIM_SIM_SIMULATOR_HH
#define DRSIM_SIM_SIMULATOR_HH

#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "core/processor.hh"
#include "workloads/kernels.hh"

namespace drsim {

/**
 * Fail-fast static verification gate run before every simulation.
 *
 * Analyzes @p program with src/analysis and throws FatalError (via
 * fatal()) listing every error-severity finding when the program is
 * statically broken — an uninitialized register read, a guaranteed
 * infinite loop, an out-of-bounds data access, or a drifted
 * instruction mix would otherwise surface only as a silently skewed
 * IPC.  Warning-severity findings do not block simulation; run
 * `drsim_lint` to see them.  simulate()/simulateProgram()/runSuite()
 * call this on every entry, so harnesses inherit the gate; code that
 * drives `Processor` directly (drsim_main, examples) must call it
 * explicitly.
 */
void verifyProgram(const Program &program,
                   const analysis::Options &opts = {});

/**
 * Interval-sampling measurement summary (zero-initialized and
 * `enabled == false` for full-detail runs).  All detailed-mode
 * ProcStats counters in a sampled SimResult cover only the warm-up
 * and measured portions; the headline metric is @ref ipcEstimate.
 */
struct SampledStats
{
    bool enabled = false;
    /** Measured windows contributing IPC samples. */
    std::uint64_t windows = 0;
    /** Instructions executed functionally (timing model off). */
    std::uint64_t fastForwarded = 0;
    /** Instructions committed during histogram-gated warm-ups. */
    std::uint64_t warmupInsts = 0;
    /** Instructions committed inside measured windows. */
    std::uint64_t measuredInsts = 0;
    /** Cycles spent inside measured windows. */
    std::uint64_t measuredCycles = 0;
    /** Mean of per-window commit IPC (the population estimate). */
    double ipcEstimate = 0.0;
    /** 95% confidence half-width from per-window variance
     *  (Student t; 0 when fewer than two windows). */
    double ci95 = 0.0;
};

/** Everything measured in one (workload, configuration) run. */
struct SimResult
{
    std::string workload;
    bool fpIntensive = false;
    StopReason stopReason = StopReason::Running;
    SampledStats sampled;
    ProcStats proc;
    DCacheStats dcache;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    /** Paper-style rate: primary misses / executed loads. */
    double loadMissRate = 0.0;
    /** Register lifetimes (allocation to release, cycles) per file. */
    Histogram lifetime[kNumRegClasses];

    double issueIpc() const { return proc.issueIpc(); }
    double commitIpc() const { return proc.commitIpc(); }
    double mispredictRate() const { return proc.mispredictRate(); }
    double
    noFreeRegPct() const
    {
        return proc.cycles
                   ? 100.0 * double(proc.noFreeRegCycles) /
                         double(proc.cycles)
                   : 0.0;
    }

    /** Percent of cycles attributed to @p cause (exclusive taxonomy). */
    double
    causePct(CycleCause cause) const
    {
        return proc.cycles
                   ? 100.0 * double(proc.cycleCauseCount(cause)) /
                         double(proc.cycles)
                   : 0.0;
    }

    /** Percent of cycles that were non-productive (any stall cause). */
    double
    stallPct() const
    {
        return proc.cycles
                   ? 100.0 *
                         double(proc.cycles - proc.busyCycles()) /
                         double(proc.cycles)
                   : 0.0;
    }
};

/**
 * What a static-bounds gate violation does (bounds_gate.cc): panic
 * (debug/test default), warn (release default), or nothing.
 * Overridable via DRSIM_BOUNDS_GATE=off|warn|panic.
 */
enum class BoundsGateMode : std::uint8_t { Off, Warn, Panic };

/** Effective gate mode (environment override, else build default). */
BoundsGateMode boundsGateMode();

/**
 * Cross-check a full-detail run against the static dataflow oracle:
 * commit IPC must not exceed analysis::computeBounds()'s IPC upper
 * bound (+5% tolerance) and peak live registers must not undercut
 * static MaxLive.  No-op for sampled runs and zero-cycle runs.
 * simulate()/simulateProgram()/runSuite() call this automatically.
 */
void checkStaticBounds(const CoreConfig &config,
                       const Program &program,
                       const SimResult &result);

/** Simulate one workload under @p config. */
SimResult simulate(const CoreConfig &config, const Workload &workload);

/** Simulate an arbitrary program (examples, tests). */
SimResult simulateProgram(const CoreConfig &config,
                          const Program &program,
                          bool fp_intensive = false);

/** The four nested live-register accounting levels (DESIGN.md). */
enum class LiveLevel : int {
    InFlight = 0,       ///< registers of in-flight instructions
    PlusQueue = 1,      ///< + dispatch-queue residents
    ImpreciseLive = 2,  ///< + waiting-imprecise (= imprecise live)
    PreciseLive = 3,    ///< + waiting-precise (= total live)
};

/** Suite run with the paper's averaging applied. */
class SuiteResult
{
  public:
    explicit SuiteResult(std::vector<SimResult> runs);

    const std::vector<SimResult> &runs() const { return runs_; }

    /** Arithmetic means over all benchmarks. */
    double avgIssueIpc() const;
    double avgCommitIpc() const;
    double avgNoFreeRegPct() const;
    /** Mean percent of cycles attributed to @p cause. */
    double avgCausePct(CycleCause cause) const;
    /** Mean percent of non-productive cycles. */
    double avgStallPct() const;

    /**
     * Cross-benchmark average of run-time-normalized live-register
     * densities.  FP distributions average only the FP-intensive
     * benchmarks (paper Figure 3 note).
     */
    std::vector<double> avgDensity(RegClass cls, LiveLevel level) const;

    /** Percentile of the averaged density (e.g. 0.90). */
    std::uint64_t livePercentile(RegClass cls, LiveLevel level,
                                 double fraction) const;

    /** Averaged run-time coverage curve (Figures 4, 5, 8). */
    std::vector<double> avgCoverage(RegClass cls, LiveLevel level) const;

  private:
    std::vector<SimResult> runs_;
};

/** Run every workload in @p suite under @p config. */
SuiteResult runSuite(const CoreConfig &config,
                     const std::vector<Workload> &suite);

} // namespace drsim

#endif // DRSIM_SIM_SIMULATOR_HH
