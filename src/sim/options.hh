/**
 * @file
 * A small self-describing command-line option parser for the drsim
 * front-end (tools/drsim).  Long options only: `--name value`,
 * `--name=value`, and boolean `--name`.
 */

#ifndef DRSIM_SIM_OPTIONS_HH
#define DRSIM_SIM_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace drsim {

class OptionParser
{
  public:
    /** Register options; the pointed-to defaults double as values. */
    void addInt(const std::string &name, std::int64_t *value,
                const std::string &help);
    void addString(const std::string &name, std::string *value,
                   const std::string &help);
    void addFlag(const std::string &name, bool *value,
                 const std::string &help);

    /**
     * Parse argv (excluding argv[0]).  Returns true on success;
     * on failure error() describes the problem.  `--help` sets
     * helpRequested() and returns true without parsing further.
     */
    bool parse(int argc, const char *const *argv);

    bool helpRequested() const { return helpRequested_; }
    const std::string &error() const { return error_; }

    /** Render the option table for --help. */
    std::string helpText(const std::string &program) const;

  private:
    enum class Kind { Int, String, Flag };

    struct Option
    {
        std::string name;
        Kind kind;
        void *target;
        std::string help;
        std::string defaultRepr;
    };

    const Option *find(const std::string &name) const;
    bool assign(const Option &opt, const std::string &value);

    std::vector<Option> options_;
    bool helpRequested_ = false;
    std::string error_;
};

} // namespace drsim

#endif // DRSIM_SIM_OPTIONS_HH
