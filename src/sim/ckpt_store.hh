/**
 * @file
 * The content-addressed checkpoint library (DESIGN.md §5j).
 *
 * Architectural fast-forward is config-independent: every sweep point
 * of a (workload, sampling plan) pair replays the *identical*
 * functional emulation before each measured window.  The library
 * computes that emulation once, snapshots the EmuArchState at every
 * interval boundary (the start of each period's detailed phase, plus
 * the architectural end of the program), and serves the snapshots to
 * every subsequent sampled run of the same key — across configs,
 * across budgets, across threads, and (with DRSIM_CKPT_DIR set)
 * across processes.
 *
 * Keys deliberately exclude every CoreConfig field: the snapshots are
 * purely architectural, so two different machine configurations of
 * the same workload and sampling spec share entries.  Functional
 * warming preserves that independence: the snapshots sit at each
 * window's *warm-start* position (detail start minus the replay
 * horizon), and every sweep point replays the same architectural
 * stream into its own caches and branch predictor at restore time.
 * A key is
 *
 *     (library rev, workload name, programDigest, interval, window,
 *      warmup, warmff)
 *
 * canonicalized to text and FNV-1a hashed, exactly like the sweep
 * point cache (serve/point_cache) this store is modeled on.
 *
 * On-disk layout under DRSIM_CKPT_DIR:
 *
 *     <dir>/<hh>/<hash>.json           meta: key text, arch length,
 *                                      checkpointed positions and
 *                                      detail starts
 *     <dir>/<hh>/<hash>.p<pos>.bin     one EmuArchState per position
 *
 * Every file is written to a unique temp name and atomically renamed;
 * every .bin carries the snapshot's archStateHash() and is validated
 * on load.  A corrupt or missing entry is recomputed by
 * fast-forwarding from the nearest earlier good checkpoint (or from
 * reset) and re-stored — corruption can cost time, never correctness.
 * DRSIM_CKPT_MAX_BYTES applies the shared LRU eviction policy
 * (common/disk_lru.hh) after stores.
 *
 * The in-memory tier coalesces concurrent generation: when several
 * sweep points of one workload arrive together (the serve daemon's
 * thread pool), exactly one generates while the rest wait and share
 * the resulting plan.
 */

#ifndef DRSIM_SIM_CKPT_STORE_HH
#define DRSIM_SIM_CKPT_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workloads/emulator.hh"

namespace drsim {

class Program;
struct SamplingConfig;

/**
 * Checkpoint library code version, folded into every key.  Bump when
 * the snapshot format or the interval-boundary placement changes;
 * DRSIM_CKPT_REV overrides it (invalidation tests, operators pinning
 * a library).
 */
std::string ckptRev();

/** The inputs identifying one checkpointed sampling plan. */
struct CkptKey
{
    /** Workload name (provenance only; the digest is authoritative). */
    std::string workload;
    /** programDigest() of the built program (workloads/digest.hh). */
    std::string digest;
    /** The sampling stride plan (SamplingConfig fields). */
    std::uint64_t interval = 0;
    std::uint64_t window = 0;
    std::uint64_t warmup = 0;
    /** Functional-warming horizon (0 = the whole gap); part of the
     *  key because it moves the warm-start snapshot positions. */
    std::uint64_t warmff = 0;
};

/** Canonical key text for @p key at library version @p rev. */
std::string ckptKeyText(const CkptKey &key, const std::string &rev);

struct SampleCkpts;

/**
 * Generate the full plan for @p key from scratch, with no caching:
 * the store's generation backend, and (called directly) the
 * library-disabled baseline path of bench/simspeed.
 */
SampleCkpts generateSampleCkpts(const CkptKey &key,
                                const Program &program);

/**
 * The checkpointed sampling plan for one key: the program's
 * architectural length and a snapshot at the *warm-start* position of
 * every detailed phase after the first (position 0 needs no snapshot —
 * it is reset state), plus one at the architectural end (the tail
 * task's restore point).  The warm start precedes the detailed phase
 * by the functional-warming horizon — min(warmff, gap), the whole gap
 * when warmff is 0 — so a restored window replays that stretch into
 * the configuration's caches and branch predictor before timing
 * begins.  Positions are deterministic functions of the sampling spec
 * and the program alone — budget- and config-independent — which is
 * what makes the entries reusable across a whole sweep.
 */
struct SampleCkpts
{
    /** Instructions before the Halt (committing it makes the full-run
     *  committed count archLength + 1). */
    std::uint64_t archLength = 0;
    /** Ascending checkpointed (warm-start) positions; the last equals
     *  archLength. */
    std::vector<std::uint64_t> positions;
    /** Snapshot at positions[i]. */
    std::vector<EmuArchState> states;
    /**
     * Detail-start position of the window restored from positions[i]
     * (>= positions[i]; the difference is the warming replay).  One
     * entry per interior checkpoint: detailStarts.size() is
     * positions.size() - 1, except when the program halts exactly at
     * a detail start whose replay is zero — then the final position
     * doubles as both and the sizes are equal.
     */
    std::vector<std::uint64_t> detailStarts;

    /** Snapshot at exactly @p pos, or nullptr if not checkpointed. */
    const EmuArchState *stateAt(std::uint64_t pos) const;
};

class CkptStore
{
  public:
    /**
     * Open a checkpoint store.  An empty @p dir disables the disk
     * tier (the in-memory tier still amortizes generation within the
     * process).  @p max_bytes of ~0 defers to DRSIM_CKPT_MAX_BYTES
     * (0 = unbounded).
     */
    explicit CkptStore(std::string dir, std::string rev = ckptRev(),
                       std::uint64_t max_bytes = ~std::uint64_t{0});

    const std::string &dir() const { return dir_; }
    const std::string &rev() const { return rev_; }

    /** Meta-file path for @p key ("" when the disk tier is off). */
    std::string metaPath(const CkptKey &key) const;
    /** Snapshot-file path for @p key at @p pos ("" when disk off). */
    std::string statePath(const CkptKey &key,
                          std::uint64_t pos) const;

    /** Provenance of one acquire() (phase-timing telemetry). */
    struct AcquireOutcome
    {
        std::shared_ptr<const SampleCkpts> plan;
        /** Snapshots loaded (and hash-validated) from disk. */
        std::uint64_t diskHits = 0;
        /** Snapshots produced by functional emulation. */
        std::uint64_t generated = 0;
        /** Whole plan was already resident in memory. */
        bool fromMemory = false;
        /** Waited for a concurrent generation of the same key. */
        bool coalesced = false;
    };

    /**
     * Return the checkpointed plan for @p key, generating it (once,
     * coalesced across concurrent callers) if neither tier has it.
     * @p program must be the program @p key.digest was computed from.
     */
    AcquireOutcome acquire(const CkptKey &key, const Program &program);

    struct Stats
    {
        /** Snapshots served from disk (hash-validated). */
        std::uint64_t hits = 0;
        /** Snapshots that had to be generated by emulation. */
        std::uint64_t misses = 0;
        /** Snapshot/meta files rejected by validation. */
        std::uint64_t corrupt = 0;
        /** Snapshot files written. */
        std::uint64_t stores = 0;
        /** Files removed by the LRU byte cap. */
        std::uint64_t evicted = 0;
        /** Keys generated (fully or partially) by emulation. */
        std::uint64_t generated = 0;
        /** acquire() calls that waited on a concurrent generation. */
        std::uint64_t coalesced = 0;
        /** acquire() calls served from the in-memory tier. */
        std::uint64_t memoryHits = 0;
    };
    Stats stats() const;

  private:
    struct Entry
    {
        bool ready = false;
        bool generating = false;
        std::shared_ptr<const SampleCkpts> plan;
        std::exception_ptr error;
    };

    std::shared_ptr<const SampleCkpts>
    buildPlan(const CkptKey &key, const Program &program,
              AcquireOutcome &out);
    bool loadMeta(const std::string &key_text,
                  const std::string &hash, SampleCkpts &plan);
    bool loadState(const std::string &hash, std::uint64_t pos,
                   EmuArchState &state);
    void storeMeta(const std::string &key_text,
                   const std::string &hash, const SampleCkpts &plan);
    void storeState(const std::string &hash, std::uint64_t pos,
                    const EmuArchState &state);
    std::string pathFor(const std::string &hash,
                        const std::string &suffix) const;
    void countCorrupt(const std::string &path,
                      const std::string &why);

    std::string dir_;
    std::string rev_;
    std::uint64_t maxBytes_ = 0;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::string, std::shared_ptr<Entry>> entries_;
    Stats stats_;
};

/**
 * The process-global checkpoint library the sampling driver uses,
 * configured from DRSIM_CKPT_DIR / DRSIM_CKPT_MAX_BYTES /
 * DRSIM_CKPT_REV.  The instance is rebuilt (dropping the in-memory
 * tier) when those variables change between calls — tests use this to
 * flip between cold and warm; changing them while simulations are in
 * flight is unsupported.
 */
CkptStore &ckptLibrary();

/** Build the key for @p program under @p sampling. */
CkptKey ckptKeyFor(const std::string &workload,
                   const Program &program,
                   const SamplingConfig &sampling);

} // namespace drsim

#endif // DRSIM_SIM_CKPT_STORE_HH
