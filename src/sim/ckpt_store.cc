#include "sim/ckpt_store.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/disk_lru.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/config.hh"
#include "workloads/digest.hh"
#include "workloads/program.hh"

namespace drsim {

namespace {

/** Bump when the snapshot format or boundary placement changes. */
constexpr const char *kBuiltinCkptRev = "ckpt-v2";

/** Leading magic of every snapshot file. */
constexpr char kStateMagic[8] = {'D', 'R', 'S', 'I',
                                 'M', 'C', 'K', '1'};

/**
 * The jittered gap sequence between detailed phases.  This is the
 * PR 7 sampling driver's LCG, hoisted here so boundary placement is
 * owned by the checkpoint library: the sampling driver derives its
 * fast-forward lengths *from* the stored positions, which keeps the
 * serial, window-parallel, and checkpoint-warm paths on byte-identical
 * plans by construction.  Jittering each gap uniformly over
 * [ff_len/2, 3*ff_len/2) breaks the aliasing between fixed-stride
 * windows and periodic kernels while preserving the mean sampling
 * rate; the constant seed keeps a given (program, plan) deterministic.
 */
class GapSequence
{
  public:
    explicit GapSequence(const CkptKey &key)
        : ffLen_(key.interval - key.warmup - key.window)
    {
    }

    std::uint64_t
    next()
    {
        lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t span = std::max<std::uint64_t>(ffLen_, 1);
        return ffLen_ / 2 + (lcg_ >> 33) % span;
    }

  private:
    std::uint64_t ffLen_;
    std::uint64_t lcg_ = 0x9e3779b97f4a7c15ull;
};

void
putU64(std::ostream &out, std::uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putI32(std::ostream &out, std::int32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(in);
}

bool
getI32(std::istream &in, std::int32_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(in);
}

} // namespace

std::string
ckptRev()
{
    const char *env = std::getenv("DRSIM_CKPT_REV");
    if (env != nullptr && env[0] != '\0')
        return env;
    return kBuiltinCkptRev;
}

std::string
ckptKeyText(const CkptKey &key, const std::string &rev)
{
    std::ostringstream os;
    os << "drsim-ckpt-v1\n"
       << "rev=" << rev << "\n"
       << "workload=" << key.workload << "\n"
       << "program_digest=" << key.digest << "\n"
       << "interval=" << key.interval << "\n"
       << "window=" << key.window << "\n"
       << "warmup=" << key.warmup << "\n"
       << "warmff=" << key.warmff << "\n";
    return os.str();
}

CkptKey
ckptKeyFor(const std::string &workload, const Program &program,
           const SamplingConfig &sampling)
{
    CkptKey key;
    key.workload = workload;
    key.digest = programDigest(program);
    key.interval = sampling.interval;
    key.window = sampling.window;
    key.warmup = sampling.warmup;
    key.warmff = sampling.warmff;
    return key;
}

const EmuArchState *
SampleCkpts::stateAt(std::uint64_t pos) const
{
    const auto it =
        std::lower_bound(positions.begin(), positions.end(), pos);
    if (it == positions.end() || *it != pos)
        return nullptr;
    return &states[std::size_t(it - positions.begin())];
}

CkptStore::CkptStore(std::string dir, std::string rev,
                     std::uint64_t max_bytes)
    : dir_(std::move(dir)), rev_(std::move(rev)),
      maxBytes_(max_bytes == ~std::uint64_t{0}
                    ? envU64("DRSIM_CKPT_MAX_BYTES", 0)
                    : max_bytes)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create checkpoint directory '", dir_,
              "': ", ec.message());
    }
}

std::string
CkptStore::pathFor(const std::string &hash,
                   const std::string &suffix) const
{
    if (dir_.empty())
        return "";
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash + suffix;
}

std::string
CkptStore::metaPath(const CkptKey &key) const
{
    return pathFor(fnv1aHex(ckptKeyText(key, rev_)), ".json");
}

std::string
CkptStore::statePath(const CkptKey &key, std::uint64_t pos) const
{
    return pathFor(fnv1aHex(ckptKeyText(key, rev_)),
                   ".p" + std::to_string(pos) + ".bin");
}

void
CkptStore::countCorrupt(const std::string &path,
                        const std::string &why)
{
    warn("checkpoint ", path, " is unusable (", why,
         "); regenerating");
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
}

bool
CkptStore::loadMeta(const std::string &key_text,
                    const std::string &hash, SampleCkpts &plan)
{
    const std::string path = pathFor(hash, ".json");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const json::Value doc = json::parse(text.str());
        if (!doc.isObject() || doc.at("drsim_ckpt").asU64() != 1) {
            countCorrupt(path, "not a v1 checkpoint meta");
            return false;
        }
        if (doc.at("key").asString() != key_text) {
            countCorrupt(path, "key text mismatch (hash collision "
                               "or stale generator)");
            return false;
        }
        plan.archLength = doc.at("arch_length").asU64();
        plan.positions.clear();
        for (const json::Value &p : doc.at("positions").items())
            plan.positions.push_back(p.asU64());
        if (plan.positions.empty() ||
            plan.positions.back() != plan.archLength ||
            !std::is_sorted(plan.positions.begin(),
                            plan.positions.end()) ||
            std::adjacent_find(plan.positions.begin(),
                               plan.positions.end()) !=
                plan.positions.end()) {
            countCorrupt(path, "inconsistent position list");
            return false;
        }
        plan.detailStarts.clear();
        for (const json::Value &p : doc.at("detail_starts").items())
            plan.detailStarts.push_back(p.asU64());
        const std::size_t np = plan.positions.size();
        const std::size_t nd = plan.detailStarts.size();
        bool ds_ok =
            nd == np - 1 ||
            (nd == np &&
             plan.detailStarts.back() == plan.positions.back());
        for (std::size_t i = 0; ds_ok && i < nd; ++i) {
            ds_ok = plan.detailStarts[i] >= plan.positions[i] &&
                    plan.detailStarts[i] <= plan.archLength &&
                    (i == 0 || plan.detailStarts[i] >
                                   plan.detailStarts[i - 1]);
        }
        if (!ds_ok) {
            countCorrupt(path, "inconsistent detail-start list");
            return false;
        }
        if (maxBytes_ != 0)
            touchFile(path);
        return true;
    } catch (const FatalError &e) {
        countCorrupt(path, e.what());
        return false;
    }
}

bool
CkptStore::loadState(const std::string &hash, std::uint64_t pos,
                     EmuArchState &state)
{
    const std::string path =
        pathFor(hash, ".p" + std::to_string(pos) + ".bin");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    const auto corrupt = [&](const char *why) {
        countCorrupt(path, why);
        return false;
    };

    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || !std::equal(magic, magic + 8, kStateMagic))
        return corrupt("bad magic");

    std::uint64_t key_hash = 0, position = 0;
    if (!getU64(in, key_hash) || !getU64(in, position))
        return corrupt("truncated header");
    if (key_hash != std::stoull(hash, nullptr, 16) ||
        position != pos)
        return corrupt("header mismatch");

    std::int32_t block = 0, offset = 0;
    std::uint64_t steps = 0, data_limit = 0;
    if (!getI32(in, block) || !getI32(in, offset) ||
        !getU64(in, steps) || !getU64(in, data_limit))
        return corrupt("truncated header");
    state.loc.block = block;
    state.loc.offset = offset;
    state.steps = steps;
    state.dataLimit = data_limit;

    for (std::uint64_t &r : state.intRegs) {
        if (!getU64(in, r))
            return corrupt("truncated registers");
    }
    for (double &r : state.fpRegs) {
        std::uint64_t bits = 0;
        if (!getU64(in, bits))
            return corrupt("truncated registers");
        r = std::bit_cast<double>(bits);
    }

    std::uint64_t data_words = 0;
    if (!getU64(in, data_words) || data_words > (1ull << 32))
        return corrupt("truncated data segment");
    state.data.resize(std::size_t(data_words));
    for (std::uint64_t &w : state.data) {
        if (!getU64(in, w))
            return corrupt("truncated data segment");
    }

    std::uint64_t mem_count = 0;
    if (!getU64(in, mem_count) || mem_count > (1ull << 32))
        return corrupt("truncated sparse memory");
    state.mem.clear();
    for (std::uint64_t i = 0; i < mem_count; ++i) {
        std::uint64_t addr = 0, word = 0;
        if (!getU64(in, addr) || !getU64(in, word))
            return corrupt("truncated sparse memory");
        state.mem.emplace(addr, word);
    }

    std::uint64_t stored_hash = 0;
    if (!getU64(in, stored_hash))
        return corrupt("missing state hash");
    if (in.peek() != std::ifstream::traits_type::eof())
        return corrupt("trailing bytes");
    if (stored_hash != archStateHash(state) || state.steps != pos)
        return corrupt("state hash mismatch");

    if (maxBytes_ != 0)
        touchFile(path);
    return true;
}

void
CkptStore::storeMeta(const std::string &key_text,
                     const std::string &hash,
                     const SampleCkpts &plan)
{
    const std::string path = pathFor(hash, ".json");
    std::error_code ec;
    std::filesystem::create_directories(
        dir_ + "/" + hash.substr(0, 2), ec);
    if (ec) {
        warn("cannot create checkpoint fan-out directory for '",
             path, "': ", ec.message());
        return;
    }

    std::string doc = "{\"drsim_ckpt\":1,\"computed_at_rev\":\"";
    doc += json::escape(rev_);
    doc += "\",\"key_hash\":\"" + hash + "\",\"key\":\"";
    doc += json::escape(key_text);
    doc += "\",\"arch_length\":" + std::to_string(plan.archLength);
    doc += ",\"positions\":[";
    for (std::size_t i = 0; i < plan.positions.size(); ++i) {
        if (i != 0)
            doc += ",";
        doc += std::to_string(plan.positions[i]);
    }
    doc += "],\"detail_starts\":[";
    for (std::size_t i = 0; i < plan.detailStarts.size(); ++i) {
        if (i != 0)
            doc += ",";
        doc += std::to_string(plan.detailStarts[i]);
    }
    doc += "]}\n";

    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cannot open checkpoint temp file '", tmp, "'");
            return;
        }
        out << doc;
        out.flush();
        if (!out) {
            warn("failed writing checkpoint temp file '", tmp, "'");
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        warn("cannot publish checkpoint meta '", path,
             "': ", ec.message());
    }
}

void
CkptStore::storeState(const std::string &hash, std::uint64_t pos,
                      const EmuArchState &state)
{
    const std::string path =
        pathFor(hash, ".p" + std::to_string(pos) + ".bin");
    std::error_code ec;
    std::filesystem::create_directories(
        dir_ + "/" + hash.substr(0, 2), ec);
    if (ec) {
        warn("cannot create checkpoint fan-out directory for '",
             path, "': ", ec.message());
        return;
    }

    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cannot open checkpoint temp file '", tmp, "'");
            return;
        }
        out.write(kStateMagic, sizeof(kStateMagic));
        putU64(out, std::stoull(hash, nullptr, 16));
        putU64(out, pos);
        putI32(out, state.loc.block);
        putI32(out, state.loc.offset);
        putU64(out, state.steps);
        putU64(out, state.dataLimit);
        for (std::uint64_t r : state.intRegs)
            putU64(out, r);
        for (double r : state.fpRegs)
            putU64(out, std::bit_cast<std::uint64_t>(r));
        putU64(out, state.data.size());
        for (std::uint64_t w : state.data)
            putU64(out, w);
        // Sorted so racing writers publish identical bytes.
        std::vector<std::pair<Addr, std::uint64_t>> mem(
            state.mem.begin(), state.mem.end());
        std::sort(mem.begin(), mem.end());
        putU64(out, mem.size());
        for (const auto &[addr, word] : mem) {
            putU64(out, addr);
            putU64(out, word);
        }
        putU64(out, archStateHash(state));
        out.flush();
        if (!out) {
            warn("failed writing checkpoint temp file '", tmp, "'");
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        warn("cannot publish checkpoint '", path,
             "': ", ec.message());
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
}

/**
 * Generate the full plan from reset: fast-forward one period
 * (warmup + window, then the jittered gap) at a time, snapshotting at
 * every warm-start boundary, until the emulator stops at the
 * program's architectural end.  The final snapshot always sits at
 * archLength — it is the restore point for the detailed tail that
 * commits the Halt.
 */
SampleCkpts
generateSampleCkpts(const CkptKey &key, const Program &program)
{
    SampleCkpts plan;
    Emulator emu(program);
    GapSequence gaps(key);
    std::uint64_t pos = 0;
    const auto finish = [&]() -> SampleCkpts {
        // Halt (or a blocked fetch) is at pos: this is the
        // architectural end.  Dedupe against a warm-start boundary
        // that landed exactly there.
        if (plan.positions.empty() || plan.positions.back() != pos) {
            plan.positions.push_back(pos);
            plan.states.push_back(emu.saveArchState());
        }
        plan.archLength = pos;
        return std::move(plan);
    };
    while (true) {
        // This period's detailed phase (warm-up + window).
        const std::uint64_t detail = key.warmup + key.window;
        std::uint64_t stepped = emu.fastForward(detail);
        pos += stepped;
        if (stepped < detail)
            return finish();

        // The gap: skip to the warm start, snapshot, then advance
        // the replay stretch to the detail start.  The checkpoint is
        // published only once the detail start is reached, so a halt
        // mid-gap or mid-replay never leaves a checkpoint whose
        // window could not run.
        const std::uint64_t gap = gaps.next();
        const std::uint64_t replay =
            key.warmff == 0 ? gap : std::min(key.warmff, gap);
        stepped = emu.fastForward(gap - replay);
        pos += stepped;
        if (stepped < gap - replay)
            return finish();
        EmuArchState warm_start = emu.saveArchState();
        const std::uint64_t warm_pos = pos;
        stepped = emu.fastForward(replay);
        pos += stepped;
        if (stepped < replay)
            return finish();
        plan.positions.push_back(warm_pos);
        plan.states.push_back(std::move(warm_start));
        plan.detailStarts.push_back(pos);
    }
}

std::shared_ptr<const SampleCkpts>
CkptStore::buildPlan(const CkptKey &key, const Program &program,
                     AcquireOutcome &out)
{
    const std::string key_text = ckptKeyText(key, rev_);
    const std::string hash = fnv1aHex(key_text);
    auto plan = std::make_shared<SampleCkpts>();

    bool have_meta =
        !dir_.empty() && loadMeta(key_text, hash, *plan);
    if (have_meta) {
        // Load each snapshot; regenerate any miss by fast-forwarding
        // from the nearest earlier good state (or reset).
        std::unique_ptr<Emulator> emu;
        for (std::uint64_t pos : plan->positions) {
            EmuArchState state;
            if (loadState(hash, pos, state)) {
                plan->states.push_back(std::move(state));
                ++out.diskHits;
                continue;
            }
            if (!emu)
                emu = std::make_unique<Emulator>(program);
            if (!plan->states.empty() &&
                plan->states.back().steps > emu->stepsExecuted())
                emu->restoreArchState(plan->states.back());
            const std::uint64_t cur = emu->stepsExecuted();
            if (cur > pos ||
                emu->fastForward(pos - cur) != pos - cur) {
                // The meta's positions disagree with the program
                // (stale digest collision, hand-edited file): the
                // whole entry is untrustworthy.
                countCorrupt(pathFor(hash, ".json"),
                             "positions unreachable by emulation");
                have_meta = false;
                break;
            }
            plan->states.push_back(emu->saveArchState());
            ++out.generated;
            if (!dir_.empty())
                storeState(hash, pos, plan->states.back());
        }
    }

    if (!have_meta) {
        out.diskHits = 0;
        *plan = generateSampleCkpts(key, program);
        out.generated = plan->states.size();
        if (!dir_.empty()) {
            for (std::size_t i = 0; i < plan->positions.size(); ++i)
                storeState(hash, plan->positions[i],
                           plan->states[i]);
            storeMeta(key_text, hash, *plan);
        }
    }

    std::uint64_t evicted = 0;
    if (!dir_.empty() && maxBytes_ != 0 && out.generated != 0)
        evicted = enforceDirByteCap(dir_, maxBytes_);

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.hits += out.diskHits;
    stats_.misses += out.generated;
    stats_.evicted += evicted;
    if (out.generated != 0)
        ++stats_.generated;
    return plan;
}

CkptStore::AcquireOutcome
CkptStore::acquire(const CkptKey &key, const Program &program)
{
    const std::string key_text = ckptKeyText(key, rev_);
    AcquireOutcome out;

    std::shared_ptr<Entry> entry;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
            auto it = entries_.find(key_text);
            if (it == entries_.end()) {
                entry = std::make_shared<Entry>();
                entry->generating = true;
                entries_.emplace(key_text, entry);
                break;
            }
            entry = it->second;
            if (entry->ready) {
                if (entry->error)
                    std::rethrow_exception(entry->error);
                ++stats_.memoryHits;
                out.plan = entry->plan;
                out.fromMemory = true;
                return out;
            }
            // Someone else is generating this key: wait and share.
            ++stats_.coalesced;
            out.coalesced = true;
            ready_.wait(lock, [&] { return entry->ready; });
            if (entry->error)
                std::rethrow_exception(entry->error);
            ++stats_.memoryHits;
            out.plan = entry->plan;
            out.fromMemory = true;
            return out;
        }
    }

    try {
        out.plan = buildPlan(key, program, out);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->error = std::current_exception();
        entry->ready = true;
        // Drop the poisoned entry so a later acquire retries; the
        // waiters coalesced onto this attempt still see the error
        // through their shared_ptr.
        entries_.erase(key_text);
        ready_.notify_all();
        throw;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    entry->plan = out.plan;
    entry->ready = true;
    ready_.notify_all();
    return out;
}

CkptStore::Stats
CkptStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

CkptStore &
ckptLibrary()
{
    static std::mutex mutex;
    static std::unique_ptr<CkptStore> store;
    static std::string signature;

    const char *dir_env = std::getenv("DRSIM_CKPT_DIR");
    const std::string dir = dir_env != nullptr ? dir_env : "";
    const std::string rev = ckptRev();
    const std::uint64_t max_bytes = envU64("DRSIM_CKPT_MAX_BYTES", 0);
    const std::string sig = dir + "\x1f" + rev + "\x1f" +
                            std::to_string(max_bytes);

    std::lock_guard<std::mutex> lock(mutex);
    if (!store || signature != sig) {
        // Rebuilding drops the in-memory tier; tests flip the env
        // between runs to force cold/warm paths.  Changing it while
        // simulations are in flight is unsupported.
        store = std::make_unique<CkptStore>(dir, rev, max_bytes);
        signature = sig;
    }
    return *store;
}

} // namespace drsim
