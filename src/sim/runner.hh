/**
 * @file
 * Parallel experiment runner and machine-readable result export.
 *
 * Every (configuration, workload) simulation is independent: a run
 * owns its Processor, Emulator, caches, predictor and histograms, and
 * only *reads* the shared Program (see DESIGN.md, "Concurrency
 * model").  The runner exploits this by fanning runs out over a
 * fixed-size thread pool and reassembling results by index, so the
 * output is bit-identical to the serial runSuite() path no matter how
 * many workers raced to produce it.
 *
 * Job-count resolution (resolveJobs): an explicit positive argument
 * wins; otherwise the DRSIM_JOBS environment variable; otherwise the
 * hardware concurrency.  A job count of 1 bypasses the pool entirely
 * and takes the legacy serial path.
 *
 * runExperiments() runs a batch of *named* configurations over one
 * suite and pairs naturally with resultsJson()/writeResultsFile(),
 * which serialize the batch to the JSON schema documented in
 * docs/RESULTS_SCHEMA.md.  The JSON deliberately excludes wall-clock
 * times and the job count, so artifacts from serial and parallel runs
 * of the same experiment are byte-identical and can be diffed.
 */

#ifndef DRSIM_SIM_RUNNER_HH
#define DRSIM_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace drsim {

/** Upper bound on a resolved job count; larger DRSIM_JOBS values are
 *  clamped (with a warning) rather than silently truncated. */
constexpr int kMaxJobs = 1024;

/**
 * Resolve an effective job count.  @p requested > 0 is used as-is;
 * @p requested <= 0 falls back to DRSIM_JOBS (when set and valid),
 * then to the hardware concurrency.  DRSIM_JOBS=0 is an explicit
 * auto-detect (hardware concurrency); values above kMaxJobs clamp to
 * it with a warning; garbage is warned about and ignored.  Always
 * returns >= 1.
 */
int resolveJobs(int requested = 0);

/**
 * Parallel counterpart of runSuite() (simulator.hh): simulate every
 * workload under @p config on @p jobs workers.  Results are assembled
 * in workload order and are bit-identical to the serial path; jobs
 * resolves via resolveJobs(), and a resolved count of 1 *is* the
 * serial path.
 */
SuiteResult runSuite(const CoreConfig &config,
                     const std::vector<Workload> &suite, int jobs);

/** One named machine configuration in an experiment batch. */
struct ExperimentSpec
{
    /** Stable identifier, e.g. "w4-precise-r80"; used in the JSON. */
    std::string name;
    CoreConfig config;
};

/** Suite results for one ExperimentSpec, in spec order. */
struct ExperimentResult
{
    ExperimentSpec spec;
    SuiteResult suite;
};

/**
 * Run every spec over @p suite, fanning all (spec, workload) pairs
 * out over one shared pool so small sweeps still fill every worker.
 * Results are returned in spec order, each with its runs in workload
 * order — identical to looping runSuite() over the specs serially.
 */
std::vector<ExperimentResult>
runExperiments(const std::vector<ExperimentSpec> &specs,
               const std::vector<Workload> &suite, int jobs = 0);

/** Provenance recorded at the top level of a results file. */
struct RunInfo
{
    /** Artifact identity, normally the harness name, e.g. "fig6". */
    std::string runId;
    /** DRSIM_SCALE in effect when the suite was built. */
    int scale = 0;
    /** DRSIM_MAX_COMMITTED in effect (0 = run to halt). */
    std::uint64_t maxCommitted = 0;
};

/**
 * Serialize an experiment batch to the schema in
 * docs/RESULTS_SCHEMA.md (schema_version 2).  Deterministic: equal
 * inputs yield byte-equal strings, independent of the job count.
 * Zero-denominator ratios are emitted as JSON null, never 0.
 */
std::string resultsJson(const RunInfo &info,
                        const std::vector<ExperimentResult> &results);

/** Write resultsJson() to @p path; fatal() on I/O failure. */
void writeResultsFile(const std::string &path, const RunInfo &info,
                      const std::vector<ExperimentResult> &results);

/// @name Simulator-speed benchmark export (bench/simspeed)
/// @{

/**
 * One workload's wall-clock measurement under both scheduler
 * implementations (config.scanScheduler on/off).  The committed and
 * cycle counts are identical across the two legs by construction —
 * the benchmark aborts otherwise — so a single pair is recorded.
 */
struct SpeedSample
{
    std::string workload;
    std::uint64_t committed = 0;
    std::uint64_t cycles = 0;
    /** Best-of-reps wall time for the scan-based reference path. */
    double scanSeconds = 0.0;
    /** Best-of-reps wall time for the event-driven path. */
    double eventSeconds = 0.0;
};

/**
 * Optional end-to-end measurement: wall clock of the *full* fig7
 * sweep harness, this build versus a build of the pre-event-core
 * revision (whose only scheduler was the scan).  Both builds simulate
 * the exact same instruction stream (statistics are bit-identical),
 * so the wall-clock ratio equals the simulated-MIPS improvement.
 * Populated by bench/simspeed when DRSIM_E2E_BASELINE_FIG7 is set;
 * absent from the JSON otherwise.
 */
struct SpeedEndToEnd
{
    bool present = false;
    /** Git revision the baseline fig7 binary was built from. */
    std::string baselineRev;
    /** DRSIM_SCALE both sweeps ran at (single-job). */
    int sweepScale = 0;
    double baselineSeconds = 0.0;
    double currentSeconds = 0.0;
};

/**
 * One workload's sampled-vs-full-detail comparison.  The full leg
 * runs the event core to completion; the sampled leg runs the same
 * configuration under a SamplingConfig.  ciCovers records whether
 * the sampled 95% confidence interval contains the full-run IPC —
 * the accuracy contract every recorded sample must satisfy.
 */
struct SampledSpeedSample
{
    std::string workload;
    std::uint64_t committed = 0;
    /** Best-of-reps wall time for the full-detail run. */
    double fullSeconds = 0.0;
    /** Best-of-reps wall time for the sampled run. */
    double sampledSeconds = 0.0;
    /** Commit IPC of the full-detail run (ground truth). */
    double fullIpc = 0.0;
    /** Sampled-mode IPC estimate and its 95% CI half-width. */
    double ipcEstimate = 0.0;
    double ci95 = 0.0;
    std::uint64_t windows = 0;
    bool ciCovers = false;
};

/**
 * The sampled-simulation benchmark block: full-detail versus
 * SMARTS-style sampled wall clock on the longest-running workloads
 * (the gcc1/espresso-dominated set), plus the per-workload accuracy
 * check.  Populated by bench/simspeed; "sampled" in the JSON.
 */
struct SampledSpeed
{
    bool present = false;
    /** The SamplingConfig the sampled legs ran under. */
    std::uint64_t interval = 0;
    std::uint64_t window = 0;
    std::uint64_t warmup = 0;
    std::uint64_t warmff = 0;
    std::vector<SampledSpeedSample> samples;
};

/**
 * Per-phase wall-clock split of one sampled leg (from SampleProfile):
 * checkpoint acquisition (= the functional fast-forward cost, whether
 * generated or loaded), gated warm-ups, and measured windows.
 */
struct SampledPhaseSeconds
{
    double total = 0.0;
    double acquire = 0.0;
    double warmup = 0.0;
    double window = 0.0;
};

/**
 * One workload's checkpoint-warm window-parallel sampled run versus
 * the library-disabled serial-window baseline (the PR 7 sampling cost
 * model) at the same sweep-realistic sampling spec.  Both legs
 * produce byte-identical statistics by construction — the benchmark
 * aborts otherwise — so only wall-clock and checkpoint provenance are
 * recorded.
 */
struct ParallelSampledSample
{
    std::string workload;
    /** Library disabled, windows serial: every run pays the full
     *  functional fast-forward. */
    SampledPhaseSeconds baseline;
    /** Checkpoint-warm, windows fanned out over the pool. */
    SampledPhaseSeconds warm;
    /** Snapshots the warm leg loaded / had to generate. */
    std::uint64_t ckptHits = 0;
    std::uint64_t ckptGenerated = 0;
    /** Worker count the warm leg's windows used. */
    int windowJobs = 1;
};

/**
 * The checkpoint-library benchmark block ("parallel_sampled" in the
 * JSON): the sampled sweep cost with fast-forward amortized into the
 * checkpoint library and measured windows sharded across the thread
 * pool.  Runs under its own sweep-realistic spec (DRSIM_PSAMPLE_BENCH
 * — sparse windows, bounded functional warming: the regime of a 96
 * point register-file sweep, where the fast-forward dominates each
 * point).  The aggregate baseline/warm speedup is what the CI gate
 * tracks (>= 3x over the serial sampled cost at the same spec).
 */
struct ParallelSampled
{
    bool present = false;
    /**
     * DRSIM_SCALE this block's suite was built at (DRSIM_PSAMPLE_SCALE;
     * independent of the top-level scale).  Sampling amortizes the
     * functional fast-forward, so its benchmark regime is the *long*
     * workload — at the tiny top-level bench scale the measured
     * windows dominate and the ratio degenerates toward 1 regardless
     * of how well the library amortizes.
     */
    int scale = 0;
    /** The SamplingConfig both legs ran under. */
    std::uint64_t interval = 0;
    std::uint64_t window = 0;
    std::uint64_t warmup = 0;
    std::uint64_t warmff = 0;
    std::vector<ParallelSampledSample> samples;
};

/** Provenance recorded at the top level of BENCH_simspeed.json. */
struct SpeedRunInfo
{
    int scale = 0;
    std::uint64_t maxCommitted = 0;
    /** Timing repetitions per (workload, scheduler) leg. */
    int reps = 1;
    int issueWidth = 0;
    int numPhysRegs = 0;
    SpeedEndToEnd endToEnd;
    SampledSpeed sampled;
    ParallelSampled parallelSampled;
};

/**
 * Serialize speed samples to the "simspeed-v1" schema documented in
 * docs/RESULTS_SCHEMA.md.  Unlike resultsJson() this file carries
 * wall-clock times and is *not* byte-deterministic across runs; the
 * derived speedup ratios are the comparable quantity.
 */
std::string simspeedJson(const SpeedRunInfo &info,
                         const std::vector<SpeedSample> &samples);

/** Write simspeedJson() to @p path; fatal() on I/O failure. */
void writeSimspeedFile(const std::string &path,
                       const SpeedRunInfo &info,
                       const std::vector<SpeedSample> &samples);
/// @}

} // namespace drsim

#endif // DRSIM_SIM_RUNNER_HH
