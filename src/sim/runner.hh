/**
 * @file
 * Parallel experiment runner and machine-readable result export.
 *
 * Every (configuration, workload) simulation is independent: a run
 * owns its Processor, Emulator, caches, predictor and histograms, and
 * only *reads* the shared Program (see DESIGN.md, "Concurrency
 * model").  The runner exploits this by fanning runs out over a
 * fixed-size thread pool and reassembling results by index, so the
 * output is bit-identical to the serial runSuite() path no matter how
 * many workers raced to produce it.
 *
 * Job-count resolution (resolveJobs): an explicit positive argument
 * wins; otherwise the DRSIM_JOBS environment variable; otherwise the
 * hardware concurrency.  A job count of 1 bypasses the pool entirely
 * and takes the legacy serial path.
 *
 * runExperiments() runs a batch of *named* configurations over one
 * suite and pairs naturally with resultsJson()/writeResultsFile(),
 * which serialize the batch to the JSON schema documented in
 * docs/RESULTS_SCHEMA.md.  The JSON deliberately excludes wall-clock
 * times and the job count, so artifacts from serial and parallel runs
 * of the same experiment are byte-identical and can be diffed.
 */

#ifndef DRSIM_SIM_RUNNER_HH
#define DRSIM_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace drsim {

/** Upper bound on a resolved job count; larger DRSIM_JOBS values are
 *  clamped (with a warning) rather than silently truncated. */
constexpr int kMaxJobs = 1024;

/**
 * Resolve an effective job count.  @p requested > 0 is used as-is;
 * @p requested <= 0 falls back to DRSIM_JOBS (when set and valid),
 * then to the hardware concurrency.  DRSIM_JOBS=0 is an explicit
 * auto-detect (hardware concurrency); values above kMaxJobs clamp to
 * it with a warning; garbage is warned about and ignored.  Always
 * returns >= 1.
 */
int resolveJobs(int requested = 0);

/**
 * Parallel counterpart of runSuite() (simulator.hh): simulate every
 * workload under @p config on @p jobs workers.  Results are assembled
 * in workload order and are bit-identical to the serial path; jobs
 * resolves via resolveJobs(), and a resolved count of 1 *is* the
 * serial path.
 */
SuiteResult runSuite(const CoreConfig &config,
                     const std::vector<Workload> &suite, int jobs);

/** One named machine configuration in an experiment batch. */
struct ExperimentSpec
{
    /** Stable identifier, e.g. "w4-precise-r80"; used in the JSON. */
    std::string name;
    CoreConfig config;
};

/** Suite results for one ExperimentSpec, in spec order. */
struct ExperimentResult
{
    ExperimentSpec spec;
    SuiteResult suite;
};

/**
 * Run every spec over @p suite, fanning all (spec, workload) pairs
 * out over one shared pool so small sweeps still fill every worker.
 * Results are returned in spec order, each with its runs in workload
 * order — identical to looping runSuite() over the specs serially.
 */
std::vector<ExperimentResult>
runExperiments(const std::vector<ExperimentSpec> &specs,
               const std::vector<Workload> &suite, int jobs = 0);

/** Provenance recorded at the top level of a results file. */
struct RunInfo
{
    /** Artifact identity, normally the harness name, e.g. "fig6". */
    std::string runId;
    /** DRSIM_SCALE in effect when the suite was built. */
    int scale = 0;
    /** DRSIM_MAX_COMMITTED in effect (0 = run to halt). */
    std::uint64_t maxCommitted = 0;
};

/**
 * Serialize an experiment batch to the schema in
 * docs/RESULTS_SCHEMA.md (schema_version 2).  Deterministic: equal
 * inputs yield byte-equal strings, independent of the job count.
 * Zero-denominator ratios are emitted as JSON null, never 0.
 */
std::string resultsJson(const RunInfo &info,
                        const std::vector<ExperimentResult> &results);

/** Write resultsJson() to @p path; fatal() on I/O failure. */
void writeResultsFile(const std::string &path, const RunInfo &info,
                      const std::vector<ExperimentResult> &results);

} // namespace drsim

#endif // DRSIM_SIM_RUNNER_HH
