/**
 * @file
 * Runtime cross-check gates against the static dataflow oracle
 * (DESIGN.md §5i).  After a full-detail run, two invariants relate
 * the simulation to analysis::computeBounds():
 *
 *   1. commit IPC <= static IPC upper bound (+ tolerance) — the
 *      machine cannot beat its own dataflow/resource limits;
 *   2. peak live physical registers >= static MaxLive — the dynamic
 *      live accounting cannot undercount what the program provably
 *      keeps live.
 *
 * Both static bounds err on the permissive side (see bounds.hh), so
 * a violation is always a simulator bug — scheduling that commits
 * instructions it never issued, or live accounting that drops
 * mappings.  Violations DRSIM_PANIC in debug/test builds and warn in
 * release; DRSIM_BOUNDS_GATE=off|warn|panic overrides.
 */

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/bounds.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"

namespace drsim {

BoundsGateMode
boundsGateMode()
{
    const char *env = std::getenv("DRSIM_BOUNDS_GATE");
    if (env != nullptr && env[0] != '\0') {
        if (std::strcmp(env, "off") == 0)
            return BoundsGateMode::Off;
        if (std::strcmp(env, "warn") == 0)
            return BoundsGateMode::Warn;
        if (std::strcmp(env, "panic") == 0)
            return BoundsGateMode::Panic;
        warn("DRSIM_BOUNDS_GATE='", env,
             "' is not off|warn|panic; using the build default");
    }
#ifdef NDEBUG
    return BoundsGateMode::Warn;
#else
    return BoundsGateMode::Panic;
#endif
}

void
checkStaticBounds(const CoreConfig &config, const Program &program,
                  const SimResult &result)
{
    const BoundsGateMode mode = boundsGateMode();
    if (mode == BoundsGateMode::Off)
        return;
    // Sampled runs splice functional fast-forwards into the timeline;
    // neither gate's invariant holds over such a composite.  A run
    // that never committed has no meaningful IPC either.
    if (result.sampled.enabled || result.proc.cycles == 0)
        return;

    analysis::MachineLimits limits;
    limits.issueWidth = config.issueWidth;
    limits.intIssue = config.intIssueLimit();
    limits.fpIssue = config.fpIssueLimit();
    limits.fpDivIssue = config.fpDivIssueLimit();
    limits.memIssue = config.memIssueLimit();
    limits.ctrlIssue = config.ctrlIssueLimit();
    limits.fpDividers = config.numFpDividers();

    const analysis::BoundsReport bounds =
        analysis::computeBounds(program, limits);
    if (!bounds.valid)
        return;

    std::ostringstream os;

    // Gate 1: simulated IPC cannot exceed the static upper bound.
    // The tolerance absorbs end effects (partial first/last cycles)
    // on top of a bound that is already conservative.
    const double ipc = result.commitIpc();
    const double limit = bounds.ipcBound * 1.05 + 0.05;
    if (ipc > limit) {
        os << "commit IPC " << ipc << " exceeds the static bound "
           << bounds.ipcBound << " (+5% tolerance = " << limit << ")";
    }

    // Gate 2: dynamic peak live registers cannot undercut static
    // MaxLive.  Only meaningful when the histograms were collected
    // and at least one cycle was sampled.
    if (config.collectLiveHistograms) {
        for (int c = 0; c < kNumRegClasses; ++c) {
            const auto &hist = result.proc.live[c][3];
            if (hist.totalSamples() == 0)
                continue;
            if (hist.maxValue() <
                std::uint64_t(bounds.maxLive[c])) {
                if (os.tellp() > 0)
                    os << "; ";
                os << (c == 0 ? "int" : "fp")
                   << " peak live registers " << hist.maxValue()
                   << " below static MaxLive " << bounds.maxLive[c];
            }
        }
    }

    if (os.tellp() == 0)
        return;
    if (mode == BoundsGateMode::Panic) {
        DRSIM_PANIC("static-bounds gate violated for '",
                    result.workload, "': ", os.str());
    }
    warn("static-bounds gate violated for '", result.workload,
         "': ", os.str());
}

} // namespace drsim
