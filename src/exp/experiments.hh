/**
 * @file
 * Library-internal seams of the experiment registry: the definition
 * table itself (experiments.cc) and the custom harness bodies that
 * live in their own translation units.
 */

#ifndef DRSIM_EXP_EXPERIMENTS_HH
#define DRSIM_EXP_EXPERIMENTS_HH

#include <vector>

#include "exp/registry.hh"

namespace drsim {
namespace exp {
namespace detail {

/** The full definition table (experiments.cc). */
std::vector<ExperimentDef> makeExperimentDefs();

/** The simulator-speed benchmark harness (simspeed.cc). */
int runSimspeed(const RunContext &ctx);

/** The sampled-simulation accuracy check (simspeed.cc): sampled IPC
 *  estimate vs full-detail IPC on every suite workload; nonzero exit
 *  when any workload's 95% CI misses the full-run IPC. */
int runSamplingValidate(const RunContext &ctx);

} // namespace detail
} // namespace exp
} // namespace drsim

#endif // DRSIM_EXP_EXPERIMENTS_HH
