/**
 * @file
 * Declarative experiment grids.
 *
 * A GridDef describes one sweep as data: a base machine configuration
 * plus an ordered list of axes (issue width, register count, exception
 * model, cache kind, dispatch-queue size, MSHR/write-buffer bounds, or
 * arbitrary named variants).  expandGrid() walks the cross product in
 * row-major order — the first axis is the outermost loop — producing
 * exactly the ExperimentSpec vector the hand-rolled harness loops used
 * to build, including the legacy spec names ("w4-precise-r80"):
 * every axis value carries a name fragment, and fragments are joined
 * in a canonical rank order (width, model, regs, cache, rest) that is
 * independent of the nesting order, because the legacy harnesses
 * nested their loops one way and spelled their names another.
 *
 * The expansion is deliberately free of I/O and environment reads so
 * `drsim_bench --dry-run` can audit a sweep without running it and
 * tests can assert counts and orderings cheaply.
 */

#ifndef DRSIM_EXP_GRID_HH
#define DRSIM_EXP_GRID_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace drsim {
namespace exp {

/** One point on one axis: a name fragment (may be empty, meaning it
 *  contributes nothing to the spec name) and the config edit. */
struct AxisValue
{
    std::string fragment;
    std::function<void(CoreConfig &)> apply;
};

/// @name Canonical fragment ranks (legacy spec-name order)
/// @{
constexpr int kRankWidth = 10;
constexpr int kRankModel = 20;
constexpr int kRankRegs = 30;
constexpr int kRankCache = 40;
constexpr int kRankOther = 50;
/// @}

/** One swept dimension. */
struct Axis
{
    /** Axis identity for --dry-run and spec files, e.g. "width". */
    std::string label;
    /** Position of this axis's fragment in the assembled spec name
     *  (kRank*); ties keep axis declaration order. */
    int nameRank = kRankOther;
    std::vector<AxisValue> values;
};

/** A declarative sweep: base config x cross product of axes. */
struct GridDef
{
    /** Leading name fragment shared by every spec ("compress",
     *  "lifetime"); empty for most grids. */
    std::string namePrefix;
    CoreConfig base;
    /** Nesting order: axes[0] is the outermost loop. */
    std::vector<Axis> axes;
};

/// @name Axis factories (paper Figure-2 machine conventions)
/// @{

/** Issue width; also sets the paper's cost-effective dispatch-queue
 *  size (32 entries at 4-way, 64 at 8-way).  Fragments "w4", "w8". */
Axis widthAxis(const std::vector<int> &widths);

/** Dispatch-queue size override (after widthAxis in nesting order).
 *  Fragments "dq8".."dq256". */
Axis dqAxis(const std::vector<int> &sizes);

/** Physical registers per file.  Fragments "r32".."r2048". */
Axis regsAxis(const std::vector<int> &regs);

/** Exception model.  Fragments "precise"/"imprecise". */
Axis modelAxis(const std::vector<ExceptionModel> &models);

/** Data-cache organization.  Fragments from cacheKindName(). */
Axis cacheAxis(const std::vector<CacheKind> &kinds);

/** Lockup-free MSHR bound (0 = the paper's unlimited organization).
 *  Fragments "mshr1".."mshr16", "mshr-unlimited". */
Axis mshrAxis(const std::vector<std::uint32_t> &bounds);

/** Write-buffer entry bound (0 = the paper's infinite free buffer).
 *  Fragments "wb1".."wb16", "wb-unlimited". */
Axis writeBufferAxis(const std::vector<std::uint32_t> &entries);

/** Write-buffer drain period in cycles.  Fragments "drain4"... */
Axis writeBufferDrainAxis(const std::vector<Cycle> &cycles);

/** Branch-predictor backend (makeBranchPredictor() specs).
 *  Fragments are the spec names: "mcfarling", "gshare", ... */
Axis predictorAxis(const std::vector<std::string> &specs);

/** Result-bus count (0 = the paper's unlimited writeback).
 *  Fragments "bus1".."bus8", "bus-unlimited". */
Axis resultBusAxis(const std::vector<int> &buses);

/** Arbitrary named variants (the ablation studies). */
Axis variantAxis(const std::string &label,
                 std::vector<AxisValue> values);
/// @}

/** Number of specs expandGrid() will produce. */
std::size_t gridPoints(const GridDef &grid);

/**
 * Expand the cross product into named ExperimentSpecs, deterministic
 * in both ordering (row-major over the axes as declared) and naming
 * (prefix first, then fragments by rank).
 */
std::vector<ExperimentSpec> expandGrid(const GridDef &grid);

/** expandGrid() over several grids, concatenated in order. */
std::vector<ExperimentSpec>
expandGrids(const std::vector<GridDef> &grids);

} // namespace exp
} // namespace drsim

#endif // DRSIM_EXP_GRID_HH
