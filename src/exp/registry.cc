#include "exp/registry.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/env.hh"
#include "common/logging.hh"
#include "core/config_check.hh"
#include "exp/experiments.hh"
#include "workloads/classic.hh"

namespace drsim {
namespace exp {

RunContext
RunContext::fromEnv()
{
    RunContext ctx;
    ctx.scale = envInt("DRSIM_SCALE", kDefaultSuiteScale, 0,
                       std::numeric_limits<int>::max());
    ctx.maxCommitted = envU64("DRSIM_MAX_COMMITTED", 0);
    const char *dir = std::getenv("DRSIM_RESULTS_DIR");
    ctx.resultsDir = dir != nullptr ? dir : ".";
    const char *sample = std::getenv("DRSIM_SAMPLE");
    if (sample != nullptr && sample[0] != '\0')
        ctx.sampling = parseSamplingSpec(sample);
    const char *pred = std::getenv("DRSIM_PREDICTOR");
    if (pred != nullptr && pred[0] != '\0')
        ctx.predictor = pred;
    ctx.resultBuses = envInt("DRSIM_RESULT_BUSES", -1, -1,
                             std::numeric_limits<int>::max());
    return ctx;
}

SamplingConfig
parseSamplingSpec(const std::string &text)
{
    std::uint64_t fields[4] = {0, 0, 0, 0};
    int nfields = 0;
    std::size_t pos = 0;
    bool trailing = false;
    while (nfields < 4) {
        const std::size_t colon = text.find(':', pos);
        const std::string part = text.substr(
            pos, colon == std::string::npos ? std::string::npos
                                            : colon - pos);
        if (part.empty() ||
            part.find_first_not_of("0123456789") != std::string::npos) {
            fatal("bad sampling spec '", text,
                  "': expected INTERVAL[:WINDOW[:WARMUP[:WARMFF]]] "
                  "with decimal instruction counts");
        }
        fields[nfields++] = std::strtoull(part.c_str(), nullptr, 10);
        trailing = colon != std::string::npos;
        if (!trailing)
            break;
        pos = colon + 1;
    }
    if (trailing)
        fatal("bad sampling spec '", text, "': too many fields");

    SamplingConfig sc;
    sc.interval = fields[0];
    if (sc.interval == 0)
        fatal("bad sampling spec '", text, "': interval must be > 0");
    sc.window = nfields >= 2 ? fields[1]
                             : std::max<std::uint64_t>(
                                   sc.interval / 20, 1);
    sc.warmup = nfields >= 3 ? fields[2] : sc.window;
    sc.warmff = nfields >= 4 ? fields[3] : 0;
    if (sc.window == 0)
        fatal("bad sampling spec '", text, "': window must be > 0");
    if (sc.interval <= sc.warmup + sc.window) {
        fatal("bad sampling spec '", text, "': interval (",
              sc.interval, ") must exceed warmup + window (",
              sc.warmup, " + ", sc.window, ")");
    }
    return sc;
}

namespace {

std::vector<ExperimentDef> &
mutableRegistry()
{
    static std::vector<ExperimentDef> defs =
        detail::makeExperimentDefs();
    return defs;
}

} // namespace

const std::vector<ExperimentDef> &
experimentRegistry()
{
    return mutableRegistry();
}

const ExperimentDef *
findExperiment(const std::string &name)
{
    for (const ExperimentDef &def : experimentRegistry()) {
        if (name == def.name)
            return &def;
    }
    return nullptr;
}

void
setExternalRunner(const std::string &name,
                  int (*run)(const RunContext &ctx))
{
    for (ExperimentDef &def : mutableRegistry()) {
        if (name == def.name) {
            if (def.run == nullptr) {
                fatal("experiment '", name,
                      "' is grid-driven; it cannot take an external "
                      "runner");
            }
            def.run = run;
            return;
        }
    }
    fatal("unknown experiment '", name, "'");
}

std::vector<ExperimentSpec>
expandExperiment(const ExperimentDef &def, const RunContext &ctx)
{
    if (def.grids == nullptr) {
        fatal("experiment '", def.name,
              "' is a custom harness; it has no declarative grid");
    }
    std::vector<ExperimentSpec> specs = expandGrids(def.grids());
    for (ExperimentSpec &spec : specs) {
        spec.config.maxCommitted = ctx.maxCommitted;
        spec.config.sampling = ctx.sampling;
        // Overrides apply only when set so experiments whose grids
        // sweep these axes (ext_predictors) are not clobbered.
        if (!ctx.predictor.empty())
            spec.config.predictor = ctx.predictor;
        if (ctx.resultBuses >= 0)
            spec.config.resultBuses = ctx.resultBuses;
        // Screen each point before anything simulates: an infeasible
        // config should reject the sweep at expansion time, not
        // fatal() mid-run.
        requireFeasibleConfig(spec.config,
                              std::string(def.name) + "/" + spec.name);
    }
    return specs;
}

std::vector<Workload>
buildSuite(const ExperimentDef &def, const RunContext &ctx)
{
    return def.suite != nullptr ? def.suite(ctx)
                                : buildSpec92Suite(ctx.scale);
}

int
runExperiment(const ExperimentDef &def, const RunContext &ctx,
              const std::string &filter)
{
    if (def.run != nullptr) {
        if (!filter.empty()) {
            warn("--filter has no effect on custom experiment '",
                 def.name, "'");
        }
        return def.run(ctx);
    }

    banner(def.title);
    std::vector<ExperimentSpec> specs = expandExperiment(def, ctx);
    const std::size_t full = specs.size();
    if (!filter.empty()) {
        std::vector<ExperimentSpec> kept;
        for (ExperimentSpec &spec : specs) {
            if (spec.name.find(filter) != std::string::npos)
                kept.push_back(std::move(spec));
        }
        if (kept.empty()) {
            std::fprintf(stderr,
                         "%s: no spec name contains --filter '%s'\n",
                         def.name, filter.c_str());
            return 1;
        }
        specs = std::move(kept);
        std::printf("\nrunning %zu of %zu specs matching --filter "
                    "'%s'\n",
                    specs.size(), full, filter.c_str());
    }

    const std::vector<Workload> suite = buildSuite(def, ctx);
    const std::vector<ExperimentResult> results =
        runExperiments(specs, suite, ctx.jobs);

    if (!filter.empty()) {
        // The curated printers index the full grid positionally, so a
        // subset gets the generic summary instead (and no artifact —
        // a filtered run is an audit, not a reproduction).
        printGenericSummary(results);
        printStallSummary(results);
        return 0;
    }
    def.print(ctx, results);
    if (def.exportResults) {
        printStallSummary(results);
        emitResults(def.name, ctx, results);
    }
    return 0;
}

int
runExperimentByName(const char *name)
{
    const ExperimentDef *def = findExperiment(name);
    if (def == nullptr) {
        std::fprintf(stderr, "unknown experiment '%s'\n", name);
        return 2;
    }
    try {
        return runExperiment(*def, RunContext::fromEnv());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", name, e.what());
        return 1;
    }
}

CoreConfig
paperConfig(int issue_width, int num_regs, ExceptionModel model,
            CacheKind cache)
{
    CoreConfig cfg;
    cfg.issueWidth = issue_width;
    cfg.dqSize = issue_width == 4 ? 32 : 64;
    cfg.numPhysRegs = num_regs;
    cfg.exceptionModel = model;
    cfg.cacheKind = cache;
    return cfg;
}

void
banner(const char *title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title);
}

void
printStallSummary(const std::vector<ExperimentResult> &results)
{
    std::printf("\n---- stall-cause breakdown (avg %% of cycles) "
                "----\n");
    std::printf("%-24s", "cause");
    for (const auto &res : results)
        std::printf(" %12.12s", res.spec.name.c_str());
    std::printf("\n");
    for (int c = 0; c < kNumCycleCauses; ++c) {
        bool fired = false;
        for (const auto &res : results)
            for (const auto &r : res.suite.runs())
                fired = fired ||
                        r.proc.cycleCauseCount(CycleCause(c)) > 0;
        if (!fired)
            continue;
        std::printf("%-24s", cycleCauseName(CycleCause(c)));
        for (const auto &res : results)
            std::printf(" %11.2f%%",
                        res.suite.avgCausePct(CycleCause(c)));
        std::printf("\n");
    }
}

void
emitResults(const char *id, const RunContext &ctx,
            const std::vector<ExperimentResult> &results)
{
    const std::string path =
        ctx.resultsDir + "/" + id + "_results.json";
    RunInfo info;
    info.runId = id;
    info.scale = ctx.scale;
    info.maxCommitted = ctx.maxCommitted;
    try {
        writeResultsFile(path, info, results);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", id, e.what());
        std::exit(1);
    }
    std::printf("\n[%s] wrote JSON results to %s\n", id, path.c_str());
}

void
printGenericSummary(const std::vector<ExperimentResult> &results)
{
    std::printf("\n%-32s %7s %7s %8s %10s\n", "spec", "issIPC",
                "cmtIPC", "stall%", "nofree%");
    for (const ExperimentResult &er : results) {
        std::printf("%-32s %7.2f %7.2f %7.1f%% %9.1f%%\n",
                    er.spec.name.c_str(), er.suite.avgIssueIpc(),
                    er.suite.avgCommitIpc(), er.suite.avgStallPct(),
                    er.suite.avgNoFreeRegPct());
    }
}

std::vector<Workload>
classicWorkloads()
{
    auto classic = buildClassicSuite();
    // Workloads reference their WorkloadSpec by pointer, so the specs
    // need storage that outlives the returned suite.
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> s;
        for (const auto &[name, prog] : buildClassicSuite())
            s.push_back({name, "", false, nullptr});
        return s;
    }();
    std::vector<Workload> suite;
    for (std::size_t i = 0; i < classic.size(); ++i)
        suite.push_back({&specs[i], std::move(classic[i].second)});
    return suite;
}

std::string
configSummary(const CoreConfig &cfg)
{
    std::string s = "width=" + std::to_string(cfg.issueWidth) +
                    " dq=" + std::to_string(cfg.dqSize) +
                    " regs=" + std::to_string(cfg.numPhysRegs) +
                    " model=" +
                    exceptionModelName(cfg.exceptionModel) +
                    " cache=" + cacheKindName(cfg.cacheKind);
    if (cfg.dcache.maxOutstandingMisses != 0) {
        s += " mshrs=" +
             std::to_string(cfg.dcache.maxOutstandingMisses);
    }
    if (cfg.dcache.writeBufferEntries != 0) {
        s += " wbuf=" + std::to_string(cfg.dcache.writeBufferEntries) +
             " drain=" +
             std::to_string(cfg.dcache.writeBufferDrainCycles);
    }
    if (cfg.predictor != "mcfarling")
        s += " bpred=" + cfg.predictor;
    if (cfg.resultBuses != 0)
        s += " buses=" + std::to_string(cfg.resultBuses);
    if (cfg.inOrderBranches)
        s += " in-order-branches";
    if (!cfg.speculativeHistoryUpdate)
        s += " execute-time-history";
    if (!cfg.storeToLoadForwarding)
        s += " no-forwarding";
    if (cfg.splitDispatchQueues)
        s += " split-queues";
    if (cfg.sampling.enabled()) {
        s += " sample=" + std::to_string(cfg.sampling.interval) + ":" +
             std::to_string(cfg.sampling.window) + ":" +
             std::to_string(cfg.sampling.warmup);
        if (cfg.sampling.warmff != 0)
            s += ":" + std::to_string(cfg.sampling.warmff);
    }
    return s;
}

} // namespace exp
} // namespace drsim
