#include "exp/grid.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace drsim {
namespace exp {

Axis
widthAxis(const std::vector<int> &widths)
{
    Axis axis{"width", kRankWidth, {}};
    for (const int w : widths) {
        axis.values.push_back({"w" + std::to_string(w),
                               [w](CoreConfig &cfg) {
                                   cfg.issueWidth = w;
                                   cfg.dqSize = w == 4 ? 32 : 64;
                               }});
    }
    return axis;
}

Axis
dqAxis(const std::vector<int> &sizes)
{
    Axis axis{"dq", kRankOther, {}};
    for (const int dq : sizes) {
        axis.values.push_back({"dq" + std::to_string(dq),
                               [dq](CoreConfig &cfg) {
                                   cfg.dqSize = dq;
                               }});
    }
    return axis;
}

Axis
regsAxis(const std::vector<int> &regs)
{
    Axis axis{"regs", kRankRegs, {}};
    for (const int r : regs) {
        axis.values.push_back({"r" + std::to_string(r),
                               [r](CoreConfig &cfg) {
                                   cfg.numPhysRegs = r;
                               }});
    }
    return axis;
}

Axis
modelAxis(const std::vector<ExceptionModel> &models)
{
    Axis axis{"model", kRankModel, {}};
    for (const ExceptionModel m : models) {
        axis.values.push_back({exceptionModelName(m),
                               [m](CoreConfig &cfg) {
                                   cfg.exceptionModel = m;
                               }});
    }
    return axis;
}

Axis
cacheAxis(const std::vector<CacheKind> &kinds)
{
    Axis axis{"cache", kRankCache, {}};
    for (const CacheKind k : kinds) {
        axis.values.push_back({cacheKindName(k),
                               [k](CoreConfig &cfg) {
                                   cfg.cacheKind = k;
                               }});
    }
    return axis;
}

Axis
mshrAxis(const std::vector<std::uint32_t> &bounds)
{
    Axis axis{"mshrs", kRankOther, {}};
    for (const std::uint32_t b : bounds) {
        axis.values.push_back(
            {b == 0 ? "mshr-unlimited" : "mshr" + std::to_string(b),
             [b](CoreConfig &cfg) {
                 cfg.dcache.maxOutstandingMisses = b;
             }});
    }
    return axis;
}

Axis
writeBufferAxis(const std::vector<std::uint32_t> &entries)
{
    Axis axis{"write_buffer", kRankOther, {}};
    for (const std::uint32_t e : entries) {
        axis.values.push_back(
            {e == 0 ? "wb-unlimited" : "wb" + std::to_string(e),
             [e](CoreConfig &cfg) {
                 cfg.dcache.writeBufferEntries = e;
             }});
    }
    return axis;
}

Axis
writeBufferDrainAxis(const std::vector<Cycle> &cycles)
{
    Axis axis{"write_buffer_drain", kRankOther, {}};
    for (const Cycle c : cycles) {
        axis.values.push_back({"drain" + std::to_string(c),
                               [c](CoreConfig &cfg) {
                                   cfg.dcache.writeBufferDrainCycles =
                                       c;
                               }});
    }
    return axis;
}

Axis
predictorAxis(const std::vector<std::string> &specs)
{
    Axis axis{"predictor", kRankOther, {}};
    for (const std::string &p : specs) {
        axis.values.push_back({p, [p](CoreConfig &cfg) {
                                   cfg.predictor = p;
                               }});
    }
    return axis;
}

Axis
resultBusAxis(const std::vector<int> &buses)
{
    Axis axis{"result_buses", kRankOther, {}};
    for (const int b : buses) {
        axis.values.push_back(
            {b == 0 ? "bus-unlimited" : "bus" + std::to_string(b),
             [b](CoreConfig &cfg) {
                 cfg.resultBuses = b;
             }});
    }
    return axis;
}

Axis
variantAxis(const std::string &label, std::vector<AxisValue> values)
{
    return Axis{label, kRankOther, std::move(values)};
}

std::size_t
gridPoints(const GridDef &grid)
{
    std::size_t n = 1;
    for (const Axis &axis : grid.axes)
        n *= axis.values.size();
    return n;
}

namespace {

/** Fragment join order: prefix, then axes sorted by rank (stable, so
 *  equal ranks keep declaration order). */
std::vector<std::size_t>
nameOrder(const GridDef &grid)
{
    std::vector<std::size_t> order(grid.axes.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return grid.axes[a].nameRank <
                                grid.axes[b].nameRank;
                     });
    return order;
}

} // namespace

std::vector<ExperimentSpec>
expandGrid(const GridDef &grid)
{
    for (const Axis &axis : grid.axes) {
        if (axis.values.empty())
            fatal("grid axis '", axis.label, "' has no values");
    }
    const std::vector<std::size_t> order = nameOrder(grid);
    const std::size_t total = gridPoints(grid);

    std::vector<ExperimentSpec> specs;
    specs.reserve(total);
    std::vector<std::size_t> idx(grid.axes.size(), 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
        // Row-major decode: the first axis is the outermost loop.
        std::size_t rem = flat;
        for (std::size_t a = grid.axes.size(); a-- > 0;) {
            idx[a] = rem % grid.axes[a].values.size();
            rem /= grid.axes[a].values.size();
        }

        ExperimentSpec spec;
        spec.config = grid.base;
        for (std::size_t a = 0; a < grid.axes.size(); ++a)
            grid.axes[a].values[idx[a]].apply(spec.config);

        spec.name = grid.namePrefix;
        for (const std::size_t a : order) {
            const std::string &frag =
                grid.axes[a].values[idx[a]].fragment;
            if (frag.empty())
                continue;
            if (!spec.name.empty())
                spec.name += '-';
            spec.name += frag;
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<ExperimentSpec>
expandGrids(const std::vector<GridDef> &grids)
{
    std::vector<ExperimentSpec> specs;
    for (const GridDef &grid : grids) {
        auto part = expandGrid(grid);
        specs.insert(specs.end(),
                     std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
    }
    return specs;
}

} // namespace exp
} // namespace drsim
