/**
 * @file
 * The registered experiments: every paper table/figure reproduction,
 * the ablation studies, and the extension sweeps, each one a
 * declarative grid (or a custom harness body) plus the print code
 * that renders the harness's stdout tables.
 *
 * The grids expand to the exact spec vectors — names, configs, and
 * orderings — the bench/ harness mains used to build by hand, and the
 * print functions are verbatim ports of those mains' table code, so
 * both the stdout and the JSON artifacts of the exporting experiments
 * (table1, fig6, fig7, fig8, ablations) are byte-identical to the
 * pre-registry harnesses (tests/test_exp.cc and the CI golden diff
 * hold that line).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/bounds.hh"
#include "bpred/predictor.hh"
#include "common/stats.hh"
#include "exp/experiments.hh"
#include "timing/regfile_timing.hh"
#include "timing/structures.hh"

namespace drsim {
namespace exp {
namespace detail {

namespace {

constexpr int kPaperRegSweep[] = {32, 48, 64, 80, 96, 128, 160, 256};

std::vector<int>
paperRegs()
{
    return {std::begin(kPaperRegSweep), std::end(kPaperRegSweep)};
}

std::vector<ExceptionModel>
bothModels()
{
    return {ExceptionModel::Precise, ExceptionModel::Imprecise};
}

std::vector<CacheKind>
allCaches()
{
    return {CacheKind::Perfect, CacheKind::LockupFree,
            CacheKind::Lockup};
}

// ---------------------------------------------------------------- table1

std::vector<GridDef>
table1Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4, 8}), regsAxis({2048})};
    return {grid};
}

void
table1PrintWidth(int width, const SuiteResult &res)
{
    std::printf("\n--- %d-way issue, DQ=%d, 2048 registers, "
                "lockup-free cache ---\n",
                width, width == 4 ? 32 : 64);
    std::printf("%-9s %9s %9s %8s %8s | %6s %6s | %6s %6s\n",
                "bench", "commit", "exec", "ld", "cbr", "issIPC",
                "cmtIPC", "ld%", "cbr%");
    for (const SimResult &r : res.runs()) {
        std::printf(
            "%-9s %9llu %9llu %8llu %8llu | %6.2f %6.2f | %5.1f%% "
            "%5.1f%%\n",
            r.workload.c_str(), (unsigned long long)r.proc.committed,
            (unsigned long long)r.proc.executed,
            (unsigned long long)r.proc.executedLoads,
            (unsigned long long)r.proc.executedCondBranches,
            r.issueIpc(), r.commitIpc(), 100.0 * r.loadMissRate,
            100.0 * r.mispredictRate());
    }
    std::printf("%-9s %38s | %6.2f %6.2f |\n", "average", "",
                res.avgIssueIpc(), res.avgCommitIpc());
}

void
table1Print(const RunContext &ctx,
            const std::vector<ExperimentResult> &results)
{
    std::printf("workload scale %d, per-run commit cap %llu "
                "(0 = to completion)\n",
                ctx.scale, (unsigned long long)ctx.maxCommitted);
    table1PrintWidth(4, results[0].suite);
    table1PrintWidth(8, results[1].suite);
    std::printf(
        "\npaper reference (Table 1, 4-way): compress 3.06/2.09 "
        "15%%/14%% | doduc 2.75/2.49 1%%/10%% | espresso 3.39/3.04 "
        "1%%/13%%\n  gcc1 2.80/2.35 1%%/19%% | mdljdp2 2.33/2.12 "
        "3%%/6%% | mdljsp2 2.97/2.69 1%%/6%% | ora 1.86/1.86 "
        "0%%/6%%\n  su2cor 3.38/3.22 17%%/7%% | tomcatv 2.77/2.77 "
        "33%%/1%%\n");
}

// ------------------------------------------------------------------ fig3

constexpr int kFig3DqSweep[] = {8, 16, 32, 64, 128, 256};

std::vector<GridDef>
fig3Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4, 8}),
                 dqAxis({std::begin(kFig3DqSweep),
                         std::end(kFig3DqSweep)})};
    return {grid};
}

void
fig3Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::size_t k = 0;
    for (const int width : {4, 8}) {
        std::printf("\n--- %d-way issue, 2048 registers ---\n", width);
        std::printf("%5s %6s %6s | %28s | %28s\n", "DQ", "issIPC",
                    "cmtIPC", "int regs (90th pct, nested)",
                    "fp regs (90th pct, nested)");
        std::printf("%5s %6s %6s | %6s %6s %6s %6s | %6s %6s %6s "
                    "%6s\n",
                    "", "", "", "inflt", "+dq", "+impr", "+prec",
                    "inflt", "+dq", "+impr", "+prec");
        for (const int dq : kFig3DqSweep) {
            const SuiteResult &res = results[k++].suite;
            std::printf("%5d %6.2f %6.2f |", dq, res.avgIssueIpc(),
                        res.avgCommitIpc());
            for (const RegClass cls : {RegClass::Int, RegClass::Fp}) {
                for (const LiveLevel lvl :
                     {LiveLevel::InFlight, LiveLevel::PlusQueue,
                      LiveLevel::ImpreciseLive,
                      LiveLevel::PreciseLive}) {
                    std::printf(" %6llu",
                                (unsigned long long)
                                    res.livePercentile(cls, lvl, 0.9));
                }
                if (cls == RegClass::Int)
                    std::printf(" |");
            }
            std::printf("\n");
        }
    }
    std::printf(
        "\npaper reference: 4-way issue IPC rises toward 4 and commit "
        "IPC saturates near DQ=32;\n8-way saturates near DQ=64; the "
        "+prec (total live) column grows steadily with DQ and the\n"
        "imprecise-wait region grows faster than the precise-wait "
        "region; fp totals floor at >=32.\n");
}

// ------------------------------------------------------------------ fig4

std::vector<GridDef>
fig4Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4, 8}), modelAxis(bothModels())};
    return {grid};
}

void
fig4PrintCurve(const char *tag, const SuiteResult &res, RegClass cls,
               LiveLevel lvl)
{
    std::printf("%-22s", tag);
    for (const double frac : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95,
                              0.99, 1.0}) {
        std::printf(" %6llu",
                    (unsigned long long)res.livePercentile(cls, lvl,
                                                           frac));
    }
    std::printf("\n");
}

void
fig4Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::printf("rows give the register count covering X%% of run "
                "time (averaged distributions)\n");
    std::size_t k = 0;
    for (const int width : {4, 8}) {
        std::printf("\n--- %d-way issue processor ---\n", width);
        std::printf("%-22s %6s %6s %6s %6s %6s %6s %6s %6s\n", "curve",
                    "10%", "25%", "50%", "75%", "90%", "95%", "99%",
                    "100%");
        for (const auto model : bothModels()) {
            const SuiteResult &res = results[k++].suite;
            // Under either model the run's own live total is the
            // +prec level (in an imprecise run the precise-wait
            // category is always empty, so the levels coincide).
            char tag[64];
            std::snprintf(tag, sizeof(tag), "int %s",
                          exceptionModelName(model));
            fig4PrintCurve(tag, res, RegClass::Int,
                           LiveLevel::PreciseLive);
            std::snprintf(tag, sizeof(tag), "fp  %s",
                          exceptionModelName(model));
            fig4PrintCurve(tag, res, RegClass::Fp,
                           LiveLevel::PreciseLive);
        }
    }
    std::printf("\npaper reference: 90%% coverage at ~90 registers "
                "(4-way) and ~150 (8-way) under precise\nexceptions; "
                "imprecise curves shifted toward zero; the imprecise "
                "model cut average register\nneeds by up to ~20%% "
                "(4-way) and ~37%% (8-way).\n");
}

// ------------------------------------------------------------------ fig5

std::vector<GridDef>
fig5Grids()
{
    GridDef grid;
    grid.base = paperConfig(8, 2048);
    grid.axes = {modelAxis(bothModels())};
    return {grid};
}

std::vector<Workload>
fig5Suite(const RunContext &ctx)
{
    std::vector<Workload> suite;
    suite.push_back(
        buildWorkload("tomcatv", std::max(1, ctx.scale / 4)));
    return suite;
}

void
fig5Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::vector<std::vector<double>> curves;
    for (const ExperimentResult &er : results) {
        const auto density =
            er.suite.runs()[0]
                .proc.live[int(RegClass::Fp)][int(
                    LiveLevel::PreciseLive)]
                .normalized();
        curves.push_back(coverageCurve(density));
    }

    std::printf("%-10s %10s %10s\n", "registers", "precise",
                "imprecise");
    const std::size_t len =
        std::max(curves[0].size(), curves[1].size());
    for (std::size_t r = 0; r < len + 20; r += 20) {
        const auto at = [&](const std::vector<double> &c) {
            return r < c.size() ? c[r] : 1.0;
        };
        std::printf("%-10zu %9.1f%% %9.1f%%\n", r,
                    100.0 * at(curves[0]), 100.0 * at(curves[1]));
    }
    std::printf("\npaper reference: imprecise reaches 100%% coverage "
                "near ~130 registers while precise\nneeds ~500, with "
                "a flat (bimodal) stretch between ~150 and ~400.\n");
}

// ------------------------------------------------------------------ fig6

std::vector<GridDef>
fig6Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4, 8}), regsAxis(paperRegs()),
                 modelAxis(bothModels())};
    return {grid};
}

void
fig6Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::size_t k = 0;
    for (const int width : {4, 8}) {
        std::printf("\n--- %d-way issue, DQ=%d ---\n", width,
                    width == 4 ? 32 : 64);
        std::printf("%5s | %8s %8s | %9s %9s\n", "regs", "IPC(prec)",
                    "IPC(impr)", "nofree(p)", "nofree(i)");
        for (const int regs : kPaperRegSweep) {
            const SuiteResult &prec = results[k++].suite;
            const SuiteResult &impr = results[k++].suite;
            std::printf("%5d | %8.2f %8.2f | %8.1f%% %8.1f%%\n", regs,
                        prec.avgCommitIpc(), impr.avgCommitIpc(),
                        prec.avgNoFreeRegPct(),
                        impr.avgNoFreeRegPct());
        }
    }
    std::printf("\npaper reference (4-way): IPC climbs from ~1.9 at "
                "32 regs to ~2.4-2.5 saturating near 80;\n(8-way): "
                "from ~2 to ~3.4-3.8 saturating near 128; imprecise "
                ">= precise throughout, converging\nat large sizes; "
                "no-free-register time falls from >50%% toward 0.\n");
}

// ------------------------------------------------------------------ fig7

std::vector<GridDef>
fig7Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {modelAxis({ExceptionModel::Imprecise,
                            ExceptionModel::Precise}),
                 widthAxis({4, 8}), regsAxis(paperRegs()),
                 cacheAxis(allCaches())};
    return {grid};
}

void
fig7Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::size_t k = 0;
    for (const auto model :
         {ExceptionModel::Imprecise, ExceptionModel::Precise}) {
        std::printf("\n=== (%s exceptions) ===\n",
                    exceptionModelName(model));
        for (const int width : {4, 8}) {
            std::printf("\n--- %d-way issue, DQ=%d ---\n", width,
                        width == 4 ? 32 : 64);
            std::printf("%5s | %8s %12s %8s\n", "regs", "perfect",
                        "lockup-free", "lockup");
            for (const int regs : kPaperRegSweep) {
                std::printf("%5d |", regs);
                for (const CacheKind kind : allCaches()) {
                    std::printf(" %*.2f",
                                kind == CacheKind::LockupFree ? 12 : 8,
                                results[k++].suite.avgCommitIpc());
                }
                std::printf("\n");
            }
        }
    }
    std::printf("\npaper reference: lockup-free ~= perfect >> lockup "
                "at every size; e.g. the 8-way\nimprecise curves "
                "saturate at ~96 registers for every memory model.\n");
}

// ------------------------------------------------------------------ fig8

std::vector<GridDef>
fig8Grids()
{
    GridDef grid;
    grid.namePrefix = "compress";
    grid.base = paperConfig(4, 2048);
    grid.axes = {cacheAxis(allCaches())};
    return {grid};
}

std::vector<Workload>
fig8Suite(const RunContext &ctx)
{
    std::vector<Workload> suite;
    suite.push_back(buildWorkload("compress", ctx.scale));
    return suite;
}

void
fig8Print(const RunContext &,
          const std::vector<ExperimentResult> &results)
{
    std::vector<std::vector<double>> curves;
    for (const auto &res : results)
        curves.push_back(coverageCurve(
            res.suite.runs()[0]
                .proc.live[int(RegClass::Int)][int(
                    LiveLevel::PreciseLive)]
                .normalized()));

    std::printf("%-10s %10s %12s %10s\n", "registers", "perfect",
                "lockup-free", "lockup");
    std::size_t len = 0;
    for (const auto &c : curves)
        len = std::max(len, c.size());
    for (std::size_t r = 30; r < len + 5; r += 5) {
        const auto at = [&](const std::vector<double> &c) {
            return r < c.size() ? c[r] : 1.0;
        };
        std::printf("%-10zu %9.1f%% %11.1f%% %9.1f%%\n", r,
                    100.0 * at(curves[0]), 100.0 * at(curves[1]),
                    100.0 * at(curves[2]));
    }
    std::printf("\npaper reference: the lockup-free curve lies "
                "rightmost (more registers, wider spread);\nthe "
                "lockup curve concentrates between ~55 and ~75 "
                "registers; perfect needs the fewest.\n");
}

// ----------------------------------------------------------------- fig10

std::vector<GridDef>
fig10Grids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4, 8}), regsAxis(paperRegs()),
                 modelAxis(bothModels())};
    return {grid};
}

void
fig10Print(const RunContext &,
           const std::vector<ExperimentResult> &results)
{
    double best_bips[2] = {0.0, 0.0};
    int wi = 0;
    std::size_t k = 0;
    for (const int width : {4, 8}) {
        std::printf("\n--- %d-way issue, DQ=%d ---\n", width,
                    width == 4 ? 32 : 64);
        std::printf("%5s | %8s %8s | %10s %10s | %10s %10s\n", "regs",
                    "tInt(ns)", "tFp(ns)", "IPC(prec)", "IPC(impr)",
                    "BIPS(prec)", "BIPS(impr)");
        for (const int regs : kPaperRegSweep) {
            const double t_int =
                regFileTiming(intRegFileGeometry(width, regs)).cycleNs;
            const double t_fp =
                regFileTiming(fpRegFileGeometry(width, regs)).cycleNs;
            double ipc[2];
            for (int m = 0; m < 2; ++m)
                ipc[m] = results[k++].suite.avgCommitIpc();
            const double bips_p = bipsEstimate(ipc[0], t_int);
            const double bips_i = bipsEstimate(ipc[1], t_int);
            best_bips[wi] =
                std::max({best_bips[wi], bips_p, bips_i});
            std::printf("%5d | %8.3f %8.3f | %10.2f %10.2f | %10.2f "
                        "%10.2f\n",
                        regs, t_int, t_fp, ipc[0], ipc[1], bips_p,
                        bips_i);
        }
        ++wi;
    }
    std::printf("\nbest BIPS: 4-way %.2f, 8-way %.2f -> 8-way gain "
                "%.0f%%\n",
                best_bips[0], best_bips[1],
                100.0 * (best_bips[1] / best_bips[0] - 1.0));
    std::printf("paper reference: both widths peak at moderate "
                "register counts; the models differ only\nat small "
                "files (converging past ~80/160 regs); the 8-way "
                "machine's best BIPS is only ~20%%\nabove the "
                "4-way's because its register file cycle time is so "
                "much longer.\n");
}

// ------------------------------------------------------------- ablations

std::vector<GridDef>
ablationsGrids()
{
    GridDef variants;
    variants.base = paperConfig(4, 128);
    variants.axes = {variantAxis(
        "variant",
        {{"baseline (paper model)", [](CoreConfig &) {}},
         {"in-order branches",
          [](CoreConfig &c) { c.inOrderBranches = true; }},
         {"execute-time bpred history",
          [](CoreConfig &c) { c.speculativeHistoryUpdate = false; }},
         {"no store->load forwarding",
          [](CoreConfig &c) { c.storeToLoadForwarding = false; }},
         {"split dispatch queues",
          [](CoreConfig &c) { c.splitDispatchQueues = true; }}})};

    GridDef lifetime;
    lifetime.namePrefix = "lifetime";
    lifetime.base = paperConfig(4, 80);
    lifetime.axes = {modelAxis(bothModels()), regsAxis({80})};
    return {variants, lifetime};
}

void
ablationsPrint(const RunContext &,
               const std::vector<ExperimentResult> &results)
{
    std::printf("\n4-way issue, DQ=32, 128 registers, lockup-free "
                "cache\n");
    std::printf("%-28s %7s %7s %9s\n", "variant", "issIPC", "cmtIPC",
                "mispred%");
    for (std::size_t v = 0; v < 5; ++v) {
        const ExperimentResult &er = results[v];
        const SuiteResult &res = er.suite;
        double mispred = 0.0;
        for (const auto &r : res.runs())
            mispred += r.mispredictRate();
        mispred /= double(res.runs().size());
        std::printf("%-28s %7.2f %7.2f %8.1f%%\n",
                    er.spec.name.c_str(), res.avgIssueIpc(),
                    res.avgCommitIpc(), 100.0 * mispred);
    }
    std::printf("expected: in-order branches trade prediction "
                "accuracy against IPC (the paper kept\nout-of-order "
                "execution); execute-time history raises "
                "mispredict%%; splitting the\nqueue 2:1:1 costs IPC "
                "on unbalanced mixes (the paper kept one unified "
                "queue).\n");

    const ExperimentResult &precise = results[5];
    const ExperimentResult &imprecise = results[6];
    std::printf("\nmean integer-register lifetime (cycles from "
                "allocation to free), 80 registers:\n");
    std::printf("%-10s %10s %10s\n", "bench", "precise", "imprecise");
    for (std::size_t i = 0; i < precise.suite.runs().size(); ++i) {
        const auto mean_of = [&](const ExperimentResult &er) {
            return er.suite.runs()[i]
                .lifetime[int(RegClass::Int)]
                .mean();
        };
        std::printf("%-10s %10.1f %10.1f\n",
                    precise.suite.runs()[i].workload.c_str(),
                    mean_of(precise), mean_of(imprecise));
    }
    std::printf("expected: imprecise lifetimes shorter everywhere "
                "(paper Section 3.2).\n");
}

// ------------------------------------------------------------ ext_classic

std::vector<GridDef>
extClassicGrids()
{
    GridDef sweep;
    sweep.base = paperConfig(4, 2048);
    sweep.axes = {regsAxis({32, 48, 64, 80, 96, 128, 256})};

    GridDef pressure;
    pressure.base = paperConfig(4, 2048);
    pressure.axes = {modelAxis(bothModels()), regsAxis({48})};
    return {sweep, pressure};
}

std::vector<Workload>
extClassicSuite(const RunContext &)
{
    return classicWorkloads();
}

void
extClassicPrint(const RunContext &,
                const std::vector<ExperimentResult> &results)
{
    const auto &kernels = results[0].suite.runs();
    std::printf("\nper-kernel commit IPC, 4-way, DQ=32, lockup-free\n");
    std::printf("%9s |", "");
    for (const SimResult &r : kernels)
        std::printf(" %9s", r.workload.c_str());
    std::printf(" | %7s\n", "average");
    const int sweep_regs[] = {32, 48, 64, 80, 96, 128, 256};
    for (std::size_t ri = 0; ri < 7; ++ri) {
        std::printf("%4d regs |", sweep_regs[ri]);
        double sum = 0.0;
        for (const SimResult &r : results[ri].suite.runs()) {
            std::printf(" %9.2f", r.commitIpc());
            sum += r.commitIpc();
        }
        std::printf(" | %7.2f\n", sum / double(kernels.size()));
    }

    const ExperimentResult &precise = results[7];
    const ExperimentResult &imprecise = results[8];
    std::printf("\nprecise vs imprecise at the pressure point "
                "(48 regs):\n");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const double p = precise.suite.runs()[i].commitIpc();
        const double im = imprecise.suite.runs()[i].commitIpc();
        std::printf("%-9s precise %5.2f  imprecise %5.2f  (%+5.1f%%)\n",
                    kernels[i].workload.c_str(), p, im,
                    100.0 * (im / p - 1.0));
    }
    std::printf("\nexpected: the same saturation shape as Figure 6 on "
                "workloads the paper never saw,\nwith the imprecise "
                "advantage confined to the small-file regime.\n");
}

// --------------------------------------------------------------- ext_mshr

std::vector<GridDef>
extMshrGrids()
{
    std::vector<AxisValue> variants;
    variants.push_back({"lockup", [](CoreConfig &c) {
                            c.cacheKind = CacheKind::Lockup;
                        }});
    for (const std::uint32_t mshrs : {1u, 2u, 4u, 8u, 16u, 0u}) {
        variants.push_back(
            {mshrs == 0 ? "mshr-unlimited"
                        : "mshr" + std::to_string(mshrs),
             [mshrs](CoreConfig &c) {
                 c.dcache.maxOutstandingMisses = mshrs;
             }});
    }
    GridDef grid;
    grid.base = paperConfig(4, 128);
    grid.axes = {widthAxis({4, 8}),
                 variantAxis("cache", std::move(variants))};
    return {grid};
}

void
extMshrPrint(const RunContext &,
             const std::vector<ExperimentResult> &results)
{
    std::size_t k = 0;
    for (const int width : {4, 8}) {
        std::printf("\n--- %d-way issue, DQ=%d, 128 registers ---\n",
                    width, width == 4 ? 32 : 64);
        std::printf("%10s %7s %14s\n", "MSHRs", "cmtIPC",
                    "rejections");

        // The blocking cache as the floor of the design space.
        {
            const SuiteResult &res = results[k++].suite;
            std::printf("%10s %7.2f %14s\n", "(lockup)",
                        res.avgCommitIpc(), "-");
        }
        for (const std::uint32_t mshrs : {1u, 2u, 4u, 8u, 16u, 0u}) {
            const SuiteResult &res = results[k++].suite;
            std::uint64_t rejections = 0;
            for (const auto &r : res.runs())
                rejections += r.dcache.mshrRejections;
            if (mshrs == 0) {
                std::printf("%10s %7.2f %14llu\n", "unlimited",
                            res.avgCommitIpc(),
                            (unsigned long long)rejections);
            } else {
                std::printf("%10u %7.2f %14llu\n", mshrs,
                            res.avgCommitIpc(),
                            (unsigned long long)rejections);
            }
        }
    }
    std::printf("\nexpected: IPC climbs steeply from 1 MSHR and "
                "saturates within a few entries —\nmost of the "
                "paper's 'aggressive non-blocking' benefit comes from "
                "a handful of\noutstanding misses; rejections fall to "
                "zero as the bound rises.\n");
}

// -------------------------------------------------------- ext_writebuffer

std::vector<GridDef>
extWriteBufferGrids()
{
    GridDef grid;
    grid.base = paperConfig(4, 128);
    grid.axes = {writeBufferDrainAxis({8, 4}),
                 writeBufferAxis({1, 2, 4, 8, 16, 0})};
    return {grid};
}

void
extWriteBufferPrint(const RunContext &,
                    const std::vector<ExperimentResult> &results)
{
    std::size_t k = 0;
    for (const Cycle drain : {8, 4}) {
        std::printf("\n--- 4-way, DQ=32, 128 regs, one store drains "
                    "every %llu cycles ---\n",
                    (unsigned long long)drain);
        std::printf("%10s %7s %12s %14s\n", "entries", "cmtIPC",
                    "stall cyc", "p90 live int");
        for (const std::uint32_t entries : {1u, 2u, 4u, 8u, 16u, 0u}) {
            const SuiteResult &res = results[k++].suite;
            std::uint64_t stalls = 0;
            for (const auto &r : res.runs())
                stalls += r.proc.writeBufferStallCycles;
            const auto p90 = res.livePercentile(
                RegClass::Int, LiveLevel::PreciseLive, 0.9);
            if (entries == 0) {
                std::printf("%10s %7.2f %12s %14llu\n",
                            "unlimited", res.avgCommitIpc(), "-",
                            (unsigned long long)p90);
            } else {
                std::printf("%10u %7.2f %12llu %14llu\n", entries,
                            res.avgCommitIpc(),
                            (unsigned long long)stalls,
                            (unsigned long long)p90);
            }
        }
    }
    std::printf("\nexpected: with a fast drain the paper's "
                "assumption is nearly free beyond a few\nentries; "
                "with a slow drain, small buffers stall commit and "
                "keep more registers live.\n");
}

// ------------------------------------------------------------ ext_variance

constexpr int kVarianceSeeds = 5;

std::vector<GridDef>
extVarianceGrids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {widthAxis({4}), regsAxis({2048})};
    return {grid};
}

std::vector<Workload>
extVarianceSuite(const RunContext &ctx)
{
    std::vector<Workload> suite;
    for (const auto &spec : spec92Specs()) {
        for (int seed = 0; seed < kVarianceSeeds; ++seed) {
            suite.push_back(buildWorkload(spec.name, ctx.scale,
                                          std::uint64_t(seed)));
        }
    }
    return suite;
}

struct VarianceSeries
{
    std::vector<double> v;
    void add(double x) { v.push_back(x); }
    double
    mean() const
    {
        double s = 0;
        for (double x : v)
            s += x;
        return s / double(v.size());
    }
    double
    spread() const
    {
        const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
        return *hi - *lo;
    }
};

void
extVariancePrint(const RunContext &,
                 const std::vector<ExperimentResult> &results)
{
    const auto &runs = results[0].suite.runs();
    std::printf("\n4-way, DQ=32, 2048 regs, lockup-free; %d data "
                "seeds per benchmark\n",
                kVarianceSeeds);
    std::printf("%-10s | %6s %7s | %6s %7s | %6s %7s\n", "bench",
                "IPC", "+/-", "miss%", "+/-", "cbr%", "+/-");
    for (std::size_t b = 0; b * kVarianceSeeds < runs.size(); ++b) {
        VarianceSeries ipc, miss, cbr;
        for (int seed = 0; seed < kVarianceSeeds; ++seed) {
            const SimResult &r = runs[b * kVarianceSeeds +
                                      std::size_t(seed)];
            ipc.add(r.commitIpc());
            miss.add(100.0 * r.loadMissRate);
            cbr.add(100.0 * r.mispredictRate());
        }
        std::printf("%-10s | %6.2f %7.2f | %6.1f %7.1f | %6.1f "
                    "%7.1f\n",
                    runs[b * kVarianceSeeds].workload.c_str(),
                    ipc.mean(), ipc.spread() / 2, miss.mean(),
                    miss.spread() / 2, cbr.mean(), cbr.spread() / 2);
    }
    std::printf("\nexpected: spreads well under the kernel-to-paper "
                "differences recorded in\nEXPERIMENTS.md — the "
                "signatures are properties of the kernels, not of one "
                "lucky seed.\n");
}

// ------------------------------------------------------------- ext_bounds

std::vector<GridDef>
extBoundsGrids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {
        variantAxis(
            "sched",
            {{"event", [](CoreConfig &) {}},
             {"scan",
              [](CoreConfig &c) { c.scanScheduler = true; }}}),
        regsAxis(paperRegs())};
    return {grid};
}

void
extBoundsPrint(const RunContext &ctx,
               const std::vector<ExperimentResult> &results)
{
    // Recompute the static oracle for the same nine programs the grid
    // simulated (the suite builder is deterministic in ctx.scale).
    const analysis::MachineLimits limits =
        analysis::MachineLimits::forIssueWidth(4);
    const std::vector<Workload> suite = buildSpec92Suite(ctx.scale);
    std::vector<analysis::BoundsReport> bounds;
    bounds.reserve(suite.size());
    for (const Workload &w : suite)
        bounds.push_back(analysis::computeBounds(w.program, limits));

    const std::vector<int> sweep = paperRegs();
    const std::size_t nregs = sweep.size();
    const char *sched_names[2] = {"event", "scan"};
    int gate_misses = 0;

    for (int v = 0; v < 2; ++v) {
        std::printf("\n--- 4-way, DQ=32, %s scheduler ---\n",
                    sched_names[v]);
        std::printf("%-10s | %6s %6s | %4s %4s | %6s | %8s %5s | "
                    "%4s\n",
                    "bench", "bound", "steady", "mlI", "mlF",
                    "minRegs", "IPC@256", "knee", "ok");
        for (std::size_t b = 0; b < suite.size(); ++b) {
            const analysis::BoundsReport &br = bounds[b];
            const auto ipc_at = [&](std::size_t r) {
                return results[std::size_t(v) * nregs + r]
                    .suite.runs()[b]
                    .commitIpc();
            };
            const double ipc_max = ipc_at(nregs - 1);
            int knee = sweep.back();
            for (std::size_t r = 0; r < nregs; ++r) {
                if (ipc_at(r) >= 0.98 * ipc_max) {
                    knee = sweep[r];
                    break;
                }
            }
            const bool ok = ipc_max <= br.ipcBound * 1.05 + 0.05;
            if (!ok)
                ++gate_misses;
            std::printf("%-10s | %6.2f %6.2f | %4d %4d | %6d | "
                        "%8.2f %5d | %4s\n",
                        br.program.c_str(), br.ipcBound,
                        br.steadyIpcBound, br.maxLive[0],
                        br.maxLive[1],
                        std::max(br.minRegsEstimate[0],
                                 br.minRegsEstimate[1]),
                        ipc_max, knee, ok ? "yes" : "NO");
        }
    }
    if (gate_misses > 0) {
        std::printf("\nWARNING: %d kernel(s) exceeded their static "
                    "IPC bound — simulator bug.\n",
                    gate_misses);
    }
    std::printf("\nbound  = whole-program static IPC upper bound; "
                "steady = innermost-loop\nsteady-state bound; mlI/mlF "
                "= static MaxLive per class; minRegs = Little's-law\n"
                "register estimate; knee = smallest size within 2%% "
                "of the 256-register IPC.\nexpected: every simulated "
                "IPC respects its bound in both schedulers, and "
                "the\nregister knee lands near the paper's \"~80-96 "
                "registers suffice\" conclusion —\nthe static "
                "estimate brackets it from below.\n");
}

// --------------------------------------------------------- ext_predictors

std::vector<GridDef>
extPredictorsGrids()
{
    GridDef grid;
    grid.base = paperConfig(4, 2048);
    grid.axes = {
        predictorAxis(predictorSpecs()),
        resultBusAxis({0, 2}),
        variantAxis(
            "sched",
            {{"event", [](CoreConfig &) {}},
             {"scan",
              [](CoreConfig &c) { c.scanScheduler = true; }}}),
        regsAxis(paperRegs())};
    return {grid};
}

void
extPredictorsPrint(const RunContext &,
                   const std::vector<ExperimentResult> &results)
{
    const std::vector<int> sweep = paperRegs();
    const std::size_t nregs = sweep.size();
    const std::vector<std::string> &preds = predictorSpecs();
    constexpr int kBuses[2] = {0, 2};
    const char *sched_names[2] = {"event", "scan"};

    // Row-major over (predictor, buses, sched, regs) as declared.
    const auto index = [&](std::size_t p, int b, int v,
                           std::size_t r) {
        return ((p * 2 + std::size_t(b)) * 2 + std::size_t(v)) *
                   nregs +
               r;
    };
    // Smallest file within 2% of the 256-register IPC — the same
    // knee definition ext_bounds uses, so the register-pressure
    // conclusions line up across experiments.
    const auto knee_of = [&](std::size_t p, int b, int v) {
        const double ipc_max =
            results[index(p, b, v, nregs - 1)].suite.avgCommitIpc();
        for (std::size_t r = 0; r < nregs; ++r) {
            if (results[index(p, b, v, r)].suite.avgCommitIpc() >=
                0.98 * ipc_max) {
                return sweep[r];
            }
        }
        return sweep.back();
    };

    int disagreements = 0;
    std::printf("\n4-way, DQ=32, lockup-free; registers swept "
                "%d..%d\n",
                sweep.front(), sweep.back());
    std::printf("%-10s %6s %6s | %8s %9s %11s %5s\n", "predictor",
                "buses", "sched", "IPC@256", "mispred%",
                "result_bus%", "knee");
    for (std::size_t p = 0; p < preds.size(); ++p) {
        for (int b = 0; b < 2; ++b) {
            for (int v = 0; v < 2; ++v) {
                const ExperimentResult &top =
                    results[index(p, b, v, nregs - 1)];
                double mispred = 0.0;
                for (const auto &r : top.suite.runs())
                    mispred += r.mispredictRate();
                mispred /= double(top.suite.runs().size());
                std::printf(
                    "%-10s %6s %6s | %8.2f %8.1f%% %10.2f%% %5d\n",
                    preds[p].c_str(),
                    kBuses[b] == 0
                        ? "inf"
                        : std::to_string(kBuses[b]).c_str(),
                    sched_names[v], top.suite.avgCommitIpc(),
                    100.0 * mispred,
                    top.suite.avgCausePct(CycleCause::ResultBus),
                    knee_of(p, b, v));
                if (v == 1 &&
                    knee_of(p, b, 0) != knee_of(p, b, 1)) {
                    ++disagreements;
                }
            }
        }
    }

    std::printf("\nregister-pressure knee vs %s/unlimited buses "
                "(%d regs):\n",
                preds[0].c_str(), knee_of(0, 0, 0));
    const int knee0 = knee_of(0, 0, 0);
    for (std::size_t p = 0; p < preds.size(); ++p) {
        for (int b = 0; b < 2; ++b) {
            const int knee = knee_of(p, b, 0);
            std::printf("  %-10s %9s: %3d regs (%+d)\n",
                        preds[p].c_str(),
                        kBuses[b] == 0 ? "unlimited" : "2 buses",
                        knee, knee - knee0);
        }
    }
    if (disagreements > 0) {
        std::printf("\nWARNING: event and scan schedulers disagreed "
                    "on %d knee(s) — scheduler bug.\n",
                    disagreements);
    }
    std::printf("\nexpected: both schedulers agree on every point; "
                "predictor choice moves mispredict%%\nand IPC but "
                "barely moves the knee — register pressure is set by "
                "in-flight lifetimes,\nnot prediction accuracy — "
                "while a 2-bus writeback constraint adds result_bus "
                "stalls\nand lowers the IPC ceiling, pulling the "
                "2%%-of-max knee one sweep step left.\n");
}

// ------------------------------------------------------ ext_critical_paths

int
runCriticalPaths(const RunContext &)
{
    std::printf("==========================================================="
                "===\n"
                "Critical-path structures vs the register file "
                "(paper Section 3.4)\n"
                "============================================================"
                "==\n");
    std::printf("\n%5s %5s %5s | %8s %8s %8s | %7s %7s\n", "width",
                "DQ", "regs", "RF(ns)", "DQ(ns)", "REN(ns)", "DQ/RF",
                "REN/RF");
    for (const int width : {4, 8}) {
        const int dq = width == 4 ? 32 : 64;
        for (const int regs : {48, 80, 128, 256}) {
            const double rf =
                regFileTiming(intRegFileGeometry(width, regs)).cycleNs;
            const double dqt =
                dispatchQueueTiming({dq, width, 8}).cycleNs;
            const double ren =
                renameTiming({regs, width, 32}).cycleNs;
            std::printf("%5d %5d %5d | %8.3f %8.3f %8.3f | %7.2f "
                        "%7.2f\n",
                        width, dq, regs, rf, dqt, ren, dqt / rf,
                        ren / rf);
        }
    }
    std::printf("\nexpected: going from the 4-way to the 8-way design "
                "point slows all three\nstructures together (ratios "
                "stay in a narrow band), supporting the paper's\n"
                "machine-cycle-time scaling assumption; the dispatch "
                "queue's wakeup wire grows\nwith its entry count just "
                "as the register file's bitline grows with "
                "registers.\n");
    return 0;
}

// ------------------------------------------------------------------ micro

int
microStub(const RunContext &)
{
    std::fprintf(stderr,
                 "micro is the google-benchmark suite; run it via "
                 "the drsim_bench driver or the bench/micro "
                 "binary\n");
    return 2;
}

} // namespace

std::vector<ExperimentDef>
makeExperimentDefs()
{
    return {
        {"table1",
         "Table 1: dynamic statistics per benchmark "
         "(paper: Farkas/Jouppi/Chow HPCA-2)",
         "per-benchmark dynamic statistics, 4/8-way, 2048 registers",
         table1Grids, nullptr, table1Print, true, nullptr},
        {"fig3",
         "Figure 3: IPC and 90th-pct live registers vs "
         "dispatch-queue size",
         "IPC and 90th-pct live registers vs dispatch-queue size",
         fig3Grids, nullptr, fig3Print, false, nullptr},
        {"fig4",
         "Figure 4: average register-usage coverage, precise vs "
         "imprecise",
         "register-usage run-time coverage, precise vs imprecise",
         fig4Grids, nullptr, fig4Print, false, nullptr},
        {"fig5",
         "Figure 5: tomcatv fp-register coverage, precise vs "
         "imprecise (8-way)",
         "tomcatv fp-register coverage, precise vs imprecise",
         fig5Grids, fig5Suite, fig5Print, false, nullptr},
        {"fig6",
         "Figure 6: commit IPC and register-pressure vs register "
         "file size",
         "commit IPC and register pressure vs register-file size",
         fig6Grids, nullptr, fig6Print, true, nullptr},
        {"fig7",
         "Figure 7: commit IPC for three cache organizations vs "
         "registers",
         "commit IPC for perfect/lockup-free/lockup caches vs "
         "registers",
         fig7Grids, nullptr, fig7Print, true, nullptr},
        {"fig8",
         "Figure 8: compress integer-register coverage for three "
         "caches",
         "compress integer-register coverage under the three caches",
         fig8Grids, fig8Suite, fig8Print, true, nullptr},
        {"fig10",
         "Figure 10: register file timing and estimated machine "
         "BIPS",
         "register-file cycle times and estimated machine BIPS",
         fig10Grids, nullptr, fig10Print, false, nullptr},
        {"ablations",
         "Ablations: machine-model design choices "
         "(paper Sections 2-3)",
         "machine-model design-choice ablations + register lifetimes",
         ablationsGrids, nullptr, ablationsPrint, true, nullptr},
        {"ext_classic",
         "Extension: register sizing on the classic-kernel family",
         "register sizing cross-checked on the classic kernels",
         extClassicGrids, extClassicSuite, extClassicPrint, false,
         nullptr},
        {"ext_mshr",
         "Extension: lockup-free cache with bounded MSHRs",
         "bounded-MSHR sweep from the blocking cache to the paper's",
         extMshrGrids, nullptr, extMshrPrint, false, nullptr},
        {"ext_writebuffer",
         "Extension: finite write buffer (the paper assumes an "
         "infinite, free one)",
         "finite write-buffer sweep vs the paper's free-store "
         "assumption",
         extWriteBufferGrids, nullptr, extWriteBufferPrint, false,
         nullptr},
        {"ext_variance",
         "Extension: run-to-run variation over data seeds",
         "Table-1 signature stability over data seeds",
         extVarianceGrids, extVarianceSuite, extVariancePrint, false,
         nullptr},
        {"ext_bounds",
         "Extension: static dataflow bounds vs simulated IPC and "
         "register knee",
         "static IPC/MaxLive oracle cross-checked against simulation "
         "in both schedulers",
         extBoundsGrids, nullptr, extBoundsPrint, true, nullptr},
        {"ext_predictors",
         "Extension: predictor backends and result-bus contention vs "
         "register pressure",
         "predictor/result-bus sweep on the fig6/fig7 register "
         "apparatus, both schedulers",
         extPredictorsGrids, nullptr, extPredictorsPrint, true,
         nullptr},
        {"ext_critical_paths", nullptr,
         "dispatch-queue/rename/register-file cycle-time scaling "
         "check",
         nullptr, nullptr, nullptr, false, runCriticalPaths},
        {"simspeed", nullptr,
         "tracked simulator-speed benchmark (scan vs event "
         "scheduler)",
         nullptr, nullptr, nullptr, false, runSimspeed},
        {"sampling_validate", nullptr,
         "sampled-mode accuracy check: 95% CI vs full-detail IPC "
         "on every workload",
         nullptr, nullptr, nullptr, false, runSamplingValidate},
        {"micro", nullptr,
         "google-benchmark microbenchmarks of simulator components",
         nullptr, nullptr, nullptr, false, microStub},
    };
}

} // namespace detail
} // namespace exp
} // namespace drsim
