/**
 * @file
 * The tracked simulator-speed benchmark (registry name "simspeed"):
 * simulated MIPS (committed instructions per wall-clock second) for
 * every Table-1 workload, under both scheduler implementations — the
 * retained scan-based reference path (config.scanScheduler) and the
 * event-driven wakeup path that is the default.  Writes
 * BENCH_simspeed.json ("simspeed-v1", see docs/RESULTS_SCHEMA.md);
 * the committed baseline of that file is what CI's regression gate
 * compares against.
 *
 * Extra knobs on top of the usual harness environment variables:
 *   DRSIM_BENCH_REPS  timing repetitions per (workload, scheduler)
 *                     leg; best-of-reps is recorded (default 3)
 *   DRSIM_SAMPLE_BENCH  sampling spec
 *                     (INTERVAL[:WINDOW[:WARMUP[:WARMFF]]], see
 *                     parseSamplingSpec) for the sampled-mode
 *                     comparison leg; default "40000:1000:4000".
 *                     Set to "off" to skip the sampled block.
 *   DRSIM_PSAMPLE_BENCH  sampling spec for the checkpoint-warm
 *                     parallel-sampled leg; default
 *                     "400000:500:500:1000" — sparse windows with
 *                     bounded functional warming, the cost regime of
 *                     a 96-point register-file sweep, where the
 *                     functional fast-forward dominates each sweep
 *                     point and the checkpoint library can amortize
 *                     it.  Set to "off" to skip the block.
 *   DRSIM_PSAMPLE_SCALE  DRSIM_SCALE the parallel-sampled leg builds
 *                     its own suite at (default 60; sampling's
 *                     benchmark regime is the long workload).
 *   DRSIM_E2E_BASELINE_FIG7 / DRSIM_E2E_CURRENT_FIG7
 *                     paths to fig7 binaries built at the
 *                     pre-event-core revision and at this revision;
 *                     when both are set the benchmark also times the
 *                     full fig7 sweep end to end under each and
 *                     records the comparison in the JSON's
 *                     "end_to_end" block
 *   DRSIM_E2E_BASELINE_REV  git revision of the baseline binary,
 *                     recorded as provenance (default "unknown")
 *   DRSIM_E2E_SCALE   DRSIM_SCALE for the two sweeps (default 5)
 *
 * Both legs must produce bit-identical statistics (that is the whole
 * point of the event-driven rework); the benchmark spot-checks
 * committed/cycles/executed and the full stall-cause vector and
 * aborts on any difference, so a speed number can never be reported
 * for a scheduler that diverged.  The exhaustive equality check lives
 * in tests/test_event_core.cc.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "exp/experiments.hh"

namespace drsim {
namespace exp {
namespace detail {

namespace {

double
timedRun(const CoreConfig &cfg, const Workload &w, int reps,
         SimResult &out)
{
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        SimResult r = simulate(cfg, w);
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || s < best) {
            best = s;
            out = std::move(r);
        }
    }
    return best;
}

void
checkIdentical(const SimResult &scan, const SimResult &event)
{
    bool same = scan.proc.committed == event.proc.committed &&
                scan.proc.cycles == event.proc.cycles &&
                scan.proc.executed == event.proc.executed;
    for (int c = 0; c < kNumCycleCauses; ++c)
        same = same &&
               scan.proc.causeCycles[c] == event.proc.causeCycles[c];
    if (!same)
        fatal("scheduler statistics diverged on workload '",
              scan.workload, "' — refusing to report a speedup");
}

/**
 * Time one full fig7 sweep (single job, all output discarded) and
 * return its wall-clock seconds, or a negative value if the binary
 * exited nonzero.  The sweep's result files go to a scratch directory
 * so they cannot clobber anything the caller cares about.
 */
double
timedSweep(const std::string &fig7_bin, int sweep_scale,
           const std::string &scratch_dir)
{
    const std::string cmd = "mkdir -p '" + scratch_dir +
                            "' && DRSIM_SCALE=" +
                            std::to_string(sweep_scale) +
                            " DRSIM_JOBS=1 DRSIM_RESULTS_DIR='" +
                            scratch_dir + "' '" + fig7_bin +
                            "' > /dev/null";
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = std::system(cmd.c_str());
    const auto t1 = std::chrono::steady_clock::now();
    if (rc != 0)
        return -1.0;
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Run the optional end-to-end sweep comparison (see file comment). */
void
measureEndToEnd(SpeedRunInfo &info, const std::string &results_dir)
{
    const char *base_bin = std::getenv("DRSIM_E2E_BASELINE_FIG7");
    const char *cur_bin = std::getenv("DRSIM_E2E_CURRENT_FIG7");
    if (base_bin == nullptr || cur_bin == nullptr)
        return;
    const char *rev = std::getenv("DRSIM_E2E_BASELINE_REV");
    const int sweep_scale = int(envU64("DRSIM_E2E_SCALE", 5));
    const std::string scratch = results_dir + "/e2e_scratch";

    std::printf("\nend-to-end fig7 sweep (scale %d, single job):\n",
                sweep_scale);
    const double base_s = timedSweep(base_bin, sweep_scale, scratch);
    if (base_s < 0.0) {
        std::fprintf(stderr,
                     "simspeed: baseline fig7 '%s' failed; skipping "
                     "end-to-end block\n", base_bin);
        return;
    }
    const double cur_s = timedSweep(cur_bin, sweep_scale, scratch);
    if (cur_s < 0.0) {
        std::fprintf(stderr,
                     "simspeed: current fig7 '%s' failed; skipping "
                     "end-to-end block\n", cur_bin);
        return;
    }
    info.endToEnd.present = true;
    info.endToEnd.baselineRev = rev != nullptr ? rev : "unknown";
    info.endToEnd.sweepScale = sweep_scale;
    info.endToEnd.baselineSeconds = base_s;
    info.endToEnd.currentSeconds = cur_s;
    std::printf("  baseline (%s): %8.3fs\n",
                info.endToEnd.baselineRev.c_str(), base_s);
    std::printf("  current:        %8.3fs   speedup %.2fx\n", cur_s,
                base_s / cur_s);
}

/**
 * The sampled-mode comparison: rerun every workload under the same
 * event-core configuration with SMARTS-style sampling enabled and
 * record wall clock, the IPC estimate, and whether its 95% CI covers
 * the full-detail IPC.  The full-detail leg's timing and result are
 * reused from the scan-vs-event measurement (@p full_seconds,
 * @p full_results).
 */
void
measureSampled(SpeedRunInfo &info, const CoreConfig &event_cfg,
               const std::vector<Workload> &suite, int reps,
               const std::vector<double> &full_seconds,
               const std::vector<SimResult> &full_results)
{
    const char *env = std::getenv("DRSIM_SAMPLE_BENCH");
    const std::string spec =
        env != nullptr && env[0] != '\0' ? env : "40000:1000:4000";
    if (spec == "off")
        return;

    CoreConfig sampled_cfg = event_cfg;
    sampled_cfg.sampling = parseSamplingSpec(spec);

    // This leg is the tracked serial baseline: checkpoint library off
    // (every rep pays the full functional fast-forward) and windows
    // serial — the PR 7 sampling cost model.  The checkpoint-warm
    // parallel leg is measured against it below.
    SamplingExecPolicy serial;
    serial.useCkptLibrary = false;
    serial.windowJobs = 1;
    setSamplingExecPolicy(serial);

    std::printf("\nsampled mode, serial baseline (interval %llu, "
                "window %llu, warmup %llu), best of %d rep(s):\n",
                (unsigned long long)sampled_cfg.sampling.interval,
                (unsigned long long)sampled_cfg.sampling.window,
                (unsigned long long)sampled_cfg.sampling.warmup, reps);
    std::printf("%-10s %10s %10s %8s %9s %9s %7s %6s\n", "workload",
                "full s", "sampled s", "speedup", "full IPC",
                "estimate", "ci95", "cover");

    SampledSpeed sp;
    sp.present = true;
    sp.interval = sampled_cfg.sampling.interval;
    sp.window = sampled_cfg.sampling.window;
    sp.warmup = sampled_cfg.sampling.warmup;
    sp.warmff = sampled_cfg.sampling.warmff;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        SimResult res;
        SampledSpeedSample s;
        s.workload = suite[i].spec->name;
        s.fullSeconds = full_seconds[i];
        s.sampledSeconds = timedRun(sampled_cfg, suite[i], reps, res);
        s.committed = full_results[i].proc.committed;
        s.fullIpc = full_results[i].commitIpc();
        s.ipcEstimate = res.sampled.ipcEstimate;
        s.ci95 = res.sampled.ci95;
        s.windows = res.sampled.windows;
        s.ciCovers =
            std::abs(s.ipcEstimate - s.fullIpc) <= s.ci95;
        std::printf("%-10s %9.3fs %9.3fs %7.2fx %9.3f %9.3f %7.3f "
                    "%6s\n",
                    s.workload.c_str(), s.fullSeconds,
                    s.sampledSeconds,
                    s.fullSeconds / s.sampledSeconds, s.fullIpc,
                    s.ipcEstimate, s.ci95,
                    s.ciCovers ? "yes" : "NO");
        if (!s.ciCovers) {
            std::fprintf(stderr,
                         "simspeed: sampled CI on '%s' does not "
                         "cover the full-run IPC\n",
                         s.workload.c_str());
        }
        sp.samples.push_back(std::move(s));
    }

    double full_s = 0.0;
    double sampled_s = 0.0;
    for (const SampledSpeedSample &s : sp.samples) {
        full_s += s.fullSeconds;
        sampled_s += s.sampledSeconds;
    }
    std::printf("%-10s %9.3fs %9.3fs %7.2fx\n", "aggregate", full_s,
                sampled_s, full_s / sampled_s);
    info.sampled = std::move(sp);
    setSamplingExecPolicy(SamplingExecPolicy{});
}

/** Abort unless two sampled runs produced identical statistics. */
void
checkSampledIdentical(const SimResult &a, const SimResult &b)
{
    bool same = a.proc.committed == b.proc.committed &&
                a.proc.cycles == b.proc.cycles &&
                a.proc.executed == b.proc.executed &&
                a.sampled.windows == b.sampled.windows &&
                a.sampled.fastForwarded == b.sampled.fastForwarded &&
                a.sampled.warmupInsts == b.sampled.warmupInsts &&
                a.sampled.measuredInsts == b.sampled.measuredInsts &&
                a.sampled.measuredCycles == b.sampled.measuredCycles &&
                a.sampled.ipcEstimate == b.sampled.ipcEstimate &&
                a.sampled.ci95 == b.sampled.ci95;
    for (int c = 0; c < kNumCycleCauses; ++c)
        same = same && a.proc.causeCycles[c] == b.proc.causeCycles[c];
    if (!same)
        fatal("checkpoint-warm parallel sampled statistics diverged "
              "from the serial baseline on workload '", a.workload,
              "' — refusing to report a speedup");
}

/**
 * The checkpoint-library leg: the sampled sweep cost at a
 * sweep-realistic spec (sparse windows, bounded functional warming —
 * the regime of a 96-point register-file sweep, where the functional
 * fast-forward dominates each point), first with the library disabled
 * and windows serial (every run pays the full fast-forward — the PR 7
 * cost model), then checkpoint-warm with the measured windows fanned
 * out across the thread pool.  Statistics must match exactly.
 *
 * The leg builds its own suite at DRSIM_PSAMPLE_SCALE (default 60):
 * sampling amortizes the functional fast-forward, so its benchmark
 * regime is the long workload.  At the tiny top-level bench scale the
 * detailed windows dominate the run and the ratio degenerates toward
 * 1 no matter how well the library amortizes the fast-forward.
 */
void
measureParallelSampled(SpeedRunInfo &info,
                       const CoreConfig &event_cfg, int reps)
{
    const char *env = std::getenv("DRSIM_PSAMPLE_BENCH");
    const std::string spec =
        env != nullptr && env[0] != '\0' ? env : "400000:500:500:1000";
    if (spec == "off")
        return;
    const int scale = int(envU64("DRSIM_PSAMPLE_SCALE", 60));
    const std::vector<Workload> suite = buildSpec92Suite(scale);

    CoreConfig sampled_cfg = event_cfg;
    sampled_cfg.sampling = parseSamplingSpec(spec);

    std::printf("\ncheckpoint-warm parallel sampled vs serial "
                "baseline (scale %d, interval %llu, window %llu, "
                "warmup %llu, warmff %llu), best of %d rep(s):\n",
                scale,
                (unsigned long long)sampled_cfg.sampling.interval,
                (unsigned long long)sampled_cfg.sampling.window,
                (unsigned long long)sampled_cfg.sampling.warmup,
                (unsigned long long)sampled_cfg.sampling.warmff,
                reps);
    std::printf("%-10s %10s %10s %8s %9s %9s %5s\n", "workload",
                "serial s", "warm s", "speedup", "ckpt acq",
                "windows s", "jobs");

    ParallelSampled ps;
    ps.present = true;
    ps.scale = scale;
    ps.interval = sampled_cfg.sampling.interval;
    ps.window = sampled_cfg.sampling.window;
    ps.warmup = sampled_cfg.sampling.warmup;
    ps.warmff = sampled_cfg.sampling.warmff;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        // Serial baseline: library off, so every rep regenerates the
        // full functional fast-forward, and windows run in order.
        SamplingExecPolicy serial;
        serial.useCkptLibrary = false;
        serial.windowJobs = 1;
        setSamplingExecPolicy(serial);
        SimResult base_res;
        ParallelSampledSample s;
        s.workload = suite[i].spec->name;
        s.baseline.total =
            timedRun(sampled_cfg, suite[i], reps, base_res);
        s.baseline.acquire = base_res.profile.acquireSeconds;
        s.baseline.warmup = base_res.profile.warmupSeconds;
        s.baseline.window = base_res.profile.windowSeconds;

        // Checkpoint-warm leg.  The priming run (untimed) generates
        // the workload's checkpoint plan and publishes it in the
        // library's memory tier — the state every later sweep point
        // of this workload sees.
        setSamplingExecPolicy(SamplingExecPolicy{});
        SimResult primed = simulate(sampled_cfg, suite[i]);
        checkSampledIdentical(base_res, primed);

        SimResult res;
        s.warm.total = timedRun(sampled_cfg, suite[i], reps, res);
        checkSampledIdentical(base_res, res);
        s.warm.acquire = res.profile.acquireSeconds;
        s.warm.warmup = res.profile.warmupSeconds;
        s.warm.window = res.profile.windowSeconds;
        s.ckptHits = res.profile.ckptHits;
        s.ckptGenerated = res.profile.ckptGenerated;
        s.windowJobs = res.profile.windowJobs;

        std::printf("%-10s %9.4fs %9.4fs %7.2fx %8.4fs %8.4fs %5d\n",
                    s.workload.c_str(), s.baseline.total,
                    s.warm.total, s.baseline.total / s.warm.total,
                    s.warm.acquire, s.warm.window, s.windowJobs);
        ps.samples.push_back(std::move(s));
    }

    double base_s = 0.0;
    double warm_s = 0.0;
    for (const ParallelSampledSample &s : ps.samples) {
        base_s += s.baseline.total;
        warm_s += s.warm.total;
    }
    std::printf("%-10s %9.4fs %9.4fs %7.2fx\n", "aggregate", base_s,
                warm_s, base_s / warm_s);
    info.parallelSampled = std::move(ps);
    setSamplingExecPolicy(SamplingExecPolicy{});
}

} // namespace

int
runSimspeed(const RunContext &ctx)
{
    banner("simspeed: simulated MIPS, scan vs event-driven scheduler");
    const int scale = ctx.scale;
    const std::uint64_t cap = ctx.maxCommitted;
    const int reps = int(envU64("DRSIM_BENCH_REPS", 3));
    const auto suite = buildSpec92Suite(scale);

    // The paper's cost-effective 4-wide configuration at a register
    // count in the knee of the Figure-7 curves: enough stalls that
    // skip-ahead matters, enough issue traffic that the wakeup lists
    // matter.
    CoreConfig event_cfg = paperConfig(4, 96);
    event_cfg.maxCommitted = cap;
    CoreConfig scan_cfg = event_cfg;
    scan_cfg.scanScheduler = true;

    std::printf("\nscale %d, cap %llu, best of %d rep(s) per leg\n\n",
                scale, (unsigned long long)cap, reps);
    std::printf("%-10s %12s %10s %10s %10s %10s %8s\n", "workload",
                "committed", "scan s", "event s", "scan MIPS",
                "event MIPS", "speedup");

    std::vector<SpeedSample> samples;
    std::vector<double> event_seconds;
    std::vector<SimResult> event_results;
    for (const Workload &w : suite) {
        SimResult scan_res, event_res;
        SpeedSample s;
        s.workload = w.spec->name;
        s.scanSeconds = timedRun(scan_cfg, w, reps, scan_res);
        s.eventSeconds = timedRun(event_cfg, w, reps, event_res);
        checkIdentical(scan_res, event_res);
        s.committed = event_res.proc.committed;
        s.cycles = std::uint64_t(event_res.proc.cycles);
        event_seconds.push_back(s.eventSeconds);
        event_results.push_back(std::move(event_res));

        const double scan_mips =
            double(s.committed) / s.scanSeconds / 1e6;
        const double event_mips =
            double(s.committed) / s.eventSeconds / 1e6;
        std::printf("%-10s %12llu %9.3fs %9.3fs %10.2f %10.2f %7.2fx\n",
                    s.workload.c_str(),
                    (unsigned long long)s.committed, s.scanSeconds,
                    s.eventSeconds, scan_mips, event_mips,
                    s.scanSeconds / s.eventSeconds);
        samples.push_back(std::move(s));
    }

    std::uint64_t committed = 0;
    double scan_s = 0.0;
    double event_s = 0.0;
    for (const SpeedSample &s : samples) {
        committed += s.committed;
        scan_s += s.scanSeconds;
        event_s += s.eventSeconds;
    }
    std::printf("%-10s %12llu %9.3fs %9.3fs %10.2f %10.2f %7.2fx\n",
                "aggregate", (unsigned long long)committed, scan_s,
                event_s, double(committed) / scan_s / 1e6,
                double(committed) / event_s / 1e6, scan_s / event_s);

    SpeedRunInfo info;
    info.scale = scale;
    info.maxCommitted = cap;
    info.reps = reps;
    info.issueWidth = event_cfg.issueWidth;
    info.numPhysRegs = event_cfg.numPhysRegs;
    measureSampled(info, event_cfg, suite, reps, event_seconds,
                   event_results);
    measureParallelSampled(info, event_cfg, reps);
    measureEndToEnd(info, ctx.resultsDir);
    const std::string path = ctx.resultsDir + "/BENCH_simspeed.json";
    try {
        writeSimspeedFile(path, info, samples);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "simspeed: %s\n", e.what());
        return 1;
    }
    std::printf("\n[simspeed] wrote JSON results to %s\n", path.c_str());
    return 0;
}

int
runSamplingValidate(const RunContext &ctx)
{
    banner("sampling_validate: sampled 95% CI vs full-detail IPC");
    const auto suite = buildSpec92Suite(ctx.scale);

    // The same cost-effective 4-wide fig7 center point the simspeed
    // benchmark tracks: every acceptance claim about sampled-mode
    // accuracy refers to this configuration.
    CoreConfig full_cfg = paperConfig(4, 96);
    full_cfg.maxCommitted = ctx.maxCommitted;
    CoreConfig sampled_cfg = full_cfg;
    sampled_cfg.sampling = ctx.sampling.enabled()
                               ? ctx.sampling
                               : parseSamplingSpec("40000:1000:4000");

    std::printf("\nscale %d, interval %llu, window %llu, warmup "
                "%llu\n\n",
                ctx.scale,
                (unsigned long long)sampled_cfg.sampling.interval,
                (unsigned long long)sampled_cfg.sampling.window,
                (unsigned long long)sampled_cfg.sampling.warmup);
    std::printf("%-10s %9s %9s %8s %8s %6s\n", "workload", "full IPC",
                "estimate", "ci95", "windows", "cover");

    int failures = 0;
    for (const Workload &w : suite) {
        const SimResult full = simulate(full_cfg, w);
        const SimResult samp = simulate(sampled_cfg, w);
        const double ipc = full.commitIpc();
        const bool cover =
            std::abs(samp.sampled.ipcEstimate - ipc) <=
            samp.sampled.ci95;
        std::printf("%-10s %9.4f %9.4f %8.4f %8llu %6s\n",
                    w.spec->name.c_str(), ipc,
                    samp.sampled.ipcEstimate, samp.sampled.ci95,
                    (unsigned long long)samp.sampled.windows,
                    cover ? "yes" : "NO");
        if (!cover)
            ++failures;
    }
    if (failures != 0) {
        std::fprintf(stderr,
                     "sampling_validate: %d workload(s) whose "
                     "sampled CI does not cover the full-run IPC\n",
                     failures);
        return 1;
    }
    std::printf("\nevery sampled 95%% CI covers its full-detail "
                "IPC\n");
    return 0;
}

} // namespace detail
} // namespace exp
} // namespace drsim
