#include "exp/spec_file.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/config_check.hh"
#include "exp/registry.hh"

namespace drsim {
namespace exp {

namespace {

const char *const kStringAxes[] = {"model", "cache", "predictor"};
const char *const kNumberAxes[] = {"width", "dq", "regs", "mshrs",
                                   "write_buffer",
                                   "write_buffer_drain",
                                   "result_buses"};

bool
isStringAxis(const std::string &key)
{
    return std::find(std::begin(kStringAxes), std::end(kStringAxes),
                     key) != std::end(kStringAxes);
}

bool
isNumberAxis(const std::string &key)
{
    return std::find(std::begin(kNumberAxes), std::end(kNumberAxes),
                     key) != std::end(kNumberAxes);
}

ExceptionModel
modelFromName(const std::string &name)
{
    if (name == "precise")
        return ExceptionModel::Precise;
    if (name == "imprecise")
        return ExceptionModel::Imprecise;
    fatal("sweep spec: unknown exception model '", name,
          "' (want \"precise\" or \"imprecise\")");
}

CacheKind
cacheFromName(const std::string &name)
{
    if (name == "perfect")
        return CacheKind::Perfect;
    if (name == "lockup-free")
        return CacheKind::LockupFree;
    if (name == "lockup")
        return CacheKind::Lockup;
    fatal("sweep spec: unknown cache kind '", name,
          "' (want \"perfect\", \"lockup-free\", or \"lockup\")");
}

std::vector<int>
toInts(const std::vector<std::uint64_t> &nums)
{
    std::vector<int> out;
    for (const std::uint64_t v : nums)
        out.push_back(int(v));
    return out;
}

std::vector<std::uint32_t>
toU32s(const std::vector<std::uint64_t> &nums)
{
    std::vector<std::uint32_t> out;
    for (const std::uint64_t v : nums)
        out.push_back(std::uint32_t(v));
    return out;
}

} // namespace

SweepSpec
parseSweepSpec(const std::string &text)
{
    const json::Value doc = json::parse(text);
    if (!doc.isObject())
        fatal("sweep spec: top-level value must be an object");

    SweepSpec spec;
    spec.name = doc.at("name").asString();
    if (spec.name.empty())
        fatal("sweep spec: \"name\" must be non-empty");
    if (const json::Value *v = doc.find("description"))
        spec.description = v->asString();
    if (const json::Value *v = doc.find("suite"))
        spec.suite = v->asString();
    if (spec.suite != "spec92" && spec.suite != "classic") {
        fatal("sweep spec: unknown suite '", spec.suite,
              "' (want \"spec92\" or \"classic\")");
    }
    if (const json::Value *v = doc.find("export"))
        spec.exportResults = v->asBool();

    const json::Value &axes = doc.at("axes");
    if (!axes.isObject())
        fatal("sweep spec: \"axes\" must be an object");
    for (const auto &[key, value] : axes.members()) {
        SweepSpec::AxisDecl decl;
        decl.key = key;
        if (!value.isArray() || value.items().empty()) {
            fatal("sweep spec: axis '", key,
                  "' must be a non-empty array");
        }
        if (isStringAxis(key)) {
            for (const json::Value &item : value.items())
                decl.strs.push_back(item.asString());
        } else if (isNumberAxis(key)) {
            for (const json::Value &item : value.items())
                decl.nums.push_back(item.asU64());
        } else {
            fatal("sweep spec: unknown axis '", key, "'");
        }
        spec.axes.push_back(std::move(decl));
    }
    if (spec.axes.empty())
        fatal("sweep spec: \"axes\" must declare at least one axis");
    return spec;
}

std::string
sweepSpecJson(const SweepSpec &spec)
{
    std::string out = "{\n";
    out += "  \"name\": \"" + json::escape(spec.name) + "\",\n";
    out += "  \"description\": \"" + json::escape(spec.description) +
           "\",\n";
    out += "  \"suite\": \"" + json::escape(spec.suite) + "\",\n";
    out += std::string("  \"export\": ") +
           (spec.exportResults ? "true" : "false") + ",\n";
    out += "  \"axes\": {\n";
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        const SweepSpec::AxisDecl &decl = spec.axes[a];
        out += "    \"" + json::escape(decl.key) + "\": [";
        if (decl.strs.empty()) {
            for (std::size_t i = 0; i < decl.nums.size(); ++i) {
                if (i > 0)
                    out += ", ";
                out += std::to_string(decl.nums[i]);
            }
        } else {
            for (std::size_t i = 0; i < decl.strs.size(); ++i) {
                if (i > 0)
                    out += ", ";
                out += "\"" + json::escape(decl.strs[i]) + "\"";
            }
        }
        out += a + 1 < spec.axes.size() ? "],\n" : "]\n";
    }
    out += "  }\n}\n";
    return out;
}

GridDef
toGrid(const SweepSpec &spec)
{
    // Paper baseline for every knob an axis does not sweep: the
    // cost-effective 4-way machine with a comfortable register file.
    GridDef grid;
    grid.base = paperConfig(4, 128);

    for (const SweepSpec::AxisDecl &decl : spec.axes) {
        if (decl.key == "width") {
            grid.axes.push_back(widthAxis(toInts(decl.nums)));
        } else if (decl.key == "dq") {
            grid.axes.push_back(dqAxis(toInts(decl.nums)));
        } else if (decl.key == "regs") {
            grid.axes.push_back(regsAxis(toInts(decl.nums)));
        } else if (decl.key == "model") {
            std::vector<ExceptionModel> models;
            for (const std::string &s : decl.strs)
                models.push_back(modelFromName(s));
            grid.axes.push_back(modelAxis(models));
        } else if (decl.key == "cache") {
            std::vector<CacheKind> kinds;
            for (const std::string &s : decl.strs)
                kinds.push_back(cacheFromName(s));
            grid.axes.push_back(cacheAxis(kinds));
        } else if (decl.key == "mshrs") {
            grid.axes.push_back(mshrAxis(toU32s(decl.nums)));
        } else if (decl.key == "write_buffer") {
            grid.axes.push_back(writeBufferAxis(toU32s(decl.nums)));
        } else if (decl.key == "write_buffer_drain") {
            grid.axes.push_back(writeBufferDrainAxis(decl.nums));
        } else if (decl.key == "predictor") {
            grid.axes.push_back(predictorAxis(decl.strs));
        } else if (decl.key == "result_buses") {
            grid.axes.push_back(resultBusAxis(toInts(decl.nums)));
        } else {
            fatal("sweep spec: unknown axis '", decl.key, "'");
        }
    }
    return grid;
}

int
runSweepSpec(const SweepSpec &spec, const RunContext &ctx,
             const std::string &filter)
{
    banner(("sweep spec: " + spec.name).c_str());
    if (!spec.description.empty())
        std::printf("%s\n", spec.description.c_str());

    std::vector<ExperimentSpec> specs = expandGrid(toGrid(spec));
    for (ExperimentSpec &s : specs) {
        s.config.maxCommitted = ctx.maxCommitted;
        if (!ctx.predictor.empty())
            s.config.predictor = ctx.predictor;
        if (ctx.resultBuses >= 0)
            s.config.resultBuses = ctx.resultBuses;
        requireFeasibleConfig(s.config, spec.name + "/" + s.name);
    }
    const std::size_t full = specs.size();
    if (!filter.empty()) {
        std::vector<ExperimentSpec> kept;
        for (ExperimentSpec &s : specs) {
            if (s.name.find(filter) != std::string::npos)
                kept.push_back(std::move(s));
        }
        if (kept.empty()) {
            std::fprintf(stderr,
                         "%s: no spec name contains --filter '%s'\n",
                         spec.name.c_str(), filter.c_str());
            return 1;
        }
        specs = std::move(kept);
        std::printf("\nrunning %zu of %zu specs matching --filter "
                    "'%s'\n",
                    specs.size(), full, filter.c_str());
    }

    const std::vector<Workload> suite =
        spec.suite == "classic" ? classicWorkloads()
                                : buildSpec92Suite(ctx.scale);
    const std::vector<ExperimentResult> results =
        runExperiments(specs, suite, ctx.jobs);
    printGenericSummary(results);
    printStallSummary(results);
    if (spec.exportResults && filter.empty())
        emitResults(spec.name.c_str(), ctx, results);
    return 0;
}

} // namespace exp
} // namespace drsim
