/**
 * @file
 * JSON sweep-spec files: a declarative, on-disk description of a
 * config grid that `drsim_bench --spec <file>` can run without
 * recompiling — the same axes the built-in experiments use (issue
 * width, dispatch-queue size, register count, exception model, cache
 * kind, MSHR bound, write-buffer geometry), expanded by the same
 * grid machinery, so names and orderings follow the registry's
 * conventions.
 *
 * Document shape (all axis arrays optional; absent = keep the paper
 * baseline for that knob):
 *
 *   {
 *     "name": "my-sweep",
 *     "description": "what this sweep shows",
 *     "suite": "spec92",              // or "classic"
 *     "export": false,                // write <name>_results.json?
 *     "axes": {
 *       "width": [4, 8],
 *       "dq": [32, 64],
 *       "regs": [64, 128],
 *       "model": ["precise", "imprecise"],
 *       "cache": ["perfect", "lockup-free", "lockup"],
 *       "mshrs": [4, 0],
 *       "write_buffer": [8, 0],
 *       "write_buffer_drain": [4]
 *     }
 *   }
 *
 * Axis declaration order in the file is the nesting order (first axis
 * is the outermost loop), exactly like GridDef::axes.
 */

#ifndef DRSIM_EXP_SPEC_FILE_HH
#define DRSIM_EXP_SPEC_FILE_HH

#include <string>
#include <vector>

#include "exp/grid.hh"
#include "exp/registry.hh"

namespace drsim {
namespace exp {

/** One parsed sweep-spec document. */
struct SweepSpec
{
    std::string name;
    std::string description;
    /** Workload suite: "spec92" (default) or "classic". */
    std::string suite = "spec92";
    /** Write a `<name>_results.json` artifact after the run. */
    bool exportResults = false;

    /** One declared axis, in document order. */
    struct AxisDecl
    {
        std::string key;                  ///< e.g. "width", "model"
        std::vector<std::uint64_t> nums;  ///< numeric axes
        std::vector<std::string> strs;    ///< model/cache axes
    };
    std::vector<AxisDecl> axes;
};

/** Parse a sweep-spec document; fatal() on malformed input. */
SweepSpec parseSweepSpec(const std::string &text);

/** Serialize @p spec back to its canonical JSON document form (used
 *  by the round-trip test). */
std::string sweepSpecJson(const SweepSpec &spec);

/** Lower a parsed spec to the registry's grid form; fatal() on an
 *  unknown axis key or value. */
GridDef toGrid(const SweepSpec &spec);

/**
 * Run a parsed sweep spec end to end: expand, simulate over the
 * declared suite, print the generic per-spec summary and stall
 * breakdown, and (when the spec asks and no filter is active) export
 * `<name>_results.json`.  Returns a process exit code.
 */
int runSweepSpec(const SweepSpec &spec, const RunContext &ctx,
                 const std::string &filter = "");

} // namespace exp
} // namespace drsim

#endif // DRSIM_EXP_SPEC_FILE_HH
