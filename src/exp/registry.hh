/**
 * @file
 * The experiment registry: every paper table/figure reproduction,
 * ablation, and extension study described as data (a name, a banner,
 * declarative grids, a suite builder, and a print/export policy) and
 * runnable by name — from the single `drsim_bench` driver, from the
 * thin per-experiment wrapper binaries in bench/, or from tests.
 *
 * Two shapes of experiment coexist:
 *
 *  - *Grid* experiments (the common case): grids() expands to the
 *    exact ExperimentSpec vector the legacy harness built by hand,
 *    runExperiments() fans the (spec, workload) points over the
 *    worker pool, print() renders the harness's stdout tables, and —
 *    for the exporting experiments — the stall summary and the
 *    `<name>_results.json` artifact (docs/RESULTS_SCHEMA.md) are
 *    emitted exactly as before, byte for byte.
 *
 *  - *Custom* experiments (simspeed's wall-clock timing loops,
 *    ext_critical_paths' pure timing-model printout, micro's
 *    google-benchmark suite): run() is an opaque harness body.  They
 *    still register, list, and run by name; they just have no grid to
 *    expand, so --dry-run and --filter do not apply to them.
 */

#ifndef DRSIM_EXP_REGISTRY_HH
#define DRSIM_EXP_REGISTRY_HH

#include <string>
#include <vector>

#include "exp/grid.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace drsim {
namespace exp {

/**
 * Everything an experiment run needs from the outside world, resolved
 * once (environment variables, then drsim_bench flags) instead of
 * being re-read piecemeal by every harness.
 */
struct RunContext
{
    /** Workload scale (DRSIM_SCALE; one unit ~ 10k committed insts). */
    int scale = kDefaultSuiteScale;
    /** Per-run committed-instruction cap (DRSIM_MAX_COMMITTED;
     *  0 = run to halt). */
    std::uint64_t maxCommitted = 0;
    /** Worker threads (0 = resolveJobs() default: DRSIM_JOBS, then
     *  hardware concurrency). */
    int jobs = 0;
    /** Directory for JSON results artifacts (DRSIM_RESULTS_DIR). */
    std::string resultsDir = ".";
    /** Interval sampling applied to every expanded spec
     *  (DRSIM_SAMPLE / --sample; disabled by default). */
    SamplingConfig sampling;
    /** Branch-predictor override applied to every expanded spec
     *  (DRSIM_PREDICTOR / --predictor; empty = keep each grid's own
     *  setting, normally the "mcfarling" default). */
    std::string predictor;
    /** Result-bus override applied to every expanded spec
     *  (DRSIM_RESULT_BUSES / --result-buses; -1 = keep each grid's
     *  own setting, normally 0 = unlimited). */
    int resultBuses = -1;

    /** Resolve scale/cap/results directory from the environment. */
    static RunContext fromEnv();
};

/**
 * Parse an `INTERVAL[:WINDOW[:WARMUP[:WARMFF]]]` sampling spec (the
 * --sample flag and DRSIM_SAMPLE env syntax).  Omitted WINDOW
 * defaults to interval/20 (at least 1); omitted WARMUP defaults to
 * WINDOW; omitted WARMFF defaults to 0 (functionally warm across the
 * whole inter-window gap).  fatal() on malformed text or an
 * infeasible combination.
 */
SamplingConfig parseSamplingSpec(const std::string &text);

struct ExperimentDef
{
    /** Registry key, artifact id, and legacy binary name. */
    const char *name;
    /** Banner line printed before a grid experiment runs. */
    const char *title;
    /** One-line summary for `drsim_bench --list`. */
    const char *description;

    /** Declarative sweep; null for custom experiments. */
    std::vector<GridDef> (*grids)();
    /** Workload suite; null = the SPEC92-like nine at ctx.scale. */
    std::vector<Workload> (*suite)(const RunContext &ctx);
    /** Render the harness's stdout tables (grid experiments). */
    void (*print)(const RunContext &ctx,
                  const std::vector<ExperimentResult> &results);
    /** Emit the stall summary and `<name>_results.json` after
     *  print() (the five paper-artifact experiments). */
    bool exportResults;

    /** Custom harness body; non-null makes this a custom experiment
     *  (grids/suite/print/exportResults are ignored). */
    int (*run)(const RunContext &ctx);
};

/** All registered experiments, in documentation order. */
const std::vector<ExperimentDef> &experimentRegistry();

/** Lookup by name; nullptr when unknown. */
const ExperimentDef *findExperiment(const std::string &name);

/**
 * Replace a custom experiment's run() hook.  Used by drsim_bench to
 * attach the google-benchmark micro suite, which lives outside this
 * library so the library does not link google-benchmark.
 */
void setExternalRunner(const std::string &name,
                       int (*run)(const RunContext &ctx));

/** Grid expansion with ctx applied (the per-run commit cap); fatal()
 *  for custom experiments. */
std::vector<ExperimentSpec>
expandExperiment(const ExperimentDef &def, const RunContext &ctx);

/** Build the experiment's workload suite. */
std::vector<Workload> buildSuite(const ExperimentDef &def,
                                 const RunContext &ctx);

/**
 * The full driver path: banner, suite build, grid expansion,
 * runExperiments(), print, and (for exporters) the stall summary +
 * JSON artifact.  @p filter, when non-empty, restricts the run to
 * specs whose name contains it; filtered runs use a generic summary
 * table instead of the curated printer and never export.
 * Returns a process exit code.
 */
int runExperiment(const ExperimentDef &def, const RunContext &ctx,
                  const std::string &filter = "");

/** runExperiment() with a context from the environment — the entire
 *  body of each thin bench/ wrapper binary. */
int runExperimentByName(const char *name);

/// @name Shared harness helpers (formerly bench/bench_util.hh)
/// @{

/**
 * The paper's machine configuration (Figure 2) for a given issue
 * width: the dispatch queue defaults to the paper's cost-effective
 * size (32 entries at 4-way, 64 at 8-way).
 */
CoreConfig paperConfig(int issue_width, int num_regs,
                       ExceptionModel model = ExceptionModel::Precise,
                       CacheKind cache = CacheKind::LockupFree);

/** Boxed section header. */
void banner(const char *title);

/**
 * Print the exclusive stall-cause breakdown (suite averages, percent
 * of cycles) for every experiment in @p results.  Causes that never
 * fired anywhere are omitted to keep the table short.
 */
void printStallSummary(const std::vector<ExperimentResult> &results);

/**
 * Write the JSON results artifact (docs/RESULTS_SCHEMA.md) to
 * `<ctx.resultsDir>/<id>_results.json` and tell the user where it
 * went; exits on I/O failure like the legacy harnesses did.
 */
void emitResults(const char *id, const RunContext &ctx,
                 const std::vector<ExperimentResult> &results);

/** Per-spec summary table used for --filter runs and spec files. */
void printGenericSummary(const std::vector<ExperimentResult> &results);

/** The classic-kernel family (workloads/classic.hh) wrapped as
 *  Workloads with stable WorkloadSpec storage; used by ext_classic
 *  and by sweep-spec files with "suite": "classic". */
std::vector<Workload> classicWorkloads();

/** One-line config summary for --dry-run audits. */
std::string configSummary(const CoreConfig &cfg);
/// @}

} // namespace exp
} // namespace drsim

#endif // DRSIM_EXP_REGISTRY_HH
