#include "bpred/gshare.hh"

#include "common/logging.hh"

namespace drsim {

GsharePredictor::GsharePredictor()
{
    // Weakly not-taken, matching the paper predictor's reset state.
    table_.fill(1);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return counterTaken(table_[index(pc, history_)]);
}

bool
GsharePredictor::predictAndUpdateHistory(Addr pc)
{
    const bool taken = predict(pc);
    history_ = ((history_ << 1) | std::uint32_t(taken)) & kHistoryMask;
    return taken;
}

void
GsharePredictor::update(Addr pc, std::uint64_t history_used,
                        bool taken)
{
    std::uint8_t &c = table_[index(
        pc, std::uint32_t(history_used) & kHistoryMask)];
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

void
GsharePredictor::repairHistory(std::uint64_t history_before,
                               bool taken)
{
    history_ = ((std::uint32_t(history_before) << 1) |
                std::uint32_t(taken)) &
               kHistoryMask;
}

std::vector<std::uint8_t>
GsharePredictor::saveState() const
{
    std::vector<std::uint8_t> out(table_.begin(), table_.end());
    bpred::putU64(out, history_);
    return out;
}

void
GsharePredictor::restoreState(const std::vector<std::uint8_t> &bytes)
{
    const std::size_t expect = table_.size() + 8;
    if (bytes.size() != expect) {
        fatal("gshare predictor state: ", bytes.size(),
              " bytes, expected ", expect);
    }
    std::copy(bytes.begin(), bytes.begin() + kTableSize,
              table_.begin());
    history_ = std::uint32_t(bpred::getU64(bytes, kTableSize)) &
               kHistoryMask;
}

} // namespace drsim
