#include "bpred/tage.hh"

#include "common/logging.hh"

namespace drsim {

TagePredictor::TagePredictor()
{
    // Weakly not-taken base; tagged banks empty (u == 0, weak ctr).
    base_.fill(1);
    for (auto &bank : banks_)
        bank.fill({3, 0, 0});
}

std::uint32_t
TagePredictor::fold(std::uint64_t h, int len, int bits)
{
    h &= (len >= 64) ? ~std::uint64_t(0)
                     : ((std::uint64_t(1) << len) - 1);
    const std::uint32_t mask = (std::uint32_t(1) << bits) - 1;
    std::uint32_t folded = 0;
    for (int i = 0; i < len; i += bits)
        folded ^= std::uint32_t(h >> i) & mask;
    return folded;
}

std::uint32_t
TagePredictor::bankIndex(Addr pc, std::uint64_t history, int bank)
{
    const std::uint32_t a = std::uint32_t(pc >> 2);
    return (a ^ (a >> (kBankBits - bank)) ^
            fold(history, kHistLen[bank], kBankBits)) &
           (kBankSize - 1);
}

std::uint16_t
TagePredictor::bankTag(Addr pc, std::uint64_t history, int bank)
{
    const std::uint32_t a = std::uint32_t(pc >> 2);
    return std::uint16_t(
        (a ^ fold(history, kHistLen[bank], kTagBits) ^
         (fold(history, kHistLen[bank], kTagBits - 1) << 1)) &
        ((1u << kTagBits) - 1));
}

bool
TagePredictor::predict(Addr pc) const
{
    for (int b = kNumBanks - 1; b >= 0; --b) {
        const Entry &e = banks_[b][bankIndex(pc, history_, b)];
        if (e.tag == bankTag(pc, history_, b))
            return ctrTaken(e.ctr);
    }
    return base_[baseIndex(pc)] >= 2;
}

bool
TagePredictor::predictAndUpdateHistory(Addr pc)
{
    const bool taken = predict(pc);
    history_ = (history_ << 1) | std::uint64_t(taken);
    return taken;
}

void
TagePredictor::update(Addr pc, std::uint64_t history_used, bool taken)
{
    // Recompute the prediction chain against the history the original
    // prediction used (execution-order training: the speculative
    // history has moved on by the time the branch executes).
    int provider = -1;
    int alt = -1;
    std::uint32_t idx[kNumBanks];
    for (int b = kNumBanks - 1; b >= 0; --b) {
        idx[b] = bankIndex(pc, history_used, b);
        if (banks_[b][idx[b]].tag != bankTag(pc, history_used, b))
            continue;
        if (provider < 0)
            provider = b;
        else if (alt < 0)
            alt = b;
    }

    const bool base_pred = base_[baseIndex(pc)] >= 2;
    const bool alt_pred =
        alt >= 0 ? ctrTaken(banks_[alt][idx[alt]].ctr) : base_pred;
    const bool tage_pred =
        provider >= 0 ? ctrTaken(banks_[provider][idx[provider]].ctr)
                      : base_pred;

    if (provider >= 0) {
        Entry &e = banks_[provider][idx[provider]];
        // Usefulness tracks "provider beat the alternate".
        if (tage_pred != alt_pred) {
            if (tage_pred == taken) {
                if (e.u < 3)
                    ++e.u;
            } else if (e.u > 0) {
                --e.u;
            }
        }
        bump3(e.ctr, taken);
    } else {
        std::uint8_t &c = base_[baseIndex(pc)];
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    // A mispredict allocates one longer-history entry: the lowest
    // bank above the provider whose slot is not useful.  When every
    // candidate is useful, age them instead (the reference design's
    // anti-ping-pong rule).
    if (tage_pred != taken && provider < kNumBanks - 1) {
        int victim = -1;
        for (int b = provider + 1; b < kNumBanks; ++b) {
            if (banks_[b][idx[b]].u == 0) {
                victim = b;
                break;
            }
        }
        if (victim >= 0) {
            Entry &e = banks_[victim][idx[victim]];
            e.tag = bankTag(pc, history_used, victim);
            e.ctr = taken ? 4 : 3; // weak, in the observed direction
            e.u = 0;
        } else {
            for (int b = provider + 1; b < kNumBanks; ++b)
                --banks_[b][idx[b]].u;
        }
    }

    if (++tick_ >= kUsefulHalfLife) {
        tick_ = 0;
        for (auto &bank : banks_) {
            for (Entry &e : bank)
                e.u >>= 1;
        }
    }
}

std::vector<std::uint8_t>
TagePredictor::saveState() const
{
    std::vector<std::uint8_t> out;
    out.reserve(kBaseSize + std::size_t(kNumBanks) * kBankSize * 4 +
                16);
    for (const std::uint8_t c : base_)
        out.push_back(c);
    for (const auto &bank : banks_) {
        for (const Entry &e : bank) {
            out.push_back(e.ctr);
            out.push_back(e.u);
            out.push_back(std::uint8_t(e.tag));
            out.push_back(std::uint8_t(e.tag >> 8));
        }
    }
    bpred::putU64(out, history_);
    bpred::putU64(out, tick_);
    return out;
}

void
TagePredictor::restoreState(const std::vector<std::uint8_t> &bytes)
{
    const std::size_t expect =
        kBaseSize + std::size_t(kNumBanks) * kBankSize * 4 + 16;
    if (bytes.size() != expect) {
        fatal("tage predictor state: ", bytes.size(),
              " bytes, expected ", expect);
    }
    std::size_t at = 0;
    for (std::uint8_t &c : base_)
        c = bytes[at++];
    for (auto &bank : banks_) {
        for (Entry &e : bank) {
            e.ctr = bytes[at++];
            e.u = bytes[at++];
            e.tag = std::uint16_t(bytes[at] |
                                  (std::uint16_t(bytes[at + 1]) << 8));
            at += 2;
        }
    }
    history_ = bpred::getU64(bytes, at);
    tick_ = bpred::getU64(bytes, at + 8);
}

} // namespace drsim
