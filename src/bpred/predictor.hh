/**
 * @file
 * The branch-predictor backend interface (DESIGN.md §5k).
 *
 * The processor model is predictor-agnostic: it talks to every backend
 * through this interface and never sees a concrete table layout.  The
 * contract mirrors the paper's pipeline discipline exactly:
 *
 *  - predictAndUpdateHistory() at dispatch-queue insert — predict the
 *    branch and *speculatively* shift the prediction into the global
 *    history (CoreConfig::speculativeHistoryUpdate, the default);
 *  - update() at branch issue/execute — train the tables, in execution
 *    order, against the history value the prediction was made with;
 *  - repairHistory() at misprediction recovery — reload the history
 *    with its pre-branch value plus the branch's actual direction;
 *  - shiftHistory() for the execute-time-history ablation (and the
 *    sampling path's functional warming, which replays the
 *    architectural branch stream as perfectly predicted).
 *
 * history() is an *opaque token*: the processor saves it per branch
 * (DynInst::historyBefore) and hands it back to update() and
 * repairHistory() verbatim.  Backends with no global history (bimodal)
 * return 0 and ignore it; backends with up to 64 bits of history
 * (gshare, mcfarling, tage) pack their shift register into it.  This
 * keeps the per-branch bookkeeping fixed-size across backends.
 *
 * saveState()/restoreState() serialize the complete predictor state
 * (tables + history) to a portable byte image, so the sampling path's
 * warm state can be checkpointed and every backend can be round-trip
 * tested (tests/test_bpred.cc).
 */

#ifndef DRSIM_BPRED_PREDICTOR_HH
#define DRSIM_BPRED_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace drsim {

class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** The factory spec this backend answers to, e.g. "mcfarling". */
    virtual const char *name() const = 0;

    /** Opaque global-history token (for checkpoint/repair).  Pass it
     *  back unchanged to update() and repairHistory(). */
    virtual std::uint64_t history() const = 0;

    /**
     * Predict the direction of the conditional branch at @p pc and
     * speculatively shift the prediction into the history register
     * (call at dispatch-queue insert).
     */
    virtual bool predictAndUpdateHistory(Addr pc) = 0;

    /** Predict without touching any state (inspection/tests, and the
     *  execute-time-history ablation's insert-stage prediction). */
    virtual bool predict(Addr pc) const = 0;

    /**
     * Train the predictor with the branch's actual direction (call at
     * branch issue/execute).  @p history_used is the history() token
     * captured *before* this branch's own speculative update.
     */
    virtual void update(Addr pc, std::uint64_t history_used,
                        bool taken) = 0;

    /**
     * Repair after a misprediction: restore the history register to
     * @p history_before (the pre-branch token) with the branch's
     * actual direction shifted in.
     */
    virtual void repairHistory(std::uint64_t history_before,
                               bool taken) = 0;

    /** Shift a resolved direction into the history register (the
     *  execute-time-history ablation and functional warming). */
    virtual void shiftHistory(bool taken) = 0;

    /// @name Checkpointing (sampling warm state, round-trip tests)
    /// @{
    /** Serialize the complete predictor state (tables + history). */
    virtual std::vector<std::uint8_t> saveState() const = 0;

    /** Restore a state saved by the same backend type; fatal() on a
     *  size mismatch (wrong backend or stale image). */
    virtual void restoreState(const std::vector<std::uint8_t> &bytes)
        = 0;
    /// @}
};

/** The factory spec strings, in presentation order ("mcfarling" is
 *  the paper's predictor and the CoreConfig default). */
const std::vector<std::string> &predictorSpecs();

/** True when @p spec names a registered backend. */
bool knownPredictor(const std::string &spec);

/** Comma-separated spec list for error messages. */
std::string predictorSpecList();

/**
 * Construct the backend named by @p spec ("mcfarling", "bimodal",
 * "gshare", "tage"); fatal() on an unknown spec — configurations are
 * validated by checkCoreConfig() before any Processor is built, so
 * reaching the factory with a bad spec is a programming error.
 */
std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &spec);

namespace bpred {

/// @name Byte-image helpers shared by the backends' save/restore
/// @{
inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

inline std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(in[at + i]) << (8 * i);
    return v;
}
/// @}

} // namespace bpred
} // namespace drsim

#endif // DRSIM_BPRED_PREDICTOR_HH
