/**
 * @file
 * Bimodal branch predictor (Smith 1981): one 2-bit saturating counter
 * per PC-indexed table entry, no global history.
 *
 * The simplest backend, and the floor every history-based predictor
 * is judged against in ext_predictors.  8 Kbit budget: 4096 x 2-bit
 * counters, word-address indexed.  history() is always 0 and the
 * history hooks are no-ops — the opaque-token contract makes that a
 * valid degenerate case (the processor's save/repair bookkeeping
 * round-trips zeros).
 */

#ifndef DRSIM_BPRED_BIMODAL_HH
#define DRSIM_BPRED_BIMODAL_HH

#include <array>
#include <cstdint>

#include "bpred/predictor.hh"
#include "common/types.hh"

namespace drsim {

class BimodalPredictor final : public BranchPredictor
{
  public:
    static constexpr int kTableBits = 12;
    static constexpr int kTableSize = 1 << kTableBits;        // 4096

    BimodalPredictor();

    const char *name() const override { return "bimodal"; }

    std::uint64_t history() const override { return 0; }

    bool
    predictAndUpdateHistory(Addr pc) override
    {
        return predict(pc);
    }

    bool predict(Addr pc) const override;

    void update(Addr pc, std::uint64_t history_used,
                bool taken) override;

    void repairHistory(std::uint64_t, bool) override {}
    void shiftHistory(bool) override {}

    std::vector<std::uint8_t> saveState() const override;
    void restoreState(const std::vector<std::uint8_t> &bytes) override;

  private:
    static std::uint32_t
    pcIndex(Addr pc)
    {
        return std::uint32_t(pc >> 2) & (kTableSize - 1);
    }

    std::array<std::uint8_t, kTableSize> table_;
};

} // namespace drsim

#endif // DRSIM_BPRED_BIMODAL_HH
