#include "bpred/predictor.hh"

#include "bpred/bimodal.hh"
#include "bpred/gshare.hh"
#include "bpred/mcfarling.hh"
#include "bpred/tage.hh"
#include "common/logging.hh"

namespace drsim {

const std::vector<std::string> &
predictorSpecs()
{
    static const std::vector<std::string> specs = {
        "mcfarling", "bimodal", "gshare", "tage"};
    return specs;
}

bool
knownPredictor(const std::string &spec)
{
    for (const std::string &s : predictorSpecs()) {
        if (s == spec)
            return true;
    }
    return false;
}

std::string
predictorSpecList()
{
    std::string out;
    for (const std::string &s : predictorSpecs()) {
        if (!out.empty())
            out += ", ";
        out += s;
    }
    return out;
}

std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &spec)
{
    if (spec == "mcfarling")
        return std::make_unique<CombinedPredictor>();
    if (spec == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (spec == "gshare")
        return std::make_unique<GsharePredictor>();
    if (spec == "tage")
        return std::make_unique<TagePredictor>();
    fatal("unknown branch predictor '", spec, "' (known: ",
          predictorSpecList(), ")");
}

} // namespace drsim
