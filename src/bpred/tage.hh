/**
 * @file
 * TAGE branch predictor (Seznec & Michaud 2006, "A case for
 * (partially) TAgged GEometric history length branch prediction"),
 * sized down to drsim's scale and made fully deterministic.
 *
 * Structure: a 4096 x 2-bit bimodal base predictor plus four
 * partially-tagged banks (1024 entries each) indexed by the branch PC
 * hashed with geometrically increasing global-history lengths
 * {5, 10, 20, 40}.  Each tagged entry holds a 3-bit signed prediction
 * counter, a 9-bit partial tag, and a 2-bit usefulness counter.  The
 * prediction comes from the matching bank with the longest history
 * (the provider); the next-longest match (or the base table) is the
 * alternate prediction used to train usefulness.
 *
 * Departures from the reference implementation, chosen for drsim's
 * reproducibility contract:
 *  - allocation on a mispredict claims the single lowest u == 0 entry
 *    above the provider (no randomized bank choice), decrementing the
 *    candidates' u counters when none is free — deterministic, so the
 *    scan and event schedulers stay bit-identical;
 *  - the global history register is a plain 64-bit shift register
 *    (ample for the 40-bit longest table), which is exactly the
 *    opaque history() token the processor checkpoints per branch —
 *    update() and repairHistory() recompute every index and tag from
 *    (pc, token), so execution-order training and post-mispredict
 *    repair need no extra stored state;
 *  - usefulness counters are halved on a fixed 256k-update period
 *    (a deterministic stand-in for the alternating-bit reset).
 */

#ifndef DRSIM_BPRED_TAGE_HH
#define DRSIM_BPRED_TAGE_HH

#include <array>
#include <cstdint>

#include "bpred/predictor.hh"
#include "common/types.hh"

namespace drsim {

class TagePredictor final : public BranchPredictor
{
  public:
    static constexpr int kNumBanks = 4;
    static constexpr int kBaseBits = 12;
    static constexpr int kBaseSize = 1 << kBaseBits;          // 4096
    static constexpr int kBankBits = 10;
    static constexpr int kBankSize = 1 << kBankBits;          // 1024
    static constexpr int kTagBits = 9;
    /** Geometric history lengths, shortest first. */
    static constexpr int kHistLen[kNumBanks] = {5, 10, 20, 40};
    /** Usefulness counters halve every this many update() calls. */
    static constexpr std::uint64_t kUsefulHalfLife = 256 * 1024;

    TagePredictor();

    const char *name() const override { return "tage"; }

    std::uint64_t history() const override { return history_; }

    bool predictAndUpdateHistory(Addr pc) override;

    bool predict(Addr pc) const override;

    void update(Addr pc, std::uint64_t history_used,
                bool taken) override;

    void
    repairHistory(std::uint64_t history_before, bool taken) override
    {
        history_ = (history_before << 1) | std::uint64_t(taken);
    }

    void
    shiftHistory(bool taken) override
    {
        history_ = (history_ << 1) | std::uint64_t(taken);
    }

    std::vector<std::uint8_t> saveState() const override;
    void restoreState(const std::vector<std::uint8_t> &bytes) override;

  private:
    struct Entry
    {
        std::uint8_t ctr;  ///< 3-bit prediction counter, taken >= 4
        std::uint8_t u;    ///< 2-bit usefulness
        std::uint16_t tag; ///< kTagBits partial tag
    };

    /** XOR-fold the low @p len history bits down to @p bits bits. */
    static std::uint32_t fold(std::uint64_t h, int len, int bits);

    static std::uint32_t bankIndex(Addr pc, std::uint64_t history,
                                   int bank);
    static std::uint16_t bankTag(Addr pc, std::uint64_t history,
                                 int bank);

    static bool ctrTaken(std::uint8_t c) { return c >= 4; }
    static void
    bump3(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 7)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    std::uint32_t
    baseIndex(Addr pc) const
    {
        return std::uint32_t(pc >> 2) & (kBaseSize - 1);
    }

    std::array<std::uint8_t, kBaseSize> base_;
    std::array<std::array<Entry, kBankSize>, kNumBanks> banks_;
    std::uint64_t history_ = 0;
    /** update() calls since the last usefulness halving. */
    std::uint64_t tick_ = 0;
};

} // namespace drsim

#endif // DRSIM_BPRED_TAGE_HH
