/**
 * @file
 * McFarling combined branch predictor (paper Section 2.1).
 *
 * 12 Kbit budget: 2048 x 2-bit bimodal counters, 2048 x 2-bit
 * global-history (gshare) counters, and 2048 x 2-bit selector
 * counters.  The global-history shift register is updated
 * *speculatively* with the predicted direction when a branch is
 * inserted into the dispatch queue; on a misprediction it is repaired
 * to the value it held before that branch was inserted (with the
 * branch's actual direction shifted in).  The 2-bit counters are
 * updated when the branch issues (executes), i.e. in execution order —
 * both quirks are called out in the paper as sources of its elevated
 * misprediction rates relative to McFarling's original report.
 */

#ifndef DRSIM_BPRED_MCFARLING_HH
#define DRSIM_BPRED_MCFARLING_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace drsim {

class CombinedPredictor
{
  public:
    static constexpr int kTableBits = 11;
    static constexpr int kTableSize = 1 << kTableBits;        // 2048
    static constexpr std::uint32_t kHistoryMask = kTableSize - 1;

    CombinedPredictor();

    /** The global-history register value (for checkpoint/repair). */
    std::uint32_t history() const { return history_; }

    /**
     * Predict the direction of the conditional branch at @p pc and
     * speculatively shift the prediction into the history register
     * (call at dispatch-queue insert).
     */
    bool predictAndUpdateHistory(Addr pc);

    /** Predict without touching any state (for inspection/tests). */
    bool predict(Addr pc) const;

    /**
     * Train the counters with the branch's actual direction (call at
     * branch issue/execute).  @p pc is the branch PC; @p history_used
     * is the history value the prediction was made with (the value
     * *before* this branch's own speculative update).
     */
    void update(Addr pc, std::uint32_t history_used, bool taken);

    /**
     * Repair after a misprediction: restore the history register to
     * @p history_before (the pre-branch value) with the branch's
     * actual direction shifted in.
     */
    void repairHistory(std::uint32_t history_before, bool taken);

    /** Shift a resolved direction into the history register (used by
     *  the execute-time-history ablation instead of the speculative
     *  insert-time update). */
    void
    shiftHistory(bool taken)
    {
        history_ = ((history_ << 1) | std::uint32_t(taken)) &
                   kHistoryMask;
    }

  private:
    static std::uint32_t
    pcIndex(Addr pc)
    {
        // Word-address indexing, as in the paper.
        return std::uint32_t(pc >> 2) & (kTableSize - 1);
    }

    std::uint32_t
    gshareIndex(Addr pc, std::uint32_t history) const
    {
        return (std::uint32_t(pc >> 2) ^ history) & (kTableSize - 1);
    }

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void
    bump(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    /** The bimodal and selector tables are both indexed by pcIndex();
     *  interleaving them puts the two counters a prediction and an
     *  update both touch in the same cache line. */
    struct PcEntry
    {
        std::uint8_t bimodal;
        std::uint8_t selector;
    };

    std::array<PcEntry, kTableSize> pcTable_;
    std::array<std::uint8_t, kTableSize> global_;
    std::uint32_t history_ = 0;
};

} // namespace drsim

#endif // DRSIM_BPRED_MCFARLING_HH
