/**
 * @file
 * McFarling combined branch predictor (paper Section 2.1).
 *
 * 12 Kbit budget: 2048 x 2-bit bimodal counters, 2048 x 2-bit
 * global-history (gshare) counters, and 2048 x 2-bit selector
 * counters.  The global-history shift register is updated
 * *speculatively* with the predicted direction when a branch is
 * inserted into the dispatch queue; on a misprediction it is repaired
 * to the value it held before that branch was inserted (with the
 * branch's actual direction shifted in).  The 2-bit counters are
 * updated when the branch issues (executes), i.e. in execution order —
 * both quirks are called out in the paper as sources of its elevated
 * misprediction rates relative to McFarling's original report.
 */

#ifndef DRSIM_BPRED_MCFARLING_HH
#define DRSIM_BPRED_MCFARLING_HH

#include <array>
#include <cstdint>

#include "bpred/predictor.hh"
#include "common/types.hh"

namespace drsim {

class CombinedPredictor final : public BranchPredictor
{
  public:
    static constexpr int kTableBits = 11;
    static constexpr int kTableSize = 1 << kTableBits;        // 2048
    static constexpr std::uint32_t kHistoryMask = kTableSize - 1;

    CombinedPredictor();

    const char *name() const override { return "mcfarling"; }

    /** The global-history register value (for checkpoint/repair). */
    std::uint64_t history() const override { return history_; }

    bool predictAndUpdateHistory(Addr pc) override;

    bool predict(Addr pc) const override;

    void update(Addr pc, std::uint64_t history_used,
                bool taken) override;

    void repairHistory(std::uint64_t history_before,
                       bool taken) override;

    void
    shiftHistory(bool taken) override
    {
        history_ = ((history_ << 1) | std::uint32_t(taken)) &
                   kHistoryMask;
    }

    std::vector<std::uint8_t> saveState() const override;
    void restoreState(const std::vector<std::uint8_t> &bytes) override;

  private:
    static std::uint32_t
    pcIndex(Addr pc)
    {
        // Word-address indexing, as in the paper.
        return std::uint32_t(pc >> 2) & (kTableSize - 1);
    }

    static std::uint32_t
    gshareIndex(Addr pc, std::uint32_t history)
    {
        return (std::uint32_t(pc >> 2) ^ history) & (kTableSize - 1);
    }

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void
    bump(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    /** The bimodal and selector tables are both indexed by pcIndex();
     *  interleaving them puts the two counters a prediction and an
     *  update both touch in the same cache line. */
    struct PcEntry
    {
        std::uint8_t bimodal;
        std::uint8_t selector;
    };

    std::array<PcEntry, kTableSize> pcTable_;
    std::array<std::uint8_t, kTableSize> global_;
    std::uint32_t history_ = 0;
};

} // namespace drsim

#endif // DRSIM_BPRED_MCFARLING_HH
