#include "bpred/mcfarling.hh"

namespace drsim {

CombinedPredictor::CombinedPredictor()
{
    // Weakly not-taken counters; neutral selector.
    bimodal_.fill(1);
    global_.fill(1);
    selector_.fill(1);
}

bool
CombinedPredictor::predict(Addr pc) const
{
    const bool bi = counterTaken(bimodal_[pcIndex(pc)]);
    const bool gl = counterTaken(global_[gshareIndex(pc, history_)]);
    const bool use_global = counterTaken(selector_[pcIndex(pc)]);
    return use_global ? gl : bi;
}

bool
CombinedPredictor::predictAndUpdateHistory(Addr pc)
{
    const bool taken = predict(pc);
    history_ = ((history_ << 1) | std::uint32_t(taken)) & kHistoryMask;
    return taken;
}

void
CombinedPredictor::update(Addr pc, std::uint32_t history_used,
                          bool taken)
{
    std::uint8_t &bi = bimodal_[pcIndex(pc)];
    std::uint8_t &gl = global_[gshareIndex(pc, history_used)];
    const bool bi_correct = counterTaken(bi) == taken;
    const bool gl_correct = counterTaken(gl) == taken;
    // The selector trains toward whichever component was right.
    if (bi_correct != gl_correct)
        bump(selector_[pcIndex(pc)], gl_correct);
    bump(bi, taken);
    bump(gl, taken);
}

void
CombinedPredictor::repairHistory(std::uint32_t history_before,
                                 bool taken)
{
    history_ = ((history_before << 1) | std::uint32_t(taken)) &
               kHistoryMask;
}

} // namespace drsim
