#include "bpred/mcfarling.hh"

#include "common/logging.hh"

namespace drsim {

CombinedPredictor::CombinedPredictor()
{
    // Weakly not-taken counters; neutral selector.
    pcTable_.fill({1, 1});
    global_.fill(1);
}

bool
CombinedPredictor::predict(Addr pc) const
{
    const PcEntry &e = pcTable_[pcIndex(pc)];
    const bool bi = counterTaken(e.bimodal);
    const bool gl = counterTaken(global_[gshareIndex(pc, history_)]);
    const bool use_global = counterTaken(e.selector);
    return use_global ? gl : bi;
}

bool
CombinedPredictor::predictAndUpdateHistory(Addr pc)
{
    const bool taken = predict(pc);
    history_ = ((history_ << 1) | std::uint32_t(taken)) & kHistoryMask;
    return taken;
}

void
CombinedPredictor::update(Addr pc, std::uint64_t history_used,
                          bool taken)
{
    PcEntry &e = pcTable_[pcIndex(pc)];
    std::uint8_t &gl = global_[gshareIndex(
        pc, std::uint32_t(history_used) & kHistoryMask)];
    const bool bi_correct = counterTaken(e.bimodal) == taken;
    const bool gl_correct = counterTaken(gl) == taken;
    // The selector trains toward whichever component was right.
    if (bi_correct != gl_correct)
        bump(e.selector, gl_correct);
    bump(e.bimodal, taken);
    bump(gl, taken);
}

void
CombinedPredictor::repairHistory(std::uint64_t history_before,
                                 bool taken)
{
    history_ = ((std::uint32_t(history_before) << 1) |
                std::uint32_t(taken)) &
               kHistoryMask;
}

std::vector<std::uint8_t>
CombinedPredictor::saveState() const
{
    std::vector<std::uint8_t> out;
    out.reserve(std::size_t(3) * kTableSize + 8);
    for (const PcEntry &e : pcTable_) {
        out.push_back(e.bimodal);
        out.push_back(e.selector);
    }
    for (const std::uint8_t g : global_)
        out.push_back(g);
    bpred::putU64(out, history_);
    return out;
}

void
CombinedPredictor::restoreState(const std::vector<std::uint8_t> &bytes)
{
    const std::size_t expect = std::size_t(3) * kTableSize + 8;
    if (bytes.size() != expect) {
        fatal("mcfarling predictor state: ", bytes.size(),
              " bytes, expected ", expect);
    }
    std::size_t at = 0;
    for (PcEntry &e : pcTable_) {
        e.bimodal = bytes[at++];
        e.selector = bytes[at++];
    }
    for (std::uint8_t &g : global_)
        g = bytes[at++];
    history_ = std::uint32_t(bpred::getU64(bytes, at)) & kHistoryMask;
}

} // namespace drsim
