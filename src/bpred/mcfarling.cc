#include "bpred/mcfarling.hh"

namespace drsim {

CombinedPredictor::CombinedPredictor()
{
    // Weakly not-taken counters; neutral selector.
    pcTable_.fill({1, 1});
    global_.fill(1);
}

bool
CombinedPredictor::predict(Addr pc) const
{
    const PcEntry &e = pcTable_[pcIndex(pc)];
    const bool bi = counterTaken(e.bimodal);
    const bool gl = counterTaken(global_[gshareIndex(pc, history_)]);
    const bool use_global = counterTaken(e.selector);
    return use_global ? gl : bi;
}

bool
CombinedPredictor::predictAndUpdateHistory(Addr pc)
{
    const bool taken = predict(pc);
    history_ = ((history_ << 1) | std::uint32_t(taken)) & kHistoryMask;
    return taken;
}

void
CombinedPredictor::update(Addr pc, std::uint32_t history_used,
                          bool taken)
{
    PcEntry &e = pcTable_[pcIndex(pc)];
    std::uint8_t &gl = global_[gshareIndex(pc, history_used)];
    const bool bi_correct = counterTaken(e.bimodal) == taken;
    const bool gl_correct = counterTaken(gl) == taken;
    // The selector trains toward whichever component was right.
    if (bi_correct != gl_correct)
        bump(e.selector, gl_correct);
    bump(e.bimodal, taken);
    bump(gl, taken);
}

void
CombinedPredictor::repairHistory(std::uint32_t history_before,
                                 bool taken)
{
    history_ = ((history_before << 1) | std::uint32_t(taken)) &
               kHistoryMask;
}

} // namespace drsim
