/**
 * @file
 * Gshare branch predictor (McFarling 1993, TN-36): a single 2-bit
 * counter table indexed by the branch PC XORed with the global
 * history register.
 *
 * 8 Kbit budget: 4096 x 2-bit counters, 12 bits of global history.
 * The pure-global half of the paper's combined predictor, scaled up
 * and without the bimodal fallback — so ext_predictors can separate
 * "global history helps" from "the selector helps".  Follows the
 * paper's pipeline discipline: speculative history update at insert,
 * execution-order counter training, history repair on mispredict.
 */

#ifndef DRSIM_BPRED_GSHARE_HH
#define DRSIM_BPRED_GSHARE_HH

#include <array>
#include <cstdint>

#include "bpred/predictor.hh"
#include "common/types.hh"

namespace drsim {

class GsharePredictor final : public BranchPredictor
{
  public:
    static constexpr int kTableBits = 12;
    static constexpr int kTableSize = 1 << kTableBits;        // 4096
    static constexpr std::uint32_t kHistoryMask = kTableSize - 1;

    GsharePredictor();

    const char *name() const override { return "gshare"; }

    std::uint64_t history() const override { return history_; }

    bool predictAndUpdateHistory(Addr pc) override;

    bool predict(Addr pc) const override;

    void update(Addr pc, std::uint64_t history_used,
                bool taken) override;

    void repairHistory(std::uint64_t history_before,
                       bool taken) override;

    void
    shiftHistory(bool taken) override
    {
        history_ = ((history_ << 1) | std::uint32_t(taken)) &
                   kHistoryMask;
    }

    std::vector<std::uint8_t> saveState() const override;
    void restoreState(const std::vector<std::uint8_t> &bytes) override;

  private:
    static std::uint32_t
    index(Addr pc, std::uint32_t history)
    {
        return (std::uint32_t(pc >> 2) ^ history) & (kTableSize - 1);
    }

    static bool counterTaken(std::uint8_t c) { return c >= 2; }

    std::array<std::uint8_t, kTableSize> table_;
    std::uint32_t history_ = 0;
};

} // namespace drsim

#endif // DRSIM_BPRED_GSHARE_HH
