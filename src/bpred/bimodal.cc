#include "bpred/bimodal.hh"

#include "common/logging.hh"

namespace drsim {

BimodalPredictor::BimodalPredictor()
{
    // Weakly not-taken, matching the paper predictor's reset state.
    table_.fill(1);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table_[pcIndex(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, std::uint64_t, bool taken)
{
    std::uint8_t &c = table_[pcIndex(pc)];
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

std::vector<std::uint8_t>
BimodalPredictor::saveState() const
{
    return {table_.begin(), table_.end()};
}

void
BimodalPredictor::restoreState(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() != table_.size()) {
        fatal("bimodal predictor state: ", bytes.size(),
              " bytes, expected ", table_.size());
    }
    std::copy(bytes.begin(), bytes.end(), table_.begin());
}

} // namespace drsim
