/**
 * @file
 * The content-addressed sweep-point cache (docs/SERVER.md, "On-disk
 * cache layout").
 *
 * A *point* is one (CoreConfig, workload program, code version)
 * simulation — the unit the experiment registry proved to be a pure
 * function (every knob that reaches the simulator is in CoreConfig,
 * and a workload program is fully determined by its builder inputs).
 * The cache maps a canonical textual serialization of those inputs
 * (the *key text*) through a 64-bit FNV-1a hash to one JSON envelope
 * file under the cache directory:
 *
 *   <dir>/<hh>/<16-hex-digit-hash>.json
 *
 * where <hh> is the first two hash digits (a fan-out level so a
 * million-point cache does not put a million entries in one
 * directory).  The envelope stores the *full* key text next to the
 * result, and load() verifies it against the requested key, so a hash
 * collision degrades to a cache miss instead of serving a wrong
 * result, and a truncated or hand-edited file degrades to a recompute
 * instead of a crash.
 *
 * The program coordinate is a content digest of the built guest
 * program (instructions + initial data image), not a (name, scale)
 * pair: if a kernel generator changes, its digests change and every
 * stale entry silently misses.  The simulator code version
 * (pointCacheRev()) is likewise part of the key text, so bumping it
 * retires the entire cache at once — see docs/SERVER.md for the
 * invalidation rules.
 *
 * Thread safety: store() writes to a unique temp file and renames it
 * into place (atomic on POSIX), and load() only ever sees complete
 * files; the statistics counters are mutex-guarded.  Concurrent
 * stores of the same key are idempotent — last rename wins, and both
 * writers produced identical bytes.
 */

#ifndef DRSIM_SERVE_POINT_CACHE_HH
#define DRSIM_SERVE_POINT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/config.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace serve {

/**
 * Simulator code version folded into every cache key.  Bump whenever
 * a change alters simulation *results* (scheduling, stats, workload
 * builders, …); pure refactors that the bit-identity test suites
 * prove result-neutral keep it.  DRSIM_CACHE_REV overrides it (used
 * by the invalidation tests and by operators pinning a cache).
 */
std::string pointCacheRev();

/** FNV-1a content digest of a built program (code + data image),
 *  rendered as 16 hex digits. */
std::string programDigest(const Program &program);

/** The inputs identifying one cacheable point. */
struct PointKey
{
    CoreConfig config;
    /** Workload name (provenance only; the digest is authoritative). */
    std::string workload;
    /** programDigest() of the built program. */
    std::string digest;
};

/**
 * Canonical key text for @p key at code version @p rev: one line per
 * field, every CoreConfig member that can affect results.  The two
 * scheduler-implementation knobs (scanScheduler, stallSkipAhead) are
 * deliberately excluded — tests/test_event_core.cc enforces that they
 * are bit-identical, so both implementations share cache entries.
 */
std::string pointKeyText(const PointKey &key, const std::string &rev);

/** 64-bit FNV-1a of @p text as 16 lowercase hex digits. */
std::string fnv1aHex(const std::string &text);

class PointCache
{
  public:
    /**
     * Open (and lazily create) the cache rooted at @p dir.
     * @p max_bytes caps the cache's on-disk footprint: after every
     * store, least-recently-used entries (mtime order; loads touch
     * their entry) are evicted until the directory fits.  The default
     * of ~0 defers to DRSIM_CACHE_MAX_BYTES, with 0 (also the
     * variable's default) meaning unbounded.
     */
    explicit PointCache(std::string dir,
                        std::string rev = pointCacheRev(),
                        std::uint64_t max_bytes = ~std::uint64_t{0});

    const std::string &dir() const { return dir_; }
    const std::string &rev() const { return rev_; }

    /** Effective byte cap (0 = unbounded). */
    std::uint64_t maxBytes() const { return maxBytes_; }

    /** Envelope file path for @p key (exists or not). */
    std::string entryPath(const PointKey &key) const;

    /**
     * Look up @p key.  Returns the cached result, or std::nullopt on
     * a miss — including a corrupt, truncated, version-skewed, or
     * key-colliding entry, which is warned about, unlinked, and
     * counted in stats().corrupt so the caller simply recomputes.
     */
    std::optional<SimResult> load(const PointKey &key);

    /** Persist @p result under @p key (atomic tempfile + rename);
     *  fatal() on I/O failure. */
    void store(const PointKey &key, const SimResult &result);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t corrupt = 0;
        std::uint64_t stores = 0;
        /** Entries removed by the LRU byte cap (common/disk_lru.hh). */
        std::uint64_t evicted = 0;
    };
    Stats stats() const;

  private:
    std::string pathFor(const std::string &hash) const;

    std::string dir_;
    std::string rev_;
    std::uint64_t maxBytes_ = 0;
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace serve
} // namespace drsim

#endif // DRSIM_SERVE_POINT_CACHE_HH
