#include "serve/service.hh"

#include <condition_variable>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "sim/simulator.hh"

namespace drsim {
namespace serve {

SweepService::SweepService(std::string cacheDir, int jobs)
    : jobs_(jobs < 1 ? 1 : jobs), cache_(std::move(cacheDir)),
      pool_(jobs_)
{
}

SweepService::~SweepService() = default;

void
SweepService::requestPoint(const PointKey &key,
                           std::shared_ptr<const Workload> workload,
                           PointCallback cb)
{
    const std::string keyText = pointKeyText(key, cache_.rev());
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.points;

        const auto mem = memory_.find(keyText);
        if (mem != memory_.end()) {
            ++stats_.memoryHits;
            PointOutcome outcome;
            outcome.result = mem->second;
            outcome.cacheHit = true;
            outcome.rev = cache_.rev();
            lock.unlock();
            cb(outcome);
            return;
        }

        const auto flight = inflight_.find(keyText);
        if (flight != inflight_.end()) {
            flight->second->waiters.push_back(std::move(cb));
            return;
        }

        auto entry = std::make_shared<InFlight>();
        entry->waiters.push_back(std::move(cb));
        inflight_.emplace(keyText, std::move(entry));
        ++stats_.inFlight;
    }
    pool_.submit([this, keyText, key, workload] {
        completePoint(keyText, key, workload);
    });
}

void
SweepService::completePoint(
    const std::string &keyText, const PointKey &key,
    const std::shared_ptr<const Workload> &workload)
{
    // Runs on a worker thread with no locks held.  Must not throw:
    // the pool would capture the exception for a wait() nobody calls,
    // and the in-flight waiters would starve.
    PointOutcome outcome;
    outcome.rev = cache_.rev();
    bool computed = false;
    try {
        if (auto cached = cache_.load(key)) {
            outcome.result = std::move(*cached);
            outcome.cacheHit = true;
        } else {
            outcome.result = simulate(key.config, *workload);
            cache_.store(key, outcome.result);
            computed = true;
        }
    } catch (const FatalError &e) {
        outcome.error = e.what();
    }

    std::vector<PointCallback> waiters;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto flight = inflight_.find(keyText);
        if (flight == inflight_.end())
            DRSIM_PANIC("no in-flight entry for completed point");
        waiters = std::move(flight->second->waiters);
        inflight_.erase(flight);
        --stats_.inFlight;
        if (outcome.ok()) {
            memory_.emplace(keyText, outcome.result);
            if (computed)
                ++stats_.computed;
            else
                ++stats_.diskHits;
        } else {
            // Errors are not published: a later identical request
            // retries (the failure may be transient, e.g. a full
            // disk during cache_.store()).
            ++stats_.errors;
        }
        stats_.coalesced += waiters.size() - 1;
    }
    for (std::size_t i = 0; i < waiters.size(); ++i) {
        outcome.coalesced = i > 0;
        waiters[i](outcome);
    }
}

PointOutcome
SweepService::runPoint(const PointKey &key, const Workload &workload)
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    PointOutcome result;
    requestPoint(
        key,
        std::shared_ptr<const Workload>(&workload,
                                        [](const Workload *) {}),
        [&](const PointOutcome &outcome) {
            std::lock_guard<std::mutex> lock(m);
            result = outcome;
            done = true;
            cv.notify_one();
        });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done; });
    return result;
}

SweepService::Stats
SweepService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace serve
} // namespace drsim
