#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/logging.hh"
#include "serve/result_io.hh"
#include "sim/runner.hh"

namespace drsim {
namespace serve {

namespace {

void
splitHostPort(const std::string &hostPort, std::string &host,
              int &port)
{
    const std::size_t colon = hostPort.rfind(':');
    if (colon == std::string::npos || colon + 1 == hostPort.size())
        fatal("--server expects HOST:PORT, got '", hostPort, "'");
    host = hostPort.substr(0, colon);
    try {
        port = std::stoi(hostPort.substr(colon + 1));
    } catch (const std::exception &) {
        port = 0;
    }
    if (port < 1 || port > 65535)
        fatal("--server: bad port in '", hostPort, "'");
}

} // namespace

ServeClient::ServeClient(const std::string &hostPort)
{
    std::string host;
    int port = 0;
    splitHostPort(hostPort, host, port);

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        fatal("socket: ", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        fatal("--server: not an IPv4 address: '", host, "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("cannot connect to drsim_serve at ", hostPort, ": ",
              std::strerror(err));
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServeClient::sendLine(const std::string &line)
{
    std::string data = line;
    data += '\n';
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("server connection lost while sending: ",
                  std::strerror(errno));
        }
        sent += std::size_t(n);
    }
}

std::optional<std::string>
ServeClient::readLine()
{
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[65536];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("server connection lost: ", std::strerror(errno));
        }
        if (n == 0)
            return std::nullopt;
        buffer_.append(chunk, std::size_t(n));
    }
}

json::Value
ServeClient::readReply()
{
    const std::optional<std::string> line = readLine();
    if (!line.has_value())
        fatal("server closed the connection mid-conversation");
    return json::parse(*line);
}

namespace {

/**
 * The shared serve-and-reassemble engine: send @p request, stream
 * point replies into a (spec × workload) grid, and hand back the
 * ExperimentResult vector in exactly the order a local
 * runExperiments() call would have produced.
 */
std::vector<ExperimentResult>
runViaServer(const std::string &hostPort, const std::string &request,
             const std::vector<ExperimentSpec> &specs,
             const std::vector<Workload> &suite)
{
    std::unordered_map<std::string, std::size_t> specIndex;
    for (std::size_t i = 0; i < specs.size(); ++i)
        specIndex.emplace(specs[i].name, i);
    std::unordered_map<std::string, std::size_t> wlIndex;
    for (std::size_t i = 0; i < suite.size(); ++i)
        wlIndex.emplace(suite[i].spec->name, i);

    ServeClient client(hostPort);
    client.sendLine(request);

    const std::size_t expected = specs.size() * suite.size();
    std::vector<std::vector<SimResult>> grid(specs.size());
    for (auto &row : grid)
        row.resize(suite.size());
    std::vector<std::vector<bool>> seen(
        specs.size(), std::vector<bool>(suite.size(), false));
    std::size_t received = 0;
    std::uint64_t cacheHits = 0, computed = 0, coalesced = 0;
    bool done = false;
    while (!done) {
        const json::Value reply = client.readReply();
        const std::string &kind = reply.at("reply").asString();
        if (kind == "error") {
            fatal("server error [", reply.at("code").asString(),
                  "]: ", reply.at("message").asString());
        } else if (kind == "ack") {
            if (reply.at("points").asU64() != expected) {
                fatal("server expanded ", reply.at("points").asU64(),
                      " points where this client expects ", expected,
                      " — client/server version skew?");
            }
        } else if (kind == "point") {
            const auto si = specIndex.find(
                reply.at("spec").asString());
            const auto wi = wlIndex.find(
                reply.at("workload").asString());
            if (si == specIndex.end() || wi == wlIndex.end()) {
                fatal("server sent unknown point (",
                      reply.at("spec").asString(), ", ",
                      reply.at("workload").asString(),
                      ") — client/server version skew?");
            }
            if (seen[si->second][wi->second])
                fatal("server sent a duplicate point reply");
            seen[si->second][wi->second] = true;
            grid[si->second][wi->second] =
                parsePointRecord(reply.at("result"));
            ++received;
            if (reply.at("cache_hit").asBool())
                ++cacheHits;
            else if (!reply.at("coalesced").asBool())
                ++computed;
            if (reply.at("coalesced").asBool())
                ++coalesced;
        } else if (kind == "done") {
            done = true;
        } else {
            fatal("unexpected server reply '", kind, "'");
        }
    }
    if (received != expected) {
        fatal("server completed after ", received, " of ", expected,
              " points");
    }
    std::fprintf(stderr,
                 "[drsim_bench] served by %s: %zu points, "
                 "%llu cache hits, %llu computed, %llu coalesced\n",
                 hostPort.c_str(), expected,
                 static_cast<unsigned long long>(cacheHits),
                 static_cast<unsigned long long>(computed),
                 static_cast<unsigned long long>(coalesced));

    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results.push_back(ExperimentResult{
            specs[i], SuiteResult(std::move(grid[i]))});
    }
    return results;
}

std::string
runRequestPrefix(const exp::RunContext &ctx)
{
    std::string prefix =
        "\"scale\":" + std::to_string(ctx.scale) +
        ",\"max_committed\":" + std::to_string(ctx.maxCommitted);
    if (ctx.sampling.enabled()) {
        prefix += ",\"sampling\":{\"interval\":" +
                  std::to_string(ctx.sampling.interval) +
                  ",\"window\":" +
                  std::to_string(ctx.sampling.window) +
                  ",\"warmup\":" +
                  std::to_string(ctx.sampling.warmup) +
                  ",\"warmff\":" +
                  std::to_string(ctx.sampling.warmff) + "}";
    }
    if (!ctx.predictor.empty())
        prefix += ",\"predictor\":\"" + json::escape(ctx.predictor) +
                  "\"";
    if (ctx.resultBuses >= 0)
        prefix += ",\"result_buses\":" +
                  std::to_string(ctx.resultBuses);
    return prefix;
}

} // namespace

int
runExperimentViaServer(const exp::ExperimentDef &def,
                       const exp::RunContext &ctx,
                       const std::string &hostPort)
{
    if (def.run != nullptr) {
        std::fprintf(stderr,
                     "%s: custom experiments cannot run via "
                     "--server (no grid to serve)\n",
                     def.name);
        return 2;
    }
    const std::vector<ExperimentSpec> specs =
        exp::expandExperiment(def, ctx);
    const std::vector<Workload> suite = exp::buildSuite(def, ctx);

    const std::string request =
        "{\"verb\":\"run\",\"experiment\":\"" +
        json::escape(def.name) + "\"," + runRequestPrefix(ctx) + "}";
    const std::vector<ExperimentResult> results =
        runViaServer(hostPort, request, specs, suite);

    exp::banner(def.title);
    def.print(ctx, results);
    if (def.exportResults) {
        exp::printStallSummary(results);
        exp::emitResults(def.name, ctx, results);
    }
    return 0;
}

int
runSweepSpecViaServer(const exp::SweepSpec &spec,
                      const exp::RunContext &ctx,
                      const std::string &hostPort)
{
    std::vector<ExperimentSpec> specs =
        exp::expandGrid(exp::toGrid(spec));
    for (ExperimentSpec &s : specs) {
        s.config.maxCommitted = ctx.maxCommitted;
        s.config.sampling = ctx.sampling;
        // Mirror the server's overrides so the reassembled
        // ExperimentResult configs match what actually ran.
        if (!ctx.predictor.empty())
            s.config.predictor = ctx.predictor;
        if (ctx.resultBuses >= 0)
            s.config.resultBuses = ctx.resultBuses;
    }
    const std::vector<Workload> suite =
        spec.suite == "classic" ? exp::classicWorkloads()
                                : buildSpec92Suite(ctx.scale);

    const std::string request =
        "{\"verb\":\"run\",\"spec\":" +
        json::serialize(json::parse(exp::sweepSpecJson(spec))) +
        "," + runRequestPrefix(ctx) + "}";
    const std::vector<ExperimentResult> results =
        runViaServer(hostPort, request, specs, suite);

    exp::banner(("sweep spec: " + spec.name).c_str());
    if (!spec.description.empty())
        std::printf("%s\n", spec.description.c_str());
    exp::printGenericSummary(results);
    exp::printStallSummary(results);
    if (spec.exportResults)
        exp::emitResults(spec.name.c_str(), ctx, results);
    return 0;
}

int
printServerStats(const std::string &hostPort)
{
    ServeClient client(hostPort);
    client.sendLine("{\"verb\":\"stats\"}");
    const std::optional<std::string> line = client.readLine();
    if (!line.has_value())
        fatal("server closed the connection before replying");
    std::printf("%s\n", line->c_str());
    return 0;
}

} // namespace serve
} // namespace drsim
