#include "serve/result_io.hh"

#include <charconv>

#include "common/logging.hh"

namespace drsim {
namespace serve {

namespace {

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::Running: return "running";
      case StopReason::Halted: return "halted";
      case StopReason::InstLimit: return "inst-limit";
    }
    DRSIM_PANIC("invalid StopReason ", int(r));
}

StopReason
stopReasonFromName(const std::string &name)
{
    if (name == "running")
        return StopReason::Running;
    if (name == "halted")
        return StopReason::Halted;
    if (name == "inst-limit")
        return StopReason::InstLimit;
    fatal("point record: unknown stop_reason '", name, "'");
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void
appendDouble(std::string &out, double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void
appendKey(std::string &out, const char *key)
{
    out += '"';
    out += key;
    out += "\":";
}

void
appendHistogram(std::string &out, const Histogram &h)
{
    out += '[';
    const auto &counts = h.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i > 0)
            out += ',';
        appendU64(out, counts[i]);
    }
    out += ']';
}

Histogram
parseHistogram(const json::Value &v)
{
    Histogram h;
    const auto &items = v.items();
    for (std::size_t i = 0; i < items.size(); ++i)
        h.addSamples(i, items[i].asU64());
    if (h.counts().size() != items.size()) {
        // A trailing zero count cannot be produced by addSample/merge,
        // so a live histogram never serializes one; its presence means
        // the record was edited or corrupted.
        fatal("point record: histogram has a trailing zero count");
    }
    return h;
}

} // namespace

std::string
pointRecordJson(const SimResult &r)
{
    std::string out;
    out.reserve(1024);
    out += "{\"record\":\"drsim-point-v";
    appendU64(out, kPointRecordVersion);
    out += "\",";

    appendKey(out, "workload");
    out += '"' + json::escape(r.workload) + "\",";
    appendKey(out, "fp_intensive");
    out += r.fpIntensive ? "true," : "false,";
    appendKey(out, "stop_reason");
    out += std::string("\"") + stopReasonName(r.stopReason) + "\",";

    const SampledStats &sm = r.sampled;
    appendKey(out, "sampled");
    out += '{';
    appendKey(out, "enabled");
    out += sm.enabled ? "true," : "false,";
    const struct { const char *key; std::uint64_t value; } sfields[] = {
        {"windows", sm.windows},
        {"fast_forwarded", sm.fastForwarded},
        {"warmup_insts", sm.warmupInsts},
        {"measured_insts", sm.measuredInsts},
        {"measured_cycles", sm.measuredCycles},
    };
    for (const auto &[key, value] : sfields) {
        appendKey(out, key);
        appendU64(out, value);
        out += ',';
    }
    appendKey(out, "ipc_estimate");
    appendDouble(out, sm.ipcEstimate);
    out += ',';
    appendKey(out, "ci95");
    appendDouble(out, sm.ci95);
    out += "},";

    const ProcStats &p = r.proc;
    appendKey(out, "proc");
    out += '{';
    const struct { const char *key; std::uint64_t value; } scalars[] = {
        {"cycles", p.cycles},
        {"committed", p.committed},
        {"committed_loads", p.committedLoads},
        {"committed_stores", p.committedStores},
        {"committed_cond_branches", p.committedCondBranches},
        {"executed", p.executed},
        {"executed_loads", p.executedLoads},
        {"executed_stores", p.executedStores},
        {"executed_cond_branches", p.executedCondBranches},
        {"mispredicted_branches", p.mispredictedBranches},
        {"recoveries", p.recoveries},
        {"squashed_insts", p.squashedInsts},
        {"forwarded_loads", p.forwardedLoads},
        {"insert_stall_no_reg_cycles", p.insertStallNoRegCycles},
        {"insert_stall_dq_full_cycles", p.insertStallDqFullCycles},
        {"no_free_reg_cycles", p.noFreeRegCycles},
        {"fetch_blocked_cycles", p.fetchBlockedCycles},
        {"write_buffer_stall_cycles", p.writeBufferStallCycles},
    };
    for (const auto &[key, value] : scalars) {
        appendKey(out, key);
        appendU64(out, value);
        out += ',';
    }
    appendKey(out, "cause_cycles");
    out += '[';
    for (int c = 0; c < kNumCycleCauses; ++c) {
        if (c > 0)
            out += ',';
        appendU64(out, p.causeCycles[c]);
    }
    out += "],";
    appendKey(out, "dq_depth");
    appendHistogram(out, p.dqDepth);
    out += ',';
    appendKey(out, "window_depth");
    appendHistogram(out, p.windowDepth);
    out += ',';
    appendKey(out, "store_queue_depth");
    appendHistogram(out, p.storeQueueDepth);
    out += ',';
    appendKey(out, "live");
    out += '[';
    for (int cls = 0; cls < kNumRegClasses; ++cls) {
        if (cls > 0)
            out += ',';
        out += '[';
        for (int level = 0; level < 4; ++level) {
            if (level > 0)
                out += ',';
            appendHistogram(out, p.live[cls][level]);
        }
        out += ']';
    }
    out += "]},";

    const DCacheStats &d = r.dcache;
    appendKey(out, "dcache");
    out += '{';
    const struct { const char *key; std::uint64_t value; } dfields[] = {
        {"loads", d.loads},
        {"load_misses", d.loadMisses},
        {"load_merges", d.loadMerges},
        {"stores_buffered", d.storesBuffered},
        {"store_hits", d.storeHits},
        {"fetches_cancelled", d.fetchesCancelled},
        {"mshr_rejections", d.mshrRejections},
    };
    for (std::size_t i = 0; i < std::size(dfields); ++i) {
        if (i > 0)
            out += ',';
        appendKey(out, dfields[i].key);
        appendU64(out, dfields[i].value);
    }
    out += "},";

    appendKey(out, "icache_accesses");
    appendU64(out, r.icacheAccesses);
    out += ',';
    appendKey(out, "icache_misses");
    appendU64(out, r.icacheMisses);
    out += ',';
    appendKey(out, "load_miss_rate");
    appendDouble(out, r.loadMissRate);
    out += ',';
    appendKey(out, "lifetime");
    out += '[';
    for (int cls = 0; cls < kNumRegClasses; ++cls) {
        if (cls > 0)
            out += ',';
        appendHistogram(out, r.lifetime[cls]);
    }
    out += "]}";
    return out;
}

SimResult
parsePointRecord(const json::Value &v)
{
    if (!v.isObject())
        fatal("point record: not a JSON object");
    const std::string expected =
        "drsim-point-v" + std::to_string(kPointRecordVersion);
    if (v.at("record").asString() != expected) {
        fatal("point record: version tag '",
              v.at("record").asString(), "' (want '", expected, "')");
    }

    SimResult r;
    r.workload = v.at("workload").asString();
    r.fpIntensive = v.at("fp_intensive").asBool();
    r.stopReason = stopReasonFromName(v.at("stop_reason").asString());

    const json::Value &sampled = v.at("sampled");
    SampledStats &sm = r.sampled;
    sm.enabled = sampled.at("enabled").asBool();
    sm.windows = sampled.at("windows").asU64();
    sm.fastForwarded = sampled.at("fast_forwarded").asU64();
    sm.warmupInsts = sampled.at("warmup_insts").asU64();
    sm.measuredInsts = sampled.at("measured_insts").asU64();
    sm.measuredCycles = sampled.at("measured_cycles").asU64();
    sm.ipcEstimate = sampled.at("ipc_estimate").asNumber();
    sm.ci95 = sampled.at("ci95").asNumber();

    const json::Value &proc = v.at("proc");
    ProcStats &p = r.proc;
    p.cycles = proc.at("cycles").asU64();
    p.committed = proc.at("committed").asU64();
    p.committedLoads = proc.at("committed_loads").asU64();
    p.committedStores = proc.at("committed_stores").asU64();
    p.committedCondBranches =
        proc.at("committed_cond_branches").asU64();
    p.executed = proc.at("executed").asU64();
    p.executedLoads = proc.at("executed_loads").asU64();
    p.executedStores = proc.at("executed_stores").asU64();
    p.executedCondBranches = proc.at("executed_cond_branches").asU64();
    p.mispredictedBranches = proc.at("mispredicted_branches").asU64();
    p.recoveries = proc.at("recoveries").asU64();
    p.squashedInsts = proc.at("squashed_insts").asU64();
    p.forwardedLoads = proc.at("forwarded_loads").asU64();
    p.insertStallNoRegCycles =
        proc.at("insert_stall_no_reg_cycles").asU64();
    p.insertStallDqFullCycles =
        proc.at("insert_stall_dq_full_cycles").asU64();
    p.noFreeRegCycles = proc.at("no_free_reg_cycles").asU64();
    p.fetchBlockedCycles = proc.at("fetch_blocked_cycles").asU64();
    p.writeBufferStallCycles =
        proc.at("write_buffer_stall_cycles").asU64();

    const json::Value &causes = proc.at("cause_cycles");
    if (int(causes.items().size()) != kNumCycleCauses) {
        fatal("point record: cause_cycles has ",
              causes.items().size(), " entries (want ",
              kNumCycleCauses, ")");
    }
    for (int c = 0; c < kNumCycleCauses; ++c)
        p.causeCycles[c] = causes.at(std::size_t(c)).asU64();

    p.dqDepth = parseHistogram(proc.at("dq_depth"));
    p.windowDepth = parseHistogram(proc.at("window_depth"));
    p.storeQueueDepth = parseHistogram(proc.at("store_queue_depth"));
    const json::Value &live = proc.at("live");
    if (int(live.items().size()) != kNumRegClasses)
        fatal("point record: live has ", live.items().size(),
              " register classes");
    for (int cls = 0; cls < kNumRegClasses; ++cls) {
        const json::Value &levels = live.at(std::size_t(cls));
        if (levels.items().size() != 4)
            fatal("point record: live[", cls, "] has ",
                  levels.items().size(), " levels (want 4)");
        for (int level = 0; level < 4; ++level) {
            p.live[cls][level] =
                parseHistogram(levels.at(std::size_t(level)));
        }
    }

    const json::Value &dcache = v.at("dcache");
    DCacheStats &d = r.dcache;
    d.loads = dcache.at("loads").asU64();
    d.loadMisses = dcache.at("load_misses").asU64();
    d.loadMerges = dcache.at("load_merges").asU64();
    d.storesBuffered = dcache.at("stores_buffered").asU64();
    d.storeHits = dcache.at("store_hits").asU64();
    d.fetchesCancelled = dcache.at("fetches_cancelled").asU64();
    d.mshrRejections = dcache.at("mshr_rejections").asU64();

    r.icacheAccesses = v.at("icache_accesses").asU64();
    r.icacheMisses = v.at("icache_misses").asU64();
    r.loadMissRate = v.at("load_miss_rate").asNumber();
    const json::Value &lifetime = v.at("lifetime");
    if (int(lifetime.items().size()) != kNumRegClasses)
        fatal("point record: lifetime has ",
              lifetime.items().size(), " register classes");
    for (int cls = 0; cls < kNumRegClasses; ++cls)
        r.lifetime[cls] = parseHistogram(lifetime.at(std::size_t(cls)));
    return r;
}

SimResult
parsePointRecord(const std::string &text)
{
    return parsePointRecord(json::parse(text));
}

} // namespace serve
} // namespace drsim
