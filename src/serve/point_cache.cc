#include "serve/point_cache.hh"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/disk_lru.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "serve/result_io.hh"
#include "workloads/digest.hh"
#include "workloads/program.hh"

namespace drsim {
namespace serve {

namespace {

/** Bump on any result-affecting simulator change (docs/SERVER.md).
 *  v2: sampled runs moved to the checkpoint-restored window-parallel
 *  driver (DESIGN.md §5j), which changes sampled statistics.
 *  v3: pluggable predictor backends + result-bus arbitration grew
 *  the stall taxonomy to 14 buckets (DESIGN.md §5k); pre-v3 records
 *  carry 13-entry cause_cycles vectors. */
constexpr const char *kBuiltinRev = "sim-v3";

} // namespace

std::string
pointCacheRev()
{
    const char *env = std::getenv("DRSIM_CACHE_REV");
    if (env != nullptr && env[0] != '\0')
        return env;
    return kBuiltinRev;
}

std::string
fnv1aHex(const std::string &text)
{
    return drsim::fnv1aHex(text); // workloads/digest.hh
}

std::string
programDigest(const Program &program)
{
    return drsim::programDigest(program); // workloads/digest.hh
}

std::string
pointKeyText(const PointKey &key, const std::string &rev)
{
    const CoreConfig &c = key.config;
    std::ostringstream os;
    const auto cacheLine = [&os](const char *name,
                                 const CacheConfig &cc) {
        os << name << "=size:" << cc.sizeBytes
           << ",assoc:" << cc.assoc << ",line:" << cc.lineBytes
           << ",hit:" << cc.hitLatency << ",miss:" << cc.missPenalty
           << ",mshrs:" << cc.maxOutstandingMisses
           << ",wb_entries:" << cc.writeBufferEntries
           << ",wb_drain:" << cc.writeBufferDrainCycles << "\n";
    };
    os << "drsim-point-v" << kPointRecordVersion << "\n"
       << "rev=" << rev << "\n"
       << "workload=" << key.workload << "\n"
       << "program_digest=" << key.digest << "\n"
       << "issue_width=" << c.issueWidth << "\n"
       << "dq_size=" << c.dqSize << "\n"
       << "num_phys_regs=" << c.numPhysRegs << "\n"
       << "exception_model=" << exceptionModelName(c.exceptionModel)
       << "\n"
       << "predictor=" << c.predictor << "\n"
       << "result_buses=" << c.resultBuses << "\n"
       << "cache_kind=" << cacheKindName(c.cacheKind) << "\n";
    cacheLine("dcache", c.dcache);
    cacheLine("icache", c.icache);
    os << "perfect_icache=" << int(c.perfectICache) << "\n"
       << "in_order_branches=" << int(c.inOrderBranches) << "\n"
       << "speculative_history_update="
       << int(c.speculativeHistoryUpdate) << "\n"
       << "store_to_load_forwarding="
       << int(c.storeToLoadForwarding) << "\n"
       << "split_dispatch_queues=" << int(c.splitDispatchQueues)
       << "\n"
       << "max_committed=" << c.maxCommitted << "\n"
       << "deadlock_cycles=" << c.deadlockCycles << "\n"
       << "audit_interval=" << c.auditInterval << "\n"
       << "collect_live_histograms=" << int(c.collectLiveHistograms)
       << "\n"
       << "collect_occupancy_histograms="
       << int(c.collectOccupancyHistograms) << "\n"
       << "sampling_interval=" << c.sampling.interval << "\n"
       << "sampling_window=" << c.sampling.window << "\n"
       << "sampling_warmup=" << c.sampling.warmup << "\n"
       << "sampling_warmff=" << c.sampling.warmff << "\n";
    return os.str();
}

PointCache::PointCache(std::string dir, std::string rev,
                       std::uint64_t max_bytes)
    : dir_(std::move(dir)), rev_(std::move(rev)),
      maxBytes_(max_bytes == ~std::uint64_t{0}
                    ? envU64("DRSIM_CACHE_MAX_BYTES", 0)
                    : max_bytes)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create cache directory '", dir_,
              "': ", ec.message());
    }
}

std::string
PointCache::pathFor(const std::string &hash) const
{
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash + ".json";
}

std::string
PointCache::entryPath(const PointKey &key) const
{
    return pathFor(fnv1aHex(pointKeyText(key, rev_)));
}

std::optional<SimResult>
PointCache::load(const PointKey &key)
{
    const std::string keyText = pointKeyText(key, rev_);
    const std::string path = pathFor(fnv1aHex(keyText));

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const auto corrupt = [&](const std::string &why) {
        warn("cache entry ", path, " is unusable (", why,
             "); recomputing");
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
        ++stats_.misses;
        return std::nullopt;
    };

    try {
        const json::Value doc = json::parse(text.str());
        if (!doc.isObject() ||
            doc.at("drsim_cache").asU64() != 1)
            return corrupt("not a v1 cache envelope");
        if (doc.at("key").asString() != keyText)
            return corrupt("key text mismatch (hash collision or "
                           "stale generator)");
        SimResult result = parsePointRecord(doc.at("result"));
        if (maxBytes_ != 0)
            touchFile(path); // mark recently-used for the LRU cap
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        return result;
    } catch (const FatalError &e) {
        return corrupt(e.what());
    }
}

void
PointCache::store(const PointKey &key, const SimResult &result)
{
    const std::string keyText = pointKeyText(key, rev_);
    const std::string hash = fnv1aHex(keyText);
    const std::string path = pathFor(hash);

    std::error_code ec;
    std::filesystem::create_directories(
        dir_ + "/" + hash.substr(0, 2), ec);
    if (ec) {
        fatal("cannot create cache fan-out directory for '", path,
              "': ", ec.message());
    }

    std::string envelope = "{\"drsim_cache\":1,\"computed_at_rev\":\"";
    envelope += json::escape(rev_);
    envelope += "\",\"key_hash\":\"" + hash + "\",\"key\":\"";
    envelope += json::escape(keyText);
    envelope += "\",\"result\":";
    envelope += pointRecordJson(result);
    envelope += "}\n";

    // Unique temp name per writer, then an atomic rename: readers
    // never observe a partial entry, and racing writers of the same
    // key both rename identical bytes into place.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open cache temp file '", tmp, "'");
        out << envelope;
        out.flush();
        if (!out)
            fatal("failed writing cache temp file '", tmp, "'");
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        fatal("cannot publish cache entry '", path,
              "': ", ec.message());
    }
    const std::uint64_t evicted =
        maxBytes_ != 0 ? enforceDirByteCap(dir_, maxBytes_) : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    stats_.evicted += evicted;
}

PointCache::Stats
PointCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace serve
} // namespace drsim
