#include "serve/point_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"
#include "serve/result_io.hh"
#include "workloads/program.hh"

namespace drsim {
namespace serve {

namespace {

/** Bump on any result-affecting simulator change (docs/SERVER.md). */
constexpr const char *kBuiltinRev = "sim-v1";

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1aStep(std::uint64_t h, std::uint64_t v)
{
    // Hash the eight bytes of v little-endian.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

std::string
pointCacheRev()
{
    const char *env = std::getenv("DRSIM_CACHE_REV");
    if (env != nullptr && env[0] != '\0')
        return env;
    return kBuiltinRev;
}

std::string
fnv1aHex(const std::string &text)
{
    std::uint64_t h = kFnvOffset;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
programDigest(const Program &program)
{
    std::uint64_t h = kFnvOffset;
    for (const BasicBlock &bb : program.blocks()) {
        // Block boundary marker so moving an instruction across a
        // block edge changes the digest even if the flat instruction
        // sequence does not.
        h = fnv1aStep(h, 0xb10cb10cb10cb10cull);
        for (const Instruction &inst : bb.insts) {
            h = fnv1aStep(h, static_cast<std::uint64_t>(inst.op));
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.dest.cls))
                           << 8) |
                              inst.dest.index);
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.src1.cls))
                           << 8) |
                              inst.src1.index);
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.src2.cls))
                           << 8) |
                              inst.src2.index);
            h = fnv1aStep(h, static_cast<std::uint64_t>(inst.imm));
            h = fnv1aStep(h, static_cast<std::uint64_t>(
                                 std::int64_t(inst.target)));
        }
    }
    // The initial data image, in address order (the source map is
    // unordered, which must not leak into the digest).
    const std::map<Addr, std::uint64_t> words(
        program.initialWords().begin(), program.initialWords().end());
    for (const auto &[addr, value] : words) {
        h = fnv1aStep(h, addr);
        h = fnv1aStep(h, value);
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
pointKeyText(const PointKey &key, const std::string &rev)
{
    const CoreConfig &c = key.config;
    std::ostringstream os;
    const auto cacheLine = [&os](const char *name,
                                 const CacheConfig &cc) {
        os << name << "=size:" << cc.sizeBytes
           << ",assoc:" << cc.assoc << ",line:" << cc.lineBytes
           << ",hit:" << cc.hitLatency << ",miss:" << cc.missPenalty
           << ",mshrs:" << cc.maxOutstandingMisses
           << ",wb_entries:" << cc.writeBufferEntries
           << ",wb_drain:" << cc.writeBufferDrainCycles << "\n";
    };
    os << "drsim-point-v" << kPointRecordVersion << "\n"
       << "rev=" << rev << "\n"
       << "workload=" << key.workload << "\n"
       << "program_digest=" << key.digest << "\n"
       << "issue_width=" << c.issueWidth << "\n"
       << "dq_size=" << c.dqSize << "\n"
       << "num_phys_regs=" << c.numPhysRegs << "\n"
       << "exception_model=" << exceptionModelName(c.exceptionModel)
       << "\n"
       << "cache_kind=" << cacheKindName(c.cacheKind) << "\n";
    cacheLine("dcache", c.dcache);
    cacheLine("icache", c.icache);
    os << "perfect_icache=" << int(c.perfectICache) << "\n"
       << "in_order_branches=" << int(c.inOrderBranches) << "\n"
       << "speculative_history_update="
       << int(c.speculativeHistoryUpdate) << "\n"
       << "store_to_load_forwarding="
       << int(c.storeToLoadForwarding) << "\n"
       << "split_dispatch_queues=" << int(c.splitDispatchQueues)
       << "\n"
       << "max_committed=" << c.maxCommitted << "\n"
       << "deadlock_cycles=" << c.deadlockCycles << "\n"
       << "audit_interval=" << c.auditInterval << "\n"
       << "collect_live_histograms=" << int(c.collectLiveHistograms)
       << "\n"
       << "collect_occupancy_histograms="
       << int(c.collectOccupancyHistograms) << "\n"
       << "sampling_interval=" << c.sampling.interval << "\n"
       << "sampling_window=" << c.sampling.window << "\n"
       << "sampling_warmup=" << c.sampling.warmup << "\n";
    return os.str();
}

PointCache::PointCache(std::string dir, std::string rev)
    : dir_(std::move(dir)), rev_(std::move(rev))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create cache directory '", dir_,
              "': ", ec.message());
    }
}

std::string
PointCache::pathFor(const std::string &hash) const
{
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash + ".json";
}

std::string
PointCache::entryPath(const PointKey &key) const
{
    return pathFor(fnv1aHex(pointKeyText(key, rev_)));
}

std::optional<SimResult>
PointCache::load(const PointKey &key)
{
    const std::string keyText = pointKeyText(key, rev_);
    const std::string path = pathFor(fnv1aHex(keyText));

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const auto corrupt = [&](const std::string &why) {
        warn("cache entry ", path, " is unusable (", why,
             "); recomputing");
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
        ++stats_.misses;
        return std::nullopt;
    };

    try {
        const json::Value doc = json::parse(text.str());
        if (!doc.isObject() ||
            doc.at("drsim_cache").asU64() != 1)
            return corrupt("not a v1 cache envelope");
        if (doc.at("key").asString() != keyText)
            return corrupt("key text mismatch (hash collision or "
                           "stale generator)");
        SimResult result = parsePointRecord(doc.at("result"));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        return result;
    } catch (const FatalError &e) {
        return corrupt(e.what());
    }
}

void
PointCache::store(const PointKey &key, const SimResult &result)
{
    const std::string keyText = pointKeyText(key, rev_);
    const std::string hash = fnv1aHex(keyText);
    const std::string path = pathFor(hash);

    std::error_code ec;
    std::filesystem::create_directories(
        dir_ + "/" + hash.substr(0, 2), ec);
    if (ec) {
        fatal("cannot create cache fan-out directory for '", path,
              "': ", ec.message());
    }

    std::string envelope = "{\"drsim_cache\":1,\"computed_at_rev\":\"";
    envelope += json::escape(rev_);
    envelope += "\",\"key_hash\":\"" + hash + "\",\"key\":\"";
    envelope += json::escape(keyText);
    envelope += "\",\"result\":";
    envelope += pointRecordJson(result);
    envelope += "}\n";

    // Unique temp name per writer, then an atomic rename: readers
    // never observe a partial entry, and racing writers of the same
    // key both rename identical bytes into place.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open cache temp file '", tmp, "'");
        out << envelope;
        out.flush();
        if (!out)
            fatal("failed writing cache temp file '", tmp, "'");
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        fatal("cannot publish cache entry '", path,
              "': ", ec.message());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
}

PointCache::Stats
PointCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace serve
} // namespace drsim
