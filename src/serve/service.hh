/**
 * @file
 * The sweep service: cached, coalesced, pooled point execution.
 *
 * This is the layer between the wire protocol (server.hh) and the
 * simulator: callers hand it points (PointKey + built workload) and a
 * callback; the service answers each point from the in-memory result
 * map, then the on-disk PointCache, and only then by scheduling a
 * simulation on its worker pool — while guaranteeing that identical
 * points requested concurrently (the thundering-herd case) cost
 * exactly one simulation.
 *
 * Coalescing state machine (per canonical key text; see DESIGN.md
 * §5g for the thread-safety argument):
 *
 *            requestPoint
 *                 |
 *      [memory map hit] --------> deliver(cacheHit) immediately
 *                 |
 *      [in-flight entry exists] -> append callback; deliver when the
 *                 |                owning task completes (coalesced)
 *                 v
 *      create in-flight entry, submit task to the pool
 *                 |
 *      task: disk-cache load  --hit--> publish + deliver(cacheHit)
 *                 |miss
 *      simulate(), cache.store(), publish + deliver(computed)
 *
 * "Publish" moves the result into the memory map and erases the
 * in-flight entry under the same lock, so every later request is a
 * memory hit and no request can fall between the two structures.
 * Callbacks are always invoked *outside* the service lock (they may
 * write to sockets or take their own locks) and exactly once.
 *
 * The memory map is deliberately eviction-free: a point record is a
 * few kilobytes, so even a hundred-thousand-point campaign stays in
 * the hundreds of megabytes, and serving "never simulate the same
 * point twice" from memory is the whole purpose of the daemon.
 */

#ifndef DRSIM_SERVE_SERVICE_HH
#define DRSIM_SERVE_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/thread_pool.hh"
#include "serve/point_cache.hh"

namespace drsim {
namespace serve {

/** What happened to one requested point. */
struct PointOutcome
{
    /** Empty on success; a FatalError message otherwise. */
    std::string error;
    SimResult result;
    /** Served from the memory map or the disk cache (no simulation
     *  ran for this delivery). */
    bool cacheHit = false;
    /** Rode on a computation another request had already started. */
    bool coalesced = false;
    /** Code version that produced the result (cache provenance). */
    std::string rev;

    bool ok() const { return error.empty(); }
};

using PointCallback = std::function<void(const PointOutcome &)>;

class SweepService
{
  public:
    /** @p jobs must already be resolved (resolveJobs); the pool size
     *  is fixed for the service's lifetime. */
    SweepService(std::string cacheDir, int jobs);
    ~SweepService();

    int jobs() const { return jobs_; }
    PointCache &cache() { return cache_; }

    /**
     * Request one point.  @p workload must be the built program the
     * key's digest was computed from; the shared_ptr keeps it alive
     * until the (possibly deferred) computation finishes.  @p cb is
     * invoked exactly once — inline on a memory hit, else on a worker
     * thread — and must not call back into requestPoint recursively
     * with unbounded depth (socket writes and queue pushes are the
     * intended use).
     */
    void requestPoint(const PointKey &key,
                      std::shared_ptr<const Workload> workload,
                      PointCallback cb);

    /** Synchronous convenience for tests and in-process callers. */
    PointOutcome runPoint(const PointKey &key,
                          const Workload &workload);

    struct Stats
    {
        std::uint64_t points = 0;      ///< requestPoint calls
        std::uint64_t memoryHits = 0;
        std::uint64_t diskHits = 0;
        std::uint64_t computed = 0;    ///< simulations actually run
        std::uint64_t coalesced = 0;   ///< waiters that shared a run
        std::uint64_t errors = 0;
        std::uint64_t inFlight = 0;    ///< points being computed now
    };
    Stats stats() const;

  private:
    struct InFlight
    {
        std::vector<PointCallback> waiters;
    };

    void completePoint(const std::string &keyText,
                       const PointKey &key,
                       const std::shared_ptr<const Workload> &workload);

    int jobs_;
    PointCache cache_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, SimResult> memory_;
    std::unordered_map<std::string, std::shared_ptr<InFlight>>
        inflight_;
    Stats stats_;
    /** Last member: destroying the pool drains queued tasks, which
     *  still touch every field above. */
    ThreadPool pool_;
};

} // namespace serve
} // namespace drsim

#endif // DRSIM_SERVE_SERVICE_HH
