/**
 * @file
 * Lossless serialization of one simulation result (the "point record",
 * `drsim-point-v2`).
 *
 * The sweep cache and the wire protocol both move *complete*
 * SimResult structures — every counter, every histogram — not just
 * the fields the schema-v2 exporter happens to print.  That is what
 * makes served results byte-identical to locally simulated ones: a
 * client that receives point records can reassemble the exact
 * ExperimentResult vector a direct run would have produced and feed
 * it through the same printers and the same resultsJson() emitter.
 *
 * The record is therefore a strict superset of the schema-v2
 * per-workload object (docs/RESULTS_SCHEMA.md): schema v2 carries
 * derived ratios and histogram summaries; the point record carries
 * the raw counters and full histogram count vectors they derive from.
 *
 * Round-trip guarantees:
 *  - integers are emitted verbatim (all counters here are far below
 *    2^53, the exactness limit of the double-backed JSON parser);
 *  - the single stored double (load_miss_rate) uses std::to_chars
 *    shortest form, which parses back to the identical bit pattern;
 *  - histograms serialize their dense count vectors; the trailing
 *    element is nonzero by construction, so the reconstructed extent
 *    matches exactly.
 *
 * parsePointRecord() is strict and reports any structural problem via
 * fatal() (a catchable FatalError) — the cache layer treats that as a
 * corrupt entry and falls back to recomputing.
 *
 * When SimResult/ProcStats/DCacheStats grow a field, this file must
 * follow and kPointRecordVersion must be bumped (which retires every
 * cached record); tests/test_serve.cc holds the round-trip line.
 */

#ifndef DRSIM_SERVE_RESULT_IO_HH
#define DRSIM_SERVE_RESULT_IO_HH

#include <string>

#include "common/json.hh"
#include "sim/simulator.hh"

namespace drsim {
namespace serve {

/** Version tag embedded in every record ("drsim-point-v2").
 *  v2 added the sampled-mode block (SimResult::sampled). */
constexpr int kPointRecordVersion = 2;

/** Serialize @p r to a compact, deterministic JSON object. */
std::string pointRecordJson(const SimResult &r);

/** Reconstruct a SimResult from a parsed record; fatal() on any
 *  missing field, type mismatch, or version mismatch. */
SimResult parsePointRecord(const json::Value &v);

/** Convenience: parse @p text then reconstruct. */
SimResult parsePointRecord(const std::string &text);

} // namespace serve
} // namespace drsim

#endif // DRSIM_SERVE_RESULT_IO_HH
