#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <tuple>
#include <utility>

#include "bpred/predictor.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/config_check.hh"
#include "exp/registry.hh"
#include "exp/spec_file.hh"
#include "serve/result_io.hh"
#include "sim/ckpt_store.hh"
#include "sim/runner.hh"

namespace drsim {
namespace serve {

namespace {

/** Requests larger than this are hostile or broken, not sweeps. */
constexpr std::size_t kMaxLineBytes = std::size_t(4) << 20;

void
logLine(std::uint64_t connId, const std::string &msg)
{
    std::fprintf(stderr, "[drsim_serve] conn %llu: %s\n",
                 static_cast<unsigned long long>(connId), msg.c_str());
}

/** `"id":"...",` when the request carried an id, else empty. */
std::string
idField(const std::string &id)
{
    if (id.empty())
        return "";
    return "\"id\":\"" + json::escape(id) + "\",";
}

std::string
u64Field(const char *key, std::uint64_t v)
{
    return std::string("\"") + key + "\":" + std::to_string(v);
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.cacheDir, opts_.jobs)
{
}

Server::~Server()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int i = 0; i < 2; ++i) {
        if (stopPipe_[i] >= 0)
            ::close(stopPipe_[i]);
    }
    std::lock_guard<std::mutex> lock(connMutex_);
    for (Connection &conn : connections_) {
        if (conn.thread.joinable())
            conn.thread.join();
    }
}

int
Server::start()
{
    if (::pipe(stopPipe_) != 0)
        fatal("pipe: ", std::strerror(errno));

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1)
        fatal("not an IPv4 address: '", opts_.host, "'");
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("cannot bind ", opts_.host, ":", opts_.port, ": ",
              std::strerror(errno));
    }
    if (::listen(listenFd_, 64) != 0)
        fatal("listen: ", std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        fatal("getsockname: ", std::strerror(errno));
    port_ = int(ntohs(addr.sin_port));
    started_ = std::chrono::steady_clock::now();

    std::fprintf(stderr, "[drsim_serve] listening on %s:%d\n",
                 opts_.host.c_str(), port_);
    std::fprintf(stderr,
                 "[drsim_serve] worker pool: %d jobs (DRSIM_JOBS is "
                 "read once at startup; per-request \"jobs\" is "
                 "rejected)\n",
                 service_.jobs());
    std::fprintf(stderr, "[drsim_serve] cache: %s (rev %s)\n",
                 service_.cache().dir().c_str(),
                 service_.cache().rev().c_str());
    return port_;
}

void
Server::serve()
{
    while (!stopping_.load()) {
        pollfd fds[2] = {
            {listenFd_, POLLIN, 0},
            {stopPipe_[0], POLLIN, 0},
        };
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("poll: ", std::strerror(errno));
        }
        if (fds[1].revents != 0 || stopping_.load())
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("accept: ", std::strerror(errno));
            continue;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        const std::uint64_t connId = nextConnId_++;
        ++connectionsTotal_;
        Connection conn;
        conn.fd = fd;
        conn.done = std::make_shared<std::atomic<bool>>(false);
        conn.thread = std::thread([this, fd, connId] {
            connectionLoop(fd, connId);
        });
        connections_.push_back(std::move(conn));
        reapFinished();
    }

    // Drain: stop accepting, half-close every client for reading so
    // its read loop ends after the request it is serving, then join.
    ::close(listenFd_);
    listenFd_ = -1;
    std::vector<Connection> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(connections_);
    }
    for (Connection &conn : conns)
        ::shutdown(conn.fd, SHUT_RD);
    for (Connection &conn : conns)
        conn.thread.join();
    std::fprintf(stderr,
                 "[drsim_serve] shut down after %llu connections, "
                 "%llu requests\n",
                 static_cast<unsigned long long>(
                     connectionsTotal_.load()),
                 static_cast<unsigned long long>(requests_.load()));
}

void
Server::requestStop()
{
    stopping_.store(true);
    const char byte = 'x';
    // Async-signal-safe; the return value only tells us the pipe is
    // already full of stop requests, which is itself a stop request.
    (void)!::write(stopPipe_[1], &byte, 1);
}

void
Server::reapFinished()
{
    // Caller holds connMutex_.
    for (std::size_t i = 0; i < connections_.size();) {
        if (connections_[i].done->load()) {
            connections_[i].thread.join();
            connections_[i] = std::move(connections_.back());
            connections_.pop_back();
        } else {
            ++i;
        }
    }
}

void
Server::connectionLoop(int fd, std::uint64_t connId)
{
    logLine(connId, "connected");
    std::shared_ptr<std::atomic<bool>> done;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (Connection &conn : connections_) {
            if (conn.fd == fd)
                done = conn.done;
        }
    }

    std::string buffer;
    char chunk[65536];
    bool open = true;
    bool orderly = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            // A signal landing on this thread (the server installs
            // SIGINT/SIGTERM handlers for its drain) interrupts recv
            // without ending the connection — retry, don't drop a
            // client mid-request.
            if (errno == EINTR)
                continue;
            logLine(connId, std::string("recv error: ") +
                                std::strerror(errno));
            orderly = false;
            break;
        }
        if (n == 0)
            break; // orderly shutdown from the peer
        buffer.append(chunk, std::size_t(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(fd, connId, line);
        }
        buffer.erase(0, start);
        if (buffer.size() > kMaxLineBytes) {
            sendError(fd, "", "line-too-long",
                      "request line exceeds 4 MiB");
            open = false;
        }
    }
    ::close(fd);
    logLine(connId, orderly ? "disconnected" : "closed after error");
    if (done)
        done->store(true);
}

void
Server::interruptConnectionsForTest(int signo)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (Connection &conn : connections_) {
        if (!conn.done->load())
            ::pthread_kill(conn.thread.native_handle(), signo);
    }
}

bool
Server::sendLine(int fd, const std::string &reply)
{
    std::string data = reply;
    data += '\n';
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += std::size_t(n);
    }
    return true;
}

bool
Server::sendError(int fd, const std::string &id, const char *code,
                  const std::string &message)
{
    ++requestErrors_;
    return sendLine(fd, "{\"reply\":\"error\"," + idField(id) +
                            "\"code\":\"" + code +
                            "\",\"message\":\"" +
                            json::escape(message) + "\"}");
}

void
Server::handleLine(int fd, std::uint64_t connId,
                   const std::string &line)
{
    ++requests_;
    json::Value req;
    try {
        req = json::parse(line);
    } catch (const FatalError &e) {
        logLine(connId, std::string("bad json: ") + e.what());
        sendError(fd, "", "bad-json", e.what());
        return;
    }
    if (!req.isObject()) {
        sendError(fd, "", "bad-request",
                  "request must be a JSON object");
        return;
    }
    std::string id;
    if (const json::Value *v = req.find("id");
        v != nullptr && v->isString())
        id = v->asString();

    const json::Value *verb = req.find("verb");
    if (verb == nullptr || !verb->isString()) {
        sendError(fd, id, "bad-request",
                  "request has no \"verb\" string");
        return;
    }

    try {
        if (verb->asString() == "ping") {
            sendLine(fd, "{\"reply\":\"pong\"," + idField(id) +
                             "\"server\":\"drsim_serve\"}");
        } else if (verb->asString() == "stats") {
            handleStats(fd);
        } else if (verb->asString() == "run") {
            handleRun(fd, connId, req, id);
        } else {
            sendError(fd, id, "unknown-verb",
                      "unknown verb '" + verb->asString() + "'");
        }
    } catch (const FatalError &e) {
        // Nothing the protocol layer throws for should cost the
        // client its connection; report and read the next request.
        logLine(connId, std::string("request failed: ") + e.what());
        sendError(fd, id, "bad-request", e.what());
    }
}

void
Server::handleStats(int fd)
{
    const SweepService::Stats s = service_.stats();
    const PointCache::Stats c = service_.cache().stats();
    const double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started_)
            .count();
    char uptimeBuf[32];
    std::snprintf(uptimeBuf, sizeof(uptimeBuf), "%.3f", uptime);

    std::string out = "{\"reply\":\"stats\",";
    out += "\"uptime_seconds\":";
    out += uptimeBuf;
    out += ",";
    out += u64Field("jobs", std::uint64_t(service_.jobs())) + ",";
    out += "\"rev\":\"" + json::escape(service_.cache().rev()) +
           "\",";
    out += "\"cache_dir\":\"" +
           json::escape(service_.cache().dir()) + "\",";
    out += u64Field("connections", connectionsTotal_.load()) + ",";
    out += u64Field("requests", requests_.load()) + ",";
    out += u64Field("request_errors", requestErrors_.load()) + ",";
    out += u64Field("points", s.points) + ",";
    out += u64Field("memory_hits", s.memoryHits) + ",";
    out += u64Field("disk_hits", s.diskHits) + ",";
    out += u64Field("computed", s.computed) + ",";
    out += u64Field("coalesced", s.coalesced) + ",";
    out += u64Field("in_flight", s.inFlight) + ",";
    out += u64Field("point_errors", s.errors) + ",";
    out += u64Field("cache_hits", c.hits) + ",";
    out += u64Field("cache_misses", c.misses) + ",";
    out += u64Field("cache_corrupt", c.corrupt) + ",";
    out += u64Field("cache_stores", c.stores) + ",";
    out += u64Field("cache_evicted", c.evicted) + ",";
    const CkptStore::Stats k = ckptLibrary().stats();
    out += u64Field("ckpt_hits", k.hits) + ",";
    out += u64Field("ckpt_misses", k.misses) + ",";
    out += u64Field("ckpt_corrupt", k.corrupt) + ",";
    out += u64Field("ckpt_stores", k.stores) + ",";
    out += u64Field("ckpt_evicted", k.evicted) + ",";
    out += u64Field("ckpt_generated", k.generated) + ",";
    out += u64Field("ckpt_coalesced", k.coalesced) + ",";
    out += u64Field("ckpt_memory_hits", k.memoryHits);
    out += "}";
    sendLine(fd, out);
}

void
Server::handleRun(int fd, std::uint64_t connId,
                  const json::Value &req, const std::string &id)
{
    // Strict key validation: a typoed knob silently ignored would
    // quietly serve the wrong sweep.  "jobs" gets its own error —
    // the pool is sized once at startup, by design (docs/SERVER.md).
    for (const auto &[key, value] : req.members()) {
        (void)value;
        if (key == "jobs") {
            sendError(fd, id, "jobs-not-allowed",
                      "the worker pool is sized once at daemon "
                      "startup (DRSIM_JOBS); per-request job counts "
                      "are not accepted");
            return;
        }
        if (key != "verb" && key != "id" && key != "experiment" &&
            key != "spec" && key != "scale" &&
            key != "max_committed" && key != "sampling" &&
            key != "predictor" && key != "result_buses" &&
            key != "document") {
            sendError(fd, id, "bad-request",
                      "unknown request key '" + key + "'");
            return;
        }
    }

    exp::RunContext ctx;
    ctx.scale = opts_.scale;
    ctx.maxCommitted = opts_.maxCommitted;
    ctx.jobs = service_.jobs();
    if (const json::Value *v = req.find("scale")) {
        ctx.scale = int(v->asU64());
        if (ctx.scale < 1) {
            sendError(fd, id, "bad-request", "scale must be >= 1");
            return;
        }
    }
    if (const json::Value *v = req.find("max_committed"))
        ctx.maxCommitted = v->asU64();
    if (const json::Value *v = req.find("sampling")) {
        if (!v->isObject()) {
            sendError(fd, id, "bad-request",
                      "\"sampling\" must be an object with interval/"
                      "window/warmup");
            return;
        }
        for (const auto &[key, value] : v->members()) {
            (void)value;
            if (key != "interval" && key != "window" &&
                key != "warmup" && key != "warmff") {
                sendError(fd, id, "bad-request",
                          "unknown sampling key '" + key + "'");
                return;
            }
        }
        SamplingConfig sc;
        sc.interval = v->at("interval").asU64();
        sc.window = v->at("window").asU64();
        sc.warmup = v->at("warmup").asU64();
        if (const json::Value *w = v->find("warmff"))
            sc.warmff = w->asU64();
        if (sc.interval == 0 || sc.window == 0 ||
            sc.interval <= sc.warmup + sc.window) {
            sendError(fd, id, "bad-request",
                      "infeasible sampling parameters: interval must "
                      "exceed warmup + window (all nonzero)");
            return;
        }
        ctx.sampling = sc;
    }
    if (const json::Value *v = req.find("predictor")) {
        if (!v->isString() || !knownPredictor(v->asString())) {
            sendError(fd, id, "bad-request",
                      "\"predictor\" must be one of " +
                          predictorSpecList());
            return;
        }
        ctx.predictor = v->asString();
    }
    if (const json::Value *v = req.find("result_buses")) {
        ctx.resultBuses = int(v->asU64());
        if (ctx.resultBuses < 0) {
            sendError(fd, id, "bad-request",
                      "result_buses must be >= 0 (0 = unlimited)");
            return;
        }
    }
    bool document = false;
    if (const json::Value *v = req.find("document"))
        document = v->asBool();

    const json::Value *expName = req.find("experiment");
    const json::Value *specDoc = req.find("spec");
    if ((expName == nullptr) == (specDoc == nullptr)) {
        sendError(fd, id, "bad-request",
                  "run takes exactly one of \"experiment\" and "
                  "\"spec\"");
        return;
    }

    std::string runName;
    std::vector<ExperimentSpec> specs;
    auto suite = std::make_shared<std::vector<Workload>>();
    if (expName != nullptr) {
        const exp::ExperimentDef *def =
            exp::findExperiment(expName->asString());
        if (def == nullptr) {
            sendError(fd, id, "unknown-experiment",
                      "unknown experiment '" + expName->asString() +
                          "'");
            return;
        }
        if (def->run != nullptr) {
            sendError(fd, id, "custom-experiment",
                      "experiment '" + expName->asString() +
                          "' is a custom harness; only grid "
                          "experiments can be served");
            return;
        }
        runName = def->name;
        try {
            // expandExperiment screens every point through
            // requireFeasibleConfig; a request-level sampling or
            // budget override can make a stock grid infeasible.
            specs = exp::expandExperiment(*def, ctx);
        } catch (const FatalError &e) {
            sendError(fd, id, "infeasible-config", e.what());
            return;
        }
        *suite = exp::buildSuite(*def, ctx);
    } else {
        if (!specDoc->isObject()) {
            sendError(fd, id, "bad-spec",
                      "\"spec\" must be a sweep-spec object");
            return;
        }
        exp::SweepSpec spec;
        try {
            spec = exp::parseSweepSpec(json::serialize(*specDoc));
        } catch (const FatalError &e) {
            sendError(fd, id, "bad-spec", e.what());
            return;
        }
        runName = spec.name;
        specs = exp::expandGrid(exp::toGrid(spec));
        try {
            for (ExperimentSpec &s : specs) {
                s.config.maxCommitted = ctx.maxCommitted;
                s.config.sampling = ctx.sampling;
                if (!ctx.predictor.empty())
                    s.config.predictor = ctx.predictor;
                if (ctx.resultBuses >= 0)
                    s.config.resultBuses = ctx.resultBuses;
                requireFeasibleConfig(s.config,
                                      spec.name + "/" + s.name);
            }
        } catch (const FatalError &e) {
            sendError(fd, id, "infeasible-config", e.what());
            return;
        }
        *suite = spec.suite == "classic"
                     ? exp::classicWorkloads()
                     : buildSpec92Suite(ctx.scale);
    }

    const std::size_t numSpecs = specs.size();
    const std::size_t numWl = suite->size();
    const std::size_t numPoints = numSpecs * numWl;
    logLine(connId, "run " + runName + " scale=" +
                        std::to_string(ctx.scale) + " points=" +
                        std::to_string(numPoints));
    const auto runStart = std::chrono::steady_clock::now();

    std::vector<std::string> digests;
    digests.reserve(numWl);
    for (const Workload &w : *suite)
        digests.push_back(programDigest(w.program));

    sendLine(fd, "{\"reply\":\"ack\"," + idField(id) +
                     "\"run\":\"" + json::escape(runName) + "\"," +
                     u64Field("specs", numSpecs) + "," +
                     u64Field("workloads", numWl) + "," +
                     u64Field("points", numPoints) + "," +
                     u64Field("scale", std::uint64_t(ctx.scale)) +
                     "," +
                     u64Field("max_committed", ctx.maxCommitted) +
                     "}");

    // Stream each point as it completes.  The callbacks only queue;
    // this thread does all socket writes, so replies never interleave.
    struct Progress
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::tuple<std::size_t, std::size_t, PointOutcome>>
            ready;
    };
    auto progress = std::make_shared<Progress>();
    for (std::size_t si = 0; si < numSpecs; ++si) {
        for (std::size_t wi = 0; wi < numWl; ++wi) {
            PointKey key;
            key.config = specs[si].config;
            key.workload = (*suite)[wi].spec->name;
            key.digest = digests[wi];
            std::shared_ptr<const Workload> wl(suite,
                                               &(*suite)[wi]);
            service_.requestPoint(
                key, wl,
                [progress, si, wi](const PointOutcome &outcome) {
                    std::lock_guard<std::mutex> lock(progress->m);
                    progress->ready.emplace_back(si, wi, outcome);
                    progress->cv.notify_one();
                });
        }
    }

    // Collected even when no document was requested: a point record
    // is small and this keeps the drain loop branch-free.
    std::vector<std::vector<SimResult>> grid(numSpecs);
    for (auto &row : grid)
        row.resize(numWl);
    std::uint64_t cacheHits = 0, computed = 0, coalesced = 0;
    std::string firstError;
    bool writable = true;
    for (std::size_t got = 0; got < numPoints; ++got) {
        std::tuple<std::size_t, std::size_t, PointOutcome> item;
        {
            std::unique_lock<std::mutex> lock(progress->m);
            progress->cv.wait(lock,
                              [&] { return !progress->ready.empty(); });
            item = std::move(progress->ready.front());
            progress->ready.pop_front();
        }
        const auto &[si, wi, outcome] = item;
        if (!outcome.ok()) {
            if (firstError.empty())
                firstError = outcome.error;
            continue;
        }
        grid[si][wi] = outcome.result;
        if (outcome.cacheHit)
            ++cacheHits;
        else if (!outcome.coalesced)
            ++computed;
        if (outcome.coalesced)
            ++coalesced;
        if (!writable)
            continue;
        std::string reply = "{\"reply\":\"point\"," + idField(id) +
                            "\"spec\":\"" +
                            json::escape(specs[si].name) +
                            "\",\"workload\":\"" +
                            json::escape((*suite)[wi].spec->name) +
                            "\",\"cache_hit\":";
        reply += outcome.cacheHit ? "true" : "false";
        reply += ",\"coalesced\":";
        reply += outcome.coalesced ? "true" : "false";
        reply += ",\"computed_at_rev\":\"" +
                 json::escape(outcome.rev) + "\",\"result\":";
        reply += pointRecordJson(outcome.result);
        reply += "}";
        writable = sendLine(fd, reply);
    }

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - runStart)
            .count();
    char secondsBuf[32];
    std::snprintf(secondsBuf, sizeof(secondsBuf), "%.3f", seconds);

    if (!firstError.empty()) {
        logLine(connId, "run " + runName + " failed: " + firstError);
        sendError(fd, id, "sim-failed", firstError);
        return;
    }

    if (document && writable) {
        std::vector<ExperimentResult> results;
        results.reserve(numSpecs);
        for (std::size_t si = 0; si < numSpecs; ++si) {
            results.push_back(ExperimentResult{
                specs[si], SuiteResult(std::move(grid[si]))});
        }
        const RunInfo info{runName, ctx.scale, ctx.maxCommitted};
        writable = sendLine(
            fd, "{\"reply\":\"document\"," + idField(id) +
                    "\"name\":\"" + json::escape(runName) +
                    "\",\"json\":\"" +
                    json::escape(resultsJson(info, results)) +
                    "\"}");
    }

    if (writable) {
        sendLine(fd, "{\"reply\":\"done\"," + idField(id) +
                         "\"run\":\"" + json::escape(runName) +
                         "\"," + u64Field("points", numPoints) + "," +
                         u64Field("cache_hits", cacheHits) + "," +
                         u64Field("computed", computed) + "," +
                         u64Field("coalesced", coalesced) +
                         ",\"seconds\":" + secondsBuf + "}");
    }
    logLine(connId, "run " + runName + " done: " +
                        std::to_string(numPoints) + " points, " +
                        std::to_string(cacheHits) + " cache hits, " +
                        std::to_string(computed) + " computed, " +
                        std::to_string(coalesced) + " coalesced, " +
                        secondsBuf + "s");
}

} // namespace serve
} // namespace drsim
