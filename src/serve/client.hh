/**
 * @file
 * Client side of the drsim_serve protocol (docs/SERVER.md): the
 * plumbing behind `drsim_bench --server HOST:PORT`.
 *
 * The design constraint is byte-identity: a sweep served from the
 * daemon must produce the same stdout tables and the same schema-v2
 * artifact as a direct local run.  The client therefore does *not*
 * print anything the server sends; it expands the experiment grid and
 * workload order locally (same code, same binary), reassembles the
 * streamed point records into the exact ExperimentResult vector a
 * local run would have built, and feeds it through the same print()
 * hooks and the same emitResults() path.  Everything the server adds
 * (cache provenance, progress) goes to stderr.
 */

#ifndef DRSIM_SERVE_CLIENT_HH
#define DRSIM_SERVE_CLIENT_HH

#include <optional>
#include <string>

#include "common/json.hh"
#include "exp/registry.hh"
#include "exp/spec_file.hh"

namespace drsim {
namespace serve {

/** One NDJSON connection to a drsim_serve daemon. */
class ServeClient
{
  public:
    /** Connect to "HOST:PORT" (IPv4); fatal() on refusal. */
    explicit ServeClient(const std::string &hostPort);
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Send one request line; fatal() on a broken connection. */
    void sendLine(const std::string &line);

    /** Next reply line, or std::nullopt at EOF. */
    std::optional<std::string> readLine();

    /** readLine() + parse; fatal() on EOF or malformed JSON. */
    json::Value readReply();

  private:
    int fd_ = -1;
    std::string buffer_;
};

/**
 * Run a registered grid experiment through the daemon, reproducing
 * the local runExperiment() stdout and artifacts exactly.  Returns a
 * process exit code (2 for custom experiments, which cannot be
 * served).
 */
int runExperimentViaServer(const exp::ExperimentDef &def,
                           const exp::RunContext &ctx,
                           const std::string &hostPort);

/** Sweep-spec counterpart, mirroring runSweepSpec(). */
int runSweepSpecViaServer(const exp::SweepSpec &spec,
                          const exp::RunContext &ctx,
                          const std::string &hostPort);

/** Print the daemon's stats reply (raw JSON line) to stdout. */
int printServerStats(const std::string &hostPort);

} // namespace serve
} // namespace drsim

#endif // DRSIM_SERVE_CLIENT_HH
