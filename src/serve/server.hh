/**
 * @file
 * The drsim_serve TCP front end: a newline-delimited JSON protocol
 * over a plain socket (docs/SERVER.md is the normative wire spec).
 *
 * One thread accepts connections; each connection gets its own thread
 * that reads requests line by line and streams replies.  All actual
 * simulation work happens on the SweepService's worker pool, so a
 * connection thread is only ever parsing, formatting, and blocking on
 * socket I/O — many concurrent clients share one pool and one cache,
 * which is precisely what makes identical concurrent sweeps coalesce.
 *
 * Shutdown is cooperative: requestStop() (async-signal-safe, the
 * SIGINT/SIGTERM handlers call it) pokes a self-pipe; the accept loop
 * wakes, stops accepting, half-closes every client socket for reading
 * (shutdown(SHUT_RD)), and joins the connection threads.  A
 * connection that is mid-run finishes streaming its replies before
 * its read loop sees EOF — in-flight work drains, nothing is killed.
 */

#ifndef DRSIM_SERVE_SERVER_HH
#define DRSIM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "serve/service.hh"
#include "workloads/kernels.hh"

namespace drsim {
namespace serve {

struct ServerOptions
{
    /** Bind address; loopback by default (the protocol is
     *  unauthenticated — see docs/SERVER.md before widening). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (reported by start()). */
    int port = 0;
    /** Point-cache directory. */
    std::string cacheDir = "drsim-cache";
    /** Worker-pool size; must already be resolved (resolveJobs). */
    int jobs = 1;
    /** Default workload scale for run requests that omit "scale". */
    int scale = kDefaultSuiteScale;
    /** Default committed-instruction cap ("max_committed"). */
    std::uint64_t maxCommitted = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind and listen; logs the endpoint and the effective pool
     *  size; returns the bound port.  fatal() on bind failure. */
    int start();

    /** Accept loop; blocks until requestStop(), then drains. */
    void serve();

    /** Stop serving.  Async-signal-safe (one write() to a pipe);
     *  callable from any thread or signal handler, idempotent. */
    void requestStop();

    /** Testing hook: deliver @p signo to every live connection
     *  thread (pthread_kill), exercising the EINTR paths of the
     *  connection read loop deterministically. */
    void interruptConnectionsForTest(int signo);

    int port() const { return port_; }
    SweepService &service() { return service_; }

  private:
    struct Connection
    {
        std::thread thread;
        int fd;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void connectionLoop(int fd, std::uint64_t connId);
    void handleLine(int fd, std::uint64_t connId,
                    const std::string &line);
    void handleRun(int fd, std::uint64_t connId,
                   const json::Value &req, const std::string &id);
    void handleStats(int fd);
    /** Best-effort write of @p reply + '\n'; false when the peer is
     *  gone (callers keep draining but stop writing). */
    bool sendLine(int fd, const std::string &reply);
    bool sendError(int fd, const std::string &id, const char *code,
                   const std::string &message);
    void reapFinished();

    ServerOptions opts_;
    SweepService service_;
    int listenFd_ = -1;
    int port_ = 0;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    std::chrono::steady_clock::time_point started_{};

    std::mutex connMutex_;
    std::vector<Connection> connections_;
    std::uint64_t nextConnId_ = 0;
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> requestErrors_{0};
    std::atomic<std::uint64_t> connectionsTotal_{0};
};

} // namespace serve
} // namespace drsim

#endif // DRSIM_SERVE_SERVER_HH
