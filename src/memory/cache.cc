#include "memory/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace drsim {

const char *
cacheKindName(CacheKind kind)
{
    switch (kind) {
      case CacheKind::Perfect:
        return "perfect";
      case CacheKind::Lockup:
        return "lockup";
      case CacheKind::LockupFree:
        return "lockup-free";
    }
    return "?";
}

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("cache line size must be a power of two");
    if (assoc == 0)
        fatal("cache associativity must be positive");
    if (sizeBytes % (lineBytes * assoc) != 0)
        fatal("cache size must be a multiple of lineBytes * assoc");
    const std::uint32_t sets = sizeBytes / (lineBytes * assoc);
    if ((sets & (sets - 1)) != 0)
        fatal("cache set count must be a power of two");
}

DataCache::DataCache(CacheKind kind, const CacheConfig &config)
    : kind_(kind), config_(config)
{
    config_.validate();
    numSets_ = config_.sizeBytes / (config_.lineBytes * config_.assoc);
    lines_.resize(std::size_t(numSets_) * config_.assoc);
}

std::uint32_t
DataCache::setOf(Addr addr) const
{
    return std::uint32_t(addr / config_.lineBytes) & (numSets_ - 1);
}

Addr
DataCache::tagOf(Addr addr) const
{
    return addr / config_.lineBytes / numSets_;
}

DataCache::Line *
DataCache::findLine(Addr addr)
{
    const std::uint32_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[std::size_t(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

std::uint32_t
DataCache::victimWay(std::uint32_t set) const
{
    const Line *base = &lines_[std::size_t(set) * config_.assoc];
    std::uint32_t victim = config_.assoc; // "none eligible"
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].fetchId >= 0)
            continue; // never evict a line that is mid-fill
        if (!base[w].valid)
            return w;
        if (victim == config_.assoc ||
            base[w].lastUsed < base[victim].lastUsed) {
            victim = w;
        }
    }
    return victim;
}

void
DataCache::pruneFetches(Cycle now)
{
    for (auto f = fetches_.begin(); f != fetches_.end();) {
        if (f->second.fillAt <= now) {
            if (f->second.way != config_.assoc) {
                Line &line =
                    lines_[std::size_t(f->second.set) * config_.assoc +
                           f->second.way];
                if (line.fetchId == f->second.id)
                    line.fetchId = -1;
            }
            f = fetches_.erase(f);
        } else {
            ++f;
        }
    }
}

bool
DataCache::loadCanIssue(Cycle now) const
{
    if (kind_ != CacheKind::Lockup)
        return true;
    return now >= lockupBusyUntil_;
}

LoadResult
DataCache::load(Addr addr, Cycle now, InstUid uid)
{
    ++stats_.loads;
    LoadResult res;

    if (kind_ == CacheKind::Perfect) {
        res.hit = true;
        res.readyCycle = now + hitUseLatency();
        return res;
    }

    pruneFetches(now);

    if (Line *line = findLine(addr)) {
        line->lastUsed = now;
        if (line->validFrom <= now) {
            res.hit = true;
            res.readyCycle = now + hitUseLatency();
            return res;
        }
        // Block is being fetched right now.
        if (kind_ == CacheKind::LockupFree && line->fetchId >= 0) {
            auto &fetch = fetches_.at(line->fetchId);
            fetch.waiters.push_back(uid);
            ++stats_.loadMerges;
            res.merged = true;
            res.fetchId = line->fetchId;
            res.readyCycle = std::max(fetch.fillAt + 1,
                                      now + hitUseLatency());
            return res;
        }
        // A lockup cache never exposes an in-flight line (no other
        // load can issue while the miss is outstanding), but guard
        // against it anyway.
        DRSIM_PANIC("probe of in-flight line in ", cacheKindName(kind_),
                    " cache");
    }

    // Miss: start a block fetch.
    if (kind_ == CacheKind::Lockup && now < lockupBusyUntil_)
        DRSIM_PANIC("lockup cache accepted a load while busy");

    if (config_.maxOutstandingMisses != 0 &&
        fetches_.size() >= config_.maxOutstandingMisses) {
        // Every MSHR is in use: refuse the load (extension knob; the
        // paper's inverted MSHR never rejects).
        --stats_.loads;
        ++stats_.mshrRejections;
        res.accepted = false;
        return res;
    }

    ++stats_.loadMisses;
    const Cycle fill_at = now + config_.hitLatency + config_.missPenalty;
    const std::uint32_t set = setOf(addr);
    const std::uint32_t way = victimWay(set);
    Fetch fetch;
    fetch.id = nextFetchId_++;
    fetch.set = set;
    fetch.way = way;
    fetch.fillAt = fill_at;
    fetch.waiters.push_back(uid);
    if (way != config_.assoc) {
        Line &line = lines_[std::size_t(set) * config_.assoc + way];
        line.valid = true;
        line.tag = tagOf(addr);
        line.validFrom = fill_at;
        line.lastUsed = now;
        line.fetchId = fetch.id;
    }
    // else: every way of the set is mid-fill; the block is delivered
    // to its destination registers only (inverted-MSHR style) and not
    // written into the array.
    res.fetchId = fetch.id;
    fetches_.emplace(fetch.id, std::move(fetch));
    res.readyCycle = fill_at + 1;

    if (kind_ == CacheKind::Lockup)
        lockupBusyUntil_ = fill_at;
    return res;
}

void
DataCache::drainWriteBuffer(Cycle now)
{
    if (config_.writeBufferEntries == 0 || wbOccupancy_ == 0)
        return;
    const Cycle elapsed = now > wbLastDrain_ ? now - wbLastDrain_ : 0;
    const Cycle drained = elapsed / config_.writeBufferDrainCycles;
    if (drained == 0)
        return;
    const std::uint32_t n =
        std::uint32_t(std::min<Cycle>(drained, wbOccupancy_));
    wbOccupancy_ -= n;
    wbLastDrain_ += Cycle(n) * config_.writeBufferDrainCycles;
}

bool
DataCache::storeCanCommit(Cycle now)
{
    if (config_.writeBufferEntries == 0)
        return true; // the paper's free, bandwidth-less buffer
    drainWriteBuffer(now);
    return wbOccupancy_ < config_.writeBufferEntries;
}

void
DataCache::storeCommit(Addr addr, Cycle now)
{
    ++stats_.storesBuffered;
    if (config_.writeBufferEntries != 0) {
        drainWriteBuffer(now);
        if (wbOccupancy_ == 0)
            wbLastDrain_ = now;
        ++wbOccupancy_;
    }
    if (kind_ == CacheKind::Perfect)
        return;
    pruneFetches(now);
    if (Line *line = findLine(addr)) {
        if (line->validFrom <= now) {
            // Write-through hit: update the line (LRU touch only; the
            // data itself lives in the functional emulator).
            line->lastUsed = now;
            ++stats_.storeHits;
        }
    }
    // Write-around on a miss: the data goes to the write buffer, which
    // consumes no bandwidth and never stalls (paper Section 2.1).
}

void
DataCache::squashLoad(std::int64_t fetch_id, InstUid uid, Cycle now)
{
    if (fetch_id < 0)
        return;
    const auto it = fetches_.find(fetch_id);
    if (it == fetches_.end())
        return; // fill already completed; the block stays
    if (it->second.fillAt <= now)
        return; // completing this cycle
    auto &waiters = it->second.waiters;
    const auto w = std::find(waiters.begin(), waiters.end(), uid);
    if (w != waiters.end())
        waiters.erase(w);
    if (!waiters.empty())
        return;
    // Every destination of this fetch was squashed: mark the fetch so
    // the block is not written into the cache (paper Section 2.2).
    ++stats_.fetchesCancelled;
    if (it->second.way != config_.assoc) {
        Line &line = lines_[std::size_t(it->second.set) * config_.assoc +
                            it->second.way];
        if (line.fetchId == it->second.id) {
            line.valid = false;
            line.fetchId = -1;
        }
    }
    if (kind_ == CacheKind::Lockup)
        lockupBusyUntil_ = now + 1;
    fetches_.erase(it);
}

InstCache::InstCache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    numSets_ = config_.sizeBytes / (config_.lineBytes * config_.assoc);
    lines_.resize(std::size_t(numSets_) * config_.assoc);
}

Cycle
InstCache::fetch(Addr pc, Cycle now)
{
    ++accesses_;
    const std::uint32_t set =
        std::uint32_t(pc / config_.lineBytes) & (numSets_ - 1);
    const Addr tag = pc / config_.lineBytes / numSets_;
    Line *base = &lines_[std::size_t(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUsed = now;
            return now;
        }
    }
    ++misses_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUsed < base[victim].lastUsed)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUsed = now;
    return now + config_.missPenalty;
}

namespace {

/**
 * Shared tail of functional warming: rewrite each set's valid lines'
 * lastUsed to their recency rank (0 = oldest), so every warm stamp
 * sorts below any cycle number the detailed run will produce while
 * the warmed LRU order survives.  @p Line needs valid/lastUsed.
 */
template <typename Line>
void
rebaseWarmRanks(std::vector<Line> &lines, std::uint32_t num_sets,
                std::uint32_t assoc)
{
    std::vector<Line *> ways;
    for (std::uint32_t set = 0; set < num_sets; ++set) {
        Line *base = &lines[std::size_t(set) * assoc];
        ways.clear();
        for (std::uint32_t w = 0; w < assoc; ++w)
            if (base[w].valid)
                ways.push_back(&base[w]);
        std::sort(ways.begin(), ways.end(),
                  [](const Line *a, const Line *b) {
                      return a->lastUsed < b->lastUsed;
                  });
        for (std::size_t r = 0; r < ways.size(); ++r)
            ways[r]->lastUsed = Cycle(r);
    }
}

} // namespace

void
DataCache::warmLoad(Addr addr)
{
    if (kind_ == CacheKind::Perfect)
        return;
    ++warmTick_;
    if (Line *line = findLine(addr)) {
        line->lastUsed = warmTick_;
        return;
    }
    const std::uint32_t set = setOf(addr);
    const std::uint32_t way = victimWay(set);
    if (way == config_.assoc)
        return; // unreachable pre-run (no line is mid-fill)
    Line &line = lines_[std::size_t(set) * config_.assoc + way];
    line.valid = true;
    line.tag = tagOf(addr);
    line.validFrom = 0;
    line.lastUsed = warmTick_;
    line.fetchId = -1;
}

void
DataCache::warmStore(Addr addr)
{
    if (kind_ == CacheKind::Perfect)
        return;
    ++warmTick_;
    // Write-through/write-around: a store only refreshes the recency
    // of a line it hits, it never allocates.
    if (Line *line = findLine(addr))
        line->lastUsed = warmTick_;
}

void
DataCache::finishWarm()
{
    if (warmTick_ == 0)
        return;
    rebaseWarmRanks(lines_, numSets_, config_.assoc);
    warmTick_ = 0;
}

void
InstCache::warmFetch(Addr pc)
{
    ++warmTick_;
    const std::uint32_t set =
        std::uint32_t(pc / config_.lineBytes) & (numSets_ - 1);
    const Addr tag = pc / config_.lineBytes / numSets_;
    Line *base = &lines_[std::size_t(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUsed = warmTick_;
            return;
        }
    }
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUsed < base[victim].lastUsed)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUsed = warmTick_;
}

void
InstCache::finishWarm()
{
    if (warmTick_ == 0)
        return;
    rebaseWarmRanks(lines_, numSets_, config_.assoc);
    warmTick_ = 0;
}

} // namespace drsim
