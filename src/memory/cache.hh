/**
 * @file
 * Data-cache models (paper Section 2.1).
 *
 * Three organizations, selectable per run:
 *  - Perfect: every load hits (the paper's "perfect cache" baseline).
 *  - Lockup: a blocking cache — while a miss is outstanding no other
 *    load may issue.
 *  - LockupFree: an inverted-MSHR organization [Farkas & Jouppi 1994]
 *    that supports as many in-flight misses as there are destination
 *    registers; misses to a line already being fetched merge onto the
 *    outstanding fetch.
 *
 * Common fixed parameters (configurable): 64 KB, 2-way set
 * associative, 32-byte lines, 1-cycle hit latency, 16-cycle constant
 * fetch latency.  Loads additionally see the machine's single
 * load-delay slot (applied here as +1 cycle of load-use latency).
 * Stores are write-through/write-around via a write buffer that
 * consumes no bandwidth and never stalls (paper Section 2.1), so the
 * store path only touches the tag state for write-hit LRU updates.
 *
 * When a misprediction squashes every load waiting on an in-flight
 * fetch, the fetch is cancelled and the block is not written into the
 * cache (paper Section 2.2); if any merged load survives, the fill
 * proceeds.
 */

#ifndef DRSIM_MEMORY_CACHE_HH
#define DRSIM_MEMORY_CACHE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace drsim {

enum class CacheKind : std::uint8_t { Perfect, Lockup, LockupFree };

const char *cacheKindName(CacheKind kind);

struct CacheConfig
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 32;
    Cycle hitLatency = 1;
    Cycle missPenalty = 16; ///< constant fetch latency

    /**
     * Extension beyond the paper: bound the number of outstanding
     * misses a lockup-free cache supports (0 = the paper's inverted
     * MSHR, as many as there are destination registers).  Sweeping
     * this bridges the design space between the lockup and
     * lockup-free organizations (bench/ext_mshr).
     */
    std::uint32_t maxOutstandingMisses = 0;

    /**
     * Extension beyond the paper: a finite write buffer.  The paper
     * assumes retiring stores consume no memory bandwidth and never
     * stall; with a nonzero entry count, one buffered store drains
     * every writeBufferDrainCycles and a committing store stalls
     * commit while the buffer is full (bench/ext_writebuffer).
     */
    std::uint32_t writeBufferEntries = 0; ///< 0 = unlimited (paper)
    Cycle writeBufferDrainCycles = 4;

    void validate() const;

    /** Memberwise equality (needed by CoreConfig's). */
    bool operator==(const CacheConfig &) const = default;
};

/** Outcome of issuing a load to the data cache. */
struct LoadResult
{
    /** False when the cache refused the load this cycle (every MSHR
     *  in use); the load must retry later. */
    bool accepted = true;
    bool hit = false;    ///< serviced from the array
    bool merged = false; ///< attached to an in-flight fetch
    /** Cycle from which a dependent may source the loaded register. */
    Cycle readyCycle = 0;
    /** Fetch the load depends on (-1 when it hit). */
    std::int64_t fetchId = -1;
};

struct DCacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t loadMisses = 0;      ///< misses that started a fetch
    std::uint64_t loadMerges = 0;      ///< misses merged onto a fetch
    std::uint64_t storesBuffered = 0;  ///< stores retired to the buffer
    std::uint64_t storeHits = 0;       ///< stores that updated a line
    std::uint64_t fetchesCancelled = 0;
    std::uint64_t mshrRejections = 0;  ///< loads refused: MSHRs full

    /**
     * Paper "load miss rate": primary (fetch-initiating) misses over
     * loads.  Merges are secondary misses serviced by an outstanding
     * fetch (inverted-MSHR delayed hits) and are reported separately —
     * counting them would drive any streaming kernel to ~100%.
     */
    double
    loadMissRate() const
    {
        return loads == 0 ? 0.0
                          : double(loadMisses) / double(loads);
    }
};

class DataCache
{
  public:
    DataCache(CacheKind kind, const CacheConfig &config);

    CacheKind kind() const { return kind_; }
    const CacheConfig &config() const { return config_; }

    /**
     * May a load issue at @p now?  False only for the lockup cache
     * while a miss is outstanding.
     */
    bool loadCanIssue(Cycle now) const;

    /**
     * Issue the load with unique id @p uid for address @p addr at
     * cycle @p now.  May start or merge onto a block fetch.
     */
    LoadResult load(Addr addr, Cycle now, InstUid uid);

    /** A committed store reaches the cache / write buffer at @p now.
     *  Call only when storeCanCommit(now) is true. */
    void storeCommit(Addr addr, Cycle now);

    /** False while a finite write buffer is full (commit must stall,
     *  the situation the paper's free write buffer assumes away). */
    bool storeCanCommit(Cycle now);

    /**
     * The load @p uid waiting on @p fetch_id was squashed at @p now.
     * Cancels the fetch (and the block fill) if no waiter remains and
     * the block has not yet been written.
     */
    void squashLoad(std::int64_t fetch_id, InstUid uid, Cycle now);

    const DCacheStats &stats() const { return stats_; }

    /** Load-use latency of a hit (hit latency + load-delay slot). */
    Cycle hitUseLatency() const { return config_.hitLatency + 1; }

    /// @name Functional warming (sampled-mode gap replay, DESIGN.md §5j)
    /// @{
    /**
     * Touch the tag state for a fast-forwarded load: hit updates the
     * recency, miss fills the LRU victim immediately.  No stats, no
     * MSHR/timing state; call only before the machine has run.
     */
    void warmLoad(Addr addr);
    /** Fast-forwarded store: write-around, so recency update only. */
    void warmStore(Addr addr);
    /**
     * Rebase warm recency to per-set ranks below every real cycle
     * number, so the detailed run's LRU decisions see the warmed
     * ordering but never prefer a warm line over a line it touched
     * itself.  Call once, after the last warm touch.
     */
    void finishWarm();
    /// @}

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        /** Cycle at which the block is present (fills complete late). */
        Cycle validFrom = 0;
        Cycle lastUsed = 0;
        /** In-flight fetch filling this line (-1 when none). */
        std::int64_t fetchId = -1;
    };

    struct Fetch
    {
        std::int64_t id;
        std::uint32_t set;
        std::uint32_t way;
        Cycle fillAt;
        std::vector<InstUid> waiters;
    };

    std::uint32_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    std::uint32_t victimWay(std::uint32_t set) const;
    void pruneFetches(Cycle now);

    CacheKind kind_;
    CacheConfig config_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; ///< numSets_ x assoc
    void drainWriteBuffer(Cycle now);

    std::unordered_map<std::int64_t, Fetch> fetches_;
    std::int64_t nextFetchId_ = 0;
    Cycle lockupBusyUntil_ = 0;
    /** Finite-write-buffer occupancy and last drain time. */
    std::uint32_t wbOccupancy_ = 0;
    Cycle wbLastDrain_ = 0;
    /** Monotonic warm-touch order; nonzero only mid-warming. */
    Cycle warmTick_ = 0;
    DCacheStats stats_;
};

/**
 * Instruction cache: 64 KB 2-way with a fixed 16-cycle miss penalty
 * (paper: "the instruction cache has a fixed miss penalty"; measured
 * SPEC92 miss rates were under 1%, and the synthetic kernels are
 * small loops, so this is nearly always a hit).
 */
class InstCache
{
  public:
    explicit InstCache(const CacheConfig &config);

    /**
     * Fetch touches the line holding @p pc at @p now; returns the
     * cycle from which instructions in that line may be inserted
     * (== @p now on a hit).
     */
    Cycle fetch(Addr pc, Cycle now);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** Functional warming: touch without stats (see DataCache). */
    void warmFetch(Addr pc);
    /** Rebase warm recency to per-set ranks (see DataCache). */
    void finishWarm();

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        Cycle lastUsed = 0;
    };

    CacheConfig config_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    Cycle warmTick_ = 0;
};

} // namespace drsim

#endif // DRSIM_MEMORY_CACHE_HH
