/**
 * @file
 * Loop-aware static instruction-mix estimation and the per-kernel
 * target table.
 *
 * Block execution weights come from a back-edge heuristic: a block
 * nested in d natural loops weighs 100^min(d,3), so loop bodies
 * dominate the estimate the way they dominate the dynamic stream.
 * Both arms of a conditional count fully, which makes the estimate a
 * bracket of — not an equality with — the dynamic mix.  The targets
 * below are therefore calibrated in *estimator space*: each is the
 * estimator's output over the kernel as shipped, anchored against the
 * kernel's Table-1 signature documented in its header comment.  A
 * kernel edit that shifts any category by more than the tolerance
 * (default +/-3 percentage points) trips the `mix-drift` rule.
 */

#include <cmath>

#include "analysis/analysis.hh"
#include "analysis/cfg.hh"

namespace drsim {
namespace analysis {

MixEstimate
estimateMix(const Program &program)
{
    const ProgramCfg cfg(program);
    MixEstimate est;
    if (!cfg.valid())
        return est;

    double load = 0.0, store = 0.0, cbr = 0.0, fp = 0.0;
    for (const int b : cfg.rpo()) {
        const double w =
            std::pow(100.0, std::min(cfg.node(b).loopDepth, 3));
        for (const Instruction &inst : program.block(b).insts) {
            est.totalWeight += w;
            if (inst.isLoad()) {
                load += w;
            } else if (inst.isStore()) {
                store += w;
            } else if (inst.isCondBranch()) {
                cbr += w;
            } else {
                const OpClass cls = inst.cls();
                if (cls == OpClass::FpAdd || cls == OpClass::FpDiv)
                    fp += w;
            }
        }
    }
    if (est.totalWeight > 0.0) {
        est.loadPct = 100.0 * load / est.totalWeight;
        est.storePct = 100.0 * store / est.totalWeight;
        est.condBranchPct = 100.0 * cbr / est.totalWeight;
        est.fpPct = 100.0 * fp / est.totalWeight;
    }
    return est;
}

const MixTarget *
mixTargetFor(const std::string &name)
{
    struct Entry
    {
        const char *name;
        MixTarget target;
    };
    // Estimator-space signatures of the nine kernels as shipped
    // (values produced by estimateMix() and cross-checked against the
    // Table-1 mix documented in each kernel's header).  Regenerate
    // with `drsim_lint --print-mix` after an intentional kernel edit.
    static const Entry kTable[] = {
        {"compress", {13.1, 5.3, 5.3, 0.0}},
        {"doduc", {7.7, 5.1, 7.7, 25.7}},
        {"espresso", {8.6, 5.7, 11.4, 0.0}},
        {"gcc1", {12.7, 2.1, 8.5, 0.0}},
        {"mdljdp2", {8.4, 2.1, 6.2, 39.5}},
        {"mdljsp2", {8.2, 2.0, 6.1, 40.7}},
        {"ora", {13.1, 0.1, 6.6, 40.1}},
        {"su2cor", {13.3, 3.3, 10.0, 26.6}},
        {"tomcatv", {24.9, 5.0, 5.0, 39.8}},
    };
    for (const Entry &e : kTable)
        if (name == e.name)
            return &e.target;
    return nullptr;
}

} // namespace analysis
} // namespace drsim
