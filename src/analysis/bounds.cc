#include "analysis/bounds.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/cfg.hh"
#include "common/json.hh"
#include "common/stats.hh"

namespace drsim {
namespace analysis {

namespace {

/** Same loop weighting the mix estimator uses: 100^min(depth, 3). */
std::uint64_t
loopWeight(int depth)
{
    std::uint64_t w = 1;
    for (int i = 0; i < std::min(depth, 3); ++i)
        w *= 100;
    return w;
}

/** Issue-resource initiation interval over the must-execute body. */
double
resourceII(const ProgramCfg &cfg, const NaturalLoop &loop,
           const MachineLimits &lim)
{
    int total = 0, int_ops = 0, fp_ops = 0, div_ops = 0, div_lat = 0,
        mem_ops = 0, ctrl_ops = 0;
    for (const int b : loop.mustBody) {
        for (const Instruction &inst : cfg.program().block(b).insts) {
            ++total;
            switch (inst.cls()) {
              case OpClass::IntAlu:
              case OpClass::IntMult:
                ++int_ops;
                break;
              case OpClass::FpAdd:
                ++fp_ops;
                break;
              case OpClass::FpDiv:
                ++fp_ops;
                ++div_ops;
                div_lat += opTraits(inst.op).latency;
                break;
              case OpClass::MemLoad:
              case OpClass::MemStore:
                ++mem_ops;
                break;
              case OpClass::CtrlCond:
              case OpClass::CtrlUncond:
                ++ctrl_ops;
                break;
            }
        }
    }
    double ii = double(total) / double(lim.issueWidth);
    ii = std::max(ii, double(int_ops) / double(lim.intIssue));
    ii = std::max(ii, double(fp_ops) / double(lim.fpIssue));
    ii = std::max(ii, double(div_ops) / double(lim.fpDivIssue));
    // The dividers are unpipelined: each divide occupies a unit for
    // its full latency, so per iteration they demand div_lat cycles
    // of divider service spread over fpDividers units.
    ii = std::max(ii, double(div_lat) / double(lim.fpDividers));
    ii = std::max(ii, double(mem_ops) / double(lim.memIssue));
    ii = std::max(ii, double(ctrl_ops) / double(lim.ctrlIssue));
    return ii;
}

/** Longest def-to-last-use distance (in instructions) for node @p i
 *  of one iteration of @p graph; -1 when nothing consumes it. */
int
lastUseDistance(const LoopDepGraph &graph, int i)
{
    const int n = int(graph.nodes.size());
    int best = -1;
    for (const DepEdge &e : graph.edges) {
        if (e.from != i)
            continue;
        const int d = e.distance == 0 ? e.to - i : n - i + e.to;
        best = std::max(best, d);
    }
    return best;
}

/** Local def-to-last-use distances within one straight-line block. */
void
blockLiveRanges(const std::vector<Instruction> &insts,
                std::uint64_t weight, Histogram hist[kNumRegClasses])
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const RegId dest = insts[i].dest;
        if (!dest.renamed())
            continue;
        int last_use = -1;
        for (std::size_t j = i + 1; j < insts.size(); ++j) {
            if ((insts[j].src1 == dest) || (insts[j].src2 == dest))
                last_use = int(j);
            if (insts[j].dest == dest)
                break;
        }
        if (last_use >= 0) {
            hist[int(dest.cls)].addSamples(
                std::uint64_t(last_use - int(i)), weight);
        }
    }
}

LiveRangeStats
summarize(const Histogram &hist)
{
    LiveRangeStats s;
    s.samples = hist.totalSamples();
    if (s.samples == 0)
        return s;
    s.mean = hist.mean();
    s.p50 = hist.percentile(0.5);
    s.p90 = hist.percentile(0.9);
    s.max = hist.maxValue();
    return s;
}

} // namespace

MachineLimits
MachineLimits::forIssueWidth(int width)
{
    MachineLimits lim;
    lim.issueWidth = width;
    lim.intIssue = width;
    lim.fpIssue = std::max(1, width / 2);
    lim.fpDivIssue = std::max(1, width / 4);
    lim.memIssue = std::max(1, width / 2);
    lim.ctrlIssue = std::max(1, width / 4);
    lim.fpDividers = std::max(1, width / 4);
    return lim;
}

BoundsReport
computeBounds(const Program &program, const MachineLimits &limits)
{
    BoundsReport rep;
    rep.program = program.name();
    rep.limits = limits;

    const ProgramCfg cfg(program);
    if (!cfg.valid())
        return rep;
    rep.valid = true;

    const LivenessResult live = computeLiveness(cfg);
    const MaxLiveResult ml = computeMaxLive(cfg, live);
    for (int c = 0; c < kNumRegClasses; ++c)
        rep.maxLive[c] = ml.perClass[c];
    rep.criticalPathCycles = dataflowCriticalPath(cfg);

    const std::vector<int> idom = computeIdoms(cfg);
    const std::vector<NaturalLoop> loops = findNaturalLoops(cfg, idom);

    Histogram range_hist[kNumRegClasses];
    // Weighted op mix of the steady-state (loop) code, for the
    // Little's-law register estimate below.
    double mix_total_w = 0.0;
    double mix_writer_w[kNumRegClasses] = {0.0, 0.0};
    double mix_lat_w[kNumRegClasses] = {0.0, 0.0};

    std::vector<std::uint8_t> bounded_block(cfg.nodes().size(), 0);
    for (const NaturalLoop &loop : loops) {
        LoopBound lb;
        lb.header = loop.header;
        lb.depth = loop.depth;
        lb.innermost = loop.innermost;
        lb.reducible = loop.reducible;
        for (const int b : loop.body)
            lb.bodyInsts += int(cfg.program().block(b).insts.size());
        for (const int b : loop.mustBody)
            lb.mustInsts += int(cfg.program().block(b).insts.size());
        const MaxLiveResult loop_ml =
            computeMaxLive(cfg, live, loop.body);
        for (int c = 0; c < kNumRegClasses; ++c)
            lb.maxLive[c] = loop_ml.perClass[c];

        if (loop.innermost && loop.reducible && lb.mustInsts > 0) {
            const LoopDepGraph graph = buildLoopDepGraph(cfg, loop);
            lb.recII = maxCycleRatio(graph);
            lb.resII = resourceII(cfg, loop, limits);
            const double ii = std::max(lb.recII, lb.resII);
            if (ii > 0.0) {
                lb.ipcBound = std::min(double(limits.issueWidth),
                                       double(lb.bodyInsts) / ii);
                rep.steadyIpcBound =
                    std::max(rep.steadyIpcBound, lb.ipcBound);
                for (const int b : loop.body)
                    bounded_block[std::size_t(b)] = 1;
            }

            const std::uint64_t w = loopWeight(loop.depth);
            const int n = int(graph.nodes.size());
            for (int i = 0; i < n; ++i) {
                const DepNode &node = graph.nodes[std::size_t(i)];
                const Instruction &inst =
                    cfg.program().instAt(node.loc);
                mix_total_w += double(w);
                if (inst.writesReg()) {
                    const int c = int(inst.dest.cls);
                    mix_writer_w[c] += double(w);
                    mix_lat_w[c] += double(w) * double(node.latency);
                }
                const int d = lastUseDistance(graph, i);
                if (d >= 0 && inst.writesReg()) {
                    range_hist[int(inst.dest.cls)].addSamples(
                        std::uint64_t(d), w);
                }
            }
        }
        rep.loops.push_back(lb);
    }

    // Straight-line (depth-0) code contributes block-local live
    // ranges at unit weight — the tail of the paper's lifetime
    // distribution, dominated by the loop-weighted mass above.
    bool all_in_bounded_loops = true;
    for (const int b : cfg.rpo()) {
        const auto &insts = cfg.program().block(b).insts;
        if (insts.empty())
            continue;
        if (!bounded_block[std::size_t(b)])
            all_in_bounded_loops = false;
        if (cfg.node(b).loopDepth == 0)
            blockLiveRanges(insts, 1, range_hist);
    }
    for (int c = 0; c < kNumRegClasses; ++c)
        rep.liveRange[c] = summarize(range_hist[c]);

    // The loop bounds constrain the whole run only when no reachable
    // code can commit outside a bounded loop; otherwise the machine
    // can run at full width through the unconstrained region.
    rep.ipcBound = (all_in_bounded_loops && rep.steadyIpcBound > 0.0)
                       ? rep.steadyIpcBound
                       : double(limits.issueWidth);

    // Little's-law register demand: in steady state the file holds
    // the 31 committed architectural values plus (allocation rate x
    // hold time) in-flight ones; hold time ~ producer latency plus a
    // couple of cycles of issue/commit slack.  Heuristic, reported
    // for the co-design screens — never used as a gate.
    double rate = rep.steadyIpcBound;
    if (rate <= 0.0) {
        rate = rep.criticalPathCycles > 0.0
                   ? std::min(double(limits.issueWidth),
                              double(program.numInsts()) /
                                  rep.criticalPathCycles)
                   : double(limits.issueWidth);
        // No loop mix: fall back to the whole program at unit weight.
        for (const int b : cfg.rpo()) {
            for (const Instruction &inst :
                 cfg.program().block(b).insts) {
                mix_total_w += 1.0;
                if (inst.writesReg()) {
                    const int c = int(inst.dest.cls);
                    mix_writer_w[c] += 1.0;
                    mix_lat_w[c] += double(boundLatency(inst.op));
                }
            }
        }
    }
    for (int c = 0; c < kNumRegClasses; ++c) {
        double demand = 0.0;
        if (mix_total_w > 0.0 && mix_writer_w[c] > 0.0) {
            const double frac = mix_writer_w[c] / mix_total_w;
            const double avg_lat = mix_lat_w[c] / mix_writer_w[c];
            demand = rate * frac * (avg_lat + 2.0);
        }
        rep.minRegsEstimate[c] =
            std::max(kNumVirtualRegs,
                     kNumVirtualRegs - 1 + int(std::ceil(demand)));
    }
    return rep;
}

std::string
formatBounds(const BoundsReport &rep)
{
    std::ostringstream os;
    os << "bounds for '" << rep.program << "' (issue width "
       << rep.limits.issueWidth << "):\n";
    if (!rep.valid) {
        os << "  CFG structurally invalid; no bounds computed\n";
        return os.str();
    }
    os << "  static MaxLive:      int " << rep.maxLive[0] << ", fp "
       << rep.maxLive[1] << "\n";
    os << "  critical path:       " << rep.criticalPathCycles
       << " cycles (loops unrolled once)\n";
    os << "  ipc bound:           " << rep.ipcBound
       << " (whole program)";
    if (rep.steadyIpcBound > 0.0)
        os << ", " << rep.steadyIpcBound << " (loop steady-state)";
    os << "\n";
    os << "  min regs estimate:   int " << rep.minRegsEstimate[0]
       << ", fp " << rep.minRegsEstimate[1] << "\n";
    for (int c = 0; c < kNumRegClasses; ++c) {
        const LiveRangeStats &lr = rep.liveRange[c];
        os << "  live-range (" << (c == 0 ? "int" : "fp ") << "):    ";
        if (lr.samples == 0) {
            os << "no ranges\n";
            continue;
        }
        os << "mean " << lr.mean << ", p50 " << lr.p50 << ", p90 "
           << lr.p90 << ", max " << lr.max << " insts\n";
    }
    for (const LoopBound &lb : rep.loops) {
        os << "  loop @ block " << lb.header << " depth " << lb.depth
           << (lb.innermost ? " innermost" : "")
           << (lb.reducible ? "" : " IRREDUCIBLE") << ": body "
           << lb.bodyInsts << " insts (" << lb.mustInsts
           << " per-iteration)";
        if (lb.ipcBound > 0.0) {
            os << ", recII " << lb.recII << ", resII " << lb.resII
               << ", ipc <= " << lb.ipcBound;
        }
        os << ", live int " << lb.maxLive[0] << " fp " << lb.maxLive[1]
           << "\n";
    }
    return os.str();
}

std::string
boundsToJson(const BoundsReport &rep)
{
    std::ostringstream os;
    os << "{\"schema\":\"drsim-bounds-v1\",\"program\":\""
       << json::escape(rep.program) << "\",\"valid\":"
       << (rep.valid ? "true" : "false")
       << ",\"issueWidth\":" << rep.limits.issueWidth
       << ",\"maxLive\":{\"int\":" << rep.maxLive[0]
       << ",\"fp\":" << rep.maxLive[1]
       << "},\"criticalPathCycles\":" << rep.criticalPathCycles
       << ",\"ipcBound\":" << rep.ipcBound
       << ",\"steadyIpcBound\":" << rep.steadyIpcBound
       << ",\"minRegsEstimate\":{\"int\":" << rep.minRegsEstimate[0]
       << ",\"fp\":" << rep.minRegsEstimate[1] << "}";
    os << ",\"liveRange\":{";
    for (int c = 0; c < kNumRegClasses; ++c) {
        const LiveRangeStats &lr = rep.liveRange[c];
        os << (c == 0 ? "\"int\":{" : ",\"fp\":{")
           << "\"mean\":" << lr.mean << ",\"p50\":" << lr.p50
           << ",\"p90\":" << lr.p90 << ",\"max\":" << lr.max
           << ",\"samples\":" << lr.samples << "}";
    }
    os << "},\"loops\":[";
    bool first = true;
    for (const LoopBound &lb : rep.loops) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"header\":" << lb.header << ",\"depth\":" << lb.depth
           << ",\"innermost\":" << (lb.innermost ? "true" : "false")
           << ",\"reducible\":" << (lb.reducible ? "true" : "false")
           << ",\"bodyInsts\":" << lb.bodyInsts
           << ",\"mustInsts\":" << lb.mustInsts
           << ",\"recII\":" << lb.recII << ",\"resII\":" << lb.resII
           << ",\"ipcBound\":" << lb.ipcBound
           << ",\"maxLive\":{\"int\":" << lb.maxLive[0]
           << ",\"fp\":" << lb.maxLive[1] << "}}";
    }
    os << "]}";
    return os.str();
}

} // namespace analysis
} // namespace drsim
