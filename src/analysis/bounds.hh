/**
 * @file
 * Static performance and register-pressure bounds — the "dataflow
 * oracle" every simulation result must respect (DESIGN.md §5i).
 *
 * From a Program's CFG and value dependence graphs this derives:
 *
 *  - per-class static MaxLive (a lower bound on simultaneous live
 *    values, the static analogue of the paper's instantaneous
 *    register-demand measurements) and loop-weighted live-range
 *    length distributions (the static analogue of the Figure 2/3
 *    lifetime curves);
 *  - the resource-oblivious dataflow critical path and, per
 *    innermost loop, the recurrence-constrained initiation interval
 *    and IPC upper bound min(issue_width, ops / max(rec_II, res_II));
 *  - a heuristic minimum-physical-registers-to-avoid-stall estimate
 *    per class (Little's law over the steady-state allocation rate).
 *
 * Every bound errs in the direction that keeps the runtime
 * cross-check gates (sim/simulator.cc) sound: the IPC bound can only
 * be too high, MaxLive can only be too low, so a gate violation
 * always indicates a real accounting or scheduling bug.
 */

#ifndef DRSIM_ANALYSIS_BOUNDS_HH
#define DRSIM_ANALYSIS_BOUNDS_HH

#include <string>
#include <vector>

#include "analysis/dataflow.hh"
#include "workloads/program.hh"

namespace drsim {
namespace analysis {

/**
 * Per-cycle issue resources, mirroring CoreConfig's derived limits
 * (core/config.hh) without depending on src/core — the analysis layer
 * sits below it.  `forIssueWidth` reproduces the paper's scaling; the
 * simulator gates rebuild one from a live CoreConfig so the two can
 * never drift apart silently.
 */
struct MachineLimits
{
    int issueWidth = 4;
    int intIssue = 4;    ///< IntAlu + IntMult slots per cycle
    int fpIssue = 2;     ///< FpAdd + FpDiv slots per cycle
    int fpDivIssue = 1;  ///< FpDiv slots per cycle
    int memIssue = 2;    ///< loads + stores per cycle
    int ctrlIssue = 1;   ///< branches per cycle
    int fpDividers = 1;  ///< unpipelined divide/sqrt units

    static MachineLimits forIssueWidth(int width);
};

/** Bounds for one natural loop (innermost ones carry the IPC bound). */
struct LoopBound
{
    int header = -1;
    int depth = 0;
    bool innermost = true;
    bool reducible = true;
    /** Static instructions in the full loop body / the must-execute
     *  (once-per-iteration) subset. */
    int bodyInsts = 0;
    int mustInsts = 0;
    /** Recurrence-constrained min cycles/iteration (0 = none). */
    double recII = 0.0;
    /** Issue-resource min cycles/iteration over the must body. */
    double resII = 0.0;
    /** min(issue_width, bodyInsts / max(recII, resII)); 0 when the
     *  loop yields no usable bound (irreducible / empty must body). */
    double ipcBound = 0.0;
    /** Static MaxLive restricted to the loop body's program points. */
    int maxLive[kNumRegClasses] = {0, 0};
};

/** Summary of a loop-weighted live-range length distribution. */
struct LiveRangeStats
{
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t max = 0;
    std::uint64_t samples = 0;
};

struct BoundsReport
{
    std::string program;
    MachineLimits limits;
    /** False when the CFG is structurally broken; all bounds zero. */
    bool valid = false;

    /** Whole-program static MaxLive per class. */
    int maxLive[kNumRegClasses] = {0, 0};
    /** Resource-oblivious critical path, loops unrolled once. */
    double criticalPathCycles = 0.0;
    /**
     * Sound whole-program IPC upper bound used by the runtime gate:
     * the loop bounds only constrain the whole run when every
     * reachable instruction sits in a bounded innermost loop —
     * otherwise the unconstrained region can commit at full width
     * and the bound falls back to issueWidth.
     */
    double ipcBound = 0.0;
    /** Max over innermost-loop IPC bounds (steady-state rate a
     *  loop-dominated run approaches); 0 when no loop yields one. */
    double steadyIpcBound = 0.0;
    /** Heuristic min physical registers per class to avoid
     *  allocation stalls in steady state (>= 32 by construction). */
    int minRegsEstimate[kNumRegClasses] = {0, 0};
    /** Loop-weighted static live-range lengths (instructions between
     *  a def and its last use), per class. */
    LiveRangeStats liveRange[kNumRegClasses];

    std::vector<LoopBound> loops;
};

BoundsReport computeBounds(const Program &program,
                           const MachineLimits &limits);

/** Human-readable multi-line rendering (drsim_lint --bounds). */
std::string formatBounds(const BoundsReport &report);

/** Compact JSON object, schema "drsim-bounds-v1". */
std::string boundsToJson(const BoundsReport &report);

} // namespace analysis
} // namespace drsim

#endif // DRSIM_ANALYSIS_BOUNDS_HH
