/**
 * @file
 * Control-flow graph over a finalized Program, shared by every
 * analysis pass.
 *
 * Nodes are the program's non-empty basic blocks (empty blocks are
 * label aliases that `Program::blockEntryResolved()` skips).  Edges
 * follow the ISA's control-flow semantics:
 *
 *   Halt         — no successors (an exit node);
 *   Br / Jsr     — the resolved target block;
 *   Ret          — every Jsr fallthrough block (the static
 *                  over-approximation of "returns to its caller");
 *                  a Ret with no call site in the program is treated
 *                  as an exit, conservatively;
 *   conditional  — resolved target + fallthrough;
 *   anything else — fallthrough to the next non-empty block.
 *
 * Construction also performs the structural checks (dangling branch
 * targets, falling off the end of the code segment, empty programs)
 * and records their findings; downstream passes skip structurally
 * broken programs.
 */

#ifndef DRSIM_ANALYSIS_CFG_HH
#define DRSIM_ANALYSIS_CFG_HH

#include <vector>

#include "analysis/analysis.hh"
#include "workloads/program.hh"

namespace drsim {
namespace analysis {

class ProgramCfg
{
  public:
    struct Node
    {
        std::vector<int> succs;
        std::vector<int> preds;
        /** Reachable from the entry block. */
        bool reachable = false;
        /** Some path from here reaches Halt (or an exit-like Ret). */
        bool canExit = false;
        /** Natural-loop nesting depth (0 = straight-line code). */
        int loopDepth = 0;
        /** Next non-empty block in layout order; -1 past the end. */
        int fallthrough = -1;
    };

    explicit ProgramCfg(const Program &program);

    const Program &program() const { return prog_; }

    /** Indexed by program block id; empty blocks have no edges. */
    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(int block) const { return nodes_.at(std::size_t(block)); }

    /** Entry block id (first non-empty block); -1 for empty programs. */
    int entry() const { return entry_; }

    /** Reverse postorder over reachable blocks (for forward passes). */
    const std::vector<int> &rpo() const { return rpo_; }

    /** Findings raised while building (structural errors). */
    const std::vector<Finding> &structuralFindings() const
    {
        return structural_;
    }

    /** False when the graph is too broken for dataflow passes. */
    bool valid() const { return valid_; }

  private:
    void addEdge(int from, int to);
    void computeReachability();
    void computeLoopDepths();

    const Program &prog_;
    std::vector<Node> nodes_;
    std::vector<int> rpo_;
    std::vector<Finding> structural_;
    int entry_ = -1;
    bool valid_ = false;
};

} // namespace analysis
} // namespace drsim

#endif // DRSIM_ANALYSIS_CFG_HH
