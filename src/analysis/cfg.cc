#include "analysis/cfg.hh"

#include <algorithm>

namespace drsim {
namespace analysis {

namespace {

/** Last instruction of a non-empty block decides its successors. */
const Instruction &
terminator(const BasicBlock &bb)
{
    return bb.insts.back();
}

Finding
structuralFinding(const char *rule, const Program &prog, int block,
                  int offset, std::string message)
{
    Finding f;
    f.rule = rule;
    f.severity = Severity::Error;
    f.block = block;
    f.offset = offset;
    if (block >= 0 && offset >= 0)
        f.pc = prog.pcOf({block, offset});
    f.message = std::move(message);
    return f;
}

} // namespace

ProgramCfg::ProgramCfg(const Program &program) : prog_(program)
{
    const auto &blocks = prog_.blocks();
    nodes_.resize(blocks.size());

    const CodeLoc entry_loc =
        blocks.empty() ? CodeLoc{}
                       : prog_.blockEntryResolved(prog_.entry().block);
    if (!entry_loc.valid()) {
        structural_.push_back(structuralFinding(
            rules::kEmptyProgram, prog_, -1, -1,
            "program contains no instructions"));
        return;
    }
    entry_ = entry_loc.block;
    valid_ = true;

    // Layout fallthroughs (next non-empty block).
    int next_nonempty = -1;
    for (int b = int(blocks.size()) - 1; b >= 0; --b) {
        nodes_[std::size_t(b)].fallthrough = next_nonempty;
        if (!blocks[std::size_t(b)].insts.empty())
            next_nonempty = b;
    }

    // Pass 1: collect call-return points (the block a Ret returns to
    // is the fallthrough of some Jsr).
    std::vector<int> ret_targets;
    for (int b = 0; b < int(blocks.size()); ++b) {
        const auto &bb = blocks[std::size_t(b)];
        if (bb.insts.empty())
            continue;
        if (terminator(bb).op == Opcode::Jsr) {
            const int ft = nodes_[std::size_t(b)].fallthrough;
            if (ft >= 0)
                ret_targets.push_back(ft);
        }
    }

    // Pass 2: edges + structural checks.
    bool any_ret_exit = false;
    for (int b = 0; b < int(blocks.size()); ++b) {
        const auto &bb = blocks[std::size_t(b)];
        if (bb.insts.empty())
            continue;
        const Instruction &last = terminator(bb);
        const int last_off = int(bb.insts.size()) - 1;
        const int ft = nodes_[std::size_t(b)].fallthrough;

        const auto resolveTarget = [&]() -> int {
            const CodeLoc t = prog_.blockEntryResolved(last.target);
            if (!t.valid()) {
                structural_.push_back(structuralFinding(
                    rules::kInvalidTarget, prog_, b, last_off,
                    "branch target (block " +
                        std::to_string(last.target) +
                        ") is out of range or contains no "
                        "instructions"));
                return -1;
            }
            return t.block;
        };
        const auto fallthroughEdge = [&](const char *what) {
            if (ft >= 0) {
                addEdge(b, ft);
            } else {
                structural_.push_back(structuralFinding(
                    rules::kFallOffEnd, prog_, b, last_off,
                    std::string(what) +
                        " falls off the end of the code segment"));
            }
        };

        switch (last.op) {
          case Opcode::Halt:
            break;
          case Opcode::Br:
          case Opcode::Jsr: {
            const int t = resolveTarget();
            if (t >= 0)
                addEdge(b, t);
            if (last.op == Opcode::Jsr && ft < 0) {
                structural_.push_back(structuralFinding(
                    rules::kFallOffEnd, prog_, b, last_off,
                    "call has no instruction to return to"));
            }
            break;
          }
          case Opcode::Ret:
            if (ret_targets.empty()) {
                any_ret_exit = true; // unknown target: exit-like
            } else {
                for (const int t : ret_targets)
                    addEdge(b, t);
            }
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Fbeq:
          case Opcode::Fbne: {
            const int t = resolveTarget();
            if (t >= 0)
                addEdge(b, t);
            fallthroughEdge("not-taken path of conditional branch");
            break;
          }
          default:
            fallthroughEdge("straight-line block");
            break;
        }
    }
    (void)any_ret_exit;

    computeReachability();
    computeLoopDepths();
}

void
ProgramCfg::addEdge(int from, int to)
{
    auto &succs = nodes_[std::size_t(from)].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end())
        return; // dedupe (e.g. cond branch whose target == fallthrough)
    succs.push_back(to);
    nodes_[std::size_t(to)].preds.push_back(from);
}

void
ProgramCfg::computeReachability()
{
    // Forward reachability from the entry + reverse postorder.
    std::vector<int> stack = {entry_};
    std::vector<std::uint8_t> state(nodes_.size(), 0); // 0/1/2
    rpo_.clear();
    // Iterative DFS producing a postorder.
    while (!stack.empty()) {
        const int b = stack.back();
        if (state[std::size_t(b)] == 0) {
            state[std::size_t(b)] = 1;
            nodes_[std::size_t(b)].reachable = true;
            for (const int s : nodes_[std::size_t(b)].succs)
                if (state[std::size_t(s)] == 0)
                    stack.push_back(s);
        } else {
            stack.pop_back();
            if (state[std::size_t(b)] == 1) {
                state[std::size_t(b)] = 2;
                rpo_.push_back(b);
            }
        }
    }
    std::reverse(rpo_.begin(), rpo_.end());

    // Backward reachability from exit nodes: a block "can exit" when
    // some path from it reaches Halt (or an exit-like Ret).
    std::vector<int> worklist;
    const auto &blocks = prog_.blocks();
    bool have_call_sites = false;
    for (const auto &bb : blocks)
        if (!bb.insts.empty() && terminator(bb).op == Opcode::Jsr)
            have_call_sites = true;
    for (int b = 0; b < int(blocks.size()); ++b) {
        const auto &bb = blocks[std::size_t(b)];
        if (bb.insts.empty())
            continue;
        const Opcode op = terminator(bb).op;
        const bool exit_like =
            op == Opcode::Halt ||
            (op == Opcode::Ret && !have_call_sites);
        if (exit_like) {
            nodes_[std::size_t(b)].canExit = true;
            worklist.push_back(b);
        }
    }
    while (!worklist.empty()) {
        const int b = worklist.back();
        worklist.pop_back();
        for (const int p : nodes_[std::size_t(b)].preds) {
            if (!nodes_[std::size_t(p)].canExit) {
                nodes_[std::size_t(p)].canExit = true;
                worklist.push_back(p);
            }
        }
    }
}

void
ProgramCfg::computeLoopDepths()
{
    // Back edges via DFS (edge u->v with v on the DFS stack), then
    // natural-loop bodies: for each header v, the union over back
    // edges u->v of {v} + everything that reaches u without passing
    // through v.  Nesting depth = number of distinct headers whose
    // body contains the block.
    const std::size_t n = nodes_.size();
    std::vector<std::uint8_t> color(n, 0), on_stack(n, 0);
    std::vector<std::pair<int, int>> back_edges; // (tail, header)

    struct Frame { int block; std::size_t next; };
    std::vector<Frame> stack;
    if (entry_ < 0)
        return;
    stack.push_back({entry_, 0});
    color[std::size_t(entry_)] = 1;
    on_stack[std::size_t(entry_)] = 1;
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &succs = nodes_[std::size_t(f.block)].succs;
        if (f.next < succs.size()) {
            const int s = succs[f.next++];
            if (color[std::size_t(s)] == 0) {
                color[std::size_t(s)] = 1;
                on_stack[std::size_t(s)] = 1;
                stack.push_back({s, 0});
            } else if (on_stack[std::size_t(s)]) {
                back_edges.emplace_back(f.block, s);
            }
        } else {
            on_stack[std::size_t(f.block)] = 0;
            color[std::size_t(f.block)] = 2;
            stack.pop_back();
        }
    }

    // Group back edges by header and collect each header's body.
    std::vector<std::vector<std::uint8_t>> bodies; // per distinct header
    std::vector<int> headers;
    for (const auto &[tail, header] : back_edges) {
        std::size_t idx = 0;
        for (; idx < headers.size(); ++idx)
            if (headers[idx] == header)
                break;
        if (idx == headers.size()) {
            headers.push_back(header);
            bodies.emplace_back(n, std::uint8_t{0});
            bodies.back()[std::size_t(header)] = 1;
        }
        auto &body = bodies[idx];
        // Reverse flood from the tail, stopping at the header.
        std::vector<int> work;
        if (!body[std::size_t(tail)]) {
            body[std::size_t(tail)] = 1;
            work.push_back(tail);
        }
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            for (const int p : nodes_[std::size_t(b)].preds) {
                if (!nodes_[std::size_t(p)].reachable)
                    continue;
                if (!body[std::size_t(p)]) {
                    body[std::size_t(p)] = 1;
                    work.push_back(p);
                }
            }
        }
    }
    for (std::size_t b = 0; b < n; ++b) {
        int depth = 0;
        for (const auto &body : bodies)
            depth += body[b] ? 1 : 0;
        nodes_[b].loopDepth = depth;
    }
}

} // namespace analysis
} // namespace drsim
