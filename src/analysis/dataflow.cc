#include "analysis/dataflow.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "common/logging.hh"

namespace drsim {
namespace analysis {

namespace {

constexpr RegSet kZeroRegsMask =
    (RegSet{1} << kZeroReg) | (RegSet{1} << (32 + kZeroReg));

/** Renameable source registers of @p inst as a bitset. */
RegSet
readSet(const Instruction &inst)
{
    RegSet set = 0;
    if (inst.src1.renamed())
        set |= regSetBit(inst.src1);
    if (inst.src2.renamed())
        set |= regSetBit(inst.src2);
    return set;
}

/** Renameable destination of @p inst as a bitset (0 if none). */
RegSet
writeSet(const Instruction &inst)
{
    return inst.writesReg() ? regSetBit(inst.dest) : RegSet{0};
}

/** Flat 0..63 register number, or -1 for invalid/zero registers. */
int
flatReg(RegId r)
{
    if (!r.renamed())
        return -1;
    return int(r.cls) * 32 + int(r.index);
}

} // namespace

int
regSetCount(RegSet set, RegClass cls)
{
    const RegSet cls_bits = (set >> (std::size_t(cls) * 32u)) &
                            0xffff'ffffull;
    return std::popcount(cls_bits);
}

int
boundLatency(Opcode op)
{
    return std::max(1, opTraits(op).latency);
}

LivenessResult
computeLiveness(const ProgramCfg &cfg, IterOrder order)
{
    const std::size_t n = cfg.nodes().size();
    LivenessResult res;
    res.liveIn.assign(n, 0);
    res.liveOut.assign(n, 0);
    if (!cfg.valid())
        return res;

    // Per-block gen (upward-exposed uses) and kill (definitions).
    std::vector<RegSet> gen(n, 0), kill(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
        for (const Instruction &inst : cfg.program().block(int(b)).insts) {
            gen[b] |= readSet(inst) & ~kill[b];
            kill[b] |= writeSet(inst);
        }
        gen[b] &= ~kZeroRegsMask;
    }

    // A backward problem converges fastest visiting blocks in
    // postorder; the order knob exists so tests can assert the
    // fixpoint itself is iteration-order independent.
    std::vector<int> sweep = cfg.rpo();
    if (order == IterOrder::Forward)
        std::reverse(sweep.begin(), sweep.end());

    bool changed = true;
    while (changed) {
        changed = false;
        ++res.rounds;
        for (const int b : sweep) {
            RegSet out = 0;
            for (const int s : cfg.node(b).succs)
                out |= res.liveIn[std::size_t(s)];
            const RegSet in =
                gen[std::size_t(b)] |
                (out & ~kill[std::size_t(b)]);
            if (out != res.liveOut[std::size_t(b)] ||
                in != res.liveIn[std::size_t(b)]) {
                res.liveOut[std::size_t(b)] = out;
                res.liveIn[std::size_t(b)] = in;
                changed = true;
            }
        }
    }
    return res;
}

MaxLiveResult
computeMaxLive(const ProgramCfg &cfg, const LivenessResult &live,
               const std::vector<int> &blocks)
{
    MaxLiveResult res;
    std::vector<int> scan = blocks;
    if (scan.empty())
        scan = cfg.rpo();

    for (const int b : scan) {
        // Walk the block backward from liveOut so every intra-block
        // program point is observed, not just the boundaries.
        const auto &insts = cfg.program().block(b).insts;
        RegSet cur = live.liveOut[std::size_t(b)];
        const auto observe = [&](RegSet set) {
            for (int c = 0; c < kNumRegClasses; ++c) {
                const int count = regSetCount(set, RegClass(c));
                if (count > res.perClass[c]) {
                    res.perClass[c] = count;
                    res.block[c] = b;
                }
            }
        };
        observe(cur);
        for (std::size_t i = insts.size(); i-- > 0;) {
            const Instruction &inst = insts[i];
            cur = (cur & ~writeSet(inst)) |
                  (readSet(inst) & ~kZeroRegsMask);
            observe(cur);
        }
    }
    return res;
}

std::vector<int>
computeIdoms(const ProgramCfg &cfg)
{
    const std::size_t n = cfg.nodes().size();
    std::vector<int> idom(n, -1);
    if (!cfg.valid() || cfg.entry() < 0)
        return idom;

    // RPO position of each block; unreachable blocks stay at -1 and
    // never participate.
    std::vector<int> rpo_pos(n, -1);
    for (std::size_t i = 0; i < cfg.rpo().size(); ++i)
        rpo_pos[std::size_t(cfg.rpo()[i])] = int(i);

    const auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_pos[std::size_t(a)] > rpo_pos[std::size_t(b)])
                a = idom[std::size_t(a)];
            while (rpo_pos[std::size_t(b)] > rpo_pos[std::size_t(a)])
                b = idom[std::size_t(b)];
        }
        return a;
    };

    idom[std::size_t(cfg.entry())] = cfg.entry();
    bool changed = true;
    while (changed) {
        changed = false;
        for (const int b : cfg.rpo()) {
            if (b == cfg.entry())
                continue;
            int new_idom = -1;
            for (const int p : cfg.node(b).preds) {
                if (idom[std::size_t(p)] < 0)
                    continue; // unreachable or not yet processed
                new_idom = new_idom < 0 ? p : intersect(new_idom, p);
            }
            if (new_idom >= 0 && idom[std::size_t(b)] != new_idom) {
                idom[std::size_t(b)] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<int> &idom, int a, int b)
{
    if (a < 0 || b < 0 || idom[std::size_t(b)] < 0)
        return false;
    while (true) {
        if (b == a)
            return true;
        const int up = idom[std::size_t(b)];
        if (up == b)
            return false; // reached the entry without meeting a
        b = up;
    }
}

std::vector<NaturalLoop>
findNaturalLoops(const ProgramCfg &cfg, const std::vector<int> &idom)
{
    std::vector<NaturalLoop> loops;
    if (!cfg.valid() || cfg.entry() < 0)
        return loops;
    const std::size_t n = cfg.nodes().size();

    // Retreating edges via iterative DFS (mirrors cfg.cc's loop-depth
    // pass): an edge to a block still on the DFS stack closes a loop.
    std::vector<std::uint8_t> visited(n, 0), on_stack(n, 0);
    std::vector<std::pair<int, std::size_t>> stack;
    std::vector<std::pair<int, int>> back_edges; // (tail, header)
    stack.emplace_back(cfg.entry(), 0);
    visited[std::size_t(cfg.entry())] = 1;
    on_stack[std::size_t(cfg.entry())] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &succs = cfg.node(b).succs;
        if (next < succs.size()) {
            const int s = succs[next++];
            if (on_stack[std::size_t(s)]) {
                back_edges.emplace_back(b, s);
            } else if (!visited[std::size_t(s)]) {
                visited[std::size_t(s)] = 1;
                on_stack[std::size_t(s)] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            on_stack[std::size_t(b)] = 0;
            stack.pop_back();
        }
    }

    // Group back edges by header, in header order.
    std::vector<int> headers;
    for (const auto &[tail, header] : back_edges) {
        if (std::find(headers.begin(), headers.end(), header) ==
            headers.end()) {
            headers.push_back(header);
        }
    }
    std::sort(headers.begin(), headers.end());

    std::vector<int> rpo_pos(n, -1);
    for (std::size_t i = 0; i < cfg.rpo().size(); ++i)
        rpo_pos[std::size_t(cfg.rpo()[i])] = int(i);

    for (const int header : headers) {
        NaturalLoop loop;
        loop.header = header;
        loop.depth = cfg.node(header).loopDepth;

        // Body: reverse flood from each tail, stopping at the header.
        std::vector<std::uint8_t> in_body(n, 0);
        in_body[std::size_t(header)] = 1;
        std::vector<int> work;
        for (const auto &[tail, h] : back_edges) {
            if (h != header)
                continue;
            loop.tails.push_back(tail);
            loop.reducible =
                loop.reducible && dominates(idom, header, tail);
            if (!in_body[std::size_t(tail)]) {
                in_body[std::size_t(tail)] = 1;
                work.push_back(tail);
            }
        }
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            for (const int p : cfg.node(b).preds) {
                if (!cfg.node(p).reachable || in_body[std::size_t(p)])
                    continue;
                in_body[std::size_t(p)] = 1;
                work.push_back(p);
            }
        }
        for (std::size_t b = 0; b < n; ++b) {
            if (in_body[b])
                loop.body.push_back(int(b));
        }

        for (const int h2 : headers) {
            if (h2 != header && in_body[std::size_t(h2)])
                loop.innermost = false;
        }

        // Must-execute-per-iteration blocks: at the loop's own
        // nesting depth (not buried in an inner loop) and dominating
        // every back-edge tail, so each full iteration passes through
        // them exactly once.  Only meaningful when the loop is
        // reducible — an irreducible region has no such guarantee.
        if (loop.reducible) {
            for (const int b : loop.body) {
                if (cfg.node(b).loopDepth != loop.depth)
                    continue;
                bool must = true;
                for (const int t : loop.tails)
                    must = must && dominates(idom, b, t);
                if (must)
                    loop.mustBody.push_back(b);
            }
            std::sort(loop.mustBody.begin(), loop.mustBody.end(),
                      [&](int a, int b) {
                          return rpo_pos[std::size_t(a)] <
                                 rpo_pos[std::size_t(b)];
                      });
        }
        loops.push_back(std::move(loop));
    }
    return loops;
}

LoopDepGraph
buildLoopDepGraph(const ProgramCfg &cfg, const NaturalLoop &loop)
{
    LoopDepGraph graph;
    if (loop.mustBody.empty())
        return graph;

    // Registers written anywhere in the loop body outside the
    // must-execute blocks: their producer depends on the path taken,
    // so no single dependence edge is guaranteed — contribute none.
    RegSet cond_written = 0;
    for (const int b : loop.body) {
        if (std::find(loop.mustBody.begin(), loop.mustBody.end(), b) !=
            loop.mustBody.end()) {
            continue;
        }
        for (const Instruction &inst : cfg.program().block(b).insts)
            cond_written |= writeSet(inst);
    }

    // Linearize one iteration: the must blocks in reverse postorder.
    for (const int b : loop.mustBody) {
        const auto &insts = cfg.program().block(b).insts;
        for (std::size_t i = 0; i < insts.size(); ++i) {
            DepNode node;
            node.loc = {b, std::int32_t(i)};
            node.op = insts[i].op;
            node.latency = boundLatency(insts[i].op);
            graph.nodes.push_back(node);
        }
    }

    int cur_def[2 * kNumVirtualRegs];
    std::fill(std::begin(cur_def), std::end(cur_def), -1);
    // Reads with no earlier def this iteration: candidates for a
    // loop-carried edge from the previous iteration's final writer.
    std::vector<std::pair<int, int>> carried; // (reg, consumer node)

    int idx = 0;
    for (const int b : loop.mustBody) {
        for (const Instruction &inst : cfg.program().block(b).insts) {
            const RegId srcs[2] = {inst.src1, inst.src2};
            for (const RegId src : srcs) {
                const int r = flatReg(src);
                if (r < 0 || ((cond_written >> r) & 1) != 0)
                    continue;
                if (cur_def[r] >= 0) {
                    graph.edges.push_back(
                        {cur_def[r], idx,
                         graph.nodes[std::size_t(cur_def[r])].latency,
                         0});
                } else {
                    carried.emplace_back(r, idx);
                }
            }
            const int d = flatReg(inst.dest);
            if (d >= 0)
                cur_def[d] = idx;
            ++idx;
        }
    }

    for (const auto &[r, consumer] : carried) {
        if (cur_def[r] < 0)
            continue; // live-in from outside the loop, not a recurrence
        graph.edges.push_back(
            {cur_def[r], consumer,
             graph.nodes[std::size_t(cur_def[r])].latency, 1});
    }
    return graph;
}

double
maxCycleRatio(const LoopDepGraph &graph)
{
    if (graph.nodes.empty() || graph.edges.empty())
        return 0.0;

    // Feasibility test for a candidate ratio λ: a cycle with
    // sum(latency - λ·distance) > 0 exists iff the graph with edge
    // weights λ·distance - latency has a negative cycle
    // (Bellman-Ford from an implicit super-source: dist ≡ 0).
    const std::size_t n = graph.nodes.size();
    const auto has_positive_cycle = [&](double lambda) {
        std::vector<double> dist(n, 0.0);
        bool relaxed = false;
        for (std::size_t round = 0; round <= n; ++round) {
            relaxed = false;
            for (const DepEdge &e : graph.edges) {
                const double w =
                    lambda * e.distance - double(e.latency);
                if (dist[std::size_t(e.from)] + w <
                    dist[std::size_t(e.to)] - 1e-12) {
                    dist[std::size_t(e.to)] =
                        dist[std::size_t(e.from)] + w;
                    relaxed = true;
                }
            }
            if (!relaxed)
                return false;
        }
        return true;
    };

    double hi = 0.0;
    for (const DepEdge &e : graph.edges)
        hi += double(e.latency);
    if (!has_positive_cycle(0.0))
        return 0.0; // acyclic dependence graph: no recurrence
    double lo = 0.0;
    for (int iter = 0; iter < 64 && hi - lo > 1e-4; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (has_positive_cycle(mid))
            lo = mid;
        else
            hi = mid;
    }
    // Return the infeasible-side-exclusive lower end: the true ratio
    // is >= lo, so II estimates derived from it never overstate the
    // recurrence (and IPC bounds never understate it).
    return lo;
}

double
dataflowCriticalPath(const ProgramCfg &cfg)
{
    if (!cfg.valid() || cfg.entry() < 0)
        return 0.0;
    const std::size_t n = cfg.nodes().size();

    std::vector<int> rpo_pos(n, -1);
    for (std::size_t i = 0; i < cfg.rpo().size(); ++i)
        rpo_pos[std::size_t(cfg.rpo()[i])] = int(i);

    // Per-register value-ready times at each processed block's exit;
    // a block's entry state is the elementwise max over its forward
    // predecessors (retreating edges cut — "loops unrolled once").
    std::vector<std::vector<double>> exit_ready(n);
    double critical = 0.0;

    for (const int b : cfg.rpo()) {
        std::vector<double> ready(2 * kNumVirtualRegs, 0.0);
        for (const int p : cfg.node(b).preds) {
            if (rpo_pos[std::size_t(p)] < 0 ||
                rpo_pos[std::size_t(p)] >= rpo_pos[std::size_t(b)] ||
                exit_ready[std::size_t(p)].empty()) {
                continue;
            }
            const auto &pr = exit_ready[std::size_t(p)];
            for (std::size_t r = 0; r < ready.size(); ++r)
                ready[r] = std::max(ready[r], pr[r]);
        }
        for (const Instruction &inst : cfg.program().block(b).insts) {
            double issue = 0.0;
            const RegId srcs[2] = {inst.src1, inst.src2};
            for (const RegId src : srcs) {
                const int r = flatReg(src);
                if (r >= 0)
                    issue = std::max(issue, ready[std::size_t(r)]);
            }
            const double done = issue + double(boundLatency(inst.op));
            critical = std::max(critical, done);
            const int d = flatReg(inst.dest);
            if (d >= 0)
                ready[std::size_t(d)] = done;
        }
        exit_ready[std::size_t(b)] = std::move(ready);
    }
    return critical;
}

} // namespace analysis
} // namespace drsim
