/**
 * @file
 * Value-dataflow machinery over a ProgramCfg: liveness with MaxLive,
 * dominators, natural-loop discovery, and the SSA-style value
 * dependence graph per loop (the loop's must-execute body linearized
 * into one iteration, def->use edges annotated with producer latency
 * and iteration distance).
 *
 * Everything here is *sound in the bound-producing direction* (see
 * bounds.hh): dependence edges are added only when the consumed value
 * provably comes from that producer on every iteration (single writer
 * in the loop body, both endpoints execute every iteration), and
 * latencies use the minimum a producer can take on real hardware
 * (loads count one cycle — the forwarding/hit floor — because the
 * static analysis cannot know the cache).  Dropping an edge can only
 * weaken a lower bound on iteration time, never overstate it.
 *
 * Consumers: bounds.cc (static IPC / register-pressure bounds),
 * drsim_lint --bounds, and the runtime cross-check gates in src/sim.
 */

#ifndef DRSIM_ANALYSIS_DATAFLOW_HH
#define DRSIM_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/instruction.hh"

namespace drsim {
namespace analysis {

/** Register bitset: bit index = class * 32 + register index. */
using RegSet = std::uint64_t;

constexpr RegSet
regSetBit(RegId r)
{
    return RegSet{1} << (std::size_t(r.cls) * 32u + r.index);
}

/** Number of set bits belonging to @p cls (zero regs not special). */
int regSetCount(RegSet set, RegClass cls);

/**
 * Producer latency used for static dependence chains: the fixed
 * opTraits latency, floored at one cycle.  Loads carry latency 0 in
 * the opcode table (cache-determined); one cycle is the best any
 * load can do (store-forwarding / an idealized hit), which keeps
 * every chain length a true lower bound on execution time.
 */
int boundLatency(Opcode op);

/** Block iteration order for the liveness fixpoint (the fixpoint
 *  itself is order-independent; tests sweep both). */
enum class IterOrder : std::uint8_t { Forward, Reversed };

/** Backward may-liveness over the CFG (zero registers excluded). */
struct LivenessResult
{
    /** Indexed by block id; zero for empty/unreachable blocks. */
    std::vector<RegSet> liveIn;
    std::vector<RegSet> liveOut;
    /** Fixpoint rounds taken (diagnostics / property tests). */
    int rounds = 0;
};

LivenessResult computeLiveness(const ProgramCfg &cfg,
                               IterOrder order = IterOrder::Forward);

/**
 * Per-class maximum number of simultaneously live virtual registers
 * over every program point of the listed blocks (all reachable blocks
 * when @p blocks is empty).  This is the classic MaxLive lower bound
 * on register demand: any execution that visits the maximizing point
 * holds at least this many values per class.
 */
struct MaxLiveResult
{
    int perClass[kNumRegClasses] = {0, 0};
    /** Block holding the per-class maximum (-1 when no blocks). */
    int block[kNumRegClasses] = {-1, -1};
};

MaxLiveResult computeMaxLive(const ProgramCfg &cfg,
                             const LivenessResult &live,
                             const std::vector<int> &blocks = {});

/**
 * Immediate dominators over reachable blocks (Cooper/Harvey/Kennedy
 * over the reverse postorder).  idom[entry] == entry; -1 for
 * unreachable or empty blocks.
 */
std::vector<int> computeIdoms(const ProgramCfg &cfg);

/** True when @p a dominates @p b (reflexive). */
bool dominates(const std::vector<int> &idom, int a, int b);

/**
 * One natural loop (one distinct back-edge header).  `mustBody` is
 * the subset of the body guaranteed to execute exactly once per
 * iteration: blocks at the loop's own nesting depth that dominate
 * every back-edge tail, in reverse postorder (header first).  For
 * irreducible loops (a back edge whose header does not dominate its
 * tail) `reducible` is false and `mustBody` stays empty — the
 * recurrence analysis refuses to guess.
 */
struct NaturalLoop
{
    int header = -1;
    /** Nesting depth of the header (1 = outermost loop). */
    int depth = 0;
    bool reducible = true;
    /** No other loop header nested inside this body. */
    bool innermost = true;
    std::vector<int> tails;
    /** Body block ids, ascending (includes the header). */
    std::vector<int> body;
    std::vector<int> mustBody;
};

std::vector<NaturalLoop> findNaturalLoops(const ProgramCfg &cfg,
                                          const std::vector<int> &idom);

/**
 * The per-loop value dependence graph: nodes are the must-execute
 * instructions of one iteration in order; edges are def->use value
 * dependences weighted by the producer's latency, with distance 0
 * (same iteration) or 1 (loop-carried, via the iteration's last
 * writer).  Registers also written by a conditionally executed body
 * block contribute no edges — their producer varies by path, so any
 * single edge could overstate the recurrence.
 */
struct DepNode
{
    CodeLoc loc;
    Opcode op = Opcode::Halt;
    int latency = 1;
};

struct DepEdge
{
    int from = 0;
    int to = 0;
    int latency = 1;
    /** Iteration distance: 0 intra-iteration, 1 loop-carried. */
    int distance = 0;
};

struct LoopDepGraph
{
    std::vector<DepNode> nodes;
    std::vector<DepEdge> edges;
};

LoopDepGraph buildLoopDepGraph(const ProgramCfg &cfg,
                               const NaturalLoop &loop);

/**
 * Maximum cycle ratio sum(latency)/sum(distance) over the dependence
 * graph's cycles — the recurrence-constrained minimum initiation
 * interval (cycles per iteration).  0 when the graph is acyclic.
 * Computed by bisection with a positive-cycle (Bellman-Ford) test;
 * the returned value errs low, preserving bound soundness.
 */
double maxCycleRatio(const LoopDepGraph &graph);

/**
 * Resource-oblivious dataflow critical path of a single pass over the
 * program (back/retreating edges cut): the longest latency-weighted
 * def->use chain assuming infinite issue bandwidth.  The static
 * analogue of "how fast could this run with unbounded resources,
 * loops unrolled once".
 */
double dataflowCriticalPath(const ProgramCfg &cfg);

} // namespace analysis
} // namespace drsim

#endif // DRSIM_ANALYSIS_DATAFLOW_HH
