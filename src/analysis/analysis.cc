#include "analysis/analysis.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <sstream>

#include "analysis/cfg.hh"
#include "common/json.hh"
#include "isa/instruction.hh"

namespace drsim {
namespace analysis {

namespace {

// ------------------------------------------------------------------
// Register bitset helpers: bit index = class * 32 + register index.
// ------------------------------------------------------------------

using RegSet = std::uint64_t;

constexpr RegSet
regBit(RegId r)
{
    return RegSet{1} << (std::size_t(r.cls) * 32u + r.index);
}

/** The hardwired zero registers are always "assigned". */
constexpr RegSet kZeroRegs =
    (RegSet{1} << kZeroReg) | (RegSet{1} << (32 + kZeroReg));

const char *
regName(RegClass cls, int index)
{
    static thread_local char buf[8];
    std::snprintf(buf, sizeof(buf), "%s%d",
                  cls == RegClass::Int ? "r" : "f", index);
    return buf;
}

/** Source registers an instruction reads (0, 1 or 2 of them). */
int
readRegs(const Instruction &inst, RegId out[2])
{
    int n = 0;
    if (inst.src1.valid())
        out[n++] = inst.src1;
    if (inst.src2.valid())
        out[n++] = inst.src2;
    return n;
}

/** Destination register, invalid when the op produces no value. */
RegId
writtenReg(const Instruction &inst)
{
    return inst.dest;
}

Finding
makeFinding(const char *rule, Severity sev, const Program &prog,
            int block, int offset, std::string message)
{
    Finding f;
    f.rule = rule;
    f.severity = sev;
    f.block = block;
    f.offset = offset;
    if (block >= 0 && offset >= 0)
        f.pc = prog.pcOf({block, offset});
    f.message = std::move(message);
    return f;
}

// ------------------------------------------------------------------
// Pass 2: reachability findings.
// ------------------------------------------------------------------

void
reachabilityFindings(const ProgramCfg &cfg, std::vector<Finding> &out)
{
    const Program &prog = cfg.program();
    for (int b = 0; b < int(cfg.nodes().size()); ++b) {
        const auto &node = cfg.node(b);
        if (prog.block(b).insts.empty() || node.reachable)
            continue;
        out.push_back(makeFinding(
            rules::kUnreachable, Severity::Warning, prog, b, 0,
            "block is unreachable from the program entry"));
    }

    // Reachable blocks that can never reach Halt are a statically
    // guaranteed infinite loop; report the component once.
    int first = -1, count = 0;
    for (int b = 0; b < int(cfg.nodes().size()); ++b) {
        const auto &node = cfg.node(b);
        if (prog.block(b).insts.empty() || !node.reachable ||
            node.canExit) {
            continue;
        }
        if (first < 0)
            first = b;
        ++count;
    }
    if (first >= 0) {
        std::ostringstream os;
        os << "no path from this block reaches Halt (statically "
              "guaranteed infinite loop";
        if (count > 1)
            os << "; " << count << " blocks affected";
        os << ")";
        out.push_back(makeFinding(rules::kNoHalt, Severity::Error,
                                  prog, first, 0, os.str()));
    }
}

// ------------------------------------------------------------------
// Pass 3: definite-assignment (uninitialized reads) and liveness
// (dead writes).
// ------------------------------------------------------------------

void
defUseFindings(const ProgramCfg &cfg, const Options &opts,
               std::vector<Finding> &out)
{
    const Program &prog = cfg.program();
    const std::size_t n = cfg.nodes().size();

    RegSet entry_set = kZeroRegs;
    for (const RegId r : opts.abiInitializedRegs)
        if (r.valid())
            entry_set |= regBit(r);

    // Forward must-analysis: registers definitely written on *every*
    // path from entry to block start.  Join = intersection.
    constexpr RegSet kUniverse = ~RegSet{0};
    std::vector<RegSet> in(n, kUniverse);
    if (cfg.entry() >= 0)
        in[std::size_t(cfg.entry())] = entry_set;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const int b : cfg.rpo()) {
            RegSet state = in[std::size_t(b)];
            for (const Instruction &inst :
                 prog.block(b).insts) {
                const RegId w = writtenReg(inst);
                if (w.renamed())
                    state |= regBit(w);
            }
            for (const int s : cfg.node(b).succs) {
                const RegSet merged = in[std::size_t(s)] & state;
                if (merged != in[std::size_t(s)]) {
                    in[std::size_t(s)] = merged;
                    changed = true;
                }
            }
        }
    }

    // Check walk: first uninitialized read of each register.
    RegSet reported = 0;
    for (const int b : cfg.rpo()) {
        RegSet state = in[std::size_t(b)];
        const auto &insts = prog.block(b).insts;
        for (int i = 0; i < int(insts.size()); ++i) {
            const Instruction &inst = insts[std::size_t(i)];
            RegId reads[2];
            const int nr = readRegs(inst, reads);
            for (int k = 0; k < nr; ++k) {
                const RegId r = reads[k];
                if (r.isZero() || (regBit(r) & state) ||
                    (regBit(r) & reported)) {
                    continue;
                }
                reported |= regBit(r);
                std::ostringstream os;
                os << "read of " << regName(r.cls, r.index)
                   << " before any write reaches it (first of "
                      "possibly several; the loader zero-fills "
                      "registers, so this reads 0)";
                out.push_back(makeFinding(rules::kUninitRead,
                                          Severity::Error, prog, b, i,
                                          os.str()));
            }
            const RegId w = writtenReg(inst);
            if (w.renamed())
                state |= regBit(w);
        }
    }

    // Backward may-analysis: liveness.  gen = upward-exposed reads,
    // kill = writes; live-in = gen | (live-out & ~kill).
    std::vector<RegSet> gen(n, 0), kill(n, 0), live_out(n, 0);
    for (const int b : cfg.rpo()) {
        RegSet g = 0, k = 0;
        for (const Instruction &inst : prog.block(b).insts) {
            RegId reads[2];
            const int nr = readRegs(inst, reads);
            for (int i = 0; i < nr; ++i)
                if (!(regBit(reads[i]) & k))
                    g |= regBit(reads[i]);
            const RegId w = writtenReg(inst);
            if (w.renamed())
                k |= regBit(w);
        }
        gen[std::size_t(b)] = g;
        kill[std::size_t(b)] = k;
    }
    changed = true;
    while (changed) {
        changed = false;
        for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend();
             ++it) {
            const int b = *it;
            RegSet lo = 0;
            for (const int s : cfg.node(b).succs) {
                lo |= gen[std::size_t(s)] |
                      (live_out[std::size_t(s)] &
                       ~kill[std::size_t(s)]);
            }
            if (lo != live_out[std::size_t(b)]) {
                live_out[std::size_t(b)] = lo;
                changed = true;
            }
        }
    }

    // Dead-write walk (reverse per block).
    for (const int b : cfg.rpo()) {
        RegSet live = live_out[std::size_t(b)];
        const auto &insts = prog.block(b).insts;
        for (int i = int(insts.size()) - 1; i >= 0; --i) {
            const Instruction &inst = insts[std::size_t(i)];
            const RegId w = writtenReg(inst);
            if (w.renamed()) {
                if (!(regBit(w) & live)) {
                    std::ostringstream os;
                    os << "value written to "
                       << regName(w.cls, w.index)
                       << " is never read on any path";
                    out.push_back(makeFinding(
                        rules::kDeadWrite, Severity::Warning, prog, b,
                        i, os.str()));
                }
                live &= ~regBit(w);
            }
            RegId reads[2];
            const int nr = readRegs(inst, reads);
            for (int k = 0; k < nr; ++k)
                live |= regBit(reads[k]);
        }
    }
}

// ------------------------------------------------------------------
// Pass 4: integer value-range analysis + static memory bounds.
// ------------------------------------------------------------------

/** A signed-64 interval; `known == false` is Top (anything). */
struct Interval
{
    bool known = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    static Interval top() { return {}; }
    static Interval constant(std::int64_t v) { return {true, v, v}; }
    static Interval
    range(std::int64_t lo, std::int64_t hi)
    {
        return {true, lo, hi};
    }
    bool isConstant() const { return known && lo == hi; }
    bool
    operator==(const Interval &o) const
    {
        return known == o.known &&
               (!known || (lo == o.lo && hi == o.hi));
    }
};

Interval
hull(const Interval &a, const Interval &b)
{
    if (!a.known || !b.known)
        return Interval::top();
    return Interval::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

/** Checked arithmetic: Top on 64-bit overflow. */
Interval
addIv(const Interval &a, const Interval &b)
{
    if (!a.known || !b.known)
        return Interval::top();
    const __int128 lo = __int128(a.lo) + b.lo;
    const __int128 hi = __int128(a.hi) + b.hi;
    if (lo < std::numeric_limits<std::int64_t>::min() ||
        hi > std::numeric_limits<std::int64_t>::max()) {
        return Interval::top();
    }
    return Interval::range(std::int64_t(lo), std::int64_t(hi));
}

Interval
subIv(const Interval &a, const Interval &b)
{
    if (!b.known)
        return Interval::top();
    return addIv(a, Interval::range(-b.hi, -b.lo));
}

/** Per-block abstract state over the 32 integer registers. */
struct IntState
{
    std::array<Interval, kNumVirtualRegs> regs;
    bool
    operator==(const IntState &o) const
    {
        return regs == o.regs;
    }
};

Interval
readIv(const IntState &st, RegId r)
{
    if (!r.valid() || r.cls != RegClass::Int)
        return Interval::top();
    if (r.index == kZeroReg)
        return Interval::constant(0);
    return st.regs[r.index];
}

/** Abstract transfer of one instruction over the integer state. */
void
transfer(const Instruction &inst, IntState &st)
{
    const RegId d = inst.dest;
    const bool int_dest =
        d.renamed() && d.cls == RegClass::Int;
    if (!int_dest)
        return;

    const Interval a = readIv(st, inst.src1);
    const Interval b = inst.src2.valid()
                           ? readIv(st, inst.src2)
                           : Interval::constant(inst.imm);
    Interval r = Interval::top();
    switch (inst.op) {
      case Opcode::Add:
        r = addIv(a, b);
        break;
      case Opcode::Sub:
        r = subIv(a, b);
        break;
      case Opcode::And:
        // x & m with m >= 0 lands in [0, m] for any x.
        if (b.known && b.lo >= 0)
            r = Interval::range(0, b.hi);
        else if (a.known && a.lo >= 0)
            r = Interval::range(0, a.hi);
        break;
      case Opcode::Or:
      case Opcode::Xor:
        if (a.isConstant() && b.isConstant()) {
            r = Interval::constant(inst.op == Opcode::Or
                                       ? (a.lo | b.lo)
                                       : (a.lo ^ b.lo));
        }
        break;
      case Opcode::Sll:
        if (a.known && b.isConstant() && a.lo >= 0 && b.lo >= 0 &&
            b.lo < 63 &&
            a.hi <= (std::numeric_limits<std::int64_t>::max() >>
                     b.lo)) {
            r = Interval::range(a.lo << b.lo, a.hi << b.lo);
        }
        break;
      case Opcode::Srl:
        if (a.known && b.isConstant() && a.lo >= 0 && b.lo >= 0 &&
            b.lo < 64) {
            r = Interval::range(a.lo >> b.lo, a.hi >> b.lo);
        }
        break;
      case Opcode::Cmplt:
      case Opcode::Cmple:
      case Opcode::Cmpeq:
        r = Interval::range(0, 1);
        break;
      case Opcode::Mul:
        if (a.isConstant() && b.isConstant()) {
            const __int128 p = __int128(a.lo) * b.lo;
            if (p >= std::numeric_limits<std::int64_t>::min() &&
                p <= std::numeric_limits<std::int64_t>::max()) {
                r = Interval::constant(std::int64_t(p));
            }
        }
        break;
      default:
        // Loads, Ftoi, Jsr link values: unknown.
        break;
    }
    st.regs[d.index] = r;
}

void
memoryFindings(const ProgramCfg &cfg, std::vector<Finding> &out)
{
    const Program &prog = cfg.program();
    const std::size_t n = cfg.nodes().size();
    const Addr data_base = prog.dataBase();
    const Addr data_limit = prog.dataLimit();

    // Fixpoint over block-entry states with per-block widening: a
    // register whose interval keeps growing at a join collapses to
    // Top after two rounds, so termination is immediate in practice.
    std::vector<IntState> in(n);
    std::vector<std::uint8_t> visited(n, 0), widen_count(n, 0);
    if (cfg.entry() < 0)
        return;
    // The loader zero-fills every register.
    for (auto &iv : in[std::size_t(cfg.entry())].regs)
        iv = Interval::constant(0);
    visited[std::size_t(cfg.entry())] = 1;

    bool changed = true;
    int rounds = 0;
    while (changed && ++rounds < 64) {
        changed = false;
        for (const int b : cfg.rpo()) {
            if (!visited[std::size_t(b)])
                continue;
            IntState state = in[std::size_t(b)];
            for (const Instruction &inst : prog.block(b).insts)
                transfer(inst, state);
            for (const int s : cfg.node(b).succs) {
                auto &target = in[std::size_t(s)];
                if (!visited[std::size_t(s)]) {
                    visited[std::size_t(s)] = 1;
                    target = state;
                    changed = true;
                    continue;
                }
                IntState merged;
                for (int i = 0; i < kNumVirtualRegs; ++i) {
                    merged.regs[std::size_t(i)] =
                        hull(target.regs[std::size_t(i)],
                             state.regs[std::size_t(i)]);
                }
                if (!(merged == target)) {
                    if (widen_count[std::size_t(s)] >= 2) {
                        // Widen: growing registers go straight to Top.
                        for (int i = 0; i < kNumVirtualRegs; ++i) {
                            if (!(merged.regs[std::size_t(i)] ==
                                  target.regs[std::size_t(i)])) {
                                merged.regs[std::size_t(i)] =
                                    Interval::top();
                            }
                        }
                    } else {
                        ++widen_count[std::size_t(s)];
                    }
                    if (!(merged == target)) {
                        target = merged;
                        changed = true;
                    }
                }
            }
        }
    }

    // Check walk: bound every statically resolvable effective address.
    for (const int b : cfg.rpo()) {
        if (!visited[std::size_t(b)])
            continue;
        IntState state = in[std::size_t(b)];
        const auto &insts = prog.block(b).insts;
        for (int i = 0; i < int(insts.size()); ++i) {
            const Instruction &inst = insts[std::size_t(i)];
            if (inst.isMem()) {
                const Interval base = readIv(state, inst.src1);
                const Interval ea =
                    addIv(base, Interval::constant(inst.imm));
                if (ea.known) {
                    const bool oob =
                        ea.lo < std::int64_t(data_base) ||
                        __int128(ea.hi) + 8 >
                            __int128(data_limit);
                    if (oob) {
                        std::ostringstream os;
                        os << (inst.isStore() ? "store to"
                                              : "load from")
                           << " statically resolvable address";
                        if (ea.isConstant())
                            os << " 0x" << std::hex << ea.lo
                               << std::dec;
                        else
                            os << " range [0x" << std::hex << ea.lo
                               << ", 0x" << ea.hi << std::dec << "]";
                        os << " outside the data image [0x"
                           << std::hex << data_base << ", 0x"
                           << data_limit << std::dec << ")";
                        out.push_back(makeFinding(
                            rules::kOobAccess, Severity::Error, prog,
                            b, i, os.str()));
                    } else if (ea.isConstant() && (ea.lo & 7) != 0) {
                        std::ostringstream os;
                        os << "effective address 0x" << std::hex
                           << ea.lo << std::dec
                           << " is not 8-byte aligned (the emulator "
                              "silently rounds it down)";
                        out.push_back(makeFinding(
                            rules::kMisaligned, Severity::Warning,
                            prog, b, i, os.str()));
                    }
                }
            }
            transfer(inst, state);
        }
    }
}

// ------------------------------------------------------------------
// Pass 5: local lints.
// ------------------------------------------------------------------

void
lintFindings(const ProgramCfg &cfg, std::vector<Finding> &out)
{
    const Program &prog = cfg.program();
    for (int b = 0; b < int(cfg.nodes().size()); ++b) {
        const auto &insts = prog.block(b).insts;
        for (int i = 0; i < int(insts.size()); ++i) {
            const Instruction &inst = insts[std::size_t(i)];
            if (inst.dest.valid() && inst.dest.isZero()) {
                std::ostringstream os;
                os << "write to the hardwired zero register "
                   << regName(inst.dest.cls, inst.dest.index)
                   << " is discarded";
                out.push_back(makeFinding(rules::kZeroRegWrite,
                                          Severity::Warning, prog, b,
                                          i, os.str()));
            }
            if (inst.isControl() && inst.target >= 0) {
                const CodeLoc t =
                    prog.blockEntryResolved(inst.target);
                if (t.valid() && t.block == b && t.offset == i) {
                    out.push_back(makeFinding(
                        rules::kSelfBranch, Severity::Warning, prog,
                        b, i,
                        "branch targets itself (single-instruction "
                        "spin loop)"));
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Pass 6: instruction-mix cross-check.
// ------------------------------------------------------------------

void
mixFindings(const ProgramCfg &cfg, const Options &opts,
            std::vector<Finding> &out)
{
    const MixTarget *target = mixTargetFor(cfg.program().name());
    if (target == nullptr)
        return;
    const MixEstimate est = estimateMix(cfg.program());
    const struct
    {
        const char *name;
        double got, want;
    } cats[] = {
        {"load", est.loadPct, target->loadPct},
        {"store", est.storePct, target->storePct},
        {"cond-branch", est.condBranchPct, target->condBranchPct},
        {"fp", est.fpPct, target->fpPct},
    };
    for (const auto &c : cats) {
        const double drift = c.got - c.want;
        if (drift > opts.mixTolerancePct ||
            drift < -opts.mixTolerancePct) {
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "static %s mix %.1f%% drifted from the "
                          "kernel's Table-1 target %.1f%% "
                          "(tolerance +/-%.1f points)",
                          c.name, c.got, c.want,
                          opts.mixTolerancePct);
            out.push_back(makeFinding(rules::kMixDrift,
                                      Severity::Error,
                                      cfg.program(), -1, -1, buf));
        }
    }
}

} // namespace

// ------------------------------------------------------------------
// Public API.
// ------------------------------------------------------------------

const char *
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

std::size_t
Report::count(Severity sev) const
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        n += f.severity == sev ? 1 : 0;
    return n;
}

std::string
Report::summary() const
{
    const std::size_t errors = count(Severity::Error);
    const std::size_t warnings = count(Severity::Warning);
    std::ostringstream os;
    os << errors << (errors == 1 ? " error, " : " errors, ")
       << warnings << (warnings == 1 ? " warning" : " warnings");
    return os.str();
}

Report
analyzeProgram(const Program &program, const Options &opts)
{
    Report report;
    report.program = program.name();

    const ProgramCfg cfg(program);
    report.findings = cfg.structuralFindings();
    if (cfg.valid()) {
        reachabilityFindings(cfg, report.findings);
        defUseFindings(cfg, opts, report.findings);
        memoryFindings(cfg, report.findings);
        lintFindings(cfg, report.findings);
        if (opts.checkMix)
            mixFindings(cfg, opts, report.findings);
    }

    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.block != b.block)
                             return a.block < b.block;
                         if (a.offset != b.offset)
                             return a.offset < b.offset;
                         return a.rule < b.rule;
                     });
    return report;
}

std::string
formatFinding(const Finding &f)
{
    std::ostringstream os;
    os << severityName(f.severity) << "[" << f.rule << "]";
    if (f.block >= 0) {
        os << " block " << f.block;
        if (f.offset >= 0)
            os << " inst " << f.offset << " (pc 0x" << std::hex
               << f.pc << std::dec << ")";
    }
    os << ": " << f.message;
    return os.str();
}

std::string
reportToJson(const Report &report)
{
    std::ostringstream os;
    os << "{\"schema\":\"drsim-lint-v1\",\"program\":\""
       << json::escape(report.program) << "\",\"errors\":"
       << report.count(Severity::Error)
       << ",\"warnings\":" << report.count(Severity::Warning)
       << ",\"findings\":[";
    bool first = true;
    for (const Finding &f : report.findings) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"rule\":\"" << json::escape(f.rule)
           << "\",\"severity\":\"" << severityName(f.severity)
           << "\",\"block\":" << f.block << ",\"offset\":" << f.offset
           << ",\"pc\":" << f.pc << ",\"message\":\""
           << json::escape(f.message) << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace analysis
} // namespace drsim
