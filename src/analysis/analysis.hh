/**
 * @file
 * Static verifier and linter for drsim guest programs.
 *
 * The paper's evaluation stands or falls with the nine synthetic
 * kernels faithfully matching their SPEC92 Table-1 signatures; a
 * malformed kernel (uninitialized register read, branch into a dead
 * block, out-of-bounds data access, drifted instruction mix) otherwise
 * surfaces only as a silently skewed IPC deep inside a sweep.  This
 * subsystem analyzes the static `Program` CFG *before* any cycle is
 * simulated and reports findings with a stable rule id, a severity,
 * and an exact code location.
 *
 * Pass order (each pass feeds the next):
 *   1. CFG construction + structural checks (dangling branch targets,
 *      falling off the end of the code segment, empty programs);
 *   2. reachability (unreachable blocks; reachable blocks that can
 *      never reach Halt, i.e. statically guaranteed infinite loops);
 *   3. forward definite-assignment dataflow per register class
 *      (reads of never-written registers) and backward liveness
 *      (dead writes);
 *   4. value-range (interval) analysis over the integer registers,
 *      used to bound every statically resolvable load/store effective
 *      address against the program's data image;
 *   5. local lints (writes to the hardwired zero register, branches
 *      that target themselves);
 *   6. loop-aware static instruction-mix estimation, cross-checked
 *      against the kernel's registered Table-1 target mix.
 *
 * Severity model:
 *   Error   — the program is wrong or would silently skew results;
 *             `verifyProgram()` (src/sim) refuses to simulate it.
 *   Warning — suspicious but defined behaviour (the drsim ABI
 *             zero-fills all registers and the emulator aligns every
 *             access), worth a human look.
 *
 * Consumers: `verifyProgram()` in src/sim (fail-fast before every
 * simulation), the `drsim_lint` CLI (tools/), and tests.
 */

#ifndef DRSIM_ANALYSIS_ANALYSIS_HH
#define DRSIM_ANALYSIS_ANALYSIS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "isa/reg.hh"
#include "workloads/program.hh"

namespace drsim {
namespace analysis {

enum class Severity : std::uint8_t { Warning = 0, Error = 1 };

/** Stable machine-readable name ("warning" / "error"). */
const char *severityName(Severity sev);

/** Stable rule identifiers (also the `rule` field of JSON output). */
namespace rules {
inline constexpr const char *kEmptyProgram = "cfg-empty";
inline constexpr const char *kInvalidTarget = "cfg-invalid-target";
inline constexpr const char *kFallOffEnd = "cfg-fall-off-end";
inline constexpr const char *kUnreachable = "cfg-unreachable";
inline constexpr const char *kNoHalt = "cfg-no-halt";
inline constexpr const char *kUninitRead = "dataflow-uninit-read";
inline constexpr const char *kDeadWrite = "dataflow-dead-write";
inline constexpr const char *kZeroRegWrite = "lint-zero-reg-write";
inline constexpr const char *kSelfBranch = "lint-self-branch";
inline constexpr const char *kOobAccess = "mem-oob-access";
inline constexpr const char *kMisaligned = "mem-misaligned";
inline constexpr const char *kMixDrift = "mix-drift";
} // namespace rules

/** One diagnostic: rule id, severity, and an exact code location. */
struct Finding
{
    std::string rule;
    Severity severity = Severity::Warning;
    /** Basic-block index; -1 for whole-program findings. */
    std::int32_t block = -1;
    /** Instruction offset within the block; -1 when not applicable. */
    std::int32_t offset = -1;
    /** PC of the offending instruction (0 when not applicable). */
    Addr pc = 0;
    std::string message;
};

/** Tuning knobs for a verification run. */
struct Options
{
    /**
     * Registers the surrounding harness guarantees to initialize
     * before entry (beyond r31/f31, which are hardwired zero).  Reads
     * of these are never flagged as uninitialized.  The drsim ABI
     * itself declares none — the loader zero-fills every register,
     * but a kernel *reading* that zero is almost always a bug.
     */
    std::vector<RegId> abiInitializedRegs;

    /** Apply the instruction-mix rule when a target is registered. */
    bool checkMix = true;

    /** Absolute tolerance (percentage points) for each mix category. */
    double mixTolerancePct = 3.0;
};

/** The result of analyzing one program. */
struct Report
{
    std::string program;
    /** Sorted by (block, offset, rule) for deterministic output. */
    std::vector<Finding> findings;

    std::size_t count(Severity sev) const;
    std::size_t errorCount() const { return count(Severity::Error); }
    bool hasErrors() const { return errorCount() > 0; }

    /** "2 errors, 1 warning" (for log lines and fatal messages). */
    std::string summary() const;
};

/** Run every pass over @p program and collect findings. */
Report analyzeProgram(const Program &program, const Options &opts = {});

/**
 * Render one finding as a human-readable single line:
 * "error[mem-oob-access] block 3 inst 2 (pc 0x1058): ..."
 */
std::string formatFinding(const Finding &finding);

/**
 * Serialize a report as a strict-JSON object (schema documented in
 * tools/drsim_lint.cc and docs/RESULTS_SCHEMA.md); round-trips through
 * json::parse().
 */
std::string reportToJson(const Report &report);

/**
 * Loop-aware static instruction-mix estimate.  Block execution
 * weights come from a back-edge heuristic: a block nested in d
 * natural loops weighs 100^min(d,3), so loop bodies dominate the
 * estimate the way they dominate the dynamic stream.  Both arms of a
 * conditional count fully, so the estimate brackets — rather than
 * equals — the dynamic mix; targets are calibrated in this
 * estimator space (see mix.cc).
 */
struct MixEstimate
{
    double loadPct = 0.0;
    double storePct = 0.0;
    double condBranchPct = 0.0;
    double fpPct = 0.0;
    /** Total block-weighted instruction mass behind the estimate. */
    double totalWeight = 0.0;
};

MixEstimate estimateMix(const Program &program);

/** Registered estimator-space mix signature for one kernel. */
struct MixTarget
{
    double loadPct;
    double storePct;
    double condBranchPct;
    double fpPct;
};

/**
 * Target mix for a suite kernel by program name; nullptr when the
 * program has no registered signature (mix rule is skipped then).
 */
const MixTarget *mixTargetFor(const std::string &name);

} // namespace analysis
} // namespace drsim

#endif // DRSIM_ANALYSIS_ANALYSIS_HH
