#include "workloads/classic.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/builder.hh"

namespace drsim {

Program
makeDaxpy(int n, int reps)
{
    if (n < 1 || reps < 1)
        fatal("daxpy needs positive n and reps");
    ProgramBuilder b("daxpy");
    Rng rng(0xdaa);
    const Addr x = b.allocWords(n);
    const Addr y = b.allocWords(n);
    const Addr consts = b.allocWords(1);
    b.initDouble(consts, 1.0009765625); // the scalar a
    for (int i = 0; i < n; ++i) {
        b.initDouble(x + Addr(i) * 8, rng.uniform());
        b.initDouble(y + Addr(i) * 8, rng.uniform());
    }

    const RegId px = intReg(1);
    const RegId py = intReg(2);
    const RegId icnt = intReg(3);
    const RegId rcnt = intReg(4);
    const RegId t0 = intReg(5);
    const RegId fa = fpReg(1);
    const RegId fx = fpReg(2);
    const RegId fy = fpReg(3);
    const RegId ft = fpReg(4);

    b.li(t0, std::int64_t(consts));
    b.ldt(fa, t0, 0);
    b.li(rcnt, reps);
    const auto repTop = b.here();
    b.li(px, std::int64_t(x));
    b.li(py, std::int64_t(y));
    b.li(icnt, n);
    const auto top = b.here();
    b.ldt(fx, px, 0);
    b.ldt(fy, py, 0);
    b.fmul(ft, fa, fx);
    b.fadd(fy, fy, ft);
    b.stt(fy, py, 0);
    b.addi(px, px, 8);
    b.addi(py, py, 8);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, top);
    b.subi(rcnt, rcnt, 1);
    b.bne(rcnt, repTop);
    b.halt();
    return b.build();
}

Program
makeSieve(int limit)
{
    if (limit < 4)
        fatal("sieve needs a limit of at least 4");
    ProgramBuilder b("sieve");
    // One 8-byte flag word per candidate (simple, load/store heavy).
    const Addr flags = b.allocWords(limit);
    for (int i = 2; i < limit; ++i)
        b.initWord(flags + Addr(i) * 8, 1);

    const RegId base = intReg(1);
    const RegId p = intReg(2);
    const RegId m = intReg(3);
    const RegId count = intReg(20);
    const RegId lim = intReg(4);
    const RegId t0 = intReg(5);
    const RegId t1 = intReg(6);
    const RegId flag = intReg(7);

    b.li(base, std::int64_t(flags));
    b.li(lim, limit);
    b.li(count, 0);
    b.li(p, 2);

    const auto pTop = b.here();
    const auto notPrime = b.newLabel();
    const auto markDone = b.newLabel();
    const auto markTop = b.newLabel();
    const auto done = b.newLabel();

    // flag = flags[p]
    b.slli(t0, p, 3);
    b.add(t0, t0, base);
    b.ldq(flag, t0, 0);
    b.beq(flag, notPrime);
    b.addi(count, count, 1);
    // mark multiples from p*p
    b.mul(m, p, p);
    b.bind(markTop);
    b.cmplt(t1, m, lim);
    b.beq(t1, markDone);
    b.slli(t0, m, 3);
    b.add(t0, t0, base);
    b.stq(intReg(kZeroReg), t0, 0); // flags[m] = 0
    b.add(m, m, p);
    b.br(markTop);
    b.bind(markDone);
    b.bind(notPrime);
    b.addi(p, p, 1);
    b.cmplt(t1, p, lim);
    b.bne(t1, pTop);
    b.br(done);
    b.bind(done);
    b.halt();
    return b.build();
}

Program
makeQueens(int n)
{
    if (n < 4 || n > 16)
        fatal("queens supports 4 <= n <= 16");
    ProgramBuilder b("queens");
    // Explicit per-depth stacks of the classic bitmask formulation.
    const Addr avail = b.allocWords(n + 1);
    const Addr cols = b.allocWords(n + 1);
    const Addr ld = b.allocWords(n + 1);
    const Addr rd = b.allocWords(n + 1);

    const RegId depth = intReg(1);
    const RegId full = intReg(2);
    const RegId pAvail = intReg(3);
    const RegId pCols = intReg(4);
    const RegId pLd = intReg(5);
    const RegId pRd = intReg(6);
    const RegId av = intReg(7);
    const RegId bit = intReg(8);
    const RegId rest = intReg(9);
    const RegId c = intReg(11);
    const RegId l = intReg(12);
    const RegId r = intReg(13);
    const RegId blocked = intReg(14);
    const RegId count = intReg(20);
    const RegId t0 = intReg(15);
    const RegId t1 = intReg(16);
    const RegId cond = intReg(17);

    b.li(full, (std::int64_t{1} << n) - 1);
    b.li(pAvail, std::int64_t(avail));
    b.li(pCols, std::int64_t(cols));
    b.li(pLd, std::int64_t(ld));
    b.li(pRd, std::int64_t(rd));
    b.li(count, 0);
    b.li(depth, 0);
    // cols[0] = ld[0] = rd[0] = 0 (memory reads as zero);
    // avail[0] = full.
    b.stq(full, pAvail, 0);

    const auto top = b.here();
    const auto hasBit = b.newLabel();
    const auto push = b.newLabel();
    const auto doneLbl = b.newLabel();

    b.slli(t0, depth, 3);
    b.add(t1, t0, pAvail);
    b.ldq(av, t1, 0);
    b.bne(av, hasBit);
    // Backtrack: pop a level; finished when depth underflows.
    b.subi(depth, depth, 1);
    b.cmplti(cond, depth, 0);
    b.bne(cond, doneLbl);
    b.br(top);

    b.bind(hasBit);
    b.sub(bit, intReg(kZeroReg), av); // -avail
    b.and_(bit, bit, av);             // lowest set bit
    b.xor_(rest, av, bit);
    b.stq(rest, t1, 0);               // consume the bit
    b.cmpeqi(cond, depth, n - 1);
    b.beq(cond, push);
    b.addi(count, count, 1);          // queen on the last row
    b.br(top);

    b.bind(push);
    b.add(t1, t0, pCols);
    b.ldq(c, t1, 0);
    b.add(t1, t0, pLd);
    b.ldq(l, t1, 0);
    b.add(t1, t0, pRd);
    b.ldq(r, t1, 0);
    b.or_(c, c, bit);
    b.or_(l, l, bit);
    b.slli(l, l, 1);
    b.and_(l, l, full);
    b.or_(r, r, bit);
    b.srli(r, r, 1);
    b.addi(depth, depth, 1);
    b.slli(t0, depth, 3);
    b.add(t1, t0, pCols);
    b.stq(c, t1, 0);
    b.add(t1, t0, pLd);
    b.stq(l, t1, 0);
    b.add(t1, t0, pRd);
    b.stq(r, t1, 0);
    b.or_(blocked, c, l);
    b.or_(blocked, blocked, r);
    b.and_(blocked, blocked, full);
    b.xor_(blocked, blocked, full);   // full & ~(c|l|r)
    b.add(t1, t0, pAvail);
    b.stq(blocked, t1, 0);
    b.br(top);

    b.bind(doneLbl);
    b.halt();
    return b.build();
}

Program
makeWordCopy(int words, int reps)
{
    if (words < 1 || reps < 1)
        fatal("wordcopy needs positive sizes");
    ProgramBuilder b("wordcopy");
    Rng rng(0xc0b1);
    const Addr src = b.allocWords(words);
    const Addr dst = b.allocWords(words);
    for (int i = 0; i < words; ++i)
        b.initWord(src + Addr(i) * 8, rng.next());

    const RegId ps = intReg(1);
    const RegId pd = intReg(2);
    const RegId icnt = intReg(3);
    const RegId rcnt = intReg(4);
    const RegId v = intReg(5);
    const RegId w = intReg(6);
    const RegId cond = intReg(7);
    const RegId mism = intReg(20);

    b.li(mism, 0);
    b.li(rcnt, reps);
    const auto repTop = b.here();
    // Copy pass.
    b.li(ps, std::int64_t(src));
    b.li(pd, std::int64_t(dst));
    b.li(icnt, words);
    const auto copyTop = b.here();
    b.ldq(v, ps, 0);
    b.stq(v, pd, 0);
    b.addi(ps, ps, 8);
    b.addi(pd, pd, 8);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, copyTop);
    // Compare pass.
    b.li(ps, std::int64_t(src));
    b.li(pd, std::int64_t(dst));
    b.li(icnt, words);
    const auto cmpTop = b.here();
    const auto same = b.newLabel();
    b.ldq(v, ps, 0);
    b.ldq(w, pd, 0);
    b.cmpeq(cond, v, w);
    b.bne(cond, same);
    b.addi(mism, mism, 1);
    b.bind(same);
    b.addi(ps, ps, 8);
    b.addi(pd, pd, 8);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, cmpTop);
    b.subi(rcnt, rcnt, 1);
    b.bne(rcnt, repTop);
    b.halt();
    return b.build();
}

Program
makeWhet(int iters)
{
    if (iters < 1)
        fatal("whet needs a positive iteration count");
    ProgramBuilder b("whet");
    const Addr consts = b.allocWords(4);
    b.initDouble(consts, 1.0);
    b.initDouble(consts + 8, 0.5);
    b.initDouble(consts + 16, 2.75);
    b.initDouble(consts + 24, 0.0625);

    const RegId icnt = intReg(1);
    const RegId t0 = intReg(2);
    const RegId c1 = fpReg(1);
    const RegId c2 = fpReg(2);
    const RegId c3 = fpReg(3);
    const RegId c4 = fpReg(4);
    const RegId x = fpReg(5);
    const RegId y = fpReg(6);
    const RegId z = fpReg(7);
    const RegId t = fpReg(8);

    b.li(t0, std::int64_t(consts));
    b.ldt(c1, t0, 0);
    b.ldt(c2, t0, 8);
    b.ldt(c3, t0, 16);
    b.ldt(c4, t0, 24);
    b.fadd(x, c1, c2);   // 1.5
    b.fadd(y, c2, c4);   // 0.5625
    b.li(icnt, iters);

    const auto top = b.here();
    // Module-3-flavoured kernel: x,y cycle through mul/add/div/sqrt.
    b.fadd(t, x, y);
    b.fmul(z, t, c2);
    b.fadd(t, z, c4);
    b.fsqrt(x, t);       // stays near 1: sqrt of ~1.1
    b.fmul(t, x, c3);
    b.fdivd(y, x, t);    // ~1/2.75
    b.fadd(y, y, c2);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, top);
    b.halt();
    return b.build();
}

std::vector<std::pair<std::string, Program>>
buildClassicSuite()
{
    std::vector<std::pair<std::string, Program>> suite;
    suite.emplace_back("daxpy", makeDaxpy(4096, 8));
    suite.emplace_back("sieve", makeSieve(4000));
    suite.emplace_back("queens", makeQueens(9));
    suite.emplace_back("wordcopy", makeWordCopy(2048, 10));
    suite.emplace_back("whet", makeWhet(1500));
    return suite;
}

} // namespace drsim
