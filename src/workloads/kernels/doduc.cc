/**
 * @file
 * doduc-like kernel: Monte-Carlo-ish floating-point simulation with a
 * small, cache-resident working set.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~1%   -> all table lookups land in 16 KB of data;
 *   cbr mispredict ~10%  -> one moderately random branch (~25% taken)
 *                           plus a rare divide-guard branch and two
 *                           predictable loop branches;
 *   FP-heavy mix with occasional double-precision divides.
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeDoduc(int scale, std::uint64_t seed)
{
    ProgramBuilder b("doduc");
    Rng rng(0xd0d0c ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kTabWords = 1024; // 8 KB per table
    const Addr tabA = b.allocWords(kTabWords);
    const Addr tabB = b.allocWords(kTabWords);
    kutil::initRandomDoubles(b, tabA, kTabWords, rng, 0.25, 2.0);
    kutil::initRandomDoubles(b, tabB, kTabWords, rng, 0.25, 2.0);

    const RegId x = intReg(1);
    const RegId baseA = intReg(2);
    const RegId baseB = intReg(3);
    const RegId count = intReg(4);
    const RegId ia = intReg(5);
    const RegId ib = intReg(6);
    const RegId t0 = intReg(7);
    const RegId cond = intReg(8);

    const RegId fa = fpReg(1);
    const RegId fb = fpReg(2);
    const RegId fc = fpReg(3);
    const RegId fd = fpReg(4);
    const RegId acc = fpReg(5);
    const RegId acc2 = fpReg(6);
    const RegId fdiv = fpReg(7);
    const RegId fone = fpReg(8);
    const RegId ftmp = fpReg(9);

    b.li(x, 0xd0d0'cafe'f00dull);
    b.li(baseA, std::int64_t(tabA));
    b.li(baseB, std::int64_t(tabB));
    b.li(count, std::int64_t(scale) * 320);
    b.li(t0, 1);
    b.itof(fone, t0);
    b.fadd(acc, fone, fone);
    b.fadd(acc2, fone, fone);

    const auto top = b.here();
    const auto nodiv = b.newLabel();
    const auto low = b.newLabel();
    const auto join = b.newLabel();

    kutil::emitXorshift(b, x, t0);
    b.andi(ia, x, kTabWords - 1);
    b.slli(ia, ia, 3);
    b.add(ia, ia, baseA);
    b.ldt(fa, ia, 0);                       // hit
    b.srli(ib, x, 10);
    b.andi(ib, ib, kTabWords - 1);
    b.slli(ib, ib, 3);
    b.add(ib, ib, baseB);
    b.ldt(fb, ib, 0);                       // hit
    b.ldt(ftmp, ia, 8);                     // hit
    b.fmul(fc, fa, fb);
    b.fadd(acc, acc, fc);
    b.fmul(fd, fc, ftmp);
    b.fadd(acc2, acc2, fd);
    // Rare divide: taken with probability ~6/64.
    kutil::emitChance(b, cond, x, 20, 6, t0);
    b.beq(cond, nodiv);
    b.fadd(ftmp, acc2, fone);
    b.fdivd(fdiv, acc, ftmp);
    b.fadd(acc, fdiv, fone);
    b.bind(nodiv);
    // Moderately random direction: taken with probability ~11/64.
    kutil::emitChance(b, cond, x, 26, 11, t0);
    b.bne(cond, low);
    b.fadd(acc2, acc2, fc);
    b.stt(acc, ia, 0);
    b.br(join);
    b.bind(low);
    b.fsub(acc2, acc2, fd);
    b.stt(acc2, ib, 0);
    b.bind(join);
    // Keep the accumulators bounded so branches stay data-driven.
    b.fmul(acc, acc, fone);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
