/**
 * @file
 * su2cor-like kernel: quantum-lattice style streaming linear algebra —
 * long unit-stride sweeps over arrays much larger than the cache.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~17-22% -> three streaming operand arrays (512 KB
 *                             each, one compulsory miss per 32 B line)
 *                             diluted by one cached coefficient load;
 *   cbr mispredict ~7%     -> predictable loop branch + one biased
 *                             data test;
 *   FP multiply/accumulate mix, stores stream to a result array
 *                             (write-around: no fetch traffic).
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeSu2cor(int scale, std::uint64_t seed)
{
    ProgramBuilder b("su2cor");
    Rng rng(0x52c02 ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kStreamWords = 65536;  // 512 KB per operand array
    constexpr int kCoefWords = 512;      // 4 KB cached coefficients
    const Addr arrA = b.allocWords(kStreamWords);
    kutil::staggerPad(b, 1);
    const Addr arrB = b.allocWords(kStreamWords);
    kutil::staggerPad(b, 2);
    const Addr arrC = b.allocWords(kStreamWords);
    kutil::staggerPad(b, 3);
    const Addr arrOut = b.allocWords(kStreamWords);
    const Addr coef = b.allocWords(kCoefWords);
    const Addr constQuarter = b.allocWords(1);
    b.initDouble(constQuarter, 0.25);
    kutil::initRandomDoubles(b, arrA, kStreamWords, rng, -1.0, 1.0);
    kutil::initRandomDoubles(b, arrB, kStreamWords, rng, -1.0, 1.0);
    kutil::initRandomDoubles(b, arrC, kStreamWords, rng, -1.0, 1.0);
    kutil::initRandomDoubles(b, coef, kCoefWords, rng, 0.5, 1.5);

    const RegId pa = intReg(1);
    const RegId pb = intReg(2);
    const RegId pc = intReg(3);
    const RegId po = intReg(4);
    const RegId pcoef = intReg(5);
    const RegId count = intReg(6);
    const RegId i = intReg(7);
    const RegId t0 = intReg(8);
    const RegId caddr = intReg(9);

    const RegId fa = fpReg(1);
    const RegId fb = fpReg(2);
    const RegId fc = fpReg(3);
    const RegId fk = fpReg(4);
    const RegId acc = fpReg(5);
    const RegId acc2 = fpReg(10);
    const RegId prod = fpReg(6);
    const RegId ftmp = fpReg(7);
    const RegId fcond = fpReg(8);
    const RegId half = fpReg(9);

    b.li(pa, std::int64_t(arrA));
    b.li(pb, std::int64_t(arrB));
    b.li(pc, std::int64_t(arrC));
    b.li(po, std::int64_t(arrOut));
    b.li(pcoef, std::int64_t(coef));
    b.li(count, std::int64_t(scale) * 420);
    b.li(i, 0);
    b.li(t0, std::int64_t(constQuarter));
    b.ldt(half, t0, 0);                      // 0.25 threshold constant
    b.fadd(acc, half, half);
    b.fadd(acc2, half, half);

    const auto top = b.here();
    const auto noFix = b.newLabel();
    const auto wrap = b.newLabel();
    const auto go = b.newLabel();

    b.ldt(fa, pa, 0);                        // stream: ~25% miss
    b.ldt(fb, pb, 0);                        // stream: ~25% miss
    b.ldt(fc, pc, 0);                        // stream: ~25% miss
    b.andi(t0, i, kCoefWords - 1);
    b.slli(caddr, t0, 3);
    b.add(caddr, caddr, pcoef);
    b.ldt(fk, caddr, 0);                     // cached
    b.fmul(prod, fa, fb);
    b.fmul(ftmp, prod, fk);
    b.fadd(acc, acc, ftmp);
    b.fmul(ftmp, fc, fk);
    b.fadd(acc2, acc2, ftmp);
    // Gauge fix-up: |prod| >= 1 happens on a biased minority of sites.
    b.fcmplt(fcond, prod, half);
    b.fbne(fcond, noFix);
    b.fsub(acc, acc, prod);
    b.bind(noFix);
    b.fadd(ftmp, acc, acc2);
    b.stt(ftmp, po, 0);                      // streaming store
    b.addi(pa, pa, 8);
    b.addi(pb, pb, 8);
    b.addi(pc, pc, 8);
    b.addi(po, po, 8);
    b.addi(i, i, 1);
    // Wrap the stream pointers so long runs keep streaming.
    b.andi(t0, i, kStreamWords - 1);
    b.bne(t0, go);
    b.bind(wrap);
    b.li(pa, std::int64_t(arrA));
    b.li(pb, std::int64_t(arrB));
    b.li(pc, std::int64_t(arrC));
    b.li(po, std::int64_t(arrOut));
    b.bind(go);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
