/**
 * @file
 * gcc1-like kernel: irregular pointer-chasing over small linked
 * structures with hard-to-predict control flow and a helper routine
 * reached by call/return.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~1%     -> a 16 KB node pool, fully cached;
 *   cbr mispredict ~19-20% -> one essentially random dispatch branch
 *                             (~50% taken), one weakly biased branch
 *                             (~16% taken), a biased call guard, and
 *                             a predictable loop branch.  Branch
 *                             conditions mix an xorshift stream with
 *                             loaded node data so the outcome sequence
 *                             never settles into a learnable period;
 *   loads ~22% of executed instructions, integer-only.
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeGcc1(int scale, std::uint64_t seed)
{
    ProgramBuilder b("gcc1");
    Rng rng(0x9cc1 ^ (seed * 0x9e3779b97f4a7c15ull));

    // Node pool: 512 nodes x 4 words (next, kind, value, aux) = 16 KB.
    constexpr int kNodes = 512;
    const Addr pool = b.allocWords(kNodes * 4);
    constexpr int kSymWords = 32768; // 256 KB symbol table
    const Addr sym = b.allocWords(kSymWords);
    for (int i = 0; i < kNodes; ++i) {
        const Addr node = pool + Addr(i) * 32;
        const int next = int(rng.below(kNodes));
        b.initWord(node + 0, pool + Addr(next) * 32);
        b.initWord(node + 8, rng.next());
        b.initWord(node + 16, rng.next());
        b.initWord(node + 24, rng.next());
    }

    const RegId x = intReg(11);      // xorshift entropy stream
    const RegId node = intReg(1);
    const RegId count = intReg(2);
    const RegId kind = intReg(3);
    const RegId value = intReg(4);
    const RegId aux = intReg(5);
    const RegId sum = intReg(6);
    const RegId t0 = intReg(7);
    const RegId cond = intReg(8);
    const RegId link = intReg(26);
    const RegId harg = intReg(9);
    const RegId hres = intReg(10);

    const auto helper = b.newLabel();
    const auto start = b.newLabel();

    b.br(start);

    // Helper routine: fold an operand (models a tiny tree-walk step).
    b.bind(helper);
    b.slli(hres, harg, 3);
    b.xor_(hres, hres, harg);
    b.srli(t0, hres, 9);
    b.add(hres, hres, t0);
    b.ret(link);

    b.bind(start);
    b.li(node, std::int64_t(pool));
    b.li(count, std::int64_t(scale) * 340);
    b.li(sum, 0);
    b.li(x, 0x9cc1'feed'beefll);

    const auto top = b.here();
    const auto elsePath = b.newLabel();
    const auto skipAux = b.newLabel();
    const auto noCall = b.newLabel();
    const auto join = b.newLabel();

    b.ldq(kind, node, 8);                      // hit
    b.ldq(value, node, 16);                    // hit
    kutil::emitXorshift(b, x, t0);
    // Essentially random dispatch (p ~ 32/64): node data xor entropy.
    b.xor_(t0, kind, x);
    b.srli(t0, t0, 9);
    b.andi(t0, t0, 63);
    b.cmplti(cond, t0, 32);
    b.bne(cond, elsePath);
    b.add(sum, sum, value);
    b.ldq(aux, node, 24);                      // hit
    b.xor_(sum, sum, aux);
    b.br(join);
    b.bind(elsePath);
    b.sub(sum, sum, value);
    // Weakly biased test (p ~ 16/64 taken).
    b.xor_(t0, value, x);
    b.srli(t0, t0, 23);
    b.andi(t0, t0, 63);
    b.cmplti(cond, t0, 16);
    b.beq(cond, skipAux);
    b.ldq(aux, node, 24);                      // hit
    b.add(sum, sum, aux);
    b.bind(skipAux);
    b.bind(join);
    // Occasional helper call (p ~ 8/64), perfectly predicted control.
    kutil::emitChance(b, cond, x, 37, 8, t0);
    b.beq(cond, noCall);
    b.mov(harg, sum);
    b.jsr(link, helper);
    b.add(sum, sum, hres);
    b.stq(sum, node, 16);                      // occasional node update
    // Rare symbol-table lookup: the source of gcc1's ~1% miss rate.
    b.srli(t0, x, 19);
    b.andi(t0, t0, kSymWords - 1);
    b.slli(t0, t0, 3);
    b.addi(t0, t0, std::int64_t(sym));
    b.ldq(aux, t0, 0);
    b.xor_(sum, sum, aux);
    b.bind(noCall);
    b.ldq(node, node, 0);                      // chase next pointer
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
