/**
 * @file
 * ora-like kernel: ray/surface intersection arithmetic dominated by
 * long serial chains through the unpipelined FP divide/sqrt unit.
 *
 * SPEC92 signature targeted (paper Table 1):
 *   load miss rate 0%   -> a tiny table of surface constants;
 *   cbr mispredict ~6%  -> one ~88/12 biased hit/miss test;
 *   commit IPC ~1.9 at 4-way and barely higher at 8-way: two
 *   independent ray chains keep some ILP, but the single (4-way) or
 *   dual (8-way) unpipelined divider and the chain latency cap it —
 *   issue IPC == commit IPC because there is almost nothing to
 *   mispredict (matching the paper's table, where ora executes no
 *   wrong-path instructions to speak of).
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeOra(int scale, std::uint64_t seed)
{
    ProgramBuilder b("ora");
    Rng rng(0x02a ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kTabWords = 256;  // 2 KB of surface constants
    const Addr tab = b.allocWords(kTabWords);
    const Addr out = b.allocWords(kTabWords); // intersection results
    kutil::initRandomDoubles(b, tab, kTabWords, rng, 1.0, 3.0);

    const RegId x = intReg(1);
    const RegId bt = intReg(2);
    const RegId count = intReg(3);
    const RegId ia = intReg(4);
    const RegId t0 = intReg(5);

    // Chain A registers.
    const RegId a0 = fpReg(1);
    const RegId a1 = fpReg(2);
    const RegId a2 = fpReg(3);
    const RegId a3 = fpReg(4);
    const RegId ca = fpReg(5);
    // Chain B registers.
    const RegId b0 = fpReg(6);
    const RegId b1 = fpReg(7);
    const RegId b2 = fpReg(8);
    const RegId b3 = fpReg(9);
    const RegId cb = fpReg(10);
    const RegId fone = fpReg(11);
    const RegId fcond = fpReg(12);
    const RegId facc = fpReg(13);

    b.li(x, 0x02a'5eed);
    b.li(bt, std::int64_t(tab));
    b.li(count, std::int64_t(scale) * 130);
    b.li(t0, 1);
    b.itof(fone, t0);
    b.fadd(a0, fone, fone);
    b.fadd(b0, fone, fone);
    b.fadd(facc, fone, fone);

    const auto top = b.here();
    const auto miss = b.newLabel();

    // Fetch per-ray constants (always cache hits).
    kutil::emitXorshift(b, x, t0);
    b.andi(ia, x, kTabWords - 1);
    b.slli(ia, ia, 3);
    b.add(ia, ia, bt);
    b.ldt(ca, ia, 0);
    b.srli(t0, x, 9);
    b.andi(t0, t0, kTabWords - 1);
    b.slli(t0, t0, 3);
    b.add(t0, t0, bt);
    b.ldt(cb, t0, 0);

    // Chain A: discriminant -> sqrt -> divide, fully serial.
    b.fmul(a1, a0, ca);
    b.fadd(a1, a1, fone);
    b.fmul(a2, a1, a1);
    b.fadd(a2, a2, ca);
    b.fsqrt(a3, a2);                           // 16 cy, unpipelined unit
    b.fadd(a3, a3, fone);
    b.fdivs(a0, ca, a3);                       // 8 cy, unpipelined unit
    b.fadd(a0, a0, fone);

    // Chain B: independent of chain A until the accumulate.
    b.fmul(b1, b0, cb);
    b.fadd(b1, b1, cb);
    b.fmul(b2, b1, b1);
    b.fadd(b2, b2, fone);
    b.fsqrt(b3, b2);                           // 16 cy
    b.fadd(b3, b3, cb);
    b.fdivs(b0, cb, b3);                       // 8 cy
    b.fadd(b0, b0, cb);

    // Shading work: four polynomial evaluations that are independent
    // of the divide chains, so the scheduler can overlap them with the
    // busy divider (this is what keeps ora's IPC near 1.9 instead of
    // divider-latency-bound ~0.8).
    const RegId pk = intReg(6);
    const RegId pa = intReg(7);
    const RegId pv = fpReg(14);
    const RegId ps = fpReg(15);
    const RegId pcond = intReg(8);
    b.li(pk, 4);
    const auto poly = b.here();
    b.srl(t0, x, pk);
    b.andi(t0, t0, kTabWords - 1);
    b.slli(pa, t0, 3);
    b.add(pa, pa, bt);
    b.ldt(pv, pa, 0);
    b.ldt(ps, pa, 8);
    b.fmul(pv, pv, ps);
    b.fadd(pv, pv, fone);
    b.fmul(pv, pv, ps);
    b.fadd(facc, facc, pv);
    b.fmul(ps, ps, ps);
    b.fadd(facc, facc, ps);
    b.addi(pk, pk, 5);
    b.cmplti(pcond, pk, 24);
    b.bne(pcond, poly);

    // Ray hit test (p ~ 16/64): entropy-driven so the predictor keeps
    // mispredicting it, like ora's data-dependent intersection test.
    const RegId hcond = intReg(9);
    kutil::emitChance(b, hcond, x, 31, 16, t0);
    b.fcmplt(fcond, a0, b0); // FP compare still exercised
    b.beq(hcond, miss);
    b.fadd(facc, facc, a0);
    b.bind(miss);
    b.fadd(facc, facc, b0);
    // Record the intersection result (always a cache hit).
    b.andi(t0, count, kTabWords - 1);
    b.slli(t0, t0, 3);
    b.addi(t0, t0, std::int64_t(out));
    b.stt(facc, t0, 0);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
