/**
 * @file
 * compress-like kernel: an LZW-flavoured hash-table loop.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~15%  -> one pseudo-random probe into a 256 KB code
 *                           table per iteration, diluted by four loads
 *                           that hit in an 8 KB window buffer;
 *   cbr mispredict ~14%  -> one data-dependent "code match" branch
 *                           (~31% taken, predictor-resistant) mixed
 *                           with two well-predicted branches;
 *   loads ~20-23% of executed instructions, integer-only data path.
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeCompress(int scale, std::uint64_t seed)
{
    ProgramBuilder b("compress");
    Rng rng(0xc0311e55 ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kTableWords = 32768;  // 256 KB code table
    constexpr int kWindowWords = 1024;  // 8 KB window (always hits)
    const Addr table = b.allocWords(kTableWords);
    // +3 guard words: the window loads read widx+0..+24, so the last
    // index reaches three words past the window proper.
    const Addr window = b.allocWords(kWindowWords + 3);
    kutil::initRandomWords(b, table, kTableWords, rng);
    kutil::initRandomWords(b, window, kWindowWords, rng);

    const RegId x = intReg(1);       // xorshift state
    const RegId prev = intReg(2);    // previous code
    const RegId tbl = intReg(3);
    const RegId win = intReg(4);
    const RegId count = intReg(5);
    const RegId sym = intReg(6);
    const RegId hash = intReg(7);
    const RegId taddr = intReg(8);
    const RegId code = intReg(9);
    const RegId widx = intReg(10);
    const RegId w0 = intReg(11);
    const RegId w1 = intReg(12);
    const RegId w2 = intReg(13);
    const RegId wsum = intReg(14);
    const RegId t0 = intReg(15);
    const RegId t1 = intReg(16);
    const RegId cond = intReg(17);

    b.li(x, 0x1234'5678'9abcull);
    b.li(prev, 0);
    b.li(tbl, std::int64_t(table));
    b.li(win, std::int64_t(window));
    b.li(count, std::int64_t(scale) * 360);

    const auto top = b.here();
    const auto match = b.newLabel();
    const auto join = b.newLabel();

    kutil::emitXorshift(b, x, t0);              // 6 insts
    b.andi(sym, x, 255);                        // next input symbol
    // hash = ((prev << 5) ^ sym ^ (x >> 13)) & (kTableWords - 1)
    b.slli(hash, prev, 5);
    b.xor_(hash, hash, sym);
    b.srli(t0, x, 13);
    b.xor_(hash, hash, t0);
    b.andi(hash, hash, kTableWords - 1);
    b.slli(taddr, hash, 3);
    b.add(taddr, taddr, tbl);
    b.ldq(code, taddr, 0);                      // table probe: often a miss
    // Window traffic: three hit loads plus some integer work.
    b.andi(widx, count, kWindowWords - 1);
    b.slli(widx, widx, 3);
    b.add(widx, widx, win);
    b.ldq(w0, widx, 0);
    b.ldq(w1, widx, 8);
    b.ldq(w2, widx, 16);
    b.ldq(t1, widx, 24);
    b.add(wsum, w0, w1);
    b.xor_(wsum, wsum, w2);
    b.add(wsum, wsum, t1);
    // Data-dependent match test: taken with probability ~20/64.
    b.xor_(t1, code, sym);
    kutil::emitChance(b, cond, t1, 0, 20, t0);
    b.bne(cond, match);

    // Mismatch: install the new code and continue from the symbol.
    b.stq(sym, taddr, 0);
    b.mov(prev, sym);
    b.br(join);

    b.bind(match);
    // Match: extend the phrase; fold window data into the new code.
    b.addi(prev, code, 1);
    b.andi(prev, prev, 0xffff);
    b.stq(wsum, widx, 0);

    b.bind(join);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
