/**
 * @file
 * espresso-like kernel: boolean-cube cover manipulation over small,
 * cache-resident bit-set arrays.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~1%    -> 32 KB of cube data, fully cached;
 *   cbr mispredict ~13%   -> one predictor-resistant nibble test per
 *                            iteration (~31% taken) plus a biased
 *                            sparsity test and two predictable
 *                            branches;
 *   branch-rich integer mix (~15% conditional branches).
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeEspresso(int scale, std::uint64_t seed)
{
    ProgramBuilder b("espresso");
    Rng rng(0xe59e550 ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kCubeWords = 1024; // 8 KB per cover
    const Addr coverA = b.allocWords(kCubeWords);
    const Addr coverB = b.allocWords(kCubeWords);
    kutil::initRandomWords(b, coverA, kCubeWords, rng);
    kutil::initRandomWords(b, coverB, kCubeWords, rng);

    const RegId idx = intReg(1);
    const RegId baseA = intReg(2);
    const RegId baseB = intReg(3);
    const RegId count = intReg(4);
    const RegId a = intReg(5);
    const RegId bb = intReg(6);
    const RegId meet = intReg(7);
    const RegId join_ = intReg(8);
    const RegId nib = intReg(9);
    const RegId pop = intReg(10);
    const RegId addr = intReg(11);
    const RegId t0 = intReg(12);
    const RegId cond = intReg(13);
    const RegId phase = intReg(14);

    b.li(baseA, std::int64_t(coverA));
    b.li(baseB, std::int64_t(coverB));
    b.li(count, std::int64_t(scale) * 400);
    b.li(idx, 0);
    b.li(pop, 0);
    b.li(phase, 0);

    const auto top = b.here();
    const auto sparse = b.newLabel();
    const auto skipNib = b.newLabel();
    const auto noPhase = b.newLabel();
    const auto join = b.newLabel();

    b.andi(t0, idx, kCubeWords - 1);
    b.slli(addr, t0, 3);
    b.add(addr, addr, baseA);
    b.ldq(a, addr, 0);                        // hit
    b.sub(t0, addr, baseA);
    b.add(t0, t0, baseB);
    b.ldq(bb, t0, 0);                         // hit
    b.ldq(cond, addr, 8);                     // hit (second word)
    b.xor_(pop, pop, cond);
    b.and_(meet, a, bb);
    b.or_(join_, a, bb);
    b.xor_(t0, meet, join_);
    b.add(pop, pop, t0);
    // Predictor-resistant nibble test: taken with probability ~16/64.
    b.srli(nib, meet, 7);
    b.andi(nib, nib, 63);
    b.cmplti(cond, nib, 16);
    b.bne(cond, skipNib);
    b.srli(t0, join_, 11);
    b.xor_(pop, pop, t0);
    b.bind(skipNib);
    // Sparsity check, biased: taken with probability ~4/64.
    kutil::emitChance(b, cond, join_, 29, 2, t0);
    b.bne(cond, sparse);
    b.slli(t0, meet, 1);
    b.or_(pop, pop, t0);
    b.br(join);
    b.bind(sparse);
    b.stq(join_, addr, 0);                    // install reduced cube
    b.xor_(pop, pop, join_);
    b.bind(join);
    // Phase toggle with period 8: taken 7/8, history-polluted so the
    // bimodal component carries it (~12% mispredict).
    b.addi(phase, phase, 1);
    b.andi(t0, phase, 7);
    b.bne(t0, noPhase);
    b.stq(pop, addr, 8);
    b.bind(noPhase);
    b.addi(idx, idx, 7);                      // stride keeps sets varied
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
