/**
 * @file
 * mdljdp2-like kernel: double-precision molecular-dynamics pair loop
 * (Lennard-Jones-flavoured) with a cutoff test.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~3%   -> coordinates fit in the cache; a sparse
 *                           pseudo-random probe into a 512 KB neighbor
 *                           table supplies the residual misses;
 *   cbr mispredict ~6%   -> a ~88/12 biased cutoff branch plus a
 *                           predictable loop branch;
 *   double-precision FP with occasional fdivd in the cutoff path.
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeMdljdp2(int scale, std::uint64_t seed)
{
    ProgramBuilder b("mdljdp2");
    Rng rng(0x3d1d9 ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kParticles = 1024;        // 3 x 8 KB coordinates
    constexpr int kBigWords = 65536;        // 512 KB neighbor table
    const Addr px = b.allocWords(kParticles);
    kutil::staggerPad(b, 1);
    const Addr py = b.allocWords(kParticles);
    kutil::staggerPad(b, 2);
    const Addr pz = b.allocWords(kParticles);
    kutil::staggerPad(b, 3);
    const Addr fx = b.allocWords(kParticles);
    const Addr big = b.allocWords(kBigWords);
    kutil::initRandomDoubles(b, px, kParticles, rng, -4.0, 4.0);
    kutil::initRandomDoubles(b, py, kParticles, rng, -4.0, 4.0);
    kutil::initRandomDoubles(b, pz, kParticles, rng, -4.0, 4.0);
    kutil::initRandomDoubles(b, big, kBigWords, rng, 0.5, 1.5);

    const RegId x = intReg(1);
    const RegId bx = intReg(2);
    const RegId by = intReg(3);
    const RegId bz = intReg(4);
    const RegId bbig = intReg(5);
    const RegId bfx = intReg(12);
    const RegId count = intReg(6);
    const RegId j = intReg(7);
    const RegId ja = intReg(8);
    const RegId t0 = intReg(9);
    const RegId cond = intReg(10);
    const RegId bigAddr = intReg(11);

    const RegId xi = fpReg(1);
    const RegId yi = fpReg(2);
    const RegId zi = fpReg(3);
    const RegId xj = fpReg(4);
    const RegId yj = fpReg(5);
    const RegId zj = fpReg(6);
    const RegId dx = fpReg(7);
    const RegId dy = fpReg(8);
    const RegId dz = fpReg(9);
    const RegId r2 = fpReg(10);
    const RegId cut = fpReg(11);
    const RegId fax = fpReg(12);
    const RegId inv = fpReg(13);
    const RegId w = fpReg(14);
    const RegId ftmp = fpReg(15);
    const RegId fcond = fpReg(16);

    b.li(x, 0x3d1d'0beaull);
    b.li(bx, std::int64_t(px));
    b.li(by, std::int64_t(py));
    b.li(bz, std::int64_t(pz));
    b.li(bbig, std::int64_t(big));
    b.li(bfx, std::int64_t(fx));
    b.li(count, std::int64_t(scale) * 330);
    b.li(j, 0);
    // Reference particle coordinates and cutoff radius^2 (~12% hit).
    b.ldt(xi, bx, 0);
    b.ldt(yi, by, 0);
    b.ldt(zi, bz, 0);
    b.li(t0, 6);
    b.itof(cut, t0);
    b.fadd(fax, cut, cut);

    const auto top = b.here();
    const auto far = b.newLabel();
    const auto noProbe = b.newLabel();

    // Walk the j particles cyclically (cache-resident coordinates).
    b.andi(t0, j, kParticles - 1);
    b.slli(ja, t0, 3);
    b.add(t0, ja, bx);
    b.ldt(xj, t0, 0);                          // hit
    b.add(t0, ja, by);
    b.ldt(yj, t0, 0);                          // hit
    b.add(t0, ja, bz);
    b.ldt(zj, t0, 0);                          // hit
    b.fsub(dx, xi, xj);
    b.fsub(dy, yi, yj);
    b.fsub(dz, zi, zj);
    b.fmul(r2, dx, dx);
    b.fmul(ftmp, dy, dy);
    b.fadd(r2, r2, ftmp);
    b.fmul(ftmp, dz, dz);
    b.fadd(r2, r2, ftmp);
    // Cutoff: r2 < cut ~12% of pairs (biased, lightly mispredicted).
    b.fcmplt(fcond, r2, cut);
    b.fbeq(fcond, far);
    b.fdivd(inv, cut, r2);                     // rare expensive path
    b.fmul(w, inv, inv);
    b.fmul(ftmp, w, dx);
    b.fadd(fax, fax, ftmp);
    b.bind(far);
    // Serial force accumulation: the long dependent-add chain through
    // the 3-cycle FP adder that holds mdljdp2's IPC near the paper's
    // 2.1-2.3 (each pair's contribution folds into one running sum).
    b.fadd(fax, fax, dx);
    b.fadd(fax, fax, dy);
    b.fadd(fax, fax, dz);
    b.fadd(fax, fax, xj);
    b.fadd(fax, fax, yj);
    // Sparse neighbor-table probe: p ~ 2/64 of iterations miss-prone.
    kutil::emitXorshift(b, x, t0);
    kutil::emitChance(b, cond, x, 22, 2, t0);
    b.beq(cond, noProbe);
    b.srli(t0, x, 30);
    b.andi(t0, t0, kBigWords - 1);
    b.slli(t0, t0, 3);
    b.add(bigAddr, t0, bbig);
    b.ldt(ftmp, bigAddr, 0);                   // usually a miss
    b.fmul(fax, fax, ftmp);
    b.bind(noProbe);
    b.add(t0, ja, bfx);
    b.stt(fax, t0, 0);                         // accumulate forces
    b.addi(j, j, 1);
    b.subi(count, count, 1);
    b.bne(count, top);
    b.halt();
    return b.build();
}

} // namespace drsim
