/**
 * @file
 * tomcatv-like kernel: 2-D mesh-generation stencil sweeping six large
 * arrays whose active rows exceed the 64 KB cache, so vertical reuse
 * is lost and nearly every line is re-fetched each sweep.
 *
 * SPEC92 signature targeted (paper Table 1, 4-way):
 *   load miss rate ~33%  -> rows of 1024 doubles (8 KB); the stencil
 *                           touches 3 rows x 2 read arrays plus 2 more
 *                           streams = ~56 KB of active rows + streams,
 *                           evicting lines between vertical uses;
 *   cbr mispredict ~1%   -> only long counted loops;
 *   loads ~27% of executed instructions; issue IPC ~= commit IPC.
 */

#include "workloads/kernel_util.hh"
#include "workloads/kernels.hh"

namespace drsim {

Program
makeTomcatv(int scale, std::uint64_t seed)
{
    ProgramBuilder b("tomcatv");
    Rng rng(0x70c47 ^ (seed * 0x9e3779b97f4a7c15ull));

    constexpr int kN = 1536;           // points per row (12 KB rows)
    constexpr int kRows = 28;          // mesh rows per sweep
    constexpr int kArrWords = kN * kRows;
    // X/Y (and AA/DD) are deliberately allocated a multiple of the
    // cache way size (32 KB) apart, as a Fortran compiler laying out
    // same-shaped COMMON arrays would: same-index elements contend for
    // the same 2-way set, giving tomcatv its conflict-miss component
    // on top of the capacity misses.
    const Addr ax = b.allocWords(kArrWords);   // X coordinates
    b.allocWords(2048);                        // align to 32 KB
    const Addr ay = b.allocWords(kArrWords);   // Y coordinates
    b.allocWords(2048);                        // align to 32 KB
    const Addr aa = b.allocWords(kArrWords);   // coefficient stream
    kutil::staggerPad(b, 2);
    const Addr dd = b.allocWords(kArrWords);   // diagonal stream
    kutil::staggerPad(b, 1);
    const Addr rx = b.allocWords(kArrWords);   // residual out (stores)
    kutil::staggerPad(b, 2);
    const Addr ry = b.allocWords(kArrWords);   // residual out (stores)
    kutil::initRandomDoubles(b, ax, kArrWords, rng, 0.0, 1.0);
    kutil::initRandomDoubles(b, ay, kArrWords, rng, 0.0, 1.0);
    kutil::initRandomDoubles(b, aa, kArrWords, rng, 0.5, 1.5);
    kutil::initRandomDoubles(b, dd, kArrWords, rng, 0.5, 1.5);

    constexpr std::int64_t kRowBytes = kN * 8;

    const RegId px = intReg(1);      // &X[j][i]
    const RegId py = intReg(2);      // &Y[j][i]
    const RegId paa = intReg(3);
    const RegId pdd = intReg(4);
    const RegId prx = intReg(5);
    const RegId pry = intReg(6);
    const RegId icnt = intReg(7);    // inner countdown
    const RegId jcnt = intReg(8);    // row countdown
    const RegId sweeps = intReg(9);

    const RegId xm = fpReg(1);
    const RegId xc = fpReg(2);
    const RegId xp = fpReg(3);
    const RegId ym = fpReg(4);
    const RegId yc = fpReg(5);
    const RegId yp = fpReg(6);
    const RegId fa = fpReg(7);
    const RegId fd = fpReg(8);
    const RegId dxx = fpReg(9);
    const RegId dyy = fpReg(10);
    const RegId resx = fpReg(11);
    const RegId resy = fpReg(12);
    const RegId ftmp = fpReg(13);
    const RegId rsum = fpReg(14);    // recurrence accumulator
    const RegId rv = fpReg(15);
    const RegId rw = fpReg(16);
    const RegId prow = intReg(10);   // phase-2 residual walker
    const RegId drow = intReg(11);   // phase-2 diagonal walker

    // One row of stencil work is ~30k instructions; `scale` counts
    // total rows, wrapping back to the mesh top every kRows-2 rows so
    // arbitrarily long runs keep sweeping.
    b.li(sweeps, scale);
    b.itof(rsum, intReg(kZeroReg));  // zero the recurrence accumulator

    const auto sweepTop = b.here();
    // (Re)start a sweep at row 1 (rows 0 and kRows-1 are boundaries).
    b.li(px, std::int64_t(ax) + kRowBytes);
    b.li(py, std::int64_t(ay) + kRowBytes);
    b.li(paa, std::int64_t(aa) + kRowBytes);
    b.li(pdd, std::int64_t(dd) + kRowBytes);
    b.li(prx, std::int64_t(rx) + kRowBytes);
    b.li(pry, std::int64_t(ry) + kRowBytes);
    b.li(jcnt, kRows - 2);

    const auto rowTop = b.here();
    b.li(icnt, kN - 2);
    // Remember the row starts for the second (substitution) pass.
    b.mov(prow, prx);
    b.mov(drow, pdd);

    const auto pointTop = b.here();
    // 5-point vertical stencil on X and Y plus two operand streams.
    b.ldt(xm, px, -kRowBytes);               // row j-1
    b.ldt(xc, px, 0);                        // row j
    b.ldt(xp, px, kRowBytes);                // row j+1
    b.ldt(ym, py, -kRowBytes);
    b.ldt(yc, py, 0);
    b.ldt(yp, py, kRowBytes);
    b.ldt(fa, paa, 0);
    b.ldt(fd, pdd, 0);
    b.fadd(dxx, xm, xp);
    b.fsub(dxx, dxx, xc);
    b.fsub(dxx, dxx, xc);
    b.fadd(dyy, ym, yp);
    b.fsub(dyy, dyy, yc);
    b.fsub(dyy, dyy, yc);
    b.fmul(resx, dxx, fa);
    b.fmul(ftmp, dyy, fd);
    b.fadd(resx, resx, ftmp);
    b.fmul(resy, dyy, fa);
    b.fmul(ftmp, dxx, fd);
    b.fsub(resy, resy, ftmp);
    b.stt(resx, prx, 0);                     // streaming stores
    b.stt(resy, pry, 0);
    b.addi(px, px, 8);
    b.addi(py, py, 8);
    b.addi(paa, paa, 8);
    b.addi(pdd, pdd, 8);
    b.addi(prx, prx, 8);
    b.addi(pry, pry, 8);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, pointTop);

    // Second pass: tridiagonal back-substitution over the residuals
    // just produced.  The recurrence through rsum is loop-carried
    // (the paper's tomcatv behaves the same way), and the rx reloads
    // miss: the stores went around the write-through/no-allocate
    // cache.  Fetch runs hundreds of instructions ahead of the slow
    // recurrence at the window head, which is what produces the
    // paper's Figure-5 second mode of live-register usage under
    // precise exceptions.
    b.li(icnt, kN - 2);
    const auto subTop = b.here();
    b.ldt(rv, prow, 0);                      // stream miss (no-alloc)
    b.ldt(rw, drow, 0);                      // usually still cached
    b.fmul(ftmp, rv, rw);                    // per-point work...
    b.fadd(resx, ftmp, rv);
    b.fmul(resy, rw, rw);
    b.fadd(rsum, rsum, ftmp);                // ...the carried chain
    b.addi(prow, prow, 8);
    b.addi(drow, drow, 8);
    b.subi(icnt, icnt, 1);
    b.bne(icnt, subTop);
    b.stt(rsum, pry, 0);                     // row result

    // Advance to the next row (skip the two boundary points).
    const auto done = b.newLabel();
    b.addi(px, px, 16);
    b.addi(py, py, 16);
    b.addi(paa, paa, 16);
    b.addi(pdd, pdd, 16);
    b.addi(prx, prx, 16);
    b.addi(pry, pry, 16);
    b.subi(sweeps, sweeps, 1);
    b.beq(sweeps, done);
    b.subi(jcnt, jcnt, 1);
    b.bne(jcnt, rowTop);
    b.br(sweepTop);

    b.bind(done);
    b.halt();
    return b.build();
}

} // namespace drsim
