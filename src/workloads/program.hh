/**
 * @file
 * Static program representation: a control-flow graph of basic blocks
 * plus an initial data image.
 *
 * Programs stand in for the paper's ATOM-instrumented Alpha binaries.
 * Code is laid out at kCodeBase with 4-byte instruction slots so that
 * every instruction has a real PC for the branch predictor and the
 * instruction cache to index.
 */

#ifndef DRSIM_WORKLOADS_PROGRAM_HH
#define DRSIM_WORKLOADS_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace drsim {

/** Base address of the code segment. */
constexpr Addr kCodeBase = 0x1000;

/** Base address of the data segment (bump-allocated by ProgramBuilder). */
constexpr Addr kDataBase = 0x1000'0000;

/** Bytes per instruction slot. */
constexpr Addr kInstBytes = 4;

/** A straight-line run of instructions ending in at most one branch. */
struct BasicBlock
{
    std::vector<Instruction> insts;
    /** PC of the first instruction (assigned by Program::finalize). */
    Addr startPc = 0;
};

/** A position in the program: block index + instruction offset. */
struct CodeLoc
{
    std::int32_t block = -1;
    std::int32_t offset = 0;

    bool valid() const { return block >= 0; }
    bool operator==(const CodeLoc &o) const = default;
};

/**
 * A complete program: CFG, code layout, and initial memory words.
 * Built via ProgramBuilder; immutable afterwards.
 */
class Program
{
  public:
    /** Lay out code addresses; must be called once after construction. */
    void finalize();

    const std::string &name() const { return name_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    const BasicBlock &block(int idx) const { return blocks_.at(idx); }

    /** Total number of static instructions. */
    std::size_t numInsts() const { return numInsts_; }

    /** Entry point. */
    CodeLoc entry() const { return {entryBlock_, 0}; }

    /** PC of the instruction at @p loc.  On the fetch/emulate fast
     *  path (several calls per simulated cycle), hence inline. */
    Addr
    pcOf(CodeLoc loc) const
    {
        return blocks_[std::size_t(loc.block)].startPc +
               Addr(loc.offset) * kInstBytes;
    }

    /** Location for @p pc; invalid CodeLoc if pc is not code. */
    CodeLoc locOf(Addr pc) const;

    /** Instruction at @p loc (must be valid). */
    const Instruction &
    instAt(CodeLoc loc) const
    {
        return blocks_[std::size_t(loc.block)]
            .insts[std::size_t(loc.offset)];
    }

    /**
     * Location following @p loc in layout order (fallthrough);
     * invalid if @p loc was the last instruction of the last block.
     */
    CodeLoc
    nextLoc(CodeLoc loc) const
    {
        const auto &bb = blocks_[std::size_t(loc.block)];
        if (loc.offset + 1 < std::int32_t(bb.insts.size()))
            return {loc.block, loc.offset + 1};
        return nextLocSlow(loc);
    }

    /** First location of block @p block. */
    CodeLoc blockEntry(int block) const { return {block, 0}; }

    /**
     * First executable location at or after block @p block, skipping
     * empty blocks (a label bound right before another label).
     */
    CodeLoc blockEntryResolved(int block) const;

    /** Initial value of each (8-byte-aligned) data word. */
    const std::unordered_map<Addr, std::uint64_t> &
    initialWords() const
    {
        return initialWords_;
    }

    /// @name Data-segment extent (for static memory-bounds checks)
    /// @{
    /** First byte of the program's data segment. */
    Addr dataBase() const { return kDataBase; }
    /**
     * One past the last allocated/initialized data byte; equals
     * dataBase() when the program declares no data.  Set by
     * ProgramBuilder from its bump allocator and initialized words.
     */
    Addr dataLimit() const { return dataLimit_; }
    /// @}

    /**
     * Cached programDigest() (workloads/digest.hh), filled once by
     * finalize() so the content-addressed caches can key on it without
     * re-hashing the code and data image on every lookup.  Empty only
     * before finalize().
     */
    const std::string &contentDigest() const { return digest_; }

  private:
    friend class ProgramBuilder;

    /** Cross-block fallthrough (skips empty blocks). */
    CodeLoc nextLocSlow(CodeLoc loc) const;

    std::string name_;
    std::vector<BasicBlock> blocks_;
    int entryBlock_ = 0;
    std::size_t numInsts_ = 0;
    std::unordered_map<Addr, std::uint64_t> initialWords_;
    Addr dataLimit_ = kDataBase;
    /** Content digest; set by finalize() (see contentDigest()). */
    std::string digest_;
    /** Flat pc -> CodeLoc table, indexed by (pc - kCodeBase) / 4. */
    std::vector<CodeLoc> pcTable_;
    bool finalized_ = false;
};

} // namespace drsim

#endif // DRSIM_WORKLOADS_PROGRAM_HH
