#include "workloads/emulator.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace drsim {

namespace {

/** Simulated physical address space bound (wrong-path addresses are
 *  wrapped into it so cache tags stay well-formed). */
constexpr Addr kAddrMask = (Addr{1} << 44) - 1;

Addr
canonical(Addr a)
{
    return a & kAddrMask & ~Addr{7};
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

Emulator::Emulator(const Program &prog) : Emulator(&prog, nullptr)
{
}

Emulator::Emulator(Program &&prog)
    : Emulator(nullptr,
               std::make_unique<const Program>(std::move(prog)))
{
}

Emulator::Emulator(const Program &prog, const EmuArchState &state)
    : Emulator(&prog, nullptr, &state)
{
}

Emulator::Emulator(const Program *external,
                   std::unique_ptr<const Program> owned,
                   const EmuArchState *restore_from)
    : ownedProg_(std::move(owned)),
      prog_(external != nullptr ? *external : *ownedProg_)
{
    if (restore_from != nullptr) {
        restoreArchState(*restore_from);
        return;
    }
    loc_ = prog_.entry();
    // Round the segment bound up to the 8-byte word grid canonical()
    // snaps addresses to, so the last partially-covered word is dense.
    dataLimit_ = (prog_.dataLimit() + 7) & ~Addr{7};
    data_.assign(std::size_t((dataLimit_ - kDataBase) / 8), 0);
    for (const auto &[addr, word] : prog_.initialWords()) {
        // Reads always canonicalize, so only canonical addresses may
        // land in the dense segment; a non-canonical initial address
        // stays in the map, unreachable, exactly as before.
        if (canonical(addr) == addr)
            rawWriteMem(addr, word);
        else
            mem_[addr] = word;
    }
}

Addr
Emulator::pc() const
{
    if (fetchBlocked())
        DRSIM_PANIC("pc() while fetch is blocked");
    return prog_.pcOf(loc_);
}

const Instruction *
Emulator::peek() const
{
    if (fetchBlocked())
        return nullptr;
    return &prog_.instAt(loc_);
}

std::uint64_t
Emulator::intVal(RegId r) const
{
    if (!r.valid())
        return 0;
    return r.index == kZeroReg ? 0 : intRegs_[r.index];
}

double
Emulator::fpVal(RegId r) const
{
    if (!r.valid())
        return 0.0;
    return r.index == kZeroReg ? 0.0 : fpRegs_[r.index];
}

double
Emulator::fpRegValue(int idx) const
{
    return idx == kZeroReg ? 0.0 : fpRegs_[idx];
}

std::uint64_t
Emulator::memWord(Addr addr) const
{
    addr = canonical(addr);
    if (inDataSegment(addr))
        return data_[std::size_t((addr - kDataBase) / 8)];
    const auto it = mem_.find(addr);
    return it == mem_.end() ? 0 : it->second;
}

void
Emulator::writeInt(int idx, std::uint64_t bits)
{
    if (idx == kZeroReg)
        return;
    if (!liveMarks_.empty()) {
        undo_.push_back({UndoEntry::Kind::IntReg,
                         std::uint8_t(idx), 0, intRegs_[idx]});
    }
    intRegs_[idx] = bits;
}

void
Emulator::writeFp(int idx, double value)
{
    if (idx == kZeroReg)
        return;
    if (!liveMarks_.empty()) {
        undo_.push_back({UndoEntry::Kind::FpReg, std::uint8_t(idx), 0,
                         std::bit_cast<std::uint64_t>(fpRegs_[idx])});
    }
    fpRegs_[idx] = value;
}

void
Emulator::writeMem(Addr addr, std::uint64_t bits)
{
    addr = canonical(addr);
    if (inDataSegment(addr)) {
        std::uint64_t &slot = data_[std::size_t((addr - kDataBase) / 8)];
        if (!liveMarks_.empty())
            undo_.push_back({UndoEntry::Kind::Mem, 0, addr, slot});
        slot = bits;
        return;
    }
    auto [it, inserted] = mem_.try_emplace(addr, 0);
    if (!liveMarks_.empty())
        undo_.push_back({UndoEntry::Kind::Mem, 0, addr, it->second});
    it->second = bits;
}

void
Emulator::rawWriteMem(Addr addr, std::uint64_t bits)
{
    if (inDataSegment(addr))
        data_[std::size_t((addr - kDataBase) / 8)] = bits;
    else
        mem_[addr] = bits;
}

StepInfo
Emulator::step(bool follow_taken)
{
    if (fetchBlocked())
        DRSIM_PANIC("step() while fetch is blocked");

    const Instruction &inst = prog_.instAt(loc_);
    StepInfo info;
    info.inst = &inst;
    info.pc = prog_.pcOf(loc_);
    ++steps_;

    const CodeLoc fall = prog_.nextLoc(loc_);
    const Addr fall_pc = fall.valid() ? prog_.pcOf(fall) : 0;

    // Integer b-operand: src2 if present, else the immediate.
    const auto bOp = [&]() -> std::uint64_t {
        return inst.src2.valid() ? intVal(inst.src2)
                                 : std::uint64_t(inst.imm);
    };

    CodeLoc next = fall;
    info.actualNextPc = fall_pc;

    switch (inst.op) {
      case Opcode::Add:
        info.destBits = intVal(inst.src1) + bOp();
        break;
      case Opcode::Sub:
        info.destBits = intVal(inst.src1) - bOp();
        break;
      case Opcode::And:
        info.destBits = intVal(inst.src1) & bOp();
        break;
      case Opcode::Or:
        info.destBits = intVal(inst.src1) | bOp();
        break;
      case Opcode::Xor:
        info.destBits = intVal(inst.src1) ^ bOp();
        break;
      case Opcode::Sll:
        info.destBits = intVal(inst.src1) << (bOp() & 63);
        break;
      case Opcode::Srl:
        info.destBits = intVal(inst.src1) >> (bOp() & 63);
        break;
      case Opcode::Cmplt:
        info.destBits = std::int64_t(intVal(inst.src1)) <
                        std::int64_t(bOp());
        break;
      case Opcode::Cmple:
        info.destBits = std::int64_t(intVal(inst.src1)) <=
                        std::int64_t(bOp());
        break;
      case Opcode::Cmpeq:
        info.destBits = intVal(inst.src1) == bOp();
        break;
      case Opcode::Mul:
        info.destBits = intVal(inst.src1) * bOp();
        break;

      case Opcode::Fadd:
        info.destBits = std::bit_cast<std::uint64_t>(
            fpVal(inst.src1) + fpVal(inst.src2));
        break;
      case Opcode::Fsub:
        info.destBits = std::bit_cast<std::uint64_t>(
            fpVal(inst.src1) - fpVal(inst.src2));
        break;
      case Opcode::Fmul:
        info.destBits = std::bit_cast<std::uint64_t>(
            fpVal(inst.src1) * fpVal(inst.src2));
        break;
      case Opcode::Fcmplt:
        info.destBits = std::bit_cast<std::uint64_t>(
            fpVal(inst.src1) < fpVal(inst.src2) ? 1.0 : 0.0);
        break;
      case Opcode::Itof:
        info.destBits = std::bit_cast<std::uint64_t>(
            double(std::int64_t(intVal(inst.src1))));
        break;
      case Opcode::Ftoi: {
        const double v = fpVal(inst.src1);
        // Arithmetic exceptions are not modeled (paper Section 2);
        // wrong-path garbage converts to 0 instead of trapping.
        info.destBits = std::isfinite(v) &&
                        std::abs(v) < 0x1.0p62
                            ? std::uint64_t(std::int64_t(v))
                            : 0;
        break;
      }
      case Opcode::Fdivs: {
        const float b = float(fpVal(inst.src2));
        const float a = float(fpVal(inst.src1));
        info.destBits = std::bit_cast<std::uint64_t>(
            b == 0.0f ? 0.0 : double(a / b));
        break;
      }
      case Opcode::Fdivd: {
        const double b = fpVal(inst.src2);
        info.destBits = std::bit_cast<std::uint64_t>(
            b == 0.0 ? 0.0 : fpVal(inst.src1) / b);
        break;
      }
      case Opcode::Fsqrt: {
        const double a = fpVal(inst.src1);
        info.destBits = std::bit_cast<std::uint64_t>(
            a < 0.0 ? 0.0 : std::sqrt(a));
        break;
      }

      case Opcode::Ldq:
      case Opcode::Ldt:
        info.effAddr = canonical(intVal(inst.src1) +
                                 std::uint64_t(inst.imm));
        info.destBits = memWord(info.effAddr);
        break;
      case Opcode::Stq:
        info.effAddr = canonical(intVal(inst.src1) +
                                 std::uint64_t(inst.imm));
        info.storeBits = intVal(inst.src2);
        writeMem(info.effAddr, info.storeBits);
        break;
      case Opcode::Stt:
        info.effAddr = canonical(intVal(inst.src1) +
                                 std::uint64_t(inst.imm));
        info.storeBits = std::bit_cast<std::uint64_t>(fpVal(inst.src2));
        writeMem(info.effAddr, info.storeBits);
        break;

      case Opcode::Beq:
        info.actualTaken = intVal(inst.src1) == 0;
        break;
      case Opcode::Bne:
        info.actualTaken = intVal(inst.src1) != 0;
        break;
      case Opcode::Fbeq:
        info.actualTaken = fpVal(inst.src1) == 0.0;
        break;
      case Opcode::Fbne:
        info.actualTaken = fpVal(inst.src1) != 0.0;
        break;

      case Opcode::Br:
        next = prog_.blockEntryResolved(inst.target);
        info.actualNextPc = next.valid() ? prog_.pcOf(next) : 0;
        break;
      case Opcode::Jsr: {
        info.destBits = fall_pc;
        next = prog_.blockEntryResolved(inst.target);
        info.actualNextPc = next.valid() ? prog_.pcOf(next) : 0;
        break;
      }
      case Opcode::Ret: {
        const Addr ra = intVal(inst.src1);
        next = prog_.locOf(ra);
        info.actualNextPc = ra;
        break;
      }

      case Opcode::Halt:
        info.isHalt = true;
        next = {};
        info.actualNextPc = 0;
        break;
    }

    if (inst.isCondBranch()) {
        const CodeLoc tgt = prog_.blockEntryResolved(inst.target);
        if (!tgt.valid())
            DRSIM_PANIC("conditional branch to empty tail");
        info.actualNextPc = info.actualTaken ? prog_.pcOf(tgt) : fall_pc;
        next = follow_taken ? tgt : fall;
    }

    if (inst.dest.renamed()) {
        if (inst.dest.cls == RegClass::Int)
            writeInt(inst.dest.index, info.destBits);
        else
            writeFp(inst.dest.index,
                    std::bit_cast<double>(info.destBits));
    }

    loc_ = next;
    return info;
}

StepInfo
Emulator::stepArch()
{
    if (fetchBlocked())
        DRSIM_PANIC("stepArch() while fetch is blocked");
    const Instruction &inst = prog_.instAt(loc_);
    bool taken = false;
    if (inst.isCondBranch()) {
        switch (inst.op) {
          case Opcode::Beq:
            taken = intVal(inst.src1) == 0;
            break;
          case Opcode::Bne:
            taken = intVal(inst.src1) != 0;
            break;
          case Opcode::Fbeq:
            taken = fpVal(inst.src1) == 0.0;
            break;
          case Opcode::Fbne:
            taken = fpVal(inst.src1) != 0.0;
            break;
          default:
            break;
        }
    }
    return step(taken);
}

void
Emulator::buildFFTable()
{
    const auto &blocks = prog_.blocks();
    const std::int32_t total = std::int32_t(prog_.numInsts());
    ffBlockBase_.resize(blocks.size() + 1);
    ffLocs_.reserve(std::size_t(total));
    ffTable_.reserve(std::size_t(total));

    std::int32_t flat = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        ffBlockBase_[b] = flat;
        for (std::size_t i = 0; i < blocks[b].insts.size(); ++i) {
            ffLocs_.push_back(
                {std::int32_t(b), std::int32_t(i)});
            ++flat;
        }
    }
    ffBlockBase_[blocks.size()] = flat;

    const auto regIdx = [](RegId r) {
        return r.valid() ? r.index : std::uint8_t(0xff);
    };
    for (std::int32_t f = 0; f < total; ++f) {
        const Instruction &inst = prog_.instAt(ffLocs_[std::size_t(f)]);
        FFInst d{};
        d.op = inst.op;
        d.destCls = inst.dest.renamed()
                        ? std::uint8_t(inst.dest.cls)
                        : std::uint8_t(0xff);
        d.dest = inst.dest.valid() ? inst.dest.index
                                   : std::uint8_t(0xff);
        d.src1 = regIdx(inst.src1);
        d.src2 = regIdx(inst.src2);
        d.imm = inst.imm;
        d.fall = f + 1 < total ? f + 1 : -1;
        d.fallPc = d.fall >= 0
                       ? prog_.pcOf(ffLocs_[std::size_t(d.fall)])
                       : 0;
        d.target = -1;
        if (inst.target >= 0) {
            const std::int32_t base =
                ffBlockBase_[std::size_t(inst.target)];
            d.target = base < total ? base : -1;
        }
        ffTable_.push_back(d);
    }
}

std::uint64_t
Emulator::fastForward(std::uint64_t n)
{
    if (!liveMarks_.empty()) {
        DRSIM_PANIC("fastForward() with ", liveMarks_.size(),
                    " live checkpoints");
    }
    if (ffTable_.empty())
        buildFFTable();

    // Registers and memory are written directly — with no live
    // checkpoints the undo log is provably empty, so this loop is
    // pure architectural execution over the predecoded table.
    const auto rdi = [this](std::uint8_t idx) -> std::uint64_t {
        return idx >= std::uint8_t(kNumVirtualRegs) ||
                       idx == std::uint8_t(kZeroReg)
                   ? 0
                   : intRegs_[idx];
    };
    const auto rdf = [this](std::uint8_t idx) -> double {
        return idx >= std::uint8_t(kNumVirtualRegs) ||
                       idx == std::uint8_t(kZeroReg)
                   ? 0.0
                   : fpRegs_[idx];
    };

    std::int32_t cur = loc_.valid() ? ffIndexOf(loc_) : -1;
    std::uint64_t done = 0;
    while (done < n && cur >= 0) {
        const FFInst &d = ffTable_[std::size_t(cur)];
        if (d.op == Opcode::Halt)
            break; // leave the Halt for the detailed run to commit

        std::uint64_t destBits = 0;
        std::int32_t next = d.fall;
        // Integer b-operand: src2 if present, else the immediate.
        const std::uint64_t b = d.src2 != 0xff
                                    ? rdi(d.src2)
                                    : std::uint64_t(d.imm);
        switch (d.op) {
          case Opcode::Add:
            destBits = rdi(d.src1) + b;
            break;
          case Opcode::Sub:
            destBits = rdi(d.src1) - b;
            break;
          case Opcode::And:
            destBits = rdi(d.src1) & b;
            break;
          case Opcode::Or:
            destBits = rdi(d.src1) | b;
            break;
          case Opcode::Xor:
            destBits = rdi(d.src1) ^ b;
            break;
          case Opcode::Sll:
            destBits = rdi(d.src1) << (b & 63);
            break;
          case Opcode::Srl:
            destBits = rdi(d.src1) >> (b & 63);
            break;
          case Opcode::Cmplt:
            destBits = std::int64_t(rdi(d.src1)) < std::int64_t(b);
            break;
          case Opcode::Cmple:
            destBits = std::int64_t(rdi(d.src1)) <= std::int64_t(b);
            break;
          case Opcode::Cmpeq:
            destBits = rdi(d.src1) == b;
            break;
          case Opcode::Mul:
            destBits = rdi(d.src1) * b;
            break;

          case Opcode::Fadd:
            destBits = std::bit_cast<std::uint64_t>(
                rdf(d.src1) + rdf(d.src2));
            break;
          case Opcode::Fsub:
            destBits = std::bit_cast<std::uint64_t>(
                rdf(d.src1) - rdf(d.src2));
            break;
          case Opcode::Fmul:
            destBits = std::bit_cast<std::uint64_t>(
                rdf(d.src1) * rdf(d.src2));
            break;
          case Opcode::Fcmplt:
            destBits = std::bit_cast<std::uint64_t>(
                rdf(d.src1) < rdf(d.src2) ? 1.0 : 0.0);
            break;
          case Opcode::Itof:
            destBits = std::bit_cast<std::uint64_t>(
                double(std::int64_t(rdi(d.src1))));
            break;
          case Opcode::Ftoi: {
            const double v = rdf(d.src1);
            destBits = std::isfinite(v) && std::abs(v) < 0x1.0p62
                           ? std::uint64_t(std::int64_t(v))
                           : 0;
            break;
          }
          case Opcode::Fdivs: {
            const float bb = float(rdf(d.src2));
            const float a = float(rdf(d.src1));
            destBits = std::bit_cast<std::uint64_t>(
                bb == 0.0f ? 0.0 : double(a / bb));
            break;
          }
          case Opcode::Fdivd: {
            const double bb = rdf(d.src2);
            destBits = std::bit_cast<std::uint64_t>(
                bb == 0.0 ? 0.0 : rdf(d.src1) / bb);
            break;
          }
          case Opcode::Fsqrt: {
            const double a = rdf(d.src1);
            destBits = std::bit_cast<std::uint64_t>(
                a < 0.0 ? 0.0 : std::sqrt(a));
            break;
          }

          case Opcode::Ldq:
          case Opcode::Ldt:
            destBits = memWord(
                canonical(rdi(d.src1) + std::uint64_t(d.imm)));
            break;
          case Opcode::Stq:
            rawWriteMem(
                canonical(rdi(d.src1) + std::uint64_t(d.imm)),
                rdi(d.src2));
            break;
          case Opcode::Stt:
            rawWriteMem(
                canonical(rdi(d.src1) + std::uint64_t(d.imm)),
                std::bit_cast<std::uint64_t>(rdf(d.src2)));
            break;

          case Opcode::Beq:
            if (rdi(d.src1) == 0)
                next = d.target;
            break;
          case Opcode::Bne:
            if (rdi(d.src1) != 0)
                next = d.target;
            break;
          case Opcode::Fbeq:
            if (rdf(d.src1) == 0.0)
                next = d.target;
            break;
          case Opcode::Fbne:
            if (rdf(d.src1) != 0.0)
                next = d.target;
            break;

          case Opcode::Br:
            next = d.target;
            break;
          case Opcode::Jsr:
            destBits = d.fallPc;
            next = d.target;
            break;
          case Opcode::Ret: {
            const CodeLoc tgt = prog_.locOf(rdi(d.src1));
            next = tgt.valid() ? ffIndexOf(tgt) : -1;
            break;
          }

          case Opcode::Halt:
            break; // unreachable (checked above)
        }
        if ((d.op == Opcode::Beq || d.op == Opcode::Bne ||
             d.op == Opcode::Fbeq || d.op == Opcode::Fbne) &&
            d.target == -1) {
            DRSIM_PANIC("conditional branch to empty tail");
        }

        if (ffObs_ != nullptr) {
            // Destination writes have not happened yet, so the
            // recomputed effective address sees the same operand
            // values the execution above used.
            const Addr pc = prog_.pcOf(ffLocs_[std::size_t(cur)]);
            ffObs_->ffFetch(pc);
            switch (d.op) {
              case Opcode::Ldq:
              case Opcode::Ldt:
                ffObs_->ffMem(
                    canonical(rdi(d.src1) + std::uint64_t(d.imm)),
                    false);
                break;
              case Opcode::Stq:
              case Opcode::Stt:
                ffObs_->ffMem(
                    canonical(rdi(d.src1) + std::uint64_t(d.imm)),
                    true);
                break;
              case Opcode::Beq:
              case Opcode::Bne:
              case Opcode::Fbeq:
              case Opcode::Fbne:
                ffObs_->ffBranch(pc, next == d.target);
                break;
              default:
                break;
            }
        }

        if (d.destCls == std::uint8_t(RegClass::Int)) {
            if (d.dest != std::uint8_t(kZeroReg))
                intRegs_[d.dest] = destBits;
        } else if (d.destCls == std::uint8_t(RegClass::Fp)) {
            if (d.dest != std::uint8_t(kZeroReg))
                fpRegs_[d.dest] = std::bit_cast<double>(destBits);
        }

        ++steps_;
        ++done;
        cur = next;
    }

    loc_ = cur >= 0 ? ffLocs_[std::size_t(cur)] : CodeLoc{};
    return done;
}

std::int32_t
Emulator::ffIndexOf(CodeLoc loc) const
{
    return ffBlockBase_[std::size_t(loc.block)] + loc.offset;
}

EmuArchState
Emulator::saveArchState() const
{
    if (!liveMarks_.empty()) {
        DRSIM_PANIC("saveArchState() with ", liveMarks_.size(),
                    " live checkpoints");
    }
    EmuArchState s;
    s.loc = loc_;
    s.intRegs = intRegs_;
    s.fpRegs = fpRegs_;
    s.data = data_;
    s.dataLimit = dataLimit_;
    s.mem = mem_;
    s.steps = steps_;
    return s;
}

void
Emulator::restoreArchState(const EmuArchState &state)
{
    if (!liveMarks_.empty()) {
        DRSIM_PANIC("restoreArchState() with ", liveMarks_.size(),
                    " live checkpoints");
    }
    loc_ = state.loc;
    intRegs_ = state.intRegs;
    fpRegs_ = state.fpRegs;
    data_ = state.data;
    dataLimit_ = state.dataLimit;
    mem_ = state.mem;
    steps_ = state.steps;
    undo_.clear();
    undoBase_ = 0;
}

EmuCheckpoint
Emulator::takeCheckpoint()
{
    const std::uint64_t mark = undoBase_ + undo_.size();
    ++liveMarks_[mark];
    return mark;
}

void
Emulator::releaseCheckpoint(EmuCheckpoint cp)
{
    const auto it = liveMarks_.find(cp);
    if (it == liveMarks_.end())
        DRSIM_PANIC("release of unknown checkpoint ", cp);
    if (--it->second == 0)
        liveMarks_.erase(it);
    pruneUndo();
}

void
Emulator::pruneUndo()
{
    const std::uint64_t keep_from =
        liveMarks_.empty() ? undoBase_ + undo_.size()
                           : liveMarks_.begin()->first;
    while (!undo_.empty() && undoBase_ < keep_from) {
        undo_.pop_front();
        ++undoBase_;
    }
}

void
Emulator::rollbackTo(EmuCheckpoint cp, Addr resume_pc)
{
    if (!liveMarks_.empty() && liveMarks_.rbegin()->first > cp)
        DRSIM_PANIC("rollback below a younger live checkpoint");
    while (undoBase_ + undo_.size() > cp) {
        if (undo_.empty())
            DRSIM_PANIC("undo log underflow rolling back to ", cp);
        const UndoEntry e = undo_.back();
        undo_.pop_back();
        switch (e.kind) {
          case UndoEntry::Kind::IntReg:
            intRegs_[e.regIndex] = e.oldBits;
            break;
          case UndoEntry::Kind::FpReg:
            fpRegs_[e.regIndex] = std::bit_cast<double>(e.oldBits);
            break;
          case UndoEntry::Kind::Mem:
            rawWriteMem(e.addr, e.oldBits);
            break;
        }
    }
    loc_ = prog_.locOf(resume_pc);
    if (!loc_.valid())
        DRSIM_PANIC("rollback resume pc ", resume_pc, " is not code");
}

namespace {

std::uint64_t
hashArchPieces(const std::array<std::uint64_t, kNumVirtualRegs> &ints,
               const std::array<double, kNumVirtualRegs> &fps,
               const std::vector<std::uint64_t> &data,
               const std::unordered_map<Addr, std::uint64_t> &mem)
{
    std::uint64_t h = 0x12345678;
    for (int i = 0; i < kNumVirtualRegs; ++i) {
        h ^= mix64(ints[std::size_t(i)] + std::uint64_t(i) * 0x9e37);
        h ^= mix64(
            std::bit_cast<std::uint64_t>(fps[std::size_t(i)]) +
            std::uint64_t(i) * 0xabcd);
    }
    // Memory digest must be order-independent (dense segment plus
    // unordered_map overflow).  Zero words are skipped: unmapped
    // memory reads as zero, so a zero-valued entry (e.g. left by a
    // rolled-back wrong-path store to a fresh address) is
    // semantically absent.
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] != 0) {
            const Addr addr = kDataBase + Addr(i) * 8;
            h ^= mix64(addr * 0x9e3779b97f4a7c15ull ^ mix64(data[i]));
        }
    }
    for (const auto &[addr, word] : mem) {
        if (word != 0)
            h ^= mix64(addr * 0x9e3779b97f4a7c15ull ^ mix64(word));
    }
    return h;
}

} // namespace

std::uint64_t
Emulator::stateHash() const
{
    return hashArchPieces(intRegs_, fpRegs_, data_, mem_);
}

std::uint64_t
archStateHash(const EmuArchState &state)
{
    return hashArchPieces(state.intRegs, state.fpRegs, state.data,
                          state.mem);
}

} // namespace drsim
