/**
 * @file
 * Shared emission helpers for the synthetic SPEC92-like kernels.
 */

#ifndef DRSIM_WORKLOADS_KERNEL_UTIL_HH
#define DRSIM_WORKLOADS_KERNEL_UTIL_HH

#include "common/random.hh"
#include "workloads/builder.hh"

namespace drsim {
namespace kutil {

/**
 * Emit an in-register xorshift64 update of @p x using @p tmp
 * (6 IntAlu instructions).  This is the kernels' source of
 * data-dependent, predictor-resistant values.
 */
inline void
emitXorshift(ProgramBuilder &b, RegId x, RegId tmp)
{
    b.slli(tmp, x, 13);
    b.xor_(x, x, tmp);
    b.srli(tmp, x, 7);
    b.xor_(x, x, tmp);
    b.slli(tmp, x, 17);
    b.xor_(x, x, tmp);
}

/**
 * Emit "cond = ((src >> shift) & 63) < threshold" into @p cond using
 * @p tmp.  A following bne(cond, L) branches with probability roughly
 * threshold/64 when src is pseudo-random (3 IntAlu instructions).
 */
inline void
emitChance(ProgramBuilder &b, RegId cond, RegId src, int shift,
           int threshold, RegId tmp)
{
    b.srli(tmp, src, shift);
    b.andi(tmp, tmp, 63);
    b.cmplti(cond, tmp, threshold);
}

/**
 * Insert an odd-sized pad between large array allocations so
 * same-index elements of consecutive arrays do not land in the same
 * cache set (arrays allocated back-to-back at way-size multiples would
 * thrash a 2-way cache pathologically).
 */
inline void
staggerPad(ProgramBuilder &b, int chunk)
{
    b.allocWords(std::size_t(chunk) * 136 + 40);
}

/** Fill @p nwords words starting at @p base with random 64-bit data. */
inline void
initRandomWords(ProgramBuilder &b, Addr base, std::size_t nwords,
                Rng &rng)
{
    for (std::size_t i = 0; i < nwords; ++i)
        b.initWord(base + i * 8, rng.next());
}

/** Fill @p nwords doubles starting at @p base with values in [lo, hi). */
inline void
initRandomDoubles(ProgramBuilder &b, Addr base, std::size_t nwords,
                  Rng &rng, double lo, double hi)
{
    for (std::size_t i = 0; i < nwords; ++i)
        b.initDouble(base + i * 8, lo + rng.uniform() * (hi - lo));
}

} // namespace kutil
} // namespace drsim

#endif // DRSIM_WORKLOADS_KERNEL_UTIL_HH
