#include "workloads/digest.hh"

#include <cstdio>
#include <map>

#include "workloads/program.hh"

namespace drsim {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1aStep(std::uint64_t h, std::uint64_t v)
{
    // Hash the eight bytes of v little-endian.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

std::string
hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

std::string
fnv1aHex(const std::string &text)
{
    std::uint64_t h = kFnvOffset;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return hex16(h);
}

std::string
programDigest(const Program &program)
{
    // Digesting is a full pass over the code plus an ordered walk of
    // the data image — milliseconds on data-heavy workloads, which
    // would dominate a warm checkpoint-library lookup.  finalize()
    // computes it once; serve that copy whenever it exists.
    if (!program.contentDigest().empty())
        return program.contentDigest();
    std::uint64_t h = kFnvOffset;
    for (const BasicBlock &bb : program.blocks()) {
        // Block boundary marker so moving an instruction across a
        // block edge changes the digest even if the flat instruction
        // sequence does not.
        h = fnv1aStep(h, 0xb10cb10cb10cb10cull);
        for (const Instruction &inst : bb.insts) {
            h = fnv1aStep(h, static_cast<std::uint64_t>(inst.op));
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.dest.cls))
                           << 8) |
                              inst.dest.index);
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.src1.cls))
                           << 8) |
                              inst.src1.index);
            h = fnv1aStep(h,
                          (std::uint64_t(std::uint8_t(inst.src2.cls))
                           << 8) |
                              inst.src2.index);
            h = fnv1aStep(h, static_cast<std::uint64_t>(inst.imm));
            h = fnv1aStep(h, static_cast<std::uint64_t>(
                                 std::int64_t(inst.target)));
        }
    }
    // The initial data image, in address order (the source map is
    // unordered, which must not leak into the digest).
    const std::map<Addr, std::uint64_t> words(
        program.initialWords().begin(), program.initialWords().end());
    for (const auto &[addr, value] : words) {
        h = fnv1aStep(h, addr);
        h = fnv1aStep(h, value);
    }
    return hex16(h);
}

} // namespace drsim
