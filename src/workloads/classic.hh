/**
 * @file
 * The classic-kernel workload family: well-known open microkernels
 * written directly in the drsim ISA.  Unlike the SPEC92-like suite
 * (tuned to reproduce published signatures), these compute verifiable
 * results — the eight-queens solution count, the number of primes
 * below a bound — so they double as end-to-end functional validation
 * of the ISA, emulator, and timing core, and they provide a second,
 * independent workload population for the paper's register-file
 * sweeps.
 *
 * Members:
 *   daxpy    - LINPACK inner loop: y[i] += a * x[i] over streams
 *   sieve    - Eratosthenes on a flag array (stores + strided loads)
 *   queens   - N-queens backtracking with an explicit stack
 *              (call-free, deeply branchy)
 *   wordcopy - word-wise memcpy/compare (dhrystone-flavoured)
 *   whet     - whetstone-flavoured fp loop with sqrt/divide chains
 */

#ifndef DRSIM_WORKLOADS_CLASSIC_HH
#define DRSIM_WORKLOADS_CLASSIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/program.hh"

namespace drsim {

/** y[i] += a * x[i] over @p n doubles, @p reps passes. */
Program makeDaxpy(int n, int reps);

/** Sieve of Eratosthenes up to @p limit (odd-only flag words);
 *  leaves the prime count (including 2) in integer register r20. */
Program makeSieve(int limit);

/** N-queens for an @p n x n board (n <= 16); leaves the solution
 *  count in integer register r20. */
Program makeQueens(int n);

/** Copy and then compare @p words 8-byte words, @p reps passes;
 *  leaves the mismatch count (expected 0) in r20. */
Program makeWordCopy(int words, int reps);

/** Whetstone-flavoured floating-point loop, @p iters iterations. */
Program makeWhet(int iters);

/** The family, at sizes comparable to one suite-scale unit each. */
std::vector<std::pair<std::string, Program>> buildClassicSuite();

} // namespace drsim

#endif // DRSIM_WORKLOADS_CLASSIC_HH
