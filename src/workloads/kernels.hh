/**
 * @file
 * The SPEC92-like synthetic kernel suite.
 *
 * Each maker builds a small, real program in the drsim ISA whose
 * dynamic behaviour is engineered to land in the same regime as the
 * corresponding SPEC92 benchmark's Table-1 signature (instruction mix,
 * data-cache load miss rate against the 64 KB 2-way baseline cache,
 * and conditional-branch misprediction rate against the 12 Kbit
 * McFarling predictor).  The per-kernel target numbers are documented
 * in each kernel's source file, and the measured values are recorded
 * in EXPERIMENTS.md.
 *
 * @p scale multiplies the outer iteration count; one unit of scale is
 * roughly 10k committed instructions, so the default suite scale of 30
 * yields ~300k committed instructions per benchmark.
 */

#ifndef DRSIM_WORKLOADS_KERNELS_HH
#define DRSIM_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/program.hh"

namespace drsim {

/**
 * Each maker takes an optional data seed (0 = the kernel's default).
 * The seed varies the random *data* the kernel processes — table
 * contents, coordinates, branch-driving words — without changing the
 * program structure, enabling run-to-run variance studies
 * (bench/ext_variance).
 */
Program makeCompress(int scale, std::uint64_t seed = 0);
Program makeDoduc(int scale, std::uint64_t seed = 0);
Program makeEspresso(int scale, std::uint64_t seed = 0);
Program makeGcc1(int scale, std::uint64_t seed = 0);
Program makeMdljdp2(int scale, std::uint64_t seed = 0);
Program makeMdljsp2(int scale, std::uint64_t seed = 0);
Program makeOra(int scale, std::uint64_t seed = 0);
Program makeSu2cor(int scale, std::uint64_t seed = 0);
Program makeTomcatv(int scale, std::uint64_t seed = 0);

/** Static description of one suite member. */
struct WorkloadSpec
{
    std::string name;
    std::string dataset; ///< the SPEC92 data set the kernel mimics
    /** Included in the floating-point-register averages (the paper's
     *  FP curves use only the FP-intensive benchmarks). */
    bool fpIntensive;
    Program (*maker)(int scale, std::uint64_t seed);
};

/** The nine benchmarks of the paper's Table 1, in table order. */
const std::vector<WorkloadSpec> &spec92Specs();

/** A built, runnable suite member. */
struct Workload
{
    const WorkloadSpec *spec;
    Program program;
};

/** Build every suite program at the given scale (seed 0 = default
 *  data; other values perturb each kernel's random data). */
std::vector<Workload> buildSpec92Suite(int scale,
                                       std::uint64_t seed = 0);

/** Build a single suite member by name (fatal on unknown name). */
Workload buildWorkload(const std::string &name, int scale,
                       std::uint64_t seed = 0);

/** Default scale used by the paper-reproduction harnesses. */
constexpr int kDefaultSuiteScale = 30;

} // namespace drsim

#endif // DRSIM_WORKLOADS_KERNELS_HH
