#include "workloads/builder.hh"

#include <bit>

#include "common/logging.hh"

namespace drsim {

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name_ = std::move(name);
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelBlock_.push_back(-1);
    return int(labelBlock_.size()) - 1;
}

void
ProgramBuilder::bind(Label label)
{
    if (label < 0 || label >= int(labelBlock_.size())) {
        fatal("program '", prog_.name_, "': bind of unknown label ",
              label, " (labels come from newLabel())");
    }
    if (labelBlock_[label] != -1) {
        fatal("program '", prog_.name_, "': label ", label,
              " bound twice");
    }
    // The next emitted instruction starts a fresh block; bind the label
    // to that block now by opening it eagerly.  Consecutive binds with
    // no instruction in between share one block.
    if (!pendingLabelBind_ || prog_.blocks_.empty() ||
        !prog_.blocks_.back().insts.empty()) {
        prog_.blocks_.emplace_back();
    }
    labelBlock_[label] = int(prog_.blocks_.size()) - 1;
    pendingLabelBind_ = true;
    lastWasControl_ = false;
}

Addr
ProgramBuilder::allocWords(std::size_t nwords)
{
    const Addr base = dataBrk_;
    dataBrk_ += Addr(nwords) * 8;
    // Keep allocations cache-line separated to make kernel working-set
    // sizes predictable.
    dataBrk_ = (dataBrk_ + 31) & ~Addr{31};
    return base;
}

void
ProgramBuilder::initWord(Addr addr, std::uint64_t value)
{
    prog_.initialWords_[addr & ~Addr{7}] = value;
}

void
ProgramBuilder::initDouble(Addr addr, double value)
{
    initWord(addr, std::bit_cast<std::uint64_t>(value));
}

BasicBlock &
ProgramBuilder::current()
{
    if (prog_.blocks_.empty() || (lastWasControl_ && !pendingLabelBind_))
        prog_.blocks_.emplace_back();
    pendingLabelBind_ = false;
    lastWasControl_ = false;
    return prog_.blocks_.back();
}

void
ProgramBuilder::emit(Instruction inst)
{
    if (built_) {
        fatal("program '", prog_.name_,
              "': emit after build(); the builder is single-use");
    }
    current().insts.push_back(inst);
    if (inst.isControl() || inst.isHalt())
        lastWasControl_ = true;
}

void
ProgramBuilder::emitRRR(Opcode op, RegId d, RegId a, RegId b)
{
    Instruction inst;
    inst.op = op;
    inst.dest = d;
    inst.src1 = a;
    inst.src2 = b;
    emit(inst);
}

void
ProgramBuilder::emitRRI(Opcode op, RegId d, RegId a, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dest = d;
    inst.src1 = a;
    inst.imm = imm;
    emit(inst);
}

void
ProgramBuilder::ldq(RegId d, RegId base, std::int64_t off)
{
    if (d.cls != RegClass::Int || base.cls != RegClass::Int)
        DRSIM_PANIC("ldq operands must be integer registers");
    Instruction inst;
    inst.op = Opcode::Ldq;
    inst.dest = d;
    inst.src1 = base;
    inst.imm = off;
    emit(inst);
}

void
ProgramBuilder::ldt(RegId d, RegId base, std::int64_t off)
{
    if (d.cls != RegClass::Fp || base.cls != RegClass::Int)
        DRSIM_PANIC("ldt wants fp dest, int base");
    Instruction inst;
    inst.op = Opcode::Ldt;
    inst.dest = d;
    inst.src1 = base;
    inst.imm = off;
    emit(inst);
}

void
ProgramBuilder::stq(RegId value, RegId base, std::int64_t off)
{
    if (value.cls != RegClass::Int || base.cls != RegClass::Int)
        DRSIM_PANIC("stq operands must be integer registers");
    Instruction inst;
    inst.op = Opcode::Stq;
    inst.src1 = base;
    inst.src2 = value;
    inst.imm = off;
    emit(inst);
}

void
ProgramBuilder::stt(RegId value, RegId base, std::int64_t off)
{
    if (value.cls != RegClass::Fp || base.cls != RegClass::Int)
        DRSIM_PANIC("stt wants fp value, int base");
    Instruction inst;
    inst.op = Opcode::Stt;
    inst.src1 = base;
    inst.src2 = value;
    inst.imm = off;
    emit(inst);
}

namespace {

Instruction
branchInst(Opcode op, RegId c, int label)
{
    Instruction inst;
    inst.op = op;
    inst.src1 = c;
    inst.target = label; // label id; patched to a block index in build()
    return inst;
}

} // namespace

void
ProgramBuilder::beq(RegId c, Label target)
{
    if (c.cls != RegClass::Int)
        DRSIM_PANIC("beq condition must be an integer register");
    emit(branchInst(Opcode::Beq, c, target));
}

void
ProgramBuilder::bne(RegId c, Label target)
{
    if (c.cls != RegClass::Int)
        DRSIM_PANIC("bne condition must be an integer register");
    emit(branchInst(Opcode::Bne, c, target));
}

void
ProgramBuilder::fbeq(RegId c, Label target)
{
    if (c.cls != RegClass::Fp)
        DRSIM_PANIC("fbeq condition must be an fp register");
    emit(branchInst(Opcode::Fbeq, c, target));
}

void
ProgramBuilder::fbne(RegId c, Label target)
{
    if (c.cls != RegClass::Fp)
        DRSIM_PANIC("fbne condition must be an fp register");
    emit(branchInst(Opcode::Fbne, c, target));
}

void
ProgramBuilder::br(Label target)
{
    emit(branchInst(Opcode::Br, noReg(), target));
}

void
ProgramBuilder::jsr(RegId link, Label target)
{
    if (link.cls != RegClass::Int)
        DRSIM_PANIC("jsr link must be an integer register");
    Instruction inst;
    inst.op = Opcode::Jsr;
    inst.dest = link;
    inst.target = target;
    emit(inst);
}

void
ProgramBuilder::ret(RegId addrReg)
{
    if (addrReg.cls != RegClass::Int)
        DRSIM_PANIC("ret address must be an integer register");
    Instruction inst;
    inst.op = Opcode::Ret;
    inst.src1 = addrReg;
    emit(inst);
}

void
ProgramBuilder::halt()
{
    Instruction inst;
    inst.op = Opcode::Halt;
    emit(inst);
}

Program
ProgramBuilder::build()
{
    if (built_) {
        fatal("program '", prog_.name_,
              "': build() called twice; the builder is single-use");
    }
    built_ = true;
    // Patch label ids into block indices.
    for (auto &bb : prog_.blocks_) {
        for (auto &inst : bb.insts) {
            if (inst.target < 0)
                continue;
            if (inst.target >= int(labelBlock_.size())) {
                fatal("program '", prog_.name_,
                      "': branch to unknown label ", inst.target,
                      " (only ", labelBlock_.size(),
                      " labels were created)");
            }
            const int block = labelBlock_[inst.target];
            if (block < 0) {
                fatal("program '", prog_.name_,
                      "': branch to unbound label ", inst.target,
                      " (newLabel() was never bind()-ed)");
            }
            inst.target = block;
        }
    }
    // Record the data-segment extent for static memory-bounds checks:
    // the bump allocator's brk, widened over any directly initialized
    // words outside it.
    Addr limit = dataBrk_;
    for (const auto &[addr, value] : prog_.initialWords_) {
        (void)value;
        if (addr + 8 > limit)
            limit = addr + 8;
    }
    prog_.dataLimit_ = limit;
    prog_.finalize();
    return std::move(prog_);
}

} // namespace drsim
