/**
 * @file
 * Registry of the nine SPEC92-like workloads (paper Table 1 order).
 */

#include "workloads/kernels.hh"

#include <algorithm>

#include "common/logging.hh"

namespace drsim {

namespace {

/**
 * tomcatv's natural unit of work (one mesh row) is ~3x the other
 * kernels' scale unit, mirroring the paper where tomcatv is by far
 * the longest benchmark; divide its scale to keep suite members
 * within the same order of magnitude.
 */
Program
makeTomcatvScaled(int scale, std::uint64_t seed)
{
    return makeTomcatv(std::max(1, scale / 6), seed);
}

} // namespace

const std::vector<WorkloadSpec> &
spec92Specs()
{
    static const std::vector<WorkloadSpec> specs = {
        {"compress", "ref",   false, makeCompress},
        {"doduc",    "small", true,  makeDoduc},
        {"espresso", "ti",    false, makeEspresso},
        {"gcc1",     "cexp",  false, makeGcc1},
        {"mdljdp2",  "small", true,  makeMdljdp2},
        {"mdljsp2",  "small", true,  makeMdljsp2},
        {"ora",      "small", true,  makeOra},
        {"su2cor",   "small", true,  makeSu2cor},
        {"tomcatv",  "ref",   true,  makeTomcatvScaled},
    };
    return specs;
}

std::vector<Workload>
buildSpec92Suite(int scale, std::uint64_t seed)
{
    std::vector<Workload> suite;
    suite.reserve(spec92Specs().size());
    for (const auto &spec : spec92Specs())
        suite.push_back({&spec, spec.maker(scale, seed)});
    return suite;
}

Workload
buildWorkload(const std::string &name, int scale, std::uint64_t seed)
{
    for (const auto &spec : spec92Specs())
        if (spec.name == name)
            return {&spec, spec.maker(scale, seed)};
    fatal("unknown workload '", name, "'");
}

} // namespace drsim
