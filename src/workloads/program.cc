#include "workloads/program.hh"

#include "common/logging.hh"
#include "workloads/digest.hh"

namespace drsim {

void
Program::finalize()
{
    if (finalized_) {
        fatal("program '", name_, "': finalize() called twice; a "
              "Program is laid out exactly once after construction");
    }
    // Reject branch targets outside the block table up front: a bad
    // index would otherwise surface as an out-of-range access (or
    // silent misfetch) mid-simulation.
    for (const auto &bb : blocks_) {
        const auto b = std::int32_t(&bb - blocks_.data());
        for (std::int32_t i = 0; i < std::int32_t(bb.insts.size());
             ++i) {
            const Instruction &inst = bb.insts[std::size_t(i)];
            if (!inst.isControl() || inst.op == Opcode::Ret)
                continue;
            if (inst.target < 0 ||
                inst.target >= std::int32_t(blocks_.size())) {
                fatal("program '", name_, "': block ", b, " inst ", i,
                      " (", opTraits(inst.op).name,
                      ") targets invalid block index ", inst.target,
                      " (program has ", blocks_.size(), " blocks)");
            }
        }
    }
    Addr pc = kCodeBase;
    numInsts_ = 0;
    for (auto &bb : blocks_) {
        bb.startPc = pc;
        for (std::int32_t i = 0; i < std::int32_t(bb.insts.size()); ++i) {
            pcTable_.push_back(
                {std::int32_t(&bb - blocks_.data()), i});
            pc += kInstBytes;
        }
        numInsts_ += bb.insts.size();
    }
    finalized_ = true;
    // Fill the digest cache while digest_ is still empty, so
    // programDigest() takes its computing path exactly once.
    digest_ = programDigest(*this);
}

CodeLoc
Program::locOf(Addr pc) const
{
    if (pc < kCodeBase || (pc - kCodeBase) % kInstBytes != 0)
        return {};
    const Addr slot = (pc - kCodeBase) / kInstBytes;
    if (slot >= pcTable_.size())
        return {};
    return pcTable_[slot];
}

CodeLoc
Program::blockEntryResolved(int block) const
{
    if (block < 0)
        return {};
    for (int b = block; b < int(blocks_.size()); ++b)
        if (!blocks_[b].insts.empty())
            return {b, 0};
    return {};
}

CodeLoc
Program::nextLocSlow(CodeLoc loc) const
{
    // Fall through to the next non-empty block.
    for (int b = loc.block + 1; b < int(blocks_.size()); ++b)
        if (!blocks_[b].insts.empty())
            return {b, 0};
    return {};
}

} // namespace drsim
