#include "workloads/program.hh"

#include "common/logging.hh"

namespace drsim {

void
Program::finalize()
{
    if (finalized_)
        DRSIM_PANIC("program finalized twice");
    Addr pc = kCodeBase;
    numInsts_ = 0;
    for (auto &bb : blocks_) {
        bb.startPc = pc;
        for (std::int32_t i = 0; i < std::int32_t(bb.insts.size()); ++i) {
            pcTable_.push_back(
                {std::int32_t(&bb - blocks_.data()), i});
            pc += kInstBytes;
        }
        numInsts_ += bb.insts.size();
    }
    finalized_ = true;
}

Addr
Program::pcOf(CodeLoc loc) const
{
    return blocks_[loc.block].startPc + Addr(loc.offset) * kInstBytes;
}

CodeLoc
Program::locOf(Addr pc) const
{
    if (pc < kCodeBase || (pc - kCodeBase) % kInstBytes != 0)
        return {};
    const Addr slot = (pc - kCodeBase) / kInstBytes;
    if (slot >= pcTable_.size())
        return {};
    return pcTable_[slot];
}

const Instruction &
Program::instAt(CodeLoc loc) const
{
    return blocks_[loc.block].insts[loc.offset];
}

CodeLoc
Program::blockEntryResolved(int block) const
{
    for (int b = block; b < int(blocks_.size()); ++b)
        if (!blocks_[b].insts.empty())
            return {b, 0};
    return {};
}

CodeLoc
Program::nextLoc(CodeLoc loc) const
{
    const auto &bb = blocks_[loc.block];
    if (loc.offset + 1 < std::int32_t(bb.insts.size()))
        return {loc.block, loc.offset + 1};
    // Fall through to the next non-empty block.
    for (int b = loc.block + 1; b < int(blocks_.size()); ++b)
        if (!blocks_[b].insts.empty())
            return {b, 0};
    return {};
}

} // namespace drsim
