/**
 * @file
 * Content digests shared by the on-disk caches.
 *
 * Historically these lived in src/serve/point_cache; the checkpoint
 * library (src/sim/ckpt_store) needs the same program digest but sits
 * below the serve layer in the link graph, so the primitives moved
 * here, next to the Program they digest.  serve/point_cache re-exports
 * them under its old names.
 *
 * The digest is 64-bit FNV-1a over the program's instruction stream
 * (with explicit block-boundary markers, so moving an instruction
 * across a block edge changes the digest even when the flat sequence
 * does not) followed by the initial data image in address order.  Two
 * programs with equal digests are treated as identical simulation
 * inputs by every cache keyed on it.
 */

#ifndef DRSIM_WORKLOADS_DIGEST_HH
#define DRSIM_WORKLOADS_DIGEST_HH

#include <cstdint>
#include <string>

namespace drsim {

class Program;

/** 64-bit FNV-1a of @p text as 16 lowercase hex digits. */
std::string fnv1aHex(const std::string &text);

/** FNV-1a content digest of a built program (code + data image),
 *  rendered as 16 hex digits. */
std::string programDigest(const Program &program);

} // namespace drsim

#endif // DRSIM_WORKLOADS_DIGEST_HH
