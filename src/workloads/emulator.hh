/**
 * @file
 * Architectural emulator: the functional half of the execution-driven
 * simulation.
 *
 * The timing core calls step() once per fetched instruction, so the
 * emulator's state follows the *speculative* fetch path — including
 * wrong paths after a mispredicted branch.  A checkpoint is taken at
 * every conditional branch; when the timing core detects the
 * misprediction at branch execution it rolls the emulator back to the
 * checkpoint and resumes fetch down the correct path.
 *
 * Rollback uses a single undo log (register writes and memory writes)
 * rather than full state snapshots, so checkpoints are just marks into
 * that log.  Entries older than the oldest live checkpoint are pruned.
 */

#ifndef DRSIM_WORKLOADS_EMULATOR_HH
#define DRSIM_WORKLOADS_EMULATOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "workloads/program.hh"

namespace drsim {

/** Everything the timing model needs to know about one executed step. */
struct StepInfo
{
    const Instruction *inst = nullptr;
    Addr pc = 0;
    /** Raw bits written to the destination register (if any). */
    std::uint64_t destBits = 0;
    /** Effective address of a memory operation (8-byte aligned). */
    Addr effAddr = 0;
    /** Raw bits a store writes to memory. */
    std::uint64_t storeBits = 0;
    /** Conditional branches: the outcome on the current fetch path. */
    bool actualTaken = false;
    /** PC execution proceeds to if the instruction is followed
     *  architecturally (i.e. the *correct* next PC). */
    Addr actualNextPc = 0;
    bool isHalt = false;
};

/** Opaque checkpoint handle (a mark into the undo log). */
using EmuCheckpoint = std::uint64_t;

/**
 * A full architectural snapshot of the emulator: everything needed to
 * resume functional execution from an arbitrary point.  Unlike the
 * undo-log checkpoints (which only live while the timing core holds a
 * mark), an EmuArchState is self-contained and portable — the sampling
 * driver and tests save one, keep running, and restore later.
 */
struct EmuArchState
{
    CodeLoc loc;
    std::array<std::uint64_t, kNumVirtualRegs> intRegs{};
    std::array<double, kNumVirtualRegs> fpRegs{};
    std::vector<std::uint64_t> data;
    Addr dataLimit = 0;
    std::unordered_map<Addr, std::uint64_t> mem;
    std::uint64_t steps = 0;
};

/**
 * Order-independent digest of a snapshot's registers and memory.
 * Matches Emulator::stateHash() of an emulator in exactly that state,
 * so a checkpoint written to disk can be validated on load without
 * constructing an Emulator (ckpt_store.cc).
 */
std::uint64_t archStateHash(const EmuArchState &state);

class Emulator
{
  public:
    /** The caller keeps @p prog alive for the emulator's lifetime. */
    explicit Emulator(const Program &prog);

    /** Owning overload: safe to pass a temporary Program. */
    explicit Emulator(Program &&prog);

    /**
     * Construct directly in a restored architectural state: the
     * initial program image is never materialized, so the cost is one
     * bulk copy of @p state instead of a zero-fill plus a word-by-word
     * image build plus a second bulk copy.  Equivalent to
     * `Emulator(prog)` followed by `restoreArchState(state)`; @p state
     * must have been saved from an emulator running @p prog.
     */
    Emulator(const Program &prog, const EmuArchState &state);

    /**
     * True when no instruction can be fetched: the program halted on
     * the current path, or a wrong-path indirect jump left the PC
     * outside the code segment.  Cleared by rollback().
     */
    bool fetchBlocked() const { return !loc_.valid(); }

    /** PC of the next instruction to fetch (only if !fetchBlocked()). */
    Addr pc() const;

    /** Instruction at the current PC, or nullptr if fetch is blocked. */
    const Instruction *peek() const;

    /**
     * Execute the instruction at the current PC and advance.
     * Conditional branches advance down the direction @p follow_taken
     * (the predicted direction); all other instructions advance
     * architecturally.
     */
    StepInfo step(bool follow_taken);

    /** Convenience for functional-only runs: follow actual outcomes. */
    StepInfo stepArch();

    /**
     * Observer of the fast-forward instruction stream (functional
     * warming, DESIGN.md §5j).  Callbacks fire per retired
     * instruction, before its architectural effects are applied; the
     * stream is purely architectural, so anything derived from it is
     * a deterministic function of the starting state alone.
     */
    struct FfObserver
    {
        virtual ~FfObserver() = default;
        /** Every instruction, with its PC. */
        virtual void ffFetch(Addr pc) = 0;
        /** Every load/store, with its effective address. */
        virtual void ffMem(Addr addr, bool is_store) = 0;
        /** Every conditional branch, with its resolved direction. */
        virtual void ffBranch(Addr pc, bool taken) = 0;
    };

    /** Attach (or with nullptr detach) a fast-forward observer.  The
     *  hook costs one predicted branch per instruction when unset. */
    void setFfObserver(FfObserver *obs) { ffObs_ = obs; }

    /**
     * Functional fast-forward: architecturally execute up to @p n
     * instructions with no undo logging and no StepInfo population.
     * Stops early when fetch blocks or the next instruction is Halt
     * (the Halt is left unexecuted so a subsequent detailed run still
     * fetches and commits it).  Returns the number of instructions
     * actually executed.  Must not be called with live checkpoints:
     * skipping the undo log would make them unrollbackable.
     *
     * Runs on a lazily-built predecoded flat instruction table
     * (operand indices and branch targets resolved once), bypassing
     * the per-step CodeLoc bookkeeping, StepInfo population, and
     * double branch-direction evaluation of stepArch() — the
     * per-instruction emulation floor the sampled legs of
     * bench/simspeed are bounded by.
     */
    std::uint64_t fastForward(std::uint64_t n);

    /// @name Architectural snapshots (sampling, tests)
    /// @{
    /** Snapshot the full architectural state.  Only valid with no
     *  live checkpoints (speculative state must be unwound first). */
    EmuArchState saveArchState() const;

    /** Restore a snapshot taken from the same program. */
    void restoreArchState(const EmuArchState &state);
    /// @}

    /// @name Checkpointing for wrong-path recovery
    /// @{
    /** Mark the current state (call just before stepping a branch). */
    EmuCheckpoint takeCheckpoint();

    /** Discard a checkpoint (branch completed or was squashed). */
    void releaseCheckpoint(EmuCheckpoint cp);

    /**
     * Undo all state changes made after @p cp and resume fetching at
     * @p resume_pc.  All checkpoints younger than @p cp must have been
     * released first.
     */
    void rollbackTo(EmuCheckpoint cp, Addr resume_pc);

    /** Number of live checkpoints (for tests). */
    std::size_t liveCheckpoints() const { return liveMarks_.size(); }

    /** Undo-log entries currently retained (for tests). */
    std::size_t undoLogSize() const { return undo_.size(); }
    /// @}

    /// @name State inspection (tests, examples)
    /// @{
    std::uint64_t intRegBits(int idx) const { return intRegs_[idx]; }
    double fpRegValue(int idx) const;
    std::uint64_t memWord(Addr addr) const;
    std::uint64_t stepsExecuted() const { return steps_; }
    /** Order-independent digest of registers + memory, for tests. */
    std::uint64_t stateHash() const;
    /// @}

  private:
    Emulator(const Program *external,
             std::unique_ptr<const Program> owned,
             const EmuArchState *restore_from = nullptr);

    struct UndoEntry
    {
        enum class Kind : std::uint8_t { IntReg, FpReg, Mem };
        Kind kind;
        std::uint8_t regIndex;
        Addr addr;
        std::uint64_t oldBits;
    };

    /**
     * One predecoded instruction of the fast-forward table: operand
     * register indices flattened out of RegId, branch targets resolved
     * to flat table indices, the fallthrough's PC precomputed for Jsr.
     */
    struct FFInst
    {
        Opcode op;
        std::uint8_t destCls;  ///< 0 int, 1 fp, 0xff no dest
        std::uint8_t dest;
        std::uint8_t src1;     ///< register index, 0xff invalid
        std::uint8_t src2;
        std::int64_t imm;
        std::int32_t fall;     ///< flat index of fallthrough, -1 none
        std::int32_t target;   ///< flat index of branch target, -1 none
        Addr fallPc;           ///< PC of fallthrough (Jsr link value)
    };

    void buildFFTable();
    std::int32_t ffIndexOf(CodeLoc loc) const;

    std::uint64_t intVal(RegId r) const;
    double fpVal(RegId r) const;
    void writeInt(int idx, std::uint64_t bits);
    void writeFp(int idx, double value);
    void writeMem(Addr addr, std::uint64_t bits);
    /** Store without undo logging (rollback replay). */
    void rawWriteMem(Addr addr, std::uint64_t bits);
    bool
    inDataSegment(Addr addr) const
    {
        return addr >= kDataBase && addr < dataLimit_;
    }
    void pruneUndo();

    /** Set only by the owning constructor. */
    std::unique_ptr<const Program> ownedProg_;
    const Program &prog_;
    CodeLoc loc_;
    std::array<std::uint64_t, kNumVirtualRegs> intRegs_{};
    std::array<double, kNumVirtualRegs> fpRegs_{};
    /**
     * Data-segment words, indexed by (addr - kDataBase) / 8.  The
     * kernels' memory traffic is overwhelmingly to the bump-allocated
     * segment [kDataBase, dataLimit()), so it gets a flat array; only
     * wrong-path garbage addresses fall through to the hash map.
     */
    std::vector<std::uint64_t> data_;
    Addr dataLimit_ = kDataBase;
    std::unordered_map<Addr, std::uint64_t> mem_;
    std::uint64_t steps_ = 0;

    std::deque<UndoEntry> undo_;
    /** Fast-forward stream observer (nullptr = none). */
    FfObserver *ffObs_ = nullptr;
    /** Global index of undo_.front(). */
    std::uint64_t undoBase_ = 0;
    /** Live checkpoint marks -> reference count. */
    std::map<std::uint64_t, int> liveMarks_;

    /// @name Fast-forward predecode (built on first fastForward())
    /// @{
    std::vector<FFInst> ffTable_;
    /** Flat index -> CodeLoc (to restore loc_ on exit). */
    std::vector<CodeLoc> ffLocs_;
    /** Block index -> flat index of its first instruction at-or-after
     *  (empty blocks resolve forward, mirroring blockEntryResolved). */
    std::vector<std::int32_t> ffBlockBase_;
    /// @}
};

} // namespace drsim

#endif // DRSIM_WORKLOADS_EMULATOR_HH
