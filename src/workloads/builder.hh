/**
 * @file
 * ProgramBuilder: a tiny structured assembler for drsim programs.
 *
 * Kernels are written against this API.  Labels may be created before
 * they are bound, so forward branches are natural:
 *
 *   ProgramBuilder b("loop");
 *   auto r1 = intReg(1);
 *   auto top = b.newLabel();
 *   b.li(r1, 100);
 *   b.bind(top);
 *   b.addi(r1, r1, -1);
 *   b.bne(r1, top);
 *   b.halt();
 *   Program p = b.build();
 */

#ifndef DRSIM_WORKLOADS_BUILDER_HH
#define DRSIM_WORKLOADS_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/program.hh"

namespace drsim {

class ProgramBuilder
{
  public:
    using Label = int;

    explicit ProgramBuilder(std::string name);

    /** Create a label that can be branched to before it is bound. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Convenience: create and immediately bind a label. */
    Label
    here()
    {
        Label l = newLabel();
        bind(l);
        return l;
    }

    /// @name Data segment
    /// @{
    /** Allocate @p nwords 8-byte words; returns the base address. */
    Addr allocWords(std::size_t nwords);
    void initWord(Addr addr, std::uint64_t value);
    void initDouble(Addr addr, double value);
    /// @}

    /// @name Integer ALU
    /// @{
    void add(RegId d, RegId a, RegId b) { emitRRR(Opcode::Add, d, a, b); }
    void addi(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Add, d, a, i); }
    void sub(RegId d, RegId a, RegId b) { emitRRR(Opcode::Sub, d, a, b); }
    void subi(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Sub, d, a, i); }
    void and_(RegId d, RegId a, RegId b) { emitRRR(Opcode::And, d, a, b); }
    void andi(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::And, d, a, i); }
    void or_(RegId d, RegId a, RegId b) { emitRRR(Opcode::Or, d, a, b); }
    void ori(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Or, d, a, i); }
    void xor_(RegId d, RegId a, RegId b) { emitRRR(Opcode::Xor, d, a, b); }
    void xori(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Xor, d, a, i); }
    void sll(RegId d, RegId a, RegId b) { emitRRR(Opcode::Sll, d, a, b); }
    void slli(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Sll, d, a, i); }
    void srl(RegId d, RegId a, RegId b) { emitRRR(Opcode::Srl, d, a, b); }
    void srli(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Srl, d, a, i); }
    void cmplt(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Cmplt, d, a, b); }
    void cmplti(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Cmplt, d, a, i); }
    void cmple(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Cmple, d, a, b); }
    void cmpeq(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Cmpeq, d, a, b); }
    void cmpeqi(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Cmpeq, d, a, i); }
    void mul(RegId d, RegId a, RegId b) { emitRRR(Opcode::Mul, d, a, b); }
    void muli(RegId d, RegId a, std::int64_t i)
    { emitRRI(Opcode::Mul, d, a, i); }
    /** Load immediate: addi d, r31, imm. */
    void li(RegId d, std::int64_t imm)
    { emitRRI(Opcode::Add, d, intReg(kZeroReg), imm); }
    /** Register move: add d, a, #0. */
    void mov(RegId d, RegId a) { emitRRI(Opcode::Add, d, a, 0); }
    /// @}

    /// @name Floating point
    /// @{
    void fadd(RegId d, RegId a, RegId b) { emitRRR(Opcode::Fadd, d, a, b); }
    void fsub(RegId d, RegId a, RegId b) { emitRRR(Opcode::Fsub, d, a, b); }
    void fmul(RegId d, RegId a, RegId b) { emitRRR(Opcode::Fmul, d, a, b); }
    void fcmplt(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Fcmplt, d, a, b); }
    void fdivs(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Fdivs, d, a, b); }
    void fdivd(RegId d, RegId a, RegId b)
    { emitRRR(Opcode::Fdivd, d, a, b); }
    void fsqrt(RegId d, RegId a) { emitRRR(Opcode::Fsqrt, d, a, noReg()); }
    void itof(RegId d, RegId a) { emitRRR(Opcode::Itof, d, a, noReg()); }
    void ftoi(RegId d, RegId a) { emitRRR(Opcode::Ftoi, d, a, noReg()); }
    /// @}

    /// @name Memory (8-byte; address = base + off)
    /// @{
    void ldq(RegId d, RegId base, std::int64_t off);
    void ldt(RegId d, RegId base, std::int64_t off);
    void stq(RegId value, RegId base, std::int64_t off);
    void stt(RegId value, RegId base, std::int64_t off);
    /// @}

    /// @name Control flow
    /// @{
    void beq(RegId c, Label target);
    void bne(RegId c, Label target);
    void fbeq(RegId c, Label target);
    void fbne(RegId c, Label target);
    void br(Label target);
    void jsr(RegId link, Label target);
    void ret(RegId addrReg);
    void halt();
    /// @}

    /** Resolve labels and produce the finalized Program. */
    Program build();

  private:
    void emitRRR(Opcode op, RegId d, RegId a, RegId b);
    void emitRRI(Opcode op, RegId d, RegId a, std::int64_t imm);
    void emit(Instruction inst);
    /** Current block, splitting after control flow as needed. */
    BasicBlock &current();

    Program prog_;
    /** label -> block index (-1 while unbound). */
    std::vector<int> labelBlock_;
    bool pendingLabelBind_ = false;
    bool lastWasControl_ = false;
    Addr dataBrk_ = kDataBase;
    bool built_ = false;
};

} // namespace drsim

#endif // DRSIM_WORKLOADS_BUILDER_HH
